// Fig 1 (motivation): logistic-regression latency on 12 workers as the
// straggler count grows, for uncoded 3-replication, (12,10)-MDS and
// (12,9)-MDS. Paper shape: uncoded degrades sharply at >= 3 stragglers
// (replication factor exhausted, data movement on the critical path);
// (12,10)-MDS is flat to 2 stragglers then explodes; (12,9)-MDS is flat
// throughout but pays a higher base cost.
#include "bench/bench_common.h"

int main() {
  using namespace s2c2;
  bench::print_header(
      "Fig 1 — motivation: LR latency vs straggler count (12 workers)",
      "Normalized to uncoded 3-replication with 0 stragglers.\n"
      "Paper shape: uncoded blows up at >=3 stragglers; (12,10)-MDS at >=3;\n"
      "(12,9)-MDS flat but with a higher base line.");

  const bench::WorkloadShape shape;
  const std::size_t rounds = 15;
  const std::size_t chunks = 30;

  // Fig 1's baseline is traditional 3-replication with strict data
  // locality: a task may only re-run on a node already holding its
  // partition. With round-robin placement and contiguous stragglers, all
  // three holders of one partition are stragglers at exactly 3 stragglers
  // — the cliff the paper's motivation hinges on.
  core::ReplicationConfig rep;
  rep.allow_data_movement = false;

  std::vector<double> uncoded, mds10, mds9;
  for (std::size_t s = 0; s <= 3; ++s) {
    const auto spec = bench::controlled_spec(12, s, 0.0, 42);
    uncoded.push_back(bench::run_replication(shape, spec, rounds, rep));
    mds10.push_back(bench::run_coded(core::StrategyKind::kMds, 12, 10,
                                     shape, spec, rounds, chunks, true)
                        .mean_latency);
    mds9.push_back(bench::run_coded(core::StrategyKind::kMds, 12, 9,
                                    shape, spec, rounds, chunks, true)
                       .mean_latency);
  }
  const double base = uncoded[0];

  util::Table t({"scheme", "0 straggler", "1 straggler", "2 stragglers",
                 "3 stragglers"});
  t.add_row_numeric("uncoded 3-replication", util::normalized_by(uncoded, base),
                    2);
  t.add_row_numeric("(12,10)-MDS", util::normalized_by(mds10, base), 2);
  t.add_row_numeric("(12,9)-MDS", util::normalized_by(mds9, base), 2);
  t.print();

  std::cout << "\nShape checks (paper Fig 1):\n"
            << "  uncoded @3 / uncoded @0     = "
            << util::fmt(uncoded[3] / uncoded[0], 2)
            << "  (paper: >3x, data movement on critical path)\n"
            << "  (12,10)-MDS @2 / @0         = "
            << util::fmt(mds10[2] / mds10[0], 2)
            << "  (paper: ~1, flat within redundancy)\n"
            << "  (12,10)-MDS @3 / @0         = "
            << util::fmt(mds10[3] / mds10[0], 2)
            << "  (paper: >>1, waits on a 5x straggler)\n"
            << "  (12,9)-MDS  @3 / @0         = "
            << util::fmt(mds9[3] / mds9[0], 2) << "  (paper: ~1, flat)\n";
  return 0;
}
