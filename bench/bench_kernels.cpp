// google-benchmark microbenchmarks for the numeric kernels and the
// scheduler hot paths: dense/sparse matvec, MDS encode, chunked decode,
// LU solve, allocation, and the LSTM step used each iteration.
#include <benchmark/benchmark.h>

#include "src/coding/chunked_decoder.h"
#include "src/coding/mds_code.h"
#include "src/linalg/lu.h"
#include "src/linalg/sparse.h"
#include "src/predict/lstm.h"
#include "src/sched/allocation.h"
#include "src/util/rng.h"

namespace {

using namespace s2c2;

void BM_DenseMatvec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const auto m = linalg::Matrix::random_uniform(n, n, rng);
  linalg::Vector x(n, 1.0), y(n);
  for (auto _ : state) {
    m.matvec_into(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_DenseMatvec)->Arg(128)->Arg(512)->Arg(1024);

void BM_SparseMatvec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  std::vector<linalg::Triplet> trips;
  for (std::size_t i = 0; i < n * 8; ++i) {
    trips.push_back(
        {static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1)),
         static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1)),
         rng.normal()});
  }
  const linalg::CsrMatrix m(n, n, trips);
  linalg::Vector x(n, 1.0), y(n);
  for (auto _ : state) {
    m.matvec_into(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.nnz()));
}
BENCHMARK(BM_SparseMatvec)->Arg(1024)->Arg(8192);

void BM_MdsEncode(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  const auto a = linalg::Matrix::random_uniform(rows, 256, rng);
  const coding::MdsCode code(12, 10);
  for (auto _ : state) {
    auto parts = code.encode(a);
    benchmark::DoNotOptimize(parts.data());
  }
}
BENCHMARK(BM_MdsEncode)->Arg(1200)->Arg(4800);

void BM_ChunkedDecode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t n = k + 3;
  const std::size_t chunks = 16, rpc = 8;
  util::Rng rng(4);
  const coding::MdsCode code(n, k);
  const auto a =
      linalg::Matrix::random_uniform(k * chunks * rpc, 64, rng);
  const auto parts = code.encode(a);
  linalg::Vector x(64, 1.0);
  // Precompute chunk results from the first k workers.
  std::vector<std::vector<std::vector<double>>> results(n);
  for (std::size_t w = 0; w < k; ++w) {
    for (std::size_t c = 0; c < chunks; ++c) {
      std::vector<double> vals(rpc);
      parts[w].matvec_rows(c * rpc, (c + 1) * rpc, x, vals);
      results[w].push_back(std::move(vals));
    }
  }
  for (auto _ : state) {
    coding::ChunkedDecoder dec(code.generator(), chunks * rpc, chunks, 1);
    for (std::size_t w = 0; w < k; ++w) {
      for (std::size_t c = 0; c < chunks; ++c) {
        dec.add_chunk_result(w, c, results[w][c]);
      }
    }
    auto out = dec.decode();
    benchmark::DoNotOptimize(out.data().data());
  }
}
BENCHMARK(BM_ChunkedDecode)->Arg(6)->Arg(10)->Arg(40);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  const auto a = linalg::Matrix::random_normal(n, n, rng);
  linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    const linalg::LuFactorization lu(a);
    auto x = lu.solve(b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_LuSolve)->Arg(8)->Arg(40)->Arg(64);

void BM_ProportionalAllocation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  std::vector<double> speeds(n);
  for (auto& s : speeds) s = rng.uniform(0.1, 1.0);
  const std::size_t k = n * 4 / 5;
  for (auto _ : state) {
    auto alloc = sched::proportional_allocation(speeds, k, 2 * n);
    benchmark::DoNotOptimize(alloc.per_worker.data());
  }
}
BENCHMARK(BM_ProportionalAllocation)->Arg(12)->Arg(50)->Arg(500);

void BM_LstmStep(benchmark::State& state) {
  const predict::Lstm lstm(1, 4, 7);
  predict::Lstm::State st = lstm.initial_state();
  const double x[1] = {0.8};
  for (auto _ : state) {
    const double y = lstm.step(std::span<const double>(x, 1), st);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_LstmStep);

}  // namespace

BENCHMARK_MAIN();
