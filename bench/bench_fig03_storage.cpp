// Fig 3: storage overhead of uncoded computation with perfect speed
// prediction vs S2C2 over 270 logistic-regression iterations.
// Paper: uncoded needs ~67% of the full matrix per node to avoid runtime
// data movement; S2C2 with (12,10)-MDS needs a flat 10%.
#include "bench/bench_common.h"

#include "src/baselines/storage_study.h"

int main() {
  using namespace s2c2;
  bench::print_header(
      "Fig 3 — per-node storage needed to avoid runtime data movement",
      "270 LR iterations, 12 workers, drifting cloud speeds, *perfect*\n"
      "speed prediction for the uncoded scheme (best case for uncoded).\n"
      "Paper: uncoded ~67% of full data per node; S2C2 (12,10) flat at 10%.");

  // Per-round speeds: volatile cloud with per-node continuous contention
  // levels so the proportional-allocation boundaries drift across the
  // whole matrix, as they did on the paper's measured traces.
  util::Rng rng(1234);
  auto cfg = workload::volatile_cloud_config();
  cfg.continuous_levels = true;
  cfg.continuous_level_min = 0.05;  // shared tenants swing up to 20x
  cfg.switch_prob = 0.2;
  const auto series = workload::cloud_speed_corpus(12, 270, cfg, rng);
  std::vector<std::vector<double>> speeds_per_round(270,
                                                    std::vector<double>(12));
  for (std::size_t r = 0; r < 270; ++r) {
    for (std::size_t w = 0; w < 12; ++w) {
      speeds_per_round[r][w] = series[w][r];
    }
  }

  const auto result =
      baselines::run_storage_study(speeds_per_round, 120000, 10);

  util::Table t({"iteration", "uncoded mean storage fraction",
                 "S2C2 (12,10) fraction"});
  for (std::size_t it : {0u, 30u, 60u, 90u, 120u, 150u, 180u, 210u, 240u,
                         269u}) {
    t.add_row({std::to_string(it + 1),
               util::fmt(result.uncoded_mean_fraction[it], 3),
               util::fmt(result.s2c2_fraction, 3)});
  }
  t.print();

  std::cout << "\nFinal uncoded fraction: "
            << util::fmt(result.uncoded_mean_fraction.back(), 3)
            << "  (paper: ~0.67)\n"
            << "S2C2 fraction:          " << util::fmt(result.s2c2_fraction, 3)
            << "  (paper: 0.10, constant)\n";
  return 0;
}
