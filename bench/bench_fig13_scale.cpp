// Fig 13: scalability — SVM on a 51-node cluster (50 workers + master)
// with a (50,40)-MDS code.
// Paper: S2C2 reduces execution time by 25% under low mis-prediction (the
// ideal (50-40)/40) and 12% under high mis-prediction.
#include "bench/bench_common.h"

int main() {
  using namespace s2c2;
  bench::print_header(
      "Fig 13 — 51-node cluster, (50,40)-MDS, SVM",
      "50 workers; normalized to (50,40)-S2C2 in each environment.");

  bench::WorkloadShape shape;
  shape.rows = 100000;  // scaled-up dataset for the bigger fleet
  // Wide rows keep worker compute dominant over the k=40 master decode
  // (decode/compute per round ~ k² / (0.8 · 2 · cols)).
  shape.cols = 10000;
  const std::size_t rounds = 15;
  const std::size_t chunks = 120;

  // Low mis-prediction: near-uniform node speeds (as in Fig 8).
  auto low_cfg = workload::stable_cloud_config();
  low_cfg.regime_levels = {1.0, 0.96};
  const auto low_spec = bench::cloud_spec(50, low_cfg, 41, 0.03);
  const double low_mds =
      bench::run_coded(core::StrategyKind::kMds, 50, 40, shape,
                       low_spec, rounds, chunks, true)
          .mean_latency;
  const auto low_s2c2 = bench::run_coded(core::StrategyKind::kS2C2, 50, 40,
                                         shape, low_spec, rounds, chunks,
                                         true);

  // High mis-prediction. Trace samples are one round long (~50 ms with
  // the wide rows) so observed speeds match the trained dynamics.
  const auto high_cfg = workload::volatile_cloud_config();
  const predict::Lstm lstm = bench::train_speed_lstm(high_cfg, 141);
  const auto high_spec = bench::cloud_spec(50, high_cfg, 241, 0.05);
  const double high_mds =
      bench::run_coded(core::StrategyKind::kMds, 50, 40, shape,
                       high_spec, rounds, chunks, true)
          .mean_latency;
  const auto high_s2c2 = bench::run_coded(core::StrategyKind::kS2C2, 50, 40,
                                          shape, high_spec, rounds, chunks,
                                          false, &lstm);

  util::Table t({"environment", "scheme", "measured", "paper"});
  t.add_row({"low mis-prediction", "MDS(50,40)",
             util::fmt(low_mds / low_s2c2.mean_latency, 2), "1.25"});
  t.add_row({"low mis-prediction", "S2C2(50,40)", "1.00", "1.00"});
  t.add_row({"high mis-prediction", "MDS(50,40)",
             util::fmt(high_mds / high_s2c2.mean_latency, 2), "1.12"});
  t.add_row({"high mis-prediction", "S2C2(50,40)", "1.00", "1.00"});
  t.print();

  std::cout << "\nPaper reductions: 25% (low, = ideal (50-40)/40), 12% "
               "(high).\n"
            << "Measured reductions: "
            << util::fmt(100.0 * (low_mds - low_s2c2.mean_latency) / low_mds,
                         1)
            << "% (low), "
            << util::fmt(
                   100.0 * (high_mds - high_s2c2.mean_latency) / high_mds, 1)
            << "% (high)\n"
            << "High-environment LSTM mis-prediction rate: "
            << util::fmt(100.0 * high_s2c2.mispred_rate, 1) << "%\n";
  return 0;
}
