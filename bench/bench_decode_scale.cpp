// Decode-scale benchmark: the seed dense-LU decode path (a fresh O(k³)
// factorization per responder set per round) against the cached,
// Schur-reduced DecodeContext (coding/decode_context.h), wall-clock, at
// recovery dimensions up to the thousand-worker fleet. Responder sets
// cycle through a small pool, mirroring iterative jobs whose sets repeat
// heavily across rounds; both paths decode the same multi-RHS batches and
// the results are cross-checked to 1e-9 before any timing is trusted.
//
// Emits a JSON snapshot (default: BENCH_decode.json — CI uploads it as the
// perf-trajectory baseline artifact; a reference copy is checked in at
// bench/baselines/BENCH_decode.json) and exits nonzero if the per-round
// speedup for repeated responder sets at k >= 40 falls below the 5x
// acceptance bar (measured speedups are 1-3 orders above it; methodology
// and a results table: docs/PERFORMANCE.md).
//
// Usage: bench_decode_scale [rounds=12] [json_path=BENCH_decode.json]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/coding/decode_context.h"
#include "src/coding/generator_matrix.h"
#include "src/linalg/lu.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace {

using namespace s2c2;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Case {
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t columns = 0;     // RHS columns per decode (batched chunks)
  std::size_t rounds = 0;      // repeated-responder-set rounds timed
  std::size_t pool = 0;        // distinct responder sets cycled through
  double dense_ms_per_round = 0.0;
  double cached_ms_per_round = 0.0;
  double speedup = 0.0;
  double max_diff = 0.0;       // dense vs cached numeric agreement
};

/// The responder-set pool: set i drops systematic workers in a sliding
/// window and backfills with the parity rows — the shape wrap-around
/// allocations actually produce.
std::vector<std::vector<std::size_t>> make_pool(std::size_t n, std::size_t k,
                                                std::size_t pool) {
  std::vector<std::vector<std::size_t>> sets(pool);
  const std::size_t p = n - k;
  for (std::size_t i = 0; i < pool; ++i) {
    std::vector<std::size_t>& s = sets[i];
    for (std::size_t w = 0; w < k; ++w) {
      s.push_back((w + i) % k < k - p ? w : k + (w + i) % p);
    }
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    // Top up if the modular backfill collided (possible for small p).
    for (std::size_t w = 0; s.size() < k && w < n; ++w) {
      if (std::find(s.begin(), s.end(), w) == s.end()) s.push_back(w);
    }
    std::sort(s.begin(), s.end());
  }
  return sets;
}

Case run_case(std::size_t n, std::size_t k, std::size_t columns,
              std::size_t rounds, util::Rng& rng) {
  Case c;
  c.n = n;
  c.k = k;
  c.columns = columns;
  c.rounds = rounds;
  c.pool = 4;
  const coding::GeneratorMatrix gen(n, k);
  const auto pool = make_pool(n, k, c.pool);

  std::vector<double> rhs(k * columns);
  for (auto& v : rhs) v = rng.normal();

  // Both paths time the decode proper — factorization + solve — with the
  // RHS staged outside the clock (response buffers exist either way).
  // Seed path: every round refactorizes its responder set densely.
  std::vector<std::vector<double>> dense_out;
  double dense_s = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto& subset = pool[r % pool.size()];
    std::vector<double> out = rhs;
    const auto t0 = Clock::now();
    const linalg::LuFactorization lu(gen.submatrix(subset));
    lu.solve_inplace(out, columns);
    dense_s += seconds_since(t0);
    dense_out.push_back(std::move(out));
  }
  c.dense_ms_per_round = 1e3 * dense_s / static_cast<double>(rounds);

  // Cached path: one persistent context across every round.
  coding::DecodeContext ctx(gen);
  std::vector<std::vector<double>> cached_out;
  double cached_s = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<double> out = rhs;
    const auto t0 = Clock::now();
    ctx.solve_inplace(pool[r % pool.size()], out, columns);
    cached_s += seconds_since(t0);
    cached_out.push_back(std::move(out));
  }
  c.cached_ms_per_round = 1e3 * cached_s / static_cast<double>(rounds);

  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < rhs.size(); ++i) {
      c.max_diff = std::max(c.max_diff,
                            std::abs(dense_out[r][i] - cached_out[r][i]));
    }
  }
  c.speedup = c.cached_ms_per_round > 0.0
                  ? c.dense_ms_per_round / c.cached_ms_per_round
                  : 0.0;
  return c;
}

void write_json(const std::string& path, const std::vector<Case>& cases) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"decode_scale\",\n  \"unit\": \"ms_per_round\",\n"
      << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    out << "    {\"n\": " << c.n << ", \"k\": " << c.k
        << ", \"columns\": " << c.columns << ", \"rounds\": " << c.rounds
        << ", \"responder_sets\": " << c.pool
        << ", \"dense_ms_per_round\": " << c.dense_ms_per_round
        << ", \"cached_ms_per_round\": " << c.cached_ms_per_round
        << ", \"speedup\": " << c.speedup
        << ", \"max_abs_diff\": " << c.max_diff << "}"
        << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rounds = argc > 1 ? std::stoul(argv[1]) : 12;
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_decode.json";

  std::cout << "Decode at fleet scale — dense per-round LU (seed) vs cached "
               "Schur-reduced DecodeContext\n"
            << rounds << " rounds, 4 responder sets cycled, 96-column "
               "batched RHS; numeric agreement checked to 1e-9.\n\n";

  util::Rng rng(0x5eedull);
  std::vector<Case> cases;
  for (const std::size_t k : {40u, 100u, 250u, 998u}) {
    cases.push_back(run_case(k + 2, k, 96, rounds, rng));
  }

  util::Table t({"n", "k", "dense ms/round", "cached ms/round", "speedup",
                 "max |diff|"});
  for (const Case& c : cases) {
    t.add_row({std::to_string(c.n), std::to_string(c.k),
               util::fmt(c.dense_ms_per_round, 3),
               util::fmt(c.cached_ms_per_round, 3),
               util::fmt(c.speedup, 1) + "x", util::fmt_sci(c.max_diff)});
  }
  t.print();
  write_json(json_path, cases);
  std::cout << "\nwrote " << json_path << "\n";

  bool ok = true;
  for (const Case& c : cases) {
    if (c.max_diff > 1e-9) {
      std::cout << "FAIL: dense/cached decode disagree at k=" << c.k
                << " (max |diff| " << c.max_diff << ")\n";
      ok = false;
    }
    if (c.k >= 40 && c.speedup < 5.0) {
      std::cout << "FAIL: speedup " << c.speedup << "x < 5x at k=" << c.k
                << "\n";
      ok = false;
    }
  }
  if (ok) std::cout << "acceptance: >= 5x at every k >= 40 — PASS\n";
  return ok ? 0 : 1;
}
