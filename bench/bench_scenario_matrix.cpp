// Cross-engine scenario matrix at paper scale (cost-only) on the parallel
// matrix runner: every engine x workload x trace-profile cell, widened with
// the cluster-scale and predictor axes, from one fixed seed. This is the
// condensed version of the paper's whole evaluation section — Figs 6-11
// each correspond to a slice of this table — plus the executor benchmark:
// the same grid is run at --jobs 1 and --jobs N and must produce identical
// fingerprints, with the wall-clock ratio reported as the sharding speedup.
//
//   build/bench/bench_scenario_matrix [seed] [rounds] [scale] [jobs]
//
// jobs defaults to all hardware threads (min 4, so the determinism cross-
// check always exercises a genuinely concurrent run).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/harness/matrix_runner.h"
#include "src/util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace s2c2;
  using Clock = std::chrono::steady_clock;

  harness::ScenarioConfig cfg;
  cfg.workers = 12;
  cfg.stragglers = 2;
  cfg.rounds = 12;
  cfg.functional = false;
  std::size_t jobs =
      std::max<std::size_t>(4, util::ThreadPool::hardware_threads());
  if (argc > 1) cfg.seed = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) cfg.rounds = std::strtoul(argv[2], nullptr, 10);
  if (argc > 3) cfg.scale = std::strtod(argv[3], nullptr);
  if (argc > 4) jobs = std::strtoul(argv[4], nullptr, 10);

  // The widened grid: 3 cluster scales x 4 predictors x engines x
  // workloads x 4 trace profiles (failure injection included), with the
  // registry additions lt (threshold collection + peel decode) and agc
  // (adaptive redundancy) riding beside the four paper families. Workloads
  // are trimmed to the two mat-vec shapes so a laptop run stays minutes.
  harness::MatrixAxes axes = harness::MatrixAxes::full();
  axes.engines.push_back(harness::StrategyKind::kLt);
  axes.engines.push_back(harness::StrategyKind::kAgc);
  axes.workloads = {harness::WorkloadKind::kLogisticRegression,
                    harness::WorkloadKind::kPageRank};

  bench::print_header(
      "Scenario matrix — engine x workload x trace x scale x predictor",
      "cost-only paper-scale operators, seed " + std::to_string(cfg.seed) +
          ", " + std::to_string(cfg.rounds) + " rounds/cell, " +
          std::to_string(harness::expand_axes(cfg, axes).size()) + " cells");

  // Untimed warmup: trains the per-column predictor models once, so the
  // timed runs compare the executor rather than who pays the model cache.
  (void)harness::run_matrix(cfg, axes, {.jobs = jobs});

  const auto t_serial0 = Clock::now();
  const auto serial = harness::run_matrix(cfg, axes, {.jobs = 1});
  const double serial_s =
      std::chrono::duration<double>(Clock::now() - t_serial0).count();

  const auto t_par0 = Clock::now();
  const auto parallel = harness::run_matrix(cfg, axes, {.jobs = jobs});
  const double parallel_s =
      std::chrono::duration<double>(Clock::now() - t_par0).count();

  util::Table t({"engine", "workload", "trace", "n", "predictor",
                 "mean latency (ms)", "timeout %", "wasted %"});
  for (const auto& cell : parallel.cells) {
    t.add_row({core::strategy_name(cell.engine),
               harness::workload_name(cell.workload),
               harness::trace_profile_name(cell.trace),
               std::to_string(cell.workers),
               harness::predictor_name(cell.predictor),
               cell.failed ? "failed" : util::fmt(cell.mean_latency * 1e3, 3),
               cell.failed ? "-" : util::fmt(100.0 * cell.timeout_rate, 1),
               cell.failed ? "-"
                           : util::fmt(100.0 * cell.mean_wasted_fraction, 1)});
  }
  t.print();

  // Normalized headline: S2C2 vs the mat-vec baselines on the straggler
  // cluster (the paper's Fig 6/7 comparison, collapsed to means), at the
  // base scale with oracle speeds.
  std::cout << "\nnormalized mean latency vs s2c2 (controlled stragglers, "
               "logreg, n=12, oracle):\n";
  const auto* ref = parallel.find(harness::StrategyKind::kS2C2,
                                  harness::WorkloadKind::kLogisticRegression,
                                  harness::TraceProfile::kControlledStragglers,
                                  12, harness::PredictorKind::kOracle);
  for (const auto e :
       {harness::StrategyKind::kS2C2, harness::StrategyKind::kReplication,
        harness::StrategyKind::kOverDecomp, harness::StrategyKind::kLt,
        harness::StrategyKind::kAgc}) {
    const auto* cell =
        parallel.find(e, harness::WorkloadKind::kLogisticRegression,
                      harness::TraceProfile::kControlledStragglers, 12,
                      harness::PredictorKind::kOracle);
    if (ref == nullptr || cell == nullptr || ref->mean_latency <= 0.0) break;
    std::cout << "  " << core::strategy_name(e) << ": "
              << util::fmt(cell->mean_latency / ref->mean_latency, 3) << "x\n";
  }

  const bool identical = serial.fingerprint() == parallel.fingerprint();
  std::cout << "\nexecutor: jobs=1 " << util::fmt(serial_s, 2)
            << " s | jobs=" << jobs << " " << util::fmt(parallel_s, 2)
            << " s | speedup " << util::fmt(serial_s / parallel_s, 2)
            << "x (" << util::ThreadPool::hardware_threads()
            << " hardware threads)\n";
  std::cout << "determinism: serial and parallel fingerprints "
            << (identical ? "IDENTICAL" : "DIFFER — REGRESSION") << "\n";
  std::cout << "\nmatrix fingerprint: " << parallel.fingerprint() << "\n";
  return identical ? 0 : 1;
}
