// Cross-engine scenario matrix at paper scale (cost-only): every engine x
// workload x trace-profile cell from one fixed seed, reporting mean round
// latency, timeout rate, and wasted work. This is the condensed version of
// the paper's whole evaluation section — Figs 6-11 each correspond to a
// slice of this table.
//
//   build/bench/bench_scenario_matrix [seed] [rounds] [scale]
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/harness/scenario_matrix.h"

int main(int argc, char** argv) {
  using namespace s2c2;

  harness::ScenarioConfig cfg;
  cfg.workers = 12;
  cfg.stragglers = 2;
  cfg.rounds = 12;
  cfg.functional = false;
  if (argc > 1) cfg.seed = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) cfg.rounds = std::strtoul(argv[2], nullptr, 10);
  if (argc > 3) cfg.scale = std::strtod(argv[3], nullptr);

  bench::print_header(
      "Scenario matrix — engine x workload x trace profile",
      "cost-only paper-scale operators, oracle speeds, seed " +
          std::to_string(cfg.seed) + ", " + std::to_string(cfg.rounds) +
          " rounds/cell");

  const auto m = harness::run_scenario_matrix(cfg);

  util::Table t({"engine", "workload", "trace", "mean latency (ms)",
                 "timeout %", "wasted %"});
  for (const auto& cell : m.cells) {
    t.add_row({harness::engine_name(cell.engine),
               harness::workload_name(cell.workload),
               harness::trace_profile_name(cell.trace),
               util::fmt(cell.mean_latency * 1e3, 3),
               util::fmt(100.0 * cell.timeout_rate, 1),
               util::fmt(100.0 * cell.mean_wasted_fraction, 1)});
  }
  t.print();

  // Normalized headline: S2C2 vs the mat-vec baselines on the straggler
  // cluster (the paper's Fig 6/7 comparison, collapsed to means). Poly is
  // excluded — its cell computes a d x d Hessian, not the same product.
  std::cout << "\nnormalized mean latency vs s2c2 (controlled stragglers, "
               "logreg):\n";
  const auto* ref = m.find(harness::EngineKind::kS2C2,
                           harness::WorkloadKind::kLogisticRegression,
                           harness::TraceProfile::kControlledStragglers);
  for (const auto e :
       {harness::EngineKind::kS2C2, harness::EngineKind::kReplication,
        harness::EngineKind::kOverDecomposition}) {
    const auto* cell =
        m.find(e, harness::WorkloadKind::kLogisticRegression,
               harness::TraceProfile::kControlledStragglers);
    if (ref == nullptr || cell == nullptr || ref->mean_latency <= 0.0) break;
    std::cout << "  " << harness::engine_name(e) << ": "
              << util::fmt(cell->mean_latency / ref->mean_latency, 3) << "x\n";
  }
  std::cout << "\nmatrix fingerprint: " << m.fingerprint() << "\n";
  return 0;
}
