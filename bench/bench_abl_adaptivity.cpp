// Ablation: how much of S2C2's win comes from *per-round adaptation*?
// Compares three schedulers on identical volatile traces and identical
// (10,7) coded data:
//   * static heterogeneity-aware split (Reisizadeh et al. [34] style):
//     speeds averaged over a warmup window, then frozen;
//   * adaptive S2C2 with the trained LSTM (the paper's system);
//   * adaptive S2C2 with oracle speeds (upper bound).
#include "bench/bench_common.h"

int main() {
  using namespace s2c2;
  bench::print_header(
      "Ablation — static vs adaptive speed-aware allocation",
      "(10,7)-S2C2 allocation driven by three speed sources, volatile\n"
      "cloud. Latency normalized to the oracle run.");

  const bench::WorkloadShape shape;
  const std::size_t rounds = 40;
  const std::size_t chunks = 100;
  const auto cfg = workload::volatile_cloud_config();
  const predict::Lstm lstm = bench::train_speed_lstm(cfg, 71);
  const auto spec = bench::cloud_spec(10, cfg, 72, 0.012);

  auto run = [&](std::unique_ptr<predict::SpeedPredictor> pred, bool oracle) {
    core::EngineConfig ecfg;
    ecfg.strategy = core::StrategyKind::kS2C2;
    ecfg.chunks_per_partition = chunks;
    ecfg.oracle_speeds = oracle;
    auto job = core::CodedMatVecJob::cost_only(shape.rows, shape.cols, 10, 7,
                                               chunks);
    core::CodedComputeEngine engine(job, spec, ecfg, std::move(pred));
    const auto results = engine.run_rounds(rounds);
    struct Out {
      double latency;
      double timeouts;
    };
    return Out{core::total_latency(results) / static_cast<double>(rounds),
               engine.timeout_rate()};
  };

  const auto oracle = run(nullptr, true);
  const auto adaptive =
      run(std::make_unique<predict::LstmPredictor>(10, lstm), false);
  const auto frozen =
      run(std::make_unique<predict::FrozenSpeedPredictor>(10, 3), false);

  util::Table t({"scheduler", "normalized latency", "timeout rate"});
  t.add_row({"static split (frozen after 3-round warmup)",
             util::fmt(frozen.latency / oracle.latency, 3),
             util::fmt(frozen.timeouts, 2)});
  t.add_row({"adaptive S2C2 + LSTM (paper)",
             util::fmt(adaptive.latency / oracle.latency, 3),
             util::fmt(adaptive.timeouts, 2)});
  t.add_row({"adaptive S2C2 + oracle", "1.000", util::fmt(oracle.timeouts, 2)});
  t.print();

  std::cout << "\nThe paper's key ingredient (§8: prior coded-computing\n"
               "works split statically; S2C2 \"dynamically adapts the\n"
               "computation load of each node\"): a static split cannot\n"
               "follow regime changes, so it keeps paying timeout\n"
               "recoveries that adaptation avoids.\n";
  return 0;
}
