// Figs 8 + 9: SVM on the 10-worker cloud in the LOW mis-prediction
// environment (stable speeds; predictions effectively exact, so we run the
// oracle predictor — the paper observed a 0% mis-prediction rate here).
//
// Fig 8 paper series (normalized to (10,7)-S2C2 = 1.00):
//   over-decomposition 1.00 | MDS(8,7) 1.36 | MDS(9,7) 1.31 |
//   MDS(10,7) 1.39 | S2C2(8,7) 1.23 | S2C2(9,7) 1.09 | S2C2(10,7) 1.00
// Fig 9: per-worker wasted computation — MDS wastes up to ~90% on nearly-
// fast workers, S2C2 wastes none.
#include "bench/bench_common.h"

int main() {
  using namespace s2c2;
  bench::print_header(
      "Fig 8 — cloud execution time, LOW mis-prediction environment",
      "10 shared-cloud workers, SVM iterations, stable speeds.\n"
      "Normalized to (10,7)-S2C2.");

  const bench::WorkloadShape shape;
  const std::size_t rounds = 15;
  const std::size_t chunks = 100;
  // Paper §7.2.1: the 0% mis-prediction runs happened "when there are no
  // significant variations in speeds between the nodes" — near-uniform
  // node levels with gentle wander (two close contention levels keeps the
  // Fig 9 waste pattern: persistent slightly-slow nodes lose the MDS race).
  auto cfg = workload::stable_cloud_config();
  cfg.regime_levels = {1.0, 0.96};

  // One 10-worker environment; (n,7) schemes use the first n workers.
  const core::ClusterSpec spec10 = bench::cloud_spec(10, cfg, 77, 0.03);
  auto sub_spec = [&](std::size_t n) {
    core::ClusterSpec s = spec10;
    s.traces = std::vector<sim::SpeedTrace>(spec10.traces.begin(),
                                            spec10.traces.begin() +
                                                static_cast<std::ptrdiff_t>(n));
    return s;
  };

  const double overdecomp =
      bench::run_overdecomp(shape, spec10, rounds, true);
  std::vector<double> mds, s2c2;
  std::vector<bench::CodedRunResult> full;
  for (std::size_t n : {8u, 9u, 10u}) {
    mds.push_back(bench::run_coded(core::StrategyKind::kMds, n, 7,
                                   shape, sub_spec(n), rounds, chunks, true)
                      .mean_latency);
    full.push_back(bench::run_coded(core::StrategyKind::kS2C2, n, 7, shape,
                                    sub_spec(n), rounds, chunks, true));
    s2c2.push_back(full.back().mean_latency);
  }
  const double base = s2c2[2];  // (10,7)-S2C2

  util::Table t({"scheme", "measured", "paper"});
  t.add_row({"over-decomposition", util::fmt(overdecomp / base, 2), "1.00"});
  t.add_row({"MDS(8,7)", util::fmt(mds[0] / base, 2), "1.36"});
  t.add_row({"MDS(9,7)", util::fmt(mds[1] / base, 2), "1.31"});
  t.add_row({"MDS(10,7)", util::fmt(mds[2] / base, 2), "1.39"});
  t.add_row({"S2C2(8,7)", util::fmt(s2c2[0] / base, 2), "1.23"});
  t.add_row({"S2C2(9,7)", util::fmt(s2c2[1] / base, 2), "1.09"});
  t.add_row({"S2C2(10,7)", "1.00", "1.00"});
  t.print();

  std::cout << "\nKey claim: (10,7)-MDS is "
            << util::fmt(100.0 * (mds[2] - base) / base, 1)
            << "% slower than (10,7)-S2C2  (paper: 39.3%, ideal "
               "(10-7)/7 = 42.8%)\n";

  // ---- Fig 9: wasted computation per worker ----
  bench::print_header(
      "Fig 9 — per-worker wasted computation, LOW mis-prediction",
      "Fraction of computed work the master ignored ((10,7) code).\n"
      "Paper: MDS wastes heavily on the 3 ignored workers (up to ~90%);\n"
      "S2C2 wastes nothing when predictions hold.");
  const auto mds_full = bench::run_coded(core::StrategyKind::kMds, 10,
                                         7, shape, spec10, rounds, chunks,
                                         true);
  const auto& s2c2_full = full[2];
  util::Table w({"worker", "(10,7)-MDS wasted %", "(10,7)-S2C2 wasted %"});
  for (std::size_t i = 0; i < 10; ++i) {
    w.add_row({"worker " + std::to_string(i + 1),
               util::fmt(100.0 * mds_full.wasted_fraction[i], 1),
               util::fmt(100.0 * s2c2_full.wasted_fraction[i], 1)});
  }
  w.print();
  std::cout << "\nMeasured mis-prediction-rate proxy (timeout rate): "
            << util::fmt(100.0 * s2c2_full.timeout_rate, 1)
            << "%  (paper: 0%)\n";
  return 0;
}
