// Ablation: coding redundancy n-k — the design space behind Figs 6 and 8.
// Conventional MDS pays 1/k per worker regardless of observed stragglers;
// S2C2's cost tracks the *actual* surviving capacity, so the programmer
// can buy worst-case insurance (small k) nearly for free. This sweep makes
// that argument quantitative.
#include "bench/bench_common.h"

int main() {
  using namespace s2c2;
  bench::print_header(
      "Ablation — redundancy k for n = 12 (paper's central trade-off)",
      "Controlled cluster, oracle speeds. Latency normalized to\n"
      "S2C2(12,11) with 0 stragglers.");

  const bench::WorkloadShape shape;
  const std::size_t rounds = 15;
  const std::size_t chunks = 48;

  // Baseline: lightest possible coding, all workers fast.
  const double base =
      bench::run_coded(core::StrategyKind::kS2C2, 12, 11, shape,
                       bench::controlled_spec(12, 0, 0.0, 400), rounds,
                       chunks, true)
          .mean_latency;

  util::Table t({"k", "scheme", "0 stragglers", "2 stragglers",
                 "4 stragglers"});
  for (std::size_t k : {6u, 8u, 10u, 11u}) {
    std::vector<double> mds_row, s2c2_row;
    for (std::size_t s : {0u, 2u, 4u}) {
      const auto spec = bench::controlled_spec(12, s, 0.0, 400 + s);
      const std::size_t max_tolerated = 12 - k;
      if (s > max_tolerated) {
        mds_row.push_back(-1.0);  // code cannot decode: marked n/a below
        s2c2_row.push_back(-1.0);
        continue;
      }
      mds_row.push_back(
          bench::run_coded(core::StrategyKind::kMds, 12, k, shape,
                           spec, rounds, chunks, true)
              .mean_latency /
          base);
      s2c2_row.push_back(
          bench::run_coded(core::StrategyKind::kS2C2, 12, k, shape, spec,
                           rounds, chunks, true)
              .mean_latency /
          base);
    }
    auto fmt_row = [](const std::vector<double>& v) {
      std::vector<std::string> cells;
      for (double x : v) {
        cells.push_back(x < 0.0 ? "n/a (k too large)" : util::fmt(x, 2));
      }
      return cells;
    };
    const auto m = fmt_row(mds_row);
    const auto s2 = fmt_row(s2c2_row);
    t.add_row({"(12," + std::to_string(k) + ")", "MDS", m[0], m[1], m[2]});
    t.add_row({"(12," + std::to_string(k) + ")", "S2C2", s2[0], s2[1], s2[2]});
  }
  t.print();
  std::cout
      << "\nExpected: MDS latency at 0 stragglers grows as k shrinks\n"
      << "(12/k per worker); S2C2 stays ~1.0 at 0 stragglers for every k —\n"
      << "conservative coding becomes free insurance (the paper's thesis).\n";
  return 0;
}
