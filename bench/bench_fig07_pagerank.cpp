// Fig 7: PageRank on the controlled 12-worker cluster, same scheme grid
// as Fig 6. The operator is the link matrix of a power-law web graph; its
// per-row work is the average degree, so the cost-only job uses
// (nodes x avg-degree) as the effective dense shape.
#include "bench/bench_common.h"

#include "src/workload/graphs.h"

int main() {
  using namespace s2c2;
  bench::print_header(
      "Fig 7 — PageRank execution time, controlled cluster (12 workers)",
      "Power-law web graph; one power iteration = one coded matvec.\n"
      "Normalized to uncoded 3-replication @ 0 stragglers.");

  // Build a real graph to derive the effective workload shape.
  util::Rng rng(2718);
  const auto graph = workload::power_law_digraph(120000, 16, rng);
  const auto link = workload::link_matrix(graph);
  const std::size_t avg_degree = link.nnz() / link.rows();
  bench::WorkloadShape shape;
  shape.rows = link.rows();
  shape.cols = avg_degree * 40;  // sparse row work, scaled to SVM-like cost

  const std::size_t rounds = 15;
  const std::size_t chunks = 30;

  std::vector<double> uncoded, mds10, mds6, basic6, general6;
  for (std::size_t s = 0; s <= 6; ++s) {
    const auto spec = bench::controlled_spec(12, s, 0.2, 200);
    uncoded.push_back(bench::run_replication(shape, spec, rounds));
    mds10.push_back(bench::run_coded(core::StrategyKind::kMds, 12, 10,
                                     shape, spec, rounds, chunks, true)
                        .mean_latency);
    mds6.push_back(bench::run_coded(core::StrategyKind::kMds, 12, 6,
                                    shape, spec, rounds, chunks, true)
                       .mean_latency);
    basic6.push_back(bench::run_coded(core::StrategyKind::kS2C2Basic, 12, 6,
                                      shape, spec, rounds, chunks, true)
                         .mean_latency);
    general6.push_back(bench::run_coded(core::StrategyKind::kS2C2, 12, 6,
                                        shape, spec, rounds, chunks, true)
                           .mean_latency);
  }
  const double base = uncoded[0];

  util::Table t({"scheme", "0", "1", "2", "3", "4", "5", "6"});
  t.add_row_numeric("uncoded 3-rep + speculation",
                    util::normalized_by(uncoded, base), 2);
  t.add_row_numeric("(12,10)-MDS", util::normalized_by(mds10, base), 2);
  t.add_row_numeric("(12,6)-MDS", util::normalized_by(mds6, base), 2);
  t.add_row_numeric("S2C2 (12,6), assume equal speeds",
                    util::normalized_by(basic6, base), 2);
  t.add_row_numeric("S2C2 (12,6), exact speeds",
                    util::normalized_by(general6, base), 2);
  t.print();

  std::cout << "\nShape check (paper Fig 7): S2C2 outperforms all baselines\n"
            << "at every straggler count; general S2C2 <= basic S2C2: "
            << (general6[2] <= basic6[2] ? "yes" : "NO") << "\n";
  return 0;
}
