// §6.1 prediction-accuracy study: LSTM vs ARIMA family on held-out speed
// traces (80/20 split). Paper: the best LSTM (1-dim input, 4-dim hidden)
// reaches 16.7% MAPE, ~5 points better than ARIMA(1,0,0), which in turn is
// the best ARIMA variant.
#include "bench/bench_common.h"

#include "src/predict/evaluation.h"

int main() {
  using namespace s2c2;
  bench::print_header(
      "§6.1 — speed prediction accuracy (MAPE on held-out traces)",
      "Corpus: 60 nodes x 250 iterations of cloud speed traces (mixed\n"
      "stable/volatile, as measured traces mix quiet and noisy nodes).\n"
      "Paper: LSTM 16.7% MAPE, ~5 points better than ARIMA(1,0,0).");

  // Mixed corpus: volatility varies per node like real fleets, and every
  // node carries the periodic co-tenant contention pattern (random phase)
  // that gives a recurrent model its edge over one-lag ARIMA.
  util::Rng rng(2025);
  std::vector<std::vector<double>> corpus;
  auto vol = workload::volatile_cloud_config();
  vol.periodic_amplitude = 0.2;
  vol.periodic_period = 12.0;
  vol.periodic_period_jitter = 0.35;
  auto sta = workload::stable_cloud_config();
  sta.periodic_amplitude = 0.2;
  sta.periodic_period = 12.0;
  sta.periodic_period_jitter = 0.35;
  for (int i = 0; i < 30; ++i) {
    corpus.push_back(workload::cloud_speed_series(250, vol, rng));
  }
  for (int i = 0; i < 30; ++i) {
    corpus.push_back(workload::cloud_speed_series(250, sta, rng));
  }
  rng.shuffle(corpus);

  predict::EvaluationConfig cfg;
  cfg.lstm_train.epochs = 60;
  const auto reports = predict::evaluate_predictors(corpus, cfg);

  util::Table t({"model", "MAPE (measured)", "paper"});
  for (const auto& r : reports) {
    std::string paper = "-";
    if (r.model == "LSTM(h=4)") paper = "16.7%";
    if (r.model == "ARIMA(1,0,0)") paper = "~21.7% (LSTM - 5pt)";
    t.add_row({r.model, util::fmt(r.mape, 1) + "%", paper});
  }
  t.print();

  const double lstm = reports[0].mape;
  const double ar1 = reports[1].mape;
  const double best_arima =
      std::min({ar1, reports[2].mape, reports[3].mape});
  std::cout << "\nShape checks (paper §6.1):\n"
            << "  LSTM better than ARIMA(1,0,0): "
            << (lstm < ar1 ? "yes" : "NO") << " (delta "
            << util::fmt(ar1 - lstm, 1) << " points; paper: ~5)\n"
            << "  LSTM better than the best ARIMA variant: "
            << (lstm < best_arima ? "yes" : "NO") << "\n"
            << "\nNote: on the paper's measured traces ARIMA(1,0,0) was the\n"
               "best ARIMA variant; on our synthetic traces the periodic\n"
               "component is partially linear-predictable with two lags, so\n"
               "ARIMA(2,0,0) edges out ARIMA(1,0,0). The headline claim —\n"
               "the LSTM beats every ARIMA model — reproduces either way.\n";
  return 0;
}
