// Fig 6: logistic regression on the controlled 12-worker cluster,
// 0-6 stragglers (5x slower), non-stragglers within 20% of each other.
// Schemes: uncoded 3-replication + up to 6 speculative tasks,
// (12,10)-MDS, (12,6)-MDS, S2C2 on (12,6) assuming equal speeds (basic),
// S2C2 on (12,6) knowing the exact speeds (general + oracle).
// All normalized to uncoded with 0 stragglers, as in the paper.
#include "bench/bench_common.h"

int main() {
  using namespace s2c2;
  bench::print_header(
      "Fig 6 — LR execution time, controlled cluster (12 workers)",
      "Stragglers are 5x slower; non-stragglers vary within 20%.\n"
      "Normalized to uncoded 3-replication @ 0 stragglers.");

  const bench::WorkloadShape shape;
  const std::size_t rounds = 15;
  const std::size_t chunks = 30;

  std::vector<double> uncoded, mds10, mds6, basic6, general6;
  for (std::size_t s = 0; s <= 6; ++s) {
    const auto spec = bench::controlled_spec(12, s, 0.2, 100);
    uncoded.push_back(bench::run_replication(shape, spec, rounds));
    mds10.push_back(bench::run_coded(core::StrategyKind::kMds, 12, 10,
                                     shape, spec, rounds, chunks, true)
                        .mean_latency);
    mds6.push_back(bench::run_coded(core::StrategyKind::kMds, 12, 6,
                                    shape, spec, rounds, chunks, true)
                       .mean_latency);
    basic6.push_back(bench::run_coded(core::StrategyKind::kS2C2Basic, 12, 6,
                                      shape, spec, rounds, chunks, true)
                         .mean_latency);
    general6.push_back(bench::run_coded(core::StrategyKind::kS2C2, 12, 6,
                                        shape, spec, rounds, chunks, true)
                           .mean_latency);
  }
  const double base = uncoded[0];

  util::Table t({"scheme", "0", "1", "2", "3", "4", "5", "6"});
  t.add_row_numeric("uncoded 3-rep + speculation",
                    util::normalized_by(uncoded, base), 2);
  t.add_row_numeric("(12,10)-MDS", util::normalized_by(mds10, base), 2);
  t.add_row_numeric("(12,6)-MDS", util::normalized_by(mds6, base), 2);
  t.add_row_numeric("S2C2 (12,6), assume equal speeds",
                    util::normalized_by(basic6, base), 2);
  t.add_row_numeric("S2C2 (12,6), exact speeds",
                    util::normalized_by(general6, base), 2);
  t.print();

  std::cout
      << "\nShape checks (paper Fig 6):\n"
      << "  S2C2 lowest at 0 stragglers; general <= basic everywhere: "
      << (general6[0] <= basic6[0] && general6[3] <= basic6[3] ? "yes" : "NO")
      << "\n"
      << "  (12,6)-MDS flat but ~2x base: @0 = "
      << util::fmt(mds6[0] / base, 2) << ", @6 = "
      << util::fmt(mds6[6] / base, 2) << "\n"
      << "  (12,10)-MDS explodes past 2 stragglers: @3/@2 = "
      << util::fmt(mds10[3] / mds10[2], 2) << "\n"
      << "  uncoded degrades superlinearly past 2: @6/@0 = "
      << util::fmt(uncoded[6] / base, 2) << "\n";
  return 0;
}
