// End-to-end round-loop benchmark: rounds/sec through the full
// StrategyEngine lifecycle — dispatch, §4.3 collection, cached decode,
// accounting — for s2c2 and mds at fleet sizes n ∈ {100, 250, 1000} and
// round widths b ∈ {1, 8}. Unlike bench_decode_scale (decode stage only)
// this times `run_round` / `run_round_block` wall-clock on a warm engine:
// the steady state the blocked linalg kernels and the per-round arena
// optimize. Decoded products are cross-checked against the direct
// operator product before any timing is trusted.
//
// The grid carries an inner_jobs axis (EngineParams::inner_jobs in
// {1, 4, hardware}, deduped): the same warm round loop with the engine's
// kernels, chunk products, and decode groups fanned over the inner pool.
// Fingerprint invariance is enforced inline — every inner-parallel case's
// decoded product must carry the serial case's bits exactly.
//
// Emits a JSON snapshot (default: BENCH_rounds.json — CI uploads it
// beside BENCH_decode.json/BENCH_serve.json; reference copy checked in at
// bench/baselines/BENCH_rounds.json, stamped with the measuring machine's
// hardware_threads) and exits nonzero if
//   (a) rounds/sec at n = 1000, inner_jobs = 1 falls below 2x the pre-PR
//       measurement recorded below, or
//   (b) on a machine with >= 4 hardware threads, warm rounds/sec at
//       n = 1000, b = 8, inner_jobs = 4 falls below 1.8x the inner_jobs=1
//       case (the intra-round parallelism acceptance bar; on narrower
//       machines the scaling bar is reported as SKIPPED — an inner pool
//       cannot beat 1.8x without at least 4 cores to run on).
//
// Pre-PR baseline (commit 89f8eb0, naive kernels + allocating round loop,
// single-core container, Release -O3, `bench_rounds 150`), rounds/sec at
// n = 1000:
//   s2c2 b=1: 191.1   s2c2 b=8: 121.4
//   mds  b=1: 212.7   mds  b=8: 114.8
// The acceptance bar asserts >= 2x these numbers; the kernel-blocking +
// allocation-elimination PR lands well above it (docs/PERFORMANCE.md).
//
// Usage: bench_rounds [rounds=12] [json_path=BENCH_rounds.json]
#include <chrono>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/engine_factory.h"
#include "src/core/strategy_config.h"
#include "src/core/strategy_engine.h"
#include "src/linalg/matrix.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace {

using namespace s2c2;
using Clock = std::chrono::steady_clock;

// Pre-PR rounds/sec at n = 1000 (see header): the self-failing bar is 2x
// these. Indexed [strategy][width] as laid out in kCaseGrid below.
constexpr double kPrePrS2c2B1 = 191.1;
constexpr double kPrePrS2c2B8 = 121.4;
constexpr double kPrePrMdsB1 = 212.7;
constexpr double kPrePrMdsB8 = 114.8;
constexpr double kAcceptFactor = 2.0;
// Intra-round parallelism bar: warm rounds/sec at n = 1000, b = 8,
// inner_jobs = 4 vs. the serial case. Enforced only when the machine has
// >= kScalingMinThreads hardware threads (below that the inner pool is
// oversubscribed and the bar is physically unreachable).
constexpr double kInnerScalingFactor = 1.8;
constexpr std::size_t kScalingMinThreads = 4;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Case {
  core::StrategyKind strategy = core::StrategyKind::kMds;
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t width = 0;
  std::size_t inner_jobs = 1;
  std::size_t rounds = 0;
  double ms_per_round = 0.0;
  double rounds_per_sec = 0.0;
  double max_err = 0.0;  // decoded vs direct product, column 0
  // Column 0 of the last warm decoded product — the inner-parallel cases
  // are checked bit-for-bit against their serial twin's copy.
  linalg::Vector decoded0;
};

/// Mildly heterogeneous constant-speed fleet: speeds uniform in
/// [0.7, 1.3), stable in time, so the oracle predicts exactly, the §4.3
/// timeout never fires, and every round reuses one cached responder-set
/// factorization — the steady state this bench is about.
core::ClusterSpec make_fleet(std::size_t n, util::Rng& rng) {
  core::ClusterSpec spec;
  spec.traces.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    spec.traces.push_back(sim::SpeedTrace::constant(rng.uniform(0.7, 1.3)));
  }
  spec.worker_flops = 1e7;
  spec.master_flops = 1e9;
  return spec;
}

Case run_case(core::StrategyKind strategy, std::size_t n, std::size_t width,
              std::size_t inner_jobs, std::size_t rounds,
              const linalg::Matrix& a) {
  Case c;
  c.strategy = strategy;
  c.n = n;
  c.k = n - 2;
  c.width = width;
  c.inner_jobs = inner_jobs;
  c.rounds = rounds;

  // Case-local seed, pure in (strategy, n, width): every inner_jobs
  // variant of a case runs the identical fleet and input panel, so the
  // decoded-bits cross-check below compares like with like.
  util::Rng rng(0x5eedull ^ (static_cast<std::uint64_t>(n) << 8) ^
                (static_cast<std::uint64_t>(width) << 32) ^
                (static_cast<std::uint64_t>(strategy) << 40));

  core::EngineParams p;
  p.cluster = make_fleet(n, rng);
  p.dense = &a;
  p.k = c.k;
  p.chunks_per_partition = 8;
  p.oracle_speeds = true;
  p.inner_jobs = inner_jobs;
  std::unique_ptr<core::StrategyEngine> engine =
      core::make_engine(strategy, std::move(p));

  linalg::Matrix x_block(a.cols(), width);
  for (double& v : x_block.mutable_data()) v = rng.normal();
  const linalg::Vector x(x_block.data().begin(),
                         x_block.data().begin() +
                             static_cast<std::ptrdiff_t>(a.cols() * width));

  // Direct-product reference for the sanity cross-check (column 0 of the
  // panel at b > 1; x itself at b = 1).
  linalg::Vector x0(a.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) x0[i] = x_block(i, 0);
  const linalg::Vector truth = a.matvec(x0);

  auto run_once = [&]() {
    return width == 1 ? engine->run_round(x)
                      : engine->run_round_block(x_block, width);
  };

  // Warm-up: populate the decode-context cache and any retained scratch;
  // the timed loop below is the steady state. Results are recycled so the
  // engine's result pool is warm too — the contract under which
  // run_round is allocation-free (tests/arena_test.cpp).
  for (int w = 0; w < 3; ++w) {
    core::RoundResult r = run_once();
    linalg::Vector got;
    if (width == 1) {
      got = *r.y;
    } else {
      got.resize(r.y_block->rows());
      for (std::size_t i = 0; i < got.size(); ++i) got[i] = (*r.y_block)(i, 0);
    }
    for (std::size_t i = 0; i < truth.size(); ++i) {
      c.max_err = std::max(c.max_err, std::abs(got[i] - truth[i]));
    }
    c.decoded0 = std::move(got);
    engine->recycle(std::move(r));
  }

  const auto t0 = Clock::now();
  for (std::size_t r = 0; r < rounds; ++r) engine->recycle(run_once());
  const double s = seconds_since(t0);
  c.ms_per_round = 1e3 * s / static_cast<double>(rounds);
  c.rounds_per_sec = static_cast<double>(rounds) / s;
  return c;
}

void write_json(const std::string& path, const std::vector<Case>& cases) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"rounds\",\n  \"unit\": \"rounds_per_sec\",\n"
      << "  \"hardware_threads\": " << util::ThreadPool::hardware_threads()
      << ",\n"
      << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    out << "    {\"strategy\": \"" << core::strategy_name(c.strategy)
        << "\", \"n\": " << c.n << ", \"k\": " << c.k
        << ", \"width\": " << c.width << ", \"inner_jobs\": " << c.inner_jobs
        << ", \"rounds\": " << c.rounds
        << ", \"ms_per_round\": " << c.ms_per_round
        << ", \"rounds_per_sec\": " << c.rounds_per_sec
        << ", \"max_abs_err\": " << c.max_err << "}"
        << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t base_rounds = argc > 1 ? std::stoul(argv[1]) : 12;
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_rounds.json";

  std::cout << "Round-loop throughput — full run_round/run_round_block "
               "lifecycle on a warm engine\n"
            << "oracle speeds, stable fleet, 8 chunks/partition, operator "
               "16k x 48; decoded products cross-checked to 1e-6.\n\n";

  const std::size_t hw = util::ThreadPool::hardware_threads();
  std::vector<std::size_t> inner_axis = {1, 4};
  if (hw != 1 && hw != 4) inner_axis.push_back(hw);

  util::Rng rng(0x5eedull);
  std::vector<Case> cases;
  for (const core::StrategyKind strategy :
       {core::StrategyKind::kS2C2, core::StrategyKind::kMds}) {
    for (const std::size_t n : {100u, 250u, 1000u}) {
      const std::size_t k = n - 2;
      // 16 rows per partition: the worker kernel does real tile-sized
      // work while encode setup stays cheap at n = 1000.
      const linalg::Matrix a =
          linalg::Matrix::random_uniform(16 * k, 48, rng);
      for (const std::size_t width : {1u, 8u}) {
        // Fewer timed rounds at the big sizes; the floor keeps timings
        // meaningful when the arg dials rounds down.
        const std::size_t rounds =
            std::max<std::size_t>(4, base_rounds * 100 / n);
        for (const std::size_t inner : inner_axis) {
          cases.push_back(run_case(strategy, n, width, inner, rounds, a));
        }
      }
    }
  }

  util::Table t({"strategy", "n", "k", "b", "inner", "rounds", "ms/round",
                 "rounds/sec", "max |err|"});
  for (const Case& c : cases) {
    t.add_row({core::strategy_name(c.strategy), std::to_string(c.n),
               std::to_string(c.k), std::to_string(c.width),
               std::to_string(c.inner_jobs), std::to_string(c.rounds),
               util::fmt(c.ms_per_round, 3), util::fmt(c.rounds_per_sec, 2),
               util::fmt_sci(c.max_err)});
  }
  t.print();
  write_json(json_path, cases);
  std::cout << "\nwrote " << json_path << " (hardware_threads=" << hw
            << ")\n";

  // Serial twin of a case: same (strategy, n, width) at inner_jobs = 1.
  auto serial_twin = [&cases](const Case& c) -> const Case* {
    for (const Case& s : cases) {
      if (s.inner_jobs == 1 && s.strategy == c.strategy && s.n == c.n &&
          s.width == c.width) {
        return &s;
      }
    }
    return nullptr;
  };

  bool ok = true;
  for (const Case& c : cases) {
    if (c.max_err > 1e-6) {
      std::cout << "FAIL: decoded product off by " << c.max_err << " at "
                << core::strategy_name(c.strategy) << " n=" << c.n
                << " b=" << c.width << " inner=" << c.inner_jobs << "\n";
      ok = false;
    }
    // Determinism: every inner-parallel case must reproduce its serial
    // twin's decoded bits exactly — not approximately.
    if (c.inner_jobs > 1) {
      const Case* s = serial_twin(c);
      bool same = s != nullptr && s->decoded0.size() == c.decoded0.size();
      for (std::size_t i = 0; same && i < c.decoded0.size(); ++i) {
        same = s->decoded0[i] == c.decoded0[i];
      }
      if (!same) {
        std::cout << "FAIL: decoded bits at inner_jobs=" << c.inner_jobs
                  << " differ from serial at "
                  << core::strategy_name(c.strategy) << " n=" << c.n
                  << " b=" << c.width << "\n";
        ok = false;
      }
    }
    if (c.n != 1000 || c.inner_jobs != 1) continue;
    const bool s2c2 = c.strategy == core::StrategyKind::kS2C2;
    const double pre = s2c2 ? (c.width == 1 ? kPrePrS2c2B1 : kPrePrS2c2B8)
                            : (c.width == 1 ? kPrePrMdsB1 : kPrePrMdsB8);
    const double bar = kAcceptFactor * pre;
    if (c.rounds_per_sec < bar) {
      std::cout << "FAIL: " << core::strategy_name(c.strategy)
                << " n=1000 b=" << c.width << " " << c.rounds_per_sec
                << " rounds/sec < " << bar << " (" << kAcceptFactor
                << "x pre-PR " << pre << ")\n";
      ok = false;
    }
  }
  if (ok) {
    std::cout << "acceptance: >= " << kAcceptFactor
              << "x pre-PR rounds/sec at n=1000 (inner_jobs=1) — PASS\n";
  }

  // Intra-round scaling bar: n = 1000, b = 8, inner_jobs = 4 must beat
  // 1.8x its serial twin — on machines with enough cores to make that
  // physically possible.
  if (hw < kScalingMinThreads) {
    std::cout << "scaling bar (" << kInnerScalingFactor
              << "x at n=1000 b=8 inner_jobs=4): SKIPPED — hardware_threads="
              << hw << " < " << kScalingMinThreads << "\n";
  } else {
    for (const Case& c : cases) {
      if (c.n != 1000 || c.width != 8 || c.inner_jobs != 4) continue;
      const Case* s = serial_twin(c);
      const double bar = kInnerScalingFactor * s->rounds_per_sec;
      if (c.rounds_per_sec < bar) {
        std::cout << "FAIL: " << core::strategy_name(c.strategy)
                  << " n=1000 b=8 inner_jobs=4 " << c.rounds_per_sec
                  << " rounds/sec < " << bar << " (" << kInnerScalingFactor
                  << "x serial " << s->rounds_per_sec << ")\n";
        ok = false;
      } else {
        std::cout << "scaling: " << core::strategy_name(c.strategy)
                  << " n=1000 b=8 inner_jobs=4 at "
                  << util::fmt(c.rounds_per_sec / s->rounds_per_sec, 2)
                  << "x serial — PASS\n";
      }
    }
  }
  return ok ? 0 : 1;
}
