// Fig 2: measured cloud node speeds. The paper plots four representative
// DigitalOcean droplets; our substitute is the calibrated trace generator
// (docs/DESIGN.md §2). This bench prints representative generated traces plus
// the statistics the paper calls out: speeds stay within ~10% over a
// ~10-sample neighborhood, with occasional drastic regime changes.
#include "bench/bench_common.h"

#include <cmath>

namespace {

double neighborhood_stability(const std::vector<double>& s) {
  std::size_t close = 0, total = 0;
  for (std::size_t t = 10; t < s.size(); ++t) {
    for (std::size_t j = t - 10; j < t; ++j) {
      ++total;
      if (std::abs(s[j] - s[t]) <= 0.10 * s[t]) ++close;
    }
  }
  return total > 0 ? static_cast<double>(close) / static_cast<double>(total)
                   : 0.0;
}

std::size_t jump_count(const std::vector<double>& s) {
  std::size_t jumps = 0;
  for (std::size_t t = 1; t < s.size(); ++t) {
    if (std::abs(s[t] - s[t - 1]) > 0.15) ++jumps;
  }
  return jumps;
}

}  // namespace

int main() {
  using namespace s2c2;
  bench::print_header(
      "Fig 2 — node speed traces (generated substitute for measured cloud "
      "data)",
      "Paper observation: \"speed observed at any time slot stays within 10%\n"
      "for about 10 samples within the neighborhood\", with rare large jumps.");

  util::Rng rng(7);
  const auto volatile_corpus = workload::cloud_speed_corpus(
      4, 300, workload::volatile_cloud_config(), rng);

  std::cout << "Representative volatile-cloud traces (every 25th sample, "
               "speed normalized to node max):\n";
  util::Table t({"node", "t=0", "t=25", "t=50", "t=75", "t=100", "t=125",
                 "t=150", "t=175", "t=200"});
  for (std::size_t node = 0; node < 4; ++node) {
    const auto& s = volatile_corpus[node];
    const double mx = util::max_of(s);
    std::vector<double> samples;
    for (std::size_t i = 0; i <= 200; i += 25) samples.push_back(s[i] / mx);
    t.add_row_numeric("node " + std::to_string(node), samples, 2);
  }
  t.print();

  util::Rng rng2(8);
  const auto stable_corpus = workload::cloud_speed_corpus(
      20, 300, workload::stable_cloud_config(), rng2);
  util::Rng rng3(9);
  const auto volatile20 = workload::cloud_speed_corpus(
      20, 300, workload::volatile_cloud_config(), rng3);

  double stable_stab = 0.0, volatile_stab = 0.0;
  double stable_jumps = 0.0, volatile_jumps = 0.0;
  for (std::size_t i = 0; i < 20; ++i) {
    stable_stab += neighborhood_stability(stable_corpus[i]) / 20.0;
    volatile_stab += neighborhood_stability(volatile20[i]) / 20.0;
    stable_jumps += static_cast<double>(jump_count(stable_corpus[i])) / 20.0;
    volatile_jumps += static_cast<double>(jump_count(volatile20[i])) / 20.0;
  }

  std::cout << "\nTrace statistics (300 samples/node, 20 nodes):\n";
  util::Table s({"environment", "within-10%-over-10-samples", "jumps/node"});
  s.add_row({"stable cloud (Fig 8 regime)", util::fmt(stable_stab, 3),
             util::fmt(stable_jumps, 1)});
  s.add_row({"volatile cloud (Fig 10 regime)", util::fmt(volatile_stab, 3),
             util::fmt(volatile_jumps, 1)});
  s.print();
  std::cout << "\nPaper: high neighborhood stability most of the time; the\n"
               "volatile environment adds the sudden drops that cause the\n"
               "18% worst-case LSTM mis-prediction rate (Fig 10).\n";
  return 0;
}
