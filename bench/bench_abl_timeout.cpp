// Ablation: the timeout factor (paper §4.3 picks 1.15 = 1 + predictor
// MAPE). Too tight a deadline cancels workers that were about to respond
// (wasted work, spurious reassignment); too loose a deadline waits on real
// stragglers. Swept on the volatile cloud with LSTM predictions.
#include "bench/bench_common.h"

int main() {
  using namespace s2c2;
  bench::print_header(
      "Ablation — S2C2 timeout factor (paper uses 1.15)",
      "(10,7)-S2C2 on volatile cloud traces with LSTM prediction.\n"
      "Latency normalized to the factor-1.15 run.");

  const bench::WorkloadShape shape;
  const std::size_t rounds = 20;
  const std::size_t chunks = 100;
  const auto cfg = workload::volatile_cloud_config();
  const predict::Lstm lstm = bench::train_speed_lstm(cfg, 55);
  const auto spec = bench::cloud_spec(10, cfg, 66, 0.012);

  auto run_with_factor = [&](double factor) {
    core::EngineConfig ecfg;
    ecfg.strategy = core::StrategyKind::kS2C2;
    ecfg.chunks_per_partition = chunks;
    ecfg.timeout_factor = factor;
    auto job = core::CodedMatVecJob::cost_only(shape.rows, shape.cols, 10, 7,
                                               chunks);
    core::CodedComputeEngine engine(
        job, spec, ecfg, std::make_unique<predict::LstmPredictor>(10, lstm));
    const auto results = engine.run_rounds(rounds);
    struct Out {
      double latency;
      double timeout_rate;
      double waste;
    };
    return Out{core::total_latency(results) / static_cast<double>(rounds),
               engine.timeout_rate(),
               engine.accounting().mean_wasted_fraction()};
  };

  const auto baseline = run_with_factor(1.15);
  util::Table t({"timeout factor", "normalized latency", "timeout rate",
                 "mean wasted %"});
  for (double factor : {1.0, 1.05, 1.15, 1.3, 1.5, 2.0, 3.0}) {
    const auto r = run_with_factor(factor);
    t.add_row({util::fmt(factor, 2),
               util::fmt(r.latency / baseline.latency, 3),
               util::fmt(r.timeout_rate, 2),
               util::fmt(100.0 * r.waste, 1)});
  }
  t.print();
  std::cout << "\nExpected: tight factors fire constantly (waste, reassign\n"
               "overhead); loose factors wait out genuine slowdowns. The\n"
               "paper's 1.15 sits near the latency minimum.\n";
  return 0;
}
