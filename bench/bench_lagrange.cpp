// Extension bench: S2C2 on Lagrange coded computing (paper §2 names LCC
// as the general-polynomial substrate; §5 argues S2C2 is code-agnostic).
// Workload: distributed Gram matrices f(X_j) = X_jᵀX_j over m data blocks,
// 12 workers, degree 2 — recovery threshold R = 2(m-1)+1 = 7.
//
// Latency model mirrors the MDS engines: conventional LCC waits for the R
// fastest full evaluations; S2C2 allocates output-row chunks by speed with
// exact-R coverage.
#include "bench/bench_common.h"

#include "src/coding/lagrange_code.h"
#include "src/sched/allocation.h"

namespace {

using namespace s2c2;

/// Analytic one-round latency of LCC under a given allocation.
double lcc_round_latency(const core::ClusterSpec& spec,
                         const sched::Allocation& alloc, std::size_t need,
                         double chunk_work, double pre_work) {
  std::vector<double> responses;
  for (std::size_t w = 0; w < spec.num_workers(); ++w) {
    const std::size_t chunks = alloc.per_worker[w].count;
    if (chunks == 0) continue;
    const double work = pre_work + static_cast<double>(chunks) * chunk_work;
    responses.push_back(
        spec.traces[w].time_to_complete(0.0, work / spec.worker_flops));
  }
  std::sort(responses.begin(), responses.end());
  // Conventional: R-th fastest; S2C2 exact coverage: all assigned.
  return alloc.total_chunks() ==
                 alloc.chunks_per_partition * spec.num_workers()
             ? responses[need - 1]
             : responses.back();
}

}  // namespace

int main() {
  using namespace s2c2;
  bench::print_header(
      "Extension — S2C2 on Lagrange coded computing (Gram matrices)",
      "f(X_j) = X_jᵀX_j over m=4 blocks, 12 workers, degree 2 (R = 7).\n"
      "Latency normalized to S2C2-on-LCC; correctness checked numerically.");

  // Correctness: full functional round with mixed responder sets.
  util::Rng rng(9);
  const std::size_t m = 4, rows = 60, cols = 24, chunks = 12;
  const coding::LagrangeCode code(12, m, 2);
  std::vector<linalg::Matrix> blocks;
  for (std::size_t j = 0; j < m; ++j) {
    blocks.push_back(linalg::Matrix::random_uniform(rows, cols, rng));
  }
  const auto encoded = code.encode(blocks);

  const std::vector<double> speeds{1.0, 0.95, 0.9, 1.0, 0.85, 0.95,
                                   0.9, 1.0,  0.2, 0.95, 0.9, 0.85};
  const auto alloc = sched::proportional_allocation(
      speeds, code.recovery_threshold(), chunks);
  coding::LagrangeCode::Decoder dec(code, cols, chunks, cols);
  const std::size_t rpc = cols / chunks;
  for (std::size_t w = 0; w < code.n(); ++w) {
    const auto gram = encoded[w].transposed().matmul(encoded[w]);
    for (std::size_t c : alloc.chunks_of(w)) {
      linalg::Matrix slice(rpc, cols);
      for (std::size_t r = 0; r < rpc; ++r) {
        for (std::size_t cc = 0; cc < cols; ++cc) {
          slice(r, cc) = gram(c * rpc + r, cc);
        }
      }
      dec.add_chunk_result(w, c, std::move(slice));
    }
  }
  double max_rel = 0.0;
  const auto out = dec.decode();
  for (std::size_t j = 0; j < m; ++j) {
    const auto truth = blocks[j].transposed().matmul(blocks[j]);
    max_rel = std::max(max_rel, out[j].max_abs_diff(truth) /
                                    (truth.frobenius_norm() + 1.0));
  }
  std::cout << "S2C2-allocated LCC decode, relative error: " << max_rel
            << "\n\n";

  // Latency shape across straggler counts (analytic).
  const double chunk_work = 2.0 * 2000.0 * 500.0;  // per output-row chunk
  const double pre_work = 0.0;
  util::Table t({"stragglers", "conventional LCC", "S2C2 on LCC"});
  for (std::size_t s : {0u, 1u, 2u, 3u}) {
    util::Rng trng(100 + s);
    core::ClusterSpec spec;
    spec.traces = workload::controlled_cluster_traces(12, s, 0.15, trng);
    std::vector<double> oracle(12);
    for (std::size_t w = 0; w < 12; ++w) {
      oracle[w] = spec.traces[w].speed_at(0.0);
    }
    const auto full = sched::full_allocation(12, chunks);
    const auto prop = sched::proportional_allocation(
        oracle, code.recovery_threshold(), chunks);
    const double conv = lcc_round_latency(spec, full,
                                          code.recovery_threshold(),
                                          chunk_work, pre_work);
    const double sq = lcc_round_latency(spec, prop,
                                        code.recovery_threshold(),
                                        chunk_work, pre_work);
    t.add_row({std::to_string(s), util::fmt(conv / sq, 2), "1.00"});
  }
  t.print();
  std::cout << "\nSame pattern as MDS (Figs 6/8) and polynomial codes\n"
               "(Fig 12): the allocation layer is code-agnostic, so S2C2\n"
               "squeezes LCC's slack too — max ideal here is n/R = "
            << util::fmt(12.0 / 7.0, 2) << ".\n";
  return 0;
}
