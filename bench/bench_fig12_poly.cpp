// Fig 12: S2C2 on polynomial codes — Hessian Aᵀ·diag(x)·A with A 6000x6000,
// 12 workers, a = b = 3 (any 9 of 12 decode).
// Paper: conventional polynomial coding is 1.19x S2C2 under low
// mis-prediction and 1.14x under high; gains trail the MDS case because
// the diag(x) scaling and master-side decode are not squeezed (§7.2.3 —
// ideal would be (12-9)/9 = 33%).
#include "bench/bench_common.h"

#include "src/core/poly_engine.h"

namespace {

double run_poly(bool use_s2c2, const s2c2::core::ClusterSpec& spec,
                bool oracle, const s2c2::predict::Lstm* lstm,
                std::size_t rounds) {
  using namespace s2c2;
  core::PolyEngineConfig cfg;
  cfg.strategy = use_s2c2 ? core::StrategyKind::kPoly
                          : core::StrategyKind::kPolyConventional;
  cfg.chunks_per_partition = 40;
  cfg.oracle_speeds = oracle;
  std::unique_ptr<predict::SpeedPredictor> predictor;
  if (!oracle && lstm != nullptr) {
    predictor = std::make_unique<predict::LstmPredictor>(spec.num_workers(),
                                                         *lstm);
  }
  core::PolyCodedEngine engine(std::nullopt, 6000, 6000, 3, spec, cfg,
                               std::move(predictor));
  const auto results = engine.run_rounds(rounds);
  double total = 0.0;
  for (const auto& r : results) total += r.stats.latency();
  return total / static_cast<double>(rounds);
}

}  // namespace

int main() {
  using namespace s2c2;
  bench::print_header(
      "Fig 12 — S2C2 on polynomial codes (Hessian, 12 workers, a=b=3)",
      "Hessian = Aᵀ·diag(x)·A, A is 6000x6000; any 9 of 12 responses "
      "decode.\nThe master decodes a 9-coefficient system per Hessian entry "
      "(not\nsqueezable), so gains trail the ideal 33%.");

  const std::size_t rounds = 10;

  // The paper's master is a single node doing the full bilinear decode; a
  // slower master (relative to workers) models that non-squeezed stage.
  auto with_master = [](core::ClusterSpec spec) {
    spec.master_flops = 1e8;
    return spec;
  };

  // Low mis-prediction environment.
  const auto low_spec =
      with_master(bench::cloud_spec(12, workload::stable_cloud_config(), 31,
                                    60.0));
  const double low_conv = run_poly(false, low_spec, true, nullptr, rounds);
  const double low_s2c2 = run_poly(true, low_spec, true, nullptr, rounds);

  // High mis-prediction environment.
  const auto high_cfg = workload::volatile_cloud_config();
  const predict::Lstm lstm = bench::train_speed_lstm(high_cfg, 131);
  const auto high_spec = with_master(bench::cloud_spec(12, high_cfg, 231,
                                                       60.0));
  const double high_conv = run_poly(false, high_spec, true, nullptr, rounds);
  const double high_s2c2 = run_poly(true, high_spec, false, &lstm, rounds);

  util::Table t({"environment", "scheme", "measured", "paper"});
  t.add_row({"low mis-prediction", "conventional polynomial",
             util::fmt(low_conv / low_s2c2, 2), "1.19"});
  t.add_row({"low mis-prediction", "polynomial + S2C2", "1.00", "1.00"});
  t.add_row({"high mis-prediction", "conventional polynomial",
             util::fmt(high_conv / high_s2c2, 2), "1.14"});
  t.add_row({"high mis-prediction", "polynomial + S2C2", "1.00", "1.00"});
  t.print();

  std::cout << "\nPaper reductions: 19% (low), 14% (high); ideal 33.3%.\n"
            << "Measured reductions: "
            << util::fmt(100.0 * (low_conv - low_s2c2) / low_conv, 1)
            << "% (low), "
            << util::fmt(100.0 * (high_conv - high_s2c2) / high_conv, 1)
            << "% (high)\n";
  return 0;
}
