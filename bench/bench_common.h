// Shared helpers for the figure-reproduction benches.
//
// Every bench prints the paper's reported series next to our measured
// series. Absolute latencies are meaningless across substrates (theirs: a
// Xeon/InfiniBand cluster and DigitalOcean droplets; ours: a calibrated
// simulator), so all figures report *normalized* execution time exactly as
// the paper does.
#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/overdecomp_engine.h"
#include "src/core/replication_engine.h"
#include "src/predict/lstm.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workload/trace_gen.h"

namespace s2c2::bench {

/// Workload shaped like the paper's duplicated-gisette SVM/LR runs.
struct WorkloadShape {
  std::size_t rows = 21000;
  std::size_t cols = 2000;
};

inline core::ClusterSpec cloud_spec(std::size_t n,
                                    const workload::CloudTraceConfig& cfg,
                                    std::uint64_t seed, double sample_dt) {
  util::Rng rng(seed);
  const auto series = workload::cloud_speed_corpus(n, 400, cfg, rng);
  core::ClusterSpec spec;
  spec.traces = workload::traces_from_series(series, sample_dt);
  return spec;
}

inline core::ClusterSpec controlled_spec(std::size_t n,
                                         std::size_t stragglers,
                                         double variation,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  core::ClusterSpec spec;
  spec.traces =
      workload::controlled_cluster_traces(n, stragglers, variation, rng);
  // Paper's local cluster: 56 Gb/s FDR InfiniBand.
  spec.net.bytes_per_s = 7e9;
  return spec;
}

struct CodedRunResult {
  double mean_latency = 0.0;
  double timeout_rate = 0.0;
  double mispred_rate = 0.0;
  std::vector<double> wasted_fraction;  // per worker
};

/// Trains the paper's LSTM on a corpus drawn from the same trace
/// distribution the cluster uses (one model per bench run).
inline predict::Lstm train_speed_lstm(const workload::CloudTraceConfig& cfg,
                                      std::uint64_t seed,
                                      std::size_t epochs = 200) {
  util::Rng rng(seed);
  const auto corpus = workload::cloud_speed_corpus(24, 150, cfg, rng);
  predict::Lstm lstm(1, 4, seed ^ 0x15ull);
  predict::Lstm::TrainConfig tc;
  tc.epochs = epochs;
  tc.bptt_window = 48;
  lstm.train(corpus, tc);
  return lstm;
}

/// Runs `rounds` coded iterations and reports the mean round latency.
inline CodedRunResult run_coded(core::StrategyKind strategy, std::size_t n,
                                std::size_t k, const WorkloadShape& shape,
                                const core::ClusterSpec& spec,
                                std::size_t rounds, std::size_t chunks,
                                bool oracle,
                                const predict::Lstm* lstm = nullptr) {
  core::EngineConfig cfg;
  cfg.strategy = strategy;
  cfg.chunks_per_partition = chunks;
  cfg.oracle_speeds = oracle;
  auto job = core::CodedMatVecJob::cost_only(shape.rows, shape.cols, n, k,
                                             chunks);
  std::unique_ptr<predict::SpeedPredictor> predictor;
  if (!oracle && lstm != nullptr) {
    predictor = std::make_unique<predict::LstmPredictor>(n, *lstm);
  }
  core::CodedComputeEngine engine(job, spec, cfg, std::move(predictor));
  const auto results = engine.run_rounds(rounds);
  CodedRunResult out;
  out.mean_latency =
      core::total_latency(results) / static_cast<double>(rounds);
  out.timeout_rate = engine.timeout_rate();
  out.mispred_rate = engine.misprediction_rate();
  for (std::size_t w = 0; w < n; ++w) {
    out.wasted_fraction.push_back(
        engine.accounting().worker(w).wasted_fraction());
  }
  return out;
}

inline double run_replication(const WorkloadShape& shape,
                              const core::ClusterSpec& spec,
                              std::size_t rounds,
                              core::ReplicationConfig cfg = {}) {
  core::ReplicationEngine engine(shape.rows, shape.cols, spec, cfg);
  const auto results = engine.run_rounds(rounds);
  return core::total_latency(results) / static_cast<double>(rounds);
}

inline double run_overdecomp(const WorkloadShape& shape,
                             const core::ClusterSpec& spec,
                             std::size_t rounds, bool oracle,
                             const predict::Lstm* lstm = nullptr) {
  core::OverDecompConfig cfg;
  cfg.oracle_speeds = oracle;
  std::unique_ptr<predict::SpeedPredictor> predictor;
  if (!oracle && lstm != nullptr) {
    predictor = std::make_unique<predict::LstmPredictor>(spec.num_workers(),
                                                         *lstm);
  }
  core::OverDecompositionEngine engine(shape.rows, shape.cols, spec, cfg,
                                       std::move(predictor));
  const auto results = engine.run_rounds(rounds);
  return core::total_latency(results) / static_cast<double>(rounds);
}

inline void print_header(const std::string& title, const std::string& note) {
  std::cout << "\n=== " << title << " ===\n";
  if (!note.empty()) std::cout << note << "\n";
  std::cout << "\n";
}

}  // namespace s2c2::bench
