// Job-level evaluation at suite scale on the thread-pool sharding: every
// application x strategy x trace-profile job from one fixed seed, run at
// --jobs 1 and --jobs N with the fingerprints cross-checked (the driver's
// determinism contract) and the wall-clock ratio reported as the sharding
// speedup. The normalized table is the condensed form of the paper's
// job-level evaluation (Figs 6-8, 10).
//
//   build/bench/bench_job_driver [seed] [iterations] [jobs]
//
// jobs defaults to all hardware threads (min 4, so the determinism
// cross-check always exercises a genuinely concurrent run).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "src/harness/job_driver.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace s2c2;
  using Clock = std::chrono::steady_clock;

  harness::JobConfig cfg;
  harness::JobGrid grid;
  grid.traces = {harness::TraceProfile::kControlledStragglers,
                 harness::TraceProfile::kStableCloud,
                 harness::TraceProfile::kVolatileCloud,
                 harness::TraceProfile::kFailureInjection};
  std::size_t jobs =
      std::max<std::size_t>(4, util::ThreadPool::hardware_threads());
  if (argc > 1) cfg.seed = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) cfg.max_iterations = std::strtoul(argv[2], nullptr, 10);
  if (argc > 3) {
    // Clamp to >= 2: comparing a serial run against another serial run
    // would make the determinism cross-check vacuous.
    jobs = std::max<std::size_t>(2, std::strtoul(argv[3], nullptr, 10));
  }

  bench::print_header(
      "Job driver — full iterative jobs, app x strategy x trace",
      "seed " + std::to_string(cfg.seed) + ", cap " +
          std::to_string(cfg.max_iterations) + " iterations/job, " +
          std::to_string(grid.apps.size() * grid.strategies.size() *
                         grid.traces.size()) +
          " jobs");

  const auto t_serial0 = Clock::now();
  const auto serial = harness::run_job_suite(cfg, grid, 1);
  const double serial_s =
      std::chrono::duration<double>(Clock::now() - t_serial0).count();

  const auto t_par0 = Clock::now();
  const auto parallel = harness::run_job_suite(cfg, grid, jobs);
  const double parallel_s =
      std::chrono::duration<double>(Clock::now() - t_par0).count();

  util::Table t({"app", "trace", "strategy", "iters", "completion (ms)",
                 "vs s2c2", "timeout %", "waste %"});
  for (const auto& job : parallel.jobs) {
    const auto* ref = parallel.find(job.app, harness::StrategyKind::kS2C2,
                                    job.trace);
    const bool has_ref =
        ref != nullptr && !ref->failed && ref->completion_time > 0.0;
    t.add_row(
        {harness::job_app_name(job.app),
         harness::trace_profile_name(job.trace),
         core::strategy_name(job.strategy),
         job.failed ? "-" : std::to_string(job.iterations),
         job.failed ? "failed" : util::fmt(job.completion_time * 1e3, 3),
         job.failed || !has_ref
             ? "-"
             : util::fmt(job.completion_time / ref->completion_time, 2) + "x",
         job.failed ? "-" : util::fmt(100.0 * job.timeout_rate, 1),
         job.failed ? "-"
                    : util::fmt(100.0 * job.mean_wasted_fraction, 1)});
  }
  t.print();

  const bool identical = serial.fingerprint() == parallel.fingerprint();
  std::cout << "\nexecutor: jobs=1 " << util::fmt(serial_s, 2)
            << " s | jobs=" << jobs << " " << util::fmt(parallel_s, 2)
            << " s | speedup " << util::fmt(serial_s / parallel_s, 2)
            << "x (" << util::ThreadPool::hardware_threads()
            << " hardware threads)\n";
  std::cout << "determinism: serial and parallel fingerprints "
            << (identical ? "IDENTICAL" : "DIFFER — REGRESSION") << "\n";
  std::cout << "\nsuite fingerprint: " << parallel.fingerprint() << "\n";
  return identical ? 0 : 1;
}
