// Serving benchmark: coalesced multi-RHS block rounds (harness/serve.h)
// under open-loop Poisson arrivals, at the paper's fleet sizes.
//
// Two measurements:
//   1. Throughput cells at n in {100, 250, 1000}: jobs/sec and p50/p99
//      request latency when up to 16 concurrent requests coalesce into one
//      coded block round (cost-only rounds at fleet scale). The cells also
//      re-run through run_serve_sweep at a different thread count and the
//      fingerprints are required to match byte-for-byte — the --jobs
//      determinism contract, checked in the artifact itself. The n = 1000
//      cells run with inner_jobs = 4 (the intra-round pool fans kernels,
//      chunk products, and decode groups at the paper's largest fleet) and
//      are additionally re-run at inner_jobs = 1 with the same bar: the
//      inner axis must be fingerprint-invisible.
//   2. The amortization cell at k = 40: per-request decode flops for
//      coalesced serving vs the cold one-job-per-request path (a fresh
//      engine + decoder per request — what exists without the serving
//      layer). Only the per-responder-set factorization amortizes (solve
//      flops are exactly linear in batch width), so the geometry keeps
//      the Schur factor dominant: one row per partition and k well below
//      n. Acceptance bar: batched decode >= 3x cheaper per request.
//
// Emits a JSON snapshot (default: BENCH_serve.json — CI uploads it beside
// BENCH_decode.json; a reference copy is checked in at
// bench/baselines/BENCH_serve.json) and exits nonzero if the amortization
// ratio at k >= 40 falls below 3x, coalesced rounds never hit the
// DecodeContext cache, or any sweep fingerprint changes with --jobs.
//
// Usage: bench_serve [requests=64] [json_path=BENCH_serve.json] [jobs=0]
#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/engine_factory.h"
#include "src/harness/serve.h"
#include "src/util/table.h"

namespace {

using namespace s2c2;
using harness::ServeConfig;
using harness::ServeResult;

ServeConfig throughput_cell(core::StrategyKind strategy, std::size_t workers,
                            std::size_t requests,
                            std::size_t inner_jobs = 1) {
  ServeConfig c;
  c.label = std::string(core::strategy_name(strategy)) + " n=" +
            std::to_string(workers);
  c.strategy = strategy;
  c.trace = harness::TraceProfile::kStableCloud;
  c.workers = workers;          // k defaults to n - 2
  c.requests = requests;
  c.tenants = 8;
  c.load_factor = 16.0;         // deep queues: coalescing saturates
  c.max_batch = 16;
  c.functional = false;         // cost-only rounds at fleet scale
  c.op_rows = 4 * workers;
  c.op_cols = 48;
  c.seed = 42;
  c.inner_jobs = inner_jobs;
  return c;
}

/// The amortization cell: factorization-dominant geometry (one row per
/// partition so each request contributes a single solve column; k << n so
/// the cached Schur factor is O(p^3) with large p).
ServeConfig amortization_cell(std::size_t requests) {
  ServeConfig c;
  c.label = "amortization k=40";
  c.strategy = core::StrategyKind::kS2C2;
  c.trace = harness::TraceProfile::kVolatileCloud;
  c.workers = 100;
  c.k = 40;
  c.chunks_per_partition = 1;
  c.requests = requests;
  c.tenants = 8;
  c.load_factor = 16.0;
  c.max_batch = 16;
  c.functional = false;
  c.op_rows = 40;
  c.op_cols = 24;
  c.seed = 42;
  return c;
}

double per_request_decode_flops(const ServeResult& r) {
  return r.completed == 0 ? 0.0
                          : (r.decode.factor_flops + r.decode.solve_flops) /
                                static_cast<double>(r.completed);
}

void write_json(const std::string& path, const std::vector<ServeResult>& cells,
                double cold_per_req, double batched_per_req, double ratio) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"serve\",\n  \"unit\": \"jobs_per_sec\",\n"
      << "  \"cases\": [\n";
  for (const ServeResult& r : cells) {
    out << "    {\"label\": \"" << r.config.label << "\", \"n\": "
        << r.config.workers << ", \"k\": " << r.config.effective_k()
        << ", \"requests\": " << r.config.requests
        << ", \"max_batch\": " << r.config.max_batch
        << ", \"inner_jobs\": " << r.config.inner_jobs
        << ", \"rounds\": " << r.rounds
        << ", \"completed\": " << r.completed
        << ", \"jobs_per_sec\": " << r.jobs_per_sec
        << ", \"p50_latency\": " << r.p50_latency
        << ", \"p99_latency\": " << r.p99_latency
        << ", \"decode_hits\": " << r.decode.hits
        << ", \"decode_misses\": " << r.decode.misses
        << ", \"fingerprint\": \"" << r.fingerprint() << "\"},\n";
  }
  out << "    {\"label\": \"amortization k=40\", "
      << "\"cold_decode_flops_per_request\": " << cold_per_req
      << ", \"batched_decode_flops_per_request\": " << batched_per_req
      << ", \"amortization_ratio\": " << ratio << "}\n";
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t requests = argc > 1 ? std::stoul(argv[1]) : 64;
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_serve.json";
  const std::size_t jobs = argc > 3 ? std::stoul(argv[3]) : 0;

  std::cout << "Coalesced serving — open-loop arrivals through multi-RHS "
               "block rounds\n"
            << requests << " requests per cell, max_batch 16, load factor "
               "16 (queues build, batches saturate).\n\n";

  // ---- throughput cells -----------------------------------------------
  std::vector<ServeConfig> cells;
  for (const std::size_t n :
       {std::size_t{100}, std::size_t{250}, std::size_t{1000}}) {
    // The n = 1000 cells exercise the intra-round pool; smaller fleets
    // stay on the serial allocation-free path.
    const std::size_t inner = n == 1000 ? 4 : 1;
    cells.push_back(
        throughput_cell(core::StrategyKind::kS2C2, n, requests, inner));
    cells.push_back(
        throughput_cell(core::StrategyKind::kMds, n, requests, inner));
  }
  const std::vector<ServeResult> results =
      harness::run_serve_sweep(cells, jobs);
  // Determinism self-check: the same cells sharded serially must produce
  // the same bits.
  const std::vector<ServeResult> serial = harness::run_serve_sweep(cells, 1);
  // Inner-axis self-check: the inner_jobs > 1 cells re-run serial-inner.
  std::vector<ServeConfig> inner_serial_cells;
  for (ServeConfig c : cells) {
    if (c.inner_jobs <= 1) continue;
    c.inner_jobs = 1;
    inner_serial_cells.push_back(std::move(c));
  }
  const std::vector<ServeResult> inner_serial =
      harness::run_serve_sweep(inner_serial_cells, 1);

  util::Table t({"cell", "inner", "rounds", "jobs/s", "p50 lat", "p99 lat",
                 "decode hit/miss"});
  for (const ServeResult& r : results) {
    t.add_row({r.config.label, std::to_string(r.config.inner_jobs),
               std::to_string(r.rounds), util::fmt(r.jobs_per_sec, 2),
               util::fmt(r.p50_latency, 3), util::fmt(r.p99_latency, 3),
               std::to_string(r.decode.hits) + "/" +
                   std::to_string(r.decode.misses)});
  }
  t.print();

  // ---- amortization cell ----------------------------------------------
  const ServeResult batched = harness::run_serve(amortization_cell(requests));
  // Cold baseline: one request per serve run, fresh engine each time —
  // every request pays its own factorization. Averaged over seeds so one
  // lucky responder set cannot skew the bar.
  const std::size_t kColdRuns = 8;
  double cold_total = 0.0;
  std::size_t cold_completed = 0;
  for (std::size_t i = 0; i < kColdRuns; ++i) {
    ServeConfig cold = amortization_cell(1);
    cold.max_batch = 1;
    cold.seed = 42 + i;
    cold.arrival_rate = batched.realized_rate;  // skip the probe round
    const ServeResult r = harness::run_serve(cold);
    cold_total += r.decode.factor_flops + r.decode.solve_flops;
    cold_completed += r.completed;
  }
  const double cold_per_req =
      cold_completed == 0 ? 0.0
                          : cold_total / static_cast<double>(cold_completed);
  const double batched_per_req = per_request_decode_flops(batched);
  const double ratio =
      batched_per_req > 0.0 ? cold_per_req / batched_per_req : 0.0;

  std::cout << "\namortization @ n=100 k=40: cold "
            << util::fmt(cold_per_req, 0) << " decode flops/request, batched "
            << util::fmt(batched_per_req, 0) << " -> " << util::fmt(ratio, 2)
            << "x cheaper (bar: >= 3x)\n";

  write_json(json_path, results, cold_per_req, batched_per_req, ratio);
  std::cout << "wrote " << json_path << "\n";

  // ---- acceptance bars -------------------------------------------------
  bool ok = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].fingerprint() != serial[i].fingerprint()) {
      std::cout << "FAIL: cell '" << results[i].config.label
                << "' fingerprint differs between --jobs shardings\n";
      ok = false;
    }
    if (results[i].completed != results[i].config.requests) {
      std::cout << "FAIL: cell '" << results[i].config.label << "' completed "
                << results[i].completed << "/" << results[i].config.requests
                << " requests\n";
      ok = false;
    }
  }
  // Inner-axis invariance: an inner_jobs = 4 cell's bits must equal the
  // identical cell re-run with a serial inner path.
  for (const ServeResult& is : inner_serial) {
    for (const ServeResult& r : results) {
      if (r.config.label != is.config.label) continue;
      if (r.fingerprint() != is.fingerprint()) {
        std::cout << "FAIL: cell '" << r.config.label
                  << "' fingerprint differs between inner_jobs="
                  << r.config.inner_jobs << " and inner_jobs=1\n";
        ok = false;
      }
    }
  }
  bool any_hits = false;
  for (const ServeResult& r : results) any_hits |= r.decode.hits > 0;
  any_hits |= batched.decode.hits > 0;
  if (!any_hits) {
    std::cout << "FAIL: no coalesced round ever hit the DecodeContext cache\n";
    ok = false;
  }
  if (ratio < 3.0) {
    std::cout << "FAIL: amortization ratio " << util::fmt(ratio, 2)
              << "x < 3x at k=40\n";
    ok = false;
  }
  if (ok) {
    std::cout << "acceptance: deterministic sweep (jobs and inner_jobs), "
                 "cache hits observed, >= 3x decode amortization at k=40 — "
                 "PASS\n";
  }
  return ok ? 0 : 1;
}
