// Figs 10 + 11: SVM on the 10-worker cloud in the HIGH mis-prediction
// environment (volatile speeds with sudden drops; the paper's LSTM
// measured an 18% worst-case mis-prediction rate). Predictions here come
// from the actual trained LSTM, so mis-predictions and S2C2's
// timeout/reassignment path are exercised for real.
//
// Fig 10 paper series (normalized to (10,7)-S2C2 = 1.00):
//   over-decomposition 1.19 | MDS(8,7) 1.34 | MDS(9,7) 1.24 |
//   MDS(10,7) 1.17 | S2C2(8,7) 1.18 | S2C2(9,7) 1.11 | S2C2(10,7) 1.00
// Fig 11: wasted computation — conventional MDS incurs ~47% more than S2C2.
#include "bench/bench_common.h"

int main() {
  using namespace s2c2;
  bench::print_header(
      "Fig 10 — cloud execution time, HIGH mis-prediction environment",
      "10 shared-cloud workers, volatile speeds, LSTM speed prediction.\n"
      "Normalized to (10,7)-S2C2.");

  const bench::WorkloadShape shape;
  const std::size_t rounds = 45;
  const std::size_t chunks = 100;
  const auto cfg = workload::volatile_cloud_config();
  const predict::Lstm lstm = bench::train_speed_lstm(cfg, 99);

  const core::ClusterSpec spec10 = bench::cloud_spec(10, cfg, 177, 0.012);
  auto sub_spec = [&](std::size_t n) {
    core::ClusterSpec s = spec10;
    s.traces = std::vector<sim::SpeedTrace>(spec10.traces.begin(),
                                            spec10.traces.begin() +
                                                static_cast<std::ptrdiff_t>(n));
    return s;
  };

  const double overdecomp =
      bench::run_overdecomp(shape, spec10, rounds, false, &lstm);
  std::vector<double> mds, s2c2;
  std::vector<bench::CodedRunResult> full;
  for (std::size_t n : {8u, 9u, 10u}) {
    mds.push_back(bench::run_coded(core::StrategyKind::kMds, n, 7,
                                   shape, sub_spec(n), rounds, chunks, true)
                      .mean_latency);
    full.push_back(bench::run_coded(core::StrategyKind::kS2C2, n, 7, shape,
                                    sub_spec(n), rounds, chunks, false,
                                    &lstm));
    s2c2.push_back(full.back().mean_latency);
  }
  const double base = s2c2[2];

  util::Table t({"scheme", "measured", "paper"});
  t.add_row({"over-decomposition", util::fmt(overdecomp / base, 2), "1.19"});
  t.add_row({"MDS(8,7)", util::fmt(mds[0] / base, 2), "1.34"});
  t.add_row({"MDS(9,7)", util::fmt(mds[1] / base, 2), "1.24"});
  t.add_row({"MDS(10,7)", util::fmt(mds[2] / base, 2), "1.17"});
  t.add_row({"S2C2(8,7)", util::fmt(s2c2[0] / base, 2), "1.18"});
  t.add_row({"S2C2(9,7)", util::fmt(s2c2[1] / base, 2), "1.11"});
  t.add_row({"S2C2(10,7)", "1.00", "1.00"});
  t.print();

  std::cout << "\nMeasured LSTM mis-prediction rate: "
            << util::fmt(100.0 * full[2].mispred_rate, 1)
            << "%  (paper: up to 18%)\n"
            << "Measured timeout rate:             "
            << util::fmt(100.0 * full[2].timeout_rate, 1) << "%\n"
            << "Shape checks: MDS improves with spare nodes "
            << "(MDS(10,7) < MDS(9,7) < MDS(8,7)): "
            << (mds[2] < mds[1] && mds[1] < mds[0] ? "yes" : "NO") << "\n"
            << "              S2C2(10,7) still fastest overall: "
            << (base < mds[2] && base < overdecomp ? "yes" : "NO") << "\n";

  // ---- Fig 11: wasted computation per worker ----
  bench::print_header(
      "Fig 11 — per-worker wasted computation, HIGH mis-prediction",
      "Paper: both schemes waste under mis-prediction, but conventional\n"
      "(10,7)-MDS incurs ~47% more wasted work than S2C2 on average.");
  const auto mds_full = bench::run_coded(core::StrategyKind::kMds, 10,
                                         7, shape, spec10, rounds, chunks,
                                         true);
  const auto& s2c2_full = full[2];
  util::Table w({"worker", "(10,7)-MDS wasted %", "(10,7)-S2C2 wasted %"});
  double mds_mean = 0.0, s2c2_mean = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    w.add_row({"worker " + std::to_string(i + 1),
               util::fmt(100.0 * mds_full.wasted_fraction[i], 1),
               util::fmt(100.0 * s2c2_full.wasted_fraction[i], 1)});
    mds_mean += mds_full.wasted_fraction[i] / 10.0;
    s2c2_mean += s2c2_full.wasted_fraction[i] / 10.0;
  }
  w.print();
  std::cout << "\nMean wasted: MDS " << util::fmt(100.0 * mds_mean, 1)
            << "% vs S2C2 " << util::fmt(100.0 * s2c2_mean, 1) << "%";
  if (s2c2_mean > 0.0) {
    std::cout << "  -> MDS wastes "
              << util::fmt(100.0 * (mds_mean - s2c2_mean) / s2c2_mean, 0)
              << "% more (paper: ~47% more)";
  }
  std::cout << "\n";
  return 0;
}
