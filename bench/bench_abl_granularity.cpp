// Ablation: chunk granularity (over-decomposition factor C). Coarse chunks
// quantize a slow worker's quota badly — a 0.2-speed worker rounded from
// 1.4 to 2 chunks overshoots its deadline by 40% and trips the timeout —
// while very fine chunks inflate decode-group counts and per-chunk
// bookkeeping. The paper's Algorithm 1 sets C = Σu_i; this sweep shows the
// trade-off that choice sits on.
#include "bench/bench_common.h"

#include "src/sched/coverage.h"

int main() {
  using namespace s2c2;
  bench::print_header(
      "Ablation — chunk granularity C (paper Algorithm 1 uses C = Σu_i)",
      "(12,6)-S2C2 on a controlled cluster with 2 stragglers (5x slower),\n"
      "oracle speeds. Latency normalized to C=24.");

  const bench::WorkloadShape shape;
  const std::size_t rounds = 15;

  auto run_with_chunks = [&](std::size_t chunks) {
    const auto spec = bench::controlled_spec(12, 2, 0.2, 300);
    const auto r = bench::run_coded(core::StrategyKind::kS2C2, 12, 6,
                                    shape, spec, rounds, chunks, true);
    return r;
  };

  const double base = run_with_chunks(24).mean_latency;
  util::Table t({"chunks per partition", "normalized latency", "timeout rate",
                 "decode groups (static)"});
  for (std::size_t c : {3u, 6u, 12u, 24u, 48u, 96u, 192u}) {
    const auto r = run_with_chunks(c);
    // Static decode-group count of the first-round allocation.
    std::vector<double> speeds(12, 1.0);
    speeds[10] = speeds[11] = 0.2;
    const auto alloc = sched::proportional_allocation(speeds, 6, c);
    t.add_row({std::to_string(c), util::fmt(r.mean_latency / base, 3),
               util::fmt(r.timeout_rate, 2),
               std::to_string(sched::coverage_groups(alloc).size())});
  }
  t.print();
  std::cout << "\nExpected: latency drops as C grows past the quantization\n"
               "regime, then flattens; decode-group count stays O(n), so\n"
               "finer chunks cost little — exactly why Algorithm 1 can\n"
               "afford C = Σu_i.\n";
  return 0;
}
