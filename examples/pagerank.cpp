// Coded PageRank over a power-law web graph (paper §6.3): the sparse link
// matrix is MDS-encoded once (systematic partitions stay CSR; parity
// densifies) and every power iteration is a coded matvec.
//
//   build/examples/pagerank
#include <algorithm>
#include <iostream>

#include "src/apps/pagerank.h"
#include "src/util/table.h"
#include "src/workload/graphs.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace s2c2;
  std::cout << "Coded PageRank: 3000-node web graph, 12 workers, 3 "
               "stragglers\n\n";

  util::Rng rng(23);
  const auto graph = workload::power_law_digraph(3000, 5, rng);

  util::Rng trng(17);
  core::ClusterSpec spec;
  spec.traces = workload::controlled_cluster_traces(12, 3, 0.2, trng);
  spec.worker_flops = 1e8;

  core::EngineConfig cfg;
  cfg.strategy = core::StrategyKind::kS2C2;
  cfg.chunks_per_partition = 24;
  cfg.oracle_speeds = true;

  apps::PageRankConfig pr;
  pr.max_iterations = 60;
  pr.tolerance = 1e-10;
  pr.k = 8;

  const auto result = apps::coded_pagerank(graph, spec, cfg, pr);
  const auto reference = apps::pagerank_direct(graph, pr.damping, 60);

  // Top-ranked pages.
  std::vector<std::size_t> order(result.ranks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.ranks[a] > result.ranks[b];
  });

  util::Table t({"rank", "node", "score", "reference"});
  for (std::size_t i = 0; i < 8; ++i) {
    t.add_row({std::to_string(i + 1), std::to_string(order[i]),
               util::fmt(result.ranks[order[i]] * 1e3, 4) + "e-3",
               util::fmt(reference[order[i]] * 1e3, 4) + "e-3"});
  }
  t.print();

  std::cout << "\nConverged in " << result.iterations
            << " coded iterations, total simulated latency "
            << util::fmt(result.total_latency * 1e3, 1) << " ms, "
            << result.timeout_rounds << " recovery rounds.\n"
            << "Ranks match the uncoded power iteration exactly — coding\n"
            << "changes where the work runs, never the answer.\n";
  return 0;
}
