// S2C2 on polynomial codes (paper §5): a second-order optimizer needs the
// Hessian H = Aᵀ·diag(x)·A every outer iteration; polynomial coding
// distributes the bilinear product so any a² of n workers suffice, and
// S2C2 squeezes the slack exactly as in the linear case.
//
//   build/examples/hessian_polynomial
#include <iostream>

#include "src/apps/hessian.h"
#include "src/coding/poly_code.h"
#include "src/util/table.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace s2c2;
  std::cout << "Polynomial-coded Hessian: 12 workers, a=b=3 (any 9 of 12 "
               "decode), 2 stragglers\n\n";

  util::Rng rng(31);
  const auto a = linalg::Matrix::random_uniform(240, 96, rng);
  linalg::Vector x(240);
  // Logistic-regression Hessian weights: sigma(u)(1 - sigma(u)).
  for (auto& v : x) v = rng.uniform(0.05, 0.25);

  util::Rng trng(7);
  core::ClusterSpec spec;
  spec.traces = workload::controlled_cluster_traces(12, 2, 0.2, trng);
  spec.worker_flops = 1e8;

  apps::HessianConfig cfg;
  cfg.a_blocks = 3;
  cfg.chunks_per_partition = 16;
  cfg.oracle_speeds = true;

  cfg.strategy = core::StrategyKind::kPolyConventional;
  const auto conventional = apps::coded_hessian(a, x, spec, cfg);
  cfg.strategy = core::StrategyKind::kPoly;
  const auto squeezed = apps::coded_hessian(a, x, spec, cfg);

  const auto truth = coding::PolyCode::hessian_direct(a, x);
  const double scale = truth.frobenius_norm();

  util::Table t({"scheme", "latency (ms)", "relative error vs direct"});
  t.add_row({"conventional polynomial",
             util::fmt(conventional.latency * 1e3, 2),
             util::fmt(conventional.hessian.max_abs_diff(truth) / scale, 12)});
  t.add_row({"polynomial + S2C2", util::fmt(squeezed.latency * 1e3, 2),
             util::fmt(squeezed.hessian.max_abs_diff(truth) / scale, 12)});
  t.print();

  std::cout << "\nS2C2 reduction: "
            << util::fmt(100.0 * (conventional.latency - squeezed.latency) /
                             conventional.latency,
                         1)
            << "%  (paper Fig 12: 19% low / 14% high mis-prediction; ideal "
               "(12-9)/9 = 33%)\n"
            << "Both decode the same 96x96 Hessian, exact to floating "
               "point.\n";
  return 0;
}
