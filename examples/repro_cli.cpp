// Reproduction driver: runs full iterative jobs (logreg / SVM to
// convergence, PageRank / graph filter to fixed point) through every
// straggler-mitigation strategy and emits the paper-style report artifacts
// (CSV tables + REPRODUCTION.md with the figure-by-figure mapping).
//
//   build/examples/repro_cli                       # job table to stdout
//   build/examples/repro_cli --report --jobs 0     # write report/ artifacts
//   build/examples/repro_cli --app pagerank --strategy mds --trace volatile
//
// Flags (all optional):
//   --report         run both sweeps and write CSVs + REPRODUCTION.md
//   --out DIR        report output directory            (default report)
//   --jobs N         suite worker threads (0 = all hardware threads;
//                    default 1 — artifacts are byte-identical either way)
//   --inner-jobs N   intra-round parallelism inside each job's engines
//                    (kernels, chunk products, decode groups; 0 = all
//                    hardware threads, default 1 = serial). Composes with
//                    --jobs and never changes a fingerprint
//   --app X          single job: logreg|svm|pagerank|graphfilter
//   --strategy X     single job: s2c2|mds|replication|overdecomp|lt|agc
//   --trace X        single-job trace profile:
//                    controlled|stable|volatile|failure (suite: --traces)
//   --apps V,V...    restrict the suite's application axis
//   --strategies V.. restrict the suite's strategy axis
//   --traces V,V...  restrict the suite's trace axis
//   --predictor X    speed source for s2c2/overdecomp   (default oracle)
//   --workers N      cluster size                       (default 12)
//   --k K            MDS parameter                      (default n-2)
//   --stragglers S   slow/dying nodes where applicable  (default 3)
//   --iterations N   per-job iteration cap              (default 25)
//   --tolerance T    per-app convergence tolerance      (default 1e-4)
//   --chunks C       chunks per partition               (default 24)
//   --seed S         RNG seed for the whole run         (default 42)
//   --help           this listing
//
// Without --report (and without --app/--strategy) the suite runs and
// prints its job-completion table; with --app/--strategy a single job runs
// with its convergence curve. Everything is deterministic in --seed; see
// docs/REPRODUCTION.md for the artifact the default config generates.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/report/report.h"
#include "src/util/table.h"

namespace {

using namespace s2c2;

struct Options {
  report::ReportConfig report = report::ReportConfig::defaults();
  bool write_report = false;
  bool single = false;
  bool help = false;
};

harness::JobApp parse_app(const std::string& s) {
  for (const auto a : harness::all_job_apps()) {
    if (s == harness::job_app_name(a)) return a;
  }
  throw std::invalid_argument("unknown app: " + s);
}

harness::StrategyKind parse_strategy(const std::string& s) {
  // One parser for every surface (core::parse_strategy); the job driver
  // additionally restricts to the strategies it can run — the four
  // frozen suite families plus the registry extensions (lt, agc).
  const auto st = core::parse_strategy(s);
  for (const auto allowed : harness::extended_job_strategies()) {
    if (st == allowed) return st;
  }
  throw std::invalid_argument("strategy is not a job-driver strategy: " + s);
}

harness::TraceProfile parse_trace(const std::string& s) {
  for (const auto t : harness::all_trace_profiles()) {
    if (s == harness::trace_profile_name(t)) return t;
  }
  throw std::invalid_argument("unknown trace profile: " + s);
}

harness::PredictorKind parse_predictor(const std::string& s) {
  for (const auto p : harness::all_predictors()) {
    if (s == harness::predictor_name(p)) return p;
  }
  throw std::invalid_argument("unknown predictor: " + s);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  if (out.empty()) throw std::invalid_argument("empty axis value list");
  return out;
}

void print_usage() {
  std::cout <<
      "repro_cli — job-level reproduction driver + report generator\n\n"
      "  repro_cli                      run the suite, print the job table\n"
      "  repro_cli --report [--out D]   write CSVs + REPRODUCTION.md\n"
      "  repro_cli --app A --strategy S --trace T   run one job\n\n"
      "flags: --jobs N  --inner-jobs N  --apps v,..  --strategies v,..\n"
      "       --traces v,..\n"
      "       --predictor P  --workers N  --k K  --stragglers S\n"
      "       --iterations N  --tolerance T  --chunks C  --seed S\n"
      "axes:  apps       logreg|svm|pagerank|graphfilter\n"
      "       strategies s2c2|mds|replication|overdecomp|lt|agc\n"
      "       traces     controlled|stable|volatile|failure\n"
      "       predictors oracle|last-value|arima|lstm\n";
}

Options parse(int argc, char** argv) {
  Options o;
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) throw std::invalid_argument("missing flag value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--report") o.write_report = true;
    else if (flag == "--help" || flag == "-h") o.help = true;
    else if (flag == "--out") o.report.out_dir = value(i);
    else if (flag == "--jobs") o.report.jobs = std::stoul(value(i));
    else if (flag == "--inner-jobs")
      o.report.job_base.inner_jobs = std::stoul(value(i));
    else if (flag == "--app") {
      o.report.job_base.app = parse_app(value(i));
      o.single = true;
    } else if (flag == "--strategy") {
      o.report.job_base.strategy = parse_strategy(value(i));
      o.single = true;
    } else if (flag == "--trace") {
      // Sets the single-job trace but does not by itself select single-job
      // mode (the suite's trace axis is --traces); --app/--strategy do.
      o.report.job_base.trace = parse_trace(value(i));
    } else if (flag == "--apps") {
      o.report.grid.apps.clear();
      for (const auto& v : split_csv(value(i))) {
        o.report.grid.apps.push_back(parse_app(v));
      }
    } else if (flag == "--strategies") {
      o.report.grid.strategies.clear();
      for (const auto& v : split_csv(value(i))) {
        o.report.grid.strategies.push_back(parse_strategy(v));
      }
    } else if (flag == "--traces") {
      o.report.grid.traces.clear();
      for (const auto& v : split_csv(value(i))) {
        o.report.grid.traces.push_back(parse_trace(v));
      }
    } else if (flag == "--predictor") {
      o.report.job_base.predictor = parse_predictor(value(i));
    } else if (flag == "--workers") {
      o.report.job_base.workers = std::stoul(value(i));
    } else if (flag == "--k") {
      o.report.job_base.k = std::stoul(value(i));
    } else if (flag == "--stragglers") {
      o.report.job_base.stragglers = std::stoul(value(i));
    } else if (flag == "--iterations") {
      o.report.job_base.max_iterations = std::stoul(value(i));
    } else if (flag == "--tolerance") {
      o.report.job_base.tolerance = std::stod(value(i));
    } else if (flag == "--chunks") {
      o.report.job_base.chunks_per_partition = std::stoul(value(i));
    } else if (flag == "--seed") {
      o.report.job_base.seed = std::stoull(value(i));
    } else {
      throw std::invalid_argument("unknown flag: " + flag);
    }
  }
  return o;
}

int run_single(const Options& o) {
  const harness::JobConfig& cfg = o.report.job_base;
  std::cout << harness::job_app_name(cfg.app) << " via "
            << core::strategy_name(cfg.strategy) << " on "
            << harness::trace_profile_name(cfg.trace) << " traces, "
            << cfg.workers << " workers (k=" << cfg.effective_k() << "), "
            << harness::predictor_name(cfg.predictor)
            << " speeds, cap " << cfg.max_iterations << " iterations\n\n";
  const harness::JobResult job = harness::run_job(cfg);
  if (job.failed) {
    std::cout << "job failed: " << job.error << "\n";
    std::cout << "job fingerprint: " << job.fingerprint() << "\n";
    return 0;
  }
  util::Table t({"iteration", "convergence metric"});
  for (std::size_t i = 0; i < job.convergence.size(); ++i) {
    t.add_row({std::to_string(i + 1), util::fmt_sci(job.convergence[i])});
  }
  t.print();
  std::cout << "\n" << (job.converged ? "converged" : "hit iteration cap")
            << " after " << job.iterations << " iterations ("
            << job.rounds << " coded rounds) | completion "
            << util::fmt(job.completion_time * 1e3, 3) << " ms | timeouts "
            << util::fmt(100.0 * job.timeout_rate, 1) << "% | waste "
            << util::fmt(100.0 * job.mean_wasted_fraction, 1)
            << "% | solution error " << util::fmt_sci(job.solution_error) << "\n";
  std::cout << "job fingerprint: " << job.fingerprint() << "\n";
  return 0;
}

void print_suite(const harness::JobSuiteResult& suite) {
  util::Table t({"app", "trace", "strategy", "iters", "converged",
                 "completion (ms)", "vs s2c2", "timeout %", "waste %"});
  for (const auto& job : suite.jobs) {
    std::vector<std::string> row = {harness::job_app_name(job.app),
                                    harness::trace_profile_name(job.trace),
                                    core::strategy_name(job.strategy)};
    if (job.failed) {
      row.insert(row.end(), {"-", "failed", "-", "-", "-", "-"});
    } else {
      const auto* ref = suite.find(job.app, harness::StrategyKind::kS2C2,
                                   job.trace);
      const bool has_ref =
          ref != nullptr && !ref->failed && ref->completion_time > 0.0;
      row.insert(row.end(),
                 {std::to_string(job.iterations),
                  job.converged ? "yes" : "cap",
                  util::fmt(job.completion_time * 1e3, 3),
                  has_ref ? util::fmt(job.completion_time /
                                          ref->completion_time, 2) + "x"
                          : "-",
                  util::fmt(100.0 * job.timeout_rate, 1),
                  util::fmt(100.0 * job.mean_wasted_fraction, 1)});
    }
    t.add_row(row);
  }
  t.print();
  std::cout << "\nsuite fingerprint: " << suite.fingerprint() << "\n";
}

int run_report(const Options& o) {
  std::cout << "generating reproduction report into " << o.report.out_dir
            << "/ (jobs="
            << (o.report.jobs == 0 ? std::string("auto")
                                   : std::to_string(o.report.jobs))
            << ", seed " << o.report.job_base.seed << ")...\n";
  const report::ReportInputs inputs = report::run_report_inputs(o.report);
  const report::ReportArtifacts art =
      report::write_report(inputs, o.report.out_dir);
  print_suite(inputs.suite);
  std::cout << "\nwrote:\n  " << art.job_completion_path << "\n  "
            << art.utilization_path << "\n  "
            << art.predictor_sensitivity_path << "\n  "
            << art.reproduction_path << "\n";
  std::cout << "suite fingerprint: " << art.suite_fingerprint
            << "\npredictor matrix fingerprint: " << art.matrix_fingerprint
            << "\n";
  return 0;
}

int run_suite(const Options& o) {
  std::cout << "job suite: " << o.report.job_base.workers << " workers (k="
            << o.report.job_base.effective_k() << "), cap "
            << o.report.job_base.max_iterations << " iterations, seed "
            << o.report.job_base.seed << ", jobs="
            << (o.report.jobs == 0 ? std::string("auto")
                                   : std::to_string(o.report.jobs))
            << "\n\n";
  const auto suite = harness::run_job_suite(o.report.job_base, o.report.grid,
                                            o.report.jobs);
  print_suite(suite);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  try {
    o = parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    print_usage();
    return 1;
  }
  if (o.help) {
    print_usage();
    return 0;
  }
  if (o.write_report && o.single) {
    // The report sweeps its grid, overriding the single-job app/strategy;
    // silently ignoring the flags would mislead — reject instead.
    std::cerr << "error: --app/--strategy select a single job and have no "
                 "effect with --report; narrow the report with "
                 "--apps/--strategies/--traces instead\n";
    return 1;
  }
  try {
    if (o.write_report) return run_report(o);
    return o.single ? run_single(o) : run_suite(o);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
