// Full cloud-deployment walkthrough: generate a shared-tenancy cluster,
// train the LSTM speed predictor on historical traces, then run SVM
// iterations under every strategy the paper compares — a miniature of the
// §7.2 evaluation campaign.
//
//   build/examples/cloud_simulation
#include <iostream>

#include "src/core/engine.h"
#include "src/core/overdecomp_engine.h"
#include "src/predict/lstm.h"
#include "src/util/table.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace s2c2;
  std::cout << "Cloud simulation: 10 shared workers, volatile speeds, "
               "LSTM-scheduled S2C2\n\n";

  const auto env = workload::volatile_cloud_config();

  // 1. Train the speed predictor on historical fleet telemetry.
  std::cout << "Training LSTM speed predictor on 24 historical traces...\n";
  util::Rng hist_rng(1);
  const auto history = workload::cloud_speed_corpus(24, 150, env, hist_rng);
  predict::Lstm lstm(1, 4, 99);
  predict::Lstm::TrainConfig tc;
  tc.epochs = 120;
  tc.bptt_window = 48;
  const double mse = lstm.train(history, tc);
  std::cout << "  final training MSE " << util::fmt(mse, 5) << "\n\n";

  // 2. The live cluster.
  util::Rng live_rng(2);
  core::ClusterSpec spec;
  spec.traces = workload::traces_from_series(
      workload::cloud_speed_corpus(10, 400, env, live_rng), 0.012);

  const std::size_t rows = 21000, cols = 2000, chunks = 100, rounds = 30;

  auto coded = [&](core::StrategyKind strategy, std::size_t k) {
    core::EngineConfig cfg;
    cfg.strategy = strategy;
    cfg.chunks_per_partition = chunks;
    auto job = core::CodedMatVecJob::cost_only(rows, cols, 10, k, chunks);
    core::CodedComputeEngine engine(
        job, spec, cfg, std::make_unique<predict::LstmPredictor>(10, lstm));
    const auto results = engine.run_rounds(rounds);
    struct Out {
      double latency;
      double timeouts;
      double waste;
    };
    return Out{core::total_latency(results) / rounds, engine.timeout_rate(),
               engine.accounting().mean_wasted_fraction()};
  };

  const auto mds = coded(core::StrategyKind::kMds, 7);
  const auto s2c2 = coded(core::StrategyKind::kS2C2, 7);

  core::OverDecompositionEngine od(
      rows, cols, spec, {},
      std::make_unique<predict::LstmPredictor>(10, lstm));
  const auto od_results = od.run_rounds(rounds);
  const double od_latency = core::total_latency(od_results) / rounds;

  util::Table t({"strategy", "mean round latency (ms)", "recovery rounds",
                 "mean wasted work"});
  t.add_row({"(10,7)-MDS conventional", util::fmt(mds.latency * 1e3, 2),
             util::fmt(100.0 * mds.timeouts, 0) + "%",
             util::fmt(100.0 * mds.waste, 1) + "%"});
  t.add_row({"over-decomposition", util::fmt(od_latency * 1e3, 2), "-",
             "0%"});
  t.add_row({"(10,7)-S2C2 + LSTM", util::fmt(s2c2.latency * 1e3, 2),
             util::fmt(100.0 * s2c2.timeouts, 0) + "%",
             util::fmt(100.0 * s2c2.waste, 1) + "%"});
  t.print();

  std::cout << "\nS2C2 vs conventional MDS: "
            << util::fmt(100.0 * (mds.latency - s2c2.latency) / mds.latency, 1)
            << "% lower latency, "
            << util::fmt(mds.waste / std::max(s2c2.waste, 1e-9), 0)
            << "x less wasted computation (paper Figs 10-11).\n";
  return 0;
}
