// Scenario driver over the harness (src/harness/matrix_runner.h) — the
// "kick the tires" tool a downstream user reaches for first. Runs either a
// single engine/workload/trace cell with a per-round table, or the widened
// cross-engine matrix, sharded over hardware threads.
//
//   build/examples/scenario_cli --engine s2c2 --workload logreg
//       --trace controlled --workers 12 --stragglers 3 --rounds 20
//   build/examples/scenario_cli --matrix --functional --jobs 0
//   build/examples/scenario_cli --matrix --jobs 4 --axis sizes=12,24,48
//       --axis predictors=oracle,last-value --axis engines=s2c2,replication
//       --axis traces=controlled,failure
//   build/examples/scenario_cli --serve --requests 128 --batch 16
//       --serve-json serve.json
//
// Flags (all optional):
//   --matrix         run the engine x workload x trace (x size x predictor)
//                    sweep on the parallel matrix runner
//   --large-scale    the thousand-worker sweep: MatrixAxes::large_scale()
//                    (n in {100, 250, 1000}, k/stragglers rescaled) —
//                    feasible because decode is cached + Schur-reduced,
//                    see docs/PERFORMANCE.md; combinable with --axis to
//                    narrow further (e.g. --axis sizes=250)
//   --robustness     the trace-zoo sweep: MatrixAxes::robustness()
//                    (fail-slow, bursty, diurnal, byzantine traces on the
//                    last-value predictor with health-informed prediction);
//                    combinable with --axis like --large-scale
//   --serve          coalesced serving cells (harness/serve.h) at
//                    n in {100, 250}: open-loop arrivals batched into
//                    multi-RHS block rounds; honors --engine/--trace/
//                    --chunks/--seed/--jobs/--functional
//   --requests N     serve mode: open-loop requests per cell (default 64)
//   --batch B        serve mode: coalescing cap max_batch (default 16)
//   --serve-json P   serve mode: also write the cells as JSON to path P
//   --jobs N         matrix worker threads (0 = all hardware threads;
//                    default 1 — results are byte-identical either way)
//   --inner-jobs N   intra-round parallelism inside each cell's engine:
//                    kernels, per-chunk products, and decode groups fan
//                    out over an N-way engine pool (0 = all hardware
//                    threads; default 1 = serial). Composes with --jobs
//                    and never changes a fingerprint
//   --axis K=V,V...  restrict/widen a matrix axis; repeatable. Axes:
//                      engines     s2c2|replication|poly|overdecomp|
//                                  s2c2-basic|mds|poly-conventional|lt|agc
//                      workloads   logreg|pagerank|svm|hessian
//                      traces      controlled|stable|volatile|failure|
//                                  fail-slow|bursty|diurnal|byzantine
//                      sizes       cluster sizes, e.g. 12,24,48
//                      predictors  oracle|last-value|arima|lstm
//   --engine X       single-cell engine                   (default s2c2)
//   --strategy X     alias for --engine
//   --workload X     single-cell workload                 (default logreg)
//   --trace X        single-cell trace profile            (default controlled)
//   --predictor X    speed source for capable engines     (default oracle)
//   --workers N      cluster size                         (default 12)
//   --k K            MDS parameter                        (default n-2)
//   --stragglers S   5x-slow nodes, controlled trace only (default 2)
//   --rounds R       iterations per cell                  (default 15)
//   --chunks C       chunks per partition                 (default 24)
//   --seed S         RNG seed for the whole scenario      (default 42)
//   --scale F        cost-only operator scale factor      (default 1.0)
//   --functional     run real (small) operators; coded cells (s2c2, poly on
//                    hessian) verify their decode and report the max error
//   --help           print the same flag/axis listing to stdout
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/harness/matrix_runner.h"
#include "src/harness/serve.h"
#include "src/util/table.h"

namespace {

using namespace s2c2;

struct Options {
  harness::ScenarioConfig config;
  harness::MatrixAxes axes;
  harness::RunnerOptions runner;
  harness::StrategyKind engine = harness::StrategyKind::kS2C2;
  harness::WorkloadKind workload = harness::WorkloadKind::kLogisticRegression;
  harness::TraceProfile trace = harness::TraceProfile::kControlledStragglers;
  std::vector<std::string> axis_specs;  // applied after flag parsing
  bool large_scale = false;
  bool robustness = false;
  bool matrix = false;
  bool serve = false;
  std::size_t requests = 64;
  std::size_t batch = 16;
  std::string serve_json;
  bool help = false;
};

void print_usage() {
  std::cout <<
      "scenario_cli — per-round scenario cells and the cross-engine matrix\n"
      "\n"
      "  scenario_cli [--engine E --workload W --trace T]   one cell\n"
      "  scenario_cli --matrix [--jobs N] [--axis K=V,..]   widened sweep\n"
      "  scenario_cli --large-scale [--jobs N]              n=100/250/1000\n"
      "                                                     fleet sweep\n"
      "  scenario_cli --robustness [--jobs N]               fail-slow/bursty/\n"
      "                                                     diurnal/byzantine\n"
      "  scenario_cli --serve [--requests N --batch B       coalesced serving\n"
      "                        --serve-json PATH]           at n=100/250\n"
      "\n"
      "flags: --jobs N (0 = all hardware threads)  --workers N  --k K\n"
      "       --inner-jobs N (per-engine intra-round parallelism; 0 = all\n"
      "                       hardware threads, default 1 = serial; bitwise\n"
      "                       identical results at any --jobs x --inner-jobs)\n"
      "       --stragglers S  --rounds R  --chunks C  --seed S  --scale F\n"
      "       --predictor P  --functional  --help\n"
      "       (--strategy is an alias for --engine)\n"
      "axes (--axis name=v1,v2,... — repeatable):\n"
      "       engines     s2c2|replication|poly|overdecomp|\n"
      "                   s2c2-basic|mds|poly-conventional|lt|agc\n"
      "       workloads   logreg|pagerank|svm|hessian\n"
      "       traces      controlled|stable|volatile|failure|\n"
      "                   fail-slow|bursty|diurnal|byzantine\n"
      "       sizes       cluster sizes, e.g. 12,24,48\n"
      "       predictors  oracle|last-value|arima|lstm\n"
      "\n"
      "Job-level runs (full iterative applications + report generation)\n"
      "live in repro_cli; see README \"Job driver\" and docs/REPRODUCTION.md.\n";
}

harness::StrategyKind parse_engine(const std::string& s) {
  // One parser for every surface (core::parse_strategy); the matrix
  // additionally restricts to the kinds it can run as cells — the four
  // paper families plus the registry additions (extended_engines()).
  const auto e = core::parse_strategy(s);
  for (const auto allowed : harness::extended_engines()) {
    if (e == allowed) return e;
  }
  throw std::invalid_argument("strategy is not a matrix engine: " + s);
}

harness::WorkloadKind parse_workload(const std::string& s) {
  for (const auto w : harness::all_workloads()) {
    if (s == harness::workload_name(w)) return w;
  }
  throw std::invalid_argument("unknown workload: " + s);
}

harness::TraceProfile parse_trace(const std::string& s) {
  // Extended list: the original four plus the robustness zoo.
  for (const auto t : harness::extended_trace_profiles()) {
    if (s == harness::trace_profile_name(t)) return t;
  }
  throw std::invalid_argument("unknown trace profile: " + s);
}

harness::PredictorKind parse_predictor(const std::string& s) {
  for (const auto p : harness::all_predictors()) {
    if (s == harness::predictor_name(p)) return p;
  }
  throw std::invalid_argument("unknown predictor: " + s);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  if (out.empty()) throw std::invalid_argument("empty axis value list");
  return out;
}

void apply_axis(harness::MatrixAxes& axes, const std::string& spec) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos) {
    throw std::invalid_argument("--axis expects name=v1,v2,... got: " + spec);
  }
  const std::string name = spec.substr(0, eq);
  const auto values = split_csv(spec.substr(eq + 1));
  if (name == "engines") {
    axes.engines.clear();
    for (const auto& v : values) axes.engines.push_back(parse_engine(v));
  } else if (name == "workloads") {
    axes.workloads.clear();
    for (const auto& v : values) axes.workloads.push_back(parse_workload(v));
  } else if (name == "traces") {
    axes.traces.clear();
    for (const auto& v : values) axes.traces.push_back(parse_trace(v));
  } else if (name == "sizes") {
    axes.cluster_sizes.clear();
    for (const auto& v : values) {
      axes.cluster_sizes.push_back(std::stoul(v));
    }
  } else if (name == "predictors") {
    axes.predictors.clear();
    for (const auto& v : values) {
      axes.predictors.push_back(parse_predictor(v));
    }
  } else {
    throw std::invalid_argument("unknown axis: " + name);
  }
}

Options parse(int argc, char** argv) {
  Options o;
  o.config.rounds = 15;
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) throw std::invalid_argument("missing flag value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") o.help = true;
    else if (flag == "--matrix") o.matrix = true;
    else if (flag == "--large-scale") {
      o.matrix = true;
      o.large_scale = true;
    }
    else if (flag == "--robustness") {
      o.matrix = true;
      o.robustness = true;
    }
    else if (flag == "--serve") o.serve = true;
    else if (flag == "--requests") o.requests = std::stoul(value(i));
    else if (flag == "--batch") o.batch = std::stoul(value(i));
    else if (flag == "--serve-json") o.serve_json = value(i);
    else if (flag == "--jobs") o.runner.jobs = std::stoul(value(i));
    else if (flag == "--inner-jobs") {
      const std::size_t n = std::stoul(value(i));
      o.runner.inner_jobs = n;
      o.config.inner_jobs = n;  // single-cell and serve modes read config
    }
    else if (flag == "--axis") o.axis_specs.push_back(value(i));
    else if (flag == "--engine" || flag == "--strategy")
      o.engine = parse_engine(value(i));
    else if (flag == "--workload") o.workload = parse_workload(value(i));
    else if (flag == "--trace") o.trace = parse_trace(value(i));
    else if (flag == "--predictor")
      o.config.predictor = parse_predictor(value(i));
    else if (flag == "--workers") o.config.workers = std::stoul(value(i));
    else if (flag == "--k") o.config.k = std::stoul(value(i));
    else if (flag == "--stragglers") o.config.stragglers = std::stoul(value(i));
    else if (flag == "--rounds") o.config.rounds = std::stoul(value(i));
    else if (flag == "--chunks")
      o.config.chunks_per_partition = std::stoul(value(i));
    else if (flag == "--seed") o.config.seed = std::stoull(value(i));
    else if (flag == "--scale") o.config.scale = std::stod(value(i));
    else if (flag == "--functional") o.config.functional = true;
    else throw std::invalid_argument("unknown flag: " + flag);
  }
  // Presets first, then --axis restrictions, so "--axis sizes=250
  // --large-scale" and "--large-scale --axis sizes=250" both narrow the
  // large-scale preset (flag order must not matter).
  if (o.large_scale && o.robustness) {
    throw std::invalid_argument(
        "--large-scale and --robustness are mutually exclusive presets");
  }
  if (o.large_scale) o.axes = harness::MatrixAxes::large_scale();
  if (o.robustness) o.axes = harness::MatrixAxes::robustness();
  for (const std::string& spec : o.axis_specs) apply_axis(o.axes, spec);
  return o;
}

void print_cell_summary(const harness::CellResult& cell) {
  std::cout << "\nmean latency " << util::fmt(cell.mean_latency * 1e3, 3)
            << " ms | timeout rate "
            << util::fmt(100.0 * cell.timeout_rate, 1)
            << "% | mean wasted work "
            << util::fmt(100.0 * cell.mean_wasted_fraction, 1) << "%";
  if (cell.decode_checked) {
    std::cout << " | max decode error " << util::fmt_sci(cell.max_decode_error);
  }
  std::cout << "\ncell fingerprint: " << cell.fingerprint() << "\n";
}

int run_single(const Options& o) {
  std::cout << core::strategy_name(o.engine) << " / "
            << harness::workload_name(o.workload) << " on "
            << harness::trace_profile_name(o.trace) << " traces, "
            << o.config.workers << " workers (k=" << o.config.effective_k()
            << "), " << harness::predictor_name(o.config.predictor)
            << " speeds, " << o.config.rounds << " rounds"
            << (o.config.functional ? ", functional" : ", cost-only")
            << "\n\n";
  const auto cell =
      harness::run_cell(o.config, o.engine, o.workload, o.trace);
  if (cell.failed) {
    std::cout << "cell failed: " << cell.error << "\n";
    std::cout << "cell fingerprint: " << cell.fingerprint() << "\n";
    return 0;
  }
  util::Table t({"round", "latency (ms)"});
  for (std::size_t r = 0; r < cell.round_latencies.size(); ++r) {
    t.add_row({std::to_string(r + 1),
               util::fmt(cell.round_latencies[r] * 1e3, 3)});
  }
  t.print();
  print_cell_summary(cell);
  return 0;
}

int run_matrix(const Options& o) {
  std::cout << "scenario matrix: base " << o.config.workers
            << " workers (k=" << o.config.effective_k() << "), "
            << o.config.rounds << " rounds/cell, seed " << o.config.seed
            << (o.config.functional ? ", functional" : ", cost-only")
            << ", jobs="
            << (o.runner.jobs == 0 ? std::string("auto")
                                   : std::to_string(o.runner.jobs))
            << "\n\n";
  const auto m = harness::run_matrix(o.config, o.axes, o.runner);
  std::vector<std::string> headers = {"engine", "workload", "trace", "n",
                                      "predictor", "mean latency (ms)",
                                      "timeout %", "wasted %"};
  if (o.config.functional) headers.push_back("max decode err");
  util::Table t(headers);
  for (const auto& cell : m.cells) {
    std::vector<std::string> row = {
        core::strategy_name(cell.engine),
        harness::workload_name(cell.workload),
        harness::trace_profile_name(cell.trace),
        std::to_string(cell.workers),
        harness::predictor_name(cell.predictor)};
    if (cell.failed) {
      row.insert(row.end(), {"failed", "-", "-"});
    } else {
      row.insert(row.end(),
                 {util::fmt(cell.mean_latency * 1e3, 3),
                  util::fmt(100.0 * cell.timeout_rate, 1),
                  util::fmt(100.0 * cell.mean_wasted_fraction, 1)});
    }
    if (o.config.functional) {
      row.push_back(cell.decode_checked && !cell.failed
                        ? util::fmt_sci(cell.max_decode_error)
                        : "-");
    }
    t.add_row(row);
  }
  t.print();
  std::size_t failed = 0;
  for (const auto& cell : m.cells) failed += cell.failed ? 1 : 0;
  if (failed > 0) {
    std::cout << "\n" << failed
              << " cell(s) recorded unrecoverable cluster failures "
                 "(deterministic; see the failure-injection profile)\n";
  }
  std::cout << "\nmatrix fingerprint: " << m.fingerprint() << "\n";
  return 0;
}

int run_serve_mode(const Options& o) {
  // Serving cells at the paper's fleet sizes for the chosen strategy plus
  // the MDS baseline (deduped when they coincide); one sweep, sharded
  // across --jobs threads with byte-identical results at any count.
  std::vector<harness::ServeConfig> cells;
  for (const std::size_t n : {std::size_t{100}, std::size_t{250}}) {
    std::vector<harness::StrategyKind> strategies = {o.engine};
    if (o.engine != harness::StrategyKind::kMds) {
      strategies.push_back(harness::StrategyKind::kMds);
    }
    for (const auto s : strategies) {
      harness::ServeConfig c;
      c.label = std::string(core::strategy_name(s)) + " n=" +
                std::to_string(n);
      c.strategy = s;
      c.trace = harness::TraceProfile::kStableCloud;
      c.workers = n;  // k defaults to n - 2 inside the serve layer
      c.stragglers = o.config.stragglers;
      c.chunks_per_partition = o.config.chunks_per_partition;
      c.requests = o.requests;
      c.load_factor = 16.0;
      c.max_batch = o.batch;
      c.functional = o.config.functional;
      c.seed = o.config.seed;
      c.inner_jobs = o.config.inner_jobs;
      if (!o.config.functional) {
        c.op_rows = 4 * n;
        c.op_cols = 48;
      }
      cells.push_back(c);
    }
  }
  std::cout << "coalesced serving: " << o.requests
            << " open-loop requests/cell, max_batch " << o.batch << ", seed "
            << o.config.seed
            << (o.config.functional ? ", functional" : ", cost-only")
            << ", jobs="
            << (o.runner.jobs == 0 ? std::string("auto")
                                   : std::to_string(o.runner.jobs))
            << "\n\n";
  const std::vector<harness::ServeResult> results =
      harness::run_serve_sweep(cells, o.runner.jobs);

  std::vector<std::string> headers = {"cell",    "rounds",  "jobs/s",
                                      "p50 lat", "p99 lat", "decode hit/miss",
                                      "fingerprint"};
  if (o.config.functional) {
    headers.insert(headers.end() - 1, "max err");
  }
  util::Table t(headers);
  for (const harness::ServeResult& r : results) {
    std::vector<std::string> row = {
        r.config.label,
        std::to_string(r.rounds),
        util::fmt(r.jobs_per_sec, 2),
        util::fmt(r.p50_latency, 3),
        util::fmt(r.p99_latency, 3),
        std::to_string(r.decode.hits) + "/" +
            std::to_string(r.decode.misses)};
    if (o.config.functional) row.push_back(util::fmt_sci(r.max_error));
    row.push_back(r.fingerprint());
    t.add_row(row);
  }
  t.print();

  if (!o.serve_json.empty()) {
    std::ofstream out(o.serve_json);
    out << "{\n  \"bench\": \"serve\",\n  \"unit\": \"jobs_per_sec\",\n"
        << "  \"cases\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const harness::ServeResult& r = results[i];
      out << "    {\"label\": \"" << r.config.label << "\", \"n\": "
          << r.config.workers << ", \"k\": " << r.config.effective_k()
          << ", \"requests\": " << r.config.requests
          << ", \"max_batch\": " << r.config.max_batch
          << ", \"rounds\": " << r.rounds
          << ", \"completed\": " << r.completed
          << ", \"jobs_per_sec\": " << r.jobs_per_sec
          << ", \"p50_latency\": " << r.p50_latency
          << ", \"p99_latency\": " << r.p99_latency
          << ", \"decode_hits\": " << r.decode.hits
          << ", \"decode_misses\": " << r.decode.misses
          << ", \"fingerprint\": \"" << r.fingerprint() << "\"}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "\nwrote " << o.serve_json << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  try {
    o = parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    print_usage();
    return 1;
  }
  if (o.help) {
    print_usage();
    return 0;
  }
  try {
    if (o.serve) return run_serve_mode(o);
    return o.matrix ? run_matrix(o) : run_single(o);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
