// Scenario driver: run any strategy on a custom cluster from the command
// line — the "kick the tires" tool a downstream user reaches for first.
//
//   build/examples/scenario_cli --workers 12 --k 8 --stragglers 3 \
//       --strategy s2c2-general --rounds 20 --env controlled
//
// Flags (all optional):
//   --workers N      cluster size                        (default 12)
//   --k K            MDS parameter                       (default n-2)
//   --stragglers S   5x-slow nodes, controlled env only  (default 1)
//   --strategy X     mds | s2c2-basic | s2c2-general     (default s2c2-general)
//   --env X          controlled | stable | volatile      (default controlled)
//   --rounds R       iterations                          (default 15)
//   --chunks C       chunks per partition                (default 48)
//   --rows / --cols  operator shape                      (default 21000x2000)
//   --lstm           schedule from a trained LSTM instead of the oracle
#include <cstring>
#include <iostream>
#include <string>

#include "src/core/engine.h"
#include "src/predict/lstm.h"
#include "src/util/table.h"
#include "src/workload/trace_gen.h"

namespace {

using namespace s2c2;

struct Options {
  std::size_t workers = 12;
  std::size_t k = 0;
  std::size_t stragglers = 1;
  std::string strategy = "s2c2-general";
  std::string env = "controlled";
  std::size_t rounds = 15;
  std::size_t chunks = 48;
  std::size_t rows = 21000;
  std::size_t cols = 2000;
  bool lstm = false;
};

Options parse(int argc, char** argv) {
  Options o;
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) throw std::invalid_argument("missing flag value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--workers") o.workers = std::stoul(value(i));
    else if (flag == "--k") o.k = std::stoul(value(i));
    else if (flag == "--stragglers") o.stragglers = std::stoul(value(i));
    else if (flag == "--strategy") o.strategy = value(i);
    else if (flag == "--env") o.env = value(i);
    else if (flag == "--rounds") o.rounds = std::stoul(value(i));
    else if (flag == "--chunks") o.chunks = std::stoul(value(i));
    else if (flag == "--rows") o.rows = std::stoul(value(i));
    else if (flag == "--cols") o.cols = std::stoul(value(i));
    else if (flag == "--lstm") o.lstm = true;
    else throw std::invalid_argument("unknown flag: " + flag);
  }
  if (o.k == 0) o.k = o.workers >= 3 ? o.workers - 2 : o.workers;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  try {
    o = parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n(see header comment for flags)\n";
    return 1;
  }

  // Environment.
  workload::CloudTraceConfig trace_cfg;
  core::ClusterSpec spec;
  util::Rng rng(1234);
  if (o.env == "controlled") {
    spec.traces = workload::controlled_cluster_traces(o.workers, o.stragglers,
                                                      0.2, rng);
    spec.net.bytes_per_s = 7e9;
  } else {
    trace_cfg = o.env == "stable" ? workload::stable_cloud_config()
                                  : workload::volatile_cloud_config();
    spec.traces = workload::traces_from_series(
        workload::cloud_speed_corpus(o.workers, 400, trace_cfg, rng), 0.012);
  }

  // Strategy.
  core::EngineConfig cfg;
  cfg.chunks_per_partition = o.chunks;
  cfg.oracle_speeds = !o.lstm;
  if (o.strategy == "mds") cfg.strategy = core::Strategy::kMdsConventional;
  else if (o.strategy == "s2c2-basic") cfg.strategy = core::Strategy::kS2C2Basic;
  else if (o.strategy == "s2c2-general") cfg.strategy = core::Strategy::kS2C2General;
  else {
    std::cerr << "error: unknown strategy " << o.strategy << "\n";
    return 1;
  }

  std::unique_ptr<predict::SpeedPredictor> predictor;
  std::unique_ptr<predict::Lstm> lstm;
  if (o.lstm) {
    std::cout << "training LSTM predictor...\n";
    util::Rng hist(5);
    const auto corpus =
        workload::cloud_speed_corpus(24, 150, trace_cfg, hist);
    lstm = std::make_unique<predict::Lstm>(1, 4, 99);
    predict::Lstm::TrainConfig tc;
    tc.epochs = 120;
    lstm->train(corpus, tc);
    predictor = std::make_unique<predict::LstmPredictor>(o.workers, *lstm);
  }

  auto job = core::CodedMatVecJob::cost_only(o.rows, o.cols, o.workers, o.k,
                                             o.chunks);
  core::CodedComputeEngine engine(job, spec, cfg, std::move(predictor));

  std::cout << "\n(" << o.workers << "," << o.k << ") " << o.strategy
            << " on " << o.env << " cluster, " << o.rounds << " rounds\n\n";
  util::Table t({"round", "latency (ms)", "timeout", "reassigned chunks"});
  double total = 0.0;
  for (std::size_t r = 0; r < o.rounds; ++r) {
    const auto res = engine.run_round();
    total += res.stats.latency();
    t.add_row({std::to_string(r + 1),
               util::fmt(res.stats.latency() * 1e3, 3),
               res.stats.timeout_fired ? "yes" : "",
               res.stats.reassigned_chunks > 0
                   ? std::to_string(res.stats.reassigned_chunks)
                   : ""});
  }
  t.print();
  std::cout << "\nmean latency " << util::fmt(total / o.rounds * 1e3, 3)
            << " ms | timeout rate "
            << util::fmt(100.0 * engine.timeout_rate(), 1)
            << "% | mean wasted work "
            << util::fmt(100.0 * engine.accounting().mean_wasted_fraction(), 1)
            << "%\n";
  return 0;
}
