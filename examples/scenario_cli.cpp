// Scenario driver over the harness (src/harness/scenario_matrix.h) — the
// "kick the tires" tool a downstream user reaches for first. Runs either a
// single engine/workload/trace cell with a per-round table, or the full
// deterministic cross-engine matrix.
//
//   build/examples/scenario_cli --engine s2c2 --workload logreg
//       --trace controlled --workers 12 --stragglers 3 --rounds 20
//   build/examples/scenario_cli --matrix --functional
//
// Flags (all optional):
//   --matrix         run the full engine x workload x trace sweep
//   --engine X       s2c2 | replication | poly | overdecomp  (default s2c2)
//   --workload X     logreg | pagerank | svm | hessian       (default logreg)
//   --trace X        controlled | stable | volatile          (default controlled)
//   --workers N      cluster size                            (default 12)
//   --k K            MDS parameter                           (default n-2)
//   --stragglers S   5x-slow nodes, controlled trace only    (default 2)
//   --rounds R       iterations per cell                     (default 15)
//   --chunks C       chunks per partition                    (default 24)
//   --seed S         RNG seed for the whole scenario         (default 42)
//   --scale F        cost-only operator scale factor         (default 1.0)
//   --functional     run real (small) operators; coded cells (s2c2, poly on
//                    hessian) verify their decode and report the max error
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/harness/scenario_matrix.h"
#include "src/util/table.h"

namespace {

using namespace s2c2;

struct Options {
  harness::ScenarioConfig config;
  harness::EngineKind engine = harness::EngineKind::kS2C2;
  harness::WorkloadKind workload = harness::WorkloadKind::kLogisticRegression;
  harness::TraceProfile trace = harness::TraceProfile::kControlledStragglers;
  bool matrix = false;
};

std::string fmt_sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

harness::EngineKind parse_engine(const std::string& s) {
  for (const auto e : harness::all_engines()) {
    if (s == harness::engine_name(e)) return e;
  }
  throw std::invalid_argument("unknown engine: " + s);
}

harness::WorkloadKind parse_workload(const std::string& s) {
  for (const auto w : harness::all_workloads()) {
    if (s == harness::workload_name(w)) return w;
  }
  throw std::invalid_argument("unknown workload: " + s);
}

harness::TraceProfile parse_trace(const std::string& s) {
  for (const auto t : harness::all_trace_profiles()) {
    if (s == harness::trace_profile_name(t)) return t;
  }
  throw std::invalid_argument("unknown trace profile: " + s);
}

Options parse(int argc, char** argv) {
  Options o;
  o.config.rounds = 15;
  auto value = [&](int& i) -> std::string {
    if (i + 1 >= argc) throw std::invalid_argument("missing flag value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--matrix") o.matrix = true;
    else if (flag == "--engine") o.engine = parse_engine(value(i));
    else if (flag == "--workload") o.workload = parse_workload(value(i));
    else if (flag == "--trace") o.trace = parse_trace(value(i));
    else if (flag == "--workers") o.config.workers = std::stoul(value(i));
    else if (flag == "--k") o.config.k = std::stoul(value(i));
    else if (flag == "--stragglers") o.config.stragglers = std::stoul(value(i));
    else if (flag == "--rounds") o.config.rounds = std::stoul(value(i));
    else if (flag == "--chunks")
      o.config.chunks_per_partition = std::stoul(value(i));
    else if (flag == "--seed") o.config.seed = std::stoull(value(i));
    else if (flag == "--scale") o.config.scale = std::stod(value(i));
    else if (flag == "--functional") o.config.functional = true;
    else throw std::invalid_argument("unknown flag: " + flag);
  }
  return o;
}

void print_cell_summary(const harness::CellResult& cell) {
  std::cout << "\nmean latency " << util::fmt(cell.mean_latency * 1e3, 3)
            << " ms | timeout rate "
            << util::fmt(100.0 * cell.timeout_rate, 1)
            << "% | mean wasted work "
            << util::fmt(100.0 * cell.mean_wasted_fraction, 1) << "%";
  if (cell.decode_checked) {
    std::cout << " | max decode error " << fmt_sci(cell.max_decode_error);
  }
  std::cout << "\ncell fingerprint: " << cell.fingerprint() << "\n";
}

int run_single(const Options& o) {
  std::cout << harness::engine_name(o.engine) << " / "
            << harness::workload_name(o.workload) << " on "
            << harness::trace_profile_name(o.trace) << " traces, "
            << o.config.workers << " workers (k=" << o.config.effective_k()
            << "), " << o.config.rounds << " rounds"
            << (o.config.functional ? ", functional" : ", cost-only")
            << "\n\n";
  const auto cell =
      harness::run_cell(o.config, o.engine, o.workload, o.trace);
  util::Table t({"round", "latency (ms)"});
  for (std::size_t r = 0; r < cell.round_latencies.size(); ++r) {
    t.add_row({std::to_string(r + 1),
               util::fmt(cell.round_latencies[r] * 1e3, 3)});
  }
  t.print();
  print_cell_summary(cell);
  return 0;
}

int run_matrix(const Options& o) {
  std::cout << "scenario matrix: " << o.config.workers
            << " workers (k=" << o.config.effective_k() << "), "
            << o.config.rounds << " rounds/cell, seed " << o.config.seed
            << (o.config.functional ? ", functional" : ", cost-only")
            << "\n\n";
  const auto m = harness::run_scenario_matrix(o.config);
  std::vector<std::string> headers = {"engine", "workload", "trace",
                                      "mean latency (ms)", "timeout %",
                                      "wasted %"};
  if (o.config.functional) headers.push_back("max decode err");
  util::Table t(headers);
  for (const auto& cell : m.cells) {
    std::vector<std::string> row = {
        harness::engine_name(cell.engine),
        harness::workload_name(cell.workload),
        harness::trace_profile_name(cell.trace),
        util::fmt(cell.mean_latency * 1e3, 3),
        util::fmt(100.0 * cell.timeout_rate, 1),
        util::fmt(100.0 * cell.mean_wasted_fraction, 1)};
    if (o.config.functional) {
      row.push_back(cell.decode_checked ? fmt_sci(cell.max_decode_error)
                                        : "-");
    }
    t.add_row(row);
  }
  t.print();
  std::cout << "\nmatrix fingerprint: " << m.fingerprint() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  try {
    o = parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n(see header comment for flags)\n";
    return 1;
  }
  try {
    return o.matrix ? run_matrix(o) : run_single(o);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
