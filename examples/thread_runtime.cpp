// The thread-backed runtime: real worker threads, real message channels,
// real stragglers (injected sleeps) — the paper's master/worker design
// (§6) outside the simulator. The master decodes the moment any k
// responses cover every chunk; the sleeping straggler's remaining results
// are simply discarded.
//
//   build/examples/thread_runtime
#include <chrono>
#include <iostream>
#include <thread>

#include "src/runtime/thread_cluster.h"
#include "src/sched/allocation.h"
#include "src/util/rng.h"
#include "src/util/table.h"

int main() {
  using namespace s2c2;
  std::cout << "Thread runtime: 6 worker threads, (6,4)-MDS code, worker 5 "
               "sleeps 20ms per chunk\n\n";

  util::Rng rng(3);
  const auto a = linalg::Matrix::random_uniform(240, 32, rng);
  linalg::Vector x(32);
  for (auto& v : x) v = rng.normal();
  const auto truth = a.matvec(x);

  const core::CodedMatVecJob job(a, 6, 4, 12);
  runtime::DelayHook straggler = [](std::size_t worker, std::size_t) {
    if (worker == 5) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  };
  runtime::ThreadCluster cluster(job, straggler);

  util::Table t({"round", "allocation", "wall time (ms)", "max |err|"});
  for (int round = 0; round < 3; ++round) {
    // Round 0: conventional full allocation (first k responses win).
    // Rounds 1+: S2C2 allocation that sidelines the known straggler.
    sched::Allocation alloc;
    std::string label;
    if (round == 0) {
      alloc = sched::full_allocation(6, 12);
      label = "conventional (full partitions)";
    } else {
      const std::vector<double> speeds{1.0, 1.0, 1.0, 1.0, 1.0, 0.05};
      alloc = sched::proportional_allocation(speeds, 4, 12);
      label = "S2C2 (straggler nearly idle)";
    }
    const auto start = std::chrono::steady_clock::now();
    const auto y = cluster.run_round(alloc, x);
    const auto ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    double err = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      err = std::max(err, std::abs(y[i] - truth[i]));
    }
    t.add_row({std::to_string(round), label, util::fmt(ms, 1),
               util::fmt(err, 12)});
  }
  t.print();

  std::cout << "\nEvery round decodes the exact product with real threads;\n"
               "the S2C2 allocation just stops waiting on (and stops\n"
               "assigning work to) the sleeping straggler.\n";
  return 0;
}
