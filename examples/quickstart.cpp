// Quickstart: encode a matrix once, run coded matrix-vector rounds on a
// simulated cluster with a straggler, and compare conventional MDS coding
// against S2C2 — the paper's core idea in ~80 lines.
//
//   build/examples/quickstart
#include <iostream>

#include "src/core/engine.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace s2c2;
  std::cout << "S2C2 quickstart: 12 workers, conservative (12,8)-MDS code, 1 straggler\n\n";

  // 1. The operator we want to multiply by many vectors (e.g. a data
  //    matrix for iterative gradient descent).
  util::Rng rng(7);
  const auto a = linalg::Matrix::random_uniform(4800, 200, rng);
  linalg::Vector x(200);
  for (auto& v : x) v = rng.normal();
  const auto truth = a.matvec(x);

  // 2. Encode once, conservatively: n=12 partitions, any k=8 decode
  //    (tolerates up to 4 stragglers), 24 chunks each.
  const std::size_t n = 12, k = 8, chunks = 24;
  const core::CodedMatVecJob job(a, n, k, chunks);

  // 3. A cluster where worker 11 is 5x slower.
  util::Rng trng(42);
  core::ClusterSpec spec;
  spec.traces = workload::controlled_cluster_traces(n, 1, 0.1, trng);
  spec.worker_flops = 1e8;

  // 4. Run both strategies for a few rounds.
  auto run = [&](core::StrategyKind strategy) {
    core::EngineConfig cfg;
    cfg.strategy = strategy;
    cfg.chunks_per_partition = chunks;
    cfg.oracle_speeds = true;
    core::CodedComputeEngine engine(job, spec, cfg);
    double latency = 0.0;
    double max_err = 0.0;
    for (int round = 0; round < 5; ++round) {
      const core::RoundResult r = engine.run_round(x);
      latency += r.stats.latency();
      for (std::size_t i = 0; i < truth.size(); ++i) {
        max_err = std::max(max_err, std::abs((*r.y)[i] - truth[i]));
      }
    }
    std::cout << "  " << core::strategy_name(strategy)
              << ": mean round latency " << util::fmt(latency / 5 * 1e3, 2)
              << " ms, decode max error " << max_err << "\n";
    return latency / 5;
  };

  const double mds = run(core::StrategyKind::kMds);
  const double s2c2 = run(core::StrategyKind::kS2C2);

  std::cout << "\nS2C2 squeezed the coded-computing slack: "
            << util::fmt(100.0 * (mds - s2c2) / mds, 1)
            << "% lower latency than conventional MDS coding,\n"
            << "with the identical encoded data and the identical "
               "straggler tolerance.\n";
  return 0;
}
