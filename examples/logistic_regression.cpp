// Coded logistic regression (the paper's §6.3 ML workload): both gradient
// products (X·w and Xᵀ·z) run through S2C2-scheduled coded clusters, so
// every training iteration is straggler-protected end to end.
//
//   build/examples/logistic_regression
#include <iostream>

#include "src/apps/logistic_regression.h"
#include "src/util/table.h"
#include "src/workload/trace_gen.h"

int main() {
  using namespace s2c2;
  std::cout << "Coded logistic regression on a 12-worker cluster with 2 "
               "stragglers\n\n";

  util::Rng rng(11);
  const auto data = workload::make_classification(1200, 50, rng, 3.0, 0.8);

  util::Rng trng(5);
  core::ClusterSpec spec;
  spec.traces = workload::controlled_cluster_traces(12, 2, 0.2, trng);
  spec.worker_flops = 1e8;

  apps::GdConfig gd;
  gd.iterations = 20;
  gd.learning_rate = 0.5;
  gd.k = 8;  // (12,8)-MDS: tolerate up to 4 stragglers

  auto run = [&](core::StrategyKind strategy, const char* label) {
    core::EngineConfig cfg;
    cfg.strategy = strategy;
    cfg.chunks_per_partition = 24;
    cfg.oracle_speeds = true;
    const apps::TrainResult result =
        apps::train_logistic_regression(data, spec, cfg, gd);
    std::cout << label << ": final loss "
              << util::fmt(result.losses.back(), 4) << ", total latency "
              << util::fmt(result.total_latency * 1e3, 1) << " ms\n";
    return result;
  };

  const auto mds = run(core::StrategyKind::kMds, "conventional MDS ");
  const auto s2c2 = run(core::StrategyKind::kS2C2, "S2C2 (general)   ");

  std::cout << "\nLoss trajectories are identical (decode is exact):\n";
  util::Table t({"iteration", "MDS loss", "S2C2 loss"});
  for (std::size_t it : {0u, 4u, 9u, 14u, 19u}) {
    t.add_row({std::to_string(it + 1), util::fmt(mds.losses[it], 5),
               util::fmt(s2c2.losses[it], 5)});
  }
  t.print();
  std::cout << "\nSame model, same convergence — S2C2 just gets there "
            << util::fmt(100.0 * (mds.total_latency - s2c2.total_latency) /
                             mds.total_latency,
                         1)
            << "% sooner.\n";
  return 0;
}
