// Blocked-kernel equivalence suite: every tiled kernel in
// src/linalg/kernels.h must be BITWISE identical (EXPECT_EQ on doubles,
// never EXPECT_NEAR) to the naive scalar reference it replaced, because
// the PR 5-8 fingerprint goldens hash accounting totals derived from these
// products and double addition is not associative — any reassociation
// would re-pin every golden. The kernels only interleave *different*
// output elements' accumulation chains; each element's own chain stays in
// ascending-column (dense) or CSR-storage (sparse) order.
//
// Coverage: randomized shapes straddling every tile boundary (row tile 4
// for matvec, 2 x 8 for matmat), odd and degenerate sizes, unaligned
// row-pointer offsets (sub-range entry points as EncodedPartition uses
// them), dense matvec/matmat and CSR matvec/matmat, the Matrix/CsrMatrix
// wrappers, concurrent kernel invocations across parameterized thread
// counts (results must be identical at any --jobs), and the row-partitioned
// pool overloads — serial vs. pooled EXPECT_EQ sweeps at parameterized
// pool sizes, above and below the kPoolMinWork engagement threshold, plus
// the outer-pool nesting composition.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/linalg/kernels.h"
#include "src/linalg/matrix.h"
#include "src/linalg/sparse.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace s2c2::linalg {
namespace {

// Naive references: the exact pre-kernel loops, one scalar accumulator
// chain per output element.

std::vector<double> naive_dense_matvec(const double* a, std::size_t rows,
                                       std::size_t cols, const double* x) {
  std::vector<double> y(rows, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols; ++c) acc += a[r * cols + c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> naive_dense_matmat(const double* a, std::size_t rows,
                                       std::size_t cols, const double* x,
                                       std::size_t width) {
  std::vector<double> y(rows * width, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < width; ++j) {
      double acc = 0.0;
      for (std::size_t c = 0; c < cols; ++c) {
        acc += a[r * cols + c] * x[c * width + j];
      }
      y[r * width + j] = acc;
    }
  }
  return y;
}

std::vector<double> naive_csr_matvec(const CsrMatrix& m, std::size_t r0,
                                     std::size_t r1, const double* x) {
  const auto rp = m.row_ptr();
  const auto ci = m.col_idx();
  const auto vals = m.values();
  std::vector<double> y(r1 - r0, 0.0);
  for (std::size_t r = r0; r < r1; ++r) {
    double acc = 0.0;
    for (std::size_t p = rp[r]; p < rp[r + 1]; ++p) {
      acc += vals[p] * x[ci[p]];
    }
    y[r - r0] = acc;
  }
  return y;
}

std::vector<double> naive_csr_matmat(const CsrMatrix& m, std::size_t r0,
                                     std::size_t r1, const double* x,
                                     std::size_t width) {
  const auto rp = m.row_ptr();
  const auto ci = m.col_idx();
  const auto vals = m.values();
  std::vector<double> y((r1 - r0) * width, 0.0);
  for (std::size_t r = r0; r < r1; ++r) {
    for (std::size_t j = 0; j < width; ++j) {
      double acc = 0.0;
      for (std::size_t p = rp[r]; p < rp[r + 1]; ++p) {
        acc += vals[p] * x[ci[p] * width + j];
      }
      y[(r - r0) * width + j] = acc;
    }
  }
  return y;
}

std::vector<double> random_values(std::size_t n, util::Rng& rng) {
  std::vector<double> v(n);
  // Mixed magnitudes so reassociation would actually change the sums.
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = rng.normal() * (i % 5 == 0 ? 1e6 : (i % 3 == 0 ? 1e-6 : 1.0));
  }
  return v;
}

CsrMatrix random_csr(std::size_t rows, std::size_t cols, double density,
                     util::Rng& rng) {
  std::vector<Triplet> trips;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.uniform(0.0, 1.0) < density) {
        trips.push_back({r, c, rng.normal()});
      }
    }
  }
  return CsrMatrix(rows, cols, std::move(trips));
}

// Shapes straddling the tile boundaries (kMatvecRowTile = 4,
// kMatmatRowTile x kMatmatColTile = 2 x 8) plus odd/degenerate sizes.
struct Shape {
  std::size_t rows, cols;
};
const Shape kShapes[] = {{1, 1},  {1, 7},   {3, 5},   {4, 4},  {5, 9},
                         {7, 16}, {8, 8},   {9, 1},   {13, 3}, {16, 17},
                         {31, 8}, {32, 33}, {63, 24}, {64, 5}};
const std::size_t kWidths[] = {1, 2, 3, 7, 8, 9, 15, 16, 17};

TEST(KernelEquivalence, DenseMatvecBitwiseMatchesNaive) {
  util::Rng rng(0xA11CE);
  for (const Shape s : kShapes) {
    const std::vector<double> a = random_values(s.rows * s.cols, rng);
    const std::vector<double> x = random_values(s.cols, rng);
    std::vector<double> y(s.rows, -1.0);
    kernels::dense_matvec(a.data(), s.rows, s.cols, x.data(), y.data());
    const std::vector<double> ref =
        naive_dense_matvec(a.data(), s.rows, s.cols, x.data());
    for (std::size_t r = 0; r < s.rows; ++r) {
      EXPECT_EQ(y[r], ref[r]) << s.rows << "x" << s.cols << " row " << r;
    }
  }
}

TEST(KernelEquivalence, DenseMatmatBitwiseMatchesNaive) {
  util::Rng rng(0xB0B);
  for (const Shape s : kShapes) {
    const std::vector<double> a = random_values(s.rows * s.cols, rng);
    for (const std::size_t w : kWidths) {
      const std::vector<double> x = random_values(s.cols * w, rng);
      std::vector<double> y(s.rows * w, -1.0);
      kernels::dense_matmat(a.data(), s.rows, s.cols, x.data(), w, y.data());
      const std::vector<double> ref =
          naive_dense_matmat(a.data(), s.rows, s.cols, x.data(), w);
      for (std::size_t i = 0; i < y.size(); ++i) {
        EXPECT_EQ(y[i], ref[i])
            << s.rows << "x" << s.cols << " b=" << w << " i=" << i;
      }
    }
  }
}

TEST(KernelEquivalence, MatmatColumnsMatchMatvecOfPanelColumns) {
  // The cross-kernel invariant the decoder relies on: column j of a panel
  // product is the matvec of panel column j, bit for bit.
  util::Rng rng(0xC01);
  const std::size_t rows = 23, cols = 19, width = 11;
  const std::vector<double> a = random_values(rows * cols, rng);
  const std::vector<double> x = random_values(cols * width, rng);
  std::vector<double> y(rows * width, 0.0);
  kernels::dense_matmat(a.data(), rows, cols, x.data(), width, y.data());
  for (std::size_t j = 0; j < width; ++j) {
    std::vector<double> xj(cols);
    for (std::size_t c = 0; c < cols; ++c) xj[c] = x[c * width + j];
    std::vector<double> yj(rows, 0.0);
    kernels::dense_matvec(a.data(), rows, cols, xj.data(), yj.data());
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(y[r * width + j], yj[r]) << "col " << j << " row " << r;
    }
  }
}

TEST(KernelEquivalence, CsrMatvecBitwiseMatchesNaiveIncludingSubRanges) {
  util::Rng rng(0xD0C);
  for (const double density : {0.05, 0.3, 0.9}) {
    const CsrMatrix m = random_csr(37, 29, density, rng);
    const std::vector<double> x = random_values(m.cols(), rng);
    // Full matrix and unaligned row sub-ranges (the EncodedPartition
    // chunk-entry convention: row_ptr() + r0).
    const std::size_t ranges[][2] = {{0, 37}, {0, 1}, {5, 13}, {30, 37},
                                     {17, 18}};
    for (const auto& range : ranges) {
      const std::size_t r0 = range[0], r1 = range[1];
      std::vector<double> y(r1 - r0, -1.0);
      kernels::csr_matvec(m.row_ptr().data() + r0, r1 - r0,
                          m.col_idx().data(), m.values().data(), x.data(),
                          y.data());
      const std::vector<double> ref = naive_csr_matvec(m, r0, r1, x.data());
      for (std::size_t i = 0; i < y.size(); ++i) {
        EXPECT_EQ(y[i], ref[i])
            << "density " << density << " rows [" << r0 << "," << r1 << ")";
      }
    }
  }
}

TEST(KernelEquivalence, CsrMatmatBitwiseMatchesNaive) {
  util::Rng rng(0xE77);
  const CsrMatrix m = random_csr(41, 23, 0.2, rng);
  for (const std::size_t w : kWidths) {
    const std::vector<double> x = random_values(m.cols() * w, rng);
    std::vector<double> y(m.rows() * w, -1.0);
    kernels::csr_matmat(m.row_ptr().data(), m.rows(), m.col_idx().data(),
                        m.values().data(), x.data(), w, y.data());
    const std::vector<double> ref =
        naive_csr_matmat(m, 0, m.rows(), x.data(), w);
    for (std::size_t i = 0; i < y.size(); ++i) {
      EXPECT_EQ(y[i], ref[i]) << "b=" << w << " i=" << i;
    }
  }
}

TEST(KernelEquivalence, MatrixWrappersUseTheSameChains) {
  // Matrix::matvec/matmat and the _into forms must all emit the kernel
  // results — no wrapper may introduce its own arithmetic.
  util::Rng rng(0xF00);
  const Matrix a = Matrix::random_uniform(21, 14, rng);
  const std::vector<double> x = random_values(14 * 5, rng);
  const std::vector<double> ref =
      naive_dense_matmat(a.data().data(), 21, 14, x.data(), 5);

  Matrix panel(14, 5);
  for (std::size_t i = 0; i < x.size(); ++i) {
    panel(i / 5, i % 5) = x[i];
  }
  const Matrix y = a.matmat(panel);
  std::vector<double> y_into(21 * 5, -1.0);
  a.matmat_into(x, 5, y_into);
  for (std::size_t r = 0; r < 21; ++r) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(y(r, j), ref[r * 5 + j]);
      EXPECT_EQ(y_into[r * 5 + j], ref[r * 5 + j]);
    }
  }

  std::vector<double> x0(14);
  for (std::size_t c = 0; c < 14; ++c) x0[c] = x[c * 5];
  const Vector yv = a.matvec(x0);
  std::vector<double> yv_into(21, -1.0);
  a.matvec_into(x0, yv_into);
  const std::vector<double> vref =
      naive_dense_matvec(a.data().data(), 21, 14, x0.data());
  for (std::size_t r = 0; r < 21; ++r) {
    EXPECT_EQ(yv[r], vref[r]);
    EXPECT_EQ(yv_into[r], vref[r]);
  }
}

class PoolOverloadTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolOverloadTest, DenseKernelsBitwiseMatchSerialAtAnyPoolSize) {
  // The row-partitioned pool overloads against the serial kernels,
  // EXPECT_EQ per element. Two regimes per shape list: the small kShapes
  // fall under kPoolMinWork and take the serial fallback inside the
  // overload; the large shapes straddle row-tile boundaries around the
  // block split points (255/256/257 rows against tile 4, rows below/at/
  // above pool-size multiples) and genuinely fan out. Both must emit the
  // serial bits — the partition is over whole output rows only.
  util::ThreadPool pool(GetParam());
  util::Rng rng(0x9001);
  const Shape big[] = {{255, 300}, {256, 300}, {257, 300},
                       {258, 257}, {301, 260}, {512, 129}};
  auto check_shape = [&](std::size_t rows, std::size_t cols) {
    const std::vector<double> a = random_values(rows * cols, rng);
    const std::vector<double> x = random_values(cols, rng);
    std::vector<double> serial(rows, -1.0);
    std::vector<double> pooled(rows, -2.0);
    kernels::dense_matvec(a.data(), rows, cols, x.data(), serial.data());
    kernels::dense_matvec(a.data(), rows, cols, x.data(), pooled.data(),
                          &pool);
    EXPECT_EQ(serial, pooled) << rows << "x" << cols << " matvec";
    for (const std::size_t w : {std::size_t{1}, std::size_t{3},
                                std::size_t{8}}) {
      const std::vector<double> xp = random_values(cols * w, rng);
      std::vector<double> sref(rows * w, -1.0);
      std::vector<double> pref(rows * w, -2.0);
      kernels::dense_matmat(a.data(), rows, cols, xp.data(), w, sref.data());
      kernels::dense_matmat(a.data(), rows, cols, xp.data(), w, pref.data(),
                            &pool);
      EXPECT_EQ(sref, pref) << rows << "x" << cols << " b=" << w;
    }
  };
  for (const Shape s : big) check_shape(s.rows, s.cols);
  for (const Shape s : kShapes) check_shape(s.rows, s.cols);
}

TEST_P(PoolOverloadTest, CsrKernelsBitwiseMatchSerialAtAnyPoolSize) {
  util::ThreadPool pool(GetParam());
  util::Rng rng(0x9002);
  // ~80k nonzeros: over kPoolMinWork for the matvec (work = nnz), so the
  // row blocks engage; the narrow 150 x 150 operator stays under it for
  // matvec and checks the in-overload serial fallback instead.
  for (const Shape s : {Shape{410, 400}, Shape{150, 150}}) {
    const CsrMatrix m = random_csr(s.rows, s.cols, 0.5, rng);
    const std::vector<double> x = random_values(m.cols(), rng);
    std::vector<double> serial(m.rows(), -1.0);
    std::vector<double> pooled(m.rows(), -2.0);
    kernels::csr_matvec(m.row_ptr().data(), m.rows(), m.col_idx().data(),
                        m.values().data(), x.data(), serial.data());
    kernels::csr_matvec(m.row_ptr().data(), m.rows(), m.col_idx().data(),
                        m.values().data(), x.data(), pooled.data(), &pool);
    EXPECT_EQ(serial, pooled) << s.rows << "x" << s.cols << " csr matvec";
    for (const std::size_t w : {std::size_t{2}, std::size_t{7}}) {
      const std::vector<double> xp = random_values(m.cols() * w, rng);
      std::vector<double> sref(m.rows() * w, -1.0);
      std::vector<double> pref(m.rows() * w, -2.0);
      kernels::csr_matmat(m.row_ptr().data(), m.rows(), m.col_idx().data(),
                          m.values().data(), xp.data(), w, sref.data());
      kernels::csr_matmat(m.row_ptr().data(), m.rows(), m.col_idx().data(),
                          m.values().data(), xp.data(), w, pref.data(),
                          &pool);
      EXPECT_EQ(sref, pref) << s.rows << "x" << s.cols << " csr b=" << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, PoolOverloadTest,
                         ::testing::Values(1, 2, 3, 7));

TEST(KernelEquivalence, PoolOverloadsNestedInsideAnOuterPoolStaySerialSafe) {
  // The engine-inside-sharded-harness composition in miniature: pool
  // overloads invoked from tasks of an OUTER pool (the member parallel_for
  // is help-first, so inner fan-outs drain without deadlocking even when
  // outer and inner share threads) must still emit the serial bits.
  util::ThreadPool outer(3);
  util::ThreadPool inner(2);
  util::Rng rng(0x9003);
  const std::size_t rows = 300, cols = 280;
  const std::vector<double> a = random_values(rows * cols, rng);
  std::vector<std::vector<double>> inputs;
  for (int i = 0; i < 8; ++i) inputs.push_back(random_values(cols, rng));
  std::vector<std::vector<double>> serial(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    serial[i].assign(rows, 0.0);
    kernels::dense_matvec(a.data(), rows, cols, inputs[i].data(),
                          serial[i].data());
  }
  std::vector<std::vector<double>> nested(inputs.size());
  outer.parallel_for(inputs.size(), [&](std::size_t i) {
    nested[i].assign(rows, 0.0);
    kernels::dense_matvec(a.data(), rows, cols, inputs[i].data(),
                          nested[i].data(), &inner);
  });
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(serial[i], nested[i]) << "input " << i;
  }
}

class KernelThreadedTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelThreadedTest, ConcurrentInvocationsAreBitIdentical) {
  // The kernels are pure functions of their inputs; hammering one shared
  // operator from `jobs` threads at once must reproduce the serial result
  // bit for bit in every slot — the determinism contract the harness
  // relies on at any --jobs.
  const std::size_t jobs = GetParam();
  util::Rng rng(0xBEEF);
  const std::size_t rows = 33, cols = 27, width = 6;
  const std::vector<double> a = random_values(rows * cols, rng);
  std::vector<std::vector<double>> inputs;
  for (int i = 0; i < 24; ++i) {
    inputs.push_back(random_values(cols * width, rng));
  }
  std::vector<std::vector<double>> serial(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    serial[i].assign(rows * width, 0.0);
    kernels::dense_matmat(a.data(), rows, cols, inputs[i].data(), width,
                          serial[i].data());
  }
  std::vector<std::vector<double>> parallel(inputs.size());
  util::parallel_for(inputs.size(), jobs, [&](std::size_t i) {
    parallel[i].assign(rows * width, 0.0);
    kernels::dense_matmat(a.data(), rows, cols, inputs[i].data(), width,
                          parallel[i].data());
  });
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "input " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Jobs, KernelThreadedTest,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace s2c2::linalg
