// Tests for the multi-RHS block round data path (run_round_block): bitwise
// column equivalence to single-RHS rounds, exact b-linearity of the cost
// model, and the block/classic width-1 identity the pinned fingerprint
// goldens rest on.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/core/engine.h"
#include "src/core/engine_factory.h"
#include "src/util/rng.h"
#include "src/workload/trace_gen.h"
#include "tests/test_util.h"

namespace s2c2::core {
namespace {

using test::kChunks;
using test::make_spec;

/// A cols x b panel of seeded random request vectors.
linalg::Matrix random_panel(std::size_t cols, std::size_t b,
                            std::uint64_t seed) {
  util::Rng rng(seed);
  return linalg::Matrix::random_normal(cols, b, rng);
}

EngineConfig coded_config(StrategyKind s) {
  EngineConfig cfg;
  cfg.strategy = s;
  cfg.chunks_per_partition = kChunks;
  cfg.oracle_speeds = true;
  return cfg;
}

TEST(BlockRound, CodedColumnsBitwiseMatchSingleRhsRounds) {
  // Column j of a width-b coded round must be bit-for-bit the y a fresh
  // engine produces for column j alone: the matmat kernels accumulate in
  // matvec order, and the whole decode chain (Schur reduction, LU,
  // Björck–Pereyra) is column-independent. Same traces + same clock =>
  // same allocation and responder sets, so the comparison is exact.
  for (const StrategyKind s :
       {StrategyKind::kS2C2, StrategyKind::kS2C2Basic, StrategyKind::kMds}) {
    test::FunctionalMatVec f(10, 5);
    util::Rng trng(77);
    const ClusterSpec spec = make_spec(
        workload::controlled_cluster_traces(10, 2, 0.2, trng));
    const std::size_t b = 3;
    const linalg::Matrix panel = random_panel(f.a.cols(), b, 101);

    CodedComputeEngine block_engine(f.job, spec, coded_config(s));
    const RoundResult rb = block_engine.run_round_block(panel, b);
    ASSERT_TRUE(rb.y_block.has_value()) << strategy_name(s);
    ASSERT_EQ(rb.y_block->rows(), f.a.rows());
    ASSERT_EQ(rb.y_block->cols(), b);

    for (std::size_t j = 0; j < b; ++j) {
      std::vector<double> xj(f.a.cols());
      for (std::size_t r = 0; r < xj.size(); ++r) xj[r] = panel(r, j);
      CodedComputeEngine single(f.job, spec, coded_config(s));
      const RoundResult r1 = single.run_round(xj);
      ASSERT_TRUE(r1.y.has_value());
      for (std::size_t r = 0; r < f.a.rows(); ++r) {
        EXPECT_EQ((*rb.y_block)(r, j), (*r1.y)[r])
            << strategy_name(s) << " col " << j << " row " << r;
      }
    }
  }
}

TEST(BlockRound, WidthOneBlockRoundBitwiseMatchesClassicRound) {
  // The b = 1 preservation contract: routing a single request through
  // run_round_block must be the classic round bit-for-bit — product,
  // latency, and accounting (this is why the fingerprint goldens
  // survived the refactor).
  test::FunctionalMatVec f(8, 4);
  util::Rng trng(13);
  const ClusterSpec spec = make_spec(
      workload::controlled_cluster_traces(8, 1, 0.2, trng));
  const linalg::Matrix panel(f.x.size(), 1, f.x);

  CodedComputeEngine classic(f.job, spec, coded_config(StrategyKind::kS2C2));
  CodedComputeEngine block(f.job, spec, coded_config(StrategyKind::kS2C2));
  const RoundResult rc = classic.run_round(f.x);
  const RoundResult rb = block.run_round_block(panel, 1);

  ASSERT_TRUE(rc.y.has_value());
  ASSERT_TRUE(rb.y.has_value());
  EXPECT_EQ(*rc.y, *rb.y);
  EXPECT_EQ(rc.stats.end, rb.stats.end);
  EXPECT_EQ(rc.stats.coverage, rb.stats.coverage);
  EXPECT_EQ(classic.accounting().total_useful(),
            block.accounting().total_useful());
  EXPECT_EQ(classic.accounting().total_wasted(),
            block.accounting().total_wasted());
}

TEST(BlockRound, JobCostModelScalesExactlyLinearly) {
  test::FunctionalMatVec f(6, 3);
  const CodedMatVecJob& job = f.job;
  for (const std::size_t b : {1u, 2u, 4u, 7u}) {
    EXPECT_EQ(job.x_bytes(b), b * job.x_bytes());
    EXPECT_EQ(job.chunk_result_bytes(b), b * job.chunk_result_bytes());
    EXPECT_EQ(job.chunk_flops(b), static_cast<double>(b) * job.chunk_flops());
  }
}

TEST(BlockRound, LatencyOnlyBlockRoundChargesWidthScaledDecode) {
  // Cost-only rounds must charge the decode path width-proportional solve
  // flops (solve cost is exactly linear in RHS columns) while the
  // factorization is charged once per responder set regardless of width.
  auto make = [] {
    CodedMatVecJob job = CodedMatVecJob::cost_only(480, 60, 8, 6, kChunks);
    return std::make_unique<CodedComputeEngine>(
        job, make_spec(test::uniform_traces(8)),
        coded_config(StrategyKind::kS2C2));
  };
  auto e1 = make();
  auto e4 = make();
  (void)e1->run_round_block({}, 1);
  (void)e4->run_round_block({}, 4);
  const auto s1 = e1->decode_stats();
  const auto s4 = e4->decode_stats();
  EXPECT_EQ(s4.solve_flops, 4.0 * s1.solve_flops);
  EXPECT_EQ(s4.factor_flops, s1.factor_flops);  // amortized across columns
  EXPECT_GT(s4.solve_flops, 0.0);
}

TEST(BlockRound, BilinearPolyRejectsBlockRounds) {
  EngineParams p;
  p.cluster = ClusterSpec::uniform(12);
  p.rows = 240;
  p.cols = 36;
  p.oracle_speeds = true;
  const auto engine = make_engine(StrategyKind::kPoly, std::move(p));
  EXPECT_FALSE(engine->supports_block_rounds());
  const linalg::Matrix panel = random_panel(36, 2, 5);
  EXPECT_THROW((void)engine->run_round_block(panel, 2), std::logic_error);
  // Width 1 still works: it routes through the classic round.
  const RoundResult r = engine->run_round_block({}, 1);
  EXPECT_GT(r.stats.latency(), 0.0);
}

TEST(BlockRound, RejectsMismatchedPanelWidth) {
  test::FunctionalMatVec f(6, 3);
  CodedComputeEngine engine(f.job, make_spec(test::uniform_traces(6)),
                            coded_config(StrategyKind::kS2C2));
  const linalg::Matrix panel = random_panel(f.a.cols(), 3, 9);
  EXPECT_THROW((void)engine.run_round_block(panel, 2), std::invalid_argument);
  EXPECT_THROW((void)engine.run_round_block(panel, 0), std::invalid_argument);
}

}  // namespace
}  // namespace s2c2::core
