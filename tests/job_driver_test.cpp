// Job-driver tests: end-to-end iterative jobs must be deterministic at any
// thread count, numerically faithful to the uncoded reference trajectory,
// ordered the way the paper's job-level figures are (S2C2 vs baselines),
// and able to ride out failure injection through the §4.3 wave-recovery
// path.
#include <gtest/gtest.h>

#include <cmath>

#include "src/harness/job_driver.h"

namespace s2c2::harness {
namespace {

JobConfig base_config() {
  JobConfig cfg;  // 12 workers, k = 10, 3 stragglers, seed 42
  cfg.max_iterations = 12;
  return cfg;
}

JobConfig job_at(JobApp app, StrategyKind strategy, TraceProfile trace,
                 std::size_t iterations = 12) {
  JobConfig cfg = base_config();
  cfg.app = app;
  cfg.strategy = strategy;
  cfg.trace = trace;
  cfg.max_iterations = iterations;
  return cfg;
}

TEST(JobDriver, RunJobIsPureInItsConfig) {
  const JobConfig cfg = job_at(JobApp::kPageRank, StrategyKind::kS2C2,
                               TraceProfile::kVolatileCloud);
  const JobResult a = run_job(cfg);
  const JobResult b = run_job(cfg);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  ASSERT_EQ(a.convergence.size(), b.convergence.size());
  for (std::size_t i = 0; i < a.convergence.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.convergence[i], b.convergence[i]);
  }
}

TEST(JobDriver, CodedJobsAmortizeDecodeAcrossRounds) {
  // A coded job's responder sets repeat round to round, so the persistent
  // decode cache must report far more hits than factorized sets; uncoded
  // baselines have no decode stage and report zeros.
  const JobResult coded = run_job(job_at(JobApp::kPageRank, StrategyKind::kS2C2,
                                         TraceProfile::kControlledStragglers));
  ASSERT_FALSE(coded.failed);
  EXPECT_GT(coded.rounds, 1u);
  EXPECT_GT(coded.decode_sets, 0u);
  EXPECT_GT(coded.decode_cache_hits, coded.decode_sets);

  const JobResult uncoded =
      run_job(job_at(JobApp::kPageRank, StrategyKind::kReplication,
                     TraceProfile::kControlledStragglers));
  ASSERT_FALSE(uncoded.failed);
  EXPECT_EQ(uncoded.decode_sets, 0u);
  EXPECT_EQ(uncoded.decode_cache_hits, 0u);
}

TEST(JobDriver, SuiteByteIdenticalAtAnyThreadCount) {
  JobGrid grid;
  grid.apps = {JobApp::kLogReg, JobApp::kPageRank};
  grid.strategies = {StrategyKind::kS2C2, StrategyKind::kReplication};
  grid.traces = {TraceProfile::kControlledStragglers,
                 TraceProfile::kVolatileCloud};
  JobConfig cfg = base_config();
  cfg.max_iterations = 6;
  const JobSuiteResult serial = run_job_suite(cfg, grid, 1);
  const JobSuiteResult parallel = run_job_suite(cfg, grid, 4);
  ASSERT_EQ(serial.jobs.size(), 8u);
  ASSERT_EQ(parallel.jobs.size(), serial.jobs.size());
  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
  for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
    EXPECT_EQ(serial.jobs[i].fingerprint(), parallel.jobs[i].fingerprint());
  }
}

TEST(JobDriver, CodedTrajectoryMatchesUncodedReference) {
  // MDS decode is exact up to fp error: the coded iterates must track the
  // direct gradient-descent trajectory to ~decode noise, for every app.
  for (const JobApp app : all_job_apps()) {
    const JobResult job = run_job(
        job_at(app, StrategyKind::kS2C2, TraceProfile::kControlledStragglers));
    ASSERT_FALSE(job.failed) << job_app_name(app);
    EXPECT_GT(job.iterations, 0u) << job_app_name(app);
    EXPECT_LT(job.solution_error, 1e-8) << job_app_name(app);
  }
}

TEST(JobDriver, UncodedBaselinesComputeExactly) {
  // Replication/over-decomposition take the math from a direct multiply,
  // so their trajectories equal the reference bit for bit.
  for (const StrategyKind s :
       {StrategyKind::kReplication, StrategyKind::kOverDecomp}) {
    const JobResult job = run_job(
        job_at(JobApp::kLogReg, s, TraceProfile::kControlledStragglers));
    ASSERT_FALSE(job.failed) << core::strategy_name(s);
    EXPECT_EQ(job.solution_error, 0.0) << core::strategy_name(s);
  }
}

TEST(JobDriver, ConvergenceMetricDecreasesForGradientDescent) {
  const JobResult job =
      run_job(job_at(JobApp::kLogReg, StrategyKind::kS2C2,
                     TraceProfile::kStableCloud, 15));
  ASSERT_FALSE(job.failed);
  ASSERT_GE(job.convergence.size(), 2u);
  EXPECT_LT(job.convergence.back(), job.convergence.front());
}

TEST(JobDriver, FixedPointAppsReachTolerance) {
  for (const JobApp app : {JobApp::kPageRank, JobApp::kGraphFilter}) {
    JobConfig cfg = job_at(app, StrategyKind::kS2C2,
                           TraceProfile::kControlledStragglers, 30);
    cfg.tolerance = 1e-3;
    const JobResult job = run_job(cfg);
    ASSERT_FALSE(job.failed) << job_app_name(app);
    EXPECT_TRUE(job.converged) << job_app_name(app);
    EXPECT_LE(job.final_metric, cfg.tolerance) << job_app_name(app);
  }
}

TEST(JobDriver, S2C2BeatsMdsAndReplicationUnderControlledStragglers) {
  // 3 stragglers > n - k = 2: conventional MDS must wait on a 5x-slow
  // worker every round and replication's copies collide with stragglers —
  // the paper's Figs 6-7 regime, at job granularity.
  for (const JobApp app : all_job_apps()) {
    const TraceProfile t = TraceProfile::kControlledStragglers;
    const JobResult s2c2 = run_job(job_at(app, StrategyKind::kS2C2, t));
    const JobResult mds = run_job(job_at(app, StrategyKind::kMds, t));
    const JobResult repl = run_job(job_at(app, StrategyKind::kReplication, t));
    ASSERT_FALSE(s2c2.failed || mds.failed || repl.failed)
        << job_app_name(app);
    EXPECT_LT(s2c2.completion_time, mds.completion_time) << job_app_name(app);
    EXPECT_LT(s2c2.completion_time, repl.completion_time)
        << job_app_name(app);
    // And S2C2 wastes less of the cluster than either baseline.
    EXPECT_LE(s2c2.mean_wasted_fraction, mds.mean_wasted_fraction)
        << job_app_name(app);
    EXPECT_LE(s2c2.mean_wasted_fraction, repl.mean_wasted_fraction)
        << job_app_name(app);
  }
}

TEST(JobDriver, S2C2JobTimeAtMostMdsUnderVolatileTraces) {
  // Volatile clouds: adaptation pays. With decode amortized by the cache
  // (coding/decode_context.h) it no longer separates the strategies, so
  // what remains is compute/straggler time under realized regime draws —
  // which leaves the GD apps within a whisker of each other (logreg
  // always was; svm joined it when the dense per-round LU cost
  // disappeared), bounded at 5%. The graph apps keep a clear ~15% margin
  // and stay strictly ordered so a genuine S2C2 regression still fails.
  for (const JobApp app : all_job_apps()) {
    const TraceProfile t = TraceProfile::kVolatileCloud;
    const JobResult s2c2 = run_job(job_at(app, StrategyKind::kS2C2, t, 25));
    const JobResult mds = run_job(job_at(app, StrategyKind::kMds, t, 25));
    ASSERT_FALSE(s2c2.failed || mds.failed) << job_app_name(app);
    if (app == JobApp::kLogReg || app == JobApp::kSvm) {
      EXPECT_LE(s2c2.completion_time, 1.05 * mds.completion_time)
          << job_app_name(app);
    } else {
      EXPECT_LE(s2c2.completion_time, mds.completion_time)
          << job_app_name(app);
    }
  }
}

TEST(JobDriver, FailureInjectionJobSurvivesViaWaveRecovery) {
  // Workers die mid-job; the S2C2 timeout + reassignment path must carry
  // the job to completion with the math still exact — and must actually
  // have run (timeouts fired, chunks were reassigned).
  for (const JobApp app : all_job_apps()) {
    const JobResult job = run_job(
        job_at(app, StrategyKind::kS2C2, TraceProfile::kFailureInjection, 25));
    ASSERT_FALSE(job.failed) << job_app_name(app);
    EXPECT_GT(job.iterations, 0u) << job_app_name(app);
    EXPECT_GT(job.timeout_rate, 0.0) << job_app_name(app);
    EXPECT_GT(job.reassigned_chunks, 0u) << job_app_name(app);
    EXPECT_LT(job.solution_error, 1e-8) << job_app_name(app);
  }
}

TEST(JobDriver, MispredictionRateZeroForOracleOnConstantSpeeds) {
  // Controlled traces are piecewise-constant at round granularity, so the
  // oracle's round-start read is exact; under volatile clouds speeds drift
  // mid-round and even the oracle misses sometimes.
  const JobResult controlled =
      run_job(job_at(JobApp::kPageRank, StrategyKind::kS2C2,
                     TraceProfile::kControlledStragglers));
  ASSERT_FALSE(controlled.failed);
  EXPECT_EQ(controlled.misprediction_rate, 0.0);
  const JobResult volatile_job = run_job(job_at(
      JobApp::kPageRank, StrategyKind::kS2C2, TraceProfile::kVolatileCloud,
      25));
  ASSERT_FALSE(volatile_job.failed);
  EXPECT_GT(volatile_job.misprediction_rate, 0.0);
}

TEST(JobDriver, PredictionBlindStrategiesRecordOracle) {
  JobConfig cfg = job_at(JobApp::kLogReg, StrategyKind::kMds,
                         TraceProfile::kStableCloud, 4);
  cfg.predictor = PredictorKind::kLastValue;
  const JobResult mds = run_job(cfg);
  EXPECT_EQ(mds.predictor, PredictorKind::kOracle);
  cfg.strategy = StrategyKind::kS2C2;
  const JobResult s2c2 = run_job(cfg);
  EXPECT_EQ(s2c2.predictor, PredictorKind::kLastValue);
}

TEST(JobDriver, SuiteFindLocatesCells) {
  JobGrid grid;
  grid.apps = {JobApp::kSvm};
  grid.strategies = {StrategyKind::kS2C2, StrategyKind::kMds};
  grid.traces = {TraceProfile::kStableCloud};
  JobConfig cfg = base_config();
  cfg.max_iterations = 3;
  const JobSuiteResult suite = run_job_suite(cfg, grid, 2);
  ASSERT_EQ(suite.jobs.size(), 2u);
  EXPECT_NE(suite.find(JobApp::kSvm, StrategyKind::kMds,
                       TraceProfile::kStableCloud),
            nullptr);
  EXPECT_EQ(suite.find(JobApp::kSvm, StrategyKind::kReplication,
                       TraceProfile::kStableCloud),
            nullptr);
}

TEST(JobDriver, ScenarioMappingKeepsClusterGeometry) {
  JobConfig cfg = base_config();
  cfg.workers = 24;
  cfg.k = 20;
  cfg.stragglers = 5;
  const ScenarioConfig sc = cfg.scenario();
  EXPECT_EQ(sc.workers, 24u);
  EXPECT_EQ(sc.k, 20u);
  EXPECT_EQ(sc.stragglers, 5u);
  EXPECT_TRUE(sc.functional);
  EXPECT_EQ(sc.seed, cfg.seed);
}

TEST(JobDriver, TraceColumnSharedAcrossStrategies) {
  // Same (app, trace) column => same realized cluster for every strategy;
  // the completion-time comparisons above are only meaningful because of
  // this. Indirect check: the per-column salt is strategy-independent.
  EXPECT_EQ(job_trace_column(JobApp::kLogReg),
            WorkloadKind::kLogisticRegression);
  EXPECT_EQ(job_trace_column(JobApp::kSvm), WorkloadKind::kSvm);
  EXPECT_EQ(job_trace_column(JobApp::kPageRank), WorkloadKind::kPageRank);
  EXPECT_EQ(job_trace_column(JobApp::kGraphFilter), WorkloadKind::kHessian);
}

}  // namespace
TEST(JobDriver, RejectsNonDriverStrategyUpFront) {
  // Every StrategyKind is type-legal in JobConfig since the enum
  // unification; kinds outside the driver's axis must fail with the axis
  // error before any engine construction starts.
  harness::JobConfig cfg;
  cfg.strategy = core::StrategyKind::kPoly;
  EXPECT_THROW((void)harness::run_job(cfg), std::invalid_argument);
}

}  // namespace s2c2::harness
