// End-to-end integration: generated cloud traces -> trained LSTM predictor
// -> S2C2 engine -> application, asserting both numerical correctness and
// the paper's qualitative latency claims.
#include <gtest/gtest.h>

#include "src/apps/svm.h"
#include "src/core/engine.h"
#include "src/predict/evaluation.h"
#include "src/predict/lstm.h"
#include "src/util/rng.h"
#include "src/workload/trace_gen.h"

namespace s2c2 {
namespace {

TEST(Integration, LstmPredictorDrivesS2C2EndToEnd) {
  // 1. Generate a cloud environment and train the LSTM on historical data.
  util::Rng rng(2024);
  const auto history = workload::cloud_speed_corpus(
      20, 100, workload::stable_cloud_config(), rng);
  predict::Lstm lstm(1, 4, 7);
  predict::Lstm::TrainConfig train;
  train.epochs = 40;
  lstm.train(history, train);

  // 2. Fresh traces for the live cluster.
  const auto live = workload::cloud_speed_corpus(
      10, 60, workload::stable_cloud_config(), rng);
  core::ClusterSpec spec;
  spec.traces = workload::traces_from_series(live, 0.5);
  spec.worker_flops = 1e7;

  // 3. Run a functional S2C2 job with the LSTM predictor. The operator is
  // large enough that compute dominates communication, so the speeds the
  // master observes (and feeds the LSTM) reflect the actual traces.
  util::Rng drng(5);
  const auto a = linalg::Matrix::random_uniform(2100, 400, drng);
  linalg::Vector x(400);
  for (auto& v : x) v = drng.normal();
  const auto truth = a.matvec(x);

  core::EngineConfig cfg;
  cfg.strategy = core::StrategyKind::kS2C2;
  cfg.chunks_per_partition = 14;
  core::CodedComputeEngine engine(
      core::CodedMatVecJob(a, 10, 7, 14), spec, cfg,
      std::make_unique<predict::LstmPredictor>(10, lstm));

  double latency = 0.0;
  for (int round = 0; round < 20; ++round) {
    const auto r = engine.run_round(x);
    ASSERT_TRUE(r.y.has_value());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      ASSERT_NEAR((*r.y)[i], truth[i], 1e-6) << "round " << round;
    }
    latency += r.stats.latency();
  }
  EXPECT_GT(latency, 0.0);
  // Stable environment: the LSTM should keep timeouts well below always.
  EXPECT_LT(engine.timeout_rate(), 0.5);
}

TEST(Integration, S2C2BeatsMdsOnCloudTracesEndToEnd) {
  util::Rng rng(11);
  const auto series = workload::cloud_speed_corpus(
      10, 80, workload::stable_cloud_config(), rng);
  core::ClusterSpec spec;
  spec.traces = workload::traces_from_series(series, 0.5);
  spec.worker_flops = 1e7;

  auto run = [&](core::StrategyKind s) {
    core::EngineConfig cfg;
    cfg.strategy = s;
    cfg.chunks_per_partition = 14;
    cfg.oracle_speeds = true;
    auto job = core::CodedMatVecJob::cost_only(2100, 400, 10, 7, 14);
    core::CodedComputeEngine engine(job, spec, cfg);
    return core::total_latency(engine.run_rounds(15));
  };
  const double mds = run(core::StrategyKind::kMds);
  const double s2c2 = run(core::StrategyKind::kS2C2);
  // Paper Fig 8: (10,7)-S2C2 beats (10,7)-MDS by ~39% in the stable cloud.
  EXPECT_GT((mds - s2c2) / mds, 0.2);
}

TEST(Integration, SvmTrainsOnVolatileClusterWithRecoveries) {
  util::Rng rng(13);
  const auto series = workload::cloud_speed_corpus(
      8, 120, workload::volatile_cloud_config(), rng);
  core::ClusterSpec spec;
  spec.traces = workload::traces_from_series(series, 0.5);
  spec.worker_flops = 1e7;

  util::Rng drng(14);
  const auto data = workload::make_classification(160, 12, drng, 4.0, 0.5);
  core::EngineConfig cfg;
  cfg.strategy = core::StrategyKind::kS2C2;
  cfg.chunks_per_partition = 8;
  apps::SvmConfig svm;
  svm.iterations = 25;
  svm.k = 5;
  const auto result = apps::train_svm(data, spec, cfg, svm);
  // Correct optimization despite timeouts/reassignments along the way.
  EXPECT_LT(result.objectives.back(), result.objectives.front());
}

}  // namespace
}  // namespace s2c2
