// Tests for S2C2 work allocation (paper Algorithm 1 + production
// proportional allocator). The exact-k coverage invariant is the paper's
// decodability guarantee and is property-swept here.
#include <gtest/gtest.h>

#include <numeric>

#include "src/sched/allocation.h"
#include "src/sched/coverage.h"
#include "src/util/rng.h"

namespace s2c2::sched {
namespace {

TEST(ChunkRange, IndicesWrapAround) {
  const ChunkRange r{4, 3};
  const auto idx = r.indices(5);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 4u);
  EXPECT_EQ(idx[1], 0u);
  EXPECT_EQ(idx[2], 1u);
  EXPECT_TRUE(r.contains(0, 5));
  EXPECT_TRUE(r.contains(4, 5));
  EXPECT_FALSE(r.contains(2, 5));
}

TEST(ChunkRange, EmptyRangeContainsNothing) {
  const ChunkRange r{2, 0};
  EXPECT_FALSE(r.contains(2, 5));
  EXPECT_TRUE(r.indices(5).empty());
}

TEST(Algorithm1, PaperFig5Example) {
  // Paper Fig 5: speeds {2,2,2,2,1}, coverage 4 (=a² of the poly code).
  // C = Σu = 9; allocations {8,8,8,8,4}.
  const std::vector<int> speeds{2, 2, 2, 2, 1};
  const Allocation alloc = algorithm1(speeds, 4);
  EXPECT_EQ(alloc.chunks_per_partition, 9u);
  EXPECT_EQ(alloc.per_worker[0].count, 8u);
  EXPECT_EQ(alloc.per_worker[1].count, 8u);
  EXPECT_EQ(alloc.per_worker[2].count, 8u);
  EXPECT_EQ(alloc.per_worker[3].count, 8u);
  EXPECT_EQ(alloc.per_worker[4].count, 4u);
  EXPECT_TRUE(has_exact_coverage(alloc, 4));
}

TEST(Algorithm1, EqualSpeedsGiveEqualShares) {
  const std::vector<int> speeds{1, 1, 1, 1};
  const Allocation alloc = algorithm1(speeds, 2);
  EXPECT_EQ(alloc.chunks_per_partition, 4u);
  for (const auto& r : alloc.per_worker) EXPECT_EQ(r.count, 2u);
  EXPECT_TRUE(has_exact_coverage(alloc, 2));
}

TEST(Algorithm1, ZeroSpeedWorkerGetsNothing) {
  const std::vector<int> speeds{3, 3, 3, 0};
  const Allocation alloc = algorithm1(speeds, 3);
  EXPECT_EQ(alloc.per_worker[3].count, 0u);
  EXPECT_TRUE(has_exact_coverage(alloc, 3));
}

TEST(Algorithm1, VeryFastWorkerIsCappedAtPartition) {
  // One worker 100x faster: its share is capped at C and the rest spills.
  const std::vector<int> speeds{100, 1, 1, 1};
  const Allocation alloc = algorithm1(speeds, 2);
  const std::size_t c = alloc.chunks_per_partition;
  EXPECT_EQ(alloc.per_worker[0].count, c);
  EXPECT_TRUE(has_exact_coverage(alloc, 2));
}

TEST(Algorithm1, InfeasibleWhenFewerThanKLiveWorkers) {
  const std::vector<int> speeds{5, 0, 0, 0};
  EXPECT_THROW(algorithm1(speeds, 2), std::invalid_argument);
}

TEST(Proportional, MatchesAlgorithm1OnIntegerSpeeds) {
  const std::vector<int> ispeeds{2, 2, 2, 2, 1};
  const std::vector<double> dspeeds{2, 2, 2, 2, 1};
  const Allocation a1 = algorithm1(ispeeds, 4);
  const Allocation a2 = proportional_allocation(dspeeds, 4, 9);
  ASSERT_EQ(a1.per_worker.size(), a2.per_worker.size());
  for (std::size_t w = 0; w < a1.per_worker.size(); ++w) {
    EXPECT_EQ(a1.per_worker[w].count, a2.per_worker[w].count) << "worker " << w;
  }
}

TEST(Proportional, RejectsInsufficientLiveWorkers) {
  const std::vector<double> speeds{1.0, 0.0, 0.0};
  EXPECT_THROW(proportional_allocation(speeds, 2, 8), std::invalid_argument);
}

TEST(Proportional, RejectsNegativeOrNanSpeeds) {
  EXPECT_THROW(
      proportional_allocation(std::vector<double>{1.0, -0.5}, 1, 4),
      std::invalid_argument);
}

TEST(Proportional, ExactlyKLiveWorkersEachTakeFullPartition) {
  const std::vector<double> speeds{1.0, 0.0, 2.0, 0.0, 0.5};
  const Allocation alloc = proportional_allocation(speeds, 3, 6);
  EXPECT_EQ(alloc.per_worker[0].count, 6u);
  EXPECT_EQ(alloc.per_worker[2].count, 6u);
  EXPECT_EQ(alloc.per_worker[4].count, 6u);
  EXPECT_EQ(alloc.per_worker[1].count, 0u);
}

TEST(BasicS2C2, EqualSharesOverNonStragglers) {
  // Paper Fig 4c: (4,2) code, worker 4 (index 3) straggling; everyone else
  // computes 2/3 of its partition.
  const std::vector<bool> straggler{false, false, false, true};
  const Allocation alloc = basic_s2c2_allocation(straggler, 2, 3);
  EXPECT_EQ(alloc.per_worker[0].count, 2u);
  EXPECT_EQ(alloc.per_worker[1].count, 2u);
  EXPECT_EQ(alloc.per_worker[2].count, 2u);
  EXPECT_EQ(alloc.per_worker[3].count, 0u);
  EXPECT_TRUE(has_exact_coverage(alloc, 2));
}

TEST(FullAllocation, EveryWorkerGetsWholePartition) {
  const Allocation alloc = full_allocation(5, 7);
  EXPECT_EQ(alloc.total_chunks(), 35u);
  for (const auto& r : alloc.per_worker) EXPECT_EQ(r.count, 7u);
  EXPECT_TRUE(has_coverage(alloc, 5));
}

TEST(Allocation, ChunksOfMaterializesWrappedRange) {
  const std::vector<double> speeds{1.0, 1.0, 1.0};
  const Allocation alloc = proportional_allocation(speeds, 2, 3);
  // Counts are {2,2,2} laid out consecutively: [0,1], [2,0], [1,2].
  const auto c0 = alloc.chunks_of(0);
  const auto c1 = alloc.chunks_of(1);
  EXPECT_EQ(c0, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(c1, (std::vector<std::size_t>{2, 0}));
  EXPECT_THROW(alloc.chunks_of(9), std::invalid_argument);
}

// ---- property sweep: exact-k coverage under random speeds ----

struct CoverageParam {
  std::size_t n, k, c;
  std::uint64_t seed;
};

class ProportionalCoverage : public ::testing::TestWithParam<CoverageParam> {};

TEST_P(ProportionalCoverage, ExactKCoverageAlwaysHolds) {
  const auto p = GetParam();
  util::Rng rng(p.seed);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> speeds(p.n);
    std::size_t live = 0;
    for (auto& s : speeds) {
      // Heavy-tailed speeds incl. zeros and 100x spreads.
      const double u = rng.uniform();
      s = u < 0.15 ? 0.0 : std::exp(rng.normal(0.0, 1.5));
      if (s > 0.0) ++live;
    }
    if (live < p.k) continue;  // infeasible draw — rejected by REQUIRE
    const Allocation alloc = proportional_allocation(speeds, p.k, p.c);
    EXPECT_TRUE(has_exact_coverage(alloc, p.k))
        << "n=" << p.n << " k=" << p.k << " trial=" << trial;
    EXPECT_EQ(alloc.total_chunks(), p.k * p.c);
    for (std::size_t w = 0; w < p.n; ++w) {
      EXPECT_LE(alloc.per_worker[w].count, p.c);
      if (speeds[w] == 0.0) {
        EXPECT_EQ(alloc.per_worker[w].count, 0u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProportionalCoverage,
    ::testing::Values(CoverageParam{4, 2, 3, 1}, CoverageParam{4, 3, 8, 2},
                      CoverageParam{12, 6, 24, 3}, CoverageParam{12, 10, 24, 4},
                      CoverageParam{10, 7, 16, 5}, CoverageParam{50, 40, 50, 6},
                      CoverageParam{8, 7, 14, 7}, CoverageParam{9, 7, 21, 8}));

class Algorithm1Coverage : public ::testing::TestWithParam<CoverageParam> {};

TEST_P(Algorithm1Coverage, ExactKCoverageAlwaysHolds) {
  const auto p = GetParam();
  util::Rng rng(p.seed + 77);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> speeds(p.n);
    std::size_t live = 0;
    for (auto& s : speeds) {
      s = static_cast<int>(rng.uniform_int(0, 8));
      if (s > 0) ++live;
    }
    if (live < p.k) continue;
    const Allocation alloc = algorithm1(speeds, p.k);
    EXPECT_TRUE(has_exact_coverage(alloc, p.k))
        << "n=" << p.n << " k=" << p.k << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Algorithm1Coverage,
    ::testing::Values(CoverageParam{4, 2, 0, 11}, CoverageParam{12, 6, 0, 12},
                      CoverageParam{12, 10, 0, 13},
                      CoverageParam{10, 7, 0, 14}));

// ---- combinatorial sweep: (workers, stragglers, chunks) ----
//
// Straggler-shaped speed profiles (the paper's controlled cluster: 5x-slow
// nodes, and the harsher dead-node variant) across the full cross product
// of cluster size x straggler count x chunk granularity. The decodability
// guarantee must hold in every cell, for both the production proportional
// allocator and basic S2C2's straggler-exclusion allocation.

class StragglerSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(StragglerSweep, ExactKCoverageUnderStragglerProfiles) {
  const auto [workers, stragglers, chunks] = GetParam();
  ASSERT_GT(workers, stragglers);
  const std::size_t k = std::max<std::size_t>(1, workers - 3);
  util::Rng rng(1000 + workers * 100 + stragglers * 10 + chunks);

  for (const double straggler_speed : {0.2, 0.05, 0.0}) {
    std::vector<double> speeds(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      speeds[w] = w >= workers - stragglers ? straggler_speed
                                            : rng.uniform(0.85, 1.0);
    }
    const std::size_t live = straggler_speed > 0.0 ? workers
                                                   : workers - stragglers;
    ASSERT_GE(live, k);  // sweep stays in the feasible regime

    const Allocation alloc = proportional_allocation(speeds, k, chunks);
    EXPECT_TRUE(has_exact_coverage(alloc, k))
        << "workers=" << workers << " stragglers=" << stragglers
        << " chunks=" << chunks << " speed=" << straggler_speed;
    EXPECT_EQ(alloc.total_chunks(), k * chunks);
    for (std::size_t w = 0; w < workers; ++w) {
      EXPECT_LE(alloc.per_worker[w].count, chunks);
      if (speeds[w] == 0.0) {
        EXPECT_EQ(alloc.per_worker[w].count, 0u);
      }
    }
  }

  // Basic S2C2: flagged stragglers are excluded outright; the equal-share
  // allocation over the rest must still cover exactly k.
  std::vector<bool> flagged(workers, false);
  for (std::size_t w = workers - stragglers; w < workers; ++w) {
    flagged[w] = true;
  }
  const Allocation basic = basic_s2c2_allocation(flagged, k, chunks);
  EXPECT_TRUE(has_exact_coverage(basic, k));
  for (std::size_t w = workers - stragglers; w < workers; ++w) {
    EXPECT_EQ(basic.per_worker[w].count, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StragglerSweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 8, 12, 16, 24),
                       ::testing::Values<std::size_t>(0, 1, 2, 3),
                       ::testing::Values<std::size_t>(8, 24, 48)));

}  // namespace
}  // namespace s2c2::sched
