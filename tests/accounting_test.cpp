// Tests for work/waste accounting (Figs 9, 11 machinery).
#include <gtest/gtest.h>

#include "src/sim/accounting.h"

namespace s2c2::sim {
namespace {

TEST(Accounting, WastedFraction) {
  Accounting acc(2);
  acc.add_useful(0, 3.0);
  acc.add_wasted(0, 1.0);
  EXPECT_DOUBLE_EQ(acc.worker(0).wasted_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(acc.worker(1).wasted_fraction(), 0.0);  // no work at all
}

TEST(Accounting, MeanWastedFraction) {
  Accounting acc(2);
  acc.add_useful(0, 1.0);
  acc.add_wasted(1, 1.0);
  EXPECT_DOUBLE_EQ(acc.mean_wasted_fraction(), 0.5);
}

TEST(Accounting, Totals) {
  Accounting acc(3);
  acc.add_useful(0, 1.0);
  acc.add_useful(1, 2.0);
  acc.add_wasted(2, 0.5);
  EXPECT_DOUBLE_EQ(acc.total_useful(), 3.0);
  EXPECT_DOUBLE_EQ(acc.total_wasted(), 0.5);
}

TEST(Accounting, TrafficAndBusy) {
  Accounting acc(1);
  acc.add_traffic(0, 100.0, 50.0);
  acc.add_traffic(0, 10.0, 5.0);
  acc.add_busy(0, 2.5);
  EXPECT_DOUBLE_EQ(acc.worker(0).bytes_sent, 110.0);
  EXPECT_DOUBLE_EQ(acc.worker(0).bytes_received, 55.0);
  EXPECT_DOUBLE_EQ(acc.worker(0).busy_time, 2.5);
}

TEST(Accounting, BoundsChecked) {
  Accounting acc(1);
  EXPECT_THROW(acc.add_useful(1, 1.0), std::invalid_argument);
  EXPECT_THROW(acc.add_wasted(0, -1.0), std::invalid_argument);
  EXPECT_THROW((void)acc.worker(5), std::invalid_argument);
}

TEST(RoundStats, Latency) {
  RoundStats s;
  s.start = 2.0;
  s.end = 5.5;
  EXPECT_DOUBLE_EQ(s.latency(), 3.5);
}

}  // namespace
}  // namespace s2c2::sim
