// Tests for work/waste accounting (Figs 9, 11 machinery).
#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/sim/accounting.h"
#include "tests/test_util.h"

namespace s2c2::sim {
namespace {

TEST(Accounting, WastedFraction) {
  Accounting acc(2);
  acc.add_useful(0, 3.0);
  acc.add_wasted(0, 1.0);
  EXPECT_DOUBLE_EQ(acc.worker(0).wasted_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(acc.worker(1).wasted_fraction(), 0.0);  // no work at all
}

TEST(Accounting, MeanWastedFraction) {
  Accounting acc(2);
  acc.add_useful(0, 1.0);
  acc.add_wasted(1, 1.0);
  EXPECT_DOUBLE_EQ(acc.mean_wasted_fraction(), 0.5);
}

TEST(Accounting, Totals) {
  Accounting acc(3);
  acc.add_useful(0, 1.0);
  acc.add_useful(1, 2.0);
  acc.add_wasted(2, 0.5);
  EXPECT_DOUBLE_EQ(acc.total_useful(), 3.0);
  EXPECT_DOUBLE_EQ(acc.total_wasted(), 0.5);
}

TEST(Accounting, TrafficAndBusy) {
  Accounting acc(1);
  acc.add_traffic(0, 100.0, 50.0);
  acc.add_traffic(0, 10.0, 5.0);
  acc.add_busy(0, 2.5);
  EXPECT_DOUBLE_EQ(acc.worker(0).bytes_sent, 110.0);
  EXPECT_DOUBLE_EQ(acc.worker(0).bytes_received, 55.0);
  EXPECT_DOUBLE_EQ(acc.worker(0).busy_time, 2.5);
}

TEST(Accounting, BoundsChecked) {
  Accounting acc(1);
  EXPECT_THROW(acc.add_useful(1, 1.0), std::invalid_argument);
  EXPECT_THROW(acc.add_wasted(0, -1.0), std::invalid_argument);
  EXPECT_THROW((void)acc.worker(5), std::invalid_argument);
}

TEST(Accounting, BusyTimeCoversReassignedWork) {
  // Regression: the engine credited a used worker's busy time only for its
  // original compute window; compute for reassigned extra chunks was added
  // to useful work but never to busy, so utilization was under-reported in
  // exactly the rounds where the timeout fired. On unit-speed traces, work
  // is measured in unit-speed seconds, so every worker must satisfy
  // busy_time >= useful_work (equality for always-busy unit-speed workers).
  using core::CodedComputeEngine;
  using core::EngineConfig;
  using core::RoundResult;
  using core::StrategyKind;

  test::FunctionalMatVec f(12, 6);
  EngineConfig cfg;
  cfg.strategy = StrategyKind::kS2C2;
  cfg.chunks_per_partition = test::kChunks;
  CodedComputeEngine engine(
      f.job, test::make_spec(test::dying_traces(12, 1)), cfg);
  const RoundResult r = engine.run_round(f.x);
  ASSERT_TRUE(r.stats.timeout_fired);
  ASSERT_GT(r.stats.reassigned_chunks, 0u);
  for (std::size_t w = 0; w < 11; ++w) {  // live workers ran at speed 1.0
    const WorkerAccount& acct = engine.accounting().worker(w);
    ASSERT_GT(acct.useful_work, 0.0) << w;
    EXPECT_GE(acct.busy_time, acct.useful_work - 1e-12)
        << "worker " << w << " booked more useful work than busy time";
  }
}

TEST(RoundStats, Latency) {
  RoundStats s;
  s.start = 2.0;
  s.end = 5.5;
  EXPECT_DOUBLE_EQ(s.latency(), 3.5);
}

}  // namespace
}  // namespace s2c2::sim
