// Unit tests for CSR sparse matrices.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/linalg/sparse.h"
#include "src/util/rng.h"

namespace s2c2::linalg {
namespace {

CsrMatrix small() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  return CsrMatrix(3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {2, 0, 3.0}, {2, 1, 4.0}});
}

TEST(Csr, BuildAndNnz) {
  const CsrMatrix m = small();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 4u);
}

TEST(Csr, DuplicateTripletsSum) {
  const CsrMatrix m(1, 1, {{0, 0, 1.5}, {0, 0, 2.5}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.to_dense()(0, 0), 4.0);
}

TEST(Csr, DuplicatesCancellingToZeroAreDropped) {
  const CsrMatrix m(1, 2, {{0, 0, 1.0}, {0, 0, -1.0}, {0, 1, 2.0}});
  EXPECT_EQ(m.nnz(), 1u);
}

TEST(Csr, OutOfBoundsTripletThrows) {
  EXPECT_THROW(CsrMatrix(1, 1, {{1, 0, 1.0}}), std::invalid_argument);
}

TEST(Csr, MatvecMatchesDense) {
  const CsrMatrix m = small();
  const Vector x{1.0, 2.0, 3.0};
  const Vector y = m.matvec(x);
  const Vector yd = m.to_dense().matvec(x);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_DOUBLE_EQ(y[i], yd[i]);
}

TEST(Csr, RowBlockKeepsValues) {
  const CsrMatrix m = small();
  const CsrMatrix b = m.row_block(1, 3);
  EXPECT_EQ(b.rows(), 2u);
  const Matrix d = b.to_dense();
  EXPECT_DOUBLE_EQ(d(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
}

TEST(Csr, TransposeMatchesDenseTranspose) {
  const CsrMatrix m = small();
  const Matrix t = m.transposed().to_dense();
  const Matrix td = m.to_dense().transposed();
  EXPECT_LT(t.max_abs_diff(td), 1e-15);
}

TEST(Csr, EmptyMatrixMatvec) {
  const CsrMatrix m(2, 2, {});
  const Vector y = m.matvec(std::vector<double>{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

// Property sweep: random sparse matvec equals densified matvec.
class CsrRandom : public ::testing::TestWithParam<int> {};

TEST_P(CsrRandom, MatvecAgreesWithDense) {
  const int n = GetParam();
  util::Rng rng(2000 + n);
  std::vector<Triplet> trips;
  for (int i = 0; i < n * 3; ++i) {
    trips.push_back({static_cast<std::size_t>(rng.uniform_int(0, n - 1)),
                     static_cast<std::size_t>(rng.uniform_int(0, n - 1)),
                     rng.normal()});
  }
  const CsrMatrix m(n, n, trips);
  Vector x(n);
  for (auto& v : x) v = rng.normal();
  const Vector a = m.matvec(x);
  const Vector b = m.to_dense().matvec(x);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(a[i], b[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CsrRandom, ::testing::Values(2, 5, 17, 50));

}  // namespace
}  // namespace s2c2::linalg
