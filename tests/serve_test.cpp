// Tests for the coalesced serving harness (src/harness/serve.h): open-loop
// determinism at any thread count, coalescing behavior, deadline admission,
// functional correctness of batched products, and the decode-amortization
// property the serving layer exists to exploit.
#include <gtest/gtest.h>

#include <vector>

#include "src/harness/serve.h"

namespace s2c2::harness {
namespace {

ServeConfig small_config() {
  ServeConfig c;
  c.strategy = StrategyKind::kS2C2;
  c.trace = TraceProfile::kStableCloud;
  c.workers = 8;
  c.requests = 24;
  c.tenants = 3;
  c.load_factor = 6.0;  // queues build -> coalescing happens
  c.max_batch = 4;
  c.functional = true;
  c.seed = 11;
  return c;
}

TEST(Serve, FingerprintIdenticalAcrossRepeatRuns) {
  const ServeConfig c = small_config();
  const ServeResult a = run_serve(c);
  const ServeResult b = run_serve(c);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(Serve, SweepDeterministicAtAnyThreadCount) {
  // The --jobs contract: sharding serve cells across threads must not
  // change a single outcome bit. Cells differ in strategy and trace so
  // the schedule actually interleaves distinct work.
  std::vector<ServeConfig> cells;
  for (const StrategyKind s :
       {StrategyKind::kS2C2, StrategyKind::kMds, StrategyKind::kReplication}) {
    ServeConfig c = small_config();
    c.strategy = s;
    cells.push_back(c);
    c.trace = TraceProfile::kVolatileCloud;
    c.seed = 29;
    cells.push_back(c);
  }
  const std::vector<ServeResult> serial = run_serve_sweep(cells, 1);
  const std::vector<ServeResult> threaded = run_serve_sweep(cells, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].fingerprint(), threaded[i].fingerprint()) << i;
  }
}

TEST(Serve, CoalescingBatchesConcurrentRequests) {
  ServeConfig c = small_config();
  c.load_factor = 12.0;  // ~12 arrivals per round-duration, cap 4
  const ServeResult r = run_serve(c);
  EXPECT_EQ(r.completed, c.requests);
  EXPECT_LT(r.rounds, c.requests);  // strictly fewer rounds than requests
  std::size_t max_width = 0;
  for (const RequestOutcome& o : r.outcomes) {
    max_width = std::max(max_width, o.width);
    EXPECT_LE(o.width, c.max_batch);
    EXPECT_GE(o.dispatch, o.arrival);
    EXPECT_GT(o.completion, o.dispatch);
  }
  EXPECT_GT(max_width, 1u);
}

TEST(Serve, MaxBatchOneServesOneRoundPerRequest) {
  ServeConfig c = small_config();
  c.max_batch = 1;
  const ServeResult r = run_serve(c);
  EXPECT_EQ(r.completed, c.requests);
  EXPECT_EQ(r.rounds, c.requests);
  for (const RequestOutcome& o : r.outcomes) EXPECT_EQ(o.width, 1u);
}

TEST(Serve, BatchedProductsMatchDirectMatvec) {
  // Every served column — batched or solo — must equal the direct
  // product of that request's own vector (tenant isolation: coalescing
  // shares the round, never the answers).
  ServeConfig c = small_config();
  c.load_factor = 8.0;
  const ServeResult r = run_serve(c);
  EXPECT_EQ(r.products_verified, r.completed);
  EXPECT_LT(r.max_error, 1e-7);
}

TEST(Serve, UncodedBaselineForwardsExactProducts) {
  // The replication baseline forwards the exact block product through the
  // DirectMultiply matmat closure — bitwise, not approximately.
  ServeConfig c = small_config();
  c.strategy = StrategyKind::kReplication;
  const ServeResult r = run_serve(c);
  EXPECT_EQ(r.completed, c.requests);
  EXPECT_EQ(r.products_verified, r.completed);
  EXPECT_EQ(r.max_error, 0.0);
}

TEST(Serve, DeadlineRejectsStaleRequests) {
  ServeConfig c = small_config();
  c.load_factor = 40.0;  // far past saturation: queues outrun the server
  c.max_batch = 2;
  c.deadline = 1e-6;     // essentially "must dispatch on arrival"
  const ServeResult r = run_serve(c);
  EXPECT_GT(r.rejected, 0u);
  EXPECT_EQ(r.completed + r.rejected, c.requests);
  for (const RequestOutcome& o : r.outcomes) {
    if (o.rejected) {
      EXPECT_EQ(o.width, 0u);
      EXPECT_EQ(o.completion, o.dispatch);  // dropped, never served
    }
  }
}

TEST(Serve, StrategyWithoutBlockRoundsDegradesToWidthOne) {
  // The bilinear poly family cannot run b > 1 rounds; the server degrades
  // to width-1 dispatches instead of failing.
  ServeConfig c = small_config();
  c.strategy = StrategyKind::kPoly;
  c.workers = 12;  // poly needs n >= a² = 9
  c.functional = false;  // poly's functional product is a Hessian, not A·x
  c.op_rows = 240;
  c.op_cols = 36;  // divisible by the a = 3 block split
  const ServeResult r = run_serve(c);
  EXPECT_EQ(r.completed, c.requests);
  EXPECT_EQ(r.rounds, c.requests);
  for (const RequestOutcome& o : r.outcomes) EXPECT_EQ(o.width, 1u);
}

TEST(Serve, CoalescedRoundsHitDecodeCache) {
  // Iterative serving repeats responder sets: the engine's DecodeContext
  // must serve later rounds from cache (this is the telemetry the bench
  // bars on).
  ServeConfig c = small_config();
  c.trace = TraceProfile::kStableCloud;
  c.requests = 32;
  const ServeResult r = run_serve(c);
  EXPECT_GT(r.decode.hits + r.decode.misses, 0u);
  EXPECT_GT(r.decode.hits, 0u);
}

TEST(Serve, BatchingAmortizesDecodeCostPerRequest) {
  // The tentpole's economic claim, at test scale: the same request stream
  // served with coalescing charges fewer decode flops per request than
  // width-1 serving, because each cached factorization is shared by all b
  // columns of a batch (and each arrival-window's responder set is
  // factorized once instead of once per request). Geometry chosen so the
  // factorization is the dominant term: one row per partition (solve cost
  // per column stays tiny) and k well below n (deep parity subsets, so
  // the Schur factor is O(p³) with large p).
  ServeConfig batched = small_config();
  batched.trace = TraceProfile::kVolatileCloud;  // responder sets churn
  batched.workers = 24;
  batched.k = 8;
  batched.chunks_per_partition = 1;
  batched.op_rows = 8;
  batched.op_cols = 24;
  batched.requests = 48;
  batched.load_factor = 8.0;
  batched.max_batch = 8;
  ServeConfig single = batched;
  single.max_batch = 1;
  single.arrival_rate = run_serve(batched).realized_rate;  // same stream
  batched.arrival_rate = single.arrival_rate;

  const ServeResult rb = run_serve(batched);
  const ServeResult rs = run_serve(single);
  ASSERT_GT(rb.completed, 0u);
  ASSERT_GT(rs.completed, 0u);
  // Coalescing factorizes each arrival window's responder set once
  // instead of once per request...
  EXPECT_LT(rb.decode.factor_flops, rs.decode.factor_flops);
  // ...so the per-request total decode bill is strictly smaller.
  const double per_req_batched =
      (rb.decode.factor_flops + rb.decode.solve_flops) /
      static_cast<double>(rb.completed);
  const double per_req_single =
      (rs.decode.factor_flops + rs.decode.solve_flops) /
      static_cast<double>(rs.completed);
  EXPECT_LT(per_req_batched, per_req_single);
}

}  // namespace
}  // namespace s2c2::harness
