// Thousand-worker fleet tests: the scenario matrix's large-scale axis
// (matrix_runner.h, MatrixAxes::large_scale) must complete and stay
// byte-identical at any thread count now that decode is cached and
// Schur-reduced (coding/decode_context.h, docs/PERFORMANCE.md). These
// cells run cost-only: the latency model exercises the same decode-charge
// path the functional decode uses, at fleet sizes where running real
// kernels would be pointless.
#include <gtest/gtest.h>

#include "src/harness/matrix_runner.h"

namespace s2c2::harness {
namespace {

ScenarioConfig base_config() {
  ScenarioConfig cfg;
  cfg.workers = 12;
  cfg.stragglers = 2;
  cfg.rounds = 3;
  cfg.seed = 42;
  return cfg;
}

TEST(LargeScale, ThousandWorkerCellIsByteIdenticalAtAnyJobs) {
  // The acceptance-criteria cell: n = 1000 (k rescales to 998 via the
  // n - 2 default rule), S2C2 on a stable cloud, serial vs 4 threads.
  MatrixAxes axes;
  axes.engines = {StrategyKind::kS2C2};
  axes.workloads = {WorkloadKind::kLogisticRegression};
  axes.traces = {TraceProfile::kStableCloud};
  axes.cluster_sizes = {1000};

  const MatrixResult serial = run_matrix(base_config(), axes, {.jobs = 1});
  const MatrixResult sharded = run_matrix(base_config(), axes, {.jobs = 4});
  ASSERT_EQ(serial.cells.size(), 1u);
  ASSERT_EQ(sharded.cells.size(), 1u);

  const CellResult& cell = serial.cells[0];
  ASSERT_FALSE(cell.failed) << cell.error;
  EXPECT_EQ(cell.workers, 1000u);
  EXPECT_EQ(cell.rounds, 3u);
  for (const double l : cell.round_latencies) EXPECT_GT(l, 0.0);
  EXPECT_EQ(serial.fingerprint(), sharded.fingerprint());
  EXPECT_EQ(cell.fingerprint(), sharded.cells[0].fingerprint());
}

TEST(LargeScale, CellConfigRescalesRedundancyAndStragglers) {
  ScenarioConfig base = base_config();
  const ScenarioConfig big =
      cell_config(base, 1000, PredictorKind::kOracle);
  EXPECT_EQ(big.workers, 1000u);
  EXPECT_EQ(big.effective_k(), 998u);  // k = 0 keeps the n - 2 rule
  EXPECT_EQ(big.stragglers, 166u);     // 2/12 of the fleet

  base.k = 9;  // explicit k keeps its redundancy ratio
  const ScenarioConfig ratio =
      cell_config(base, 1000, PredictorKind::kOracle);
  EXPECT_EQ(ratio.k, 750u);
}

TEST(LargeScale, LargeScaleAxesSweepEveryEngineAtMidScale) {
  // One n = 250 slice of the large-scale preset across all four engines:
  // every cell completes (or records a deterministic failure — none is
  // expected on these profiles) with positive latencies.
  MatrixAxes axes = MatrixAxes::large_scale();
  axes.cluster_sizes = {250};
  axes.workloads = {WorkloadKind::kLogisticRegression};
  axes.traces = {TraceProfile::kControlledStragglers};

  const MatrixResult m = run_matrix(base_config(), axes, {.jobs = 0});
  ASSERT_EQ(m.cells.size(), all_engines().size());
  for (const CellResult& cell : m.cells) {
    ASSERT_FALSE(cell.failed)
        << core::strategy_name(cell.engine) << ": " << cell.error;
    EXPECT_EQ(cell.workers, 250u);
    EXPECT_GT(cell.mean_latency, 0.0) << core::strategy_name(cell.engine);
  }
}

}  // namespace
}  // namespace s2c2::harness
