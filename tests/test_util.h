// Shared fixtures for the test suites: seeded RNG factories, cluster-spec
// and trace builders, small functional jobs with known ground truth, and
// tolerance helpers. Every suite that spins up an engine used to re-declare
// these ad hoc; keep additions here so setup stays consistent.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/coding/poly_code.h"
#include "src/core/coded_job.h"
#include "src/core/strategy_config.h"
#include "src/linalg/matrix.h"
#include "src/sim/speed_trace.h"
#include "src/util/rng.h"

namespace s2c2::test {

/// Default chunk granularity: fine enough that integer rounding of a
/// straggler's quota stays well under the 15% timeout margin (the same
/// reason the paper's Algorithm 1 over-decomposes with C = Σu_i).
inline constexpr std::size_t kChunks = 24;

/// Cluster spec over explicit traces, calibrated so compute dominates
/// communication at test-sized operators (worker_flops = 1e7).
inline core::ClusterSpec make_spec(std::vector<sim::SpeedTrace> traces,
                                   double worker_flops = 1e7) {
  core::ClusterSpec spec;
  spec.traces = std::move(traces);
  spec.worker_flops = worker_flops;
  spec.master_flops = 1e9;
  return spec;
}

/// n constant-speed traces (speed 1.0 unless overridden).
inline std::vector<sim::SpeedTrace> uniform_traces(std::size_t n,
                                                   double speed = 1.0) {
  return std::vector<sim::SpeedTrace>(n, sim::SpeedTrace::constant(speed));
}

/// n traces where the last `dead` workers die at `t_death` (speed -> 0).
inline std::vector<sim::SpeedTrace> dying_traces(std::size_t n,
                                                 std::size_t dead,
                                                 sim::Time t_death = 1e-4) {
  auto traces = uniform_traces(n);
  for (std::size_t w = n - dead; w < n; ++w) {
    traces[w] = sim::SpeedTrace::step(t_death, 1.0, 0.0);
  }
  return traces;
}

/// Small functional coded mat-vec job with ground truth: a seeded random
/// 240 x 30 operator encoded as an (n, k) MDS code.
struct FunctionalMatVec {
  FunctionalMatVec(std::size_t n, std::size_t k, std::uint64_t seed = 7,
                   std::size_t chunks = kChunks)
      : rng(seed),
        a(linalg::Matrix::random_uniform(240, 30, rng)),
        job(a, n, k, chunks) {
    x.resize(30);
    for (auto& v : x) v = rng.normal();
    truth = a.matvec(x);
  }

  util::Rng rng;
  linalg::Matrix a;
  core::CodedMatVecJob job;
  linalg::Vector x;
  linalg::Vector truth;
};

/// Small functional polynomial-coded Hessian setup with ground truth.
struct FunctionalHessian {
  explicit FunctionalHessian(std::uint64_t seed = 3)
      : rng(seed), a(linalg::Matrix::random_uniform(40, 24, rng)) {
    x.resize(40);
    for (auto& v : x) v = rng.uniform(0.1, 1.0);
    truth = coding::PolyCode::hessian_direct(a, x);
  }

  util::Rng rng;
  linalg::Matrix a;
  linalg::Vector x;
  linalg::Matrix truth;
};

/// Element-wise closeness of two vectors (absolute tolerance).
inline void expect_close(const linalg::Vector& got,
                         const linalg::Vector& want, double tol = 1e-6) {
  ASSERT_EQ(got.size(), want.size());
  double max_err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    max_err = std::max(max_err, std::abs(got[i] - want[i]));
  }
  EXPECT_LT(max_err, tol);
}

/// Matrix closeness relative to the target's Frobenius norm.
inline void expect_matrix_close(const linalg::Matrix& got,
                                const linalg::Matrix& want,
                                double rel_tol = 1e-6) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  const double scale = want.frobenius_norm() + 1.0;
  EXPECT_LT(got.max_abs_diff(want) / scale, rel_tol);
}

}  // namespace s2c2::test
