// Tests for the coded-compute engine: functional correctness under every
// strategy, timeout/failure recovery, waste accounting, and the latency
// orderings the paper's figures rest on.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/engine.h"
#include "src/util/rng.h"
#include "src/workload/trace_gen.h"
#include "tests/test_util.h"

namespace s2c2::core {
namespace {

using test::expect_close;
using test::kChunks;
using test::make_spec;

using FunctionalSetup = test::FunctionalMatVec;

TEST(Engine, RejectsMismatchedClusterSize) {
  FunctionalSetup f(4, 2);
  EngineConfig cfg;
  cfg.chunks_per_partition = kChunks;
  EXPECT_THROW(CodedComputeEngine(f.job, ClusterSpec::uniform(3), cfg),
               std::invalid_argument);
}

TEST(Engine, RejectsGranularityMismatch) {
  FunctionalSetup f(4, 2);
  EngineConfig cfg;
  cfg.chunks_per_partition = kChunks + 1;
  EXPECT_THROW(CodedComputeEngine(f.job, ClusterSpec::uniform(4), cfg),
               std::invalid_argument);
}

struct StrategyParam {
  StrategyKind strategy;
  std::size_t stragglers;
};

class FunctionalDecode : public ::testing::TestWithParam<StrategyParam> {};

TEST_P(FunctionalDecode, MatchesDirectProduct) {
  const auto p = GetParam();
  FunctionalSetup f(12, 6);
  util::Rng trng(123);
  ClusterSpec spec = make_spec(
      workload::controlled_cluster_traces(12, p.stragglers, 0.2, trng));
  EngineConfig cfg;
  cfg.strategy = p.strategy;
  cfg.chunks_per_partition = kChunks;
  cfg.oracle_speeds = true;
  CodedComputeEngine engine(f.job, spec, cfg);
  for (int round = 0; round < 3; ++round) {
    const RoundResult r = engine.run_round(f.x);
    ASSERT_TRUE(r.y.has_value());
    expect_close(*r.y, f.truth);
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndStragglers, FunctionalDecode,
    ::testing::Values(StrategyParam{StrategyKind::kMds, 0},
                      StrategyParam{StrategyKind::kMds, 3},
                      StrategyParam{StrategyKind::kS2C2Basic, 0},
                      StrategyParam{StrategyKind::kS2C2Basic, 2},
                      StrategyParam{StrategyKind::kS2C2Basic, 5},
                      StrategyParam{StrategyKind::kS2C2, 0},
                      StrategyParam{StrategyKind::kS2C2, 3},
                      StrategyParam{StrategyKind::kS2C2, 6}));

TEST(Engine, S2C2FasterThanMdsWithoutStragglers) {
  // The paper's headline: with zero stragglers, conventional (n,k)-MDS
  // still pays the 1/k-per-worker cost while S2C2 spreads 1/n.
  util::Rng trng(5);
  const auto traces = workload::controlled_cluster_traces(12, 0, 0.0, trng);

  auto run = [&](StrategyKind s) {
    EngineConfig cfg;
    cfg.strategy = s;
    cfg.chunks_per_partition = kChunks;
    cfg.oracle_speeds = true;
    CodedMatVecJob job = CodedMatVecJob::cost_only(2400, 500, 12, 6, kChunks);
    CodedComputeEngine engine(job, make_spec(traces), cfg);
    return total_latency(engine.run_rounds(5));
  };
  const double mds = run(StrategyKind::kMds);
  const double s2c2 = run(StrategyKind::kS2C2);
  // Ideal ratio 12/6 = 2; comm/decode overheads shave it.
  EXPECT_GT(mds / s2c2, 1.5);
}

TEST(Engine, S2C2DegradesGracefullyWithStragglers) {
  EngineConfig cfg;
  cfg.strategy = StrategyKind::kS2C2;
  cfg.chunks_per_partition = kChunks;
  cfg.oracle_speeds = true;
  double prev = 0.0;
  for (std::size_t s : {0u, 2u, 4u, 6u}) {
    util::Rng trng(6);
    CodedMatVecJob job = CodedMatVecJob::cost_only(2400, 500, 12, 6, kChunks);
    CodedComputeEngine engine(
        job,
        make_spec(workload::controlled_cluster_traces(12, s, 0.0, trng)),
        cfg);
    const double lat = total_latency(engine.run_rounds(3));
    EXPECT_GT(lat, prev);  // monotone in straggler count...
    prev = lat;
  }
  // ...but bounded: with 6 stragglers of a (12,6) code the slowdown is at
  // most ~2x the no-straggler case plus straggler capacity reuse.
}

TEST(Engine, MdsLatencyFlatUpToRedundancyThenExplodes) {
  EngineConfig cfg;
  cfg.strategy = StrategyKind::kMds;
  cfg.chunks_per_partition = kChunks;
  cfg.oracle_speeds = true;
  auto lat_with = [&](std::size_t stragglers) {
    util::Rng trng(7);
    CodedMatVecJob job = CodedMatVecJob::cost_only(2400, 500, 12, 10, kChunks);
    CodedComputeEngine engine(
        job,
        make_spec(
            workload::controlled_cluster_traces(12, stragglers, 0.0, trng)),
        cfg);
    return total_latency(engine.run_rounds(2));
  };
  const double l0 = lat_with(0);
  const double l2 = lat_with(2);
  const double l3 = lat_with(3);
  EXPECT_LT(l2 / l0, 1.3);   // within redundancy: flat
  EXPECT_GT(l3 / l0, 2.5);   // beyond redundancy: waits on a 5x straggler
}

TEST(Engine, MdsWastesStragglersWorkS2C2DoesNot) {
  util::Rng trng(8);
  const auto traces = workload::controlled_cluster_traces(12, 2, 0.2, trng);
  auto waste = [&](StrategyKind s) {
    EngineConfig cfg;
    cfg.strategy = s;
    cfg.chunks_per_partition = kChunks;
    cfg.oracle_speeds = true;
    CodedMatVecJob job = CodedMatVecJob::cost_only(2400, 500, 12, 10, kChunks);
    CodedComputeEngine engine(job, make_spec(traces), cfg);
    engine.run_rounds(5);
    return engine.accounting().mean_wasted_fraction();
  };
  EXPECT_GT(waste(StrategyKind::kMds), 0.05);
  EXPECT_NEAR(waste(StrategyKind::kS2C2), 0.0, 1e-9);
}

TEST(Engine, TimeoutWindowCollectsTiesAtExtendedDeadline) {
  // Regression: with a timeout factor < 1 and identical worker speeds,
  // fewer than k responses beat the initial deadline, so the engine extends
  // it to the k-th fastest response — and every response is *tied* at that
  // extended deadline. The pre-fix collection never re-scanned after the
  // extension: the ties stayed cancelled, their finished work was booked as
  // waste, and timeout_fired reported true spuriously.
  FunctionalSetup f(6, 3);
  EngineConfig cfg;
  cfg.strategy = StrategyKind::kS2C2;
  cfg.chunks_per_partition = kChunks;
  cfg.oracle_speeds = true;
  cfg.timeout_factor = 0.9;
  CodedComputeEngine engine(f.job, make_spec(test::uniform_traces(6)), cfg);
  const RoundResult r = engine.run_round(f.x);
  EXPECT_FALSE(r.stats.timeout_fired);
  EXPECT_EQ(r.stats.reassigned_chunks, 0u);
  EXPECT_DOUBLE_EQ(engine.accounting().total_wasted(), 0.0);
  for (std::size_t w = 0; w < 6; ++w) {
    EXPECT_GT(engine.accounting().worker(w).useful_work, 0.0) << w;
  }
  ASSERT_TRUE(r.y.has_value());
  expect_close(*r.y, f.truth);
}

TEST(Engine, IdleWorkerProbeReflectsPreDecodeWindow) {
  // Regression: idle workers used to be probed at stats.end (post-decode)
  // while every busy worker's observation reflects the pre-decode window.
  // A speed step between coverage and decode-end flipped the straggler
  // flag for the next round.
  FunctionalSetup ref(12, 6);
  EngineConfig cfg;
  cfg.strategy = StrategyKind::kS2C2Basic;
  cfg.chunks_per_partition = kChunks;

  // Reference run (worker 11 idle via a pre-fed slow observation) to learn
  // the round's coverage/end times; worker 11's trace does not affect them.
  auto make_predictor = [] {
    auto p = std::make_unique<predict::LastValuePredictor>(12);
    for (std::size_t w = 0; w < 11; ++w) p->observe(w, 1.0);
    p->observe(11, 0.01);  // flagged straggler => idle in round 1
    return p;
  };
  CodedComputeEngine probe_engine(ref.job, make_spec(test::uniform_traces(12)),
                                  cfg, make_predictor());
  const RoundResult probe = probe_engine.run_round(ref.x);
  ASSERT_LT(probe.stats.coverage, probe.stats.end);  // decode takes time

  // Real run: worker 11's speed collapses after coverage but before decode
  // finishes. The master's probe must see the pre-decode speed (1.0).
  const sim::Time t_step = 0.5 * (probe.stats.coverage + probe.stats.end);
  auto traces = test::uniform_traces(12);
  traces[11] = sim::SpeedTrace::step(t_step, 1.0, 1e-3);
  FunctionalSetup f(12, 6);
  CodedComputeEngine engine(f.job, make_spec(std::move(traces)), cfg,
                            make_predictor());
  const RoundResult r1 = engine.run_round(f.x);
  EXPECT_DOUBLE_EQ(r1.observed_speeds[11], 1.0);
  // With the probe corrected, round 2 un-flags worker 11 and assigns it
  // work (it then crawls at 1e-3 and is cancelled, so its round-2 progress
  // shows up as waste); the skewed probe (1e-3) would have kept it idle.
  const RoundResult r2 = engine.run_round(f.x);
  EXPECT_DOUBLE_EQ(r2.predicted_speeds[11], 1.0);
  EXPECT_GT(engine.accounting().worker(11).wasted_work, 0.0);
}

TEST(Engine, TimeoutRecoversFromSuddenDeath) {
  // Worker 11 dies mid-run; predictions (last-value) won't see it coming,
  // so the timeout must fire, reassign, and still decode correctly.
  FunctionalSetup f(12, 6);
  EngineConfig cfg;
  cfg.strategy = StrategyKind::kS2C2;
  cfg.chunks_per_partition = kChunks;
  CodedComputeEngine engine(f.job, make_spec(test::dying_traces(12, 1)), cfg);
  const RoundResult r = engine.run_round(f.x);
  EXPECT_TRUE(r.stats.timeout_fired);
  EXPECT_GT(r.stats.reassigned_chunks, 0u);
  ASSERT_TRUE(r.y.has_value());
  expect_close(*r.y, f.truth);
}

TEST(Engine, SurvivesRecoveryWorkerDyingMidReassignment) {
  // Cascading failure: worker 3 dies mid-round, its chunks are reassigned,
  // and worker 2 — one of the recovery workers — dies mid-reassignment.
  // The engine must detect the second death, re-plan onto the survivors,
  // and still decode (the single-shot recovery used to throw here).
  const std::size_t n = 4, k = 2;

  // Reference run with only worker 3 dying, to learn when recovery ends;
  // the recovery window is (deadline, coverage], so a death just before
  // coverage lands mid-reassignment.
  FunctionalSetup ref(n, k);
  EngineConfig cfg;
  cfg.strategy = StrategyKind::kS2C2;
  cfg.chunks_per_partition = kChunks;
  cfg.oracle_speeds = true;
  // Slow fleet (1e6 flops): compute dominates transfer, so a death at 90%
  // of the reference coverage time lands inside the recovery compute
  // window rather than in the trailing result transfer.
  const double flops = 1e6;
  CodedComputeEngine ref_engine(
      ref.job, make_spec(test::dying_traces(n, 1), flops), cfg);
  const RoundResult ref_round = ref_engine.run_round(ref.x);
  ASSERT_TRUE(ref_round.stats.timeout_fired);
  const std::size_t first_wave = ref_round.stats.reassigned_chunks;
  ASSERT_GT(first_wave, 0u);

  auto traces = test::dying_traces(n, 1);
  traces[2] = sim::SpeedTrace::step(0.9 * ref_round.stats.coverage, 1.0, 0.0);
  FunctionalSetup f(n, k);
  CodedComputeEngine engine(f.job, make_spec(std::move(traces), flops), cfg);
  const RoundResult r = engine.run_round(f.x);
  EXPECT_TRUE(r.stats.timeout_fired);
  // The re-planned wave reassigns worker 2's unfinished chunks again.
  EXPECT_GT(r.stats.reassigned_chunks, first_wave);
  // Worker 2's partial recovery progress is waste on top of its useful
  // original partition work.
  EXPECT_GT(engine.accounting().worker(2).wasted_work, 0.0);
  EXPECT_GT(engine.accounting().worker(2).useful_work, 0.0);
  ASSERT_TRUE(r.y.has_value());
  expect_close(*r.y, f.truth);
}

TEST(Engine, RecoveredClusterKeepsIterating) {
  // After the death round, subsequent rounds should allocate around the
  // dead worker (observed speed ~ 0) without further timeouts.
  FunctionalSetup f(12, 6);
  EngineConfig cfg;
  cfg.strategy = StrategyKind::kS2C2;
  cfg.chunks_per_partition = kChunks;
  CodedComputeEngine engine(f.job, make_spec(test::dying_traces(12, 1)), cfg);
  (void)engine.run_round(f.x);  // death round
  for (int round = 0; round < 3; ++round) {
    const RoundResult r = engine.run_round(f.x);
    EXPECT_FALSE(r.stats.timeout_fired) << "round " << round;
    ASSERT_TRUE(r.y.has_value());
    expect_close(*r.y, f.truth);
  }
}

TEST(Engine, ClusterFailureWhenTooFewSurvive) {
  FunctionalSetup f(4, 3);
  std::vector<sim::SpeedTrace> traces{
      sim::SpeedTrace::constant(1.0), sim::SpeedTrace::constant(1.0),
      sim::SpeedTrace::constant(0.0), sim::SpeedTrace::constant(0.0)};
  EngineConfig cfg;
  cfg.strategy = StrategyKind::kMds;
  cfg.chunks_per_partition = kChunks;
  CodedComputeEngine engine(f.job, make_spec(std::move(traces)), cfg);
  EXPECT_THROW(engine.run_round(f.x), std::runtime_error);
}

TEST(Engine, OracleBeatsEqualAssumptionUnderSpeedVariation) {
  // General S2C2 with exact speeds must beat basic S2C2 (which treats all
  // non-stragglers as equal) when speeds vary 20% (paper Fig 6 argument).
  util::Rng trng(9);
  const auto traces = workload::controlled_cluster_traces(12, 2, 0.2, trng);
  auto run = [&](StrategyKind s) {
    EngineConfig cfg;
    cfg.strategy = s;
    cfg.chunks_per_partition = kChunks;
    cfg.oracle_speeds = true;
    CodedMatVecJob job = CodedMatVecJob::cost_only(2400, 500, 12, 6, kChunks);
    CodedComputeEngine engine(job, make_spec(traces), cfg);
    return total_latency(engine.run_rounds(5));
  };
  EXPECT_LT(run(StrategyKind::kS2C2), run(StrategyKind::kS2C2Basic));
}

TEST(Engine, MispredictionRateTracked) {
  // Volatile cloud traces with last-value prediction: some rounds must
  // miss by >15%.
  util::Rng rng(10);
  auto series = workload::cloud_speed_corpus(
      12, 60, workload::volatile_cloud_config(), rng);
  ClusterSpec spec = make_spec(
      workload::traces_from_series(series, 0.5));
  spec.worker_flops = 1e7;
  EngineConfig cfg;
  cfg.strategy = StrategyKind::kS2C2;
  cfg.chunks_per_partition = kChunks;
  CodedMatVecJob job = CodedMatVecJob::cost_only(2400, 500, 12, 10, kChunks);
  CodedComputeEngine engine(job, spec, cfg);
  engine.run_rounds(30);
  EXPECT_GT(engine.misprediction_rate(), 0.01);
  EXPECT_LE(engine.misprediction_rate(), 1.0);
  EXPECT_GE(engine.timeout_rate(), 0.0);
}

TEST(Engine, SparseOperatorFunctionalDecode) {
  util::Rng rng(11);
  std::vector<linalg::Triplet> trips;
  for (int i = 0; i < 800; ++i) {
    trips.push_back({static_cast<std::size_t>(rng.uniform_int(0, 239)),
                     static_cast<std::size_t>(rng.uniform_int(0, 29)),
                     rng.normal()});
  }
  const linalg::CsrMatrix a(240, 30, trips);
  CodedMatVecJob job(a, 12, 6, kChunks);
  linalg::Vector x(30);
  for (auto& v : x) v = rng.normal();
  const auto truth = a.matvec(x);

  util::Rng trng(12);
  EngineConfig cfg;
  cfg.strategy = StrategyKind::kS2C2;
  cfg.chunks_per_partition = kChunks;
  cfg.oracle_speeds = true;
  CodedComputeEngine engine(
      job,
      make_spec(workload::controlled_cluster_traces(12, 2, 0.2, trng)),
      cfg);
  const RoundResult r = engine.run_round(x);
  ASSERT_TRUE(r.y.has_value());
  expect_close(*r.y, truth);
}

TEST(Engine, ClockAdvancesAcrossRounds) {
  CodedMatVecJob job = CodedMatVecJob::cost_only(240, 50, 4, 2, kChunks);
  EngineConfig cfg;
  cfg.chunks_per_partition = kChunks;
  cfg.oracle_speeds = true;
  CodedComputeEngine engine(job, ClusterSpec::uniform(4), cfg);
  const auto r = engine.run_rounds(3);
  EXPECT_GT(r[1].stats.start, r[0].stats.start);
  EXPECT_DOUBLE_EQ(r[1].stats.start, r[0].stats.end);
  EXPECT_DOUBLE_EQ(engine.now(), r[2].stats.end);
}

TEST(Engine, RunRoundsSurfacesDecodedProductInFunctionalMode) {
  // Regression: run_rounds used to drop the decoded product even when the
  // job was functional, so loop-based convergence checks silently ran
  // latency-only. With the input vector passed through, every round must
  // decode — and decode correctly.
  FunctionalSetup f(6, 4);
  EngineConfig cfg;
  cfg.chunks_per_partition = kChunks;
  cfg.oracle_speeds = true;
  CodedComputeEngine engine(f.job, make_spec(test::uniform_traces(6)), cfg);
  const auto rounds = engine.run_rounds(3, f.x);
  ASSERT_EQ(rounds.size(), 3u);
  for (const RoundResult& r : rounds) {
    ASSERT_TRUE(r.y.has_value());
    expect_close(*r.y, f.truth, 1e-9);
  }
  // Latency-only default stays latency-only.
  const auto bare = engine.run_rounds(2);
  for (const RoundResult& r : bare) EXPECT_FALSE(r.y.has_value());
}

}  // namespace
}  // namespace s2c2::core
