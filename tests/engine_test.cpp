// Tests for the coded-compute engine: functional correctness under every
// strategy, timeout/failure recovery, waste accounting, and the latency
// orderings the paper's figures rest on.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/engine.h"
#include "src/util/rng.h"
#include "src/workload/trace_gen.h"
#include "tests/test_util.h"

namespace s2c2::core {
namespace {

using test::expect_close;
using test::kChunks;
using test::make_spec;

using FunctionalSetup = test::FunctionalMatVec;

TEST(Engine, RejectsMismatchedClusterSize) {
  FunctionalSetup f(4, 2);
  EngineConfig cfg;
  cfg.chunks_per_partition = kChunks;
  EXPECT_THROW(CodedComputeEngine(f.job, ClusterSpec::uniform(3), cfg),
               std::invalid_argument);
}

TEST(Engine, RejectsGranularityMismatch) {
  FunctionalSetup f(4, 2);
  EngineConfig cfg;
  cfg.chunks_per_partition = kChunks + 1;
  EXPECT_THROW(CodedComputeEngine(f.job, ClusterSpec::uniform(4), cfg),
               std::invalid_argument);
}

struct StrategyParam {
  Strategy strategy;
  std::size_t stragglers;
};

class FunctionalDecode : public ::testing::TestWithParam<StrategyParam> {};

TEST_P(FunctionalDecode, MatchesDirectProduct) {
  const auto p = GetParam();
  FunctionalSetup f(12, 6);
  util::Rng trng(123);
  ClusterSpec spec = make_spec(
      workload::controlled_cluster_traces(12, p.stragglers, 0.2, trng));
  EngineConfig cfg;
  cfg.strategy = p.strategy;
  cfg.chunks_per_partition = kChunks;
  cfg.oracle_speeds = true;
  CodedComputeEngine engine(f.job, spec, cfg);
  for (int round = 0; round < 3; ++round) {
    const RoundResult r = engine.run_round(f.x);
    ASSERT_TRUE(r.y.has_value());
    expect_close(*r.y, f.truth);
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndStragglers, FunctionalDecode,
    ::testing::Values(StrategyParam{Strategy::kMdsConventional, 0},
                      StrategyParam{Strategy::kMdsConventional, 3},
                      StrategyParam{Strategy::kS2C2Basic, 0},
                      StrategyParam{Strategy::kS2C2Basic, 2},
                      StrategyParam{Strategy::kS2C2Basic, 5},
                      StrategyParam{Strategy::kS2C2General, 0},
                      StrategyParam{Strategy::kS2C2General, 3},
                      StrategyParam{Strategy::kS2C2General, 6}));

TEST(Engine, S2C2FasterThanMdsWithoutStragglers) {
  // The paper's headline: with zero stragglers, conventional (n,k)-MDS
  // still pays the 1/k-per-worker cost while S2C2 spreads 1/n.
  util::Rng trng(5);
  const auto traces = workload::controlled_cluster_traces(12, 0, 0.0, trng);

  auto run = [&](Strategy s) {
    EngineConfig cfg;
    cfg.strategy = s;
    cfg.chunks_per_partition = kChunks;
    cfg.oracle_speeds = true;
    CodedMatVecJob job = CodedMatVecJob::cost_only(2400, 500, 12, 6, kChunks);
    CodedComputeEngine engine(job, make_spec(traces), cfg);
    return total_latency(engine.run_rounds(5));
  };
  const double mds = run(Strategy::kMdsConventional);
  const double s2c2 = run(Strategy::kS2C2General);
  // Ideal ratio 12/6 = 2; comm/decode overheads shave it.
  EXPECT_GT(mds / s2c2, 1.5);
}

TEST(Engine, S2C2DegradesGracefullyWithStragglers) {
  EngineConfig cfg;
  cfg.strategy = Strategy::kS2C2General;
  cfg.chunks_per_partition = kChunks;
  cfg.oracle_speeds = true;
  double prev = 0.0;
  for (std::size_t s : {0u, 2u, 4u, 6u}) {
    util::Rng trng(6);
    CodedMatVecJob job = CodedMatVecJob::cost_only(2400, 500, 12, 6, kChunks);
    CodedComputeEngine engine(
        job,
        make_spec(workload::controlled_cluster_traces(12, s, 0.0, trng)),
        cfg);
    const double lat = total_latency(engine.run_rounds(3));
    EXPECT_GT(lat, prev);  // monotone in straggler count...
    prev = lat;
  }
  // ...but bounded: with 6 stragglers of a (12,6) code the slowdown is at
  // most ~2x the no-straggler case plus straggler capacity reuse.
}

TEST(Engine, MdsLatencyFlatUpToRedundancyThenExplodes) {
  EngineConfig cfg;
  cfg.strategy = Strategy::kMdsConventional;
  cfg.chunks_per_partition = kChunks;
  cfg.oracle_speeds = true;
  auto lat_with = [&](std::size_t stragglers) {
    util::Rng trng(7);
    CodedMatVecJob job = CodedMatVecJob::cost_only(2400, 500, 12, 10, kChunks);
    CodedComputeEngine engine(
        job,
        make_spec(
            workload::controlled_cluster_traces(12, stragglers, 0.0, trng)),
        cfg);
    return total_latency(engine.run_rounds(2));
  };
  const double l0 = lat_with(0);
  const double l2 = lat_with(2);
  const double l3 = lat_with(3);
  EXPECT_LT(l2 / l0, 1.3);   // within redundancy: flat
  EXPECT_GT(l3 / l0, 2.5);   // beyond redundancy: waits on a 5x straggler
}

TEST(Engine, MdsWastesStragglersWorkS2C2DoesNot) {
  util::Rng trng(8);
  const auto traces = workload::controlled_cluster_traces(12, 2, 0.2, trng);
  auto waste = [&](Strategy s) {
    EngineConfig cfg;
    cfg.strategy = s;
    cfg.chunks_per_partition = kChunks;
    cfg.oracle_speeds = true;
    CodedMatVecJob job = CodedMatVecJob::cost_only(2400, 500, 12, 10, kChunks);
    CodedComputeEngine engine(job, make_spec(traces), cfg);
    engine.run_rounds(5);
    return engine.accounting().mean_wasted_fraction();
  };
  EXPECT_GT(waste(Strategy::kMdsConventional), 0.05);
  EXPECT_NEAR(waste(Strategy::kS2C2General), 0.0, 1e-9);
}

TEST(Engine, TimeoutRecoversFromSuddenDeath) {
  // Worker 11 dies mid-run; predictions (last-value) won't see it coming,
  // so the timeout must fire, reassign, and still decode correctly.
  FunctionalSetup f(12, 6);
  EngineConfig cfg;
  cfg.strategy = Strategy::kS2C2General;
  cfg.chunks_per_partition = kChunks;
  CodedComputeEngine engine(f.job, make_spec(test::dying_traces(12, 1)), cfg);
  const RoundResult r = engine.run_round(f.x);
  EXPECT_TRUE(r.stats.timeout_fired);
  EXPECT_GT(r.stats.reassigned_chunks, 0u);
  ASSERT_TRUE(r.y.has_value());
  expect_close(*r.y, f.truth);
}

TEST(Engine, RecoveredClusterKeepsIterating) {
  // After the death round, subsequent rounds should allocate around the
  // dead worker (observed speed ~ 0) without further timeouts.
  FunctionalSetup f(12, 6);
  EngineConfig cfg;
  cfg.strategy = Strategy::kS2C2General;
  cfg.chunks_per_partition = kChunks;
  CodedComputeEngine engine(f.job, make_spec(test::dying_traces(12, 1)), cfg);
  (void)engine.run_round(f.x);  // death round
  for (int round = 0; round < 3; ++round) {
    const RoundResult r = engine.run_round(f.x);
    EXPECT_FALSE(r.stats.timeout_fired) << "round " << round;
    ASSERT_TRUE(r.y.has_value());
    expect_close(*r.y, f.truth);
  }
}

TEST(Engine, ClusterFailureWhenTooFewSurvive) {
  FunctionalSetup f(4, 3);
  std::vector<sim::SpeedTrace> traces{
      sim::SpeedTrace::constant(1.0), sim::SpeedTrace::constant(1.0),
      sim::SpeedTrace::constant(0.0), sim::SpeedTrace::constant(0.0)};
  EngineConfig cfg;
  cfg.strategy = Strategy::kMdsConventional;
  cfg.chunks_per_partition = kChunks;
  CodedComputeEngine engine(f.job, make_spec(std::move(traces)), cfg);
  EXPECT_THROW(engine.run_round(f.x), std::runtime_error);
}

TEST(Engine, OracleBeatsEqualAssumptionUnderSpeedVariation) {
  // General S2C2 with exact speeds must beat basic S2C2 (which treats all
  // non-stragglers as equal) when speeds vary 20% (paper Fig 6 argument).
  util::Rng trng(9);
  const auto traces = workload::controlled_cluster_traces(12, 2, 0.2, trng);
  auto run = [&](Strategy s) {
    EngineConfig cfg;
    cfg.strategy = s;
    cfg.chunks_per_partition = kChunks;
    cfg.oracle_speeds = true;
    CodedMatVecJob job = CodedMatVecJob::cost_only(2400, 500, 12, 6, kChunks);
    CodedComputeEngine engine(job, make_spec(traces), cfg);
    return total_latency(engine.run_rounds(5));
  };
  EXPECT_LT(run(Strategy::kS2C2General), run(Strategy::kS2C2Basic));
}

TEST(Engine, MispredictionRateTracked) {
  // Volatile cloud traces with last-value prediction: some rounds must
  // miss by >15%.
  util::Rng rng(10);
  auto series = workload::cloud_speed_corpus(
      12, 60, workload::volatile_cloud_config(), rng);
  ClusterSpec spec = make_spec(
      workload::traces_from_series(series, 0.5));
  spec.worker_flops = 1e7;
  EngineConfig cfg;
  cfg.strategy = Strategy::kS2C2General;
  cfg.chunks_per_partition = kChunks;
  CodedMatVecJob job = CodedMatVecJob::cost_only(2400, 500, 12, 10, kChunks);
  CodedComputeEngine engine(job, spec, cfg);
  engine.run_rounds(30);
  EXPECT_GT(engine.misprediction_rate(), 0.01);
  EXPECT_LE(engine.misprediction_rate(), 1.0);
  EXPECT_GE(engine.timeout_rate(), 0.0);
}

TEST(Engine, SparseOperatorFunctionalDecode) {
  util::Rng rng(11);
  std::vector<linalg::Triplet> trips;
  for (int i = 0; i < 800; ++i) {
    trips.push_back({static_cast<std::size_t>(rng.uniform_int(0, 239)),
                     static_cast<std::size_t>(rng.uniform_int(0, 29)),
                     rng.normal()});
  }
  const linalg::CsrMatrix a(240, 30, trips);
  CodedMatVecJob job(a, 12, 6, kChunks);
  linalg::Vector x(30);
  for (auto& v : x) v = rng.normal();
  const auto truth = a.matvec(x);

  util::Rng trng(12);
  EngineConfig cfg;
  cfg.strategy = Strategy::kS2C2General;
  cfg.chunks_per_partition = kChunks;
  cfg.oracle_speeds = true;
  CodedComputeEngine engine(
      job,
      make_spec(workload::controlled_cluster_traces(12, 2, 0.2, trng)),
      cfg);
  const RoundResult r = engine.run_round(x);
  ASSERT_TRUE(r.y.has_value());
  expect_close(*r.y, truth);
}

TEST(Engine, ClockAdvancesAcrossRounds) {
  CodedMatVecJob job = CodedMatVecJob::cost_only(240, 50, 4, 2, kChunks);
  EngineConfig cfg;
  cfg.chunks_per_partition = kChunks;
  cfg.oracle_speeds = true;
  CodedComputeEngine engine(job, ClusterSpec::uniform(4), cfg);
  const auto r = engine.run_rounds(3);
  EXPECT_GT(r[1].stats.start, r[0].stats.start);
  EXPECT_DOUBLE_EQ(r[1].stats.start, r[0].stats.end);
  EXPECT_DOUBLE_EQ(engine.now(), r[2].stats.end);
}

}  // namespace
}  // namespace s2c2::core
