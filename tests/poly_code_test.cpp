// Tests for polynomial codes (bilinear Hessian computation, paper §5).
#include <gtest/gtest.h>

#include "src/coding/poly_code.h"
#include "src/util/rng.h"

namespace s2c2::coding {
namespace {

TEST(PolyCode, RejectsTooFewWorkers) {
  EXPECT_THROW(PolyCode(3, 2), std::invalid_argument);  // needs n >= 4
  EXPECT_NO_THROW(PolyCode(4, 2));
}

TEST(PolyCode, EvalPointsDistinct) {
  const PolyCode code(12, 3);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = i + 1; j < 12; ++j) {
      EXPECT_NE(code.eval_point(i), code.eval_point(j));
    }
  }
}

TEST(PolyCode, HessianDirectMatchesManual) {
  const linalg::Matrix a(2, 2, {1, 2, 3, 4});
  const linalg::Vector x{2.0, 1.0};
  // AᵀDA with D = diag(2,1):
  // Aᵀ D A = [[1,3],[2,4]] [[2,0],[0,1]] [[1,2],[3,4]]
  const auto h = PolyCode::hessian_direct(a, x);
  EXPECT_DOUBLE_EQ(h(0, 0), 2.0 * 1 * 1 + 1.0 * 3 * 3);
  EXPECT_DOUBLE_EQ(h(0, 1), 2.0 * 1 * 2 + 1.0 * 3 * 4);
  EXPECT_DOUBLE_EQ(h(1, 0), h(0, 1));
}

TEST(PolyCode, WorkerComputeRowsMatchesFullProduct) {
  util::Rng rng(31);
  const linalg::Matrix a = linalg::Matrix::random_uniform(8, 6, rng);
  const PolyCode code(5, 2);
  const auto ops = code.encode(a);
  linalg::Vector x(8);
  for (auto& v : x) v = rng.uniform(0.1, 1.0);
  // Full P_i vs row-range computation.
  const auto full = PolyCode::compute_rows(ops[2], x, 0, 3);
  const auto top = PolyCode::compute_rows(ops[2], x, 0, 1);
  const auto rest = PolyCode::compute_rows(ops[2], x, 1, 3);
  for (std::size_t c = 0; c < full.cols(); ++c) {
    EXPECT_NEAR(full(0, c), top(0, c), 1e-12);
    EXPECT_NEAR(full(1, c), rest(0, c), 1e-12);
    EXPECT_NEAR(full(2, c), rest(1, c), 1e-12);
  }
}

struct PolyParam {
  std::size_t n, a, chunks;
  EvalPoints points;
};

class PolyDecode : public ::testing::TestWithParam<PolyParam> {};

TEST_P(PolyDecode, ReconstructsHessian) {
  const auto p = GetParam();
  const std::size_t d = p.a * p.chunks * 2;  // d/a = 2*chunks rows
  const std::size_t rows = 10;
  util::Rng rng(4000 + p.n + p.a);
  const linalg::Matrix a_mat = linalg::Matrix::random_uniform(rows, d, rng);
  linalg::Vector x(rows);
  for (auto& v : x) v = rng.uniform(0.1, 2.0);

  const PolyCode code(p.n, p.a, p.points);
  const auto ops = code.encode(a_mat);
  const std::size_t out_rows = d / p.a;
  const std::size_t rpc = out_rows / p.chunks;

  PolyCode::Decoder dec(code, out_rows, p.chunks, d / p.a);
  // Per chunk: random subset of >= a² responders.
  for (std::size_t c = 0; c < p.chunks; ++c) {
    std::vector<std::size_t> workers(p.n);
    for (std::size_t w = 0; w < p.n; ++w) workers[w] = w;
    rng.shuffle(workers);
    const std::size_t take = code.required_responses();
    for (std::size_t i = 0; i < take; ++i) {
      dec.add_chunk_result(workers[i], c,
                           PolyCode::compute_rows(ops[workers[i]], x, c * rpc,
                                                  (c + 1) * rpc));
    }
  }
  ASSERT_TRUE(dec.decodable());
  const auto h = dec.decode();
  const auto truth = PolyCode::hessian_direct(a_mat, x);
  ASSERT_EQ(h.rows(), truth.rows());
  ASSERT_EQ(h.cols(), truth.cols());
  const double scale = truth.frobenius_norm() + 1.0;
  // Integer evaluation points condition far worse than Chebyshev (why the
  // library defaults to Chebyshev); allow them a looser bound.
  const double tol = p.points == EvalPoints::kChebyshev ? 1e-6 : 1e-4;
  EXPECT_LT(h.max_abs_diff(truth) / scale, tol);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PolyDecode,
    ::testing::Values(PolyParam{5, 2, 1, EvalPoints::kChebyshev},
                      PolyParam{5, 2, 2, EvalPoints::kChebyshev},
                      PolyParam{12, 3, 2, EvalPoints::kChebyshev},
                      PolyParam{12, 3, 4, EvalPoints::kChebyshev},
                      PolyParam{5, 2, 2, EvalPoints::kIntegers},
                      PolyParam{12, 3, 2, EvalPoints::kIntegers}));

TEST(PolyDecoder, DeficientChunksReported) {
  const PolyCode code(5, 2);
  PolyCode::Decoder dec(code, 4, 2, 4);
  EXPECT_FALSE(dec.decodable());
  EXPECT_EQ(dec.deficient_chunks().size(), 2u);
}

TEST(PolyDecoder, DuplicateIdempotent) {
  util::Rng rng(41);
  const linalg::Matrix a_mat = linalg::Matrix::random_uniform(6, 4, rng);
  linalg::Vector x(6, 1.0);
  const PolyCode code(5, 2);
  const auto ops = code.encode(a_mat);
  PolyCode::Decoder dec(code, 2, 1, 2);
  dec.add_chunk_result(0, 0, PolyCode::compute_rows(ops[0], x, 0, 2));
  dec.add_chunk_result(0, 0, PolyCode::compute_rows(ops[0], x, 0, 2));
  EXPECT_EQ(dec.responders(0).size(), 1u);
}

}  // namespace
}  // namespace s2c2::coding
