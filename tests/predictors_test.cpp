// Tests for the prediction stack: simple predictors and the ARIMA family.
#include <gtest/gtest.h>

#include <cmath>

#include "src/predict/arima.h"
#include "src/predict/evaluation.h"
#include "src/predict/predictors.h"
#include "src/util/rng.h"
#include "src/workload/trace_gen.h"

namespace s2c2::predict {
namespace {

TEST(LastValue, PredictsLastObservation) {
  LastValuePredictor p(2);
  EXPECT_DOUBLE_EQ(p.predict(0), 1.0);  // prior before any observation
  p.observe(0, 0.4);
  EXPECT_DOUBLE_EQ(p.predict(0), 0.4);
  EXPECT_DOUBLE_EQ(p.predict(1), 1.0);
  EXPECT_THROW(p.observe(5, 1.0), std::invalid_argument);
}

TEST(EqualSpeed, AlwaysOne) {
  EqualSpeedPredictor p;
  p.observe(0, 0.2);
  EXPECT_DOUBLE_EQ(p.predict(0), 1.0);
}

TEST(Noisy, CorruptsAtConfiguredRate) {
  auto inner = std::make_unique<LastValuePredictor>(1);
  inner->observe(0, 1.0);
  NoisyPredictor p(std::move(inner), 0.5, 0.3, 42);
  int corrupted = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = p.predict(0);
    if (std::abs(v - 1.0) > 1e-12) ++corrupted;
  }
  EXPECT_NEAR(corrupted / 2000.0, 0.5, 0.06);
}

TEST(Noisy, NeverNegative) {
  auto inner = std::make_unique<LastValuePredictor>(1);
  inner->observe(0, 0.1);
  NoisyPredictor p(std::move(inner), 1.0, 2.0, 7);  // 200% error
  for (int i = 0; i < 100; ++i) EXPECT_GE(p.predict(0), 0.0);
}

TEST(ArFit, RecoversAr1Coefficient) {
  // Simulate y_t = 0.3 + 0.6 y_{t-1} + small noise.
  util::Rng rng(11);
  std::vector<std::vector<double>> corpus;
  for (int s = 0; s < 5; ++s) {
    std::vector<double> y{0.75};
    for (int t = 1; t < 400; ++t) {
      y.push_back(0.3 + 0.6 * y.back() + rng.normal(0.0, 0.01));
    }
    corpus.push_back(std::move(y));
  }
  const ArModel m = fit_ar(corpus, 1);
  EXPECT_NEAR(m.phi[0], 0.6, 0.05);
  EXPECT_NEAR(m.intercept, 0.3, 0.05);
  // Forecast from history {0.8}: 0.3 + 0.6*0.8 = 0.78.
  EXPECT_NEAR(m.forecast(std::vector<double>{0.8}), 0.78, 0.05);
}

TEST(ArFit, Ar2UsesTwoLags) {
  const ArModel m{{0.5, 0.25}, 0.1};
  // history.back() is most recent: y_{t-1}=0.8, y_{t-2}=0.4.
  const double f = m.forecast(std::vector<double>{0.4, 0.8});
  EXPECT_NEAR(f, 0.1 + 0.5 * 0.8 + 0.25 * 0.4, 1e-12);
}

TEST(ArFit, ShortHistoryFallsBackToLastValue) {
  const ArModel m{{0.5, 0.25}, 0.1};
  EXPECT_DOUBLE_EQ(m.forecast(std::vector<double>{0.9}), 0.9);
  EXPECT_DOUBLE_EQ(m.forecast(std::vector<double>{}), 1.0);
}

TEST(ArFit, RejectsTinyCorpus) {
  EXPECT_THROW(fit_ar({{1.0, 2.0}}, 3), std::invalid_argument);
}

TEST(Arima11, FitsMa1ProcessBetterThanWhiteNoiseGuess) {
  // z_t = e_t + 0.7 e_{t-1} (pure MA(1), zero mean).
  util::Rng rng(13);
  std::vector<std::vector<double>> corpus;
  for (int s = 0; s < 4; ++s) {
    std::vector<double> z;
    double e_prev = 0.0;
    for (int t = 0; t < 500; ++t) {
      const double e = rng.normal(0.0, 0.1);
      z.push_back(e + 0.7 * e_prev + 1.0);  // mean 1.0
      e_prev = e;
    }
    corpus.push_back(std::move(z));
  }
  const ArimaModel m = fit_arima11(corpus, 0);
  EXPECT_EQ(m.d, 0u);
  EXPECT_NEAR(m.theta, 0.7, 0.15);
  EXPECT_NEAR(std::abs(m.phi), 0.0, 0.2);
}

TEST(Arima11, DifferencedForecastTracksTrend) {
  // Linear ramp: first difference is constant — ARIMA(1,1,1) should
  // forecast continuation of the ramp.
  std::vector<std::vector<double>> corpus;
  std::vector<double> ramp;
  for (int t = 0; t < 200; ++t) ramp.push_back(0.5 + 0.002 * t);
  corpus.push_back(ramp);
  corpus.push_back(ramp);
  const ArimaModel m = fit_arima11(corpus, 1);
  const double f = m.forecast(ramp);
  EXPECT_NEAR(f, ramp.back() + 0.002, 5e-3);
}

TEST(ArPredictor, PerWorkerHistories) {
  ArPredictor p(2, ArModel{{1.0}, 0.0});  // identity AR(1)
  p.observe(0, 0.3);
  p.observe(1, 0.9);
  EXPECT_NEAR(p.predict(0), 0.3, 1e-12);
  EXPECT_NEAR(p.predict(1), 0.9, 1e-12);
  EXPECT_EQ(p.name(), "ARIMA(1,0,0)");
}

TEST(Evaluation, ReportsAllModelsOnCloudCorpus) {
  util::Rng rng(17);
  const auto corpus =
      workload::cloud_speed_corpus(10, 120, workload::stable_cloud_config(),
                                   rng);
  EvaluationConfig cfg;
  cfg.lstm_train.epochs = 5;  // keep the unit test fast
  const auto reports = evaluate_predictors(corpus, cfg);
  ASSERT_EQ(reports.size(), 5u);
  EXPECT_EQ(reports[0].model, "LSTM(h=4)");
  for (const auto& r : reports) {
    EXPECT_GE(r.mape, 0.0);
    EXPECT_LT(r.mape, 100.0) << r.model;
  }
}

}  // namespace
}  // namespace s2c2::predict
