// Statistical shape tests for the robustness trace zoo (fail-slow, bursty
// colocation, diurnal, byzantine) and the cross-profile salting guard:
// every profile must be deterministic in (config, salt), distinct across
// profiles at the same seed, and shaped like the failure mode it models.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/harness/matrix_runner.h"
#include "src/harness/scenario_matrix.h"
#include "src/util/rng.h"
#include "src/workload/trace_gen.h"

namespace s2c2 {
namespace {

using harness::ScenarioConfig;
using harness::TraceProfile;

// ---- raw series shapes ----------------------------------------------------

TEST(TraceZoo, FailSlowAffectedSeriesDeclinesToFloor) {
  const workload::FailSlowConfig cfg;
  util::Rng rng(21);
  const auto series = workload::fail_slow_series(200, cfg, true, rng);
  ASSERT_EQ(series.size(), 200u);
  // Starts nominal, ends pinned near the floor.
  EXPECT_GT(series.front(), 0.8);
  EXPECT_LT(series.back(), cfg.floor_speed + 0.1);
  // The decline is one-way: once well below nominal it never recovers.
  bool seen_low = false;
  for (const double s : series) {
    if (s < 0.5) seen_low = true;
    if (seen_low) {
      EXPECT_LT(s, 0.6);
    }
  }
}

TEST(TraceZoo, FailSlowUnaffectedSeriesStaysNominal) {
  const workload::FailSlowConfig cfg;
  util::Rng rng(22);
  const auto series = workload::fail_slow_series(200, cfg, false, rng);
  for (const double s : series) {
    EXPECT_GT(s, 0.8);
    EXPECT_LT(s, 1.2);
  }
}

TEST(TraceZoo, FailSlowCorpusMixesAffectedAndHealthyNodes) {
  const workload::FailSlowConfig cfg;  // affected_fraction = 0.5
  util::Rng rng(23);
  const auto corpus = workload::fail_slow_corpus(200, 120, cfg, rng);
  std::size_t degraded = 0;
  for (const auto& series : corpus) {
    degraded += series.back() < 0.5 ? 1 : 0;
  }
  // Binomial(200, 0.5): far outside [60, 140] would mean broken sampling.
  EXPECT_GT(degraded, 60u);
  EXPECT_LT(degraded, 140u);
}

TEST(TraceZoo, BurstyColocationBurstsAreDeepButShort) {
  const workload::CloudTraceConfig cfg = workload::bursty_colocation_config();
  util::Rng rng(24);
  std::size_t burst_samples = 0, total = 0, max_run = 0, run = 0;
  double sum = 0.0;
  for (int node = 0; node < 20; ++node) {
    const auto series = workload::cloud_speed_series(300, cfg, rng);
    for (const double s : series) {
      ++total;
      sum += s;
      if (s < 0.5) {
        ++burst_samples;
        ++run;
        max_run = std::max(max_run, run);
      } else {
        run = 0;
      }
    }
    run = 0;
  }
  // Bursts happen (deep regime is reachable)…
  EXPECT_GT(burst_samples, 0u);
  // …but the fleet is mostly fast and no burst persists: the deep regime's
  // boosted switch probability caps dwell time well under the ~1/0.1
  // samples ordinary regime drift would give.
  EXPECT_GT(sum / static_cast<double>(total), 0.75);
  EXPECT_LT(burst_samples, total / 4);
  EXPECT_LE(max_run, 25u);
}

TEST(TraceZoo, DiurnalSeriesOscillateAroundAQuietBaseline) {
  const workload::CloudTraceConfig cfg = workload::diurnal_config();
  util::Rng rng(25);
  for (int node = 0; node < 8; ++node) {
    const auto series = workload::cloud_speed_series(256, cfg, rng);
    double mn = 1e9, mx = -1e9, sum = 0.0;
    for (const double s : series) {
      mn = std::min(mn, s);
      mx = std::max(mx, s);
      sum += s;
    }
    const double mean = sum / static_cast<double>(series.size());
    // Periodic modulation is visible (amplitude 0.3 on a 0.9 level)…
    EXPECT_GT(mx - mn, 0.25) << "node " << node;
    // …and symmetric: the series keeps crossing its own mean rather than
    // trending (regime machinery is off for this profile).
    std::size_t crossings = 0;
    for (std::size_t i = 1; i < series.size(); ++i) {
      if ((series[i - 1] < mean) != (series[i] < mean)) ++crossings;
    }
    EXPECT_GT(crossings, 8u) << "node " << node;
  }
}

// ---- harness wiring -------------------------------------------------------

ScenarioConfig base_config() {
  ScenarioConfig cfg;  // workers 12, k n-2, seed 42
  return cfg;
}

std::vector<double> sample_cluster(const std::vector<sim::SpeedTrace>& traces,
                                   std::size_t samples, double dt) {
  std::vector<double> out;
  out.reserve(traces.size() * samples);
  for (const auto& trace : traces) {
    for (std::size_t i = 0; i < samples; ++i) {
      out.push_back(trace.speed_at(static_cast<double>(i) * dt));
    }
  }
  return out;
}

double correlation(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

TEST(TraceZoo, MakeTracesIsDeterministicPerProfileAndSalt) {
  const ScenarioConfig cfg = base_config();
  for (const TraceProfile t : harness::robustness_trace_profiles()) {
    const auto first = harness::make_traces(t, cfg, 0xabcdu);
    const auto second = harness::make_traces(t, cfg, 0xabcdu);
    ASSERT_EQ(first.size(), cfg.workers);
    const auto s1 = sample_cluster(first, 64, 0.05);
    const auto s2 = sample_cluster(second, 64, 0.05);
    EXPECT_EQ(s1, s2) << harness::trace_profile_name(t);
    // A different salt realizes a different cluster.
    const auto other = sample_cluster(
        harness::make_traces(t, cfg, 0x1234u), 64, 0.05);
    EXPECT_NE(s1, other) << harness::trace_profile_name(t);
  }
}

// The cross-profile salting guard. make_traces itself deliberately shares
// generators across profiles (byzantine reuses the stable-cloud generator:
// corruption, not speed, is its story), so profile separation lives in
// trace_salt: every (workload, profile) column must get its own salt, and
// the clusters realized at those column salts must be distinct. A salting
// bug — profile or workload not mixed into the stream — shows up as a
// duplicated salt or a duplicated/correlated realized cluster.
TEST(TraceZoo, ColumnSaltsSeparateEveryProfileAndWorkload) {
  const ScenarioConfig cfg = base_config();
  std::vector<std::uint64_t> salts;
  for (const harness::WorkloadKind w : harness::all_workloads()) {
    for (const TraceProfile t : harness::extended_trace_profiles()) {
      salts.push_back(harness::trace_salt(cfg.seed, w, t));
    }
  }
  std::vector<std::uint64_t> unique_salts = salts;
  std::sort(unique_salts.begin(), unique_salts.end());
  unique_salts.erase(std::unique(unique_salts.begin(), unique_salts.end()),
                     unique_salts.end());
  EXPECT_EQ(unique_salts.size(), salts.size());
  // And the seed itself must matter.
  EXPECT_NE(harness::trace_salt(cfg.seed + 1, harness::all_workloads().front(),
                                TraceProfile::kByzantine),
            salts.back());
}

TEST(TraceZoo, ProfilesAtTheirColumnSaltsRealizeDistinctClusters) {
  const ScenarioConfig cfg = base_config();
  const auto profiles = harness::extended_trace_profiles();
  const harness::WorkloadKind w = harness::all_workloads().front();
  std::vector<std::vector<double>> sampled;
  for (const TraceProfile t : profiles) {
    sampled.push_back(sample_cluster(
        harness::make_traces(t, cfg, harness::trace_salt(cfg.seed, w, t)), 96,
        0.05));
  }
  const auto is_cloud_family = [](TraceProfile t) {
    // Stochastic generators with no pinned per-slot structure; the
    // controlled/failure profiles place stragglers in the same last slots
    // by convention, so their raw correlation is structural, not a bug.
    return t != TraceProfile::kControlledStragglers &&
           t != TraceProfile::kFailureInjection;
  };
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    for (std::size_t j = i + 1; j < sampled.size(); ++j) {
      EXPECT_NE(sampled[i], sampled[j])
          << harness::trace_profile_name(profiles[i]) << " vs "
          << harness::trace_profile_name(profiles[j]);
      if (is_cloud_family(profiles[i]) && is_cloud_family(profiles[j])) {
        EXPECT_LT(std::abs(correlation(sampled[i], sampled[j])), 0.9)
            << harness::trace_profile_name(profiles[i]) << " vs "
            << harness::trace_profile_name(profiles[j]);
      }
    }
  }
}

TEST(TraceZoo, ByzantineClusterSpecStaysWithinTheSoundnessBudget) {
  for (const std::size_t workers : {6u, 12u, 24u, 48u}) {
    ScenarioConfig cfg = base_config();
    cfg.workers = workers;
    const auto spec = harness::make_cluster(TraceProfile::kByzantine, cfg, 77);
    ASSERT_TRUE(spec.byzantine.active()) << workers;
    const std::size_t budget = workers - cfg.effective_k() - 1;
    const std::size_t expected =
        std::min(budget, std::max<std::size_t>(1, workers / 8));
    EXPECT_EQ(spec.byzantine.corrupt_workers.size(), expected) << workers;
    EXPECT_NE(spec.byzantine.seed, 0u);
    // Corrupt slots are the *last* indices, mirroring the controlled-cluster
    // straggler convention.
    for (std::size_t i = 0; i < spec.byzantine.corrupt_workers.size(); ++i) {
      EXPECT_EQ(spec.byzantine.corrupt_workers[i], workers - 1 - i);
    }
  }
  // Every other profile keeps the cluster honest.
  for (const TraceProfile t :
       {TraceProfile::kControlledStragglers, TraceProfile::kFailSlow,
        TraceProfile::kBurstyColocation, TraceProfile::kDiurnal}) {
    const auto spec = harness::make_cluster(t, base_config(), 77);
    EXPECT_FALSE(spec.byzantine.active()) << harness::trace_profile_name(t);
  }
}

TEST(TraceZoo, ProfileListsArePinnedAndPartitioned) {
  // The default list backs the golden-pinned sweeps: it must never grow.
  const auto original = harness::all_trace_profiles();
  ASSERT_EQ(original.size(), 4u);
  const auto robustness = harness::robustness_trace_profiles();
  ASSERT_EQ(robustness.size(), 4u);
  const auto extended = harness::extended_trace_profiles();
  ASSERT_EQ(extended.size(), 8u);
  for (std::size_t i = 0; i < extended.size(); ++i) {
    EXPECT_EQ(static_cast<int>(extended[i]), static_cast<int>(i));
  }
  for (const TraceProfile t : original) {
    EXPECT_FALSE(harness::trace_profile_is_robustness(t))
        << harness::trace_profile_name(t);
  }
  for (const TraceProfile t : robustness) {
    EXPECT_TRUE(harness::trace_profile_is_robustness(t))
        << harness::trace_profile_name(t);
  }
  // Names are the CLI/CSV wire format: unique and stable.
  EXPECT_STREQ(harness::trace_profile_name(TraceProfile::kFailSlow),
               "fail-slow");
  EXPECT_STREQ(harness::trace_profile_name(TraceProfile::kBurstyColocation),
               "bursty");
  EXPECT_STREQ(harness::trace_profile_name(TraceProfile::kDiurnal), "diurnal");
  EXPECT_STREQ(harness::trace_profile_name(TraceProfile::kByzantine),
               "byzantine");
  std::vector<std::string> names;
  for (const TraceProfile t : extended) {
    names.emplace_back(harness::trace_profile_name(t));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(TraceZoo, RobustnessAxesSelectTheZooOnly) {
  const auto axes = harness::MatrixAxes::robustness();
  EXPECT_EQ(axes.traces, harness::robustness_trace_profiles());
  EXPECT_EQ(axes.predictors,
            (std::vector<harness::PredictorKind>{
                harness::PredictorKind::kLastValue}));
}

}  // namespace
}  // namespace s2c2
