// Byzantine-robust decode verification (docs/DESIGN.md §7).
//
// Decoder level: property tests of ChunkedDecoder::verify_chunks — the
// redundant-residual check is sound for up to r - k - 1 corrupted
// responders per chunk, has no false positives on clean data at a 1e-9
// tolerance, and the voting pass distrusts a convicted responder on every
// chunk. Engine/harness level: coded engines complete byzantine rounds
// with exact decodes while booking the corrupted work as waste; the
// uncoded baselines fail deterministically; detection counts and
// fingerprints are bit-stable at any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/coding/chunked_decoder.h"
#include "src/coding/mds_code.h"
#include "src/core/engine.h"
#include "src/harness/job_driver.h"
#include "src/harness/matrix_runner.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace s2c2 {
namespace {

using coding::ChunkedDecoder;
using coding::ChunkVerification;
using coding::MdsCode;
using coding::ParityKind;

constexpr double kTol = 1e-9;

/// Encoded partitions of a random operator plus ground truth (the
/// chunked_decoder_test fixture, with a corruption hook).
struct Fixture {
  Fixture(std::size_t n, std::size_t k, std::size_t rows, std::size_t cols,
          ParityKind kind, std::uint64_t seed)
      : code(n, k, kind), rng(seed) {
    a = linalg::Matrix::random_uniform(rows, cols, rng);
    parts = code.encode(a);
    x.resize(cols);
    for (auto& v : x) v = rng.normal();
    truth = a.matvec(x);
  }
  MdsCode code;
  util::Rng rng;
  linalg::Matrix a;
  std::vector<coding::EncodedPartition> parts;
  linalg::Vector x;
  linalg::Vector truth;

  std::vector<double> chunk_values(std::size_t worker, std::size_t chunk,
                                   std::size_t rpc, bool corrupt) const {
    std::vector<double> out(rpc);
    parts[worker].matvec_rows(chunk * rpc, (chunk + 1) * rpc, x, out);
    if (corrupt) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] += 1e3 * (1.0 + static_cast<double>(worker + chunk + i));
      }
    }
    return out;
  }

  void expect_exact_decode(ChunkedDecoder& dec) const {
    ASSERT_TRUE(dec.decodable());
    const auto out = dec.decode();
    double max_err = 0.0;
    for (std::size_t r = 0; r < truth.size(); ++r) {
      max_err = std::max(max_err, std::abs(out(r, 0) - truth[r]));
    }
    EXPECT_LT(max_err, kTol);
  }
};

struct CleanParam {
  std::size_t n, k, chunks, rpc;
  ParityKind kind;
};

class CleanVerification : public ::testing::TestWithParam<CleanParam> {};

// Zero false positives: honest chunks with full redundancy pass the
// residual check at a 1e-9 tolerance and convict nobody.
TEST_P(CleanVerification, HonestChunksNeverConvicted) {
  const auto p = GetParam();
  Fixture f(p.n, p.k, p.k * p.chunks * p.rpc, 5, p.kind, 100 + p.n + p.k);
  ChunkedDecoder dec(f.code.generator(), p.chunks * p.rpc, p.chunks, 1);
  for (std::size_t c = 0; c < p.chunks; ++c) {
    for (std::size_t w = 0; w < p.n; ++w) {
      dec.add_chunk_result(w, c, f.chunk_values(w, c, p.rpc, false));
    }
  }
  const ChunkVerification v = dec.verify_chunks(kTol);
  EXPECT_TRUE(v.corrupt_workers.empty());
  EXPECT_EQ(v.corrupted_chunks, 0u);
  EXPECT_EQ(v.verified_chunks, p.chunks);
  EXPECT_LE(v.max_clean_residual, kTol);
  f.expect_exact_decode(dec);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CleanVerification,
    ::testing::Values(CleanParam{4, 2, 3, 2, ParityKind::kVandermonde},
                      CleanParam{6, 3, 4, 1, ParityKind::kVandermonde},
                      CleanParam{6, 4, 2, 3, ParityKind::kGaussian},
                      CleanParam{10, 7, 5, 1, ParityKind::kGaussian},
                      CleanParam{12, 8, 4, 2, ParityKind::kGaussian}));

TEST(ByzantineVerify, SingleCorruptedResponderConvictedEverywhere) {
  for (const ParityKind kind :
       {ParityKind::kVandermonde, ParityKind::kGaussian}) {
    Fixture f(6, 3, 9, 4, kind, 7);
    ChunkedDecoder dec(f.code.generator(), 3, 3, 1);
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t w = 0; w < 6; ++w) {
        dec.add_chunk_result(w, c, f.chunk_values(w, c, 1, w == 2));
      }
    }
    const ChunkVerification v = dec.verify_chunks(kTol);
    EXPECT_EQ(v.corrupt_workers, (std::vector<std::size_t>{2}));
    EXPECT_EQ(v.corrupted_chunks, 3u);
    EXPECT_EQ(v.verified_chunks, 3u);
    // Conviction pruned worker 2 from every chunk before decode.
    for (std::size_t c = 0; c < 3; ++c) {
      const auto resp = dec.responders(c);
      EXPECT_EQ(std::count(resp.begin(), resp.end(), 2u), 0) << "chunk " << c;
    }
    f.expect_exact_decode(dec);
  }
}

// Soundness up to the per-chunk budget: randomized corruption patterns x
// responder sets. Every chunk keeps >= k + 1 honest responders, so each
// corrupt subset stays within its chunk's r - k - 1 exclusion budget and
// the minimal-exclusion search must convict exactly the corrupted set.
TEST(ByzantineVerify, RandomizedCorruptionSweepConvictsExactly) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    util::Rng rng(900 + seed);
    const std::size_t n =
        6 + static_cast<std::size_t>(rng.uniform_int(0, 6));  // 6..12
    // k in [3, n - 3] keeps the whole-cluster budget n - k - 1 >= 2.
    const std::size_t k =
        3 + static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(n) - 6));
    const std::size_t budget = n - k - 1;
    const std::size_t e =
        1 + static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(budget) - 1));
    const std::size_t chunks = 3;
    Fixture f(n, k, k * chunks, 4, ParityKind::kGaussian, 40 + seed);
    ChunkedDecoder dec(f.code.generator(), chunks, chunks, 1);

    // Corrupt workers: e distinct ids.
    std::vector<std::size_t> ids(n);
    for (std::size_t w = 0; w < n; ++w) ids[w] = w;
    f.rng.shuffle(ids);
    const std::vector<std::size_t> corrupt(ids.begin(), ids.begin() + e);
    const auto is_corrupt = [&](std::size_t w) {
      return std::find(corrupt.begin(), corrupt.end(), w) != corrupt.end();
    };

    // Per chunk: all corrupt workers respond plus a random >= k + 1 honest
    // subset, so e <= r - k - 1 holds chunk-wise.
    for (std::size_t c = 0; c < chunks; ++c) {
      std::vector<std::size_t> honest;
      for (std::size_t w = 0; w < n; ++w) {
        if (!is_corrupt(w)) honest.push_back(w);
      }
      f.rng.shuffle(honest);
      const std::size_t h =
          k + 1 +
          static_cast<std::size_t>(f.rng.uniform_int(
              0, static_cast<std::int64_t>(honest.size() - k - 1)));
      honest.resize(h);
      for (const std::size_t w : honest) {
        dec.add_chunk_result(w, c, f.chunk_values(w, c, 1, false));
      }
      for (const std::size_t w : corrupt) {
        dec.add_chunk_result(w, c, f.chunk_values(w, c, 1, true));
      }
    }
    const ChunkVerification v = dec.verify_chunks(kTol);
    std::vector<std::size_t> expected = corrupt;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(v.corrupt_workers, expected) << "seed " << seed;
    EXPECT_EQ(v.corrupted_chunks, chunks) << "seed " << seed;
    f.expect_exact_decode(dec);
  }
}

TEST(ByzantineVerify, CorruptionBeyondBudgetThrows) {
  // r = 5 responders, k = 3: budget r - k - 1 = 1, but two responders are
  // corrupted — no in-budget exclusion restores consistency.
  Fixture f(5, 3, 6, 4, ParityKind::kGaussian, 11);
  ChunkedDecoder dec(f.code.generator(), 2, 2, 1);
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t w = 0; w < 5; ++w) {
      dec.add_chunk_result(w, c, f.chunk_values(w, c, 1, w >= 3));
    }
  }
  EXPECT_THROW((void)dec.verify_chunks(kTol), std::runtime_error);
}

TEST(ByzantineVerify, VotingPruneBelowKThrows) {
  // Worker 5 is convicted on chunk 0 (full redundancy there) but is also
  // one of exactly k responders on chunk 1 — distrusting it everywhere
  // leaves chunk 1 undecodable, which must surface as a cluster failure.
  Fixture f(6, 3, 6, 4, ParityKind::kGaussian, 13);
  ChunkedDecoder dec(f.code.generator(), 2, 2, 1);
  for (std::size_t w = 0; w < 6; ++w) {
    dec.add_chunk_result(w, 0, f.chunk_values(w, 0, 1, w == 5));
  }
  for (const std::size_t w : {0u, 1u, 5u}) {
    dec.add_chunk_result(w, 1, f.chunk_values(w, 1, 1, false));
  }
  EXPECT_THROW((void)dec.verify_chunks(kTol), std::runtime_error);
}

TEST(ByzantineVerify, ChunksWithoutRedundancyAreSkipped) {
  Fixture f(6, 3, 6, 4, ParityKind::kVandermonde, 17);
  ChunkedDecoder dec(f.code.generator(), 2, 2, 1);
  // Chunk 0: exactly k results (unverifiable); chunk 1: k + 2 results.
  for (const std::size_t w : {0u, 1u, 2u}) {
    dec.add_chunk_result(w, 0, f.chunk_values(w, 0, 1, false));
  }
  for (const std::size_t w : {0u, 1u, 2u, 3u, 4u}) {
    dec.add_chunk_result(w, 1, f.chunk_values(w, 1, 1, false));
  }
  const ChunkVerification v = dec.verify_chunks(kTol);
  EXPECT_EQ(v.verified_chunks, 1u);
  EXPECT_EQ(v.corrupted_chunks, 0u);
  f.expect_exact_decode(dec);
}

// ---- engine level ---------------------------------------------------------

TEST(ByzantineEngine, DecodesExactlyAndBooksCorruptWorkAsWaste) {
  test::FunctionalMatVec f(12, 10);
  core::ClusterSpec spec = test::make_spec(test::uniform_traces(12));
  spec.byzantine.corrupt_workers = {11};  // e = 1 = n - k - 1
  spec.byzantine.seed = 99;
  core::EngineConfig cfg;
  cfg.chunks_per_partition = test::kChunks;
  cfg.oracle_speeds = true;
  core::CodedComputeEngine engine(f.job, spec, cfg);
  for (int round = 0; round < 3; ++round) {
    const core::RoundResult r = engine.run_round(f.x);
    ASSERT_TRUE(r.y.has_value());
    test::expect_close(*r.y, f.truth, 1e-9);
    EXPECT_EQ(r.stats.byzantine_detected, 1u);
    EXPECT_GT(r.stats.corrupted_chunks, 0u);
  }
  // The corrupted responder's compute is discarded, never credited.
  const sim::WorkerAccount& acct = engine.accounting().worker(11);
  EXPECT_EQ(acct.useful_work, 0.0);
  EXPECT_GT(acct.wasted_work, 0.0);
}

TEST(ByzantineEngine, ToleranceTaxonomyMatchesStrategies) {
  using core::StrategyKind;
  EXPECT_TRUE(core::strategy_tolerates_byzantine(StrategyKind::kS2C2));
  EXPECT_TRUE(core::strategy_tolerates_byzantine(StrategyKind::kMds));
  EXPECT_TRUE(core::strategy_tolerates_byzantine(StrategyKind::kPoly));
  EXPECT_FALSE(
      core::strategy_tolerates_byzantine(StrategyKind::kReplication));
  EXPECT_FALSE(core::strategy_tolerates_byzantine(StrategyKind::kOverDecomp));
}

// ---- harness level --------------------------------------------------------

harness::ScenarioConfig byz_config(bool functional) {
  harness::ScenarioConfig cfg;  // workers 12, k n-2, rounds 6, seed 42
  cfg.functional = functional;
  return cfg;
}

TEST(ByzantineCell, FunctionalCellDecodesWithinAcceptance) {
  const auto cell = harness::run_cell(
      byz_config(true), harness::StrategyKind::kS2C2,
      harness::WorkloadKind::kLogisticRegression,
      harness::TraceProfile::kByzantine);
  ASSERT_FALSE(cell.failed) << cell.error;
  EXPECT_TRUE(cell.decode_checked);
  EXPECT_LE(cell.max_decode_error, 1e-9);
  // e = min(n - k - 1, max(1, n/8)) = 1 corrupt worker, detected each round.
  EXPECT_EQ(cell.byzantine_detected, cell.rounds);
  EXPECT_GT(cell.corrupted_chunks, 0u);
  EXPECT_GT(cell.total_wasted, 0.0);
}

TEST(ByzantineCell, CostOnlyDetectionCountsAreExact) {
  const auto cell = harness::run_cell(
      byz_config(false), harness::StrategyKind::kS2C2,
      harness::WorkloadKind::kPageRank, harness::TraceProfile::kByzantine);
  ASSERT_FALSE(cell.failed) << cell.error;
  EXPECT_EQ(cell.byzantine_detected, cell.rounds);  // e = 1 per round
  EXPECT_GT(cell.corrupted_chunks, 0u);
}

TEST(ByzantineCell, UncodedBaselinesFailDeterministically) {
  for (const auto engine : {harness::StrategyKind::kReplication,
                            harness::StrategyKind::kOverDecomp}) {
    const auto first = harness::run_cell(
        byz_config(false), engine, harness::WorkloadKind::kLogisticRegression,
        harness::TraceProfile::kByzantine);
    const auto second = harness::run_cell(
        byz_config(false), engine, harness::WorkloadKind::kLogisticRegression,
        harness::TraceProfile::kByzantine);
    EXPECT_TRUE(first.failed);
    EXPECT_NE(first.error.find("byzantine"), std::string::npos) << first.error;
    EXPECT_EQ(first.fingerprint(), second.fingerprint());
  }
}

TEST(ByzantineCell, PolyEngineSurvivesByzantineOnItsHomeWorkload) {
  const auto cell = harness::run_cell(
      byz_config(true), harness::StrategyKind::kPoly,
      harness::WorkloadKind::kHessian, harness::TraceProfile::kByzantine);
  ASSERT_FALSE(cell.failed) << cell.error;
  EXPECT_TRUE(cell.decode_checked);
  EXPECT_LE(cell.max_decode_error, 1e-9);
  EXPECT_GT(cell.byzantine_detected, 0u);
}

TEST(ByzantineJob, CodedJobCompletesWithExactTrajectory) {
  harness::JobConfig cfg;
  cfg.app = harness::JobApp::kPageRank;
  cfg.strategy = harness::StrategyKind::kS2C2;
  cfg.trace = harness::TraceProfile::kByzantine;
  cfg.max_iterations = 4;
  const auto job = harness::run_job(cfg);
  ASSERT_FALSE(job.failed) << job.error;
  EXPECT_GT(job.byzantine_detected, 0u);
  EXPECT_GT(job.corrupted_chunks, 0u);
  EXPECT_LT(job.solution_error, 1e-8);
}

TEST(ByzantineJob, UncodedJobRecordsDeterministicFailure) {
  harness::JobConfig cfg;
  cfg.app = harness::JobApp::kLogReg;
  cfg.strategy = harness::StrategyKind::kReplication;
  cfg.trace = harness::TraceProfile::kByzantine;
  cfg.max_iterations = 3;
  const auto first = harness::run_job(cfg);
  const auto second = harness::run_job(cfg);
  EXPECT_TRUE(first.failed);
  EXPECT_NE(first.error.find("byzantine"), std::string::npos) << first.error;
  EXPECT_EQ(first.fingerprint(), second.fingerprint());
}

}  // namespace
}  // namespace s2c2
