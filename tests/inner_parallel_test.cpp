// Nested-parallelism regression suite: the intra-round data path
// (EngineParams::inner_jobs) composed with every outer sharding level must
// be bitwise invisible. The scenario-matrix contract under test:
//
//   run_matrix(cfg, axes, {.jobs = J, .inner_jobs = I})
//
// hashes identically for every (J x I) combination — outer cells shard
// across the runner's pool, each cell's engine fans its kernels, chunk
// products, and decode groups over its own inner pool, and the nesting
// contract (src/util/thread_pool.h) keeps the two levels from multiplying
// threads: a free parallel_for inside a pool worker runs serial, while the
// engine's member parallel_for is help-first and claims indices from the
// inner pool alongside the calling cell thread.
//
// These tests run REAL functional rounds (decode verified against the
// uncoded product), so a violation of any disjointness invariant — row
// tiles, (worker, chunk) slots, responder-set decode groups — shows up as
// a fingerprint diff, not just a crash. The suite rides in the TSan CI job
// (.github/workflows/ci.yml) so the same scenarios are also raced-checked.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "src/harness/matrix_runner.h"
#include "src/harness/scenario_matrix.h"
#include "src/harness/serve.h"

namespace s2c2 {
namespace {

/// The scenario slice every combination runs: two coded engines with
/// distinct decode paths (s2c2's adaptive groups, mds's fastest-k), one
/// uncoded baseline, over two workloads (dense + sparse kernels) and two
/// trace profiles (steady groups vs. churning responder sets). Functional,
/// so products are computed and verified, not just costed.
harness::MatrixAxes regression_axes() {
  harness::MatrixAxes axes;
  axes.engines = {harness::StrategyKind::kS2C2, harness::StrategyKind::kMds,
                  harness::StrategyKind::kReplication};
  axes.workloads = {harness::WorkloadKind::kLogisticRegression,
                    harness::WorkloadKind::kPageRank};
  axes.traces = {harness::TraceProfile::kControlledStragglers,
                 harness::TraceProfile::kVolatileCloud};
  return axes;
}

harness::ScenarioConfig regression_config() {
  harness::ScenarioConfig cfg;
  cfg.functional = true;
  cfg.rounds = 4;
  return cfg;
}

TEST(InnerParallel, MatrixFingerprintInvariantAcrossJobsByInnerJobs) {
  // The headline contract: the full (outer x inner) grid hashes to the
  // serial sweep's fingerprint, cell for cell.
  const harness::ScenarioConfig cfg = regression_config();
  const harness::MatrixAxes axes = regression_axes();
  const harness::MatrixResult serial =
      harness::run_matrix(cfg, axes, {.jobs = 1, .inner_jobs = 1});
  ASSERT_FALSE(serial.cells.empty());
  for (const harness::CellResult& cell : serial.cells) {
    EXPECT_FALSE(cell.failed) << cell.error;
  }
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t inner : {std::size_t{2}, std::size_t{4}}) {
      const harness::MatrixResult sharded = harness::run_matrix(
          cfg, axes, {.jobs = jobs, .inner_jobs = inner});
      ASSERT_EQ(sharded.cells.size(), serial.cells.size());
      for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        EXPECT_EQ(sharded.cells[i].fingerprint(),
                  serial.cells[i].fingerprint())
            << "jobs=" << jobs << " inner_jobs=" << inner << " cell " << i;
      }
      EXPECT_EQ(sharded.fingerprint(), serial.fingerprint())
          << "jobs=" << jobs << " inner_jobs=" << inner;
    }
  }
}

TEST(InnerParallel, SingleCellInvariantAcrossInnerJobs) {
  // run_cell at inner_jobs in {2, 4, 0 = hardware} against serial — the
  // config knob alone, no outer pool in the picture. Includes the decode
  // verification (functional), so the parallel decode's output bits are
  // checked against the direct product inside every run.
  harness::ScenarioConfig cfg = regression_config();
  const auto serial =
      harness::run_cell(cfg, harness::StrategyKind::kS2C2,
                        harness::WorkloadKind::kLogisticRegression,
                        harness::TraceProfile::kControlledStragglers);
  ASSERT_FALSE(serial.failed) << serial.error;
  EXPECT_TRUE(serial.decode_checked);
  for (const std::size_t inner :
       {std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    cfg.inner_jobs = inner;
    const auto cell =
        harness::run_cell(cfg, harness::StrategyKind::kS2C2,
                          harness::WorkloadKind::kLogisticRegression,
                          harness::TraceProfile::kControlledStragglers);
    EXPECT_EQ(cell.fingerprint(), serial.fingerprint())
        << "inner_jobs=" << inner;
    EXPECT_EQ(cell.max_decode_error, serial.max_decode_error)
        << "inner_jobs=" << inner;
  }
}

TEST(InnerParallel, ServeFingerprintInvariantAcrossInnerJobs) {
  // The coalesced serving layer drives the widest panels through the
  // parallel path (multi-RHS chunk spans, batched multi-RHS decode
  // groups); its whole-run fingerprint — every outcome's exact bits plus
  // the decode hit/miss counters — must not move.
  harness::ServeConfig cfg;
  cfg.workers = 24;
  cfg.requests = 24;
  cfg.max_batch = 8;
  cfg.functional = true;
  const harness::ServeResult serial = harness::run_serve(cfg);
  EXPECT_GT(serial.completed, 0u);
  cfg.inner_jobs = 4;
  const harness::ServeResult inner = harness::run_serve(cfg);
  EXPECT_EQ(inner.fingerprint(), serial.fingerprint());
  EXPECT_EQ(inner.max_error, serial.max_error);
  EXPECT_EQ(inner.decode.hits, serial.decode.hits);
  EXPECT_EQ(inner.decode.misses, serial.decode.misses);
}

}  // namespace
}  // namespace s2c2
