// Tests for the two uncoded baselines: LATE-style replication and
// Charm++-style over-decomposition.
#include <gtest/gtest.h>

#include "src/core/overdecomp_engine.h"
#include "src/core/replication_engine.h"
#include "src/util/rng.h"
#include "src/workload/trace_gen.h"
#include "tests/test_util.h"

namespace s2c2::core {
namespace {

using test::make_spec;

TEST(Replication, PlacementHasRReplicasPerPartition) {
  ReplicationConfig cfg;
  cfg.replication = 3;
  ReplicationEngine engine(1200, 100, ClusterSpec::uniform(12), cfg);
  for (std::size_t p = 0; p < 12; ++p) {
    const auto& holders = engine.placement()[p];
    EXPECT_EQ(holders.size(), 3u);
    EXPECT_EQ(holders[0], p);  // primary
    // Distinct holders.
    EXPECT_NE(holders[1], holders[0]);
    EXPECT_NE(holders[2], holders[0]);
    EXPECT_NE(holders[2], holders[1]);
  }
}

TEST(Replication, NoStragglersRunsAtBaseline) {
  util::Rng trng(1);
  ReplicationEngine engine(
      12000, 100, make_spec(workload::controlled_cluster_traces(12, 0, 0.0, trng)),
      {});
  const auto r = engine.run_round();
  EXPECT_GT(r.stats.latency(), 0.0);
  EXPECT_EQ(r.stats.data_moves, 0u);
}

TEST(Replication, StragglersTriggerSpeculationAndSlowdowns) {
  auto latency_with = [&](std::size_t stragglers) {
    util::Rng trng(2);
    ReplicationEngine engine(
        12000, 100,
        make_spec(
            workload::controlled_cluster_traces(12, stragglers, 0.0, trng)),
        {});
    return engine.run_rounds(3).back().stats.latency();
  };
  const double l0 = latency_with(0);
  const double l2 = latency_with(2);
  EXPECT_GT(l2, 1.5 * l0);  // speculation restarts cost ~a task
}

TEST(Replication, ManyStragglersDegradeSuperLinearly) {
  auto latency_with = [&](std::size_t stragglers) {
    util::Rng trng(3);
    ReplicationEngine engine(
        12000, 100,
        make_spec(
            workload::controlled_cluster_traces(12, stragglers, 0.0, trng)),
        {});
    return engine.run_rounds(2).back().stats.latency();
  };
  const double l0 = latency_with(0);
  const double l5 = latency_with(5);
  EXPECT_GT(l5 / l0, 2.0);
}

TEST(Replication, SpeculationWasteIsAccounted) {
  util::Rng trng(4);
  ReplicationEngine engine(
      12000, 100,
      make_spec(workload::controlled_cluster_traces(12, 2, 0.0, trng)), {});
  engine.run_rounds(3);
  EXPECT_GT(engine.accounting().total_wasted(), 0.0);
}

TEST(Replication, AllDeadThrows) {
  std::vector<sim::SpeedTrace> traces(4, sim::SpeedTrace::constant(0.0));
  ReplicationEngine engine(400, 10, make_spec(std::move(traces)), {});
  EXPECT_THROW(engine.run_round(), std::runtime_error);
}

TEST(OverDecomp, StableSpeedsNoMigrationsAfterWarmup) {
  util::Rng trng(5);
  // 20% spread, constant speeds: after round 1 the assignment is learned
  // and stays put.
  OverDecompositionEngine engine(
      12000, 100,
      make_spec(workload::controlled_cluster_traces(10, 0, 0.2, trng)), {});
  engine.run_rounds(2);  // warmup: learn speeds
  const std::size_t moves_before = engine.total_migrations();
  engine.run_rounds(5);
  EXPECT_EQ(engine.total_migrations(), moves_before);
}

TEST(OverDecomp, VolatileSpeedsForceMigrations) {
  util::Rng rng(6);
  auto series = workload::cloud_speed_corpus(
      10, 80, workload::volatile_cloud_config(), rng);
  ClusterSpec spec = make_spec(workload::traces_from_series(series, 0.5));
  OverDecompositionEngine engine(12000, 100, spec, {});
  engine.run_rounds(25);
  EXPECT_GT(engine.total_migrations(), 0u);
}

TEST(OverDecomp, StorageGrowsWithMigrations) {
  util::Rng rng(7);
  auto series = workload::cloud_speed_corpus(
      10, 80, workload::volatile_cloud_config(), rng);
  ClusterSpec spec = make_spec(workload::traces_from_series(series, 0.5));
  OverDecompositionEngine engine(12000, 100, spec, {});
  std::size_t initial = 0;
  for (std::size_t w = 0; w < 10; ++w) initial += engine.storage_bytes(w);
  engine.run_rounds(25);
  std::size_t final_storage = 0;
  for (std::size_t w = 0; w < 10; ++w) {
    final_storage += engine.storage_bytes(w);
  }
  EXPECT_GE(final_storage, initial);
  if (engine.total_migrations() > 0) {
    EXPECT_GT(final_storage, initial);
  }
}

TEST(OverDecomp, ReplicationFactorControlsInitialStorage) {
  OverDecompConfig thin;
  thin.replication_factor = 1.0;
  OverDecompConfig fat;
  fat.replication_factor = 1.42;
  OverDecompositionEngine a(12000, 100, ClusterSpec::uniform(10), thin);
  OverDecompositionEngine b(12000, 100, ClusterSpec::uniform(10), fat);
  std::size_t sa = 0, sb = 0;
  for (std::size_t w = 0; w < 10; ++w) {
    sa += a.storage_bytes(w);
    sb += b.storage_bytes(w);
  }
  EXPECT_GT(sb, sa);
  EXPECT_NEAR(static_cast<double>(sb) / static_cast<double>(sa), 1.42, 0.06);
}

TEST(OverDecomp, OracleTracksProportionalShares) {
  // 2:1 speeds with oracle predictions: fast worker should carry ~2x tasks,
  // making the makespan ~ total/Σspeed.
  std::vector<sim::SpeedTrace> traces{sim::SpeedTrace::constant(1.0),
                                      sim::SpeedTrace::constant(0.5)};
  OverDecompConfig cfg;
  cfg.oracle_speeds = true;
  OverDecompositionEngine engine(1200, 100, make_spec(std::move(traces)), cfg);
  const auto r = engine.run_rounds(3);
  // Ideal makespan: work = 2*1200*100/1e7 = 0.024 unit-seconds over total
  // speed 1.5 -> 0.016s, plus comm and integer task rounding.
  EXPECT_NEAR(r.back().stats.latency(), 0.016, 0.004);
}

// ---- product forwarding (the run_round(x) unification) -------------------
// The uncoded baselines must forward the exact product in functional mode,
// so job-driver convergence loops drive every strategy through one code
// path instead of strategy-specific latency-only shims. Mirrors the PR 3
// CodedComputeEngine::run_rounds regression: an engine that silently drops
// the product turns convergence checks into latency measurements.

TEST(Replication, FunctionalRoundForwardsExactProduct) {
  util::Rng rng(11);
  const auto a = linalg::Matrix::random_uniform(96, 24, rng);
  linalg::Vector x(24);
  for (auto& v : x) v = rng.normal();
  const linalg::Vector truth = a.matvec(x);

  ReplicationEngine engine(
      a.rows(), a.cols(), ClusterSpec::uniform(12), {},
      [&a](const linalg::Matrix& in) { return a.matmat(in); });
  // Every round of a functional loop must carry the product (run_rounds
  // would silently go latency-only otherwise).
  const auto rounds = engine.run_rounds(3, x);
  ASSERT_EQ(rounds.size(), 3u);
  for (const RoundResult& r : rounds) {
    ASSERT_TRUE(r.y.has_value());
    EXPECT_EQ(linalg::max_abs_diff(*r.y, truth), 0.0);  // exact, not decoded
  }
  // Latency-only rounds stay latency-only.
  EXPECT_FALSE(engine.run_round().y.has_value());
}

TEST(OverDecomp, FunctionalRoundForwardsExactProduct) {
  util::Rng rng(12);
  const auto a = linalg::Matrix::random_uniform(80, 20, rng);
  linalg::Vector x(20);
  for (auto& v : x) v = rng.normal();
  const linalg::Vector truth = a.matvec(x);

  OverDecompConfig cfg;
  cfg.oracle_speeds = true;
  OverDecompositionEngine engine(
      a.rows(), a.cols(), ClusterSpec::uniform(10), cfg, nullptr,
      [&a](const linalg::Matrix& in) { return a.matmat(in); });
  const auto rounds = engine.run_rounds(2, x);
  for (const RoundResult& r : rounds) {
    ASSERT_TRUE(r.y.has_value());
    EXPECT_EQ(linalg::max_abs_diff(*r.y, truth), 0.0);
  }
  EXPECT_FALSE(engine.run_round().y.has_value());
}

// ---- block product forwarding (the multi-RHS data path) ------------------
// In block rounds the baselines must forward the exact b-column product in
// one DirectMultiply call, with each column bitwise equal to the matvec on
// that column — not a silent column-at-a-time degradation.

TEST(Replication, BlockRoundForwardsExactBlockProduct) {
  util::Rng rng(13);
  const auto a = linalg::Matrix::random_uniform(96, 24, rng);
  const auto x_block = linalg::Matrix::random_normal(24, 3, rng);

  ReplicationEngine engine(
      a.rows(), a.cols(), ClusterSpec::uniform(12), {},
      [&a](const linalg::Matrix& in) { return a.matmat(in); });
  ASSERT_TRUE(engine.supports_block_rounds());
  const RoundResult r = engine.run_round_block(x_block, 3);
  ASSERT_TRUE(r.y_block.has_value());
  ASSERT_EQ(r.y_block->rows(), a.rows());
  ASSERT_EQ(r.y_block->cols(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    linalg::Vector col(a.cols());
    for (std::size_t i = 0; i < a.cols(); ++i) col[i] = x_block(i, j);
    const linalg::Vector truth = a.matvec(col);
    for (std::size_t i = 0; i < a.rows(); ++i) {
      EXPECT_EQ((*r.y_block)(i, j), truth[i]);  // bitwise, not approximate
    }
  }
}

TEST(Replication, BlockRoundWidthOneMatchesClassicRound) {
  util::Rng rng(14);
  const auto a = linalg::Matrix::random_uniform(80, 20, rng);
  linalg::Vector x(20);
  for (auto& v : x) v = rng.normal();
  linalg::Matrix panel(20, 1, {x.begin(), x.end()});

  const auto direct = [&a](const linalg::Matrix& in) { return a.matmat(in); };
  ReplicationEngine classic(a.rows(), a.cols(), ClusterSpec::uniform(12), {},
                            direct);
  ReplicationEngine block(a.rows(), a.cols(), ClusterSpec::uniform(12), {},
                          direct);
  const RoundResult rc = classic.run_round(x);
  const RoundResult rb = block.run_round_block(panel, 1);
  ASSERT_TRUE(rc.y.has_value());
  ASSERT_TRUE(rb.y.has_value());
  EXPECT_EQ(*rc.y, *rb.y);  // bitwise: width 1 routes through run_round
  EXPECT_EQ(rc.stats.end, rb.stats.end);
}

TEST(OverDecomp, BlockRoundForwardsExactBlockProduct) {
  util::Rng rng(15);
  const auto a = linalg::Matrix::random_uniform(80, 20, rng);
  const auto x_block = linalg::Matrix::random_normal(20, 4, rng);

  OverDecompConfig cfg;
  cfg.oracle_speeds = true;
  OverDecompositionEngine engine(
      a.rows(), a.cols(), ClusterSpec::uniform(10), cfg, nullptr,
      [&a](const linalg::Matrix& in) { return a.matmat(in); });
  ASSERT_TRUE(engine.supports_block_rounds());
  const RoundResult r = engine.run_round_block(x_block, 4);
  ASSERT_TRUE(r.y_block.has_value());
  const linalg::Matrix truth = a.matmat(x_block);
  EXPECT_EQ(truth.max_abs_diff(*r.y_block), 0.0);
  EXPECT_FALSE(r.y.has_value());
}

TEST(Baselines, BlockRoundScalesAccountedWorkLinearly) {
  // Cost-only block round at b = 4 vs b = 1 on identical constant-speed
  // clusters: per-round useful work must scale exactly 4x (binary scaling
  // commutes with the accounting sums bit for bit).
  std::vector<sim::SpeedTrace> t1, t4;
  for (std::size_t w = 0; w < 8; ++w) {
    t1.push_back(sim::SpeedTrace::constant(1.0 + 0.01 * double(w)));
    t4.push_back(sim::SpeedTrace::constant(1.0 + 0.01 * double(w)));
  }
  ReplicationEngine e1(1200, 100, make_spec(std::move(t1)), {});
  ReplicationEngine e4(1200, 100, make_spec(std::move(t4)), {});
  e1.run_round_block({}, 1);
  e4.run_round_block({}, 4);
  const double u1 = e1.accounting().total_useful();
  const double u4 = e4.accounting().total_useful();
  EXPECT_GT(u1, 0.0);
  EXPECT_EQ(u4, 4.0 * u1);
}

TEST(Baselines, CostOnlyEngineIgnoresInputVector) {
  // Without a functional operator an input vector cannot produce a
  // product; the round must stay latency-only rather than fabricate one.
  ReplicationEngine engine(1200, 100, ClusterSpec::uniform(12), {});
  linalg::Vector x(100, 1.0);
  EXPECT_FALSE(engine.run_round(x).y.has_value());
}

}  // namespace
}  // namespace s2c2::core
