// Tests for the structured O(k²) Björck–Pereyra Vandermonde solver —
// correctness against known interpolants and the dense LU path, numerical
// behaviour on ill-conditioned node sets, and input validation. Cost model
// context: docs/PERFORMANCE.md.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/linalg/lu.h"
#include "src/linalg/vandermonde.h"
#include "src/util/rng.h"

namespace s2c2::linalg {
namespace {

double max_abs(std::span<const double> a, std::span<const double> b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

TEST(VandermondeSolver, RecoversKnownPolynomialCoefficients) {
  // p(x) = 2 + 3x + x²  sampled at {0, 1, 2}: V·[2,3,1]ᵀ = [2, 6, 12]ᵀ.
  const VandermondeSolver solver({0.0, 1.0, 2.0});
  const Vector a = solver.solve(std::vector<double>{2.0, 6.0, 12.0});
  ASSERT_EQ(a.size(), 3u);
  EXPECT_NEAR(a[0], 2.0, 1e-12);
  EXPECT_NEAR(a[1], 3.0, 1e-12);
  EXPECT_NEAR(a[2], 1.0, 1e-12);
}

TEST(VandermondeSolver, MatchesDenseLuOnRandomNodes) {
  util::Rng rng(11);
  for (std::size_t k : {2u, 5u, 9u, 16u}) {
    std::vector<double> pts(k);
    for (std::size_t i = 0; i < k; ++i) {
      pts[i] = -1.0 + 2.0 * (static_cast<double>(i) + rng.uniform(0.1, 0.9)) /
                          static_cast<double>(k);
    }
    std::vector<double> b(k);
    for (auto& v : b) v = rng.normal();

    const VandermondeSolver solver(pts);
    const Vector structured = solver.solve(b);
    const LuFactorization lu(vandermonde(pts, k));
    const Vector dense = lu.solve(b);
    // Agreement degrades with the Vandermonde conditioning (cond grows
    // exponentially in k; at k = 16 both solvers hold ~5 fewer digits), so
    // the bar is conditioning-aware: the two algorithms may differ only
    // where the *problem* has already lost the digits.
    const double tol = k <= 9 ? 1e-7 : 1e-3;
    EXPECT_LT(max_abs(structured, dense), tol) << "k=" << k;
  }
}

TEST(VandermondeSolver, MultiRhsSolveMatchesColumnwiseSolves) {
  util::Rng rng(12);
  const std::size_t k = 7, width = 5;
  std::vector<double> pts(k);
  for (std::size_t i = 0; i < k; ++i) {
    pts[i] = 0.2 + static_cast<double>(i) + rng.uniform(0.0, 0.5);
  }
  std::vector<double> rhs(k * width);
  for (auto& v : rhs) v = rng.normal();

  const VandermondeSolver solver(pts);
  std::vector<double> batched = rhs;
  solver.solve_inplace(batched, width);
  for (std::size_t c = 0; c < width; ++c) {
    std::vector<double> col(k);
    for (std::size_t r = 0; r < k; ++r) col[r] = rhs[r * width + c];
    const Vector single = solver.solve(col);
    for (std::size_t r = 0; r < k; ++r) {
      EXPECT_DOUBLE_EQ(batched[r * width + c], single[r]) << r << "," << c;
    }
  }
}

TEST(VandermondeSolver, NoWorseThanDenseLuOnIllConditionedNodes) {
  // Equispaced positive nodes in (0, 1]: the explicit Vandermonde matrix
  // is catastrophically ill-conditioned (cond ~ 10¹⁴ at k = 20), so *no*
  // solver can recover the coefficients to better than ~cond·eps once the
  // samples were rounded to double. The meaningful claims: the structured
  // path is never worse than LU on the formed matrix (Björck–Pereyra works
  // off the nodes and skips the explicit matrix entirely), and its
  // interpolant still reproduces the samples — small residual — even where
  // the coefficient error is large.
  const std::size_t k = 20;
  std::vector<double> pts(k);
  for (std::size_t i = 0; i < k; ++i) {
    pts[i] = static_cast<double>(i + 1) / static_cast<double>(k);
  }
  util::Rng rng(13);
  std::vector<double> coeff(k);
  for (auto& v : coeff) v = rng.uniform(-1.0, 1.0);
  const Matrix v = vandermonde(pts, k);
  std::vector<double> b(k, 0.0);
  double b_scale = 1.0;
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) b[r] += v(r, c) * coeff[c];
    b_scale = std::max(b_scale, std::abs(b[r]));
  }

  const VandermondeSolver solver(pts);
  const Vector structured = solver.solve(b);
  const LuFactorization lu(v);
  const Vector dense = lu.solve(b);

  const double err_structured = max_abs(structured, coeff);
  const double err_dense = max_abs(dense, coeff);
  EXPECT_LE(err_structured, std::max(err_dense, 1e-10));

  double residual = 0.0;
  for (std::size_t r = 0; r < k; ++r) {
    double y = 0.0;
    for (std::size_t c = k; c-- > 0;) y = y * pts[r] + structured[c];
    residual = std::max(residual, std::abs(y - b[r]));
  }
  EXPECT_LT(residual / b_scale, 1e-9);
}

TEST(VandermondeSolver, RejectsCoincidentNodesAndBadLayouts) {
  EXPECT_THROW(VandermondeSolver({1.0, 2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(VandermondeSolver({}), std::invalid_argument);
  const VandermondeSolver solver({0.0, 1.0});
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(solver.solve_inplace(wrong, 1), std::invalid_argument);
  EXPECT_THROW(solver.solve_inplace(wrong, 0), std::invalid_argument);
}

}  // namespace
}  // namespace s2c2::linalg
