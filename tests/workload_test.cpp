// Tests for synthetic datasets and graphs.
#include <gtest/gtest.h>

#include "src/workload/datasets.h"
#include "src/workload/graphs.h"

namespace s2c2::workload {
namespace {

TEST(Datasets, ShapeAndLabels) {
  util::Rng rng(1);
  const Dataset ds = make_classification(10, 4, rng);
  EXPECT_EQ(ds.x.rows(), 10u);
  EXPECT_EQ(ds.x.cols(), 4u);
  EXPECT_EQ(ds.y.size(), 10u);
  for (double y : ds.y) EXPECT_TRUE(y == 1.0 || y == -1.0);
}

TEST(Datasets, SeparableWithLargeMargin) {
  util::Rng rng(2);
  const Dataset ds = make_classification(200, 10, rng, 6.0, 0.5);
  // A trivial centroid classifier should get almost everything right.
  linalg::Vector centroid(10, 0.0);
  for (std::size_t i = 0; i < ds.x.rows(); ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      centroid[j] += ds.y[i] * ds.x(i, j);
    }
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.x.rows(); ++i) {
    const double score = linalg::dot(ds.x.row(i), centroid);
    if (score * ds.y[i] > 0.0) ++correct;
  }
  EXPECT_GT(correct, 190u);
}

TEST(Graphs, PowerLawShape) {
  util::Rng rng(3);
  const auto g = power_law_digraph(200, 3, rng);
  EXPECT_EQ(g.rows(), 200u);
  EXPECT_GT(g.nnz(), 200u);
}

TEST(Graphs, PowerLawHasHubs) {
  util::Rng rng(4);
  const auto g = power_law_digraph(500, 4, rng);
  // In-degree distribution should be skewed: max in-degree well above mean.
  const auto gt = g.transposed();
  const auto rp = gt.row_ptr();
  std::size_t max_in = 0;
  for (std::size_t r = 0; r < gt.rows(); ++r) {
    max_in = std::max(max_in, rp[r + 1] - rp[r]);
  }
  const double mean_in =
      static_cast<double>(g.nnz()) / static_cast<double>(g.rows());
  EXPECT_GT(static_cast<double>(max_in), 5.0 * mean_in);
}

TEST(Graphs, RandomUndirectedIsSymmetric) {
  util::Rng rng(5);
  const auto g = random_undirected(40, 0.2, rng);
  const auto d = g.to_dense();
  const auto dt = g.transposed().to_dense();
  EXPECT_LT(d.max_abs_diff(dt), 1e-15);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_DOUBLE_EQ(d(i, i), 0.0);
}

TEST(Graphs, LinkMatrixColumnsSumToOne) {
  util::Rng rng(6);
  const auto adj = power_law_digraph(50, 3, rng);
  const auto m = link_matrix(adj);
  const auto dense = m.to_dense();
  const auto adj_dense = adj.to_dense();
  for (std::size_t j = 0; j < 50; ++j) {
    double outdeg = 0.0;
    for (std::size_t c = 0; c < 50; ++c) outdeg += adj_dense(j, c);
    double col_sum = 0.0;
    for (std::size_t i = 0; i < 50; ++i) col_sum += dense(i, j);
    if (outdeg > 0.0) {
      EXPECT_NEAR(col_sum, 1.0, 1e-9) << "column " << j;
    } else {
      EXPECT_DOUBLE_EQ(col_sum, 0.0);
    }
  }
}

TEST(Graphs, LaplacianRowsSumToZero) {
  util::Rng rng(7);
  const auto adj = random_undirected(30, 0.3, rng);
  const auto lap = combinatorial_laplacian(adj);
  const linalg::Vector ones(30, 1.0);
  const auto y = lap.matvec(ones);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Graphs, LaplacianPositiveSemidefiniteQuadraticForm) {
  util::Rng rng(8);
  const auto adj = random_undirected(25, 0.25, rng);
  const auto lap = combinatorial_laplacian(adj);
  for (int trial = 0; trial < 10; ++trial) {
    linalg::Vector x(25);
    for (auto& v : x) v = rng.normal();
    const auto lx = lap.matvec(x);
    EXPECT_GE(linalg::dot(x, lx), -1e-9);
  }
}

}  // namespace
}  // namespace s2c2::workload
