// LT/peeling decoder tests (coding/lt_code.h): decode correctness against
// the encoded ground truth over ~100 seeded geometry draws — including
// plans that stall peeling and take the dense-LU inactivation fallback —
// plus the determinism and threshold-geometry contracts the lt engine and
// its DecodeContext backend lean on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "src/coding/lt_code.h"
#include "src/util/hash.h"
#include "src/util/rng.h"

namespace s2c2::coding {
namespace {

/// Source budget the lt engine uses: a quorum-worth of symbols deflated by
/// the decode overhead, so min_workers() stays ~ k.
std::size_t source_budget(std::size_t k, std::size_t c, double overhead) {
  return std::max<std::size_t>(
      2, static_cast<std::size_t>(static_cast<double>(k * c) /
                                  (1.0 + overhead)));
}

/// Encodes `x` (sources * v values, row-major blocks) into the workers'
/// symbol batches in the collection order the engine uses (responder-major,
/// chunk-minor): symbol value = sum of its neighbor source blocks.
std::vector<double> encode(const LtCode& code,
                           std::span<const std::size_t> workers,
                           std::span<const double> x, std::size_t v) {
  std::vector<double> symbols;
  symbols.reserve(workers.size() * code.chunks_per_worker() * v);
  for (const std::size_t w : workers) {
    for (std::size_t j = 0; j < code.chunks_per_worker(); ++j) {
      const std::size_t begin = symbols.size();
      symbols.resize(begin + v, 0.0);
      for (const std::uint32_t b : code.neighbors(code.symbol_id(w, j))) {
        for (std::size_t i = 0; i < v; ++i) {
          symbols[begin + i] += x[static_cast<std::size_t>(b) * v + i];
        }
      }
    }
  }
  return symbols;
}

/// Smallest decodable responder prefix of `order` (the engine's stopping
/// rule); empty when even the full set cannot decode.
std::vector<std::size_t> decodable_prefix(const LtCode& code,
                                          std::span<const std::size_t> order) {
  for (std::size_t count = code.min_workers(); count <= order.size();
       ++count) {
    std::vector<std::size_t> prefix(order.begin(),
                                    order.begin() +
                                        static_cast<std::ptrdiff_t>(count));
    std::sort(prefix.begin(), prefix.end());
    if (code.plan_for(prefix).decodable) return prefix;
  }
  return {};
}

TEST(LtCode, DecodeMatchesEncodedReferenceOverSeededDraws) {
  // ~100 seeded draws over varying (n, chunks, sources, subset, RHS
  // width): decode must reproduce the exact source blocks the symbols
  // were encoded from (the dense-reference solution of the consistent
  // full-rank system) to 1e-9. Counts how many plans finished by pure
  // peeling vs the dense-LU stalled-tail fallback — both paths must be
  // exercised, or the fallback would be dead code riding on luck.
  std::size_t decoded = 0;
  std::size_t peel_only = 0;
  std::size_t fallback = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    util::Rng rng(util::mix64(seed ^ 0x17c0de7e57ull));
    const std::size_t n = 6 + seed % 7;   // 6..12 workers
    const std::size_t c = 4 + seed % 5;   // 4..8 symbols per worker
    const std::size_t k = n - 2;
    const LtCode code(n, c, source_budget(k, c, 0.08), 0x5eedull + seed);

    // Random responder arrival order; decode from the smallest decodable
    // prefix, so minimal (stall-prone) symbol sets are the common case.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    rng.shuffle(order);
    const std::vector<std::size_t> workers = decodable_prefix(code, order);
    if (workers.empty()) continue;  // counted via the EXPECT below

    const LtPeelPlan plan = code.plan_for(workers);
    ASSERT_TRUE(plan.decodable);
    const std::size_t v = 1 + seed % 3;  // RHS width 1..3
    std::vector<double> x(code.sources() * v);
    for (auto& val : x) val = rng.normal();
    const std::vector<double> symbols = encode(code, workers, x, v);
    ASSERT_EQ(symbols.size(), plan.rows * v);

    std::vector<double> out(code.sources() * v, 0.0);
    code.decode(plan, symbols, v, out);
    double max_err = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      max_err = std::max(max_err, std::abs(out[i] - x[i]));
    }
    EXPECT_LT(max_err, 1e-9) << "seed " << seed;
    ++decoded;
    (plan.tail_size() > 0 ? fallback : peel_only) += 1;
  }
  // The threshold budget makes full-fleet decode failure an extreme
  // outlier; nearly every draw must decode, by both schedule shapes.
  EXPECT_GE(decoded, 95u);
  EXPECT_GT(peel_only, 0u);
  EXPECT_GT(fallback, 0u) << "no draw exercised the stalled-tail LU path";
}

TEST(LtCode, SymbolGraphIsAPureFunctionOfSeedAndSymbolId) {
  const LtCode a(8, 6, 30, 0xabcdull);
  const LtCode b(8, 6, 30, 0xabcdull);
  const LtCode other(8, 6, 30, 0xabceull);
  bool any_diff = false;
  for (std::size_t s = 0; s < a.total_symbols(); ++s) {
    const auto na = a.neighbors(s);
    const auto nb = b.neighbors(s);
    ASSERT_EQ(na.size(), nb.size());
    EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin()));
    // Neighbors are ascending and distinct (the decode replay relies on
    // a well-formed incidence structure).
    EXPECT_GE(a.degree(s), 1u);
    EXPECT_TRUE(std::is_sorted(na.begin(), na.end()));
    EXPECT_EQ(std::set<std::uint32_t>(na.begin(), na.end()).size(),
              na.size());
    const auto no = other.neighbors(s);
    any_diff = any_diff || no.size() != na.size() ||
               !std::equal(na.begin(), na.end(), no.begin());
  }
  EXPECT_TRUE(any_diff) << "different seeds drew identical symbol graphs";
}

TEST(LtCode, ThresholdGeometryBoundsTheQuorum) {
  for (const std::size_t n : {6u, 10u, 16u}) {
    const std::size_t c = 6;
    const std::size_t k = n - 2;
    const LtCode code(n, c, source_budget(k, c, 0.08), 99);
    // Threshold covers the sources with the configured overhead and stays
    // reachable; min_workers is the matching whole-responder count, and
    // the source deflation keeps it within the MDS quorum k.
    EXPECT_GE(code.decode_threshold(), code.sources());
    EXPECT_LE(code.decode_threshold(), code.total_symbols());
    EXPECT_GE(code.min_workers() * c, code.decode_threshold());
    EXPECT_LE(code.min_workers(), k);

    // The information-theoretic floor: fewer collected symbols than
    // sources can never decode, whatever the graph draw. (The threshold
    // itself carries overhead slack, so min_workers - 1 responders may
    // occasionally still close the peel — which is exactly why the
    // engine's stopping rule asks plan_for instead of trusting the
    // count alone.)
    std::vector<std::size_t> few((code.sources() - 1) / c);
    std::iota(few.begin(), few.end(), std::size_t{0});
    EXPECT_FALSE(code.plan_for(few).decodable);
  }
}

TEST(LtCode, PlanIsStructurallyConsistent) {
  const LtCode code(10, 6, source_budget(8, 6, 0.08), 0xfeedull);
  std::vector<std::size_t> workers(code.n());
  std::iota(workers.begin(), workers.end(), std::size_t{0});
  const LtPeelPlan plan = code.plan_for(workers);
  ASSERT_TRUE(plan.decodable);
  EXPECT_EQ(plan.rows, code.total_symbols());
  EXPECT_EQ(plan.row_symbol.size(), plan.rows);
  // Every source is resolved exactly once: by a peel step or the tail.
  std::vector<std::size_t> resolved(code.sources(), 0);
  for (const auto& [row, src] : plan.steps) {
    ASSERT_LT(row, plan.rows);
    resolved[src] += 1;
  }
  for (const std::uint32_t src : plan.fallback_sources) resolved[src] += 1;
  for (std::size_t s = 0; s < code.sources(); ++s) {
    EXPECT_EQ(resolved[s], 1u) << "source " << s;
  }
  // Edge count matches the collected rows' degrees (the cost model's E).
  std::size_t edges = 0;
  for (const std::uint32_t sym : plan.row_symbol) edges += code.degree(sym);
  EXPECT_EQ(plan.edges, edges);
}

}  // namespace
}  // namespace s2c2::coding
