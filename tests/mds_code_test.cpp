// Tests for MDS encoding of dense and sparse operators.
#include <gtest/gtest.h>

#include "src/coding/mds_code.h"
#include "src/util/rng.h"

namespace s2c2::coding {
namespace {

TEST(MdsCode, PartitionRowsCeilDivision) {
  const MdsCode code(4, 3);
  EXPECT_EQ(code.partition_rows(9), 3u);
  EXPECT_EQ(code.partition_rows(10), 4u);
  EXPECT_THROW((void)code.partition_rows(0), std::invalid_argument);
}

TEST(MdsCode, SystematicPartitionsAreRawBlocks) {
  util::Rng rng(7);
  const linalg::Matrix a = linalg::Matrix::random_uniform(6, 4, rng);
  const MdsCode code(5, 3);
  const auto parts = code.encode(a);
  ASSERT_EQ(parts.size(), 5u);
  // Partition 1 should equal rows [2,4) of A.
  const linalg::Vector x{1.0, -1.0, 0.5, 2.0};
  const auto y = parts[1].matvec(x);
  const auto direct = a.row_block(2, 4).matvec(x);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], direct[i], 1e-12);
}

TEST(MdsCode, ParityPartitionIsGeneratorCombination) {
  util::Rng rng(9);
  const linalg::Matrix a = linalg::Matrix::random_uniform(4, 3, rng);
  const MdsCode code(4, 2, ParityKind::kVandermonde);
  const auto parts = code.encode(a);
  // Worker 3 stores A1 + 2·A2 (paper's example).
  const linalg::Vector x{1.0, 2.0, 3.0};
  const auto y = parts[3].matvec(x);
  const auto a1 = a.row_block(0, 2).matvec(x);
  const auto a2 = a.row_block(2, 4).matvec(x);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], a1[i] + 2.0 * a2[i], 1e-12);
  }
}

TEST(MdsCode, UnevenRowsArePaddedWithZeros) {
  util::Rng rng(11);
  const linalg::Matrix a = linalg::Matrix::random_uniform(5, 2, rng);
  const MdsCode code(3, 2);
  const auto parts = code.encode(a);
  // partition_rows = ceil(5/2) = 3; last data block has a zero pad row.
  ASSERT_EQ(parts[0].rows(), 3u);
  const linalg::Vector x{1.0, 1.0};
  const auto y1 = parts[1].matvec(x);
  // Row 2 of partition 1 corresponds to (padded) row 5 of A -> zero.
  EXPECT_DOUBLE_EQ(y1[2], 0.0);
}

TEST(MdsCode, SparseSystematicPartitionsStaySparse) {
  const linalg::CsrMatrix a(
      4, 4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}, {3, 0, 4.0}});
  const MdsCode code(4, 2);
  const auto parts = code.encode(a);
  EXPECT_TRUE(parts[0].is_sparse());
  EXPECT_TRUE(parts[1].is_sparse());
  EXPECT_FALSE(parts[2].is_sparse());  // parity densifies
  EXPECT_FALSE(parts[3].is_sparse());
}

TEST(MdsCode, SparseStorageSmallerThanDenseForSystematic) {
  std::vector<linalg::Triplet> trips;
  for (std::size_t i = 0; i < 100; ++i) trips.push_back({i, i, 1.0});
  const linalg::CsrMatrix a(100, 100, trips);
  const MdsCode code(4, 2);
  const auto parts = code.encode(a);
  EXPECT_LT(parts[0].storage_bytes(), parts[2].storage_bytes());
}

TEST(MdsCode, SparseEncodeMatchesDenseEncode) {
  util::Rng rng(13);
  std::vector<linalg::Triplet> trips;
  for (int i = 0; i < 60; ++i) {
    trips.push_back({static_cast<std::size_t>(rng.uniform_int(0, 9)),
                     static_cast<std::size_t>(rng.uniform_int(0, 7)),
                     rng.normal()});
  }
  const linalg::CsrMatrix sparse(10, 8, trips);
  const linalg::Matrix dense = sparse.to_dense();
  const MdsCode code(5, 2);
  const auto sp = code.encode(sparse);
  const auto dp = code.encode(dense);
  linalg::Vector x(8);
  for (auto& v : x) v = rng.normal();
  for (std::size_t w = 0; w < 5; ++w) {
    const auto ys = sp[w].matvec(x);
    const auto yd = dp[w].matvec(x);
    ASSERT_EQ(ys.size(), yd.size());
    for (std::size_t i = 0; i < ys.size(); ++i) {
      EXPECT_NEAR(ys[i], yd[i], 1e-10) << "worker " << w;
    }
  }
}

TEST(EncodedPartition, MatvecRowsSubrange) {
  util::Rng rng(17);
  const linalg::Matrix m = linalg::Matrix::random_uniform(6, 3, rng);
  const EncodedPartition part{linalg::Matrix(m)};
  linalg::Vector x{1.0, 2.0, -1.0};
  std::vector<double> out(2);
  part.matvec_rows(2, 4, x, out);
  const auto full = m.matvec(x);
  EXPECT_NEAR(out[0], full[2], 1e-12);
  EXPECT_NEAR(out[1], full[3], 1e-12);
  EXPECT_THROW(part.matvec_rows(5, 7, x, out), std::invalid_argument);
}

}  // namespace
}  // namespace s2c2::coding
