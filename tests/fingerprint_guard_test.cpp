// Golden-fingerprint guard for the refactor-sensitive sweeps.
//
// These fingerprints hash the exact bit patterns of every simulated round
// (latencies, accounting totals, decode errors) for pinned seeds, so ANY
// behavioral drift in the engines, the round lifecycle, the harness
// salting, or the predictor plumbing shows up as a mismatch here — even a
// last-bit change in one double. Refactors (engine unification, executor
// changes) must keep all four goldens byte-identical; a legitimate
// behavioral change must update them in the same commit that explains why.
//
// To regenerate after an intentional change: run this suite and copy the
// "actual" values from the failure messages. (Do NOT copy fingerprints
// from the CLIs: scenario_cli --matrix goes through the widened
// matrix-runner grid and repro_cli through ReportConfig defaults, both of
// which hash different cell sets than the plain sweeps pinned here.)
//
// Caveat (same as docs/ARCHITECTURE.md's determinism contract): the values
// are stable per toolchain — one compiler/libm pair reproduces them
// bit-for-bit at any optimization level or thread count, but a different
// libm may legitimately move low-order bits. CI pins one toolchain.
#include <gtest/gtest.h>

#include "src/harness/job_driver.h"
#include "src/harness/matrix_runner.h"

namespace s2c2 {
namespace {

// Pinned at PR 5 (engine unification), seed 42.
constexpr char kSmallCostOnlyGolden[] = "f0771b8a4ccac94c";
constexpr char kSmallFunctionalGolden[] = "c491678f9207cf5c";
constexpr char kLargeScaleCellGolden[] = "52243eed9f56ea89";
constexpr char kJobSuiteGolden[] = "16e232dec5ebdda4";
// Pinned at PR 6 (telemetry + byzantine verification), seed 42. Unlike the
// PR 5 goldens, robustness-profile cells also hash the byzantine/health
// counters (byzantine_detected, corrupted_chunks, degrading_workers,
// health_min_ttf), so this golden additionally guards the detection and
// telemetry pipelines — and the uncoded baselines' deterministic failures.
constexpr char kRobustnessSliceGolden[] = "3fddcc5fa8ba4a99";
// Pinned at PR 8 (rateless-LT + adaptive gradient coding), seed 42: the
// new kinds got NEW engine-axis ids (lt=4, agc=5) rather than renumbering
// the legacy wire ids, so this golden guards the new engines' full
// functional path (threshold collection, peel decode, per-round
// redundancy) while the PR 5/6 goldens above must stay byte-identical.
constexpr char kLtAgcSliceGolden[] = "21727bca44e20aec";

harness::ScenarioConfig base_config() {
  harness::ScenarioConfig cfg;  // workers 12, k n-2, rounds 6, seed 42
  return cfg;
}

TEST(FingerprintGuard, SmallCostOnlyMatrix) {
  const auto m = harness::run_scenario_matrix(base_config());
  EXPECT_EQ(m.fingerprint(), kSmallCostOnlyGolden);
}

TEST(FingerprintGuard, SmallFunctionalMatrix) {
  harness::ScenarioConfig cfg = base_config();
  cfg.functional = true;
  const auto m = harness::run_scenario_matrix(cfg);
  EXPECT_EQ(m.fingerprint(), kSmallFunctionalGolden);
}

// One thousand-worker cell (k = 998 by the n - 2 rule, stragglers
// rescaled): exercises the cached decode path and the proportional
// allocator at fleet scale.
TEST(FingerprintGuard, LargeScaleCell) {
  const harness::ScenarioConfig cfg =
      harness::cell_config(base_config(), 1000, harness::PredictorKind::kOracle);
  const auto cell =
      harness::run_cell(cfg, harness::StrategyKind::kS2C2,
                        harness::WorkloadKind::kLogisticRegression,
                        harness::TraceProfile::kControlledStragglers);
  EXPECT_FALSE(cell.failed) << cell.error;
  EXPECT_EQ(cell.fingerprint(), kLargeScaleCellGolden);
}

// The byzantine + fail-slow slice of the robustness sweep (every engine x
// workload on the last-value predictor), run serially and on a 4-thread
// pool: the two results must be byte-identical (the runner's determinism
// contract) and match the pinned golden.
TEST(FingerprintGuard, RobustnessSliceMatrix) {
  harness::MatrixAxes axes = harness::MatrixAxes::robustness();
  axes.traces = {harness::TraceProfile::kFailSlow,
                 harness::TraceProfile::kByzantine};
  const auto serial =
      harness::run_matrix(base_config(), axes, {.jobs = 1});
  const auto pooled =
      harness::run_matrix(base_config(), axes, {.jobs = 4});
  EXPECT_EQ(serial.fingerprint(), pooled.fingerprint());
  EXPECT_EQ(serial.fingerprint(), kRobustnessSliceGolden);
}

// The {lt, agc} functional slice over a dense and a sparse workload on
// the original controlled/volatile traces: threshold collection and the
// peel decoder (lt) plus predicted-straggler redundancy (agc), end to end
// with verified decodes.
TEST(FingerprintGuard, LtAgcSliceMatrix) {
  harness::ScenarioConfig cfg = base_config();
  cfg.functional = true;
  const std::vector<harness::StrategyKind> engines = {
      harness::StrategyKind::kLt, harness::StrategyKind::kAgc};
  const std::vector<harness::WorkloadKind> workloads = {
      harness::WorkloadKind::kLogisticRegression,
      harness::WorkloadKind::kPageRank};
  const std::vector<harness::TraceProfile> traces = {
      harness::TraceProfile::kControlledStragglers,
      harness::TraceProfile::kVolatileCloud};
  const auto m = harness::run_scenario_matrix(cfg, engines, workloads, traces);
  for (const auto& cell : m.cells) {
    EXPECT_FALSE(cell.failed) << cell.error;
    EXPECT_TRUE(cell.decode_checked);
    EXPECT_LT(cell.max_decode_error, 1e-9);
  }
  EXPECT_EQ(m.fingerprint(), kLtAgcSliceGolden);
}

// The full default job-driver suite (4 apps x 4 strategies x
// {controlled, volatile}): functional engines, real decodes, convergence
// trajectories — the deepest end-to-end path the repo has.
TEST(FingerprintGuard, JobSuite) {
  const harness::JobConfig base;  // workers 12, stragglers 3, seed 42
  const harness::JobGrid grid;
  const auto suite = harness::run_job_suite(base, grid, 0);
  EXPECT_EQ(suite.fingerprint(), kJobSuiteGolden);
}

}  // namespace
}  // namespace s2c2
