// Unit tests for src/util: stats, table formatting, seeded RNG.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/util/require.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace s2c2::util {
namespace {

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_NEAR(stddev(xs), 1.1180339887, 1e-9);
}

TEST(Stats, MeanOfEmptyThrows) {
  EXPECT_THROW((void)mean({}), std::invalid_argument);
  EXPECT_THROW((void)variance({}), std::invalid_argument);
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Stats, PercentileSingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 99.0), 7.0);
}

TEST(Stats, PercentileRejectsOutOfRangeP) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 101.0), std::invalid_argument);
}

TEST(Stats, MapeMatchesHandComputation) {
  const std::vector<double> pred{1.1, 0.9};
  const std::vector<double> act{1.0, 1.0};
  EXPECT_NEAR(mape(pred, act), 10.0, 1e-9);
}

TEST(Stats, MapeSkipsNearZeroActuals) {
  const std::vector<double> pred{1.0, 5.0};
  const std::vector<double> act{0.0, 4.0};
  EXPECT_NEAR(mape(pred, act), 25.0, 1e-9);
}

TEST(Stats, MapeSizeMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)mape(a, b), std::invalid_argument);
}

TEST(Stats, NormalizedBy) {
  const std::vector<double> xs{2.0, 4.0};
  const auto out = normalized_by(xs, 2.0);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_THROW((void)normalized_by(xs, 0.0), std::invalid_argument);
}

TEST(Stats, MinMaxSum) {
  const std::vector<double> xs{3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 3.0);
  EXPECT_DOUBLE_EQ(sum(xs), 4.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform() != b.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(7);
  Rng child = a.split();
  // Child continues deterministically regardless of parent advancement.
  Rng a2(7);
  Rng child2 = a2.split();
  for (int i = 0; i < 50; ++i) a2.uniform();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(child.uniform(), child2.uniform());
  }
}

TEST(Rng, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 5);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row_numeric("beta", {2.5}, 1);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"one"});
  EXPECT_THROW(t.add_row({"a", "b"}), std::invalid_argument);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Require, MacrosThrowProperTypes) {
  EXPECT_THROW(S2C2_REQUIRE(false, "msg"), std::invalid_argument);
  EXPECT_THROW(S2C2_CHECK(false, "msg"), std::logic_error);
  EXPECT_NO_THROW(S2C2_REQUIRE(true, ""));
  EXPECT_NO_THROW(S2C2_CHECK(true, ""));
}

}  // namespace
}  // namespace s2c2::util
