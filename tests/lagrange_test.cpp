// Tests for Lagrange coded computing: interpolation identities, encode/
// decode round trips for degree-1 and degree-2 polynomial functions, and
// the S2C2 chunk-coverage integration.
#include <gtest/gtest.h>

#include "src/coding/lagrange_code.h"
#include "src/sched/allocation.h"
#include "src/sched/coverage.h"
#include "src/util/rng.h"

namespace s2c2::coding {
namespace {

std::vector<linalg::Matrix> random_blocks(std::size_t m, std::size_t rows,
                                          std::size_t cols, util::Rng& rng) {
  std::vector<linalg::Matrix> blocks;
  for (std::size_t j = 0; j < m; ++j) {
    blocks.push_back(linalg::Matrix::random_uniform(rows, cols, rng));
  }
  return blocks;
}

void expect_close(const linalg::Matrix& got, const linalg::Matrix& want,
                  double tol) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  const double scale = want.frobenius_norm() + 1.0;
  EXPECT_LT(got.max_abs_diff(want) / scale, tol);
}

TEST(Lagrange, ValidatesConstruction) {
  EXPECT_THROW(LagrangeCode(3, 4, 2), std::invalid_argument);  // R=7 > n
  EXPECT_THROW(LagrangeCode(5, 0, 1), std::invalid_argument);
  EXPECT_THROW(LagrangeCode(5, 3, 0), std::invalid_argument);
  EXPECT_NO_THROW(LagrangeCode(7, 4, 2));
}

TEST(Lagrange, RecoveryThreshold) {
  const LagrangeCode code(12, 4, 2);
  EXPECT_EQ(code.recovery_threshold(), 7u);  // 2*(4-1)+1
  const LagrangeCode lin(6, 5, 1);
  EXPECT_EQ(lin.recovery_threshold(), 5u);
}

TEST(Lagrange, PointsAreDistinct) {
  const LagrangeCode code(10, 4, 2);
  std::vector<double> all;
  for (std::size_t i = 0; i < code.n(); ++i) all.push_back(code.alpha(i));
  for (std::size_t j = 0; j < code.m(); ++j) all.push_back(code.beta(j));
  std::sort(all.begin(), all.end());
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i] - all[i - 1], 1e-9);
  }
}

TEST(Lagrange, EncodeInterpolatesDataAtBetas) {
  // u(β_j) must equal X_j: verify via a code whose α grid includes... we
  // check indirectly: decoding the identity function recovers the blocks.
  util::Rng rng(1);
  const LagrangeCode code(6, 3, 1);  // R = 3
  const auto blocks = random_blocks(3, 4, 5, rng);
  const auto encoded = code.encode(blocks);
  ASSERT_EQ(encoded.size(), 6u);

  LagrangeCode::Decoder dec(code, 4, 1, 5);
  for (std::size_t w : {0u, 2u, 4u}) {
    dec.add_chunk_result(w, 0, encoded[w]);  // f = identity
  }
  ASSERT_TRUE(dec.decodable());
  const auto out = dec.decode();
  for (std::size_t j = 0; j < 3; ++j) expect_close(out[j], blocks[j], 1e-10);
}

TEST(Lagrange, EncodeRejectsRaggedBlocks) {
  const LagrangeCode code(6, 2, 1);
  std::vector<linalg::Matrix> blocks{linalg::Matrix(2, 2),
                                     linalg::Matrix(3, 2)};
  EXPECT_THROW((void)code.encode(blocks), std::invalid_argument);
  EXPECT_THROW((void)code.encode({linalg::Matrix(2, 2)}),
               std::invalid_argument);
}

TEST(Lagrange, DegreeTwoGramMatrixDecodes) {
  // f(X) = XᵀX — the distributed kernel/Gram computation (degree 2).
  util::Rng rng(2);
  const std::size_t m = 3, rows = 8, cols = 4;
  const LagrangeCode code(8, m, 2);  // R = 5
  const auto blocks = random_blocks(m, rows, cols, rng);
  const auto encoded = code.encode(blocks);

  LagrangeCode::Decoder dec(code, cols, 1, cols);
  for (std::size_t w : {1u, 3u, 4u, 6u, 7u}) {
    dec.add_chunk_result(w, 0,
                         encoded[w].transposed().matmul(encoded[w]));
  }
  ASSERT_TRUE(dec.decodable());
  const auto out = dec.decode();
  for (std::size_t j = 0; j < m; ++j) {
    expect_close(out[j], blocks[j].transposed().matmul(blocks[j]), 1e-8);
  }
}

TEST(Lagrange, DeficientChunksReportedAndDecodeThrows) {
  const LagrangeCode code(6, 3, 1);
  LagrangeCode::Decoder dec(code, 4, 2, 5);
  dec.add_chunk_result(0, 0, linalg::Matrix(2, 5));
  EXPECT_FALSE(dec.decodable());
  EXPECT_EQ(dec.deficient_chunks().size(), 2u);
  EXPECT_THROW((void)dec.decode(), std::logic_error);
}

TEST(Lagrange, DuplicateSubmissionsIdempotent) {
  const LagrangeCode code(6, 3, 1);
  LagrangeCode::Decoder dec(code, 4, 1, 5);
  dec.add_chunk_result(0, 0, linalg::Matrix(4, 5));
  dec.add_chunk_result(0, 0, linalg::Matrix(4, 5));
  EXPECT_EQ(dec.responders(0).size(), 1u);
}

TEST(Lagrange, S2C2ChunkedCoverageDecodesGram) {
  // Chunks allocated by the S2C2 proportional allocator with k = R: each
  // chunk is served by a different R-subset and still decodes exactly.
  util::Rng rng(3);
  const std::size_t m = 3, rows = 10, cols = 6, chunks = 3;
  const LagrangeCode code(8, m, 2);  // R = 5
  const auto blocks = random_blocks(m, rows, cols, rng);
  const auto encoded = code.encode(blocks);

  const std::vector<double> speeds{1.0, 0.8, 1.2, 0.5, 0.9, 1.1, 0.7, 1.0};
  const auto alloc =
      sched::proportional_allocation(speeds, code.recovery_threshold(),
                                     chunks);
  ASSERT_TRUE(sched::has_exact_coverage(alloc, code.recovery_threshold()));

  LagrangeCode::Decoder dec(code, cols, chunks, cols);
  const std::size_t rpc = cols / chunks;
  for (std::size_t w = 0; w < code.n(); ++w) {
    const linalg::Matrix gram = encoded[w].transposed().matmul(encoded[w]);
    for (std::size_t c : alloc.chunks_of(w)) {
      linalg::Matrix slice(rpc, cols);
      for (std::size_t r = 0; r < rpc; ++r) {
        for (std::size_t cc = 0; cc < cols; ++cc) {
          slice(r, cc) = gram(c * rpc + r, cc);
        }
      }
      dec.add_chunk_result(w, c, std::move(slice));
    }
  }
  ASSERT_TRUE(dec.decodable());
  const auto out = dec.decode();
  for (std::size_t j = 0; j < m; ++j) {
    expect_close(out[j], blocks[j].transposed().matmul(blocks[j]), 1e-8);
  }
}

struct LagrangeParam {
  std::size_t n, m, degree;
};

class LagrangeSubsets : public ::testing::TestWithParam<LagrangeParam> {};

TEST_P(LagrangeSubsets, RandomResponderSubsetsDecode) {
  const auto p = GetParam();
  util::Rng rng(500 + p.n * 7 + p.m);
  const LagrangeCode code(p.n, p.m, p.degree);
  const std::size_t rows = 6, cols = 4;
  const auto blocks = random_blocks(p.m, rows, cols, rng);
  const auto encoded = code.encode(blocks);

  auto f = [&](const linalg::Matrix& x) {
    return p.degree == 1 ? x : x.transposed().matmul(x);
  };
  const std::size_t out_rows = p.degree == 1 ? rows : cols;

  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::size_t> workers(p.n);
    for (std::size_t w = 0; w < p.n; ++w) workers[w] = w;
    rng.shuffle(workers);
    workers.resize(code.recovery_threshold());

    LagrangeCode::Decoder dec(code, out_rows, 1, cols);
    for (std::size_t w : workers) dec.add_chunk_result(w, 0, f(encoded[w]));
    ASSERT_TRUE(dec.decodable());
    const auto out = dec.decode();
    for (std::size_t j = 0; j < p.m; ++j) {
      expect_close(out[j], f(blocks[j]), 1e-7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, LagrangeSubsets,
                         ::testing::Values(LagrangeParam{6, 3, 1},
                                           LagrangeParam{10, 5, 1},
                                           LagrangeParam{8, 3, 2},
                                           LagrangeParam{12, 4, 2},
                                           LagrangeParam{12, 3, 3}));

}  // namespace
}  // namespace s2c2::coding
