// Tests for the unified strategy layer: the StrategyKind taxonomy and its
// naming/parsing/capability helpers, the engine registry (make_engine /
// register_engine_factory), and the polymorphic StrategyEngine contract
// every strategy satisfies.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/core/engine_factory.h"
#include "src/util/rng.h"
#include "src/workload/trace_gen.h"
#include "tests/test_util.h"

namespace s2c2::core {
namespace {

using test::make_spec;

TEST(StrategyKind, NameParseRoundTrip) {
  for (const StrategyKind k : all_strategy_kinds()) {
    EXPECT_EQ(parse_strategy(strategy_name(k)), k) << strategy_name(k);
  }
  EXPECT_THROW((void)parse_strategy("no-such-strategy"),
               std::invalid_argument);
}

TEST(StrategyKind, NamesAreDistinctAndStable) {
  std::set<std::string> names;
  for (const StrategyKind k : all_strategy_kinds()) {
    EXPECT_TRUE(names.insert(strategy_name(k)).second) << strategy_name(k);
  }
  // The CLI/report spellings are a wire format (CSV artifacts, golden
  // fingerprints' failure strings); renaming them is a breaking change.
  EXPECT_STREQ(strategy_name(StrategyKind::kS2C2), "s2c2");
  EXPECT_STREQ(strategy_name(StrategyKind::kMds), "mds");
  EXPECT_STREQ(strategy_name(StrategyKind::kPoly), "poly");
  EXPECT_STREQ(strategy_name(StrategyKind::kReplication), "replication");
  EXPECT_STREQ(strategy_name(StrategyKind::kOverDecomp), "overdecomp");
}

TEST(StrategyKind, CapabilityPredicates) {
  // Prediction use drives the harness's predictor axis; coded-ness the
  // decode stage; recovery the §4.3 timeout window.
  EXPECT_TRUE(strategy_uses_predictions(StrategyKind::kS2C2));
  EXPECT_FALSE(strategy_uses_predictions(StrategyKind::kMds));
  EXPECT_FALSE(strategy_uses_predictions(StrategyKind::kReplication));
  EXPECT_TRUE(strategy_uses_predictions(StrategyKind::kOverDecomp));
  EXPECT_TRUE(strategy_is_coded(StrategyKind::kPoly));
  EXPECT_FALSE(strategy_is_coded(StrategyKind::kOverDecomp));
  EXPECT_TRUE(strategy_uses_recovery(StrategyKind::kS2C2));
  EXPECT_TRUE(strategy_uses_recovery(StrategyKind::kPoly));
  EXPECT_FALSE(strategy_uses_recovery(StrategyKind::kMds));
  EXPECT_FALSE(strategy_uses_recovery(StrategyKind::kReplication));
  // The registry additions: lt is coded but prediction-blind (the code's
  // redundancy absorbs stragglers) and opts out of both §4.3 recovery and
  // byzantine verification; agc is a prediction-driven MDS variant.
  EXPECT_TRUE(strategy_is_coded(StrategyKind::kLt));
  EXPECT_FALSE(strategy_uses_predictions(StrategyKind::kLt));
  EXPECT_FALSE(strategy_uses_recovery(StrategyKind::kLt));
  EXPECT_FALSE(strategy_tolerates_byzantine(StrategyKind::kLt));
  EXPECT_TRUE(strategy_is_coded(StrategyKind::kAgc));
  EXPECT_TRUE(strategy_uses_predictions(StrategyKind::kAgc));
  EXPECT_TRUE(strategy_uses_recovery(StrategyKind::kAgc));
  // Block-round support gates the serving layer's multi-RHS batching.
  EXPECT_TRUE(strategy_supports_block_rounds(StrategyKind::kLt));
  EXPECT_FALSE(strategy_supports_block_rounds(StrategyKind::kPoly));
}

EngineParams cost_only_params(std::size_t n, std::size_t rows,
                              std::size_t cols) {
  EngineParams p;
  p.cluster = ClusterSpec::uniform(n);
  p.rows = rows;
  p.cols = cols;
  p.k = n - 2;
  p.chunks_per_partition = 12;
  p.a_blocks = 3;
  p.oracle_speeds = true;
  return p;
}

TEST(EngineFactory, BuildsEveryRegisteredStrategy) {
  for (const StrategyKind k : all_strategy_kinds()) {
    const auto engine =
        make_engine(k, cost_only_params(12, 1200, 120));
    ASSERT_NE(engine, nullptr) << strategy_name(k);
    EXPECT_EQ(engine->kind(), k);
  }
}

TEST(EngineFactory, RegisteredStrategiesCoverAllBuiltins) {
  const auto regs = registered_strategies();
  const std::set<StrategyKind> have(regs.begin(), regs.end());
  for (const StrategyKind k : all_strategy_kinds()) {
    EXPECT_TRUE(have.count(k)) << strategy_name(k);
  }
}

TEST(EngineFactory, PolymorphicRoundsAdvanceEveryEngineClock) {
  // Every registered strategy driven through the base interface only —
  // the contract the harness, job driver, and CLIs rely on. Iterating
  // registered_strategies() (not a hand list) means a newly registered
  // kind is under contract the day it lands.
  for (const StrategyKind k : registered_strategies()) {
    const std::unique_ptr<StrategyEngine> engine =
        make_engine(k, cost_only_params(12, 1200, 120));
    const auto rounds = engine->run_rounds(3);
    ASSERT_EQ(rounds.size(), 3u) << strategy_name(k);
    for (const RoundResult& r : rounds) {
      EXPECT_GT(r.stats.latency(), 0.0) << strategy_name(k);
      EXPECT_FALSE(r.y.has_value());        // cost-only
      EXPECT_FALSE(r.hessian.has_value());  // cost-only
    }
    EXPECT_EQ(engine->now(), rounds.back().stats.end) << strategy_name(k);
    EXPECT_EQ(engine->timeout_rate(), 0.0) << strategy_name(k);  // uniform
  }
}

TEST(EngineFactory, FunctionalDecodeThroughTheBaseInterface) {
  // Dense functional operator through each matvec strategy: coded decodes
  // and uncoded exact forwards must agree with the direct product. The
  // poly family is skipped — its functional product is Hessian-shaped
  // (covered in poly_engine_test), not a matvec y.
  util::Rng rng(5);
  const auto a = linalg::Matrix::random_uniform(120, 24, rng);
  linalg::Vector x(24);
  for (auto& v : x) v = rng.normal();
  const linalg::Vector truth = a.matvec(x);
  for (const StrategyKind k : registered_strategies()) {
    if (k == StrategyKind::kPoly || k == StrategyKind::kPolyConventional) {
      continue;
    }
    EngineParams p = cost_only_params(12, 0, 0);
    p.dense = &a;
    const auto engine = make_engine(k, std::move(p));
    const RoundResult r = engine->run_round(x);
    ASSERT_TRUE(r.y.has_value()) << strategy_name(k);
    EXPECT_LT(linalg::max_abs_diff(*r.y, truth), 1e-9) << strategy_name(k);
  }
}

/// A minimal custom strategy: fixed-latency rounds, no coding — the
/// "fifth engine" the registry exists for (rateless/LT, gradient coding;
/// see ROADMAP.md).
class FixedLatencyEngine final : public StrategyEngine {
 public:
  explicit FixedLatencyEngine(ClusterSpec spec)
      : StrategyEngine(StrategyKind::kReplication, std::move(spec), nullptr) {}
  RoundResult run_round(std::span<const double>) override {
    RoundResult r;
    r.stats.start = now_;
    r.stats.coverage = now_ + 1.0;
    r.stats.end = now_ + 1.0;
    now_ = r.stats.end;
    ++rounds_run_;
    return r;
  }
};

TEST(EngineFactory, CustomFactoryPlugsInWithoutSwitchLadders) {
  // Downstream strategies register factories instead of editing switch
  // ladders. Overriding a built-in binding is process-global state, so
  // save and restore it around the override.
  EngineFactory builtin = engine_factory(StrategyKind::kReplication);
  ASSERT_TRUE(static_cast<bool>(builtin));

  register_engine_factory(StrategyKind::kReplication, [](EngineParams p) {
    return std::make_unique<FixedLatencyEngine>(std::move(p.cluster));
  });
  const auto engine = make_engine(StrategyKind::kReplication,
                                  cost_only_params(4, 100, 10));
  EXPECT_EQ(engine->run_round().stats.latency(), 1.0);

  register_engine_factory(StrategyKind::kReplication, std::move(builtin));
  const auto rebuilt = make_engine(StrategyKind::kReplication,
                                   cost_only_params(12, 1200, 120));
  EXPECT_EQ(rebuilt->kind(), StrategyKind::kReplication);
  EXPECT_GT(rebuilt->run_round().stats.latency(), 0.0);
}

}  // namespace
}  // namespace s2c2::core
