// Tests for timeout-recovery reassignment planning (paper §4.3).
#include <gtest/gtest.h>

#include <set>

#include "src/sched/reassignment.h"

namespace s2c2::sched {
namespace {

TEST(Reassignment, EmptyInputsYieldEmptyPlan) {
  const auto plan = plan_reassignment({}, {}, {}, std::vector<double>{1.0});
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.total_chunks(), 0u);
}

TEST(Reassignment, FillsDeficitsWithDistinctWorkers) {
  // Chunk 7 needs 2 more results; workers 0 and 1 already have it.
  const std::vector<std::size_t> deficient{7};
  const std::vector<std::vector<std::size_t>> have{{0, 1}};
  const std::vector<std::size_t> needed{2};
  const std::vector<double> speeds{1.0, 1.0, 2.0, 1.0, 0.0};
  const auto plan = plan_reassignment(deficient, have, needed, speeds);
  EXPECT_EQ(plan.total_chunks(), 2u);
  // Workers 0/1 excluded (already have), worker 4 excluded (speed 0).
  EXPECT_TRUE(plan.chunks_per_worker[0].empty());
  EXPECT_TRUE(plan.chunks_per_worker[1].empty());
  EXPECT_TRUE(plan.chunks_per_worker[4].empty());
  EXPECT_EQ(plan.chunks_per_worker[2].size() + plan.chunks_per_worker[3].size(),
            2u);
}

TEST(Reassignment, NeverAssignsSameChunkTwiceToOneWorker) {
  const std::vector<std::size_t> deficient{3, 3};  // duplicated chunk entry
  const std::vector<std::vector<std::size_t>> have{{}, {}};
  const std::vector<std::size_t> needed{1, 1};
  const std::vector<double> speeds{1.0, 1.0};
  const auto plan = plan_reassignment(deficient, have, needed, speeds);
  for (const auto& chunks : plan.chunks_per_worker) {
    std::set<std::size_t> uniq(chunks.begin(), chunks.end());
    EXPECT_EQ(uniq.size(), chunks.size());
  }
  EXPECT_EQ(plan.total_chunks(), 2u);
}

TEST(Reassignment, LoadBalancesBySpeed) {
  // 9 deficits, workers with speeds 2:1 — fast worker should take ~2x.
  std::vector<std::size_t> deficient;
  std::vector<std::vector<std::size_t>> have;
  std::vector<std::size_t> needed;
  for (std::size_t c = 0; c < 9; ++c) {
    deficient.push_back(c);
    have.push_back({});
    needed.push_back(1);
  }
  const std::vector<double> speeds{2.0, 1.0};
  const auto plan = plan_reassignment(deficient, have, needed, speeds);
  EXPECT_EQ(plan.chunks_per_worker[0].size(), 6u);
  EXPECT_EQ(plan.chunks_per_worker[1].size(), 3u);
}

TEST(Reassignment, QuotaExhaustionOverflowsToZeroQuotaWorker) {
  // Regression for the overflow path: the fast worker holds the whole
  // speed-proportional quota, but it already has both deficient chunks, so
  // every assignment must overflow to the slow worker — whose quota is 0.
  const std::vector<std::size_t> deficient{0, 1};
  const std::vector<std::vector<std::size_t>> have{{0}, {0}};
  const std::vector<std::size_t> needed{1, 1};
  const std::vector<double> speeds{10.0, 1.0};
  const auto plan = plan_reassignment(deficient, have, needed, speeds);
  EXPECT_TRUE(plan.chunks_per_worker[0].empty());
  EXPECT_EQ(plan.chunks_per_worker[1],
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(plan.total_chunks(), 2u);
}

TEST(Reassignment, OverflowPicksLeastLoadedEligibleWorker) {
  // Worker 0 again soaks up the quota but is excluded everywhere. The
  // first overflow loads worker 1; the second must then prefer worker 2
  // (load 0) over worker 1 (load 1) even though worker 1 is faster.
  const std::vector<std::size_t> deficient{0, 1};
  const std::vector<std::vector<std::size_t>> have{{0, 2}, {0}};
  const std::vector<std::size_t> needed{1, 1};
  const std::vector<double> speeds{8.0, 1.2, 1.1};
  const auto plan = plan_reassignment(deficient, have, needed, speeds);
  EXPECT_TRUE(plan.chunks_per_worker[0].empty());
  EXPECT_EQ(plan.chunks_per_worker[1], (std::vector<std::size_t>{0}));
  EXPECT_EQ(plan.chunks_per_worker[2], (std::vector<std::size_t>{1}));
}

TEST(Reassignment, OverflowNeverDuplicatesChunkOnOneWorker) {
  // Quota-exhausted overflow must still honor the exclusion constraints:
  // chunk 5 needs two extra copies and only workers 1 and 2 may take one
  // each, regardless of worker 1 hoarding the quota.
  const std::vector<std::size_t> deficient{5, 5};
  const std::vector<std::vector<std::size_t>> have{{0}, {0}};
  const std::vector<std::size_t> needed{1, 1};
  const std::vector<double> speeds{100.0, 1.0, 1.0};
  const auto plan = plan_reassignment(deficient, have, needed, speeds);
  EXPECT_TRUE(plan.chunks_per_worker[0].empty());
  EXPECT_EQ(plan.chunks_per_worker[1], (std::vector<std::size_t>{5}));
  EXPECT_EQ(plan.chunks_per_worker[2], (std::vector<std::size_t>{5}));
}

TEST(Reassignment, InfeasibleThrows) {
  // Chunk needs 2 distinct new workers but only one candidate exists.
  const std::vector<std::size_t> deficient{0};
  const std::vector<std::vector<std::size_t>> have{{0}};
  const std::vector<std::size_t> needed{2};
  const std::vector<double> speeds{1.0, 1.0};  // worker 0 already has it
  EXPECT_THROW(plan_reassignment(deficient, have, needed, speeds),
               std::invalid_argument);
}

TEST(Reassignment, ParallelArrayMismatchThrows) {
  const std::vector<std::size_t> deficient{0, 1};
  const std::vector<std::vector<std::size_t>> have{{}};
  const std::vector<std::size_t> needed{1, 1};
  EXPECT_THROW(
      plan_reassignment(deficient, have, needed, std::vector<double>{1.0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace s2c2::sched
