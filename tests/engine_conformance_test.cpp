// Cross-engine conformance suite: the contracts EVERY strategy behind
// core::make_engine must satisfy, parameterized over registered_strategies()
// / harness::extended_engines() so a newly registered kind is under
// contract the day it lands — no hand-enumerated kind lists to forget to
// extend. Covers (per ISSUE/ROADMAP):
//   * seeded byte-identical determinism across repeat runs and --jobs
//     shardings of the scenario matrix;
//   * exact k-coverage of useful work (threshold-coverage for the
//     rateless lt kind);
//   * accounting conservation — per worker, useful + wasted never exceeds
//     the busy window (idle = busy - useful - wasted >= 0);
//   * run_rounds product forwarding against the direct product at 1e-9;
//   * block-round width-1 identity, or a clean supports_block_rounds()
//     == false rejection for width > 1;
//   * agc's degradation to conventional MDS under an oracle predictor;
//   * pinned, distinct engine-axis wire ids;
//   * decode-context cache warming for the coded kinds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/coding/poly_code.h"
#include "src/core/engine_factory.h"
#include "src/harness/matrix_runner.h"
#include "src/harness/scenario_matrix.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace s2c2 {
namespace {

using core::EngineParams;
using core::StrategyKind;
using core::strategy_name;

/// Functional engine inputs shared by the engine-level contracts: a seeded
/// dense 240 x 30 operator on a 12-worker cluster, k = 10, 12 chunks per
/// partition — small enough that the whole registered lineup runs in
/// milliseconds, large enough that every coded geometry is non-trivial.
struct FunctionalRig {
  FunctionalRig() : rng(11), a(linalg::Matrix::random_uniform(240, 30, rng)) {
    x.resize(a.cols());
    for (auto& v : x) v = rng.normal();
    truth = a.matvec(x);
  }

  [[nodiscard]] EngineParams params(
      std::vector<sim::SpeedTrace> traces =
          test::uniform_traces(12)) const {
    EngineParams p;
    p.cluster = test::make_spec(std::move(traces));
    p.dense = &a;
    p.k = 10;
    p.chunks_per_partition = 12;
    p.a_blocks = 3;
    p.oracle_speeds = true;
    return p;
  }

  util::Rng rng;
  linalg::Matrix a;
  linalg::Vector x;
  linalg::Vector truth;
};

/// The poly kinds compute a bilinear Hessian, not a matvec panel; contracts
/// that need a functional input feed them the Hessian shape instead.
bool is_poly(StrategyKind k) {
  return k == StrategyKind::kPoly || k == StrategyKind::kPolyConventional;
}

/// Functional params for any kind: the matvec rig for the panel kinds, the
/// Hessian operator for poly (whose functional mode needs d / a_blocks
/// divisible by the chunk count — 24 / 3 = 8 here, so 8 chunks).
EngineParams functional_params(StrategyKind k, const FunctionalRig& rig,
                               const test::FunctionalHessian& hess) {
  EngineParams p = rig.params();
  if (is_poly(k)) {
    p.dense = &hess.a;
    p.chunks_per_partition = 8;
  }
  return p;
}

TEST(EngineConformance, DeterministicAcrossRepeatsAndJobsShardings) {
  // Two halves of the determinism contract, per extended-engine kind:
  // run_cell is a pure function of its arguments (repeat runs are
  // byte-identical down to the fingerprint over every round's exact
  // latency bits), and the matrix runner's sharding is invisible (the same
  // axes at --jobs 1 and --jobs 3 hash identically).
  harness::ScenarioConfig cfg;
  cfg.functional = true;
  cfg.rounds = 3;
  for (const StrategyKind e : harness::extended_engines()) {
    const auto once = harness::run_cell(
        cfg, e, harness::WorkloadKind::kLogisticRegression,
        harness::TraceProfile::kControlledStragglers);
    const auto again = harness::run_cell(
        cfg, e, harness::WorkloadKind::kLogisticRegression,
        harness::TraceProfile::kControlledStragglers);
    EXPECT_FALSE(once.failed) << strategy_name(e) << ": " << once.error;
    EXPECT_EQ(once.fingerprint(), again.fingerprint()) << strategy_name(e);

    harness::MatrixAxes axes;
    axes.engines = {e};
    axes.workloads = {harness::WorkloadKind::kLogisticRegression};
    axes.traces = {harness::TraceProfile::kControlledStragglers,
                   harness::TraceProfile::kVolatileCloud};
    const auto serial = harness::run_matrix(cfg, axes, {.jobs = 1});
    const auto sharded = harness::run_matrix(cfg, axes, {.jobs = 3});
    EXPECT_EQ(serial.fingerprint(), sharded.fingerprint())
        << strategy_name(e);
  }
}

TEST(EngineConformance, UsefulWorkIsExactKCoverage) {
  // The decodability budget, read off the books. Conventional MDS uses
  // exactly the fastest k full partitions by construction, so on a uniform
  // oracle cluster every MDS-family allocation policy (speed-proportional
  // s2c2, equal-share s2c2-basic, agc's adaptive active set) must book the
  // SAME useful work per round: k partitions' worth, every chunk covered
  // exactly k times. Only the waste differs (mds cancels n - k workers;
  // the adaptive kinds dispatch no surplus).
  const FunctionalRig rig;
  const std::vector<StrategyKind> mds_family = {
      StrategyKind::kMds, StrategyKind::kS2C2, StrategyKind::kS2C2Basic,
      StrategyKind::kAgc};
  double reference = 0.0;
  for (const StrategyKind k : mds_family) {
    const auto engine = core::make_engine(k, rig.params());
    (void)engine->run_round(rig.x);
    const double useful = engine->accounting().total_useful();
    ASSERT_GT(useful, 0.0) << strategy_name(k);
    if (k == StrategyKind::kMds) {
      reference = useful;
      EXPECT_GT(engine->accounting().total_wasted(), 0.0)
          << "mds must cancel its n - k surplus responders";
    } else {
      EXPECT_NEAR(useful, reference, 1e-9 * reference) << strategy_name(k);
    }
  }

  // The rateless kind's quorum is a symbol threshold, not k responders:
  // useful work must cover >= decode_threshold symbols, advance in whole
  // responders (the simulator delivers a worker's batch atomically), and
  // stay within the collected fleet.
  const auto engine = core::make_engine(StrategyKind::kLt, rig.params());
  const auto* lt = dynamic_cast<const core::LtCodedEngine*>(engine.get());
  ASSERT_NE(lt, nullptr);
  (void)engine->run_round(rig.x);
  const double chunk_work =
      core::matvec_flops(lt->rows_per_chunk(), rig.a.cols()) /
      engine->cluster().worker_flops;
  const double symbols = engine->accounting().total_useful() / chunk_work;
  const double per_worker = static_cast<double>(lt->code().chunks_per_worker());
  EXPECT_GE(symbols, static_cast<double>(lt->code().decode_threshold()) - 0.5);
  EXPECT_LE(symbols, static_cast<double>(lt->code().total_symbols()) + 0.5);
  EXPECT_NEAR(std::remainder(symbols, per_worker), 0.0, 1e-6)
      << "lt useful work must advance in whole-responder symbol batches";
}

TEST(EngineConformance, AccountingConservationPerWorker) {
  // Idle time is what's left of the busy window after booked work: for
  // every worker whose busy window is tracked, useful + wasted <= busy.
  // Two historical conventions are load-bearing here (total_busy is hashed
  // into the pinned job-suite golden, so they are wire format): the
  // compute-only styles (poly, the uncoded baselines) book work without
  // busy telemetry at all, and full-telemetry engines book a cancelled
  // worker's partial progress as waste without opening a busy window —
  // both surface as busy_time == 0, never as an over-booked window.
  // Cost-only at paper-ish scale so the uncoded baselines' speculative /
  // rebalancing dynamics are exercised too.
  for (const StrategyKind k : core::registered_strategies()) {
    EngineParams p;
    p.cluster = core::ClusterSpec::uniform(12);
    p.rows = 1200;
    p.cols = 120;
    p.k = 10;
    p.chunks_per_partition = 12;
    p.a_blocks = 3;
    p.oracle_speeds = true;
    const auto engine = core::make_engine(k, std::move(p));
    (void)engine->run_rounds(3);
    const sim::Accounting& acc = engine->accounting();
    EXPECT_GT(acc.total_useful(), 0.0) << strategy_name(k);
    double busy_sum = 0.0;
    for (std::size_t w = 0; w < acc.num_workers(); ++w) {
      EXPECT_GE(acc.worker(w).useful_work, 0.0)
          << strategy_name(k) << " worker " << w;
      EXPECT_GE(acc.worker(w).wasted_work, 0.0)
          << strategy_name(k) << " worker " << w;
      busy_sum += acc.worker(w).busy_time;
    }
    if (busy_sum == 0.0) continue;  // compute-only accounting style
    for (std::size_t w = 0; w < acc.num_workers(); ++w) {
      const sim::WorkerAccount& wa = acc.worker(w);
      if (wa.busy_time > 0.0) {
        EXPECT_GE(wa.busy_time + 1e-9, wa.useful_work + wa.wasted_work)
            << strategy_name(k) << " worker " << w
            << ": booked more work than its busy window holds";
      } else {
        EXPECT_EQ(wa.useful_work, 0.0)
            << strategy_name(k) << " worker " << w
            << ": useful work requires a busy window (waste alone may be "
            << "booked without one, by the cancelled-worker convention)";
      }
    }
    // Cluster-wide, the tracked busy time must cover all useful work.
    EXPECT_GE(busy_sum + 1e-9, acc.total_useful()) << strategy_name(k);
  }
}

TEST(EngineConformance, RunRoundsForwardsTheDirectProduct) {
  // Functional mode is not a simulation: every round's payload must BE the
  // product. Matvec kinds against the dense direct multiply at 1e-9 for
  // all rounds of a run_rounds loop; the poly kinds against the direct
  // bilinear Hessian (their Vandermonde solves are less conditioned, so
  // the shared relative tolerance of expect_matrix_close applies).
  const FunctionalRig rig;
  const test::FunctionalHessian hess;
  for (const StrategyKind k : core::registered_strategies()) {
    if (is_poly(k)) {
      const auto engine =
          core::make_engine(k, functional_params(k, rig, hess));
      const core::RoundResult r = engine->run_round(hess.x);
      ASSERT_TRUE(r.hessian.has_value()) << strategy_name(k);
      test::expect_matrix_close(*r.hessian, hess.truth);
      continue;
    }
    const auto engine = core::make_engine(k, rig.params());
    const auto rounds = engine->run_rounds(3, rig.x);
    ASSERT_EQ(rounds.size(), 3u) << strategy_name(k);
    for (const core::RoundResult& r : rounds) {
      ASSERT_TRUE(r.y.has_value()) << strategy_name(k);
      EXPECT_LT(linalg::max_abs_diff(*r.y, rig.truth), 1e-9)
          << strategy_name(k);
    }
  }
}

TEST(EngineConformance, BlockRoundWidthOneIdentityOrCleanRejection) {
  // The serving layer's gate: a kind either implements the width-generic
  // block data path — and then a width-1 block round is bitwise the
  // single-RHS round — or it reports supports_block_rounds() == false and
  // rejects width > 1 with the registry's capability predicate agreeing.
  const FunctionalRig rig;
  const test::FunctionalHessian hess;
  linalg::Matrix x_panel(rig.a.cols(), 1);
  for (std::size_t i = 0; i < rig.x.size(); ++i) x_panel(i, 0) = rig.x[i];
  for (const StrategyKind k : core::registered_strategies()) {
    const auto engine = core::make_engine(k, functional_params(k, rig, hess));
    EXPECT_EQ(engine->supports_block_rounds(),
              core::strategy_supports_block_rounds(k))
        << strategy_name(k);
    if (!engine->supports_block_rounds()) {
      // Both rejection sites in the taxonomy throw a std::logic_error
      // (S2C2_REQUIRE's std::invalid_argument derives from it).
      EXPECT_THROW((void)engine->run_round_block(linalg::Matrix(), 2),
                   std::logic_error)
          << strategy_name(k);
      continue;
    }
    if (is_poly(k)) continue;  // unreachable: poly kinds reject above
    const auto twin = core::make_engine(k, rig.params());
    const core::RoundResult single = engine->run_round(rig.x);
    const core::RoundResult block = twin->run_round_block(x_panel, 1);
    ASSERT_TRUE(single.y.has_value()) << strategy_name(k);
    ASSERT_TRUE(block.y.has_value()) << strategy_name(k);
    ASSERT_EQ(block.y->size(), single.y->size()) << strategy_name(k);
    for (std::size_t i = 0; i < single.y->size(); ++i) {
      EXPECT_EQ((*block.y)[i], (*single.y)[i])
          << strategy_name(k) << " row " << i
          << ": width-1 block round drifted off the single-RHS path";
    }
    EXPECT_EQ(block.stats.latency(), single.stats.latency())
        << strategy_name(k);
  }
}

TEST(EngineConformance, AgcDegradesToConventionalMdsUnderOracle) {
  // Cao et al.'s degradation property, pinned: with an oracle predictor on
  // a straggler-free cluster (distinct speeds, none below the threshold x
  // median flag rule) agc's predicted-straggler count is 0 every round, so
  // its active set is exactly the quorum of fastest workers — the same set
  // conventional MDS's fastest-k collection uses. Latency and decoded
  // product match bit for bit; only the waste differs (mds cancels its
  // n - k surplus, agc dispatched none).
  const FunctionalRig rig;
  std::vector<sim::SpeedTrace> traces;
  for (std::size_t w = 0; w < 12; ++w) {
    traces.push_back(sim::SpeedTrace::constant(
        0.8 + 0.4 * static_cast<double>(w) / 11.0));
  }
  const auto agc = core::make_engine(StrategyKind::kAgc, rig.params(traces));
  const auto mds = core::make_engine(StrategyKind::kMds, rig.params(traces));
  for (std::size_t round = 0; round < 4; ++round) {
    const core::RoundResult a = agc->run_round(rig.x);
    const core::RoundResult m = mds->run_round(rig.x);
    EXPECT_EQ(a.stats.latency(), m.stats.latency()) << "round " << round;
    ASSERT_TRUE(a.y.has_value());
    ASSERT_TRUE(m.y.has_value());
    ASSERT_EQ(a.y->size(), m.y->size());
    for (std::size_t i = 0; i < a.y->size(); ++i) {
      EXPECT_EQ((*a.y)[i], (*m.y)[i]) << "round " << round << " row " << i;
    }
  }
  EXPECT_EQ(agc->accounting().total_wasted(), 0.0)
      << "a well-predicted agc round must waste nothing";
  EXPECT_GT(mds->accounting().total_wasted(), 0.0);
}

TEST(EngineConformance, EngineAxisIdsArePinnedAndDistinct) {
  // The matrix's engine-axis id feeds cell seeds and fingerprints: the
  // legacy four are frozen by the PR 5 goldens, the later registrations by
  // their own goldens. New kinds append ids; renumbering any of these is a
  // silent invalidation of every pinned fingerprint.
  EXPECT_EQ(harness::engine_axis_id(StrategyKind::kS2C2), 0u);
  EXPECT_EQ(harness::engine_axis_id(StrategyKind::kReplication), 1u);
  EXPECT_EQ(harness::engine_axis_id(StrategyKind::kPoly), 2u);
  EXPECT_EQ(harness::engine_axis_id(StrategyKind::kOverDecomp), 3u);
  EXPECT_EQ(harness::engine_axis_id(StrategyKind::kLt), 4u);
  EXPECT_EQ(harness::engine_axis_id(StrategyKind::kAgc), 5u);
  EXPECT_EQ(harness::engine_axis_id(StrategyKind::kS2C2Basic), 6u);
  EXPECT_EQ(harness::engine_axis_id(StrategyKind::kMds), 7u);
  EXPECT_EQ(harness::engine_axis_id(StrategyKind::kPolyConventional), 8u);
  std::set<std::uint64_t> ids;
  for (const StrategyKind e : harness::extended_engines()) {
    EXPECT_TRUE(ids.insert(harness::engine_axis_id(e)).second)
        << strategy_name(e);
  }
}

TEST(EngineConformance, WarmRoundsMatchColdRoundsBitForBit) {
  // The allocation-free machinery (recycled RoundResults, retained
  // scratch, the decoder arena) must be invisible in round payloads: round
  // r of a warm engine that recycles every result is byte-identical —
  // product bits, latency bits, prediction vectors — to round r of a twin
  // engine that never recycles and therefore exercises the fresh-result
  // path every time. Combined with the pinned fingerprint goldens
  // (fingerprint_guard_test) this is the no-re-pins guarantee: scratch
  // reuse changed WHERE results are built, never WHAT they contain.
  const FunctionalRig rig;
  const test::FunctionalHessian hess;
  for (const StrategyKind k : core::registered_strategies()) {
    if (is_poly(k)) continue;  // Hessian payload covered by its own suite
    const auto recycling = core::make_engine(k, rig.params());
    const auto fresh = core::make_engine(k, rig.params());
    for (std::size_t round = 0; round < 5; ++round) {
      core::RoundResult warm = recycling->run_round(rig.x);
      const core::RoundResult cold = fresh->run_round(rig.x);
      EXPECT_EQ(warm.stats.latency(), cold.stats.latency())
          << strategy_name(k) << " round " << round;
      EXPECT_EQ(warm.predicted_speeds, cold.predicted_speeds)
          << strategy_name(k) << " round " << round;
      EXPECT_EQ(warm.observed_speeds, cold.observed_speeds)
          << strategy_name(k) << " round " << round;
      ASSERT_TRUE(warm.y.has_value()) << strategy_name(k);
      ASSERT_TRUE(cold.y.has_value()) << strategy_name(k);
      ASSERT_EQ(warm.y->size(), cold.y->size()) << strategy_name(k);
      for (std::size_t i = 0; i < warm.y->size(); ++i) {
        EXPECT_EQ((*warm.y)[i], (*cold.y)[i])
            << strategy_name(k) << " round " << round << " row " << i;
      }
      EXPECT_FALSE(warm.y_block.has_value()) << strategy_name(k);
      EXPECT_FALSE(warm.hessian.has_value()) << strategy_name(k);
      recycling->recycle(std::move(warm));
    }
  }
}

TEST(EngineConformance, InnerParallelRoundsMatchSerialBitForBit) {
  // The intra-round parallelism contract, per registered kind: an engine
  // with inner_jobs = 4 (kernels, chunk products, and decode groups fanned
  // over its inner pool) must produce byte-identical rounds to the serial
  // twin — latency bits, product bits, prediction vectors, accounting
  // totals, decode telemetry. The fan-outs only repartition already
  // output-disjoint work (row tiles, (worker, chunk) slots, responder-set
  // groups), so any divergence is a real ownership bug, not roundoff.
  const FunctionalRig rig;
  const test::FunctionalHessian hess;
  for (const StrategyKind k : core::registered_strategies()) {
    EngineParams serial_params = functional_params(k, rig, hess);
    EngineParams parallel_params = functional_params(k, rig, hess);
    parallel_params.inner_jobs = 4;
    const auto serial = core::make_engine(k, std::move(serial_params));
    const auto inner = core::make_engine(k, std::move(parallel_params));
    const std::span<const double> x =
        is_poly(k) ? std::span<const double>(hess.x)
                   : std::span<const double>(rig.x);
    for (std::size_t round = 0; round < 3; ++round) {
      const core::RoundResult s = serial->run_round(x);
      const core::RoundResult p = inner->run_round(x);
      EXPECT_EQ(s.stats.latency(), p.stats.latency())
          << strategy_name(k) << " round " << round;
      EXPECT_EQ(s.predicted_speeds, p.predicted_speeds)
          << strategy_name(k) << " round " << round;
      EXPECT_EQ(s.observed_speeds, p.observed_speeds)
          << strategy_name(k) << " round " << round;
      ASSERT_EQ(s.y.has_value(), p.y.has_value()) << strategy_name(k);
      if (s.y.has_value()) {
        ASSERT_EQ(s.y->size(), p.y->size()) << strategy_name(k);
        for (std::size_t i = 0; i < s.y->size(); ++i) {
          EXPECT_EQ((*s.y)[i], (*p.y)[i])
              << strategy_name(k) << " round " << round << " row " << i
              << ": inner-parallel round drifted off the serial bits";
        }
      }
      ASSERT_EQ(s.hessian.has_value(), p.hessian.has_value())
          << strategy_name(k);
      if (s.hessian.has_value()) {
        ASSERT_EQ(s.hessian->rows(), p.hessian->rows()) << strategy_name(k);
        ASSERT_EQ(s.hessian->cols(), p.hessian->cols()) << strategy_name(k);
        for (std::size_t r = 0; r < s.hessian->rows(); ++r) {
          for (std::size_t c = 0; c < s.hessian->cols(); ++c) {
            EXPECT_EQ((*s.hessian)(r, c), (*p.hessian)(r, c))
                << strategy_name(k) << " round " << round;
          }
        }
      }
    }
    EXPECT_EQ(serial->accounting().total_useful(),
              inner->accounting().total_useful())
        << strategy_name(k);
    EXPECT_EQ(serial->accounting().total_wasted(),
              inner->accounting().total_wasted())
        << strategy_name(k);
    const coding::DecodeContextStats ss = serial->decode_stats();
    const coding::DecodeContextStats ps = inner->decode_stats();
    EXPECT_EQ(ss.entries, ps.entries) << strategy_name(k);
    EXPECT_EQ(ss.hits, ps.hits)
        << strategy_name(k)
        << ": parallel decode changed the cache hit/miss telemetry";
    EXPECT_EQ(ss.misses, ps.misses) << strategy_name(k);
  }
}

TEST(EngineConformance, InnerParallelBlockRoundsMatchSerialBitForBit) {
  // Same contract over the multi-RHS block data path (the serving layer's
  // round): y_block must carry the serial bits at inner_jobs = 4 — the
  // widest per-chunk spans and the batched multi-RHS decode both ride the
  // parallel fan-outs here.
  const FunctionalRig rig;
  const test::FunctionalHessian hess;
  constexpr std::size_t kWidth = 3;
  linalg::Matrix x_panel(rig.a.cols(), kWidth);
  util::Rng panel_rng(29);
  for (std::size_t r = 0; r < x_panel.rows(); ++r) {
    for (std::size_t c = 0; c < kWidth; ++c) x_panel(r, c) = panel_rng.normal();
  }
  for (const StrategyKind k : core::registered_strategies()) {
    if (!core::strategy_supports_block_rounds(k) || is_poly(k)) continue;
    EngineParams parallel_params = functional_params(k, rig, hess);
    parallel_params.inner_jobs = 4;
    const auto serial = core::make_engine(k, functional_params(k, rig, hess));
    const auto inner = core::make_engine(k, std::move(parallel_params));
    for (std::size_t round = 0; round < 2; ++round) {
      const core::RoundResult s = serial->run_round_block(x_panel, kWidth);
      const core::RoundResult p = inner->run_round_block(x_panel, kWidth);
      EXPECT_EQ(s.stats.latency(), p.stats.latency())
          << strategy_name(k) << " round " << round;
      ASSERT_TRUE(s.y_block.has_value()) << strategy_name(k);
      ASSERT_TRUE(p.y_block.has_value()) << strategy_name(k);
      ASSERT_EQ(s.y_block->rows(), p.y_block->rows()) << strategy_name(k);
      ASSERT_EQ(s.y_block->cols(), p.y_block->cols()) << strategy_name(k);
      for (std::size_t r = 0; r < s.y_block->rows(); ++r) {
        for (std::size_t c = 0; c < s.y_block->cols(); ++c) {
          EXPECT_EQ((*s.y_block)(r, c), (*p.y_block)(r, c))
              << strategy_name(k) << " round " << round << " (" << r << ", "
              << c << ")";
        }
      }
    }
  }
}

TEST(EngineConformance, DecodeCacheWarmsAcrossRepeatedRounds) {
  // Coded kinds charge decode through coding::DecodeContext; on a uniform
  // cluster the responder set repeats, so after the first round every
  // factorization must be a cache hit. Uncoded kinds have no decode stage
  // and report empty stats — the predicate and the telemetry must agree.
  const FunctionalRig rig;
  const test::FunctionalHessian hess;
  for (const StrategyKind k : core::registered_strategies()) {
    const auto engine = core::make_engine(k, functional_params(k, rig, hess));
    (void)engine->run_rounds(3, is_poly(k) ? std::span<const double>(hess.x)
                                           : std::span<const double>(rig.x));
    const coding::DecodeContextStats stats = engine->decode_stats();
    if (core::strategy_is_coded(k)) {
      EXPECT_GE(stats.entries, 1u) << strategy_name(k);
      EXPECT_GE(stats.hits, 1u)
          << strategy_name(k) << ": repeated responder sets never hit the "
          << "decode cache";
    } else {
      EXPECT_EQ(stats.entries, 0u) << strategy_name(k);
      EXPECT_EQ(stats.hits + stats.misses, 0u) << strategy_name(k);
    }
  }
}

}  // namespace
}  // namespace s2c2
