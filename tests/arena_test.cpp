// util::Arena unit tests + the allocation-count regression suite that
// locks down the PR's headline property: a warmed engine's steady-state
// run_round / run_round_block touches the heap ZERO times when the caller
// recycles results (StrategyEngine::recycle), for every registered
// strategy that reports supports_allocation_free_rounds().
//
// The regression works by replacing the global throwing operator new with
// a counting hook (malloc-backed, so it composes with the default
// operator delete semantics on glibc): count_allocations() zeroes the
// counter, runs the probe, and returns how many allocations it made. Any
// future change that sneaks a vector resize, a std::function capture, or
// a map rehash back into the hot path fails here with the exact count —
// not as a silent rounds/sec regression in BENCH_rounds.json.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/engine_factory.h"
#include "src/core/strategy_config.h"
#include "src/core/strategy_engine.h"
#include "src/linalg/matrix.h"
#include "src/util/arena.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

// Global replacements: throwing new/new[] count; deletes release through
// free (the malloc-backed layout these hooks and glibc's defaults share).
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace s2c2 {
namespace {

using core::StrategyKind;
using core::strategy_name;

/// Allocations performed by `fn` (templated to avoid a std::function
/// whose own construction would be counted).
template <typename Fn>
std::size_t count_allocations(Fn&& fn) {
  g_alloc_count.store(0);
  g_counting.store(true);
  fn();
  g_counting.store(false);
  return g_alloc_count.load();
}

TEST(Arena, BumpsWithinOneBlockAndCountsUsage) {
  util::Arena arena(1024);
  EXPECT_EQ(arena.bytes_used(), 0u);
  void* a = arena.allocate(100);
  void* b = arena.allocate(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_GE(arena.bytes_used(), 200u);
  EXPECT_EQ(arena.bytes_reserved(), 1024u);
  // Both live in the same 1 KiB block.
  const auto* base = static_cast<const std::byte*>(a);
  EXPECT_LT(static_cast<const std::byte*>(b) - base, 1024);
}

TEST(Arena, ResetRetainsBlocksAndReplaysTheSamePointers) {
  util::Arena arena(4096);
  std::vector<void*> first;
  for (int i = 0; i < 10; ++i) first.push_back(arena.allocate(256));
  const std::size_t blocks = arena.block_count();
  const std::size_t reserved = arena.bytes_reserved();

  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.block_count(), blocks) << "reset must retain blocks";
  EXPECT_EQ(arena.bytes_reserved(), reserved);

  // An identical allocation profile after reset replays the identical
  // pointer sequence from the retained blocks — the steady-state round
  // contract — and touches the heap zero times.
  const std::size_t allocs = count_allocations([&] {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(arena.allocate(256), first[static_cast<std::size_t>(i)]);
    }
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(Arena, ChainsNewBlocksWhenExhausted) {
  util::Arena arena(512);
  (void)arena.allocate(400);
  EXPECT_EQ(arena.block_count(), 1u);
  (void)arena.allocate(400);  // does not fit the 512-byte remainder
  EXPECT_EQ(arena.block_count(), 2u);
  EXPECT_EQ(arena.bytes_reserved(), 1024u);
}

TEST(Arena, OversizeRequestsGetADedicatedRetainedBlock) {
  util::Arena arena(256);
  void* big = arena.allocate(10000);  // > block_bytes: exact-fit block
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 10000u);
  const std::size_t blocks = arena.block_count();

  // The oversize block is retained like any other: the same profile after
  // reset is allocation-free and lands on the same storage.
  arena.reset();
  const std::size_t allocs =
      count_allocations([&] { EXPECT_EQ(arena.allocate(10000), big); });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(arena.block_count(), blocks);
}

TEST(Arena, RespectsAlignment) {
  util::Arena arena(1024);
  for (const std::size_t align : {1u, 2u, 4u, 8u, 16u}) {
    (void)arena.allocate(1);  // odd offset pressure
    void* p = arena.allocate(32, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
  const std::span<double> d = arena.alloc_span<double>(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
  EXPECT_EQ(d.size(), 7u);
}

TEST(Arena, ZeroByteAllocationYieldsDistinctValidPointer) {
  util::Arena arena;
  void* a = arena.allocate(0);
  void* b = arena.allocate(0);
  ASSERT_NE(a, nullptr);
  EXPECT_NE(a, b);
}

/// Steady-state heap-freedom, per strategy: warm the engine (decode-cache
/// fill, scratch growth, result-pool seeding via recycle), then assert a
/// further round allocates nothing. Constant speeds + oracle predictions
/// keep every round on the timeout-free hot path — the recovery wave and
/// Byzantine sub-paths intentionally still allocate (they run on
/// exceptional rounds only; see round_executor.cpp).
class AllocationFreeRoundsTest
    : public ::testing::TestWithParam<StrategyKind> {};

/// Engine under the regression's standard shape. Poly kinds reject the
/// dense 240x30 / 12-chunk combination at construction (functional-mode
/// divisibility), so they get cost-only params — they skip right after
/// construction anyway (no allocation-free claim).
std::unique_ptr<core::StrategyEngine> make_probe_engine(
    StrategyKind kind, const linalg::Matrix& a) {
  core::EngineParams p;
  p.cluster = test::make_spec(test::uniform_traces(12));
  p.dense = &a;
  p.k = 10;
  p.chunks_per_partition = 12;
  p.oracle_speeds = true;
  if (kind == StrategyKind::kPoly ||
      kind == StrategyKind::kPolyConventional) {
    p.dense = nullptr;
    p.rows = 240;
    p.cols = 24;
    p.chunks_per_partition = 8;
    p.a_blocks = 3;
  }
  return core::make_engine(kind, std::move(p));
}

TEST_P(AllocationFreeRoundsTest, SteadyStateRunRoundIsHeapFree) {
  const StrategyKind kind = GetParam();
  util::Rng rng(19);
  const linalg::Matrix a = linalg::Matrix::random_uniform(240, 30, rng);
  const auto engine = make_probe_engine(kind, a);
  if (!engine->supports_allocation_free_rounds()) {
    GTEST_SKIP() << strategy_name(kind)
                 << " does not claim allocation-free rounds";
  }

  linalg::Vector x(a.cols());
  for (auto& v : x) v = rng.normal();
  for (int warm = 0; warm < 4; ++warm) {
    engine->recycle(engine->run_round(x));
  }
  const std::size_t allocs = count_allocations(
      [&] { engine->recycle(engine->run_round(x)); });
  EXPECT_EQ(allocs, 0u)
      << strategy_name(kind)
      << ": steady-state run_round touched the heap " << allocs << " times";
}

TEST_P(AllocationFreeRoundsTest, SteadyStateBlockRoundIsHeapFree) {
  const StrategyKind kind = GetParam();
  util::Rng rng(23);
  const linalg::Matrix a = linalg::Matrix::random_uniform(240, 30, rng);
  const auto engine = make_probe_engine(kind, a);
  if (!engine->supports_allocation_free_rounds() ||
      !engine->supports_block_rounds()) {
    GTEST_SKIP() << strategy_name(kind) << " outside the contract";
  }

  const std::size_t width = 8;
  linalg::Matrix x_block(a.cols(), width);
  for (auto& v : x_block.mutable_data()) v = rng.normal();
  for (int warm = 0; warm < 4; ++warm) {
    engine->recycle(engine->run_round_block(x_block, width));
  }
  const std::size_t allocs = count_allocations(
      [&] { engine->recycle(engine->run_round_block(x_block, width)); });
  EXPECT_EQ(allocs, 0u)
      << strategy_name(kind) << ": steady-state run_round_block(b=" << width
      << ") touched the heap " << allocs << " times";
}

TEST(AllocationFreeRounds, ClaimMatchesTheMdsFamily) {
  // The capability flag itself is wire-ish: the coded MDS family claims
  // it, everything else must not (their round loops still allocate by
  // design — poly's per-round Decoder, lt's symbol buffers, the uncoded
  // baselines' closures).
  util::Rng rng(29);
  const linalg::Matrix a = linalg::Matrix::random_uniform(240, 30, rng);
  for (const StrategyKind kind : core::registered_strategies()) {
    core::EngineParams p;
    p.cluster = test::make_spec(test::uniform_traces(12));
    p.dense = &a;
    p.k = 10;
    p.chunks_per_partition = kind == StrategyKind::kPoly ||
                                     kind == StrategyKind::kPolyConventional
                                 ? 8
                                 : 12;
    p.a_blocks = 3;
    p.oracle_speeds = true;
    if (kind == StrategyKind::kPoly ||
        kind == StrategyKind::kPolyConventional) {
      p.dense = nullptr;
      p.rows = 240;
      p.cols = 24;
    }
    const auto engine = core::make_engine(kind, std::move(p));
    const bool mds_family =
        kind == StrategyKind::kMds || kind == StrategyKind::kS2C2 ||
        kind == StrategyKind::kS2C2Basic || kind == StrategyKind::kAgc;
    EXPECT_EQ(engine->supports_allocation_free_rounds(), mds_family)
        << strategy_name(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, AllocationFreeRoundsTest,
    ::testing::ValuesIn(core::registered_strategies()),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      std::string name = strategy_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace s2c2
