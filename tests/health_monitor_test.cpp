// Tests for the worker-health telemetry layer: EWMA baselines, drift
// detection, time-to-failure extrapolation, the health-informed prediction
// hook, and the recovery-window clamp on the pulses RoundExecutor feeds
// (the observed-speed bias regression).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/core/engine.h"
#include "src/predict/predictors.h"
#include "src/telemetry/health_monitor.h"
#include "src/workload/trace_gen.h"
#include "tests/test_util.h"

namespace s2c2 {
namespace {

using telemetry::HealthMonitor;
using telemetry::HealthMonitorConfig;
using test::kChunks;
using test::make_spec;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(HealthMonitor, SteadyWorkerStaysHealthy) {
  HealthMonitor mon(2);
  for (int i = 0; i < 20; ++i) mon.record_pulse(0, 1.0);
  const auto& h = mon.health(0);
  EXPECT_FALSE(h.degrading);
  EXPECT_NEAR(h.ewma_fast, 1.0, 1e-12);
  EXPECT_NEAR(h.ewma_slow, 1.0, 1e-12);
  EXPECT_EQ(h.time_to_failure, kInf);
  EXPECT_EQ(mon.degrading_count(), 0u);
  EXPECT_EQ(mon.min_time_to_failure(), kInf);
  EXPECT_EQ(mon.prediction_scale(0), 1.0);
}

TEST(HealthMonitor, FirstPulseSeedsBothBaselines) {
  HealthMonitor mon(1);
  mon.record_pulse(0, 0.4);
  EXPECT_DOUBLE_EQ(mon.health(0).ewma_fast, 0.4);
  EXPECT_DOUBLE_EQ(mon.health(0).ewma_slow, 0.4);
  EXPECT_DOUBLE_EQ(mon.health(0).drift, 0.0);
}

TEST(HealthMonitor, FailSlowDeclineFlagsDegrading) {
  HealthMonitor mon(1);
  double speed = 1.0;
  for (int i = 0; i < 12; ++i) {
    mon.record_pulse(0, speed);
    speed *= 0.9;  // the fail-slow signature: multiplicative decay
  }
  const auto& h = mon.health(0);
  EXPECT_TRUE(h.degrading);
  EXPECT_LT(h.drift, 0.0);
  EXPECT_LT(h.ewma_fast, h.ewma_slow);
  EXPECT_EQ(mon.degrading_count(), 1u);
}

TEST(HealthMonitor, TimeToFailureExtrapolatesToFloor) {
  HealthMonitor mon(1);
  // Linear decline: 0.04/round from 1.0. The fast EWMA tracks with a lag,
  // so the projection should land within a small factor of the true
  // crossing distance, and must be finite and positive while above floor.
  double speed = 1.0;
  for (int i = 0; i < 10; ++i) {
    mon.record_pulse(0, speed);
    speed -= 0.04;
  }
  const auto& h = mon.health(0);
  ASSERT_TRUE(h.degrading);
  ASSERT_LT(h.drift, 0.0);
  EXPECT_GT(h.time_to_failure, 0.0);
  EXPECT_LT(h.time_to_failure, kInf);
  const double naive_rounds = (h.ewma_fast - 0.1) / 0.04;
  EXPECT_GT(h.time_to_failure, 0.3 * naive_rounds);
  EXPECT_LT(h.time_to_failure, 3.0 * naive_rounds);
}

TEST(HealthMonitor, WorkerAtFloorProjectsZeroTtf) {
  HealthMonitor mon(1);
  for (int i = 0; i < 5; ++i) mon.record_pulse(0, 0.05);
  EXPECT_EQ(mon.health(0).time_to_failure, 0.0);
  EXPECT_EQ(mon.min_time_to_failure(), 0.0);
}

TEST(HealthMonitor, RecoveryClearsTheFlag) {
  HealthMonitor mon(1);
  double speed = 1.0;
  for (int i = 0; i < 10; ++i) {
    mon.record_pulse(0, speed);
    speed *= 0.85;
  }
  ASSERT_TRUE(mon.health(0).degrading);
  for (int i = 0; i < 40; ++i) mon.record_pulse(0, 1.0);
  EXPECT_FALSE(mon.health(0).degrading);
  EXPECT_EQ(mon.health(0).time_to_failure, kInf);
  EXPECT_EQ(mon.prediction_scale(0), 1.0);
}

TEST(HealthMonitor, PredictionScaleClampedForDeepDecline) {
  HealthMonitor mon(1);
  // Long healthy history, then a cliff: fast collapses, slow lags high.
  for (int i = 0; i < 30; ++i) mon.record_pulse(0, 1.0);
  for (int i = 0; i < 6; ++i) mon.record_pulse(0, 0.01);
  ASSERT_TRUE(mon.health(0).degrading);
  const double s = mon.prediction_scale(0);
  EXPECT_GE(s, 0.25);  // clamp floor
  EXPECT_LT(s, 1.0);
}

TEST(HealthMonitor, MissedPulsesCountWithoutMovingBaselines) {
  HealthMonitor mon(1);
  mon.record_pulse(0, 0.8);
  mon.record_missed(0);
  mon.record_missed(0);
  EXPECT_EQ(mon.health(0).missed_pulses, 2u);
  EXPECT_EQ(mon.health(0).pulses, 1u);
  EXPECT_DOUBLE_EQ(mon.health(0).ewma_fast, 0.8);
}

TEST(HealthMonitor, AggregatesAcrossTheFleet) {
  HealthMonitor mon(4);
  for (int i = 0; i < 12; ++i) {
    mon.record_pulse(0, 1.0);
    mon.record_pulse(1, 1.0 * std::pow(0.9, i));
    mon.record_pulse(2, 0.9 * std::pow(0.92, i));
    mon.record_pulse(3, 0.95);
  }
  EXPECT_EQ(mon.degrading_count(), 2u);
  const double ttf = mon.min_time_to_failure();
  EXPECT_LT(ttf, kInf);
  EXPECT_LE(ttf, mon.health(1).time_to_failure);
  EXPECT_LE(ttf, mon.health(2).time_to_failure);
}

TEST(HealthMonitor, RejectsBadConfigAndRange) {
  EXPECT_THROW(HealthMonitor(2, HealthMonitorConfig{.fast_alpha = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(HealthMonitor(2, HealthMonitorConfig{.min_pulses = 0}),
               std::invalid_argument);
  HealthMonitor mon(2);
  EXPECT_THROW(mon.record_pulse(2, 1.0), std::invalid_argument);
  EXPECT_THROW(mon.record_pulse(0, -1.0), std::invalid_argument);
  EXPECT_THROW((void)mon.health(5), std::invalid_argument);
}

TEST(HealthInformedPredictor, ScalesInnerEstimate) {
  auto inner = std::make_unique<predict::LastValuePredictor>(2);
  inner->observe(0, 0.8);
  predict::HealthInformedPredictor hp(std::move(inner),
                                      [](std::size_t) { return 0.5; });
  EXPECT_DOUBLE_EQ(hp.predict(0), 0.4);
  hp.observe(0, 0.6);  // observations pass through to the inner model
  EXPECT_DOUBLE_EQ(hp.predict(0), 0.3);
}

TEST(HealthInformedPredictor, DegradesToInnerOnBadScale) {
  auto make = [](predict::HealthInformedPredictor::ScaleFn fn) {
    auto inner = std::make_unique<predict::LastValuePredictor>(1);
    inner->observe(0, 0.8);
    return predict::HealthInformedPredictor(std::move(inner), std::move(fn));
  };
  EXPECT_DOUBLE_EQ(make({}).predict(0), 0.8);  // empty callback
  EXPECT_DOUBLE_EQ(make([](std::size_t) { return 1.7; }).predict(0), 0.8);
  EXPECT_DOUBLE_EQ(make([](std::size_t) { return 0.0; }).predict(0), 0.8);
  EXPECT_DOUBLE_EQ(make([](std::size_t) { return -2.0; }).predict(0), 0.8);
}

// Regression for the observed-speed recovery-window bias: the health pulse
// divides a worker's full round work (base + §4.3 recovery extras) by its
// full busy window (base compute + recovery). The pre-fix formulation
// divided total work by the base window only, so on a constant-speed
// cluster any worker that absorbed reassigned chunks got a baseline
// *above* its true speed. With the clamp, no pulse can exceed true speed
// on a constant-speed fleet — recovery or not.
TEST(HealthMonitor, RecoveryWindowDoesNotInflateEngineBaselines) {
  test::FunctionalMatVec f(12, 10);
  // 11 workers at speed 1.0, one 5x straggler; an equal-speed predictor
  // mispredicts the straggler every round, so the timeout fires and its
  // chunks are reassigned to the fast workers (recovery extras).
  auto traces = test::uniform_traces(12);
  traces[11] = sim::SpeedTrace::constant(0.2);
  core::EngineConfig cfg;
  cfg.chunks_per_partition = kChunks;
  core::CodedComputeEngine engine(
      f.job, make_spec(traces), cfg,
      std::make_unique<predict::EqualSpeedPredictor>());

  bool recovered = false;
  for (int round = 0; round < 4; ++round) {
    const core::RoundResult r = engine.run_round(f.x);
    recovered = recovered || r.stats.reassigned_chunks > 0;
  }
  ASSERT_TRUE(recovered) << "setup must exercise the recovery path";

  const telemetry::HealthMonitor* mon = engine.health_monitor();
  ASSERT_NE(mon, nullptr);
  for (std::size_t w = 0; w < 11; ++w) {
    // Fast workers ran at exactly 1.0; an inflated pulse would push the
    // fast EWMA above it. (Slightly below is fine: windows include
    // non-compute overheads.)
    EXPECT_LE(mon->health(w).ewma_fast, 1.0 + 1e-9) << "worker " << w;
    EXPECT_GT(mon->health(w).pulses, 0u) << "worker " << w;
  }
}

// The uncoded baselines expose no monitor: the base-class hook stays null.
TEST(HealthMonitor, EngineExposesMonitorThroughStrategyEngine) {
  test::FunctionalMatVec f(6, 4);
  core::EngineConfig cfg;
  cfg.chunks_per_partition = kChunks;
  cfg.oracle_speeds = true;
  core::CodedComputeEngine engine(f.job, test::make_spec(test::uniform_traces(6)),
                                  cfg);
  const core::StrategyEngine& base = engine;
  EXPECT_NE(base.health_monitor(), nullptr);
  EXPECT_EQ(base.health_monitor()->num_workers(), 6u);
}

}  // namespace
}  // namespace s2c2
