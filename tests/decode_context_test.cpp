// Tests for the cached decode subsystem (coding/decode_context.h): Schur-
// reduced solves against the dense-LU reference, cache-key semantics
// (cached == fresh), charge/cost bookkeeping, the Vandermonde backend, and
// cache reuse across engine rounds — the property that makes iterative
// jobs decode at amortized solve-only cost (docs/PERFORMANCE.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/coding/decode_context.h"
#include "src/coding/generator_matrix.h"
#include "src/core/engine.h"
#include "src/linalg/lu.h"
#include "src/linalg/vandermonde.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace s2c2::coding {
namespace {

/// A random sorted k-subset of {0..n-1}.
std::vector<std::size_t> random_subset(std::size_t n, std::size_t k,
                                       util::Rng& rng) {
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform(0.0, 1.0) *
                                     static_cast<double>(all.size() - i));
    std::swap(all[i], all[std::min(j, all.size() - 1)]);
  }
  all.resize(k);
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<double> random_rhs(std::size_t k, std::size_t width,
                               util::Rng& rng) {
  std::vector<double> rhs(k * width);
  for (auto& v : rhs) v = rng.normal();
  return rhs;
}

/// The seed path: dense LU over the full k x k generator row subset.
std::vector<double> dense_reference(const GeneratorMatrix& g,
                                    std::span<const std::size_t> subset,
                                    std::vector<double> rhs,
                                    std::size_t width) {
  const linalg::LuFactorization lu(g.submatrix(subset));
  lu.solve_inplace(rhs, width);
  return rhs;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

TEST(DecodeContext, SchurSolveMatchesDenseLuAcrossRandomSubsets) {
  // Randomized responder sets mixing systematic and parity rows, both
  // parity families, widths 1 and 3: the issue-level 1e-9 agreement bar.
  for (const ParityKind kind :
       {ParityKind::kGaussian, ParityKind::kVandermonde}) {
    const GeneratorMatrix g(12, 8, kind);
    DecodeContext ctx(g);
    util::Rng rng(kind == ParityKind::kGaussian ? 21u : 22u);
    for (std::size_t trial = 0; trial < 20; ++trial) {
      const std::size_t width = trial % 2 == 0 ? 1 : 3;
      const auto subset = random_subset(g.n(), g.k(), rng);
      auto rhs = random_rhs(g.k(), width, rng);
      const auto reference = dense_reference(g, subset, rhs, width);
      ctx.solve_inplace(subset, rhs, width);
      EXPECT_LT(max_abs_diff(rhs, reference), 1e-9)
          << "trial " << trial << " kind "
          << (kind == ParityKind::kGaussian ? "gaussian" : "vandermonde");
    }
  }
}

TEST(DecodeContext, CachedAndFreshFactorizationsAgree) {
  const GeneratorMatrix g(10, 7);
  util::Rng rng(23);
  DecodeContext warm(g);
  for (std::size_t trial = 0; trial < 8; ++trial) {
    const auto subset = random_subset(g.n(), g.k(), rng);
    const auto rhs = random_rhs(g.k(), 2, rng);

    auto from_warm = rhs;   // first pass may factorize...
    warm.solve_inplace(subset, from_warm, 2);
    auto from_cache = rhs;  // ...second pass must be served from cache
    warm.solve_inplace(subset, from_cache, 2);
    DecodeContext fresh(g);
    auto from_fresh = rhs;
    fresh.solve_inplace(subset, from_fresh, 2);

    // Cached and fresh use identical factors — bit-identical results.
    EXPECT_EQ(max_abs_diff(from_cache, from_fresh), 0.0);
    EXPECT_EQ(max_abs_diff(from_cache, from_warm), 0.0);
    // And both agree with the dense reference to decode precision.
    EXPECT_LT(max_abs_diff(from_cache, dense_reference(g, subset, rhs, 2)),
              1e-9);
  }
  EXPECT_GT(warm.stats().hits, 0u);
}

TEST(DecodeContext, PureSystematicSubsetIsAnExactCopy) {
  const GeneratorMatrix g(9, 5);
  DecodeContext ctx(g);
  std::vector<std::size_t> subset(5);
  std::iota(subset.begin(), subset.end(), 0);
  util::Rng rng(24);
  const auto rhs = random_rhs(5, 4, rng);
  auto solved = rhs;
  ctx.solve_inplace(subset, solved, 4);
  EXPECT_EQ(max_abs_diff(solved, rhs), 0.0);  // identity rows pin all blocks
}

TEST(DecodeContext, ChargeAmortizesFactorizationAcrossRepeats) {
  // The acceptance-criteria shape: k = 40 with the default two-parity
  // slack, a repeated responder set across rounds.
  const std::size_t k = 40, columns = 96, rounds = 4;
  const GeneratorMatrix g(k + 2, k);
  DecodeContext ctx(g);
  util::Rng rng(25);
  // Two parity responders so the factorization term is nonzero.
  std::vector<std::size_t> subset(k);
  std::iota(subset.begin(), subset.end(), 0);
  subset[k - 2] = k;      // drop systematic rows 38/39 for the parities
  subset[k - 1] = k + 1;
  const DecodeCharge first = ctx.charge(subset, columns);
  const DecodeCharge repeat = ctx.charge(subset, columns);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_LT(repeat.flops, first.flops);  // factor term charged once
  EXPECT_GT(repeat.flops, 0.0);          // solves are never free

  // Both entry points share one cache: a solve after a charge is a hit.
  auto rhs = random_rhs(k, 1, rng);
  const std::size_t misses_before = ctx.stats().misses;
  ctx.solve_inplace(subset, rhs, 1);
  EXPECT_EQ(ctx.stats().misses, misses_before);
  EXPECT_EQ(ctx.stats().entries, 1u);

  // The issue's bar, at the cost-model level: >= 5x per-round decode
  // advantage over the seed's dense model for repeated responder sets at
  // k >= 40 (bench_decode_scale measures the same wall-clock).
  double cached_total = first.flops + repeat.flops;
  for (std::size_t r = 2; r < rounds; ++r) {
    cached_total += ctx.charge(subset, columns).flops;
  }
  const double dense_total =
      static_cast<double>(rounds) *
      core::decode_flops(k, k * columns, /*groups=*/1);
  EXPECT_GT(dense_total / cached_total, 5.0);
}

TEST(DecodeContext, VandermondeBackendMatchesDenseLu) {
  // Poly-code style: pure Vandermonde recovery systems in Chebyshev-like
  // evaluation points, solved structurally (no factorization entries ever
  // charge flops) and compared against LU on the formed matrix.
  const std::size_t n = 12, k = 9;
  std::vector<double> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    points[i] = std::cos((2.0 * static_cast<double>(i) + 1.0) /
                         (2.0 * static_cast<double>(n)) * 3.14159265358979);
  }
  DecodeContext ctx(points, k);
  util::Rng rng(26);
  for (std::size_t trial = 0; trial < 10; ++trial) {
    const auto subset = random_subset(n, k, rng);
    std::vector<double> pts(k);
    for (std::size_t j = 0; j < k; ++j) pts[j] = points[subset[j]];
    auto rhs = random_rhs(k, 2, rng);
    const linalg::LuFactorization lu(linalg::vandermonde(pts, k));
    auto reference = rhs;
    lu.solve_inplace(reference, 2);
    ctx.solve_inplace(subset, rhs, 2);
    EXPECT_LT(max_abs_diff(rhs, reference), 1e-8) << "trial " << trial;
  }
}

TEST(DecodeContext, RejectsMalformedSubsets) {
  const GeneratorMatrix g(8, 5);
  DecodeContext ctx(g);
  std::vector<double> rhs(5, 0.0);
  const std::vector<std::size_t> short_subset = {0, 1, 2};
  const std::vector<std::size_t> unsorted = {1, 0, 2, 3, 4};
  const std::vector<std::size_t> dup = {0, 1, 1, 3, 4};
  const std::vector<std::size_t> oob = {0, 1, 2, 3, 8};
  EXPECT_THROW(ctx.solve_inplace(short_subset, rhs, 1),
               std::invalid_argument);
  EXPECT_THROW(ctx.solve_inplace(unsorted, rhs, 1), std::invalid_argument);
  EXPECT_THROW(ctx.solve_inplace(dup, rhs, 1), std::invalid_argument);
  EXPECT_THROW(ctx.solve_inplace(oob, rhs, 1), std::invalid_argument);
}

TEST(DecodeContext, EngineCacheHitsAccrueAcrossRounds) {
  // The tentpole property: an iterative job's responder sets repeat, so
  // the engine's persistent context stops factorizing after round one and
  // every later round decodes from cache.
  test::FunctionalMatVec f(12, 6);
  core::EngineConfig cfg;
  cfg.strategy = core::StrategyKind::kS2C2;
  cfg.chunks_per_partition = test::kChunks;
  cfg.oracle_speeds = true;
  core::CodedComputeEngine engine(
      f.job, test::make_spec(test::uniform_traces(12)), cfg);

  const auto r1 = engine.run_round(f.x);
  ASSERT_TRUE(r1.y.has_value());
  const std::size_t sets_after_round1 = engine.decode_stats().entries;
  EXPECT_GT(sets_after_round1, 0u);
  const std::size_t hits_after_round1 = engine.decode_stats().hits;

  for (std::size_t r = 0; r < 3; ++r) {
    const auto res = engine.run_round(f.x);
    ASSERT_TRUE(res.y.has_value());
    for (std::size_t i = 0; i < f.truth.size(); ++i) {
      EXPECT_NEAR((*res.y)[i], f.truth[i], 1e-8);
    }
  }
  // Uniform cluster => identical allocations => identical responder sets:
  // no new factorizations, only hits.
  EXPECT_EQ(engine.decode_stats().entries, sets_after_round1);
  EXPECT_GT(engine.decode_stats().hits, hits_after_round1);
}

TEST(DecodeContext, BlockSolveBitwiseMatchesPerColumnSolves) {
  // Column independence of the MDS backend: solving a k x b RHS block in
  // one call must produce, in column j, exactly the bits of a width-1
  // solve of column j (the multi-RHS block round leans on this).
  const std::size_t n = 10, k = 7, b = 4;
  const GeneratorMatrix g(n, k);
  DecodeContext ctx(g);
  util::Rng rng(31);
  for (std::size_t trial = 0; trial < 8; ++trial) {
    const auto subset = random_subset(n, k, rng);
    const auto rhs = random_rhs(k, b, rng);
    auto block = rhs;
    ctx.solve_inplace(subset, block, b);
    for (std::size_t j = 0; j < b; ++j) {
      std::vector<double> col(k);
      for (std::size_t r = 0; r < k; ++r) col[r] = rhs[r * b + j];
      ctx.solve_inplace(subset, col, 1);
      for (std::size_t r = 0; r < k; ++r) {
        EXPECT_EQ(block[r * b + j], col[r])
            << "trial " << trial << " col " << j << " row " << r;
      }
    }
  }
}

TEST(DecodeContext, VandermondeBlockSolveBitwiseMatchesPerColumnSolves) {
  // Same column-independence contract for the Björck–Pereyra backend.
  const std::size_t n = 12, k = 8, b = 3;
  std::vector<double> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    points[i] = std::cos((2.0 * static_cast<double>(i) + 1.0) /
                         (2.0 * static_cast<double>(n)) * 3.14159265358979);
  }
  DecodeContext ctx(points, k);
  util::Rng rng(33);
  for (std::size_t trial = 0; trial < 8; ++trial) {
    const auto subset = random_subset(n, k, rng);
    const auto rhs = random_rhs(k, b, rng);
    auto block = rhs;
    ctx.solve_inplace(subset, block, b);
    for (std::size_t j = 0; j < b; ++j) {
      std::vector<double> col(k);
      for (std::size_t r = 0; r < k; ++r) col[r] = rhs[r * b + j];
      ctx.solve_inplace(subset, col, 1);
      for (std::size_t r = 0; r < k; ++r) {
        EXPECT_EQ(block[r * b + j], col[r])
            << "trial " << trial << " col " << j << " row " << r;
      }
    }
  }
}

TEST(DecodeContext, ClearDropsEntriesAndStats) {
  const GeneratorMatrix g(8, 6);
  DecodeContext ctx(g);
  util::Rng rng(27);
  const auto subset = random_subset(8, 6, rng);
  (void)ctx.charge(subset, 8);
  EXPECT_EQ(ctx.stats().entries, 1u);
  ctx.clear();
  EXPECT_EQ(ctx.stats().entries, 0u);
  EXPECT_EQ(ctx.stats().misses, 0u);
  const DecodeCharge again = ctx.charge(subset, 8);
  EXPECT_FALSE(again.cache_hit);  // cleared means refactorize
}

}  // namespace
}  // namespace s2c2::coding
