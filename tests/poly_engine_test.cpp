// Tests for the polynomial-coded Hessian engine (paper §5, §7.2.3).
#include <gtest/gtest.h>

#include "src/core/poly_engine.h"
#include "src/util/rng.h"
#include "src/workload/trace_gen.h"
#include "tests/test_util.h"

namespace s2c2::core {
namespace {

using test::make_spec;

using PolySetup = test::FunctionalHessian;

void expect_hessian_close(const linalg::Matrix& got,
                          const linalg::Matrix& want) {
  test::expect_matrix_close(got, want);
}

TEST(PolyEngine, ConventionalFunctionalDecode) {
  PolySetup s;
  util::Rng trng(1);
  PolyEngineConfig cfg;
  cfg.strategy = core::StrategyKind::kPolyConventional;
  cfg.chunks_per_partition = 8;  // d/a = 8 rows
  PolyCodedEngine engine(
      s.a, 40, 24, 3,
      make_spec(workload::controlled_cluster_traces(12, 2, 0.2, trng)), cfg);
  const auto r = engine.run_round(s.x);
  ASSERT_TRUE(r.hessian.has_value());
  expect_hessian_close(*r.hessian, s.truth);
}

TEST(PolyEngine, S2C2FunctionalDecodeWithStragglers) {
  PolySetup s;
  util::Rng trng(2);
  PolyEngineConfig cfg;
  cfg.strategy = core::StrategyKind::kPoly;
  cfg.chunks_per_partition = 8;
  cfg.oracle_speeds = true;
  PolyCodedEngine engine(
      s.a, 40, 24, 3,
      make_spec(workload::controlled_cluster_traces(12, 3, 0.2, trng)), cfg);
  for (int round = 0; round < 2; ++round) {
    const auto r = engine.run_round(s.x);
    ASSERT_TRUE(r.hessian.has_value());
    expect_hessian_close(*r.hessian, s.truth);
  }
}

TEST(PolyEngine, S2C2FasterThanConventionalWhenAllFast) {
  util::Rng trng(3);
  const auto traces = workload::controlled_cluster_traces(12, 0, 0.0, trng);
  auto run = [&](bool s2c2) {
    PolyEngineConfig cfg;
    cfg.strategy = s2c2 ? StrategyKind::kPoly : StrategyKind::kPolyConventional;
    cfg.chunks_per_partition = 12;
    cfg.oracle_speeds = true;
    PolyCodedEngine engine(std::nullopt, 600, 360, 3, make_spec(traces), cfg);
    return engine.run_rounds(3).back().stats.latency();
  };
  const double conventional = run(false);
  const double squeezed = run(true);
  EXPECT_GT(conventional / squeezed, 1.1);  // ideal 12/9 = 1.33 minus fixed costs
  EXPECT_LT(conventional / squeezed, 1.35);
}

TEST(PolyEngine, TimeoutRecoversFromDeath) {
  PolySetup s;
  std::vector<sim::SpeedTrace> traces;
  for (int w = 0; w < 11; ++w) traces.push_back(sim::SpeedTrace::constant(1.0));
  traces.push_back(sim::SpeedTrace::step(1e-4, 1.0, 0.0));
  PolyEngineConfig cfg;
  cfg.strategy = core::StrategyKind::kPoly;
  cfg.chunks_per_partition = 8;
  PolyCodedEngine engine(s.a, 40, 24, 3, make_spec(std::move(traces)), cfg);
  const auto r = engine.run_round(s.x);
  EXPECT_TRUE(r.stats.timeout_fired);
  ASSERT_TRUE(r.hessian.has_value());
  expect_hessian_close(*r.hessian, s.truth);
  EXPECT_GT(engine.timeout_rate(), 0.0);
}

TEST(PolyEngine, FailureWhenFewerThanASquaredSurvive) {
  std::vector<sim::SpeedTrace> traces;
  for (int w = 0; w < 8; ++w) traces.push_back(sim::SpeedTrace::constant(1.0));
  for (int w = 0; w < 4; ++w) traces.push_back(sim::SpeedTrace::constant(0.0));
  PolyEngineConfig cfg;
  cfg.chunks_per_partition = 8;
  PolyCodedEngine engine(std::nullopt, 40, 24, 3, make_spec(std::move(traces)),
                         cfg);
  EXPECT_THROW(engine.run_round(), std::runtime_error);
}

TEST(PolyEngine, ValidatesShapes) {
  PolyEngineConfig cfg;
  cfg.chunks_per_partition = 8;
  // d not divisible by a.
  EXPECT_THROW(PolyCodedEngine(std::nullopt, 40, 25, 3,
                               ClusterSpec::uniform(12), cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace s2c2::core
