// Tests for the application layer: coded execution must match the uncoded
// reference computation exactly (decode is lossless up to fp error), and
// optimization must make progress.
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/graph_filter.h"
#include "src/apps/hessian.h"
#include "src/apps/logistic_regression.h"
#include "src/apps/pagerank.h"
#include "src/apps/svm.h"
#include "src/util/rng.h"
#include "src/workload/graphs.h"
#include "src/workload/trace_gen.h"

namespace s2c2::apps {
namespace {

core::ClusterSpec straggler_spec(std::size_t n, std::size_t stragglers,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  core::ClusterSpec spec;
  spec.traces = workload::controlled_cluster_traces(n, stragglers, 0.2, rng);
  spec.worker_flops = 1e7;
  return spec;
}

core::EngineConfig s2c2_config() {
  core::EngineConfig cfg;
  cfg.strategy = core::StrategyKind::kS2C2;
  cfg.chunks_per_partition = 12;
  cfg.oracle_speeds = true;
  return cfg;
}

TEST(LogisticRegression, LossDecreasesOverIterations) {
  util::Rng rng(1);
  const auto data = workload::make_classification(240, 20, rng, 3.0, 0.8);
  GdConfig gd;
  gd.iterations = 15;
  gd.k = 6;
  const auto result = train_logistic_regression(data, straggler_spec(12, 2, 2),
                                                s2c2_config(), gd);
  ASSERT_EQ(result.losses.size(), 15u);
  EXPECT_LT(result.losses.back(), result.losses.front() * 0.8);
  EXPECT_GT(result.total_latency, 0.0);
}

TEST(LogisticRegression, CodedTrajectoryMatchesDirectGradientDescent) {
  // Decode is exact, so the coded GD iterates must equal uncoded GD.
  util::Rng rng(3);
  const auto data = workload::make_classification(120, 10, rng, 3.0, 0.8);
  GdConfig gd;
  gd.iterations = 5;
  gd.k = 3;
  gd.learning_rate = 0.3;
  const auto coded = train_logistic_regression(data, straggler_spec(6, 1, 4),
                                               s2c2_config(), gd);
  // Direct reference.
  linalg::Vector w(10, 0.0);
  for (int it = 0; it < 5; ++it) {
    const auto g = logistic_gradient(data, w, gd.l2_reg);
    linalg::axpy(-gd.learning_rate, g, w);
  }
  for (std::size_t j = 0; j < w.size(); ++j) {
    EXPECT_NEAR(coded.weights[j], w[j], 1e-6);
  }
}

TEST(LogisticRegression, GradientMatchesFiniteDifference) {
  util::Rng rng(5);
  const auto data = workload::make_classification(40, 6, rng);
  linalg::Vector w(6);
  for (auto& v : w) v = rng.normal(0.0, 0.1);
  const auto grad = logistic_gradient(data, w, 1e-3);
  const double eps = 1e-6;
  for (std::size_t j = 0; j < 6; ++j) {
    linalg::Vector wp = w, wm = w;
    wp[j] += eps;
    wm[j] -= eps;
    const double num =
        (logistic_loss(data, wp, 1e-3) - logistic_loss(data, wm, 1e-3)) /
        (2 * eps);
    EXPECT_NEAR(grad[j], num, 1e-5);
  }
}

TEST(Svm, ObjectiveDecreases) {
  util::Rng rng(7);
  const auto data = workload::make_classification(240, 20, rng, 4.0, 0.6);
  SvmConfig cfg;
  cfg.iterations = 15;
  cfg.k = 6;
  const auto result =
      train_svm(data, straggler_spec(12, 3, 8), s2c2_config(), cfg);
  EXPECT_LT(result.objectives.back(), result.objectives.front());
}

TEST(Svm, SeparableDataReachesLowHinge) {
  util::Rng rng(9);
  const auto data = workload::make_classification(200, 10, rng, 6.0, 0.3);
  SvmConfig cfg;
  cfg.iterations = 40;
  cfg.k = 3;
  cfg.learning_rate = 0.5;
  const auto result =
      train_svm(data, straggler_spec(6, 0, 10), s2c2_config(), cfg);
  EXPECT_LT(result.objectives.back(), 0.3);
}

TEST(PageRank, CodedMatchesDirect) {
  util::Rng rng(11);
  const auto adj = workload::power_law_digraph(240, 3, rng);
  PageRankConfig cfg;
  cfg.max_iterations = 12;
  cfg.tolerance = 0.0;  // run exactly 12 iterations for comparability
  cfg.k = 6;
  const auto coded =
      coded_pagerank(adj, straggler_spec(12, 2, 12), s2c2_config(), cfg);
  const auto direct = pagerank_direct(adj, cfg.damping, 12);
  ASSERT_EQ(coded.ranks.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(coded.ranks[i], direct[i], 1e-8);
  }
  EXPECT_EQ(coded.iterations, 12u);
}

TEST(PageRank, RanksSumToOneAndHubsRankHigh) {
  util::Rng rng(13);
  const auto adj = workload::power_law_digraph(300, 3, rng);
  const auto ranks = pagerank_direct(adj, 0.85, 40);
  double sum = 0.0;
  for (double r : ranks) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // Node 0 (oldest, most attached) should out-rank the median node.
  std::vector<double> sorted(ranks.begin(), ranks.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(ranks[0], sorted[150]);
}

TEST(PageRank, EarlyExitOnTolerance) {
  util::Rng rng(15);
  const auto adj = workload::power_law_digraph(120, 3, rng);
  PageRankConfig cfg;
  cfg.max_iterations = 100;
  cfg.tolerance = 1e-4;
  cfg.k = 3;
  const auto result =
      coded_pagerank(adj, straggler_spec(6, 0, 16), s2c2_config(), cfg);
  EXPECT_LT(result.iterations, 100u);
}

TEST(GraphFilter, CodedMatchesDirect) {
  util::Rng rng(17);
  const auto adj = workload::random_undirected(180, 0.05, rng);
  const auto lap = workload::combinatorial_laplacian(adj);
  linalg::Vector signal(180);
  for (auto& v : signal) v = rng.normal();
  GraphFilterConfig cfg;
  cfg.coefficients = {1.0, -0.4, 0.1, -0.02};  // 3-hop filter
  cfg.k = 6;
  const auto coded = coded_graph_filter(lap, signal, straggler_spec(12, 1, 18),
                                        s2c2_config(), cfg);
  const auto direct = graph_filter_direct(lap, signal, cfg.coefficients);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(coded.filtered[i], direct[i], 1e-7);
  }
}

TEST(GraphFilter, ZeroHopIsScaledIdentity) {
  util::Rng rng(19);
  const auto adj = workload::random_undirected(60, 0.1, rng);
  const auto lap = workload::combinatorial_laplacian(adj);
  linalg::Vector signal(60, 2.0);
  const auto out = graph_filter_direct(lap, signal, {3.0});
  for (double v : out) EXPECT_DOUBLE_EQ(v, 6.0);
}

TEST(Hessian, CodedMatchesDirect) {
  util::Rng rng(21);
  const auto a = linalg::Matrix::random_uniform(60, 24, rng);
  linalg::Vector x(60);
  for (auto& v : x) v = rng.uniform(0.05, 0.25);  // σ(1-σ)-like weights
  HessianConfig cfg;
  cfg.a_blocks = 3;
  cfg.chunks_per_partition = 8;
  cfg.oracle_speeds = true;
  const auto result = coded_hessian(a, x, straggler_spec(12, 2, 22), cfg);
  const auto truth = coding::PolyCode::hessian_direct(a, x);
  const double scale = truth.frobenius_norm() + 1.0;
  EXPECT_LT(result.hessian.max_abs_diff(truth) / scale, 1e-6);
  EXPECT_GT(result.latency, 0.0);
}

}  // namespace
}  // namespace s2c2::apps
