// Unit tests for the dense linear-algebra substrate.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/linalg/matrix.h"
#include "src/util/rng.h"

namespace s2c2::linalg {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, FromDataValidatesSize) {
  EXPECT_NO_THROW(Matrix(2, 2, {1, 2, 3, 4}));
  EXPECT_THROW(Matrix(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(Matrix, IdentityMatvecIsIdentityMap) {
  const Matrix id = Matrix::identity(4);
  const Vector x{1.0, -2.0, 3.0, 0.5};
  const Vector y = id.matvec(x);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(Matrix, MatvecMatchesManual) {
  const Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const Vector y = m.matvec(std::vector<double>{1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, MatvecSizeMismatchThrows) {
  const Matrix m(2, 3);
  EXPECT_THROW(m.matvec(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Matrix, MatvecTransposedMatchesExplicitTranspose) {
  util::Rng rng(11);
  const Matrix m = Matrix::random_uniform(7, 5, rng);
  Vector x(7);
  for (auto& v : x) v = rng.normal();
  const Vector a = m.matvec_transposed(x);
  const Vector b = m.transposed().matvec(x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Matrix, MatmulAgainstManual) {
  const Matrix a(2, 2, {1, 2, 3, 4});
  const Matrix b(2, 2, {5, 6, 7, 8});
  const Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulIdentityIsNoop) {
  util::Rng rng(13);
  const Matrix a = Matrix::random_normal(6, 6, rng);
  const Matrix c = a.matmul(Matrix::identity(6));
  EXPECT_LT(c.max_abs_diff(a), 1e-12);
}

TEST(Matrix, MatmulBlockedMatchesNaiveOnOddSizes) {
  // Sizes straddling the 64-wide blocking.
  util::Rng rng(17);
  const Matrix a = Matrix::random_uniform(70, 65, rng);
  const Matrix b = Matrix::random_uniform(65, 66, rng);
  const Matrix c = a.matmul(b);
  // Naive check on a sample of entries.
  for (std::size_t r = 0; r < 70; r += 13) {
    for (std::size_t col = 0; col < 66; col += 11) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 65; ++k) acc += a(r, k) * b(k, col);
      EXPECT_NEAR(c(r, col), acc, 1e-9);
    }
  }
}

TEST(Matrix, TransposeInvolution) {
  util::Rng rng(19);
  const Matrix a = Matrix::random_normal(4, 9, rng);
  EXPECT_LT(a.transposed().transposed().max_abs_diff(a), 1e-15);
}

TEST(Matrix, RowBlockExtractsRows) {
  const Matrix a(3, 2, {1, 2, 3, 4, 5, 6});
  const Matrix b = a.row_block(1, 3);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_DOUBLE_EQ(b(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 6.0);
  EXPECT_THROW(a.row_block(2, 4), std::invalid_argument);
}

TEST(Matrix, VstackRoundTripsRowBlocks) {
  util::Rng rng(23);
  const Matrix a = Matrix::random_uniform(6, 3, rng);
  const std::vector<Matrix> blocks{a.row_block(0, 2), a.row_block(2, 6)};
  const Matrix b = Matrix::vstack(blocks);
  EXPECT_LT(b.max_abs_diff(a), 1e-15);
}

TEST(Matrix, VstackRejectsColumnMismatch) {
  const std::vector<Matrix> blocks{Matrix(1, 2), Matrix(1, 3)};
  EXPECT_THROW(Matrix::vstack(blocks), std::invalid_argument);
}

TEST(Matrix, AddScaledAndScale) {
  Matrix a(1, 2, {1, 2});
  const Matrix b(1, 2, {10, 20});
  a.add_scaled(b, 0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 12.0);
  a.scale(2.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 12.0);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix a(1, 2, {3, 4});
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(VectorOps, DotAxpyNorm) {
  const Vector a{1, 2, 3};
  Vector b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3.0, 4.0}), 5.0);
  EXPECT_THROW((void)dot(a, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(VectorOps, MaxAbsDiff) {
  const Vector a{1, 2};
  const Vector b{1.5, 1.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 1.0);
}

TEST(VectorOps, SigmoidBounds) {
  const Vector y = sigmoid(std::vector<double>{-100.0, 0.0, 100.0});
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(y[1], 0.5);
  EXPECT_NEAR(y[2], 1.0, 1e-12);
}

// Property sweep: matvec linearity A(ax + by) == a·Ax + b·By over shapes.
class MatvecLinearity : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MatvecLinearity, Holds) {
  const auto [r, c] = GetParam();
  util::Rng rng(100 + r * 31 + c);
  const Matrix m = Matrix::random_normal(r, c, rng);
  Vector x(c), y(c);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  Vector combo(c);
  for (std::size_t i = 0; i < combo.size(); ++i) {
    combo[i] = 2.0 * x[i] - 3.0 * y[i];
  }
  const Vector lhs = m.matvec(combo);
  Vector rhs = m.matvec(x);
  const Vector my = m.matvec(y);
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    rhs[i] = 2.0 * rhs[i] - 3.0 * my[i];
  }
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    EXPECT_NEAR(lhs[i], rhs[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatvecLinearity,
                         ::testing::Values(std::pair{1, 1}, std::pair{3, 7},
                                           std::pair{16, 16}, std::pair{65, 3},
                                           std::pair{128, 70}));

}  // namespace
}  // namespace s2c2::linalg
