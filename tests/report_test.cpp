// Report-layer tests: the CSV/markdown renderers must be pure and
// deterministic (byte-identical regeneration at any thread count — the
// property the CI report job diffs for), shaped right, and normalized
// against the correct reference cells.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/report/report.h"

namespace s2c2::report {
namespace {

/// Small but representative config: all four strategies on two apps and
/// two traces, short jobs, two-round predictor matrix.
ReportConfig small_config() {
  ReportConfig cfg = ReportConfig::defaults();
  cfg.job_base.max_iterations = 5;
  cfg.grid.apps = {harness::JobApp::kLogReg, harness::JobApp::kPageRank};
  cfg.grid.traces = {harness::TraceProfile::kControlledStragglers,
                     harness::TraceProfile::kVolatileCloud};
  cfg.predictor_rounds = 2;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_lines(const std::string& s) {
  std::size_t n = 0;
  for (const char c : s) n += c == '\n' ? 1 : 0;
  return n;
}

TEST(Report, ArtifactsByteIdenticalAtAnyThreadCount) {
  ReportConfig serial = small_config();
  serial.jobs = 1;
  ReportConfig parallel = small_config();
  parallel.jobs = 4;
  const ReportInputs a = run_report_inputs(serial);
  const ReportInputs b = run_report_inputs(parallel);
  EXPECT_EQ(a.suite.fingerprint(), b.suite.fingerprint());
  EXPECT_EQ(a.predictor_matrix.fingerprint(),
            b.predictor_matrix.fingerprint());
  EXPECT_EQ(job_completion_csv(a.suite), job_completion_csv(b.suite));
  EXPECT_EQ(utilization_csv(a.suite), utilization_csv(b.suite));
  EXPECT_EQ(predictor_sensitivity_csv(a.predictor_matrix),
            predictor_sensitivity_csv(b.predictor_matrix));
  EXPECT_EQ(reproduction_markdown(a), reproduction_markdown(b));
}

TEST(Report, JobCompletionCsvShape) {
  const ReportInputs inputs = run_report_inputs(small_config());
  const std::string csv = job_completion_csv(inputs.suite);
  // Header + one row per job (2 apps x 4 strategies x 2 traces).
  EXPECT_EQ(count_lines(csv), 1u + inputs.suite.jobs.size());
  EXPECT_EQ(csv.find("app,trace,strategy,"), 0u);
  // S2C2 rows normalize to exactly 1 against themselves.
  EXPECT_NE(csv.find("logreg,controlled,s2c2,oracle,0,"), std::string::npos);
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);  // header
  while (std::getline(lines, line)) {
    if (line.find(",s2c2,") == std::string::npos) continue;
    // normalized_vs_s2c2 is the 10th comma-separated field.
    std::istringstream fields(line);
    std::string field;
    for (int i = 0; i < 10; ++i) std::getline(fields, field, ',');
    EXPECT_EQ(field, "1") << line;
  }
}

TEST(Report, UtilizationCsvReflectsWasteOrdering) {
  const ReportInputs inputs = run_report_inputs(small_config());
  const harness::JobResult* s2c2 = inputs.suite.find(
      harness::JobApp::kLogReg, harness::StrategyKind::kS2C2,
      harness::TraceProfile::kControlledStragglers);
  const harness::JobResult* mds = inputs.suite.find(
      harness::JobApp::kLogReg, harness::StrategyKind::kMds,
      harness::TraceProfile::kControlledStragglers);
  ASSERT_NE(s2c2, nullptr);
  ASSERT_NE(mds, nullptr);
  // Conventional MDS cancels n - k workers per round; S2C2 uses everyone.
  EXPECT_LT(s2c2->total_wasted, mds->total_wasted);
  const std::string csv = utilization_csv(inputs.suite);
  EXPECT_EQ(count_lines(csv), 1u + inputs.suite.jobs.size());
  EXPECT_EQ(csv.find("app,trace,strategy,useful_work,wasted_work,"), 0u);
}

TEST(Report, PredictorCsvNormalizesAgainstOracle) {
  const ReportInputs inputs = run_report_inputs(small_config());
  const std::string csv = predictor_sensitivity_csv(inputs.predictor_matrix);
  EXPECT_EQ(csv.find("predictor,workload,trace,"), 0u);
  // Every oracle row's normalized column is exactly 1.
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);
  bool saw_oracle = false, saw_learned = false;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string predictor, skip, norm;
    std::getline(fields, predictor, ',');
    for (int i = 0; i < 3; ++i) std::getline(fields, skip, ',');
    std::getline(fields, norm, ',');
    if (predictor == "oracle") {
      saw_oracle = true;
      EXPECT_EQ(norm, "1") << line;
    } else {
      saw_learned = true;
      EXPECT_FALSE(norm.empty()) << line;
    }
  }
  EXPECT_TRUE(saw_oracle);
  EXPECT_TRUE(saw_learned);
}

TEST(Report, MarkdownCarriesFigureMappingAndDeviations) {
  const ReportInputs inputs = run_report_inputs(small_config());
  const std::string md = reproduction_markdown(inputs);
  // The documented paper anchors (ISSUE: §4.3 timeout, §7 Figs 7-10).
  for (const char* anchor :
       {"§4.3", "§6.1", "Figs 6–7", "Fig 8", "Figs 9/11", "Fig 10",
        "## Figure-by-figure mapping", "## Known deviations from the paper",
        "## Normalized job completion time",
        "## Compute-utilization / waste breakdown",
        "## Convergence integrity"}) {
    EXPECT_NE(md.find(anchor), std::string::npos) << anchor;
  }
  // Fingerprints are embedded so regenerated reports are self-checking.
  EXPECT_NE(md.find(inputs.suite.fingerprint()), std::string::npos);
  EXPECT_NE(md.find(inputs.predictor_matrix.fingerprint()),
            std::string::npos);
  // Every strategy column shows up in the tables.
  for (const auto s : harness::all_job_strategies()) {
    EXPECT_NE(md.find(core::strategy_name(s)), std::string::npos);
  }
}

TEST(Report, GenerateReportWritesByteIdenticalFiles) {
  const std::string dir_a = testing::TempDir() + "s2c2_report_a";
  const std::string dir_b = testing::TempDir() + "s2c2_report_b";
  ReportConfig cfg_a = small_config();
  cfg_a.out_dir = dir_a;
  cfg_a.jobs = 1;
  ReportConfig cfg_b = small_config();
  cfg_b.out_dir = dir_b;
  cfg_b.jobs = 3;
  const ReportArtifacts a = generate_report(cfg_a);
  const ReportArtifacts b = generate_report(cfg_b);
  EXPECT_EQ(a.suite_fingerprint, b.suite_fingerprint);
  EXPECT_EQ(slurp(a.job_completion_path), slurp(b.job_completion_path));
  EXPECT_EQ(slurp(a.utilization_path), slurp(b.utilization_path));
  EXPECT_EQ(slurp(a.predictor_sensitivity_path),
            slurp(b.predictor_sensitivity_path));
  EXPECT_EQ(slurp(a.reproduction_path), slurp(b.reproduction_path));
  EXPECT_FALSE(slurp(a.reproduction_path).empty());
  for (const std::string& p :
       {a.job_completion_path, a.utilization_path,
        a.predictor_sensitivity_path, a.reproduction_path,
        b.job_completion_path, b.utilization_path,
        b.predictor_sensitivity_path, b.reproduction_path}) {
    std::remove(p.c_str());
  }
}

}  // namespace
}  // namespace s2c2::report
