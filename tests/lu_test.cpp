// Unit tests for the partial-pivot LU factorization.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/linalg/lu.h"
#include "src/util/rng.h"

namespace s2c2::linalg {
namespace {

TEST(Lu, SolvesHandSystem) {
  // 2x + y = 5 ; x + 3y = 10  ->  x = 1, y = 3.
  const Matrix a(2, 2, {2, 1, 1, 3});
  const LuFactorization lu(a);
  const Vector x = lu.solve(std::vector<double>{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RejectsNonSquare) {
  EXPECT_THROW({ LuFactorization lu(Matrix(2, 3)); }, std::invalid_argument);
}

TEST(Lu, SingularThrowsDomainError) {
  const Matrix a(2, 2, {1, 2, 2, 4});
  EXPECT_THROW({ LuFactorization lu(a); }, std::domain_error);
}

TEST(Lu, PermutationMatrixSolve) {
  // Requires pivoting: zero on the leading diagonal.
  const Matrix a(2, 2, {0, 1, 1, 0});
  const LuFactorization lu(a);
  const Vector x = lu.solve(std::vector<double>{3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SolveMatrixMultipleRhs) {
  util::Rng rng(5);
  const Matrix a = Matrix::random_normal(5, 5, rng);
  const Matrix b = Matrix::random_normal(5, 3, rng);
  const LuFactorization lu(a);
  const Matrix x = lu.solve_matrix(b);
  const Matrix residual = a.matmul(x);
  EXPECT_LT(residual.max_abs_diff(b), 1e-9);
}

TEST(Lu, SolveInplaceLayoutValidation) {
  const Matrix a = Matrix::identity(3);
  const LuFactorization lu(a);
  std::vector<double> rhs(5, 1.0);  // not 3 * width for any width
  EXPECT_THROW(lu.solve_inplace(rhs, 2), std::invalid_argument);
}

TEST(Lu, RcondIdentityIsOne) {
  const LuFactorization lu(Matrix::identity(4));
  EXPECT_DOUBLE_EQ(lu.rcond_estimate(), 1.0);
}

TEST(Lu, RcondDetectsBadScaling) {
  Matrix a = Matrix::identity(3);
  a(2, 2) = 1e-12;
  const LuFactorization lu(a);
  EXPECT_LT(lu.rcond_estimate(), 1e-10);
}

// Property sweep: random systems solve to small residual across sizes.
class LuRandomSolve : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomSolve, ResidualSmall) {
  const int n = GetParam();
  util::Rng rng(1000 + n);
  const Matrix a = Matrix::random_normal(n, n, rng);
  Vector b(n);
  for (auto& v : b) v = rng.normal();
  const LuFactorization lu(a);
  const Vector x = lu.solve(b);
  const Vector ax = a.matvec(x);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(ax[i], b[i], 1e-7) << "size " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSolve,
                         ::testing::Values(1, 2, 3, 7, 12, 25, 40, 64));

}  // namespace
}  // namespace s2c2::linalg
