// Tests for the discrete-event core: ordering, determinism, cancellation.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"

namespace s2c2::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(0); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run_next();
  EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, CancelledEventsDoNotRun) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(1.0, [&] { ran = true; });
  h.cancel();
  EXPECT_TRUE(h.cancelled());
  q.run_until_empty();
  EXPECT_FALSE(ran);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);  // cancelled events do not advance time
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule_after(1.0, chain);
  };
  q.schedule(0.0, chain);
  q.run_until_empty();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, EventsCanCancelOtherEvents) {
  EventQueue q;
  bool victim_ran = false;
  EventHandle victim = q.schedule(2.0, [&] { victim_ran = true; });
  q.schedule(1.0, [&] { victim.cancel(); });
  q.run_until_empty();
  EXPECT_FALSE(victim_ran);
}

TEST(EventQueue, RunBudgetGuardsAgainstRunaway) {
  EventQueue q;
  std::function<void()> forever = [&] { q.schedule_after(1.0, forever); };
  q.schedule(0.0, forever);
  EXPECT_THROW(q.run_until_empty(100), std::logic_error);
}

TEST(EventQueue, RunNextReturnsFalseWhenDrained) {
  EventQueue q;
  EXPECT_FALSE(q.run_next());
  q.schedule(1.0, [] {});
  EXPECT_TRUE(q.run_next());
  EXPECT_FALSE(q.run_next());
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace s2c2::sim
