// Tests for the Fig 3 storage-overhead study.
#include <gtest/gtest.h>

#include "src/baselines/storage_study.h"

namespace s2c2::baselines {
namespace {

TEST(IntervalSet, InsertAndMeasure) {
  IntervalSet s;
  s.insert(0, 10);
  EXPECT_EQ(s.total_length(), 10u);
  s.insert(20, 30);
  EXPECT_EQ(s.total_length(), 20u);
  EXPECT_EQ(s.num_intervals(), 2u);
}

TEST(IntervalSet, MergesOverlaps) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(5, 15);
  EXPECT_EQ(s.total_length(), 15u);
  EXPECT_EQ(s.num_intervals(), 1u);
}

TEST(IntervalSet, MergesTouchingIntervals) {
  IntervalSet s;
  s.insert(0, 5);
  s.insert(5, 10);
  EXPECT_EQ(s.num_intervals(), 1u);
  EXPECT_EQ(s.total_length(), 10u);
}

TEST(IntervalSet, BridgingInsertMergesMultiple) {
  IntervalSet s;
  s.insert(0, 2);
  s.insert(4, 6);
  s.insert(8, 10);
  s.insert(1, 9);
  EXPECT_EQ(s.num_intervals(), 1u);
  EXPECT_EQ(s.total_length(), 10u);
}

TEST(IntervalSet, EmptyInsertIgnored) {
  IntervalSet s;
  s.insert(3, 3);
  EXPECT_EQ(s.total_length(), 0u);
  EXPECT_THROW(s.insert(5, 4), std::invalid_argument);
}

TEST(IntervalSet, Contains) {
  IntervalSet s;
  s.insert(2, 5);
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.contains(4));
  EXPECT_FALSE(s.contains(5));
  EXPECT_FALSE(s.contains(0));
}

TEST(StorageStudy, ConstantEqualSpeedsNeedOnlyOneShare) {
  // Identical speeds every round: each worker's range never moves.
  const std::vector<std::vector<double>> speeds(10, std::vector<double>(4, 1.0));
  const auto result = run_storage_study(speeds, 1000, 3);
  EXPECT_NEAR(result.uncoded_mean_fraction.back(), 0.25, 1e-6);
  EXPECT_NEAR(result.s2c2_fraction, 1.0 / 3.0, 1e-12);
}

TEST(StorageStudy, ShiftingSpeedsGrowStorage) {
  // Rotate which worker is fast: allocation boundaries sweep the matrix and
  // every worker accumulates coverage.
  std::vector<std::vector<double>> speeds;
  for (int r = 0; r < 40; ++r) {
    std::vector<double> row(4, 1.0);
    row[static_cast<std::size_t>(r) % 4] = 4.0;
    speeds.push_back(row);
  }
  const auto result = run_storage_study(speeds, 1200, 10);
  EXPECT_GT(result.uncoded_mean_fraction.back(),
            result.uncoded_mean_fraction.front() * 1.5);
  // Fig 3's qualitative claim: far above the S2C2 constant (1/k).
  EXPECT_GT(result.uncoded_mean_fraction.back(), 3.0 * result.s2c2_fraction);
}

TEST(StorageStudy, FractionIsMonotoneNonDecreasing) {
  std::vector<std::vector<double>> speeds;
  for (int r = 0; r < 20; ++r) {
    speeds.push_back({1.0, 1.0 + 0.1 * r, 1.0, 2.0});
  }
  const auto result = run_storage_study(speeds, 600, 8);
  for (std::size_t t = 1; t < result.uncoded_mean_fraction.size(); ++t) {
    EXPECT_GE(result.uncoded_mean_fraction[t],
              result.uncoded_mean_fraction[t - 1] - 1e-12);
  }
}

TEST(StorageStudy, ValidatesInputs) {
  EXPECT_THROW(run_storage_study({}, 100, 2), std::invalid_argument);
  EXPECT_THROW(run_storage_study({{1.0}, {1.0, 2.0}}, 100, 2),
               std::invalid_argument);
  EXPECT_THROW(run_storage_study({{0.0, 0.0}}, 100, 2), std::invalid_argument);
}

}  // namespace
}  // namespace s2c2::baselines
