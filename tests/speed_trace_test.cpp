// Tests for piecewise-constant speed traces: exact integrals and the
// time/work inverse property.
#include <gtest/gtest.h>

#include "src/sim/speed_trace.h"
#include "src/util/rng.h"

namespace s2c2::sim {
namespace {

TEST(SpeedTrace, ConstantTrace) {
  const SpeedTrace t = SpeedTrace::constant(2.0);
  EXPECT_DOUBLE_EQ(t.speed_at(0.0), 2.0);
  EXPECT_DOUBLE_EQ(t.speed_at(100.0), 2.0);
  EXPECT_DOUBLE_EQ(t.work_between(1.0, 3.0), 4.0);
  EXPECT_DOUBLE_EQ(t.time_to_complete(1.0, 4.0), 3.0);
}

TEST(SpeedTrace, StepTrace) {
  const SpeedTrace t = SpeedTrace::step(10.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(t.speed_at(9.999), 1.0);
  EXPECT_DOUBLE_EQ(t.speed_at(10.0), 0.5);
  // 5 units of work starting at t=8: 2 units by t=10, 3 more at 0.5 -> t=16.
  EXPECT_DOUBLE_EQ(t.time_to_complete(8.0, 5.0), 16.0);
  EXPECT_DOUBLE_EQ(t.work_between(8.0, 16.0), 5.0);
}

TEST(SpeedTrace, ValidatesConstruction) {
  EXPECT_THROW(SpeedTrace({1.0}, {1.0}), std::invalid_argument);  // t0 != 0
  EXPECT_THROW(SpeedTrace({0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(SpeedTrace({0.0}, {-1.0}), std::invalid_argument);
  EXPECT_THROW(SpeedTrace({0.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(SpeedTrace, DeadNodeNeverCompletes) {
  const SpeedTrace t = SpeedTrace::step(5.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(t.time_to_complete(0.0, 4.0), 4.0);
  EXPECT_EQ(t.time_to_complete(0.0, 6.0), SpeedTrace::kNever);
  EXPECT_EQ(t.time_to_complete(10.0, 0.1), SpeedTrace::kNever);
}

TEST(SpeedTrace, ZeroWorkCompletesImmediately) {
  const SpeedTrace t = SpeedTrace::constant(0.0);
  EXPECT_DOUBLE_EQ(t.time_to_complete(3.0, 0.0), 3.0);
}

TEST(SpeedTrace, FromSamples) {
  const std::vector<double> samples{1.0, 0.5, 2.0};
  const SpeedTrace t = SpeedTrace::from_samples(samples, 10.0);
  EXPECT_DOUBLE_EQ(t.speed_at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(t.speed_at(15.0), 0.5);
  EXPECT_DOUBLE_EQ(t.speed_at(25.0), 2.0);
  EXPECT_DOUBLE_EQ(t.speed_at(1000.0), 2.0);  // last sample extends
  EXPECT_DOUBLE_EQ(t.work_between(0.0, 30.0), 35.0);
}

TEST(SpeedTrace, WorkBetweenPartialSegments) {
  const SpeedTrace t({0.0, 2.0, 4.0}, {1.0, 3.0, 0.5});
  EXPECT_DOUBLE_EQ(t.work_between(1.0, 5.0), 1.0 + 6.0 + 0.5);
  EXPECT_DOUBLE_EQ(t.work_between(3.0, 3.0), 0.0);
}

// Property: time_to_complete inverts work_between on random traces.
class TraceInverse : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceInverse, CompleteThenMeasureRoundTrips) {
  util::Rng rng(GetParam());
  // Random piecewise trace with strictly positive speeds.
  std::vector<Time> times{0.0};
  std::vector<double> speeds{rng.uniform(0.1, 2.0)};
  for (int i = 0; i < 10; ++i) {
    times.push_back(times.back() + rng.uniform(0.5, 3.0));
    speeds.push_back(rng.uniform(0.1, 2.0));
  }
  const SpeedTrace t(times, speeds);
  for (int trial = 0; trial < 30; ++trial) {
    const Time t0 = rng.uniform(0.0, 20.0);
    const double work = rng.uniform(0.01, 15.0);
    const Time done = t.time_to_complete(t0, work);
    ASSERT_LT(done, SpeedTrace::kNever);
    EXPECT_NEAR(t.work_between(t0, done), work, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceInverse,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace s2c2::sim
