// Tests for coverage analysis and LU-group coalescing.
#include <gtest/gtest.h>

#include "src/sched/allocation.h"
#include "src/sched/coverage.h"

namespace s2c2::sched {
namespace {

Allocation manual(std::size_t c, std::vector<ChunkRange> ranges) {
  Allocation a;
  a.chunks_per_partition = c;
  a.per_worker = std::move(ranges);
  return a;
}

TEST(Coverage, CountsPerChunk) {
  // Workers: [0,2), [1,3), [2,4) over C=4.
  const Allocation a = manual(4, {{0, 2}, {1, 2}, {2, 2}});
  const auto cov = chunk_coverage(a);
  EXPECT_EQ(cov, (std::vector<std::size_t>{1, 2, 2, 1}));
  EXPECT_TRUE(has_coverage(a, 1));
  EXPECT_FALSE(has_coverage(a, 2));
  EXPECT_FALSE(has_exact_coverage(a, 1));
}

TEST(Coverage, WrapAroundRangesCounted) {
  const Allocation a = manual(4, {{3, 2}, {0, 0}});
  const auto cov = chunk_coverage(a);
  EXPECT_EQ(cov, (std::vector<std::size_t>{1, 0, 0, 1}));
}

TEST(Coverage, ChunkWorkersSorted) {
  const Allocation a = manual(3, {{0, 3}, {1, 2}, {2, 2}});
  const auto per_chunk = chunk_workers(a);
  EXPECT_EQ(per_chunk[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(per_chunk[1], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(per_chunk[2], (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Coverage, GroupsMergeConsecutiveEqualSets) {
  // Exact-2 coverage over C=4 from ranges [0,2),[2,4),[0,2),[2,4).
  const Allocation a = manual(4, {{0, 2}, {2, 2}, {0, 2}, {2, 2}});
  const auto groups = coverage_groups(a);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].first_chunk, 0u);
  EXPECT_EQ(groups[0].num_chunks, 2u);
  EXPECT_EQ(groups[0].workers, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(groups[1].first_chunk, 2u);
  EXPECT_EQ(groups[1].num_chunks, 2u);
}

TEST(Coverage, GroupsOfProportionalAllocationAreFew) {
  // Wrap-around contiguous allocations produce at most ~2n groups.
  const std::vector<double> speeds{3.0, 1.0, 2.0, 0.5, 1.5, 2.5};
  const Allocation a = proportional_allocation(speeds, 4, 60);
  const auto groups = coverage_groups(a);
  EXPECT_LE(groups.size(), 2 * speeds.size());
  std::size_t total = 0;
  for (const auto& g : groups) {
    EXPECT_EQ(g.workers.size(), 4u);  // exact-k sets
    total += g.num_chunks;
  }
  EXPECT_EQ(total, 60u);
}

TEST(Coverage, FullAllocationSingleGroup) {
  const Allocation a = full_allocation(5, 8);
  const auto groups = coverage_groups(a);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].num_chunks, 8u);
  EXPECT_EQ(groups[0].workers.size(), 5u);
}

}  // namespace
}  // namespace s2c2::sched
