// Cross-engine invariants over the scenario matrix (src/harness/):
// determinism under a fixed seed, decodability of every functional cell,
// exact-k allocation coverage on the harness's own traces, and the paper's
// headline waste ordering (S2C2 wastes no more than replication when
// stragglers are present).
#include <gtest/gtest.h>

#include <cmath>

#include "src/harness/matrix_runner.h"
#include "src/harness/scenario_matrix.h"
#include "src/sched/allocation.h"
#include "src/sched/coverage.h"
#include "tests/test_util.h"

namespace s2c2::harness {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.workers = 12;
  cfg.k = 10;
  cfg.stragglers = 2;
  cfg.rounds = 4;
  cfg.seed = 1234;
  cfg.functional = true;
  return cfg;
}

// The acceptance sweep: 4 engines x 3 workloads x 2 speed traces.
MatrixResult acceptance_matrix(std::uint64_t seed) {
  ScenarioConfig cfg = small_config();
  cfg.seed = seed;
  const auto engines = all_engines();
  const std::vector<WorkloadKind> workloads = {
      WorkloadKind::kLogisticRegression, WorkloadKind::kPageRank,
      WorkloadKind::kHessian};
  const std::vector<TraceProfile> traces = {
      TraceProfile::kControlledStragglers, TraceProfile::kVolatileCloud};
  return run_scenario_matrix(cfg, engines, workloads, traces);
}

// The sweep is deterministic, so read-only tests share one run; only the
// determinism test pays for a second, independent computation.
const MatrixResult& shared_acceptance_matrix() {
  static const MatrixResult m = acceptance_matrix(1234);
  return m;
}

TEST(ScenarioMatrix, SweepsFullCrossProduct) {
  const auto& m = shared_acceptance_matrix();
  EXPECT_EQ(m.cells.size(), 4u * 3u * 2u);
  for (const auto e : all_engines()) {
    for (const auto w : {WorkloadKind::kLogisticRegression,
                         WorkloadKind::kPageRank, WorkloadKind::kHessian}) {
      for (const auto t : {TraceProfile::kControlledStragglers,
                           TraceProfile::kVolatileCloud}) {
        const auto* cell = m.find(e, w, t);
        ASSERT_NE(cell, nullptr)
            << core::strategy_name(e) << "/" << workload_name(w) << "/"
            << trace_profile_name(t);
        EXPECT_EQ(cell->rounds, 4u);
      }
    }
  }
  EXPECT_EQ(m.find(StrategyKind::kS2C2, WorkloadKind::kSvm,
                   TraceProfile::kStableCloud),
            nullptr);
}

TEST(ScenarioMatrix, EveryCellHasFinitePositiveLatencies) {
  const auto& m = shared_acceptance_matrix();
  for (const auto& cell : m.cells) {
    ASSERT_EQ(cell.round_latencies.size(), cell.rounds);
    for (const double l : cell.round_latencies) {
      EXPECT_TRUE(std::isfinite(l));
      EXPECT_GT(l, 0.0);
    }
    EXPECT_NEAR(cell.mean_latency,
                cell.total_latency / static_cast<double>(cell.rounds), 1e-12);
    EXPECT_GT(cell.total_useful, 0.0);
  }
}

TEST(ScenarioMatrix, SameSeedProducesIdenticalEventLogs) {
  const auto& m1 = shared_acceptance_matrix();
  const auto m2 = acceptance_matrix(1234);  // fresh, independent computation
  ASSERT_EQ(m1.cells.size(), m2.cells.size());
  for (std::size_t i = 0; i < m1.cells.size(); ++i) {
    const auto& a = m1.cells[i];
    const auto& b = m2.cells[i];
    ASSERT_EQ(a.round_latencies.size(), b.round_latencies.size());
    for (std::size_t r = 0; r < a.round_latencies.size(); ++r) {
      // Bit-exact, not approximately equal: the harness is a reproducible
      // event log, so any drift is a real regression.
      EXPECT_EQ(a.round_latencies[r], b.round_latencies[r])
          << core::strategy_name(a.engine) << "/" << workload_name(a.workload) << "/"
          << trace_profile_name(a.trace) << " round " << r;
    }
    EXPECT_EQ(a.total_wasted, b.total_wasted);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
  }
  EXPECT_EQ(m1.fingerprint(), m2.fingerprint());
}

TEST(ScenarioMatrix, DifferentSeedsProduceDifferentCloudRuns) {
  ScenarioConfig cfg = small_config();
  const auto a = run_cell(cfg, StrategyKind::kS2C2,
                          WorkloadKind::kLogisticRegression,
                          TraceProfile::kVolatileCloud);
  cfg.seed = 5678;
  const auto b = run_cell(cfg, StrategyKind::kS2C2,
                          WorkloadKind::kLogisticRegression,
                          TraceProfile::kVolatileCloud);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(ScenarioMatrix, FunctionalCodedCellsDecodeExactly) {
  const auto& m = shared_acceptance_matrix();
  std::size_t checked = 0;
  for (const auto& cell : m.cells) {
    if (cell.engine == StrategyKind::kS2C2) {
      EXPECT_TRUE(cell.decode_checked);
      EXPECT_LT(cell.max_decode_error, 1e-6)
          << workload_name(cell.workload) << "/"
          << trace_profile_name(cell.trace);
      ++checked;
    }
    if (cell.engine == StrategyKind::kPoly &&
        cell.workload == WorkloadKind::kHessian) {
      EXPECT_TRUE(cell.decode_checked);
      // Vandermonde solves in the poly evaluation points are less
      // conditioned than the MDS decode; tolerance is relative-ish.
      EXPECT_LT(cell.max_decode_error, 1e-5)
          << trace_profile_name(cell.trace);
      ++checked;
    }
  }
  EXPECT_EQ(checked, 3u * 2u + 2u);  // S2C2 on all cells + poly on Hessian
}

TEST(ScenarioMatrix, AllocationsOnHarnessTracesKeepExactKCoverage) {
  // The decodability guarantee behind every S2C2 cell: proportional
  // allocation over the speeds the harness traces realize must cover every
  // chunk exactly k times, at any time point.
  const ScenarioConfig cfg = small_config();
  for (const auto profile : all_trace_profiles()) {
    const auto traces = make_traces(
        profile, cfg,
        trace_salt(cfg.seed, WorkloadKind::kLogisticRegression, profile));
    ASSERT_EQ(traces.size(), cfg.workers);
    for (const double t : {0.0, 0.01, 0.1, 1.0}) {
      std::vector<double> speeds;
      for (const auto& trace : traces) speeds.push_back(trace.speed_at(t));
      const auto alloc = sched::proportional_allocation(
          speeds, cfg.effective_k(), cfg.chunks_per_partition);
      EXPECT_TRUE(sched::has_exact_coverage(alloc, cfg.effective_k()))
          << trace_profile_name(profile) << " at t=" << t;
    }
  }
}

TEST(ScenarioMatrix, EnginesInSameColumnShareClusterTraces) {
  // The comparison-rig contract: the traces a cell runs on depend only on
  // (seed, workload, profile), never on the engine.
  const ScenarioConfig cfg = small_config();
  const auto salt = trace_salt(cfg.seed, WorkloadKind::kPageRank,
                               TraceProfile::kVolatileCloud);
  const auto a = make_traces(TraceProfile::kVolatileCloud, cfg, salt);
  const auto b = make_traces(TraceProfile::kVolatileCloud, cfg, salt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t w = 0; w < a.size(); ++w) {
    for (const double t : {0.0, 0.005, 0.05, 0.5}) {
      EXPECT_EQ(a[w].speed_at(t), b[w].speed_at(t));
    }
  }
}

TEST(ScenarioMatrix, S2C2WastesNoMoreThanReplicationUnderStragglers) {
  const auto& m = shared_acceptance_matrix();
  for (const auto w : {WorkloadKind::kLogisticRegression,
                       WorkloadKind::kPageRank, WorkloadKind::kHessian}) {
    const auto* s2c2 =
        m.find(StrategyKind::kS2C2, w, TraceProfile::kControlledStragglers);
    const auto* repl = m.find(StrategyKind::kReplication, w,
                              TraceProfile::kControlledStragglers);
    ASSERT_NE(s2c2, nullptr);
    ASSERT_NE(repl, nullptr);
    EXPECT_LE(s2c2->mean_wasted_fraction, repl->mean_wasted_fraction + 1e-12)
        << workload_name(w);
  }
}

TEST(ScenarioMatrix, CostOnlyModeRunsAtScale) {
  ScenarioConfig cfg;
  cfg.workers = 12;
  cfg.rounds = 3;
  cfg.seed = 7;
  cfg.functional = false;
  cfg.scale = 0.1;  // keep the sweep fast in unit tests
  const std::vector<StrategyKind> engines = {StrategyKind::kS2C2,
                                           StrategyKind::kReplication};
  const std::vector<WorkloadKind> workloads = {WorkloadKind::kSvm};
  const std::vector<TraceProfile> traces = {
      TraceProfile::kControlledStragglers};
  const auto m = run_scenario_matrix(cfg, engines, workloads, traces);
  ASSERT_EQ(m.cells.size(), 2u);
  for (const auto& cell : m.cells) {
    EXPECT_FALSE(cell.decode_checked);
    EXPECT_GT(cell.mean_latency, 0.0);
  }
  // With two 5x stragglers, S2C2's squeeze must beat waiting on
  // conventional replication recovery.
  EXPECT_LT(m.cells[0].mean_latency, m.cells[1].mean_latency);
}

TEST(ScenarioMatrix, WorkloadShapesRespectPolyDivisibility) {
  ScenarioConfig cfg = small_config();
  for (const auto w : all_workloads()) {
    const auto s = workload_shape(w, cfg);
    EXPECT_GE(s.rows, 1u);
    EXPECT_GE(s.cols, 1u);
    EXPECT_GE(s.a_blocks, 1u);
    EXPECT_LE(s.a_blocks * s.a_blocks, cfg.workers);
  }
  cfg.functional = false;
  cfg.scale = 2.0;
  const auto big = workload_shape(WorkloadKind::kSvm, cfg);
  const auto base = [&] {
    ScenarioConfig c = cfg;
    c.scale = 1.0;
    return workload_shape(WorkloadKind::kSvm, c);
  }();
  EXPECT_EQ(big.rows, 2 * base.rows);
}

// ---- parallel matrix runner (src/harness/matrix_runner.h) ----

// A widened grid small enough for unit tests: 2 engines x 1 workload x
// {controlled, failure} x 2 cluster scales x {oracle, last-value}.
MatrixAxes runner_axes() {
  MatrixAxes axes;
  axes.engines = {StrategyKind::kS2C2, StrategyKind::kReplication};
  axes.workloads = {WorkloadKind::kLogisticRegression};
  axes.traces = {TraceProfile::kControlledStragglers,
                 TraceProfile::kFailureInjection};
  axes.cluster_sizes = {12, 24};
  axes.predictors = {PredictorKind::kOracle, PredictorKind::kLastValue};
  return axes;
}

ScenarioConfig runner_config() {
  ScenarioConfig cfg;
  cfg.workers = 12;
  cfg.rounds = 4;
  cfg.seed = 99;
  cfg.functional = true;
  return cfg;
}

TEST(MatrixRunner, ParallelRunIsByteIdenticalToSerial) {
  // The tentpole determinism contract: every cell owns its seeded RNGs and
  // traces, so a 1-thread and an N-thread sweep must produce byte-equal
  // fingerprints, cell for cell, in the same order.
  const auto serial = run_matrix(runner_config(), runner_axes(), {.jobs = 1});
  const auto parallel =
      run_matrix(runner_config(), runner_axes(), {.jobs = 4});
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].fingerprint(), parallel.cells[i].fingerprint())
        << core::strategy_name(serial.cells[i].engine) << "/n="
        << serial.cells[i].workers << "/"
        << predictor_name(serial.cells[i].predictor) << "/"
        << trace_profile_name(serial.cells[i].trace);
    EXPECT_EQ(serial.cells[i].round_latencies,
              parallel.cells[i].round_latencies);
  }
  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
}

TEST(MatrixRunner, ExpandAxesSkipsPredictorVariantsForPredictionBlindEngines) {
  const auto coords = expand_axes(runner_config(), runner_axes());
  // Per cluster size: replication once per (workload, trace) = 2 cells,
  // s2c2 per predictor = 2 x 2 = 4 cells. Two sizes => 12 cells total.
  EXPECT_EQ(coords.size(), 12u);
  std::size_t replication = 0;
  for (const auto& c : coords) {
    if (c.engine == StrategyKind::kReplication) {
      EXPECT_EQ(c.predictor, PredictorKind::kOracle);
      ++replication;
    }
  }
  EXPECT_EQ(replication, 4u);
}

TEST(MatrixRunner, CellConfigScalesKAndStragglersProportionally) {
  ScenarioConfig base;
  base.workers = 12;
  base.k = 10;
  base.stragglers = 2;
  const auto big = cell_config(base, 48, PredictorKind::kLstm);
  EXPECT_EQ(big.workers, 48u);
  EXPECT_EQ(big.effective_k(), 40u);
  EXPECT_EQ(big.stragglers, 8u);
  EXPECT_EQ(big.predictor, PredictorKind::kLstm);
  // The k = 0 default keeps its n - 2 rule.
  base.k = 0;
  EXPECT_EQ(cell_config(base, 24, PredictorKind::kOracle).effective_k(), 22u);
}

TEST(MatrixRunner, FailureInjectionCellsExerciseRecovery) {
  // The S2C2 engine must *survive* the failure-injection profile: dead
  // workers trip the §4.3 timeout (possibly cascading into recovery
  // waves), and the decode still matches the uncoded reference.
  ScenarioConfig cfg = runner_config();
  const auto cell = run_cell(cfg, StrategyKind::kS2C2,
                             WorkloadKind::kLogisticRegression,
                             TraceProfile::kFailureInjection);
  ASSERT_FALSE(cell.failed) << cell.error;
  EXPECT_GT(cell.timeout_rate, 0.0);
  EXPECT_TRUE(cell.decode_checked);
  EXPECT_LT(cell.max_decode_error, 1e-6);
  // (No waste assertion: a worker that dies before its input arrives has
  // no progress to discard, which this seed happens to produce.)
  EXPECT_GT(cell.total_useful, 0.0);
}

TEST(MatrixRunner, FailureCellsAreDeterministicEvenWhenEnginesFail) {
  // Baselines may legitimately hit unrecoverable cluster failures under
  // failure injection; the cell then records the error as data, and two
  // identical sweeps agree byte-for-byte.
  ScenarioConfig cfg = runner_config();
  cfg.functional = false;
  cfg.scale = 0.05;
  MatrixAxes axes = runner_axes();
  axes.engines = all_engines();
  axes.traces = {TraceProfile::kFailureInjection};
  const auto a = run_matrix(cfg, axes, {.jobs = 3});
  const auto b = run_matrix(cfg, axes, {.jobs = 1});
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].failed, b.cells[i].failed);
    EXPECT_EQ(a.cells[i].error, b.cells[i].error);
    EXPECT_EQ(a.cells[i].fingerprint(), b.cells[i].fingerprint());
  }
  // The S2C2 cells must be among the survivors.
  for (const auto& cell : a.cells) {
    if (cell.engine == StrategyKind::kS2C2) {
      EXPECT_FALSE(cell.failed)
          << "n=" << cell.workers << " "
          << predictor_name(cell.predictor) << ": " << cell.error;
    }
  }
}

TEST(MatrixRunner, PredictorAxisChangesOutcomes) {
  // A learned predictor on volatile traces cannot reproduce the oracle's
  // event log; the axis must actually reach the engines.
  ScenarioConfig cfg = runner_config();
  cfg.predictor = PredictorKind::kOracle;
  const auto oracle = run_cell(cfg, StrategyKind::kS2C2,
                               WorkloadKind::kLogisticRegression,
                               TraceProfile::kVolatileCloud);
  cfg.predictor = PredictorKind::kArima;
  const auto arima = run_cell(cfg, StrategyKind::kS2C2,
                              WorkloadKind::kLogisticRegression,
                              TraceProfile::kVolatileCloud);
  EXPECT_NE(oracle.fingerprint(), arima.fingerprint());
  ASSERT_FALSE(arima.failed) << arima.error;
  EXPECT_TRUE(arima.decode_checked);
  EXPECT_LT(arima.max_decode_error, 1e-6);  // mispredictions never corrupt
}

TEST(MatrixRunner, LstmPredictorCellRunsDeterministically) {
  // The heaviest predictor: in-cell LSTM training must stay deterministic
  // (the trained model is part of the cell's seeded computation).
  ScenarioConfig cfg = runner_config();
  cfg.rounds = 3;
  cfg.predictor = PredictorKind::kLstm;
  const auto a = run_cell(cfg, StrategyKind::kS2C2,
                          WorkloadKind::kLogisticRegression,
                          TraceProfile::kStableCloud);
  const auto b = run_cell(cfg, StrategyKind::kS2C2,
                          WorkloadKind::kLogisticRegression,
                          TraceProfile::kStableCloud);
  ASSERT_FALSE(a.failed) << a.error;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_LT(a.max_decode_error, 1e-6);
}

TEST(ScenarioMatrix, RejectsDegenerateClusters) {
  ScenarioConfig cfg = small_config();
  cfg.workers = 1;
  cfg.k = 1;
  EXPECT_THROW((void)run_cell(cfg, StrategyKind::kS2C2,
                              WorkloadKind::kLogisticRegression,
                              TraceProfile::kControlledStragglers),
               std::invalid_argument);
}

}  // namespace
}  // namespace s2c2::harness
