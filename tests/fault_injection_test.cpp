// Fault-injection suite: deaths, cascades, controlled mis-prediction, and
// the placement cliff — the failure paths a production deployment hits.
#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/core/overdecomp_engine.h"
#include "src/core/replication_engine.h"
#include "src/harness/scenario_matrix.h"
#include "src/predict/predictors.h"
#include "src/util/rng.h"
#include "src/workload/trace_gen.h"
#include "tests/test_util.h"

namespace s2c2::core {
namespace {

using test::kChunks;

ClusterSpec spec_from(std::vector<sim::SpeedTrace> traces) {
  return test::make_spec(std::move(traces));
}

struct Functional : test::FunctionalMatVec {
  Functional(std::size_t n, std::size_t k) : FunctionalMatVec(n, k) {}

  void expect_decode(const RoundResult& r, double tol = 1e-6) const {
    ASSERT_TRUE(r.y.has_value());
    test::expect_close(*r.y, truth, tol);
  }
};

TEST(FaultInjection, TwoSimultaneousDeathsWithinRedundancy) {
  Functional f(12, 6);
  EngineConfig cfg;
  cfg.strategy = StrategyKind::kS2C2;
  cfg.chunks_per_partition = kChunks;
  CodedComputeEngine engine(f.job, spec_from(test::dying_traces(12, 2)), cfg);
  const auto r = engine.run_round(f.x);
  EXPECT_TRUE(r.stats.timeout_fired);
  f.expect_decode(r);
}

TEST(FaultInjection, StaggeredDeathsAcrossRounds) {
  Functional f(12, 6);
  std::vector<sim::SpeedTrace> traces;
  for (int w = 0; w < 12; ++w) {
    traces.push_back(sim::SpeedTrace::constant(1.0));
  }
  // Workers die one by one across the first few rounds (round length is
  // a few hundred microseconds at this scale).
  traces[3] = sim::SpeedTrace::step(1e-3, 1.0, 0.0);
  traces[7] = sim::SpeedTrace::step(2e-3, 1.0, 0.0);
  traces[9] = sim::SpeedTrace::step(3e-3, 1.0, 0.0);
  EngineConfig cfg;
  cfg.strategy = StrategyKind::kS2C2;
  cfg.chunks_per_partition = kChunks;
  CodedComputeEngine engine(f.job, spec_from(std::move(traces)), cfg);
  for (int round = 0; round < 10; ++round) {
    const auto r = engine.run_round(f.x);
    f.expect_decode(r);
  }
  // Three workers are gone; the rest must carry an exact-6 coverage.
  EXPECT_GT(engine.timeout_rate(), 0.0);
}

TEST(FaultInjection, DeathBeyondRedundancyEventuallyThrows) {
  Functional f(6, 4);
  std::vector<sim::SpeedTrace> traces;
  for (int w = 0; w < 3; ++w) traces.push_back(sim::SpeedTrace::constant(1.0));
  for (int w = 0; w < 3; ++w) {
    traces.push_back(sim::SpeedTrace::step(1e-4, 1.0, 0.0));
  }
  EngineConfig cfg;
  cfg.strategy = StrategyKind::kS2C2;
  cfg.chunks_per_partition = kChunks;
  CodedComputeEngine engine(f.job, spec_from(std::move(traces)), cfg);
  EXPECT_THROW((void)engine.run_round(f.x), std::runtime_error);
}

TEST(FaultInjection, RecoveryWorkerSlowButAliveStillDecodes) {
  // The reassignment lands partly on a slow-but-alive worker: the round is
  // long but correct.
  Functional f(6, 4);
  std::vector<sim::SpeedTrace> traces;
  traces.push_back(sim::SpeedTrace::constant(1.0));
  traces.push_back(sim::SpeedTrace::constant(1.0));
  traces.push_back(sim::SpeedTrace::constant(0.3));
  traces.push_back(sim::SpeedTrace::constant(1.0));
  traces.push_back(sim::SpeedTrace::constant(1.0));
  traces.push_back(sim::SpeedTrace::step(1e-4, 1.0, 0.0));  // dies
  EngineConfig cfg;
  cfg.strategy = StrategyKind::kS2C2;
  cfg.chunks_per_partition = kChunks;
  CodedComputeEngine engine(f.job, spec_from(std::move(traces)), cfg);
  const auto r = engine.run_round(f.x);
  EXPECT_TRUE(r.stats.timeout_fired);
  f.expect_decode(r);
}

TEST(FaultInjection, NoisyPredictorRaisesTimeoutRateMonotonically) {
  // Controlled mis-prediction sweep: more corrupted predictions -> more
  // timeout recoveries, never a wrong result.
  Functional f(10, 7);
  double prev_rate = -1.0;
  for (const double corrupt : {0.0, 0.4, 0.9}) {
    std::vector<sim::SpeedTrace> traces;
    for (int w = 0; w < 10; ++w) {
      traces.push_back(sim::SpeedTrace::constant(w % 2 == 0 ? 1.0 : 0.7));
    }
    CodedMatVecJob job(f.a, 10, 7, kChunks);
    EngineConfig cfg;
    cfg.strategy = StrategyKind::kS2C2;
    cfg.chunks_per_partition = kChunks;
    auto inner = std::make_unique<predict::LastValuePredictor>(10);
    auto noisy = std::make_unique<predict::NoisyPredictor>(
        std::move(inner), corrupt, 0.6, 99);
    CodedComputeEngine engine(job, spec_from(std::move(traces)), cfg,
                              std::move(noisy));
    for (int round = 0; round < 10; ++round) {
      const auto r = engine.run_round(f.x);
      ASSERT_TRUE(r.y.has_value());
    }
    EXPECT_GE(engine.timeout_rate(), prev_rate - 0.15)
        << "corrupt=" << corrupt;
    prev_rate = engine.timeout_rate();
  }
  EXPECT_GT(prev_rate, 0.3);  // 90% corruption must hurt
}

TEST(FaultInjection, ReplicationPlacementCliffWithStrictLocality) {
  // Round-robin placement + contiguous stragglers: at stragglers ==
  // replication factor, one partition's holders are all stragglers and
  // strict locality pins the task to a 5x node (the Fig 1 cliff).
  auto latency = [&](std::size_t stragglers) {
    util::Rng rng(4);
    ReplicationConfig cfg;
    cfg.allow_data_movement = false;
    ReplicationEngine engine(
        12000, 100,
        spec_from(workload::controlled_cluster_traces(12, stragglers, 0.0,
                                                      rng)),
        cfg);
    return engine.run_round().stats.latency();
  };
  const double l2 = latency(2);
  const double l3 = latency(3);
  EXPECT_GT(l3, 2.0 * l2);  // the cliff
}

TEST(FaultInjection, ReplicationWithMovementAvoidsTheCliff) {
  auto latency = [&](bool movement) {
    util::Rng rng(4);
    ReplicationConfig cfg;
    cfg.allow_data_movement = movement;
    ReplicationEngine engine(
        12000, 100,
        spec_from(workload::controlled_cluster_traces(12, 3, 0.0, rng)),
        cfg);
    return engine.run_round().stats.latency();
  };
  EXPECT_LT(latency(true), latency(false));
}

TEST(FaultInjection, OverDecompDeadWorkerThrows) {
  std::vector<sim::SpeedTrace> traces(4, sim::SpeedTrace::constant(1.0));
  traces[2] = sim::SpeedTrace::constant(0.0);
  OverDecompConfig cfg;
  cfg.oracle_speeds = true;
  OverDecompositionEngine engine(1200, 40, spec_from(std::move(traces)), cfg);
  // Oracle sees speed 0 -> quota 0 -> partitions migrate off the dead
  // node; the round completes.
  EXPECT_NO_THROW((void)engine.run_round());
  EXPECT_GT(engine.total_migrations(), 0u);
}

TEST(FaultInjection, SameSeedYieldsIdenticalEventLog) {
  // Determinism under failure: every engine, run twice from the same
  // scenario seed on volatile traces, must replay a bit-identical
  // per-round event log (latencies, waste, fingerprint).
  harness::ScenarioConfig cfg;
  cfg.workers = 12;
  cfg.k = 10;
  cfg.stragglers = 3;
  cfg.rounds = 5;
  cfg.seed = 99;
  cfg.functional = true;
  for (const auto e : harness::all_engines()) {
    const auto a =
        harness::run_cell(cfg, e, harness::WorkloadKind::kLogisticRegression,
                          harness::TraceProfile::kVolatileCloud);
    const auto b =
        harness::run_cell(cfg, e, harness::WorkloadKind::kLogisticRegression,
                          harness::TraceProfile::kVolatileCloud);
    ASSERT_EQ(a.round_latencies.size(), b.round_latencies.size());
    for (std::size_t r = 0; r < a.round_latencies.size(); ++r) {
      EXPECT_EQ(a.round_latencies[r], b.round_latencies[r])
          << core::strategy_name(e) << " round " << r;
    }
    EXPECT_EQ(a.total_useful, b.total_useful) << core::strategy_name(e);
    EXPECT_EQ(a.total_wasted, b.total_wasted) << core::strategy_name(e);
    EXPECT_EQ(a.fingerprint(), b.fingerprint()) << core::strategy_name(e);
  }
}

TEST(FaultInjection, DeathRecoveryIsDeterministic) {
  // The timeout/reassignment path itself must be replayable: two engines
  // over identical death traces produce identical round latencies.
  auto run = [] {
    Functional f(12, 6);
    EngineConfig cfg;
    cfg.strategy = StrategyKind::kS2C2;
    cfg.chunks_per_partition = kChunks;
    CodedComputeEngine engine(f.job, spec_from(test::dying_traces(12, 2)),
                              cfg);
    std::vector<double> latencies;
    for (int round = 0; round < 5; ++round) {
      latencies.push_back(engine.run_round(f.x).stats.latency());
    }
    return latencies;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(FaultInjection, FrozenPredictorMissesRegimeChange) {
  // A node slows permanently after warmup: the frozen predictor keeps
  // over-assigning it, so timeouts persist; last-value recovers.
  auto timeout_rate = [&](bool frozen) {
    std::vector<sim::SpeedTrace> traces;
    for (int w = 0; w < 9; ++w) {
      traces.push_back(sim::SpeedTrace::constant(1.0));
    }
    traces.push_back(sim::SpeedTrace::step(0.2, 1.0, 0.3));
    CodedMatVecJob job = CodedMatVecJob::cost_only(2400, 500, 10, 7, kChunks);
    EngineConfig cfg;
    cfg.strategy = StrategyKind::kS2C2;
    cfg.chunks_per_partition = kChunks;
    std::unique_ptr<predict::SpeedPredictor> pred;
    if (frozen) {
      pred = std::make_unique<predict::FrozenSpeedPredictor>(10, 3);
    } else {
      pred = std::make_unique<predict::LastValuePredictor>(10);
    }
    CodedComputeEngine engine(job, spec_from(std::move(traces)), cfg,
                              std::move(pred));
    engine.run_rounds(20);
    return engine.timeout_rate();
  };
  EXPECT_GT(timeout_rate(true), timeout_rate(false) + 0.2);
}

}  // namespace
}  // namespace s2c2::core
