// Tests for the chunk-granular MDS decoder — the numerical heart of S2C2.
#include <gtest/gtest.h>

#include "src/coding/chunked_decoder.h"
#include "src/coding/mds_code.h"
#include "src/util/rng.h"

namespace s2c2::coding {
namespace {

/// Builds encoded partitions of a random D x m operator and returns the
/// ground-truth product for verification.
struct Fixture {
  Fixture(std::size_t n, std::size_t k, std::size_t rows, std::size_t cols,
          ParityKind kind, std::uint64_t seed)
      : code(n, k, kind), rng(seed) {
    a = linalg::Matrix::random_uniform(rows, cols, rng);
    parts = code.encode(a);
    x.resize(cols);
    for (auto& v : x) v = rng.normal();
    truth = a.matvec(x);
  }
  MdsCode code;
  util::Rng rng;
  linalg::Matrix a;
  std::vector<EncodedPartition> parts;
  linalg::Vector x;
  linalg::Vector truth;

  std::vector<double> chunk_values(std::size_t worker, std::size_t chunk,
                                   std::size_t rpc) const {
    std::vector<double> out(rpc);
    parts[worker].matvec_rows(chunk * rpc, (chunk + 1) * rpc, x, out);
    return out;
  }
};

TEST(ChunkedDecoder, RejectsBadGeometry) {
  const GeneratorMatrix g(4, 2);
  EXPECT_THROW(ChunkedDecoder(g, 10, 3), std::invalid_argument);
  EXPECT_THROW(ChunkedDecoder(g, 10, 0), std::invalid_argument);
  EXPECT_THROW(ChunkedDecoder(g, 10, 5, 0), std::invalid_argument);
}

TEST(ChunkedDecoder, FullSystematicCoverageDecodesExactly) {
  Fixture f(4, 2, 8, 3, ParityKind::kVandermonde, 1);
  const std::size_t chunks = 4, rpc = 1;
  ChunkedDecoder dec(f.code.generator(), 4, chunks, 1);
  for (std::size_t w = 0; w < 2; ++w) {  // systematic workers only
    for (std::size_t c = 0; c < chunks; ++c) {
      dec.add_chunk_result(w, c, f.chunk_values(w, c, rpc));
    }
  }
  ASSERT_TRUE(dec.decodable());
  const auto out = dec.decode();
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_NEAR(out(r, 0), f.truth[r], 1e-9);
  }
}

TEST(ChunkedDecoder, ParityOnlyCoverageDecodes) {
  Fixture f(4, 2, 8, 3, ParityKind::kVandermonde, 2);
  ChunkedDecoder dec(f.code.generator(), 4, 2, 1);
  for (std::size_t w = 2; w < 4; ++w) {  // parity workers only
    for (std::size_t c = 0; c < 2; ++c) {
      dec.add_chunk_result(w, c, f.chunk_values(w, c, 2));
    }
  }
  ASSERT_TRUE(dec.decodable());
  const auto out = dec.decode();
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_NEAR(out(r, 0), f.truth[r], 1e-9);
  }
}

TEST(ChunkedDecoder, MixedResponderSetsPerChunk) {
  // The S2C2 case: different chunks served by different worker subsets.
  Fixture f(4, 2, 12, 5, ParityKind::kVandermonde, 3);
  const std::size_t chunks = 3, rpc = 2;
  ChunkedDecoder dec(f.code.generator(), 6, chunks, 1);
  // chunk 0: workers {0,1}; chunk 1: {0,2}; chunk 2: {1,2} (paper Fig 4c).
  const std::vector<std::vector<std::size_t>> sets{{0, 1}, {0, 2}, {1, 2}};
  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t w : sets[c]) {
      dec.add_chunk_result(w, c, f.chunk_values(w, c, rpc));
    }
  }
  ASSERT_TRUE(dec.decodable());
  const auto out = dec.decode();
  for (std::size_t r = 0; r < 12; ++r) {
    EXPECT_NEAR(out(r, 0), f.truth[r], 1e-9);
  }
}

TEST(ChunkedDecoder, DeficientChunksReported) {
  Fixture f(4, 2, 8, 3, ParityKind::kGaussian, 4);
  ChunkedDecoder dec(f.code.generator(), 4, 4, 1);
  dec.add_chunk_result(0, 0, f.chunk_values(0, 0, 1));
  dec.add_chunk_result(1, 0, f.chunk_values(1, 0, 1));
  dec.add_chunk_result(2, 1, f.chunk_values(2, 1, 1));
  EXPECT_FALSE(dec.decodable());
  const auto missing = dec.deficient_chunks();
  EXPECT_EQ(missing.size(), 3u);  // chunks 1 (one result), 2, 3
  EXPECT_THROW(dec.decode(), std::logic_error);
}

TEST(ChunkedDecoder, DuplicateSubmissionsAreIdempotent) {
  Fixture f(4, 2, 4, 3, ParityKind::kGaussian, 5);
  ChunkedDecoder dec(f.code.generator(), 2, 2, 1);
  for (std::size_t c = 0; c < 2; ++c) {
    dec.add_chunk_result(0, c, f.chunk_values(0, c, 1));
    dec.add_chunk_result(0, c, f.chunk_values(0, c, 1));  // duplicate
    EXPECT_EQ(dec.responders(c).size(), 1u);
    dec.add_chunk_result(3, c, f.chunk_values(3, c, 1));
  }
  ASSERT_TRUE(dec.decodable());
  const auto out = dec.decode();
  for (std::size_t r = 0; r < 4; ++r) EXPECT_NEAR(out(r, 0), f.truth[r], 1e-9);
}

TEST(ChunkedDecoder, LuCacheSharedAcrossChunksWithSameResponders) {
  Fixture f(6, 3, 12, 4, ParityKind::kGaussian, 6);
  ChunkedDecoder dec(f.code.generator(), 4, 4, 1);
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t w : {1u, 3u, 5u}) {
      dec.add_chunk_result(w, c, f.chunk_values(w, c, 1));
    }
  }
  (void)dec.decode();
  EXPECT_EQ(dec.lu_cache_size(), 1u);  // one responder set -> one LU
}

TEST(ChunkedDecoder, ResetClearsResults) {
  Fixture f(4, 2, 4, 3, ParityKind::kGaussian, 7);
  ChunkedDecoder dec(f.code.generator(), 2, 2, 1);
  dec.add_chunk_result(0, 0, f.chunk_values(0, 0, 1));
  dec.reset();
  EXPECT_EQ(dec.responders(0).size(), 0u);
  EXPECT_FALSE(dec.decodable());
}

TEST(ChunkedDecoder, WrongSizeResultRejected) {
  const GeneratorMatrix g(4, 2);
  ChunkedDecoder dec(g, 4, 2, 1);
  EXPECT_THROW(dec.add_chunk_result(0, 0, std::vector<double>(3, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(dec.add_chunk_result(9, 0, std::vector<double>(2, 0.0)),
               std::invalid_argument);
}

struct DecodeParam {
  std::size_t n, k, chunks, rpc;
  ParityKind kind;
};

class RandomCoverageDecode : public ::testing::TestWithParam<DecodeParam> {};

TEST_P(RandomCoverageDecode, ReconstructsProduct) {
  const auto p = GetParam();
  const std::size_t rows = p.k * p.chunks * p.rpc;
  Fixture f(p.n, p.k, rows, 6, p.kind, 8000 + p.n * 7 + p.k);
  ChunkedDecoder dec(f.code.generator(), p.chunks * p.rpc, p.chunks, 1);
  // Random >= k coverage per chunk.
  for (std::size_t c = 0; c < p.chunks; ++c) {
    std::vector<std::size_t> workers(p.n);
    for (std::size_t w = 0; w < p.n; ++w) workers[w] = w;
    f.rng.shuffle(workers);
    const std::size_t take =
        p.k + static_cast<std::size_t>(f.rng.uniform_int(
                  0, static_cast<std::int64_t>(p.n - p.k)));
    for (std::size_t i = 0; i < take; ++i) {
      dec.add_chunk_result(workers[i], c, f.chunk_values(workers[i], c, p.rpc));
    }
  }
  ASSERT_TRUE(dec.decodable());
  const auto out = dec.decode();
  double max_err = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    max_err = std::max(max_err, std::abs(out(r, 0) - f.truth[r]));
  }
  EXPECT_LT(max_err, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RandomCoverageDecode,
    ::testing::Values(DecodeParam{4, 2, 3, 2, ParityKind::kVandermonde},
                      DecodeParam{6, 4, 4, 1, ParityKind::kVandermonde},
                      DecodeParam{12, 10, 6, 2, ParityKind::kGaussian},
                      DecodeParam{12, 6, 12, 1, ParityKind::kGaussian},
                      DecodeParam{10, 7, 5, 3, ParityKind::kGaussian},
                      DecodeParam{50, 40, 4, 1, ParityKind::kGaussian}));

class BlockDecode : public ::testing::TestWithParam<DecodeParam> {};

TEST_P(BlockDecode, BitwiseMatchesPerColumnDecode) {
  // The block-round contract: a width-b decode over a panel X must yield,
  // in column j, exactly the bits a width-1 decode of column j yields —
  // same responder sets, same cached factorizations, per-column solves.
  const auto p = GetParam();
  const std::size_t rows = p.k * p.chunks * p.rpc;
  const std::size_t cols = 6, b = 3;
  Fixture f(p.n, p.k, rows, cols, p.kind, 9100 + p.n * 7 + p.k);
  linalg::Matrix xb(cols, b);
  for (std::size_t r = 0; r < cols; ++r) {
    for (std::size_t j = 0; j < b; ++j) xb(r, j) = f.rng.normal();
  }

  ChunkedDecoder block(f.code.generator(), p.chunks * p.rpc, p.chunks, b);
  std::vector<ChunkedDecoder> per_col;
  per_col.reserve(b);
  for (std::size_t j = 0; j < b; ++j) {
    per_col.emplace_back(f.code.generator(), p.chunks * p.rpc, p.chunks, 1);
  }

  for (std::size_t c = 0; c < p.chunks; ++c) {
    // Random >= k responder set, different per chunk.
    std::vector<std::size_t> workers(p.n);
    for (std::size_t w = 0; w < p.n; ++w) workers[w] = w;
    f.rng.shuffle(workers);
    const std::size_t take =
        p.k + static_cast<std::size_t>(f.rng.uniform_int(
                  0, static_cast<std::int64_t>(p.n - p.k)));
    for (std::size_t i = 0; i < take; ++i) {
      const std::size_t w = workers[i];
      std::vector<double> vals(p.rpc * b);
      f.parts[w].matmat_rows(c * p.rpc, (c + 1) * p.rpc, xb.data(), b, vals);
      block.add_chunk_result(w, c, std::move(vals));
      for (std::size_t j = 0; j < b; ++j) {
        std::vector<double> xj(cols);
        for (std::size_t r = 0; r < cols; ++r) xj[r] = xb(r, j);
        std::vector<double> col(p.rpc);
        f.parts[w].matvec_rows(c * p.rpc, (c + 1) * p.rpc, xj, col);
        per_col[j].add_chunk_result(w, c, std::move(col));
      }
    }
  }

  ASSERT_TRUE(block.decodable());
  const linalg::Matrix out = block.decode();
  ASSERT_EQ(out.cols(), b);
  for (std::size_t j = 0; j < b; ++j) {
    ASSERT_TRUE(per_col[j].decodable());
    const linalg::Matrix ref = per_col[j].decode();
    for (std::size_t r = 0; r < out.rows(); ++r) {
      EXPECT_EQ(out(r, j), ref(r, 0)) << "col " << j << " row " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BlockDecode,
    ::testing::Values(DecodeParam{6, 4, 4, 1, ParityKind::kVandermonde},
                      DecodeParam{4, 2, 3, 2, ParityKind::kVandermonde},
                      DecodeParam{12, 6, 6, 2, ParityKind::kGaussian},
                      DecodeParam{10, 7, 5, 3, ParityKind::kGaussian}));

}  // namespace
}  // namespace s2c2::coding
