// Tests for the worker pool behind the parallel matrix runner: task
// completion, the idle barrier, exactly-once parallel_for semantics, and
// exception propagation to the calling thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/util/thread_pool.h"

namespace s2c2::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { ++count; });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran);
}

TEST(ParallelFor, EveryIndexRunsExactlyOnce) {
  for (const std::size_t jobs : {1u, 2u, 5u, 16u}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(hits.size(), jobs, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " index=" << i;
    }
  }
}

TEST(ParallelFor, SlotWritesAreDeterministicAcrossJobCounts) {
  // The matrix runner's contract in miniature: each task writes only its
  // own slot, so any job count yields identical output.
  auto run = [](std::size_t jobs) {
    std::vector<double> out(64);
    parallel_for(out.size(), jobs, [&](std::size_t i) {
      double acc = static_cast<double>(i) + 1.0;
      for (int it = 0; it < 100; ++it) acc = acc * 1.0000001 + 0.5;
      out[i] = acc;
    });
    return out;
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << i;  // bit-exact
  }
}

TEST(ParallelFor, PropagatesFirstException) {
  std::atomic<int> completed{0};
  try {
    parallel_for(32, 4, [&](std::size_t i) {
      if (i == 7) throw std::runtime_error("boom");
      ++completed;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // The sweep short-circuits after the failure (its results would be
  // discarded anyway), so not every remaining index runs — but the indices
  // claimed before the failure did.
  EXPECT_GT(completed.load(), 0);
  EXPECT_LT(completed.load(), 32);
}

TEST(ParallelFor, ShortCircuitsRemainingWorkAfterFailure) {
  // The very first claimed index fails, so the bulk of the 1000-index
  // sweep must be skipped once the stop flag is visible.
  std::atomic<int> completed{0};
  EXPECT_THROW(parallel_for(1000, 2, [&](std::size_t i) {
                 if (i == 0) throw std::runtime_error("early");
                 ++completed;
               }),
               std::runtime_error);
  EXPECT_LT(completed.load(), 1000);
}

TEST(ParallelFor, ZeroJobsMeansHardwareThreads) {
  std::atomic<int> count{0};
  parallel_for(10, 0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace s2c2::util
