// Tests for the work-stealing worker pool behind the parallel matrix
// runner: task completion, the idle barrier, stealing around a blocked
// worker, exactly-once parallel_for semantics (including under heavily
// skewed per-index costs), bit-identical slot writes at any --jobs, no
// deadlock on nested/empty/exception paths, and exception propagation to
// the calling thread.
//
// The scheduling paths here are concurrency-sensitive; to re-check them
// under ThreadSanitizer use the dedicated preset (CI runs it on push):
//   cmake --preset tsan && cmake --build --preset tsan -j
//   ctest --test-dir build-tsan
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/util/thread_pool.h"

namespace s2c2::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { ++count; });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, StealsQueuedWorkAroundABlockedWorker) {
  // One task parks on a worker while the submission round-robin keeps
  // loading every deque. Without stealing the tasks queued behind the
  // parked one would wait for it; with stealing the siblings drain them,
  // so everything except the parked task completes promptly.
  std::atomic<int> done{0};
  std::atomic<bool> release{false};
  {
    ThreadPool pool(4);
    pool.submit([&] {
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      ++done;
    });
    for (int i = 0; i < 40; ++i) {
      pool.submit([&] { ++done; });
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (done.load() < 40 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(done.load(), 40) << "tasks stranded behind the parked worker";
    release.store(true);
    pool.wait_idle();
    EXPECT_EQ(done.load(), 41);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(3);
  pool.wait_idle();  // nothing submitted: must not block
  pool.submit([] {});
  pool.wait_idle();
  pool.wait_idle();  // idempotent after a drain
}

TEST(ParallelFor, EveryIndexRunsExactlyOnce) {
  for (const std::size_t jobs : {1u, 2u, 5u, 16u}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(hits.size(), jobs, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " index=" << i;
    }
  }
}

TEST(ParallelFor, SlotWritesAreDeterministicAcrossJobCounts) {
  // The matrix runner's contract in miniature: each task writes only its
  // own slot, so any job count yields identical output.
  auto run = [](std::size_t jobs) {
    std::vector<double> out(64);
    parallel_for(out.size(), jobs, [&](std::size_t i) {
      double acc = static_cast<double>(i) + 1.0;
      for (int it = 0; it < 100; ++it) acc = acc * 1.0000001 + 0.5;
      out[i] = acc;
    });
    return out;
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << i;  // bit-exact
  }
}

TEST(ParallelFor, ExactlyOnceUnderSkewedCosts) {
  // Index costs spanning ~3 orders of magnitude: a static partition would
  // finish wildly unevenly, so this exercises the dynamic claim loop — and
  // the exactly-once contract must survive the resulting interleavings.
  for (const std::size_t jobs : {2u, 4u, 9u}) {
    std::vector<std::atomic<int>> hits(160);
    parallel_for(hits.size(), jobs, [&](std::size_t i) {
      volatile double sink = 0.0;
      const int spins = (i % 16 == 0) ? 200000 : 100;
      for (int s = 0; s < spins; ++s) sink = sink + 1.0;
      ++hits[i];
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " index=" << i;
    }
  }
}

TEST(ParallelFor, SkewedSlotWritesBitIdenticalAcrossJobCounts) {
  // Determinism under skew: per-slot results must be bit-identical no
  // matter which worker claims which index or in what order.
  auto run = [](std::size_t jobs) {
    std::vector<double> out(96);
    parallel_for(out.size(), jobs, [&](std::size_t i) {
      double acc = 1.0 / (static_cast<double>(i) + 2.0);
      const int iters = 50 + static_cast<int>(i % 7) * 400;
      for (int it = 0; it < iters; ++it) acc = acc * 0.999999 + 1e-9;
      out[i] = acc;
    });
    return out;
  };
  const auto serial = run(1);
  for (const std::size_t jobs : {2u, 3u, 8u}) {
    const auto parallel = run(jobs);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i]) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
  // Each outer index runs an inner parallel_for. The nesting contract
  // (thread_pool.h): a free parallel_for issued from inside any pool
  // worker falls back to SERIAL on the calling thread, so inner sweeps
  // never wait on — or multiply — the outer pool's workers.
  std::atomic<int> inner_total{0};
  parallel_for(6, 3, [&](std::size_t) {
    parallel_for(8, 2, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 48);
}

TEST(ParallelFor, NestedCallInsideWorkerRunsSerial) {
  // The serial fallback is observable: inside a pool worker in_worker()
  // is true and a nested free parallel_for executes every index on the
  // calling thread itself.
  EXPECT_FALSE(ThreadPool::in_worker());
  std::atomic<int> outer_in_worker{0};
  std::atomic<int> inner_on_caller{0};
  parallel_for(4, 4, [&](std::size_t) {
    const std::thread::id outer_tid = std::this_thread::get_id();
    if (ThreadPool::in_worker()) ++outer_in_worker;
    parallel_for(16, 8, [&](std::size_t) {
      if (std::this_thread::get_id() == outer_tid) ++inner_on_caller;
    });
  });
  // The free parallel_for runs every index on a private pool's workers
  // (the caller only waits), so all four outer indices see in_worker().
  EXPECT_EQ(outer_in_worker.load(), 4);
  EXPECT_EQ(inner_on_caller.load(), 4 * 16);
  EXPECT_FALSE(ThreadPool::in_worker());
}

TEST(ThreadPool, MemberParallelForRunsEveryIndexOnce) {
  ThreadPool pool(3);
  for (const std::size_t count : {1u, 2u, 7u, 129u}) {
    std::vector<std::atomic<int>> hits(count);
    pool.parallel_for(count, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "count=" << count << " i=" << i;
    }
  }
}

TEST(ThreadPool, MemberParallelForIsHelpFirstFromInsideATask) {
  // The deadlock scenario the help-first design removes: a pool task fans
  // out on its own pool. The caller drains indices inline, so this
  // completes even on a 1-thread pool whose only worker IS the caller.
  ThreadPool pool(1);
  std::atomic<int> total{0};
  std::atomic<bool> done{false};
  pool.submit([&] {
    pool.parallel_for(32, [&](std::size_t) { ++total; });
    done = true;
  });
  pool.wait_idle();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, MemberParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      if (i == 5) throw std::runtime_error("inner boom");
      ++completed;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "inner boom");
  }
  EXPECT_LT(completed.load(), 64);
  // The pool must stay usable after a failed fan-out.
  std::atomic<int> after{0};
  pool.parallel_for(8, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 8);
}

TEST(ParallelFor, EmptyCountIsANoOp) {
  std::atomic<int> count{0};
  parallel_for(0, 4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
}

TEST(ParallelFor, PropagatesFirstException) {
  std::atomic<int> completed{0};
  try {
    parallel_for(32, 4, [&](std::size_t i) {
      if (i == 7) throw std::runtime_error("boom");
      ++completed;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // The sweep short-circuits after the failure (its results would be
  // discarded anyway), so not every remaining index runs — but the indices
  // claimed before the failure did.
  EXPECT_GT(completed.load(), 0);
  EXPECT_LT(completed.load(), 32);
}

TEST(ParallelFor, ShortCircuitsRemainingWorkAfterFailure) {
  // The very first claimed index fails, so the bulk of the 1000-index
  // sweep must be skipped once the stop flag is visible.
  std::atomic<int> completed{0};
  EXPECT_THROW(parallel_for(1000, 2, [&](std::size_t i) {
                 if (i == 0) throw std::runtime_error("early");
                 ++completed;
               }),
               std::runtime_error);
  EXPECT_LT(completed.load(), 1000);
}

TEST(ParallelFor, ZeroJobsMeansHardwareThreads) {
  std::atomic<int> count{0};
  parallel_for(10, 0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace s2c2::util
