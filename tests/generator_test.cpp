// Tests for MDS generator matrices: systematic layout, the paper's worked
// example, and the any-k-of-n invertibility property for both parity
// families.
#include <gtest/gtest.h>

#include "src/coding/generator_matrix.h"
#include "src/linalg/lu.h"
#include "src/util/rng.h"

namespace s2c2::coding {
namespace {

TEST(Generator, SystematicTopIsIdentity) {
  const GeneratorMatrix g(6, 4, ParityKind::kGaussian);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(g.coeff(i, j), i == j ? 1.0 : 0.0);
    }
    EXPECT_TRUE(g.is_systematic_row(i));
  }
  EXPECT_FALSE(g.is_systematic_row(4));
}

TEST(Generator, PaperWorkedExample42Vandermonde) {
  // Paper §2: worker 3 stores A1 + A2, worker 4 stores A1 + 2·A2.
  const GeneratorMatrix g(4, 2, ParityKind::kVandermonde);
  EXPECT_DOUBLE_EQ(g.coeff(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.coeff(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.coeff(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.coeff(3, 1), 2.0);
}

TEST(Generator, RejectsBadShape) {
  EXPECT_THROW(GeneratorMatrix(2, 3), std::invalid_argument);
  EXPECT_THROW(GeneratorMatrix(3, 0), std::invalid_argument);
}

TEST(Generator, SubmatrixPicksRows) {
  const GeneratorMatrix g(5, 3, ParityKind::kVandermonde);
  const std::vector<std::size_t> rows{0, 4};
  const linalg::Matrix sub = g.submatrix(rows);
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_DOUBLE_EQ(sub(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(sub(1, 0), g.coeff(4, 0));
}

TEST(Generator, DeterministicForSeed) {
  const GeneratorMatrix a(6, 3, ParityKind::kGaussian, 42);
  const GeneratorMatrix b(6, 3, ParityKind::kGaussian, 42);
  EXPECT_LT(a.matrix().max_abs_diff(b.matrix()), 1e-15);
}

struct MdsParam {
  std::size_t n;
  std::size_t k;
  ParityKind kind;
};

class AnyKInvertible : public ::testing::TestWithParam<MdsParam> {};

TEST_P(AnyKInvertible, RandomSubsetsInvert) {
  const auto [n, k, kind] = GetParam();
  const GeneratorMatrix g(n, k, kind);
  util::Rng rng(3000 + n * 13 + k);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    rng.shuffle(all);
    all.resize(k);
    std::sort(all.begin(), all.end());
    // Invertibility: LU must not throw and solves must have low residual.
    const linalg::Matrix sub = g.submatrix(all);
    const linalg::LuFactorization lu(sub);
    std::vector<double> b(k);
    for (auto& v : b) v = rng.normal();
    const auto x = lu.solve(b);
    const auto back = sub.matvec(x);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(back[i], b[i], 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AnyKInvertible,
    ::testing::Values(MdsParam{4, 2, ParityKind::kVandermonde},
                      MdsParam{6, 4, ParityKind::kVandermonde},
                      MdsParam{12, 10, ParityKind::kVandermonde},
                      MdsParam{4, 2, ParityKind::kGaussian},
                      MdsParam{12, 6, ParityKind::kGaussian},
                      MdsParam{12, 10, ParityKind::kGaussian},
                      MdsParam{50, 40, ParityKind::kGaussian}));

}  // namespace
}  // namespace s2c2::coding
