// Tests for the from-scratch LSTM: gradient correctness (finite
// differences), learning capacity, and the predictor adapter.
#include <gtest/gtest.h>

#include <cmath>

#include "src/predict/lstm.h"
#include "src/util/rng.h"

namespace s2c2::predict {
namespace {

TEST(Lstm, ShapesAndParamCount) {
  const Lstm lstm(1, 4, 1);
  // Wx 16 + Wh 64 + b 16 + Wy 4 + by 1 = 101.
  EXPECT_EQ(lstm.num_params(), 101u);
  EXPECT_EQ(lstm.input_dim(), 1u);
  EXPECT_EQ(lstm.hidden_dim(), 4u);
}

TEST(Lstm, StepUpdatesState) {
  const Lstm lstm(1, 4, 2);
  Lstm::State st = lstm.initial_state();
  const double x[1] = {0.5};
  (void)lstm.step(std::span<const double>(x, 1), st);
  double h_norm = 0.0;
  for (double h : st.h) h_norm += h * h;
  EXPECT_GT(h_norm, 0.0);
}

TEST(Lstm, StepIsDeterministic) {
  const Lstm lstm(1, 4, 3);
  Lstm::State a = lstm.initial_state();
  Lstm::State b = lstm.initial_state();
  const double x[1] = {0.7};
  const double ya = lstm.step(std::span<const double>(x, 1), a);
  const double yb = lstm.step(std::span<const double>(x, 1), b);
  EXPECT_DOUBLE_EQ(ya, yb);
}

TEST(Lstm, GradientMatchesFiniteDifferences) {
  const Lstm lstm(1, 3, 5);
  const std::vector<double> series{0.9, 0.7, 0.8, 0.4, 0.5, 0.6, 0.9, 0.3};
  EXPECT_LT(lstm.gradient_check(series), 1e-4);
}

TEST(Lstm, GradientCheckOnLongerWindow) {
  const Lstm lstm(1, 4, 6);
  util::Rng rng(6);
  std::vector<double> series;
  for (int t = 0; t < 20; ++t) series.push_back(rng.uniform(0.2, 1.0));
  EXPECT_LT(lstm.gradient_check(series), 1e-4);
}

TEST(Lstm, TrainingReducesLoss) {
  util::Rng rng(7);
  std::vector<std::vector<double>> corpus;
  for (int s = 0; s < 4; ++s) {
    std::vector<double> y;
    for (int t = 0; t < 120; ++t) {
      y.push_back(0.6 + 0.35 * std::sin(0.3 * t) + rng.normal(0.0, 0.01));
    }
    corpus.push_back(std::move(y));
  }
  Lstm lstm(1, 4, 8);
  const double before = lstm.evaluate_mse(corpus);
  Lstm::TrainConfig cfg;
  cfg.epochs = 40;
  lstm.train(corpus, cfg);
  const double after = lstm.evaluate_mse(corpus);
  EXPECT_LT(after, before * 0.5);
}

TEST(Lstm, LearnsDeterministicAlternation) {
  // Perfectly learnable pattern a,b,a,b,... — LSTM must beat last-value
  // by a wide margin (last-value is maximally wrong here).
  std::vector<std::vector<double>> corpus;
  for (int s = 0; s < 3; ++s) {
    std::vector<double> y;
    for (int t = 0; t < 100; ++t) y.push_back(t % 2 == 0 ? 0.9 : 0.3);
    corpus.push_back(std::move(y));
  }
  Lstm lstm(1, 4, 9);
  Lstm::TrainConfig cfg;
  cfg.epochs = 150;
  cfg.learning_rate = 2e-2;
  lstm.train(corpus, cfg);
  const double mse = lstm.evaluate_mse(corpus);
  EXPECT_LT(mse, 0.02);  // last-value MSE here is 0.36
}

TEST(Lstm, SetParamsRoundTrip) {
  Lstm a(1, 3, 10);
  Lstm b(1, 3, 11);
  b.set_params(a.params());
  const std::vector<double> series{0.5, 0.6, 0.7, 0.8};
  Lstm::State sa = a.initial_state();
  Lstm::State sb = b.initial_state();
  const double x[1] = {0.5};
  EXPECT_DOUBLE_EQ(a.step(std::span<const double>(x, 1), sa),
                   b.step(std::span<const double>(x, 1), sb));
  EXPECT_THROW(b.set_params(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(LstmPredictor, TracksPerWorkerState) {
  Lstm lstm(1, 4, 12);
  LstmPredictor p(2, lstm);
  EXPECT_DOUBLE_EQ(p.predict(0), 1.0);  // prior
  p.observe(0, 0.5);
  p.observe(1, 0.9);
  // Different observation histories must produce different predictions.
  EXPECT_NE(p.predict(0), p.predict(1));
  EXPECT_GE(p.predict(0), 0.0);  // clamped non-negative
}

TEST(LstmPredictor, RequiresScalarInputModel) {
  Lstm wide(2, 4, 13);
  EXPECT_THROW(LstmPredictor(2, wide), std::invalid_argument);
}

}  // namespace
}  // namespace s2c2::predict
