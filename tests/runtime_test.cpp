// Tests for the thread-backed cluster: real concurrency, any-k decoding,
// straggler tolerance via sleeping workers, stale-response handling.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/runtime/channel.h"
#include "src/runtime/thread_cluster.h"
#include "src/sched/allocation.h"
#include "src/util/rng.h"

namespace s2c2::runtime {
namespace {

TEST(Channel, SendRecvOrder) {
  Channel<int> ch;
  ch.send(1);
  ch.send(2);
  EXPECT_EQ(ch.recv(), 1);
  EXPECT_EQ(ch.recv(), 2);
  EXPECT_EQ(ch.try_recv(), std::nullopt);
}

TEST(Channel, CloseReleasesBlockedReceiver) {
  Channel<int> ch;
  std::atomic<bool> released{false};
  std::thread t([&] {
    const auto v = ch.recv();
    EXPECT_EQ(v, std::nullopt);
    released = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  t.join();
  EXPECT_TRUE(released);
}

TEST(Channel, SendAfterCloseIsNoop) {
  Channel<int> ch;
  ch.close();
  ch.send(5);
  EXPECT_EQ(ch.try_recv(), std::nullopt);
}

TEST(Channel, DrainsQueuedValuesBeforeReportingClosed) {
  Channel<int> ch;
  ch.send(7);
  ch.close();
  EXPECT_EQ(ch.recv(), 7);
  EXPECT_EQ(ch.recv(), std::nullopt);
}

struct ClusterFixture {
  ClusterFixture(std::size_t n, std::size_t k, DelayHook delay = nullptr)
      : rng(99),
        a(linalg::Matrix::random_uniform(120, 16, rng)),
        job(a, n, k, 12),
        cluster(job, std::move(delay)) {
    x.resize(16);
    for (auto& v : x) v = rng.normal();
    truth = a.matvec(x);
  }
  util::Rng rng;
  linalg::Matrix a;
  core::CodedMatVecJob job;
  runtime::ThreadCluster cluster;
  linalg::Vector x;
  linalg::Vector truth;
};

void expect_close(const linalg::Vector& got, const linalg::Vector& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-7);
  }
}

TEST(ThreadCluster, FullAllocationDecodes) {
  ClusterFixture f(6, 4);
  const auto alloc = sched::full_allocation(6, 12);
  const auto y = f.cluster.run_round(alloc, f.x);
  expect_close(y, f.truth);
}

TEST(ThreadCluster, S2C2AllocationDecodes) {
  ClusterFixture f(6, 4);
  const std::vector<double> speeds{1.0, 1.0, 0.5, 1.0, 0.2, 1.0};
  const auto alloc = sched::proportional_allocation(speeds, 4, 12);
  const auto y = f.cluster.run_round(alloc, f.x);
  expect_close(y, f.truth);
}

TEST(ThreadCluster, MultipleRoundsWithChangingAllocations) {
  ClusterFixture f(6, 4);
  for (int round = 0; round < 5; ++round) {
    std::vector<double> speeds(6, 1.0);
    speeds[static_cast<std::size_t>(round) % 6] = 0.3;
    const auto alloc = sched::proportional_allocation(speeds, 4, 12);
    const auto y = f.cluster.run_round(alloc, f.x);
    expect_close(y, f.truth);
  }
}

TEST(ThreadCluster, SleepingStragglerDoesNotBlockDecode) {
  // Worker 5 sleeps per chunk; with full allocation the master needs only
  // k=4 of 6 responses per chunk and must return well before the straggler
  // finishes everything.
  std::atomic<int> straggler_chunks{0};
  DelayHook delay = [&](std::size_t worker, std::size_t) {
    if (worker == 5) {
      ++straggler_chunks;
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  };
  ClusterFixture f(6, 4, delay);
  const auto alloc = sched::full_allocation(6, 12);
  const auto start = std::chrono::steady_clock::now();
  const auto y = f.cluster.run_round(alloc, f.x);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  expect_close(y, f.truth);
  // 12 chunks x 30ms = 360ms if we had waited for the straggler.
  EXPECT_LT(elapsed.count(), 330);
}

TEST(ThreadCluster, StaleResponsesFromPreviousRoundDiscarded) {
  // Straggler's round-1 responses arrive during round 2; decode must not
  // be corrupted.
  DelayHook delay = [](std::size_t worker, std::size_t) {
    if (worker == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  };
  ClusterFixture f(6, 4, delay);
  const auto alloc = sched::full_allocation(6, 12);
  for (int round = 0; round < 3; ++round) {
    const auto y = f.cluster.run_round(alloc, f.x);
    expect_close(y, f.truth);
  }
}

TEST(ThreadCluster, ValidatesInputs) {
  ClusterFixture f(4, 2);
  const auto bad_alloc = sched::full_allocation(5, 12);  // wrong n
  EXPECT_THROW((void)f.cluster.run_round(bad_alloc, f.x),
               std::invalid_argument);
  const auto alloc = sched::full_allocation(4, 12);
  EXPECT_THROW((void)f.cluster.run_round(alloc, linalg::Vector(3, 0.0)),
               std::invalid_argument);
}

TEST(ThreadCluster, UndecodableAllocationFailsFastInsteadOfDeadlocking) {
  // Regression: an allocation that can never reach k-coverage used to spin
  // forever on the response channel (the decoder never becomes decodable).
  // The coverage precheck must reject it immediately.
  ClusterFixture f(4, 2);
  sched::Allocation starved;
  starved.chunks_per_partition = 12;
  starved.per_worker.resize(4);
  starved.per_worker[0] = {0, 12};  // worker 0 covers everything once...
  // ...and nobody else works: every chunk has 1 < k = 2 assignees.
  EXPECT_THROW((void)f.cluster.run_round(starved, f.x),
               std::invalid_argument);
  // The cluster is still usable afterwards: a decodable allocation decodes.
  const auto y =
      f.cluster.run_round(sched::full_allocation(4, 12), f.x);
  expect_close(y, f.truth);
}

TEST(ThreadCluster, RequiresFunctionalJob) {
  const auto job = core::CodedMatVecJob::cost_only(100, 10, 4, 2, 10);
  EXPECT_THROW(ThreadCluster cluster(job), std::invalid_argument);
}

}  // namespace
}  // namespace s2c2::runtime
