// Tests for the synthetic cloud-trace generator: the statistical properties
// the paper reports for its measured traces (Fig 2) must hold.
#include <gtest/gtest.h>

#include <cmath>

#include "src/util/stats.h"
#include "src/workload/trace_gen.h"

namespace s2c2::workload {
namespace {

TEST(TraceGen, SeriesLengthAndBounds) {
  util::Rng rng(1);
  const auto s = cloud_speed_series(500, volatile_cloud_config(), rng);
  ASSERT_EQ(s.size(), 500u);
  for (double v : s) {
    EXPECT_GE(v, 0.05);
    EXPECT_LE(v, 1.5);
  }
}

TEST(TraceGen, StableConfigStaysNearRegime) {
  // Paper: "speed observed at any time slot stays within 10% for about 10
  // samples within the neighborhood."
  util::Rng rng(2);
  const auto s = cloud_speed_series(300, stable_cloud_config(), rng);
  std::size_t close = 0, total = 0;
  for (std::size_t t = 10; t < s.size(); ++t) {
    for (std::size_t j = t - 10; j < t; ++j) {
      ++total;
      if (std::abs(s[j] - s[t]) <= 0.10 * s[t]) ++close;
    }
  }
  EXPECT_GT(static_cast<double>(close) / static_cast<double>(total), 0.9);
}

TEST(TraceGen, VolatileConfigHasRegimeJumps) {
  util::Rng rng(3);
  // Aggregate across nodes: expected detectable jumps ~ 0.02/sample/node.
  std::size_t jumps = 0;
  for (int node = 0; node < 10; ++node) {
    const auto s = cloud_speed_series(400, volatile_cloud_config(), rng);
    for (std::size_t t = 1; t < s.size(); ++t) {
      if (std::abs(s[t] - s[t - 1]) > 0.15) ++jumps;
    }
  }
  EXPECT_GT(jumps, 10u);
}

TEST(TraceGen, CorpusShape) {
  util::Rng rng(4);
  const auto corpus = cloud_speed_corpus(7, 50, stable_cloud_config(), rng);
  ASSERT_EQ(corpus.size(), 7u);
  for (const auto& s : corpus) EXPECT_EQ(s.size(), 50u);
}

TEST(TraceGen, ControlledClusterStragglersAreLast) {
  util::Rng rng(5);
  const auto traces = controlled_cluster_traces(12, 3, 0.2, rng);
  ASSERT_EQ(traces.size(), 12u);
  for (std::size_t w = 0; w < 9; ++w) {
    EXPECT_GE(traces[w].speed_at(0.0), 0.8);
    EXPECT_LE(traces[w].speed_at(0.0), 1.0);
  }
  for (std::size_t w = 9; w < 12; ++w) {
    EXPECT_DOUBLE_EQ(traces[w].speed_at(0.0), 0.2);  // 5x slower
  }
}

TEST(TraceGen, ControlledClusterValidation) {
  util::Rng rng(6);
  EXPECT_THROW(controlled_cluster_traces(4, 5, 0.2, rng),
               std::invalid_argument);
  EXPECT_THROW(controlled_cluster_traces(4, 1, 1.5, rng),
               std::invalid_argument);
}

TEST(TraceGen, TracesFromSeries) {
  const std::vector<std::vector<double>> series{{1.0, 0.5}, {0.2, 0.2}};
  const auto traces = traces_from_series(series, 2.0);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_DOUBLE_EQ(traces[0].speed_at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(traces[0].speed_at(3.0), 0.5);
  EXPECT_DOUBLE_EQ(traces[1].speed_at(100.0), 0.2);
}

TEST(TraceGen, DeterministicForSeed) {
  util::Rng a(7), b(7);
  const auto s1 = cloud_speed_series(100, volatile_cloud_config(), a);
  const auto s2 = cloud_speed_series(100, volatile_cloud_config(), b);
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace s2c2::workload
