#!/usr/bin/env bash
# Markdown link check over README.md and docs/ — dependency-free (bash +
# grep only, no network): every *relative* link target must exist on disk.
# http(s) links are counted but not fetched (CI has no network guarantee);
# anchors (#...) are stripped before the existence check.
#
# Also sweeps source comments (src/ bench/ examples/ tests/ scripts/) for
# `docs/<name>.md` references and fails on any that point at a missing
# file — the rot that once left src/sim/event_queue.h citing a DESIGN.md
# nobody had written.
#
# Usage: scripts/check_links.sh [file-or-dir ...]   (default: README.md docs)
set -u

cd "$(dirname "$0")/.."

targets=("$@")
if [ ${#targets[@]} -eq 0 ]; then
  targets=(README.md docs)
fi

files=()
for t in "${targets[@]}"; do
  if [ -d "$t" ]; then
    while IFS= read -r f; do files+=("$f"); done \
      < <(find "$t" -name '*.md' | sort)
  else
    files+=("$t")
  fi
done

fail=0
checked=0
external=0
for f in "${files[@]}"; do
  dir=$(dirname "$f")
  # Extract ](target) spans; tolerate multiple links per line.
  while IFS= read -r link; do
    case "$link" in
      http://*|https://*) external=$((external + 1)); continue ;;
      mailto:*|\#*) continue ;;
    esac
    target="${link%%#*}"
    [ -n "$target" ] || continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN: $f -> $link"
      fail=1
    fi
  done < <(grep -o ']([^)]*)' "$f" 2>/dev/null | sed 's/^](//; s/)$//')
done

sources=0
while IFS= read -r line; do
  [ -n "$line" ] || continue
  src="${line%%:*}"
  ref="${line#*:}"
  sources=$((sources + 1))
  if [ ! -e "$ref" ]; then
    echo "BROKEN: $src -> $ref (dead doc reference in source comment)"
    fail=1
  fi
done < <(grep -roE --include='*.h' --include='*.cpp' --include='*.sh' \
             'docs/[A-Za-z0-9_.-]+\.md' src bench examples tests scripts \
             2>/dev/null | sort -u)

echo "link check: ${#files[@]} files, $checked relative links verified," \
     "$external external links skipped, $sources source doc refs verified"
exit $fail
