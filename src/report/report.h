// Paper-style reproduction-report generation (the repo's publishing layer).
//
// Aggregates job-driver suites (src/harness/job_driver.h) and the
// predictor-sensitivity slice of the scenario matrix
// (src/harness/matrix_runner.h) into the artifacts a reader compares
// against the paper:
//   * job_completion.csv       — per-job completion times + normalization
//                                against S2C2 (Figs 6-8, 10 analogues);
//   * utilization.csv          — cumulative useful/wasted work breakdown
//                                (Figs 9, 11 analogue);
//   * predictor_sensitivity.csv — S2C2 latency/timeout behaviour per speed
//                                predictor (§6.1 lineup);
//   * REPRODUCTION.md          — generated report: figure-by-figure mapping
//                                table, the tables above rendered as
//                                markdown, and the known-deviations list.
//
// Determinism contract: every builder below is a pure function of its
// inputs, numbers are formatted with fixed printf conversions in the C
// locale, and nothing environmental (timestamps, hostnames, paths) enters
// the output — so for one binary, regenerating at any --jobs thread count
// reproduces every artifact byte for byte (asserted in tests/report_test
// and the CI report job). Byte-identity across *different* binaries is not
// promised: libm differences legitimately move low-order bits.
#pragma once

#include <string>

#include "src/harness/job_driver.h"
#include "src/harness/matrix_runner.h"

namespace s2c2::report {

/// Everything a report is built from; compute once, render many times.
struct ReportInputs {
  harness::JobSuiteResult suite;
  harness::MatrixResult predictor_matrix;
};

struct ReportConfig {
  /// Base job config for the suite sweep (seed, cluster, iteration caps).
  harness::JobConfig job_base;
  /// apps x strategies x traces grid; the default covers all four apps and
  /// all four strategies over all four trace profiles.
  harness::JobGrid grid;
  /// Rounds per cell of the predictor-sensitivity matrix slice.
  std::size_t predictor_rounds = 6;
  /// Thread-pool width for both sweeps (0 = hardware, 1 = serial).
  std::size_t jobs = 1;
  /// Output directory for generate_report (created if absent).
  std::string out_dir = "report";

  [[nodiscard]] static ReportConfig defaults();
};

/// Runs both sweeps (sharded over `config.jobs` threads).
[[nodiscard]] ReportInputs run_report_inputs(const ReportConfig& config);

// ---- pure renderers (unit-testable without touching the filesystem) ----

[[nodiscard]] std::string job_completion_csv(
    const harness::JobSuiteResult& suite);
[[nodiscard]] std::string utilization_csv(
    const harness::JobSuiteResult& suite);
[[nodiscard]] std::string predictor_sensitivity_csv(
    const harness::MatrixResult& matrix);
/// Markdown table of every strategy currently constructible through
/// core::make_engine, one row per core::registered_strategies() entry with
/// its capability predicates and harness-axis membership — generated, so
/// the docs can never drift from the registry. Embedded in
/// reproduction_markdown and published in docs/REPRODUCTION.md.
[[nodiscard]] std::string strategy_table_markdown();
[[nodiscard]] std::string reproduction_markdown(const ReportInputs& inputs);

struct ReportArtifacts {
  std::string job_completion_path;
  std::string utilization_path;
  std::string predictor_sensitivity_path;
  std::string reproduction_path;
  std::string suite_fingerprint;
  std::string matrix_fingerprint;
};

/// Runs the sweeps and writes all four artifacts under config.out_dir.
[[nodiscard]] ReportArtifacts generate_report(const ReportConfig& config);

/// Writes the artifacts for already-computed inputs (lets callers reuse one
/// sweep across output directories, e.g. the CI determinism cross-check).
[[nodiscard]] ReportArtifacts write_report(const ReportInputs& inputs,
                                           const std::string& out_dir);

}  // namespace s2c2::report
