#include "src/report/report.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "src/core/engine_factory.h"

namespace s2c2::report {

namespace {

using harness::JobApp;
using harness::JobResult;
using core::StrategyKind;
using harness::JobSuiteResult;
using harness::TraceProfile;

/// Deterministic number rendering for CSV/markdown: %.9g in the C locale
/// round-trips doubles closely enough for diffing while staying readable.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string fixed(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Appends parts one by one — no std::string operator+ chains, which trip
/// GCC 12's -Wrestrict false positive (PR 105651) under -O2 -Werror.
void append(std::string& out, std::initializer_list<std::string_view> parts) {
  for (const std::string_view p : parts) out += p;
}

/// First-seen-order unique axis values actually present in the suite —
/// renderers follow the data, not the full enum, so filtered grids render
/// without empty rows.
template <typename T, typename Get>
std::vector<T> distinct(const JobSuiteResult& suite, Get&& get) {
  std::vector<T> out;
  for (const JobResult& job : suite.jobs) {
    const T v = get(job);
    bool seen = false;
    for (const T u : out) seen = seen || u == v;
    if (!seen) out.push_back(v);
  }
  return out;
}

std::vector<TraceProfile> suite_traces(const JobSuiteResult& s) {
  return distinct<TraceProfile>(s, [](const JobResult& j) { return j.trace; });
}
std::vector<JobApp> suite_apps(const JobSuiteResult& s) {
  return distinct<JobApp>(s, [](const JobResult& j) { return j.app; });
}
std::vector<StrategyKind> suite_strategies(const JobSuiteResult& s) {
  return distinct<StrategyKind>(s, [](const JobResult& j) { return j.strategy; });
}

/// S2C2's completion time for the job's (app, trace) column, or 0 when
/// unavailable (not in the grid, or failed) — callers emit an empty cell.
double s2c2_reference_time(const JobSuiteResult& suite, const JobResult& job) {
  const JobResult* ref =
      suite.find(job.app, StrategyKind::kS2C2, job.trace);
  if (ref == nullptr || ref->failed || ref->completion_time <= 0.0) {
    return 0.0;
  }
  return ref->completion_time;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << content;
}

bool contains(const std::vector<StrategyKind>& v, StrategyKind s) {
  for (const StrategyKind k : v) {
    if (k == s) return true;
  }
  return false;
}

/// "default" when the kind is on the golden-pinned default axis,
/// "extended" when only the widened axis runs it, "-" when the surface
/// cannot run it at all.
std::string axis_membership(StrategyKind s,
                            const std::vector<StrategyKind>& defaults,
                            const std::vector<StrategyKind>& extended) {
  if (contains(defaults, s)) return "default";
  if (contains(extended, s)) return "extended";
  return "-";
}

}  // namespace

ReportConfig ReportConfig::defaults() {
  ReportConfig cfg;
  cfg.grid.traces = {TraceProfile::kControlledStragglers,
                     TraceProfile::kStableCloud, TraceProfile::kVolatileCloud,
                     TraceProfile::kFailureInjection};
  return cfg;
}

ReportInputs run_report_inputs(const ReportConfig& config) {
  ReportInputs inputs;
  inputs.suite =
      harness::run_job_suite(config.job_base, config.grid, config.jobs);

  // Predictor-sensitivity slice: the S2C2 engine over the mat-vec
  // workloads and both cloud regimes, cost-only at paper scale, once per
  // §6.1 predictor.
  harness::ScenarioConfig mcfg = config.job_base.scenario();
  mcfg.functional = false;
  mcfg.rounds = config.predictor_rounds;
  harness::MatrixAxes axes;
  axes.engines = {StrategyKind::kS2C2};
  axes.workloads = {harness::WorkloadKind::kLogisticRegression,
                    harness::WorkloadKind::kPageRank};
  axes.traces = {TraceProfile::kStableCloud, TraceProfile::kVolatileCloud};
  axes.predictors = harness::all_predictors();
  inputs.predictor_matrix =
      harness::run_matrix(mcfg, axes, {.jobs = config.jobs});
  return inputs;
}

std::string job_completion_csv(const JobSuiteResult& suite) {
  std::string csv =
      "app,trace,strategy,predictor,failed,converged,iterations,rounds,"
      "completion_time_s,normalized_vs_s2c2,timeout_rate,misprediction_rate,"
      "reassigned_chunks,data_moves,final_metric,solution_error,"
      "byzantine_detected,corrupted_chunks,degrading_workers,"
      "health_min_ttf\n";
  for (const JobResult& job : suite.jobs) {
    csv += harness::job_app_name(job.app);
    csv += ',';
    csv += harness::trace_profile_name(job.trace);
    csv += ',';
    csv += core::strategy_name(job.strategy);
    csv += ',';
    csv += harness::predictor_name(job.predictor);
    csv += ',';
    csv += job.failed ? "1" : "0";
    if (job.failed) {
      csv += ",,,,,,,,,,,,,,,\n";
      continue;
    }
    const double ref = s2c2_reference_time(suite, job);
    csv += ',';
    csv += job.converged ? "1" : "0";
    csv += ',' + std::to_string(job.iterations);
    csv += ',' + std::to_string(job.rounds);
    csv += ',' + num(job.completion_time);
    csv += ',';
    if (ref > 0.0) csv += num(job.completion_time / ref);
    csv += ',' + num(job.timeout_rate);
    csv += ',' + num(job.misprediction_rate);
    csv += ',' + std::to_string(job.reassigned_chunks);
    csv += ',' + std::to_string(job.data_moves);
    csv += ',' + num(job.final_metric);
    csv += ',' + num(job.solution_error);
    csv += ',' + std::to_string(job.byzantine_detected);
    csv += ',' + std::to_string(job.corrupted_chunks);
    csv += ',' + std::to_string(job.degrading_workers);
    // +inf renders as "inf" (nobody projected to fail); 0 = no monitor.
    csv += ',' + num(job.health_min_ttf);
    csv += '\n';
  }
  return csv;
}

std::string utilization_csv(const JobSuiteResult& suite) {
  std::string csv =
      "app,trace,strategy,useful_work,wasted_work,waste_pct,"
      "mean_wasted_fraction_pct,busy_time_s,reassigned_chunks,data_moves,"
      "byzantine_detected,corrupted_chunks\n";
  for (const JobResult& job : suite.jobs) {
    csv += harness::job_app_name(job.app);
    csv += ',';
    csv += harness::trace_profile_name(job.trace);
    csv += ',';
    csv += core::strategy_name(job.strategy);
    if (job.failed) {
      csv += ",,,,,,,,,\n";
      continue;
    }
    const double total = job.total_useful + job.total_wasted;
    csv += ',' + num(job.total_useful);
    csv += ',' + num(job.total_wasted);
    csv += ',' + num(total > 0.0 ? 100.0 * job.total_wasted / total : 0.0);
    csv += ',' + num(100.0 * job.mean_wasted_fraction);
    csv += ',' + num(job.total_busy);
    csv += ',' + std::to_string(job.reassigned_chunks);
    csv += ',' + std::to_string(job.data_moves);
    csv += ',' + std::to_string(job.byzantine_detected);
    csv += ',' + std::to_string(job.corrupted_chunks);
    csv += '\n';
  }
  return csv;
}

std::string predictor_sensitivity_csv(const harness::MatrixResult& matrix) {
  std::string csv =
      "predictor,workload,trace,mean_latency_ms,normalized_vs_oracle,"
      "timeout_pct,wasted_pct\n";
  for (const auto& cell : matrix.cells) {
    csv += harness::predictor_name(cell.predictor);
    csv += ',';
    csv += harness::workload_name(cell.workload);
    csv += ',';
    csv += harness::trace_profile_name(cell.trace);
    if (cell.failed) {
      csv += ",,,,\n";
      continue;
    }
    const auto* oracle =
        matrix.find(cell.engine, cell.workload, cell.trace, cell.workers,
                    harness::PredictorKind::kOracle);
    csv += ',' + num(cell.mean_latency * 1e3);
    csv += ',';
    if (oracle != nullptr && !oracle->failed && oracle->mean_latency > 0.0) {
      csv += num(cell.mean_latency / oracle->mean_latency);
    }
    csv += ',' + num(100.0 * cell.timeout_rate);
    csv += ',' + num(100.0 * cell.mean_wasted_fraction);
    csv += '\n';
  }
  return csv;
}

std::string strategy_table_markdown() {
  const auto mark = [](bool b) { return b ? "yes" : "no"; };
  const auto matrix_defaults = harness::all_engines();
  const auto matrix_extended = harness::extended_engines();
  const auto job_defaults = harness::all_job_strategies();
  const auto job_extended = harness::extended_job_strategies();
  std::string md;
  md +=
      "| strategy | coded | predictions | §4.3 recovery | block rounds | "
      "byzantine-tolerant | matrix axis | job axis |\n"
      "|---|---|---|---|---|---|---|---|\n";
  for (const StrategyKind s : core::registered_strategies()) {
    append(md, {"| `", core::strategy_name(s), "` | ",
                mark(core::strategy_is_coded(s)), " | ",
                mark(core::strategy_uses_predictions(s)), " | ",
                mark(core::strategy_uses_recovery(s)), " | ",
                mark(core::strategy_supports_block_rounds(s)), " | ",
                mark(core::strategy_tolerates_byzantine(s)), " | ",
                axis_membership(s, matrix_defaults, matrix_extended), " | ",
                axis_membership(s, job_defaults, job_extended), " |\n"});
  }
  return md;
}

std::string reproduction_markdown(const ReportInputs& inputs) {
  const JobSuiteResult& suite = inputs.suite;
  const harness::JobConfig& base = suite.base;
  const auto traces = suite_traces(suite);
  const auto apps = suite_apps(suite);
  const auto strategies = suite_strategies(suite);

  std::string md;
  md += "# S2C2 reproduction report\n\n";
  md +=
      "> Generated by `build/examples/repro_cli --report`. Do not edit by\n"
      "> hand — regenerate instead. For one binary the output is\n"
      "> byte-identical at any `--jobs` thread count; across compilers or\n"
      "> libm versions low-order digits may legitimately move.\n\n";

  md += "## Provenance\n\n";
  md += "- seed " + std::to_string(base.seed) + ", " +
        std::to_string(base.workers) + " workers (k=" +
        std::to_string(base.effective_k()) + "), " +
        std::to_string(base.chunks_per_partition) + " chunks/partition\n";
  md += "- iteration cap " + std::to_string(base.max_iterations) +
        ", tolerance " + num(base.tolerance) + ", predictor " +
        harness::predictor_name(base.predictor) + "\n";
  md += "- job suite: " + std::to_string(suite.jobs.size()) +
        " jobs, fingerprint `" + suite.fingerprint() + "`\n";
  md += "- predictor matrix: " +
        std::to_string(inputs.predictor_matrix.cells.size()) +
        " cells, fingerprint `" + inputs.predictor_matrix.fingerprint() +
        "`\n\n";

  md += "## Strategy registry\n\n";
  md +=
      "Generated from `core::registered_strategies()` and the capability "
      "predicates in `src/core/strategy_config.h` — one row per strategy "
      "constructible through `core::make_engine`. \"default\" axes are "
      "golden-pinned sweeps; \"extended\" kinds run via `--axis engines=`/"
      "`--strategy` (scenario matrix) or an explicit job grid.\n\n";
  md += strategy_table_markdown();
  md += "\n";

  md += "## Figure-by-figure mapping\n\n";
  md +=
      "| Paper anchor | What it shows | Command | Output to read |\n"
      "|---|---|---|---|\n"
      "| §4.3 (timeout + reassignment) | recovery under mispredictions and "
      "failures | `repro_cli --report` | `job_completion.csv` columns "
      "`timeout_rate`, `reassigned_chunks`; rows with trace `failure` |\n"
      "| §6.1 (predictor lineup) | latency cost of each speed predictor vs "
      "the oracle | `repro_cli --report` | `predictor_sensitivity.csv` "
      "column `normalized_vs_oracle` |\n"
      "| §6.5/§7.1, Figs 6–7 (controlled cluster) | normalized job time, "
      "S2C2 vs baselines, fixed 5x stragglers | `repro_cli --report` | "
      "`job_completion.csv` column `normalized_vs_s2c2`, trace `controlled` "
      "|\n"
      "| §7.2, Fig 8 (low-volatility cloud) | job completion time under "
      "stable cloud traces | `repro_cli --report` | `job_completion.csv`, "
      "trace `stable` |\n"
      "| §7.2, Figs 9/11 (compute waste) | useful vs wasted work per "
      "strategy | `repro_cli --report` | `utilization.csv` column "
      "`waste_pct` |\n"
      "| §7.2, Fig 10 (high-volatility cloud) | job completion time under "
      "volatile cloud traces | `repro_cli --report` | `job_completion.csv`, "
      "trace `volatile` |\n"
      "| §7.2.3/§5 (polynomial coding) | S2C2 on a non-MDS code | "
      "`scenario_cli --matrix --axis engines=poly` | scenario-matrix table "
      "(Hessian rows) |\n"
      "| Fig 13 (cluster scale) | behaviour at n ∈ {12, 24, 48} | "
      "`scenario_cli --matrix --axis sizes=12,24,48` | scenario-matrix "
      "table, column `n` |\n\n";

  md += "## Normalized job completion time (Figs 6–8, 10 analogue)\n\n";
  md +=
      "Each cell is the strategy's job completion time divided by S2C2's "
      "on the same (application, trace) column — the same clusters, traces, "
      "and operators, so > 1.00 means S2C2 finishes the whole iterative job "
      "that factor faster. Absolute seconds in `job_completion.csv`.\n";
  for (const TraceProfile t : traces) {
    append(md, {"\n### Trace `", harness::trace_profile_name(t),
                "`\n\n| app |"});
    for (const StrategyKind s : strategies) {
      append(md, {" ", core::strategy_name(s), " |"});
    }
    md += "\n|---|";
    for (std::size_t i = 0; i < strategies.size(); ++i) md += "---|";
    md += "\n";
    for (const JobApp a : apps) {
      append(md, {"| ", harness::job_app_name(a), " |"});
      for (const StrategyKind s : strategies) {
        const JobResult* job = suite.find(a, s, t);
        if (job == nullptr) {
          md += " - |";
        } else if (job->failed) {
          md += " failed |";
        } else {
          const double ref = s2c2_reference_time(suite, *job);
          if (ref > 0.0) {
            append(md, {" ", fixed(job->completion_time / ref, 2), "x |"});
          } else {
            append(md, {" ", num(job->completion_time), " s |"});
          }
        }
      }
      md += "\n";
    }
  }

  md += "\n## Compute-utilization / waste breakdown (Figs 9, 11 analogue)\n\n";
  md +=
      "Percentage of the cluster's executed work the master discarded "
      "(cancelled stragglers, losing speculative copies, recovery "
      "casualties). Absolute work units in `utilization.csv`.\n";
  for (const TraceProfile t : traces) {
    append(md, {"\n### Trace `", harness::trace_profile_name(t),
                "`\n\n| app |"});
    for (const StrategyKind s : strategies) {
      append(md, {" ", core::strategy_name(s), " |"});
    }
    md += "\n|---|";
    for (std::size_t i = 0; i < strategies.size(); ++i) md += "---|";
    md += "\n";
    for (const JobApp a : apps) {
      append(md, {"| ", harness::job_app_name(a), " |"});
      for (const StrategyKind s : strategies) {
        const JobResult* job = suite.find(a, s, t);
        if (job == nullptr) {
          md += " - |";
        } else if (job->failed) {
          md += " failed |";
        } else {
          const double total = job->total_useful + job->total_wasted;
          append(md, {" ",
                      fixed(total > 0.0 ? 100.0 * job->total_wasted / total
                                        : 0.0,
                            1),
                      "% |"});
        }
      }
      md += "\n";
    }
  }

  md += "\n## Predictor sensitivity (§6.1)\n\n";
  md +=
      "| predictor | workload | trace | mean latency (ms) | vs oracle | "
      "timeout % |\n|---|---|---|---|---|---|\n";
  for (const auto& cell : inputs.predictor_matrix.cells) {
    md += "| " + std::string(harness::predictor_name(cell.predictor)) +
          " | " + harness::workload_name(cell.workload) + " | " +
          harness::trace_profile_name(cell.trace) + " | ";
    if (cell.failed) {
      md += "failed | - | - |\n";
      continue;
    }
    const auto* oracle = inputs.predictor_matrix.find(
        cell.engine, cell.workload, cell.trace, cell.workers,
        harness::PredictorKind::kOracle);
    md += fixed(cell.mean_latency * 1e3, 3) + " | ";
    md += (oracle != nullptr && !oracle->failed && oracle->mean_latency > 0.0)
              ? fixed(cell.mean_latency / oracle->mean_latency, 3) + "x"
              : "-";
    md += " | " + fixed(100.0 * cell.timeout_rate, 1) + " |\n";
  }

  md += "\n## Convergence integrity\n\n";
  md +=
      "Max deviation of each strategy's iterate trajectory from the "
      "uncoded reference run in lockstep — decode-level floating-point "
      "noise for the coded strategies, exact zero for the uncoded "
      "baselines. A large value would mean a strategy changed the math, "
      "not just the schedule.\n\n";
  md += "| app | trace | strategy | iterations | converged | "
        "solution error |\n|---|---|---|---|---|---|\n";
  for (const JobResult& job : suite.jobs) {
    md += "| " + std::string(harness::job_app_name(job.app)) + " | " +
          harness::trace_profile_name(job.trace) + " | " +
          core::strategy_name(job.strategy) + " | ";
    if (job.failed) {
      md += "failed | - | - |\n";
      continue;
    }
    md += std::to_string(job.iterations);
    md += std::string(" | ") + (job.converged ? "yes" : "cap") + " | " +
          num(job.solution_error) + " |\n";
  }

  md += "\n## Known deviations from the paper\n\n";
  md +=
      "1. **Synthetic inputs.** Speed traces are generated (AR(1) wander + "
      "Markov regime switches calibrated to Fig 2's observations), not the "
      "paper's measured DigitalOcean data; datasets are Gaussian-blob "
      "stand-ins with the paper's operator *shapes*, not gisette/Toronto "
      "downloads. All comparisons are therefore relative latencies, never "
      "absolute seconds.\n"
      "2. **Timeout reference point.** The §4.3 deadline is computed from "
      "the k-th fastest response rather than the paper's mean of the first "
      "k — see README \"Timeout-window semantics\" for why the average "
      "misfires under strong speed spread.\n"
      "3. **Functional scale.** Job-driver operators are small (hundreds "
      "of rows) so every decode is verified end to end; the paper's "
      "760 MB/node operators appear only in cost-only scenario-matrix "
      "cells.\n"
      "4. **Uncoded baselines compute exactly.** Replication and "
      "over-decomposition produce the true product by construction, so the "
      "driver simulates only their latency; their `solution_error` is "
      "exactly 0 rather than measured.\n"
      "5. **Graph filtering is run to a fixed point.** The paper's n-hop "
      "filter has a fixed hop count; the driver runs the geometric "
      "diffusion variant so all four applications share one "
      "convergence-driven job semantics.\n"
      "6. **Predictor budget.** The LSTM is the paper's 4-hidden-unit "
      "architecture but trained in-process on a short synthetic corpus "
      "(per-column seed), not offline on weeks of cloud measurements.\n"
      "7. **Per-binary determinism.** Byte-identical regeneration is "
      "guaranteed for one binary at any `--jobs`; different "
      "compilers/libm builds may move low-order digits.\n";
  return md;
}

ReportArtifacts write_report(const ReportInputs& inputs,
                             const std::string& out_dir) {
  std::filesystem::create_directories(out_dir);
  ReportArtifacts art;
  art.suite_fingerprint = inputs.suite.fingerprint();
  art.matrix_fingerprint = inputs.predictor_matrix.fingerprint();
  art.job_completion_path = out_dir + "/job_completion.csv";
  art.utilization_path = out_dir + "/utilization.csv";
  art.predictor_sensitivity_path = out_dir + "/predictor_sensitivity.csv";
  art.reproduction_path = out_dir + "/REPRODUCTION.md";
  write_file(art.job_completion_path, job_completion_csv(inputs.suite));
  write_file(art.utilization_path, utilization_csv(inputs.suite));
  write_file(art.predictor_sensitivity_path,
             predictor_sensitivity_csv(inputs.predictor_matrix));
  write_file(art.reproduction_path, reproduction_markdown(inputs));
  return art;
}

ReportArtifacts generate_report(const ReportConfig& config) {
  return write_report(run_report_inputs(config), config.out_dir);
}

}  // namespace s2c2::report
