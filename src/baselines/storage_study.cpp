#include "src/baselines/storage_study.h"

#include <algorithm>
#include <cmath>

#include "src/util/require.h"

namespace s2c2::baselines {

void IntervalSet::insert(std::size_t begin, std::size_t end) {
  S2C2_REQUIRE(begin <= end, "invalid interval");
  if (begin == end) return;
  // Find overlap window and merge.
  std::vector<std::pair<std::size_t, std::size_t>> merged;
  bool placed = false;
  for (const auto& [b, e] : intervals_) {
    if (e < begin || b > end) {
      if (b > end && !placed) {
        merged.emplace_back(begin, end);
        placed = true;
      }
      merged.emplace_back(b, e);
    } else {
      begin = std::min(begin, b);
      end = std::max(end, e);
    }
  }
  if (!placed) merged.emplace_back(begin, end);
  std::sort(merged.begin(), merged.end());
  intervals_ = std::move(merged);
}

std::size_t IntervalSet::total_length() const {
  std::size_t total = 0;
  for (const auto& [b, e] : intervals_) total += e - b;
  return total;
}

bool IntervalSet::contains(std::size_t point) const {
  for (const auto& [b, e] : intervals_) {
    if (point >= b && point < e) return true;
  }
  return false;
}

StorageStudyResult run_storage_study(
    const std::vector<std::vector<double>>& speeds_per_round, std::size_t rows,
    std::size_t k) {
  S2C2_REQUIRE(!speeds_per_round.empty(), "need at least one round");
  const std::size_t n = speeds_per_round.front().size();
  S2C2_REQUIRE(n >= 1 && k >= 1, "bad cluster shape");

  StorageStudyResult result;
  result.s2c2_fraction = 1.0 / static_cast<double>(k);
  std::vector<IntervalSet> stored(n);

  for (const auto& speeds : speeds_per_round) {
    S2C2_REQUIRE(speeds.size() == n, "ragged speeds matrix");
    double total = 0.0;
    for (double s : speeds) {
      S2C2_REQUIRE(s >= 0.0, "negative speed");
      total += s;
    }
    S2C2_REQUIRE(total > 0.0, "all workers stalled");
    // Contiguous proportional ranges [begin, end) per worker.
    std::size_t begin = 0;
    double acc = 0.0;
    for (std::size_t w = 0; w < n; ++w) {
      acc += speeds[w];
      const auto end = static_cast<std::size_t>(
          std::llround(acc / total * static_cast<double>(rows)));
      stored[w].insert(begin, std::max(begin, end));
      begin = std::max(begin, end);
    }
    double mean_frac = 0.0;
    for (const auto& iv : stored) {
      mean_frac += static_cast<double>(iv.total_length()) /
                   static_cast<double>(rows);
    }
    result.uncoded_mean_fraction.push_back(mean_frac /
                                           static_cast<double>(n));
  }
  return result;
}

}  // namespace s2c2::baselines
