// Storage-overhead study (paper Fig 3, §3.2).
//
// Question: if uncoded computation had a *perfect* speed oracle and
// re-balanced row ranges every iteration, how much of the full matrix
// would each worker eventually need to store locally to avoid any runtime
// data movement? The paper measures ~67% of the full data per node after
// 270 logistic-regression iterations, versus a fixed 1/k (10% for
// (12,10)-MDS) under S2C2.
//
// The study allocates contiguous row ranges proportional to per-round
// speeds and accumulates each worker's interval union.
#pragma once

#include <cstddef>
#include <vector>

namespace s2c2::baselines {

/// Sorted disjoint half-open interval set over row indices.
class IntervalSet {
 public:
  void insert(std::size_t begin, std::size_t end);
  [[nodiscard]] std::size_t total_length() const;
  [[nodiscard]] std::size_t num_intervals() const { return intervals_.size(); }
  [[nodiscard]] bool contains(std::size_t point) const;

 private:
  std::vector<std::pair<std::size_t, std::size_t>> intervals_;
};

struct StorageStudyResult {
  /// Mean (over workers) cumulative fraction of the full matrix stored,
  /// one entry per iteration.
  std::vector<double> uncoded_mean_fraction;
  /// S2C2's constant per-worker fraction: one encoded partition = 1/k.
  double s2c2_fraction = 0.0;
};

/// `speeds_per_round[r][w]` = worker w's (perfectly predicted) speed in
/// round r; `rows` = matrix rows; `k` = the MDS parameter for the S2C2
/// comparison line.
[[nodiscard]] StorageStudyResult run_storage_study(
    const std::vector<std::vector<double>>& speeds_per_round,
    std::size_t rows, std::size_t k);

}  // namespace s2c2::baselines
