// Predictor evaluation harness (reproduces paper §6.1).
//
// Splits a corpus of speed series 80/20 into train/test, fits every model
// on the training split, then scores one-step-ahead MAPE on the test split
// while feeding each model the *actual* past values (exactly how the
// master uses predictors at runtime). The paper reports LSTM MAPE 16.7%,
// ~5 points better than ARIMA(1,0,0).
#pragma once

#include <string>
#include <vector>

#include "src/predict/lstm.h"

namespace s2c2::predict {

struct PredictionReport {
  std::string model;
  double mape = 0.0;  // percent
};

struct EvaluationConfig {
  double train_fraction = 0.8;
  Lstm::TrainConfig lstm_train;
  std::uint64_t lstm_seed = 17;
};

/// Evaluates LSTM, ARIMA(1,0,0), ARIMA(2,0,0), ARIMA(1,1,1) and last-value
/// on the corpus. Reports are ordered as listed above.
[[nodiscard]] std::vector<PredictionReport> evaluate_predictors(
    const std::vector<std::vector<double>>& corpus,
    const EvaluationConfig& config = {});

/// One-step-ahead MAPE of an already-trained LSTM on a corpus.
[[nodiscard]] double lstm_mape(const Lstm& model,
                               const std::vector<std::vector<double>>& corpus);

}  // namespace s2c2::predict
