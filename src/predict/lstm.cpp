#include "src/predict/lstm.h"

#include <algorithm>
#include <cmath>

#include "src/util/require.h"
#include "src/util/rng.h"

namespace s2c2::predict {

namespace {
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

Lstm::Lstm(std::size_t input_dim, std::size_t hidden_dim, std::uint64_t seed)
    : in_(input_dim), hid_(hidden_dim) {
  S2C2_REQUIRE(input_dim >= 1 && hidden_dim >= 1, "positive dims required");
  params_.assign(4 * hid_ * in_ + 4 * hid_ * hid_ + 4 * hid_ + hid_ + 1, 0.0);
  util::Rng rng(seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(hid_));
  for (double& p : params_) p = rng.uniform(-scale, scale);
  // Forget-gate bias init to 1: standard trick for gradient flow.
  for (std::size_t j = 0; j < hid_; ++j) params_[off_b() + hid_ + j] = 1.0;
}

Lstm::State Lstm::initial_state() const {
  return State{std::vector<double>(hid_, 0.0), std::vector<double>(hid_, 0.0)};
}

struct Lstm::StepCache {
  std::vector<double> x, h_prev, c_prev;
  std::vector<double> i, f, g, o, c, tanh_c, h;
  double y = 0.0;
};

double Lstm::step(std::span<const double> x, State& state) const {
  S2C2_REQUIRE(x.size() == in_, "input dim mismatch");
  S2C2_REQUIRE(state.h.size() == hid_ && state.c.size() == hid_,
               "state dim mismatch");
  const double* wx = params_.data() + off_wx();
  const double* wh = params_.data() + off_wh();
  const double* b = params_.data() + off_b();
  const double* wy = params_.data() + off_wy();
  const double by = params_[off_by()];

  std::vector<double> h_new(hid_), c_new(hid_);
  for (std::size_t j = 0; j < hid_; ++j) {
    double zi = b[j], zf = b[hid_ + j], zg = b[2 * hid_ + j],
           zo = b[3 * hid_ + j];
    for (std::size_t q = 0; q < in_; ++q) {
      zi += wx[j * in_ + q] * x[q];
      zf += wx[(hid_ + j) * in_ + q] * x[q];
      zg += wx[(2 * hid_ + j) * in_ + q] * x[q];
      zo += wx[(3 * hid_ + j) * in_ + q] * x[q];
    }
    for (std::size_t q = 0; q < hid_; ++q) {
      zi += wh[j * hid_ + q] * state.h[q];
      zf += wh[(hid_ + j) * hid_ + q] * state.h[q];
      zg += wh[(2 * hid_ + j) * hid_ + q] * state.h[q];
      zo += wh[(3 * hid_ + j) * hid_ + q] * state.h[q];
    }
    const double gi = sigmoid(zi);
    const double gf = sigmoid(zf);
    const double gg = std::tanh(zg);
    const double go = sigmoid(zo);
    c_new[j] = gf * state.c[j] + gi * gg;
    h_new[j] = go * std::tanh(c_new[j]);
  }
  state.h = std::move(h_new);
  state.c = std::move(c_new);
  double y = by;
  for (std::size_t j = 0; j < hid_; ++j) y += wy[j] * state.h[j];
  return y;
}

std::pair<double, std::size_t> Lstm::window_gradient(
    std::span<const double> series, std::span<double> grad) const {
  S2C2_CHECK(grad.size() == params_.size(), "gradient size mismatch");
  if (series.size() < 2) return {0.0, 0};
  const std::size_t steps = series.size() - 1;

  const double* wx = params_.data() + off_wx();
  const double* wh = params_.data() + off_wh();
  const double* b = params_.data() + off_b();
  const double* wy = params_.data() + off_wy();
  const double by = params_[off_by()];

  // ---- forward with cache ----
  std::vector<StepCache> cache(steps);
  std::vector<double> h(hid_, 0.0), c(hid_, 0.0);
  double sse = 0.0;
  for (std::size_t t = 0; t < steps; ++t) {
    StepCache& cc = cache[t];
    cc.x = {series[t]};
    cc.h_prev = h;
    cc.c_prev = c;
    cc.i.resize(hid_);
    cc.f.resize(hid_);
    cc.g.resize(hid_);
    cc.o.resize(hid_);
    cc.c.resize(hid_);
    cc.tanh_c.resize(hid_);
    cc.h.resize(hid_);
    for (std::size_t j = 0; j < hid_; ++j) {
      double zi = b[j], zf = b[hid_ + j], zg = b[2 * hid_ + j],
             zo = b[3 * hid_ + j];
      for (std::size_t q = 0; q < in_; ++q) {
        zi += wx[j * in_ + q] * cc.x[q];
        zf += wx[(hid_ + j) * in_ + q] * cc.x[q];
        zg += wx[(2 * hid_ + j) * in_ + q] * cc.x[q];
        zo += wx[(3 * hid_ + j) * in_ + q] * cc.x[q];
      }
      for (std::size_t q = 0; q < hid_; ++q) {
        zi += wh[j * hid_ + q] * h[q];
        zf += wh[(hid_ + j) * hid_ + q] * h[q];
        zg += wh[(2 * hid_ + j) * hid_ + q] * h[q];
        zo += wh[(3 * hid_ + j) * hid_ + q] * h[q];
      }
      cc.i[j] = sigmoid(zi);
      cc.f[j] = sigmoid(zf);
      cc.g[j] = std::tanh(zg);
      cc.o[j] = sigmoid(zo);
      cc.c[j] = cc.f[j] * cc.c_prev[j] + cc.i[j] * cc.g[j];
      cc.tanh_c[j] = std::tanh(cc.c[j]);
      cc.h[j] = cc.o[j] * cc.tanh_c[j];
    }
    h = cc.h;
    c = cc.c;
    double y = by;
    for (std::size_t j = 0; j < hid_; ++j) y += wy[j] * cc.h[j];
    cc.y = y;
    const double err = y - series[t + 1];
    sse += err * err;
  }

  // ---- backward ----
  double* g_wx = grad.data() + off_wx();
  double* g_wh = grad.data() + off_wh();
  double* g_b = grad.data() + off_b();
  double* g_wy = grad.data() + off_wy();
  double& g_by = grad[off_by()];

  std::vector<double> dh(hid_, 0.0), dc(hid_, 0.0);
  for (std::size_t t = steps; t-- > 0;) {
    const StepCache& cc = cache[t];
    const double dy = 2.0 * (cc.y - series[t + 1]);
    g_by += dy;
    for (std::size_t j = 0; j < hid_; ++j) {
      g_wy[j] += dy * cc.h[j];
      dh[j] += dy * wy[j];
    }
    std::vector<double> dh_prev(hid_, 0.0), dc_prev(hid_, 0.0);
    for (std::size_t j = 0; j < hid_; ++j) {
      const double do_ = dh[j] * cc.tanh_c[j];
      double dcj = dc[j] + dh[j] * cc.o[j] * (1.0 - cc.tanh_c[j] * cc.tanh_c[j]);
      const double di = dcj * cc.g[j];
      const double dg = dcj * cc.i[j];
      const double df = dcj * cc.c_prev[j];
      dc_prev[j] = dcj * cc.f[j];
      const double dzi = di * cc.i[j] * (1.0 - cc.i[j]);
      const double dzf = df * cc.f[j] * (1.0 - cc.f[j]);
      const double dzg = dg * (1.0 - cc.g[j] * cc.g[j]);
      const double dzo = do_ * cc.o[j] * (1.0 - cc.o[j]);
      const double dz[4] = {dzi, dzf, dzg, dzo};
      for (std::size_t gate = 0; gate < 4; ++gate) {
        const std::size_t row = gate * hid_ + j;
        g_b[row] += dz[gate];
        for (std::size_t q = 0; q < in_; ++q) {
          g_wx[row * in_ + q] += dz[gate] * cc.x[q];
        }
        for (std::size_t q = 0; q < hid_; ++q) {
          g_wh[row * hid_ + q] += dz[gate] * cc.h_prev[q];
          dh_prev[q] += dz[gate] * wh[row * hid_ + q];
        }
      }
    }
    dh = std::move(dh_prev);
    dc = std::move(dc_prev);
  }
  return {sse, steps};
}

double Lstm::train(const std::vector<std::vector<double>>& corpus,
                   const TrainConfig& config) {
  S2C2_REQUIRE(!corpus.empty(), "empty training corpus");
  std::vector<double> grad(params_.size(), 0.0);
  std::vector<double> m(params_.size(), 0.0), v(params_.size(), 0.0);
  const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  std::size_t adam_t = 0;
  double last_mse = 0.0;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    double sse = 0.0;
    std::size_t terms = 0;
    for (const auto& series : corpus) {
      if (series.size() < 2) continue;
      for (std::size_t begin = 0; begin + 1 < series.size();
           begin += config.bptt_window) {
        const std::size_t end =
            std::min(series.size(), begin + config.bptt_window + 1);
        std::fill(grad.begin(), grad.end(), 0.0);
        const auto [wsse, wterms] = window_gradient(
            std::span<const double>(series).subspan(begin, end - begin), grad);
        if (wterms == 0) continue;
        sse += wsse;
        terms += wterms;
        // Mean-per-term gradient with clipping.
        double norm = 0.0;
        for (double& gv : grad) {
          gv /= static_cast<double>(wterms);
          norm += gv * gv;
        }
        norm = std::sqrt(norm);
        if (norm > config.grad_clip) {
          const double s = config.grad_clip / norm;
          for (double& gv : grad) gv *= s;
        }
        ++adam_t;
        const double corr1 = 1.0 - std::pow(b1, static_cast<double>(adam_t));
        const double corr2 = 1.0 - std::pow(b2, static_cast<double>(adam_t));
        for (std::size_t p = 0; p < params_.size(); ++p) {
          m[p] = b1 * m[p] + (1.0 - b1) * grad[p];
          v[p] = b2 * v[p] + (1.0 - b2) * grad[p] * grad[p];
          params_[p] -= config.learning_rate * (m[p] / corr1) /
                        (std::sqrt(v[p] / corr2) + eps);
        }
      }
    }
    last_mse = terms > 0 ? sse / static_cast<double>(terms) : 0.0;
  }
  return last_mse;
}

double Lstm::evaluate_mse(
    const std::vector<std::vector<double>>& corpus) const {
  double sse = 0.0;
  std::size_t terms = 0;
  for (const auto& series : corpus) {
    if (series.size() < 2) continue;
    State st = initial_state();
    for (std::size_t t = 0; t + 1 < series.size(); ++t) {
      const double x[1] = {series[t]};
      const double y = step(std::span<const double>(x, 1), st);
      const double err = y - series[t + 1];
      sse += err * err;
      ++terms;
    }
  }
  return terms > 0 ? sse / static_cast<double>(terms) : 0.0;
}

double Lstm::gradient_check(std::span<const double> series, double eps) const {
  S2C2_REQUIRE(series.size() >= 2, "need at least two samples");
  std::vector<double> analytic(params_.size(), 0.0);
  Lstm copy = *this;
  copy.window_gradient(series, analytic);

  double max_rel = 0.0;
  for (std::size_t p = 0; p < params_.size(); ++p) {
    Lstm plus = *this;
    plus.params_[p] += eps;
    Lstm minus = *this;
    minus.params_[p] -= eps;
    std::vector<double> dummy_p(params_.size(), 0.0),
        dummy_m(params_.size(), 0.0);
    const double lp = plus.window_gradient(series, dummy_p).first;
    const double lm = minus.window_gradient(series, dummy_m).first;
    const double numeric = (lp - lm) / (2.0 * eps);
    const double denom =
        std::max({std::abs(numeric), std::abs(analytic[p]), 1e-8});
    max_rel = std::max(max_rel, std::abs(numeric - analytic[p]) / denom);
  }
  return max_rel;
}

void Lstm::set_params(std::span<const double> p) {
  S2C2_REQUIRE(p.size() == params_.size(), "parameter size mismatch");
  std::copy(p.begin(), p.end(), params_.begin());
}

LstmPredictor::LstmPredictor(std::size_t num_workers, const Lstm& model)
    : model_(model),
      states_(num_workers, model.initial_state()),
      next_pred_(num_workers, 1.0) {
  S2C2_REQUIRE(model.input_dim() == 1, "speed predictor expects 1-dim input");
}

void LstmPredictor::observe(std::size_t worker, double speed) {
  S2C2_REQUIRE(worker < states_.size(), "worker out of range");
  const double x[1] = {speed};
  next_pred_[worker] = model_.step(std::span<const double>(x, 1),
                                   states_[worker]);
}

double LstmPredictor::predict(std::size_t worker) {
  S2C2_REQUIRE(worker < states_.size(), "worker out of range");
  return next_pred_[worker] > 0.0 ? next_pred_[worker] : 0.0;
}

}  // namespace s2c2::predict
