#include "src/predict/predictors.h"

#include "src/util/require.h"

namespace s2c2::predict {

LastValuePredictor::LastValuePredictor(std::size_t num_workers)
    : last_(num_workers, 1.0) {}

void LastValuePredictor::observe(std::size_t worker, double speed) {
  S2C2_REQUIRE(worker < last_.size(), "worker out of range");
  last_[worker] = speed;
}

double LastValuePredictor::predict(std::size_t worker) {
  S2C2_REQUIRE(worker < last_.size(), "worker out of range");
  return last_[worker];
}

FrozenSpeedPredictor::FrozenSpeedPredictor(std::size_t num_workers,
                                           std::size_t warmup_rounds)
    : warmup_(warmup_rounds), seen_(num_workers, 0), sum_(num_workers, 0.0) {
  S2C2_REQUIRE(warmup_rounds >= 1, "need at least one warmup round");
}

void FrozenSpeedPredictor::observe(std::size_t worker, double speed) {
  S2C2_REQUIRE(worker < seen_.size(), "worker out of range");
  if (seen_[worker] >= warmup_) return;  // frozen
  sum_[worker] += speed;
  ++seen_[worker];
}

double FrozenSpeedPredictor::predict(std::size_t worker) {
  S2C2_REQUIRE(worker < seen_.size(), "worker out of range");
  if (seen_[worker] == 0) return 1.0;
  return sum_[worker] / static_cast<double>(seen_[worker]);
}

NoisyPredictor::NoisyPredictor(std::unique_ptr<SpeedPredictor> inner,
                               double corrupt_prob, double rel_error,
                               std::uint64_t seed)
    : inner_(std::move(inner)),
      corrupt_prob_(corrupt_prob),
      rel_error_(rel_error),
      rng_(seed) {
  S2C2_REQUIRE(inner_ != nullptr, "inner predictor required");
  S2C2_REQUIRE(corrupt_prob >= 0.0 && corrupt_prob <= 1.0,
               "corrupt_prob in [0,1]");
  S2C2_REQUIRE(rel_error >= 0.0, "rel_error must be >= 0");
}

void NoisyPredictor::observe(std::size_t worker, double speed) {
  inner_->observe(worker, speed);
}

double NoisyPredictor::predict(std::size_t worker) {
  double p = inner_->predict(worker);
  if (rng_.bernoulli(corrupt_prob_)) {
    const double sign = rng_.bernoulli(0.5) ? 1.0 : -1.0;
    p *= 1.0 + sign * rel_error_;
  }
  return p > 0.0 ? p : 0.0;
}

std::string NoisyPredictor::name() const {
  return "noisy(" + inner_->name() + ")";
}

HealthInformedPredictor::HealthInformedPredictor(
    std::unique_ptr<SpeedPredictor> inner, ScaleFn scale)
    : inner_(std::move(inner)), scale_(std::move(scale)) {
  S2C2_REQUIRE(inner_ != nullptr, "inner predictor required");
}

void HealthInformedPredictor::observe(std::size_t worker, double speed) {
  inner_->observe(worker, speed);
}

double HealthInformedPredictor::predict(std::size_t worker) {
  const double p = inner_->predict(worker);
  if (!scale_) return p;
  double s = scale_(worker);
  if (!(s > 0.0)) s = 1.0;  // empty/invalid health signal: pass through
  if (s > 1.0) s = 1.0;     // health can only bid a worker down
  return p * s;
}

std::string HealthInformedPredictor::name() const {
  return "health(" + inner_->name() + ")";
}

}  // namespace s2c2::predict
