#include "src/predict/evaluation.h"

#include <cmath>

#include "src/predict/arima.h"
#include "src/util/require.h"
#include "src/util/stats.h"

namespace s2c2::predict {

namespace {

/// Walk-forward one-step MAPE for any history->forecast functor.
template <typename ForecastFn>
double walk_forward_mape(const std::vector<std::vector<double>>& corpus,
                         ForecastFn&& forecast) {
  std::vector<double> preds;
  std::vector<double> actuals;
  for (const auto& series : corpus) {
    for (std::size_t t = 1; t < series.size(); ++t) {
      const std::span<const double> history(series.data(), t);
      preds.push_back(forecast(history));
      actuals.push_back(series[t]);
    }
  }
  return util::mape(preds, actuals);
}

}  // namespace

double lstm_mape(const Lstm& model,
                 const std::vector<std::vector<double>>& corpus) {
  std::vector<double> preds;
  std::vector<double> actuals;
  for (const auto& series : corpus) {
    if (series.size() < 2) continue;
    Lstm::State st = model.initial_state();
    for (std::size_t t = 0; t + 1 < series.size(); ++t) {
      const double x[1] = {series[t]};
      preds.push_back(model.step(std::span<const double>(x, 1), st));
      actuals.push_back(series[t + 1]);
    }
  }
  return util::mape(preds, actuals);
}

std::vector<PredictionReport> evaluate_predictors(
    const std::vector<std::vector<double>>& corpus,
    const EvaluationConfig& config) {
  S2C2_REQUIRE(corpus.size() >= 2, "need at least two series");
  const auto split = static_cast<std::size_t>(
      config.train_fraction * static_cast<double>(corpus.size()));
  S2C2_REQUIRE(split >= 1 && split < corpus.size(),
               "train fraction leaves an empty split");
  const std::vector<std::vector<double>> train(corpus.begin(),
                                               corpus.begin() + split);
  const std::vector<std::vector<double>> test(corpus.begin() + split,
                                              corpus.end());

  std::vector<PredictionReport> out;

  Lstm lstm(1, 4, config.lstm_seed);
  lstm.train(train, config.lstm_train);
  out.push_back({"LSTM(h=4)", lstm_mape(lstm, test)});

  const ArModel ar1 = fit_ar(train, 1);
  out.push_back({"ARIMA(1,0,0)", walk_forward_mape(test, [&](auto h) {
                   return ar1.forecast(h);
                 })});

  const ArModel ar2 = fit_ar(train, 2);
  out.push_back({"ARIMA(2,0,0)", walk_forward_mape(test, [&](auto h) {
                   return ar2.forecast(h);
                 })});

  const ArimaModel a111 = fit_arima11(train, 1);
  out.push_back({"ARIMA(1,1,1)", walk_forward_mape(test, [&](auto h) {
                   return a111.forecast(h);
                 })});

  out.push_back({"last-value", walk_forward_mape(test, [](auto h) {
                   return h.back();
                 })});
  return out;
}

}  // namespace s2c2::predict
