// Single-layer LSTM for speed forecasting (paper §6.1).
//
// Matches the paper's best model: 1-dimensional input (the previous
// iteration's speed), 4-dimensional hidden state with tanh activation, and
// a 1-dimensional linear readout. Trained from scratch here with full
// backpropagation-through-time and Adam; gradients are finite-difference
// checked in the test suite.
//
// Parameters live in one flat vector (gate order i, f, g, o):
//   Wx (4H x I) | Wh (4H x H) | b (4H) | Wy (H) | by (1)
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/predict/predictors.h"

namespace s2c2::predict {

class Lstm {
 public:
  Lstm(std::size_t input_dim, std::size_t hidden_dim, std::uint64_t seed);

  [[nodiscard]] std::size_t input_dim() const noexcept { return in_; }
  [[nodiscard]] std::size_t hidden_dim() const noexcept { return hid_; }
  [[nodiscard]] std::size_t num_params() const noexcept {
    return params_.size();
  }

  struct State {
    std::vector<double> h;
    std::vector<double> c;
  };

  [[nodiscard]] State initial_state() const;

  /// One recurrence step: consumes x, updates state in place, returns the
  /// scalar readout y = Wy·h + by.
  double step(std::span<const double> x, State& state) const;

  struct TrainConfig {
    std::size_t epochs = 60;
    double learning_rate = 1e-2;
    std::size_t bptt_window = 32;  // truncation length
    double grad_clip = 5.0;
  };

  /// Trains next-step prediction (input x_t, target x_{t+1}) over a corpus
  /// of scalar series. Returns the final mean squared error.
  double train(const std::vector<std::vector<double>>& corpus,
               const TrainConfig& config);

  /// Mean squared one-step-ahead error over a corpus (no training).
  [[nodiscard]] double evaluate_mse(
      const std::vector<std::vector<double>>& corpus) const;

  /// Analytic-vs-finite-difference gradient comparison on one window;
  /// returns the max relative element error (test hook).
  [[nodiscard]] double gradient_check(std::span<const double> series,
                                      double eps = 1e-6) const;

  [[nodiscard]] std::span<const double> params() const noexcept {
    return params_;
  }
  void set_params(std::span<const double> p);

 private:
  struct StepCache;

  /// Forward + BPTT over series[first..last); accumulates gradient and
  /// returns summed squared error and the number of prediction terms.
  std::pair<double, std::size_t> window_gradient(
      std::span<const double> series, std::span<double> grad) const;

  std::size_t in_;
  std::size_t hid_;
  std::vector<double> params_;

  // Flat-layout offsets.
  [[nodiscard]] std::size_t off_wx() const { return 0; }
  [[nodiscard]] std::size_t off_wh() const { return 4 * hid_ * in_; }
  [[nodiscard]] std::size_t off_b() const {
    return off_wh() + 4 * hid_ * hid_;
  }
  [[nodiscard]] std::size_t off_wy() const { return off_b() + 4 * hid_; }
  [[nodiscard]] std::size_t off_by() const { return off_wy() + hid_; }
};

/// SpeedPredictor adapter: one shared trained LSTM, per-worker recurrent
/// state fed with observed speeds (paper §6.2 batches all workers through
/// the same model).
class LstmPredictor final : public SpeedPredictor {
 public:
  LstmPredictor(std::size_t num_workers, const Lstm& model);
  void observe(std::size_t worker, double speed) override;
  double predict(std::size_t worker) override;
  std::string name() const override { return "LSTM"; }

 private:
  const Lstm& model_;
  std::vector<Lstm::State> states_;
  std::vector<double> next_pred_;
};

}  // namespace s2c2::predict
