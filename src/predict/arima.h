// ARIMA-family forecasting (paper §6.1 baselines).
//
// The paper evaluates ARIMA(1,0,0), ARIMA(2,0,0) and ARIMA(1,1,1) against
// the LSTM. AR(p) models are fit by ordinary least squares on the lagged
// design matrix; ARMA(1,1) (on the once-differenced series for d=1) by
// conditional sum of squares over a coarse-to-fine grid in (phi, theta).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/predict/predictors.h"

namespace s2c2::predict {

/// AR(p): y_t = c + Σ_i φ_i · y_{t-i} + e_t.
struct ArModel {
  std::vector<double> phi;
  double intercept = 0.0;

  [[nodiscard]] std::size_t order() const { return phi.size(); }

  /// One-step forecast from the most recent values (history.back() is the
  /// latest). Falls back to the last value when history is shorter than p.
  [[nodiscard]] double forecast(std::span<const double> history) const;
};

/// OLS fit pooled over a corpus of series.
[[nodiscard]] ArModel fit_ar(const std::vector<std::vector<double>>& corpus,
                             std::size_t p);

/// ARIMA(1,d,1) with d in {0,1}: ARMA(1,1) on the d-times differenced
/// series: z_t = c + φ z_{t-1} + θ e_{t-1} + e_t.
struct ArimaModel {
  std::size_t d = 0;
  double phi = 0.0;
  double theta = 0.0;
  double intercept = 0.0;

  [[nodiscard]] double forecast(std::span<const double> history) const;
};

[[nodiscard]] ArimaModel fit_arima11(
    const std::vector<std::vector<double>>& corpus, std::size_t d);

/// SpeedPredictor adapter: shared fitted model, per-worker history window.
class ArPredictor final : public SpeedPredictor {
 public:
  ArPredictor(std::size_t num_workers, ArModel model);
  void observe(std::size_t worker, double speed) override;
  double predict(std::size_t worker) override;
  std::string name() const override;

 private:
  ArModel model_;
  std::vector<std::vector<double>> history_;
};

class ArimaPredictor final : public SpeedPredictor {
 public:
  ArimaPredictor(std::size_t num_workers, ArimaModel model);
  void observe(std::size_t worker, double speed) override;
  double predict(std::size_t worker) override;
  std::string name() const override;

 private:
  ArimaModel model_;
  std::vector<std::vector<double>> history_;
};

}  // namespace s2c2::predict
