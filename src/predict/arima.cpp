#include "src/predict/arima.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/linalg/lu.h"
#include "src/linalg/matrix.h"
#include "src/util/require.h"

namespace s2c2::predict {

double ArModel::forecast(std::span<const double> history) const {
  if (history.empty()) return 1.0;
  if (history.size() < phi.size()) return history.back();
  double y = intercept;
  for (std::size_t i = 0; i < phi.size(); ++i) {
    y += phi[i] * history[history.size() - 1 - i];
  }
  return y;
}

ArModel fit_ar(const std::vector<std::vector<double>>& corpus, std::size_t p) {
  S2C2_REQUIRE(p >= 1, "AR order must be >= 1");
  // Normal equations for [y_{t-1} ... y_{t-p} 1] -> y_t, pooled.
  const std::size_t dim = p + 1;
  linalg::Matrix xtx(dim, dim);
  std::vector<double> xty(dim, 0.0);
  std::size_t rows = 0;
  for (const auto& series : corpus) {
    if (series.size() <= p) continue;
    for (std::size_t t = p; t < series.size(); ++t) {
      std::vector<double> x(dim, 1.0);
      for (std::size_t i = 0; i < p; ++i) x[i] = series[t - 1 - i];
      for (std::size_t a = 0; a < dim; ++a) {
        for (std::size_t b = 0; b < dim; ++b) xtx(a, b) += x[a] * x[b];
        xty[a] += x[a] * series[t];
      }
      ++rows;
    }
  }
  S2C2_REQUIRE(rows > dim, "not enough data to fit AR model");
  // Ridge nudge for numerical safety on near-constant series.
  for (std::size_t a = 0; a < dim; ++a) xtx(a, a) += 1e-9;
  const linalg::LuFactorization lu(xtx);
  const auto beta = lu.solve(xty);
  ArModel m;
  m.phi.assign(beta.begin(), beta.begin() + static_cast<std::ptrdiff_t>(p));
  m.intercept = beta[p];
  return m;
}

namespace {

/// Conditional sum of squares of ARMA(1,1) on a differenced corpus.
double css(const std::vector<std::vector<double>>& corpus, std::size_t d,
           double phi, double theta, double* intercept_out) {
  double sse = 0.0;
  std::size_t count = 0;
  // Intercept that centers the process: c = mean(z) * (1 - phi).
  double zsum = 0.0;
  std::size_t zn = 0;
  for (const auto& series : corpus) {
    std::vector<double> z(series.begin(), series.end());
    for (std::size_t diff = 0; diff < d; ++diff) {
      for (std::size_t t = z.size(); t-- > 1;) z[t] -= z[t - 1];
      z.erase(z.begin());
    }
    for (double v : z) zsum += v;
    zn += z.size();
  }
  const double c = zn > 0 ? zsum / static_cast<double>(zn) * (1.0 - phi) : 0.0;
  if (intercept_out != nullptr) *intercept_out = c;

  for (const auto& series : corpus) {
    std::vector<double> z(series.begin(), series.end());
    for (std::size_t diff = 0; diff < d; ++diff) {
      for (std::size_t t = z.size(); t-- > 1;) z[t] -= z[t - 1];
      z.erase(z.begin());
    }
    if (z.size() < 2) continue;
    double e_prev = 0.0;
    for (std::size_t t = 1; t < z.size(); ++t) {
      const double pred = c + phi * z[t - 1] + theta * e_prev;
      const double e = z[t] - pred;
      sse += e * e;
      e_prev = e;
      ++count;
    }
  }
  return count > 0 ? sse / static_cast<double>(count)
                   : std::numeric_limits<double>::infinity();
}

}  // namespace

double ArimaModel::forecast(std::span<const double> history) const {
  if (history.empty()) return 1.0;
  if (history.size() < d + 2) return history.back();
  // Reconstruct the differenced tail and the last innovation estimate.
  std::vector<double> z(history.begin(), history.end());
  for (std::size_t diff = 0; diff < d; ++diff) {
    for (std::size_t t = z.size(); t-- > 1;) z[t] -= z[t - 1];
    z.erase(z.begin());
  }
  double e_prev = 0.0;
  for (std::size_t t = 1; t < z.size(); ++t) {
    const double pred = intercept + phi * z[t - 1] + theta * e_prev;
    e_prev = z[t] - pred;
  }
  const double z_next = intercept + phi * z.back() + theta * e_prev;
  return d == 0 ? z_next : history.back() + z_next;
}

ArimaModel fit_arima11(const std::vector<std::vector<double>>& corpus,
                       std::size_t d) {
  S2C2_REQUIRE(d <= 1, "only d in {0,1} supported");
  ArimaModel best;
  best.d = d;
  double best_sse = std::numeric_limits<double>::infinity();
  // Coarse grid then local refinement.
  for (double phi = -0.95; phi <= 0.96; phi += 0.05) {
    for (double theta = -0.95; theta <= 0.96; theta += 0.05) {
      double c = 0.0;
      const double sse = css(corpus, d, phi, theta, &c);
      if (sse < best_sse) {
        best_sse = sse;
        best.phi = phi;
        best.theta = theta;
        best.intercept = c;
      }
    }
  }
  const double p0 = best.phi;
  const double t0 = best.theta;
  for (double phi = p0 - 0.05; phi <= p0 + 0.05; phi += 0.005) {
    for (double theta = t0 - 0.05; theta <= t0 + 0.05; theta += 0.005) {
      if (std::abs(phi) >= 1.0) continue;
      double c = 0.0;
      const double sse = css(corpus, d, phi, theta, &c);
      if (sse < best_sse) {
        best_sse = sse;
        best.phi = phi;
        best.theta = theta;
        best.intercept = c;
      }
    }
  }
  return best;
}

ArPredictor::ArPredictor(std::size_t num_workers, ArModel model)
    : model_(std::move(model)), history_(num_workers) {}

void ArPredictor::observe(std::size_t worker, double speed) {
  S2C2_REQUIRE(worker < history_.size(), "worker out of range");
  history_[worker].push_back(speed);
}

double ArPredictor::predict(std::size_t worker) {
  S2C2_REQUIRE(worker < history_.size(), "worker out of range");
  const double f = model_.forecast(history_[worker]);
  return f > 0.0 ? f : 0.0;
}

std::string ArPredictor::name() const {
  return "ARIMA(" + std::to_string(model_.order()) + ",0,0)";
}

ArimaPredictor::ArimaPredictor(std::size_t num_workers, ArimaModel model)
    : model_(model), history_(num_workers) {}

void ArimaPredictor::observe(std::size_t worker, double speed) {
  S2C2_REQUIRE(worker < history_.size(), "worker out of range");
  history_[worker].push_back(speed);
}

double ArimaPredictor::predict(std::size_t worker) {
  S2C2_REQUIRE(worker < history_.size(), "worker out of range");
  const double f = model_.forecast(history_[worker]);
  return f > 0.0 ? f : 0.0;
}

std::string ArimaPredictor::name() const {
  return "ARIMA(1," + std::to_string(model_.d) + ",1)";
}

}  // namespace s2c2::predict
