// Speed prediction interface (paper §3.2, §6.1, §6.2).
//
// The master observes each worker's realized speed every iteration
// (rows computed / response time) and asks a predictor for next-iteration
// speeds before allocating work. Implementations here cover the paper's
// models (LSTM in lstm.h, ARIMA in arima.h) plus the degenerate predictors
// the evaluation needs: last-value (≈ ARIMA(1,0,0) with unit coefficient),
// equal-speed (what basic S2C2 assumes for non-stragglers), and a noise
// wrapper used to dial in a target mis-prediction rate for ablations.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace s2c2::predict {

class SpeedPredictor {
 public:
  virtual ~SpeedPredictor() = default;

  /// Feeds the realized speed of `worker` for the round that just ended.
  virtual void observe(std::size_t worker, double speed) = 0;

  /// One-step-ahead speed forecast for `worker`.
  [[nodiscard]] virtual double predict(std::size_t worker) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Predicts the last observed speed (1.0 before any observation).
class LastValuePredictor final : public SpeedPredictor {
 public:
  explicit LastValuePredictor(std::size_t num_workers);
  void observe(std::size_t worker, double speed) override;
  double predict(std::size_t worker) override;
  std::string name() const override { return "last-value"; }

 private:
  std::vector<double> last_;
};

/// Always predicts 1.0 — models a master with no speed information.
class EqualSpeedPredictor final : public SpeedPredictor {
 public:
  void observe(std::size_t, double) override {}
  double predict(std::size_t) override { return 1.0; }
  std::string name() const override { return "equal-speed"; }
};

/// Averages the first `warmup` observations per worker, then freezes —
/// models *static* heterogeneity-aware load splitting (Reisizadeh et al.,
/// cited as [34] in the paper), the natural ablation against S2C2's
/// per-round adaptation.
class FrozenSpeedPredictor final : public SpeedPredictor {
 public:
  FrozenSpeedPredictor(std::size_t num_workers, std::size_t warmup_rounds);
  void observe(std::size_t worker, double speed) override;
  double predict(std::size_t worker) override;
  std::string name() const override { return "frozen-after-warmup"; }

 private:
  std::size_t warmup_;
  std::vector<std::size_t> seen_;
  std::vector<double> sum_;
};

/// Wraps another predictor and corrupts a fraction of predictions with
/// multiplicative error — used to study S2C2 under controlled
/// mis-prediction rates (ablation benches).
class NoisyPredictor final : public SpeedPredictor {
 public:
  NoisyPredictor(std::unique_ptr<SpeedPredictor> inner, double corrupt_prob,
                 double rel_error, std::uint64_t seed);
  void observe(std::size_t worker, double speed) override;
  double predict(std::size_t worker) override;
  std::string name() const override;

 private:
  std::unique_ptr<SpeedPredictor> inner_;
  double corrupt_prob_;
  double rel_error_;
  util::Rng rng_;
};

/// Wraps another predictor and scales its estimates by an externally
/// supplied per-worker health factor in (0, 1] — the hook
/// `telemetry::HealthMonitor::prediction_scale` plugs into. The predict
/// layer stays below telemetry: the wrapper only sees a callback, so the
/// monitor (owned by the engine) can bid down degrading workers before
/// the trace itself confirms the decline. An empty callback or an
/// out-of-range factor degrades to the inner prediction unchanged.
class HealthInformedPredictor final : public SpeedPredictor {
 public:
  using ScaleFn = std::function<double(std::size_t)>;
  HealthInformedPredictor(std::unique_ptr<SpeedPredictor> inner,
                          ScaleFn scale);
  void observe(std::size_t worker, double speed) override;
  double predict(std::size_t worker) override;
  std::string name() const override;

 private:
  std::unique_ptr<SpeedPredictor> inner_;
  ScaleFn scale_;
};

}  // namespace s2c2::predict
