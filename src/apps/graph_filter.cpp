#include "src/apps/graph_filter.h"

#include "src/util/require.h"

namespace s2c2::apps {

GraphFilterResult coded_graph_filter(const linalg::CsrMatrix& laplacian,
                                     const linalg::Vector& signal,
                                     const core::ClusterSpec& spec,
                                     const core::EngineConfig& config,
                                     const GraphFilterConfig& gf) {
  const std::size_t nodes = laplacian.rows();
  S2C2_REQUIRE(laplacian.cols() == nodes, "Laplacian must be square");
  S2C2_REQUIRE(signal.size() == nodes, "signal size mismatch");
  S2C2_REQUIRE(!gf.coefficients.empty(), "need at least one coefficient");
  const std::size_t n = spec.num_workers();
  const std::size_t k =
      gf.k != 0 ? gf.k : std::max<std::size_t>(1, n >= 3 ? n - 2 : n);

  core::CodedComputeEngine engine(
      core::CodedMatVecJob(laplacian, n, k, config.chunks_per_partition),
      spec, config);

  GraphFilterResult result;
  result.filtered.assign(nodes, 0.0);
  linalg::Vector power = signal;  // L^h x, starting at h=0
  for (std::size_t h = 0; h < gf.coefficients.size(); ++h) {
    if (h > 0) {
      const core::RoundResult round = engine.run_round(power);
      S2C2_CHECK(round.y.has_value(), "functional round must decode");
      power = *round.y;
      result.total_latency += round.stats.latency();
      result.timeout_rounds += round.stats.timeout_fired ? 1 : 0;
    }
    linalg::axpy(gf.coefficients[h], power, result.filtered);
  }
  return result;
}

linalg::Vector graph_filter_direct(const linalg::CsrMatrix& laplacian,
                                   const linalg::Vector& signal,
                                   const std::vector<double>& coefficients) {
  S2C2_REQUIRE(!coefficients.empty(), "need at least one coefficient");
  linalg::Vector out(signal.size(), 0.0);
  linalg::Vector power = signal;
  for (std::size_t h = 0; h < coefficients.size(); ++h) {
    if (h > 0) power = laplacian.matvec(power);
    linalg::axpy(coefficients[h], power, out);
  }
  return out;
}

}  // namespace s2c2::apps
