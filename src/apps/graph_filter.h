// Graph signal filtering via coded Laplacian powers (paper §6.3: "n-hop
// filtering operations employ n iterations of matrix-vector multiplication
// over the combinatorial Laplacian matrix").
//
// Computes  y = Σ_h coeffs[h] · L^h · x  with every L·v product executed
// through the coded cluster.
#pragma once

#include <vector>

#include "src/core/engine.h"
#include "src/linalg/sparse.h"

namespace s2c2::apps {

struct GraphFilterConfig {
  std::vector<double> coefficients{1.0, -0.5, 0.25};  // c_0 + c_1 L + c_2 L²
  std::size_t k = 0;  // MDS parameter; 0 = max(1, n - 2)
};

struct GraphFilterResult {
  linalg::Vector filtered;
  double total_latency = 0.0;
  std::size_t timeout_rounds = 0;
};

/// `laplacian` from workload::combinatorial_laplacian.
[[nodiscard]] GraphFilterResult coded_graph_filter(
    const linalg::CsrMatrix& laplacian, const linalg::Vector& signal,
    const core::ClusterSpec& spec, const core::EngineConfig& config,
    const GraphFilterConfig& gf);

/// Uncoded reference for tests.
[[nodiscard]] linalg::Vector graph_filter_direct(
    const linalg::CsrMatrix& laplacian, const linalg::Vector& signal,
    const std::vector<double>& coefficients);

}  // namespace s2c2::apps
