#include "src/apps/svm.h"

#include <algorithm>

#include "src/util/require.h"

namespace s2c2::apps {

linalg::Vector hinge_residual(const workload::Dataset& data,
                              std::span<const double> margins) {
  const std::size_t m = data.x.rows();
  linalg::Vector r(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (data.y[i] * margins[i] < 1.0) {
      r[i] = -data.y[i] / static_cast<double>(m);
    }
  }
  return r;
}

double hinge_objective(const workload::Dataset& data, const linalg::Vector& w,
                       double lambda) {
  const auto margins = data.x.matvec(w);
  double obj = 0.0;
  for (std::size_t i = 0; i < margins.size(); ++i) {
    obj += std::max(0.0, 1.0 - data.y[i] * margins[i]);
  }
  obj /= static_cast<double>(margins.size());
  obj += 0.5 * lambda * linalg::dot(w, w);
  return obj;
}

linalg::Vector hinge_subgradient(const workload::Dataset& data,
                                 const linalg::Vector& w, double lambda) {
  const auto margins = data.x.matvec(w);
  auto grad = data.x.matvec_transposed(hinge_residual(data, margins));
  linalg::axpy(lambda, w, grad);
  return grad;
}

SvmResult train_svm(const workload::Dataset& data,
                    const core::ClusterSpec& spec,
                    const core::EngineConfig& config, const SvmConfig& svm) {
  S2C2_REQUIRE(data.x.rows() == data.y.size(), "labels/rows mismatch");
  const std::size_t n = spec.num_workers();
  const std::size_t k =
      svm.k != 0 ? svm.k : std::max<std::size_t>(1, n >= 3 ? n - 2 : n);
  S2C2_REQUIRE(k <= n, "k must be <= n");
  const std::size_t c = config.chunks_per_partition;

  core::CodedComputeEngine forward(core::CodedMatVecJob(data.x, n, k, c),
                                   spec, config);
  core::CodedComputeEngine backward(
      core::CodedMatVecJob(data.x.transposed(), n, k, c), spec, config);

  SvmResult result;
  result.weights.assign(data.x.cols(), 0.0);
  for (std::size_t it = 0; it < svm.iterations; ++it) {
    const core::RoundResult fwd = forward.run_round(result.weights);
    S2C2_CHECK(fwd.y.has_value(), "functional round must decode");
    const auto resid = hinge_residual(data, *fwd.y);
    const core::RoundResult bwd = backward.run_round(resid);
    S2C2_CHECK(bwd.y.has_value(), "functional round must decode");

    linalg::Vector grad = *bwd.y;
    linalg::axpy(svm.lambda, result.weights, grad);
    linalg::axpy(-svm.learning_rate, grad, result.weights);

    result.total_latency += fwd.stats.latency() + bwd.stats.latency();
    result.timeout_rounds += (fwd.stats.timeout_fired ? 1 : 0) +
                             (bwd.stats.timeout_fired ? 1 : 0);
    result.objectives.push_back(
        hinge_objective(data, result.weights, svm.lambda));
  }
  return result;
}

}  // namespace s2c2::apps
