// Distributed linear SVM (hinge loss) via coded subgradient descent —
// the paper's cloud workload (§7.2 runs SVM for Figs 8-11, 13).
//
// Subgradient of  (1/m) Σ max(0, 1 - y_i·w·x_i) + (λ/2)|w|²  needs the
// same two coded products per iteration as logistic regression.
#pragma once

#include <vector>

#include "src/core/engine.h"
#include "src/workload/datasets.h"

namespace s2c2::apps {

struct SvmConfig {
  std::size_t iterations = 30;
  double learning_rate = 0.2;
  double lambda = 1e-3;
  std::size_t k = 0;  // MDS parameter; 0 = max(1, n - 2)
};

struct SvmResult {
  linalg::Vector weights;
  std::vector<double> objectives;
  double total_latency = 0.0;
  std::size_t timeout_rounds = 0;
};

[[nodiscard]] SvmResult train_svm(const workload::Dataset& data,
                                  const core::ClusterSpec& spec,
                                  const core::EngineConfig& config,
                                  const SvmConfig& svm);

[[nodiscard]] double hinge_objective(const workload::Dataset& data,
                                     const linalg::Vector& w, double lambda);

[[nodiscard]] linalg::Vector hinge_subgradient(const workload::Dataset& data,
                                               const linalg::Vector& w,
                                               double lambda);

/// Hinge-loss subgradient w.r.t. the margins u = X·w: r_i = -y_i/m inside
/// the margin, else 0. Shared with the job driver's strategy-generic loop.
[[nodiscard]] linalg::Vector hinge_residual(const workload::Dataset& data,
                                            std::span<const double> margins);

}  // namespace s2c2::apps
