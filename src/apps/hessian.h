// Polynomial-coded Hessian computation (paper §6.3/§7.2.3):
// H = Aᵀ · diag(x) · A, e.g. the Hessian of logistic loss where
// x_i = σ(a_i·w)(1-σ(a_i·w)).
#pragma once

#include "src/core/poly_engine.h"
#include "src/linalg/matrix.h"

namespace s2c2::apps {

struct HessianConfig {
  std::size_t a_blocks = 3;  // paper partitions A into 3 sub-matrices
  /// kPoly (S2C2 allocation) or kPolyConventional.
  core::StrategyKind strategy = core::StrategyKind::kPoly;
  std::size_t chunks_per_partition = 24;
  bool oracle_speeds = false;
};

struct HessianResult {
  linalg::Matrix hessian;
  double latency = 0.0;
  bool timeout_fired = false;
};

/// One coded Hessian evaluation over the simulated cluster.
[[nodiscard]] HessianResult coded_hessian(const linalg::Matrix& a,
                                          const linalg::Vector& x,
                                          const core::ClusterSpec& spec,
                                          const HessianConfig& config);

}  // namespace s2c2::apps
