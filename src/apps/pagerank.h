// Distributed PageRank via coded power iteration (paper §6.3: "graph
// ranking algorithms ... employ repeated matrix-vector multiplication").
//
// The link matrix M (column-stochastic on non-dangling columns) is encoded
// once; every power-iteration step computes M·r through the coded cluster
// and applies damping + the dangling-mass correction at the master.
#pragma once

#include <vector>

#include "src/core/engine.h"
#include "src/linalg/sparse.h"

namespace s2c2::apps {

struct PageRankConfig {
  std::size_t max_iterations = 50;
  double damping = 0.85;
  double tolerance = 1e-9;  // L1 change; 0 disables early exit
  std::size_t k = 0;        // MDS parameter; 0 = max(1, n - 2)
};

struct PageRankResult {
  linalg::Vector ranks;
  std::size_t iterations = 0;
  double total_latency = 0.0;
  std::size_t timeout_rounds = 0;
};

/// `adj` is the directed adjacency (row = out-links of that node).
[[nodiscard]] PageRankResult coded_pagerank(const linalg::CsrMatrix& adj,
                                            const core::ClusterSpec& spec,
                                            const core::EngineConfig& config,
                                            const PageRankConfig& pr);

/// Uncoded reference implementation for correctness tests.
[[nodiscard]] linalg::Vector pagerank_direct(const linalg::CsrMatrix& adj,
                                             double damping,
                                             std::size_t iterations);

/// Per-node out-degrees of the adjacency; zero marks a dangling node.
[[nodiscard]] std::vector<double> out_degrees(const linalg::CsrMatrix& adj);

/// One damping + teleport + dangling-mass update from t = M·r (M the link
/// matrix, r the previous ranks). Shared with the job driver so every
/// strategy applies the identical master-side step.
void pagerank_update(std::span<const double> t, std::span<const double> r,
                     std::span<const double> outdeg, double damping,
                     std::span<double> out);

}  // namespace s2c2::apps
