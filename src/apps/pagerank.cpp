#include "src/apps/pagerank.h"

#include <cmath>

#include "src/util/require.h"
#include "src/workload/graphs.h"

namespace s2c2::apps {

std::vector<double> out_degrees(const linalg::CsrMatrix& adj) {
  std::vector<double> deg(adj.rows(), 0.0);
  const auto rp = adj.row_ptr();
  const auto vals = adj.values();
  for (std::size_t r = 0; r < adj.rows(); ++r) {
    for (std::size_t p = rp[r]; p < rp[r + 1]; ++p) deg[r] += vals[p];
  }
  return deg;
}

void pagerank_update(std::span<const double> t, std::span<const double> r,
                     std::span<const double> outdeg, double damping,
                     std::span<double> out) {
  const auto nd = static_cast<double>(r.size());
  double dangling = 0.0;
  for (std::size_t i = 0; i < r.size(); ++i) {
    if (outdeg[i] == 0.0) dangling += r[i];
  }
  const double base = (1.0 - damping) / nd + damping * dangling / nd;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = damping * t[i] + base;
  }
}

PageRankResult coded_pagerank(const linalg::CsrMatrix& adj,
                              const core::ClusterSpec& spec,
                              const core::EngineConfig& config,
                              const PageRankConfig& pr) {
  const std::size_t nodes = adj.rows();
  S2C2_REQUIRE(adj.cols() == nodes, "adjacency must be square");
  const std::size_t n = spec.num_workers();
  const std::size_t k =
      pr.k != 0 ? pr.k : std::max<std::size_t>(1, n >= 3 ? n - 2 : n);
  S2C2_REQUIRE(k <= n, "k must be <= n");

  const linalg::CsrMatrix m = workload::link_matrix(adj);
  const auto outdeg = out_degrees(adj);
  core::CodedComputeEngine engine(
      core::CodedMatVecJob(m, n, k, config.chunks_per_partition), spec,
      config);

  PageRankResult result;
  result.ranks.assign(nodes, 1.0 / static_cast<double>(nodes));
  linalg::Vector next(nodes);
  for (std::size_t it = 0; it < pr.max_iterations; ++it) {
    const core::RoundResult round = engine.run_round(result.ranks);
    S2C2_CHECK(round.y.has_value(), "functional round must decode");
    pagerank_update(*round.y, result.ranks, outdeg, pr.damping, next);
    result.total_latency += round.stats.latency();
    result.timeout_rounds += round.stats.timeout_fired ? 1 : 0;
    ++result.iterations;

    double delta = 0.0;
    for (std::size_t i = 0; i < nodes; ++i) {
      delta += std::abs(next[i] - result.ranks[i]);
    }
    result.ranks = next;
    if (pr.tolerance > 0.0 && delta < pr.tolerance) break;
  }
  return result;
}

linalg::Vector pagerank_direct(const linalg::CsrMatrix& adj, double damping,
                               std::size_t iterations) {
  const std::size_t nodes = adj.rows();
  const linalg::CsrMatrix m = workload::link_matrix(adj);
  const auto outdeg = out_degrees(adj);
  linalg::Vector r(nodes, 1.0 / static_cast<double>(nodes));
  linalg::Vector t(nodes), next(nodes);
  for (std::size_t it = 0; it < iterations; ++it) {
    m.matvec_into(r, t);
    pagerank_update(t, r, outdeg, damping, next);
    r = next;
  }
  return r;
}

}  // namespace s2c2::apps
