// Distributed logistic regression via coded gradient descent (paper §6.3).
//
// Gradient of the logistic loss needs two products per iteration:
//     u = X·w            (forward margins)
//     g = Xᵀ·(σ(u)−y̅)/m  (gradient)
// Both operators are encoded once (X row-split, Xᵀ row-split) and each
// iteration runs one coded round on each engine — so the whole gradient is
// straggler-protected, not just the forward half.
#pragma once

#include <memory>
#include <vector>

#include "src/core/engine.h"
#include "src/workload/datasets.h"

namespace s2c2::apps {

struct GdConfig {
  std::size_t iterations = 30;
  double learning_rate = 0.5;
  double l2_reg = 1e-4;
  std::size_t k = 0;  // MDS parameter; 0 = max(1, n - 2)
};

struct TrainResult {
  linalg::Vector weights;
  std::vector<double> losses;   // objective per iteration
  double total_latency = 0.0;   // simulated seconds across both products
  std::size_t timeout_rounds = 0;
};

/// Trains on `data` over the simulated cluster. `spec` is reused for both
/// the X and Xᵀ engines (same worker fleet serves both halves of every
/// iteration).
[[nodiscard]] TrainResult train_logistic_regression(
    const workload::Dataset& data, const core::ClusterSpec& spec,
    const core::EngineConfig& config, const GdConfig& gd);

/// Logistic objective (mean log-loss + L2) — exposed for tests.
[[nodiscard]] double logistic_loss(const workload::Dataset& data,
                                   const linalg::Vector& w, double l2_reg);

/// Reference uncoded gradient step (tests compare coded vs direct).
[[nodiscard]] linalg::Vector logistic_gradient(const workload::Dataset& data,
                                               const linalg::Vector& w,
                                               double l2_reg);

/// Derivative of the mean logistic loss w.r.t. the margins u = X·w:
/// r_i = -y_i·σ(-y_i·u_i)/m. The backward coded product computes Xᵀ·r —
/// shared with the job driver so every strategy runs the same update.
[[nodiscard]] linalg::Vector logistic_residual(const workload::Dataset& data,
                                               std::span<const double> margins);

}  // namespace s2c2::apps
