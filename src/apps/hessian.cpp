#include "src/apps/hessian.h"

#include "src/util/require.h"

namespace s2c2::apps {

HessianResult coded_hessian(const linalg::Matrix& a, const linalg::Vector& x,
                            const core::ClusterSpec& spec,
                            const HessianConfig& config) {
  S2C2_REQUIRE(x.size() == a.rows(), "diag(x) size mismatch");
  core::PolyEngineConfig pc;
  pc.strategy = config.strategy;
  pc.chunks_per_partition = config.chunks_per_partition;
  pc.oracle_speeds = config.oracle_speeds;
  core::PolyCodedEngine engine(a, a.rows(), a.cols(), config.a_blocks, spec,
                               pc);
  const core::RoundResult round = engine.run_round(x);
  S2C2_CHECK(round.hessian.has_value(), "functional round must decode");
  return HessianResult{*round.hessian, round.stats.latency(),
                       round.stats.timeout_fired};
}

}  // namespace s2c2::apps
