#include "src/apps/logistic_regression.h"

#include <cmath>

#include "src/util/require.h"

namespace s2c2::apps {

linalg::Vector logistic_residual(const workload::Dataset& data,
                                 std::span<const double> margins) {
  const std::size_t m = data.x.rows();
  linalg::Vector r(m);
  for (std::size_t i = 0; i < m; ++i) {
    r[i] = -data.y[i] / (1.0 + std::exp(data.y[i] * margins[i])) /
           static_cast<double>(m);
  }
  return r;
}

double logistic_loss(const workload::Dataset& data, const linalg::Vector& w,
                     double l2_reg) {
  const auto margins = data.x.matvec(w);
  double loss = 0.0;
  for (std::size_t i = 0; i < margins.size(); ++i) {
    // log(1 + exp(-y u)) computed stably.
    const double z = -data.y[i] * margins[i];
    loss += z > 30.0 ? z : std::log1p(std::exp(z));
  }
  loss /= static_cast<double>(margins.size());
  loss += 0.5 * l2_reg * linalg::dot(w, w);
  return loss;
}

linalg::Vector logistic_gradient(const workload::Dataset& data,
                                 const linalg::Vector& w, double l2_reg) {
  const auto margins = data.x.matvec(w);
  const auto resid = logistic_residual(data, margins);
  auto grad = data.x.matvec_transposed(resid);
  linalg::axpy(l2_reg, w, grad);
  return grad;
}

TrainResult train_logistic_regression(const workload::Dataset& data,
                                      const core::ClusterSpec& spec,
                                      const core::EngineConfig& config,
                                      const GdConfig& gd) {
  S2C2_REQUIRE(data.x.rows() == data.y.size(), "labels/rows mismatch");
  const std::size_t n = spec.num_workers();
  const std::size_t k =
      gd.k != 0 ? gd.k : std::max<std::size_t>(1, n >= 3 ? n - 2 : n);
  S2C2_REQUIRE(k <= n, "k must be <= n");
  const std::size_t features = data.x.cols();
  const std::size_t c = config.chunks_per_partition;

  // Encode both operators once; iterations move no data.
  core::CodedComputeEngine forward(core::CodedMatVecJob(data.x, n, k, c),
                                   spec, config);
  core::CodedComputeEngine backward(
      core::CodedMatVecJob(data.x.transposed(), n, k, c), spec, config);

  TrainResult result;
  result.weights.assign(features, 0.0);
  for (std::size_t it = 0; it < gd.iterations; ++it) {
    const core::RoundResult fwd = forward.run_round(result.weights);
    S2C2_CHECK(fwd.y.has_value(), "functional round must decode");
    const auto resid = logistic_residual(data, *fwd.y);
    const core::RoundResult bwd = backward.run_round(resid);
    S2C2_CHECK(bwd.y.has_value(), "functional round must decode");

    linalg::Vector grad = *bwd.y;
    linalg::axpy(gd.l2_reg, result.weights, grad);
    linalg::axpy(-gd.learning_rate, grad, result.weights);

    result.total_latency += fwd.stats.latency() + bwd.stats.latency();
    result.timeout_rounds += (fwd.stats.timeout_fired ? 1 : 0) +
                             (bwd.stats.timeout_fired ? 1 : 0);
    result.losses.push_back(logistic_loss(data, result.weights, gd.l2_reg));
  }
  return result;
}

}  // namespace s2c2::apps
