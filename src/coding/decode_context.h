// DecodeContext — the cached, structure-exploiting decode subsystem.
//
// Every coded round the master must solve one k x k recovery system per
// distinct per-chunk responder set: G_sub · Y = B for the MDS code, a pure
// Vandermonde system in the responders' evaluation points for the
// polynomial code. The seed implementation paid a dense O(k³) LU per set
// per round, which is exactly the decode wall that capped the harnesses at
// n ≈ 50 workers. DecodeContext removes it two ways:
//
//  1. **Structure.** MDS generators here are systematic (rows < k are the
//     identity, coding/generator_matrix.h), so a responder set with s
//     systematic rows pins s of the k unknown blocks outright and the
//     recovery system Schur-reduces to the p x p parity block, p = k - s
//     (p <= n - k always — two for the default n-2 rule, regardless of
//     fleet size). Factorization is O(p³), solves O((ps + p²) · m) for m
//     RHS columns. Pure-Vandermonde systems (poly codes) skip
//     factorization entirely: the Björck–Pereyra solver
//     (linalg/vandermonde.h) runs O(k²) per RHS straight from the nodes.
//  2. **Caching.** Wrap-around allocations produce only O(n) distinct
//     responder sets per round and iterative jobs repeat them heavily
//     across rounds, so factorizations are cached for the context's
//     lifetime. An engine owns one context per job and reuses it every
//     round: repeated sets decode at amortized solve-only cost.
//
// Cache-key and invalidation contract:
//  * The key is the responder set as a **sorted worker bitmap** (one bit
//    per worker, packed into 64-bit words) — identical membership gives an
//    identical key regardless of arrival order.
//  * An entry is a pure function of (key, generator-or-nodes), both
//    immutable for the context's lifetime, so entries never go stale and
//    there is no implicit invalidation. The context borrows the
//    GeneratorMatrix; the caller keeps it alive (engines own both via
//    their job). `clear()` is the only invalidation: call it if you must
//    re-bind a context, otherwise never.
//  * Entries are independent of RHS width/geometry; one entry serves every
//    chunk batch and every round that shows the same responder set.
//  * Not thread-safe: one context per engine, engines per sweep cell, and
//    cells never share state (the matrix runner's determinism contract).
//
// Cost model (charged flops mirror the numeric work; table and measured
// speedups in docs/PERFORMANCE.md):
//   dense LU (seed)        factor 2/3·k³        solve 2k²·m
//   systematic Schur       factor 2/3·p³        solve (2ps + 2p² + k)·m
//   Björck–Pereyra         factor 0             solve (2k² + k)·m
//   LT peeling             factor 2E + 2/3·s³   solve (2E + 2s² + k)·v
// (LT backend: E = edges of the collected symbol graph, s = stalled-tail
// size, v = RHS columns per *source*. The executor charges `columns` in
// per-chunk units — chunks x values-per-chunk — so the LT solve cost
// normalizes by chunks_per_worker to recover v; see solve_cost.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "src/coding/generator_matrix.h"
#include "src/linalg/lu.h"
#include "src/linalg/matrix.h"
#include "src/linalg/vandermonde.h"

namespace s2c2::coding {

class LtCode;  // rateless backend (lt_code.h); borrowed like the generator

/// What one charge() cost the simulated master.
struct DecodeCharge {
  double flops = 0.0;
  bool cache_hit = false;
};

/// Cumulative cache/cost telemetry. Every lookup — charge() or
/// solve_inplace() — counts one hit or miss; `entries` is the number of
/// distinct responder sets resident.
struct DecodeContextStats {
  std::size_t entries = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  double factor_flops = 0.0;  // cumulative factorization cost charged
  double solve_flops = 0.0;   // cumulative solve cost charged
};

class DecodeContext {
  struct Entry;  // one cached responder-set factorization (private)

 public:
  /// Systematic-MDS backend: recovery systems are k x k row subsets of
  /// `generator`, solved by Schur reduction onto the parity responders.
  /// Borrows the generator — it must outlive the context.
  explicit DecodeContext(const GeneratorMatrix& generator);

  /// Pure-Vandermonde backend (polynomial codes): worker w's row is
  /// [1, x_w, x_w², ...] at evaluation point x_w = eval_points[w]; any
  /// k-subset solves by Björck–Pereyra in O(k²) per RHS.
  DecodeContext(std::vector<double> eval_points, std::size_t k);

  /// Rateless-LT backend: k() is the source-block count and a "responder
  /// subset" is ANY sorted set of workers whose accumulated symbols
  /// decode (threshold + peelability — the engine's collection rule
  /// guarantees it before charging). Entries cache the structural peel
  /// plan (LtCode::plan_for) instead of a factorization; the numeric
  /// path is lt_decode, not solve_inplace. Borrows the code.
  explicit DecodeContext(const LtCode& code);

  // Move-only (cache entries are an incomplete type here).
  DecodeContext(DecodeContext&&) noexcept;
  DecodeContext& operator=(DecodeContext&&) noexcept;
  ~DecodeContext();

  /// Workers in the code (bitmap width).
  [[nodiscard]] std::size_t n() const noexcept;
  /// Recovery-system dimension (k for MDS, a² for poly codes).
  [[nodiscard]] std::size_t k() const noexcept { return k_; }

  /// Cost-model entry point: registers `subset` (sorted, size k, distinct
  /// workers) and returns the flops the simulated master spends decoding
  /// `columns` RHS columns against it. First sight of a subset pays the
  /// factorization; repeats pay solve cost only — identical cache
  /// semantics to solve_inplace, so cost-only and functional runs charge
  /// the same latencies.
  DecodeCharge charge(std::span<const std::size_t> subset,
                      std::size_t columns);

  /// Numeric entry point: solves  System(subset) · Y = B  in place. `rhs`
  /// is row-major, row j holding the `width` values of responder subset[j];
  /// on return row i holds unknown block i. Factorizations are cached;
  /// cached and fresh solves are bit-identical (same factors either way).
  /// Throws std::domain_error if the subset's system is singular.
  void solve_inplace(std::span<const std::size_t> subset,
                     std::span<double> rhs_rowmajor, std::size_t width);

  // ---- split solve for the parallel decode path -------------------------
  // solve_inplace = prepare (cache lookup/fill + stats, NOT thread-safe,
  // call serially in solve order so the hit/miss telemetry matches the
  // serial run exactly) followed by solve_prepared (pure: reads only the
  // immutable cached entry plus caller-owned scratch, so any number of
  // threads may run it concurrently — one SolveScratch per thread). The
  // two halves produce bitwise the same RHS transformation as the fused
  // call.

  /// Opaque handle to a cached responder-set factorization; valid until
  /// clear(). Obtained from prepare().
  class Prepared {
   public:
    Prepared() = default;

   private:
    friend class DecodeContext;
    explicit Prepared(const Entry* entry) : entry_(entry) {}
    const Entry* entry_ = nullptr;
  };

  /// Per-thread scratch for solve_prepared (capacities retained across
  /// solves).
  struct SolveScratch {
    std::vector<double> reduced;  // p x width Schur-reduced RHS
    std::vector<double> perm;     // LU row-permutation gather
  };

  /// True when this backend supports the split prepare/solve_prepared
  /// path (the systematic-MDS generator backend; the Vandermonde and LT
  /// backends solve through stateful helpers and stay serial).
  [[nodiscard]] bool supports_parallel_solve() const noexcept {
    return generator_ != nullptr;
  }

  /// Cache lookup/fill for `subset` (identical validation, caching, and
  /// stats accounting to solve_inplace's first half). Requires
  /// supports_parallel_solve().
  [[nodiscard]] Prepared prepare(std::span<const std::size_t> subset);

  /// The pure second half: solves the prepared system over `rhs` using
  /// only caller-owned scratch. Safe to call concurrently with other
  /// solve_prepared calls (including against the same Prepared handle).
  void solve_prepared(const Prepared& prepared,
                      std::span<double> rhs_rowmajor, std::size_t width,
                      SolveScratch& scratch) const;

  /// LT-backend numeric entry point: decodes the accumulated symbols of
  /// `subset` (sorted responders; `symbols` row-major in responder-major,
  /// chunk-minor order with `values_per_symbol` values per symbol) into
  /// the k() source blocks (`out`, k() x values_per_symbol row-major).
  /// Shares the cached peel plan with charge(). LT backend only.
  void lt_decode(std::span<const std::size_t> subset,
                 std::span<const double> symbols,
                 std::size_t values_per_symbol, std::span<double> out);

  /// Redundancy check (Byzantine detection — soundness bounds in
  /// docs/DESIGN.md §7): decode the chunk from the *first k* responders of
  /// `subset` (sorted, distinct, size r with k <= r <= n), then evaluate
  /// the code rows of the remaining r - k responders and compare against
  /// the values they actually sent. Returns the max abs residual over the
  /// redundant rows, relative to max(1, largest |value| supplied) — 0 when
  /// r == k (no redundancy, nothing to check). A clean responder set
  /// yields residuals at solver-roundoff level (< 1e-9 for the harness
  /// sizes); ANY corruption among the r rows perturbs it almost surely.
  /// `rhs` is r x width row-major in subset order and is not modified.
  /// Shares (and populates) the factorization cache with solve_inplace.
  [[nodiscard]] double redundant_residual(std::span<const std::size_t> subset,
                                          std::span<const double> rhs,
                                          std::size_t width);

  [[nodiscard]] const DecodeContextStats& stats() const noexcept {
    return stats_;
  }

  /// Drops every cached factorization and zeroes the stats. The only
  /// invalidation operation; see the contract in the header comment.
  void clear();

 private:
  /// Builds `subset`'s bitmap key into key_scratch_ (reused across calls:
  /// lookups on warm rounds are allocation-free; only a cache miss copies
  /// the key into the map).
  void make_key(std::span<const std::size_t> subset);
  Entry& acquire(std::span<const std::size_t> subset);
  /// Generator-backend solve body shared by solve_inplace (member
  /// scratch) and solve_prepared (caller scratch); pure over the entry.
  void solve_entry(const Entry& e, std::span<double> rhs_rowmajor,
                   std::size_t width, SolveScratch& scratch) const;
  [[nodiscard]] double solve_cost(const Entry& e, std::size_t columns) const;
  [[nodiscard]] double factor_cost(const Entry& e) const;

  const GeneratorMatrix* generator_ = nullptr;  // MDS backend
  std::vector<double> eval_points_;             // Vandermonde backend
  const LtCode* lt_code_ = nullptr;             // rateless backend
  std::size_t k_ = 0;
  std::map<std::vector<std::uint64_t>, std::unique_ptr<Entry>> cache_;
  DecodeContextStats stats_;
  // Solve scratch, reused across calls so the per-round hot path does not
  // allocate (the serial decode path runs once per chunk group per round).
  SolveScratch solve_scratch_;
  std::vector<double> scratch_verify_;  // redundant_residual's k x width copy
  std::vector<std::uint64_t> key_scratch_;  // make_key's bitmap buffer
};

}  // namespace s2c2::coding
