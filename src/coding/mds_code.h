// (n,k)-MDS encoding of a matrix operator for coded matrix-vector jobs.
//
// The master splits the D x m data matrix A into k row blocks A_0..A_{k-1}
// (padding D up to a multiple of k with zero rows), then hands worker j the
// encoded partition  Ã_j = Σ_i G(j,i) · A_i. A worker computing rows
// [r0,r1) of Ã_j · x produces exactly the values the chunked decoder needs
// to reconstruct those rows of every A_i · x once k workers have covered
// them (coding/chunked_decoder.h).
//
// Sparse operators (graph adjacency / Laplacian) keep their systematic
// partitions in CSR form; parity partitions are sums of row blocks and
// densify, so they are materialized densely. EncodedPartition hides the
// difference behind one matvec interface.
//
// Complexity: encode() is a one-time O(n·D·m/k) cost, excluded from
// per-iteration latencies (paper's setup phase). Decode goes through
// coding/chunked_decoder.h + coding/decode_context.h at amortized O(k²)
// per responder set — cost model in docs/PERFORMANCE.md.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "src/coding/generator_matrix.h"
#include "src/linalg/matrix.h"
#include "src/linalg/sparse.h"

namespace s2c2::coding {

/// One worker's stored partition: dense, or CSR when the source operator is
/// sparse and the partition is systematic.
class EncodedPartition {
 public:
  explicit EncodedPartition(linalg::Matrix dense);
  explicit EncodedPartition(linalg::CsrMatrix sparse);

  [[nodiscard]] std::size_t rows() const noexcept;
  [[nodiscard]] std::size_t cols() const noexcept;
  [[nodiscard]] bool is_sparse() const noexcept { return sparse_.has_value(); }

  /// Bytes a worker must store for this partition (Fig 3 storage study).
  [[nodiscard]] std::size_t storage_bytes() const noexcept;

  /// y[0..r1-r0) = (partition rows [r0,r1)) * x — the worker-side kernel.
  void matvec_rows(std::size_t r0, std::size_t r1, std::span<const double> x,
                   std::span<double> y) const;

  /// Block worker kernel: rows [r0,r1) times a row-major cols() x width
  /// panel; y is (r1-r0) x width row-major. Column j is bitwise identical
  /// to matvec_rows on column j of the panel (same per-row accumulation
  /// order), which the b=1 block round path relies on.
  void matmat_rows(std::size_t r0, std::size_t r1, std::span<const double> x,
                   std::size_t width, std::span<double> y) const;

  /// Convenience full-partition product.
  [[nodiscard]] linalg::Vector matvec(std::span<const double> x) const;

 private:
  std::optional<linalg::Matrix> dense_;
  std::optional<linalg::CsrMatrix> sparse_;
};

class MdsCode {
 public:
  MdsCode(std::size_t n, std::size_t k,
          ParityKind kind = ParityKind::kGaussian,
          std::uint64_t seed = 0x5c2c2ull);

  [[nodiscard]] std::size_t n() const noexcept { return generator_.n(); }
  [[nodiscard]] std::size_t k() const noexcept { return generator_.k(); }
  [[nodiscard]] const GeneratorMatrix& generator() const noexcept {
    return generator_;
  }

  /// Rows of each partition for a D-row operator (= ceil(D/k)).
  [[nodiscard]] std::size_t partition_rows(std::size_t data_rows) const;

  /// Encodes a dense operator into n partitions of partition_rows() rows.
  [[nodiscard]] std::vector<EncodedPartition> encode(
      const linalg::Matrix& a) const;

  /// Encodes a sparse operator; systematic partitions stay CSR.
  [[nodiscard]] std::vector<EncodedPartition> encode(
      const linalg::CsrMatrix& a) const;

 private:
  GeneratorMatrix generator_;
};

}  // namespace s2c2::coding
