// Generator matrices for (n,k)-MDS codes over ℝ.
//
// Layout is systematic: rows 0..k-1 are the identity (workers 0..k-1 store
// raw data blocks), rows k..n-1 are parity combinations. Two parity
// families:
//
//  * kVandermonde — parity row j is [1, α_j, α_j², ...] with α_j = j+1.
//    This matches the paper's worked example exactly ((4,2): parities
//    A1+A2 and A1+2A2) and, because a totally positive Vandermonde has
//    every minor nonzero, any k of the n rows are invertible. Numerically
//    unusable beyond small k (entries grow like α^(k-1)).
//
//  * kGaussian — parity rows drawn i.i.d. N(0,1) from a seeded RNG. Any
//    k x k submatrix is almost surely invertible and the conditioning
//    stays workable through the thousand-worker fleet (k = 998). This is
//    the default and a documented substitution (docs/DESIGN.md §2).
//
// Both families are systematic, which is what the decode subsystem's
// Schur reduction exploits: a responder set's systematic rows pin their
// blocks outright and only the parity block (p <= n - k rows) needs a
// factorization (coding/decode_context.h, docs/PERFORMANCE.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "src/linalg/matrix.h"

namespace s2c2::coding {

enum class ParityKind { kGaussian, kVandermonde };

class GeneratorMatrix {
 public:
  GeneratorMatrix(std::size_t n, std::size_t k,
                  ParityKind kind = ParityKind::kGaussian,
                  std::uint64_t seed = 0x5c2c2ull);

  [[nodiscard]] std::size_t n() const noexcept { return matrix_.rows(); }
  [[nodiscard]] std::size_t k() const noexcept { return matrix_.cols(); }
  [[nodiscard]] ParityKind parity_kind() const noexcept { return kind_; }

  [[nodiscard]] const linalg::Matrix& matrix() const noexcept {
    return matrix_;
  }

  /// Coefficient of data block `block` in encoded partition `worker`.
  [[nodiscard]] double coeff(std::size_t worker, std::size_t block) const {
    return matrix_(worker, block);
  }

  /// True for workers whose partition is a raw data block (rows < k).
  [[nodiscard]] bool is_systematic_row(std::size_t worker) const noexcept {
    return worker < k();
  }

  /// k x k submatrix formed by the given worker rows — the dense decode
  /// system matrix. O(k²) to materialize; factorizing it densely is the
  /// seed's O(k³) decode path, kept as the reference baseline
  /// (bench_decode_scale) — production decode goes through
  /// coding/decode_context.h instead.
  [[nodiscard]] linalg::Matrix submatrix(
      std::span<const std::size_t> workers) const;

 private:
  linalg::Matrix matrix_;  // n x k
  ParityKind kind_;
};

}  // namespace s2c2::coding
