#include "src/coding/chunked_decoder.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/require.h"
#include "src/util/thread_pool.h"

namespace s2c2::coding {

namespace {
constexpr std::size_t npos = static_cast<std::size_t>(-1);
}  // namespace

ChunkedDecoder::ChunkedDecoder(const GeneratorMatrix& generator,
                               std::size_t rows_per_partition,
                               std::size_t num_chunks, std::size_t width,
                               DecodeContext* context)
    : generator_(generator), num_chunks_(num_chunks), width_(width) {
  S2C2_REQUIRE(num_chunks > 0, "decoder needs at least one chunk");
  S2C2_REQUIRE(rows_per_partition % num_chunks == 0,
               "rows_per_partition must be divisible by num_chunks");
  S2C2_REQUIRE(width > 0, "width must be positive");
  rows_per_chunk_ = rows_per_partition / num_chunks;
  results_.resize(num_chunks_);
  staged_.assign(generator_.n() * num_chunks_, 0);
  if (context) {
    context_ = context;
  } else {
    owned_context_ = std::make_unique<DecodeContext>(generator_);
    context_ = owned_context_.get();
  }
}

std::span<double> ChunkedDecoder::stage_chunk(std::size_t worker,
                                              std::size_t chunk) {
  S2C2_REQUIRE(worker < generator_.n(), "worker index out of range");
  S2C2_REQUIRE(chunk < num_chunks_, "chunk index out of range");
  std::uint8_t& flag = staged_[chunk * generator_.n() + worker];
  if (flag) return {};  // idempotent on duplicates
  flag = 1;
  const std::span<double> values = arena_.alloc_span<double>(chunk_values());
  results_[chunk].emplace_back(worker, values.data());
  return values;
}

void ChunkedDecoder::add_chunk_result(std::size_t worker, std::size_t chunk,
                                      std::span<const double> values) {
  S2C2_REQUIRE(values.size() == chunk_values(),
               "chunk result has wrong size");
  const std::span<double> dst = stage_chunk(worker, chunk);
  if (!dst.empty()) std::copy(values.begin(), values.end(), dst.begin());
}

bool ChunkedDecoder::decodable() const {
  const std::size_t k = generator_.k();
  return std::all_of(results_.begin(), results_.end(),
                     [k](const auto& slot) { return slot.size() >= k; });
}

std::vector<std::size_t> ChunkedDecoder::deficient_chunks() const {
  const std::size_t k = generator_.k();
  std::vector<std::size_t> out;
  for (std::size_t c = 0; c < num_chunks_; ++c) {
    if (results_[c].size() < k) out.push_back(c);
  }
  return out;
}

std::vector<std::size_t> ChunkedDecoder::responders(std::size_t chunk) const {
  S2C2_REQUIRE(chunk < num_chunks_, "chunk index out of range");
  std::vector<std::size_t> out;
  out.reserve(results_[chunk].size());
  for (const auto& [w, _] : results_[chunk]) out.push_back(w);
  return out;
}

linalg::Matrix ChunkedDecoder::decode() {
  linalg::Matrix out;
  decode_into(out);
  return out;
}

void ChunkedDecoder::prepare_decode(linalg::Matrix& out) {
  const std::size_t k = generator_.k();
  S2C2_CHECK(decodable(), "decode() called before coverage reached k");
  out.resize(k * rows_per_chunk_ * num_chunks_, width_);

  // Per-chunk decode subsets: the first k responders (arrival order),
  // sorted so identical membership yields an identical cache key.
  keys_.resize(num_chunks_);
  for (std::size_t chunk = 0; chunk < num_chunks_; ++chunk) {
    keys_[chunk].resize(k);
    for (std::size_t j = 0; j < k; ++j) {
      keys_[chunk][j] = results_[chunk][j].first;
    }
    std::sort(keys_[chunk].begin(), keys_[chunk].end());
  }
}

void ChunkedDecoder::decode_into(linalg::Matrix& out) {
  const std::size_t k = generator_.k();
  prepare_decode(out);
  const std::size_t chunk_cols = rows_per_chunk_ * width_;

  // Batched multi-RHS decode: consecutive chunks sharing a responder set
  // are one solve against the cached factorization — RHS row j carries
  // worker key[j]'s values for every chunk of the run, side by side. The
  // RHS is arena-backed: same lifetime as the staged chunk values, so a
  // steady-state round stays off the heap.
  for (std::size_t begin = 0; begin < num_chunks_;) {
    std::size_t end = begin + 1;
    while (end < num_chunks_ && keys_[end] == keys_[begin]) ++end;
    const std::vector<std::size_t>& key = keys_[begin];
    const std::size_t group = end - begin;

    const std::size_t rhs_cols = group * chunk_cols;
    const std::span<double> rhs = arena_.alloc_span<double>(k * rhs_cols);
    for (std::size_t chunk = begin; chunk < end; ++chunk) {
      const auto& slot = results_[chunk];
      // Index the chunk's first-k slot positions by worker id so the
      // gather below is O(k), not an O(k) search per responder (the key is
      // exactly those k workers, sorted).
      slot_pos_.assign(generator_.n(), npos);
      for (std::size_t j = 0; j < k; ++j) slot_pos_[slot[j].first] = j;
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t pos = slot_pos_[key[j]];
        S2C2_CHECK(pos != npos, "responder disappeared");
        std::copy(slot[pos].second, slot[pos].second + chunk_cols,
                  rhs.begin() +
                      static_cast<std::ptrdiff_t>(j * rhs_cols +
                                                  (chunk - begin) *
                                                      chunk_cols));
      }
    }
    context_->solve_inplace(key, rhs, rhs_cols);

    // rhs row i now holds (A_i x) over the run's rows; scatter to output.
    for (std::size_t chunk = begin; chunk < end; ++chunk) {
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t out_row0 =
            i * rows_per_chunk_ * num_chunks_ + chunk * rows_per_chunk_;
        for (std::size_t r = 0; r < rows_per_chunk_; ++r) {
          for (std::size_t c = 0; c < width_; ++c) {
            out(out_row0 + r, c) =
                rhs[i * rhs_cols + (chunk - begin) * chunk_cols + r * width_ +
                    c];
          }
        }
      }
    }
    begin = end;
  }
}

void ChunkedDecoder::decode_group(const DecodeGroup& group,
                                  std::size_t chunk_cols,
                                  linalg::Matrix& out) const {
  const std::size_t k = generator_.k();
  const std::size_t rhs_cols = (group.end - group.begin) * chunk_cols;
  const std::vector<std::size_t>& key = keys_[group.begin];

  // Task-local gather index and solve scratch: the member scratch
  // (slot_pos_, the context's serial scratch) is not shareable across
  // concurrent groups. These allocate, which is fine — the parallel
  // decode is an explicit inner_jobs > 1 opt-in; the inner_jobs = 1
  // contract runs the serial decode_into and stays heap-free.
  std::vector<std::size_t> slot_pos(generator_.n(), npos);
  for (std::size_t chunk = group.begin; chunk < group.end; ++chunk) {
    const auto& slot = results_[chunk];
    std::fill(slot_pos.begin(), slot_pos.end(), npos);
    for (std::size_t j = 0; j < k; ++j) slot_pos[slot[j].first] = j;
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t pos = slot_pos[key[j]];
      S2C2_CHECK(pos != npos, "responder disappeared");
      std::copy(slot[pos].second, slot[pos].second + chunk_cols,
                group.rhs.begin() +
                    static_cast<std::ptrdiff_t>(j * rhs_cols +
                                                (chunk - group.begin) *
                                                    chunk_cols));
    }
  }
  DecodeContext::SolveScratch scratch;
  context_->solve_prepared(group.prepared, group.rhs, rhs_cols, scratch);
  for (std::size_t chunk = group.begin; chunk < group.end; ++chunk) {
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t out_row0 =
          i * rows_per_chunk_ * num_chunks_ + chunk * rows_per_chunk_;
      for (std::size_t r = 0; r < rows_per_chunk_; ++r) {
        for (std::size_t c = 0; c < width_; ++c) {
          out(out_row0 + r, c) =
              group.rhs[i * rhs_cols + (chunk - group.begin) * chunk_cols +
                        r * width_ + c];
        }
      }
    }
  }
}

void ChunkedDecoder::decode_into(linalg::Matrix& out, util::ThreadPool* pool) {
  if (pool == nullptr || !context_->supports_parallel_solve()) {
    decode_into(out);
    return;
  }
  const std::size_t k = generator_.k();
  prepare_decode(out);
  const std::size_t chunk_cols = rows_per_chunk_ * width_;

  // Serial phase: split the chunks into maximal same-responder-set runs,
  // allocate each run's batched RHS from the arena (not thread-safe), and
  // prepare the cached factorizations IN GROUP ORDER — the hit/miss
  // sequence this produces is exactly the serial decode's, so the
  // fingerprinted decode-cache telemetry is unchanged.
  groups_.clear();
  for (std::size_t begin = 0; begin < num_chunks_;) {
    std::size_t end = begin + 1;
    while (end < num_chunks_ && keys_[end] == keys_[begin]) ++end;
    const std::size_t rhs_cols = (end - begin) * chunk_cols;
    groups_.push_back({begin, end, arena_.alloc_span<double>(k * rhs_cols),
                       context_->prepare(keys_[begin])});
    begin = end;
  }
  if (groups_.size() == 1) {
    // One group: no cross-group parallelism to exploit; run the serial
    // gather/solve/scatter on the already-prepared entry.
    const DecodeGroup& g = groups_.front();
    decode_group(g, chunk_cols, out);
    return;
  }

  // Parallel phase: each task owns one group — its RHS span, its output
  // rows (chunk-disjoint across groups), and task-local solve scratch.
  // The shared cache entries are read-only here, so any interleaving
  // produces the serial bits.
  pool->parallel_for(groups_.size(), [&](std::size_t gi) {
    decode_group(groups_[gi], chunk_cols, out);
  });
}

ChunkVerification ChunkedDecoder::verify_chunks(double tolerance) {
  const std::size_t k = generator_.k();
  ChunkVerification out;

  // Scratch for (subset, rhs) assembly over a chunk's responder slot,
  // optionally skipping an exclusion set of slot positions. Residuals are
  // checked one RHS column at a time — each column is normalized against
  // its own magnitude, so a large column cannot mask corruption in a small
  // one — and the per-column maxima are combined. At width 1 the single
  // column is the whole panel, so the b=1 path is bit-for-bit unchanged.
  std::vector<std::size_t> order;   // slot positions sorted by worker id
  std::vector<std::size_t> subset;
  std::vector<double> rhs;
  const auto residual_excluding =
      [&](const std::vector<std::pair<std::size_t, double*>>& slot,
          const std::vector<std::size_t>& excluded_pos) {
        subset.clear();
        for (const std::size_t pos : order) {
          if (std::find(excluded_pos.begin(), excluded_pos.end(), pos) !=
              excluded_pos.end()) {
            continue;
          }
          subset.push_back(slot[pos].first);
        }
        double max_col_residual = 0.0;
        for (std::size_t col = 0; col < width_; ++col) {
          rhs.clear();
          for (const std::size_t pos : order) {
            if (std::find(excluded_pos.begin(), excluded_pos.end(), pos) !=
                excluded_pos.end()) {
              continue;
            }
            const double* values = slot[pos].second;
            for (std::size_t r = 0; r < rows_per_chunk_; ++r) {
              rhs.push_back(values[r * width_ + col]);
            }
          }
          max_col_residual = std::max(
              max_col_residual,
              context_->redundant_residual(subset, rhs, rows_per_chunk_));
        }
        return max_col_residual;
      };

  for (std::size_t chunk = 0; chunk < num_chunks_; ++chunk) {
    const auto& slot = results_[chunk];
    const std::size_t r = slot.size();
    if (r <= k) continue;  // no redundancy: nothing to verify
    order.resize(r);
    for (std::size_t i = 0; i < r; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&slot](std::size_t a, std::size_t b) {
                return slot[a].first < slot[b].first;
              });
    ++out.verified_chunks;
    const double res = residual_excluding(slot, {});
    if (res <= tolerance) {
      out.max_clean_residual = std::max(out.max_clean_residual, res);
      continue;
    }
    ++out.corrupted_chunks;
    // Minimal exclusion-set search: smallest consistent exclusion wins.
    // The budget r - k - 1 keeps >= k + 1 survivors, so consistency is
    // confirmed by at least one genuinely redundant row, never vacuously.
    bool identified = false;
    const std::size_t budget = r - k - 1;
    std::vector<std::size_t> excl;
    for (std::size_t e = 1; e <= budget && !identified; ++e) {
      excl.assign(e, 0);
      for (std::size_t i = 0; i < e; ++i) excl[i] = i;
      while (true) {
        if (residual_excluding(slot, excl) <= tolerance) {
          for (const std::size_t pos : excl) {
            out.corrupt_workers.push_back(slot[pos].first);
          }
          identified = true;
          break;
        }
        // Next lexicographic e-combination of {0..r-1}.
        std::size_t i = e;
        while (i-- > 0) {
          if (excl[i] + (e - i) < r) {
            ++excl[i];
            for (std::size_t j = i + 1; j < e; ++j) excl[j] = excl[j - 1] + 1;
            break;
          }
          if (i == 0) goto exhausted;
        }
      }
    exhausted:;
    }
    if (!identified) {
      throw std::runtime_error(
          "cluster failure: byzantine corruption unidentifiable — no "
          "consistent responder subset within the redundancy budget");
    }
  }

  // Voting: a responder convicted on any chunk is distrusted everywhere.
  std::sort(out.corrupt_workers.begin(), out.corrupt_workers.end());
  out.corrupt_workers.erase(
      std::unique(out.corrupt_workers.begin(), out.corrupt_workers.end()),
      out.corrupt_workers.end());
  if (!out.corrupt_workers.empty()) {
    for (std::size_t chunk = 0; chunk < num_chunks_; ++chunk) {
      auto& slot = results_[chunk];
      slot.erase(std::remove_if(slot.begin(), slot.end(),
                                [&out](const auto& p) {
                                  return std::binary_search(
                                      out.corrupt_workers.begin(),
                                      out.corrupt_workers.end(), p.first);
                                }),
                 slot.end());
      if (slot.size() < k) {
        throw std::runtime_error(
            "cluster failure: byzantine pruning left a chunk below k "
            "responders");
      }
    }
  }
  return out;
}

void ChunkedDecoder::reset() {
  for (auto& slot : results_) slot.clear();
  staged_.assign(generator_.n() * num_chunks_, 0);
  arena_.reset();
}

void ChunkedDecoder::reset(std::size_t width) {
  S2C2_REQUIRE(width > 0, "width must be positive");
  width_ = width;
  reset();
}

}  // namespace s2c2::coding
