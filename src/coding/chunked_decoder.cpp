#include "src/coding/chunked_decoder.h"

#include <algorithm>

#include "src/util/require.h"

namespace s2c2::coding {

ChunkedDecoder::ChunkedDecoder(const GeneratorMatrix& generator,
                               std::size_t rows_per_partition,
                               std::size_t num_chunks, std::size_t width)
    : generator_(generator), num_chunks_(num_chunks), width_(width) {
  S2C2_REQUIRE(num_chunks > 0, "decoder needs at least one chunk");
  S2C2_REQUIRE(rows_per_partition % num_chunks == 0,
               "rows_per_partition must be divisible by num_chunks");
  S2C2_REQUIRE(width > 0, "width must be positive");
  rows_per_chunk_ = rows_per_partition / num_chunks;
  results_.resize(num_chunks_);
}

void ChunkedDecoder::add_chunk_result(std::size_t worker, std::size_t chunk,
                                      std::vector<double> values) {
  S2C2_REQUIRE(worker < generator_.n(), "worker index out of range");
  S2C2_REQUIRE(chunk < num_chunks_, "chunk index out of range");
  S2C2_REQUIRE(values.size() == rows_per_chunk_ * width_,
               "chunk result has wrong size");
  auto& slot = results_[chunk];
  for (const auto& [w, _] : slot) {
    if (w == worker) return;  // idempotent on duplicates
  }
  slot.emplace_back(worker, std::move(values));
}

bool ChunkedDecoder::decodable() const {
  const std::size_t k = generator_.k();
  return std::all_of(results_.begin(), results_.end(),
                     [k](const auto& slot) { return slot.size() >= k; });
}

std::vector<std::size_t> ChunkedDecoder::deficient_chunks() const {
  const std::size_t k = generator_.k();
  std::vector<std::size_t> out;
  for (std::size_t c = 0; c < num_chunks_; ++c) {
    if (results_[c].size() < k) out.push_back(c);
  }
  return out;
}

std::vector<std::size_t> ChunkedDecoder::responders(std::size_t chunk) const {
  S2C2_REQUIRE(chunk < num_chunks_, "chunk index out of range");
  std::vector<std::size_t> out;
  out.reserve(results_[chunk].size());
  for (const auto& [w, _] : results_[chunk]) out.push_back(w);
  return out;
}

linalg::Matrix ChunkedDecoder::decode() const {
  const std::size_t k = generator_.k();
  S2C2_CHECK(decodable(), "decode() called before coverage reached k");
  linalg::Matrix out(k * rows_per_chunk_ * num_chunks_, width_);

  for (std::size_t chunk = 0; chunk < num_chunks_; ++chunk) {
    const auto& slot = results_[chunk];
    // Use the first k responders (arrival order) as the decode subset.
    std::vector<std::size_t> subset(k);
    for (std::size_t j = 0; j < k; ++j) subset[j] = slot[j].first;
    std::vector<std::size_t> key = subset;
    std::sort(key.begin(), key.end());

    auto it = lu_cache_.find(key);
    if (it == lu_cache_.end()) {
      it = lu_cache_
               .emplace(key, std::make_unique<linalg::LuFactorization>(
                                 generator_.submatrix(key)))
               .first;
    }
    const linalg::LuFactorization& lu = *it->second;

    // Build the RHS in the *sorted-key* row order so it matches the cached
    // factorization of generator_.submatrix(key).
    linalg::Matrix rhs(k, rows_per_chunk_ * width_);
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t worker = key[j];
      const auto found =
          std::find_if(slot.begin(), slot.end(),
                       [worker](const auto& p) { return p.first == worker; });
      S2C2_CHECK(found != slot.end(), "responder disappeared");
      std::copy(found->second.begin(), found->second.end(),
                rhs.mutable_data().begin() +
                    static_cast<std::ptrdiff_t>(j * rhs.cols()));
    }
    lu.solve_inplace(rhs.mutable_data(), rhs.cols());

    // rhs row i now holds (A_i x) over this chunk's rows; scatter to output.
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t out_row0 =
          i * rows_per_chunk_ * num_chunks_ + chunk * rows_per_chunk_;
      for (std::size_t r = 0; r < rows_per_chunk_; ++r) {
        for (std::size_t c = 0; c < width_; ++c) {
          out(out_row0 + r, c) = rhs(i, r * width_ + c);
        }
      }
    }
  }
  return out;
}

void ChunkedDecoder::reset() {
  for (auto& slot : results_) slot.clear();
}

}  // namespace s2c2::coding
