// Lagrange coded computing (Yu et al., AISTATS'19) — the paper's §2
// "broader use" substrate: coded redundancy for *arbitrary polynomial*
// computations over a batch of data blocks, not just linear maps.
//
// Data blocks X_1..X_m (equal shape) are interpolated by the matrix-valued
// polynomial  u(z) = Σ_j X_j · ℓ_j(z)  with Lagrange basis ℓ_j over points
// β_1..β_m, so u(β_j) = X_j. Worker i stores the single encoded block
// Ũ_i = u(α_i) and computes f(Ũ_i) = (f∘u)(α_i). If f is a polynomial of
// total degree d, f∘u has degree d·(m−1), so ANY R = d·(m−1)+1 worker
// evaluations determine it — the master interpolates back to the β_j and
// obtains every f(X_j) without ever seeing a straggler's result.
//
// S2C2 applies unchanged on top (§5's argument is code-agnostic): chunks
// are row ranges of the f(Ũ_i) output and every chunk needs R distinct
// responders; sched::proportional_allocation with k = R does the rest.
//
// Numerics: α's and β's are interleaved Chebyshev nodes on [-1,1]; decode
// uses explicit Lagrange weights evaluated in long double.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "src/linalg/matrix.h"

namespace s2c2::coding {

class LagrangeCode {
 public:
  /// n workers over m data blocks for polynomials up to `degree`.
  /// Requires n >= recovery_threshold() = degree*(m-1)+1.
  LagrangeCode(std::size_t n, std::size_t m, std::size_t degree);

  [[nodiscard]] std::size_t n() const noexcept { return alphas_.size(); }
  [[nodiscard]] std::size_t m() const noexcept { return betas_.size(); }
  [[nodiscard]] std::size_t degree() const noexcept { return degree_; }
  [[nodiscard]] std::size_t recovery_threshold() const noexcept {
    return degree_ * (m() - 1) + 1;
  }
  [[nodiscard]] double alpha(std::size_t worker) const {
    return alphas_.at(worker);
  }
  [[nodiscard]] double beta(std::size_t block) const {
    return betas_.at(block);
  }

  /// Encodes the batch: worker i receives u(α_i). All blocks must share
  /// one shape.
  [[nodiscard]] std::vector<linalg::Matrix> encode(
      const std::vector<linalg::Matrix>& blocks) const;

  /// Chunk-granular decoder over the f(Ũ) outputs (out_rows x out_cols
  /// each, out_rows divisible by num_chunks).
  class Decoder {
   public:
    Decoder(const LagrangeCode& code, std::size_t out_rows,
            std::size_t num_chunks, std::size_t out_cols);

    void add_chunk_result(std::size_t worker, std::size_t chunk,
                          linalg::Matrix rows);
    [[nodiscard]] bool decodable() const;
    [[nodiscard]] std::vector<std::size_t> deficient_chunks() const;
    [[nodiscard]] std::vector<std::size_t> responders(std::size_t chunk) const;

    /// Reconstructs f(X_j) for every block j. Already structured: explicit
    /// Lagrange-weight interpolation is O(R²) setup per responder set plus
    /// O(R·m) per reconstructed value — no O(R³) factorization — so it
    /// needs no DecodeContext routing (cost model: docs/PERFORMANCE.md).
    [[nodiscard]] std::vector<linalg::Matrix> decode() const;

   private:
    const LagrangeCode& code_;
    std::size_t rows_per_chunk_;
    std::size_t num_chunks_;
    std::size_t out_cols_;
    std::vector<std::vector<std::pair<std::size_t, linalg::Matrix>>> results_;
    // Lagrange weights cached per responder subset: weights[j][i] is the
    // coefficient of responder i's evaluation in the reconstruction at β_j.
    mutable std::map<std::vector<std::size_t>,
                     std::vector<std::vector<double>>>
        weight_cache_;
  };

 private:
  std::size_t degree_;
  std::vector<double> alphas_;  // worker evaluation points
  std::vector<double> betas_;   // data interpolation points
};

}  // namespace s2c2::coding
