// Chunk-granular MDS decoding — the decode side of S2C2.
//
// Each worker's partition is viewed as `num_chunks` equal row ranges. Under
// S2C2 different workers compute different chunk subsets of their own
// partitions, so the responder set varies per chunk. For every chunk index
// the decoder needs results from >= k distinct workers; it then solves the
// k x k system G_sub · Y = B where row j of B holds worker j's computed
// values for that chunk. Y row i recovers (A_i · x) over the chunk's rows.
//
// Solves go through a DecodeContext (coding/decode_context.h): wrap-around
// allocations produce only O(n) distinct responder sets per round, and
// iterative jobs repeat them across rounds, so factorizations are cached
// keyed by the responder bitmap and each fresh set costs only the O(p³)
// Schur-reduced factorization (p = parity responders <= n - k), never the
// dense O(k³) LU. Consecutive chunks sharing a responder set are decoded
// in one batched multi-RHS solve. Pass an external context to keep the
// cache warm across rounds (engines do); by default the decoder owns a
// private one. Complexity table: docs/PERFORMANCE.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/coding/decode_context.h"
#include "src/coding/generator_matrix.h"
#include "src/linalg/matrix.h"
#include "src/util/arena.h"

namespace s2c2::util {
class ThreadPool;
}  // namespace s2c2::util

namespace s2c2::coding {

/// Outcome of a Byzantine verification pass over the registered chunk
/// results (ChunkedDecoder::verify_chunks).
struct ChunkVerification {
  std::vector<std::size_t> corrupt_workers;  // convicted responders, sorted
  std::size_t corrupted_chunks = 0;          // chunks that failed the check
  std::size_t verified_chunks = 0;           // chunks with redundancy checked
  double max_clean_residual = 0.0;           // over the chunks that passed
};

class ChunkedDecoder {
 public:
  /// `rows_per_partition` must be divisible by `num_chunks`; `width` is the
  /// number of values per computed row (1 for matvec). `context`, when
  /// non-null, is borrowed for every solve (its generator must be the same
  /// object as `generator`) so cached factorizations survive this
  /// decoder — engines pass their per-job context to amortize across
  /// rounds. When null the decoder owns a fresh context.
  ChunkedDecoder(const GeneratorMatrix& generator,
                 std::size_t rows_per_partition, std::size_t num_chunks,
                 std::size_t width = 1, DecodeContext* context = nullptr);

  [[nodiscard]] std::size_t num_chunks() const noexcept { return num_chunks_; }
  [[nodiscard]] std::size_t rows_per_chunk() const noexcept {
    return rows_per_chunk_;
  }

  /// Stages worker `worker`'s slot for chunk `chunk` and returns the
  /// rows_per_chunk x width row-major span to write the values into —
  /// arena-backed, so the round hot path computes straight into decoder
  /// storage with no intermediate vector. Returns an empty span on a
  /// duplicate (worker, chunk): submissions are idempotent — reassigned
  /// work can race the original under mis-prediction recovery. The span
  /// lives until the next reset().
  [[nodiscard]] std::span<double> stage_chunk(std::size_t worker,
                                              std::size_t chunk);

  /// Copying registration: rows_per_chunk x width row-major values into a
  /// staged slot (same idempotence as stage_chunk).
  void add_chunk_result(std::size_t worker, std::size_t chunk,
                        std::span<const double> values);
  void add_chunk_result(std::size_t worker, std::size_t chunk,
                        const std::vector<double>& values) {
    add_chunk_result(worker, chunk, std::span<const double>(values));
  }

  /// True once every chunk has results from >= k distinct workers.
  [[nodiscard]] bool decodable() const;

  /// Chunks still lacking k results, with their responder counts.
  [[nodiscard]] std::vector<std::size_t> deficient_chunks() const;

  /// Workers that already responded for the given chunk.
  [[nodiscard]] std::vector<std::size_t> responders(std::size_t chunk) const;

  /// Reconstructs the original product: (k * rows_per_partition) rows x
  /// width, row-major. Throws std::logic_error if not decodable().
  /// Amortized O(k²) per responder set via the decode context; consecutive
  /// same-responder-set chunks share one batched multi-RHS solve.
  [[nodiscard]] linalg::Matrix decode();

  /// Fill-style decode: identical result, but `out` is resized in place
  /// (retaining capacity) and every intermediate — subset keys, the
  /// batched RHS — lives in member scratch or the arena, so a warm
  /// steady-state decode performs zero heap allocations.
  void decode_into(linalg::Matrix& out);

  /// Parallel fill-style decode: bitwise-identical output, with the
  /// independent responder-set groups' gather/solve/scatter fanned out
  /// over `pool` (help-first member parallel_for, so it composes with
  /// outer sharding). Cache lookups — whose hit/miss order is
  /// fingerprinted telemetry — and arena RHS allocation run serially in
  /// group order first; each parallel task then touches only its own
  /// group's RHS span, disjoint output rows, and per-task solve scratch.
  /// Falls back to the serial decode when `pool` is null, there is only
  /// one group, or the context backend has no concurrency-safe solve
  /// (Vandermonde / LT).
  void decode_into(linalg::Matrix& out, util::ThreadPool* pool);

  /// Byzantine verification-and-voting pass (docs/DESIGN.md §7): every
  /// chunk holding more than k results is residual-checked through the
  /// decode context; on failure the corrupted responders are identified by
  /// minimal exclusion-set enumeration (set sizes 1..r-k-1, smallest
  /// first — sound for up to r-k-1 corruptions since at least one
  /// redundant row must remain to confirm the survivors' consistency).
  /// A responder convicted on any chunk is distrusted everywhere: all of
  /// its submissions are dropped, so decode() then runs from clean rows
  /// only. Throws std::runtime_error when no exclusion set restores
  /// consistency or when pruning would leave a chunk below k responders.
  [[nodiscard]] ChunkVerification verify_chunks(double tolerance);

  /// Distinct responder sets resident in the decode context's cache (for a
  /// private context: the sets this decoder factorized).
  [[nodiscard]] std::size_t lu_cache_size() const noexcept {
    return context_->stats().entries;
  }

  /// The context solves go through (owned or borrowed).
  [[nodiscard]] DecodeContext& context() noexcept { return *context_; }

  /// Drops every staged result and rewinds the arena (retaining its
  /// blocks); spans from stage_chunk are invalidated. The overload taking
  /// `width` also re-shapes the decoder for a new RHS width, so one
  /// persistent decoder serves every round of an engine regardless of the
  /// round's block width.
  void reset();
  void reset(std::size_t width);

 private:
  /// One same-responder-set chunk run of the parallel decode: chunks
  /// [begin, end), the group's arena-backed batched RHS, and its prepared
  /// cache entry.
  struct DecodeGroup {
    std::size_t begin;
    std::size_t end;
    std::span<double> rhs;
    DecodeContext::Prepared prepared;
  };

  [[nodiscard]] std::size_t chunk_values() const noexcept {
    return rows_per_chunk_ * width_;
  }

  /// Computes keys_ (per-chunk sorted first-k responder subsets) and
  /// sizes `out`; shared prologue of both decode_into overloads.
  void prepare_decode(linalg::Matrix& out);

  /// One group's gather / prepared-solve / scatter, using task-local
  /// scratch only — safe to run concurrently across distinct groups.
  void decode_group(const DecodeGroup& group, std::size_t chunk_cols,
                    linalg::Matrix& out) const;

  const GeneratorMatrix& generator_;
  std::size_t rows_per_chunk_;
  std::size_t num_chunks_;
  std::size_t width_;
  // per chunk: (worker, values) in arrival order; values are
  // rows_per_chunk x width row-major in arena_ storage.
  std::vector<std::vector<std::pair<std::size_t, double*>>> results_;
  util::Arena arena_;
  std::unique_ptr<DecodeContext> owned_context_;
  DecodeContext* context_;
  // decode_into scratch (per-chunk subset keys), reused across rounds.
  std::vector<std::vector<std::size_t>> keys_;
  // (worker, chunk) staged flags, n x num_chunks: O(1) duplicate detection
  // in stage_chunk instead of an O(responders) slot scan — at n = 1000
  // that scan was the round loop's hottest non-kernel cost. Flags stay set
  // when verify_chunks prunes a convicted responder, which is fine: no
  // staging happens after verification within a round.
  std::vector<std::uint8_t> staged_;
  // decode_into scratch: worker id -> slot position for the chunk being
  // gathered (sentinel npos when absent), replacing a per-responder linear
  // slot search.
  std::vector<std::size_t> slot_pos_;
  // parallel decode_into scratch (capacity retained across rounds).
  std::vector<DecodeGroup> groups_;
};

}  // namespace s2c2::coding
