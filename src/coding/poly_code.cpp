#include "src/coding/poly_code.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/linalg/vandermonde.h"
#include "src/util/require.h"

namespace s2c2::coding {

PolyCode::PolyCode(std::size_t n, std::size_t a, EvalPoints points) : a_(a) {
  S2C2_REQUIRE(a >= 1, "a must be >= 1");
  S2C2_REQUIRE(n >= a * a, "polynomial code needs n >= a^2 workers");
  points_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (points == EvalPoints::kChebyshev) {
      // Distinct Chebyshev-like nodes in (-1, 1).
      points_[i] = std::cos(std::numbers::pi * (2.0 * i + 1.0) /
                            (2.0 * static_cast<double>(n)));
    } else {
      points_[i] = static_cast<double>(i);
    }
  }
}

std::vector<PolyCode::WorkerOperands> PolyCode::encode(
    const linalg::Matrix& a_mat) const {
  S2C2_REQUIRE(a_mat.cols() % a_ == 0, "cols must be divisible by a");
  const std::size_t bc = a_mat.cols() / a_;  // block columns
  std::vector<WorkerOperands> out;
  out.reserve(n());
  for (std::size_t i = 0; i < n(); ++i) {
    const double alpha = points_[i];
    linalg::Matrix at(a_mat.rows(), bc);
    linalg::Matrix bt(a_mat.rows(), bc);
    double pa = 1.0;  // alpha^j
    std::vector<double> pb(a_);
    for (std::size_t j = 0; j < a_; ++j) {
      pb[j] = std::pow(alpha, static_cast<double>(j * a_));
    }
    for (std::size_t j = 0; j < a_; ++j) {
      for (std::size_t r = 0; r < a_mat.rows(); ++r) {
        const auto src = a_mat.row(r);
        auto arow = at.row(r);
        auto brow = bt.row(r);
        for (std::size_t c = 0; c < bc; ++c) {
          const double v = src[j * bc + c];
          arow[c] += pa * v;
          brow[c] += pb[j] * v;
        }
      }
      pa *= alpha;
    }
    out.push_back({std::move(at), std::move(bt)});
  }
  return out;
}

linalg::Matrix PolyCode::compute_rows(const WorkerOperands& ops,
                                      std::span<const double> x,
                                      std::size_t r0, std::size_t r1) {
  S2C2_REQUIRE(x.size() == ops.a_tilde.rows(), "diag(x) size mismatch");
  S2C2_REQUIRE(r0 <= r1 && r1 <= ops.a_tilde.cols(),
               "compute_rows range out of bounds");
  // P rows [r0,r1): P(r,c) = Σ_s Ã(s,r) · x_s · B̃(s,c).
  const std::size_t cols = ops.b_tilde.cols();
  linalg::Matrix p(r1 - r0, cols);
  for (std::size_t s = 0; s < ops.a_tilde.rows(); ++s) {
    const double xs = x[s];
    if (xs == 0.0) continue;
    const auto arow = ops.a_tilde.row(s);
    const auto brow = ops.b_tilde.row(s);
    for (std::size_t r = r0; r < r1; ++r) {
      const double w = arow[r] * xs;
      if (w == 0.0) continue;
      auto prow = p.row(r - r0);
      for (std::size_t c = 0; c < cols; ++c) prow[c] += w * brow[c];
    }
  }
  return p;
}

PolyCode::Decoder::Decoder(const PolyCode& code, std::size_t out_rows,
                           std::size_t num_chunks, std::size_t out_cols,
                           DecodeContext* context)
    : code_(code), num_chunks_(num_chunks), out_cols_(out_cols) {
  S2C2_REQUIRE(num_chunks > 0, "decoder needs at least one chunk");
  S2C2_REQUIRE(out_rows % num_chunks == 0,
               "output rows must be divisible by num_chunks");
  rows_per_chunk_ = out_rows / num_chunks;
  results_.resize(num_chunks_);
  if (context) {
    context_ = context;
  } else {
    owned_context_ =
        std::make_unique<DecodeContext>(code_.make_decode_context());
    context_ = owned_context_.get();
  }
}

void PolyCode::Decoder::add_chunk_result(std::size_t worker, std::size_t chunk,
                                         linalg::Matrix rows) {
  S2C2_REQUIRE(worker < code_.n(), "worker index out of range");
  S2C2_REQUIRE(chunk < num_chunks_, "chunk index out of range");
  S2C2_REQUIRE(rows.rows() == rows_per_chunk_ && rows.cols() == out_cols_,
               "chunk result shape mismatch");
  auto& slot = results_[chunk];
  for (const auto& [w, _] : slot) {
    if (w == worker) return;
  }
  slot.emplace_back(worker, std::move(rows));
}

bool PolyCode::Decoder::decodable() const {
  const std::size_t need = code_.required_responses();
  return std::all_of(results_.begin(), results_.end(),
                     [need](const auto& s) { return s.size() >= need; });
}

std::vector<std::size_t> PolyCode::Decoder::deficient_chunks() const {
  const std::size_t need = code_.required_responses();
  std::vector<std::size_t> out;
  for (std::size_t c = 0; c < num_chunks_; ++c) {
    if (results_[c].size() < need) out.push_back(c);
  }
  return out;
}

std::vector<std::size_t> PolyCode::Decoder::responders(
    std::size_t chunk) const {
  S2C2_REQUIRE(chunk < num_chunks_, "chunk index out of range");
  std::vector<std::size_t> out;
  for (const auto& [w, _] : results_[chunk]) out.push_back(w);
  return out;
}

linalg::Matrix PolyCode::Decoder::decode() {
  const std::size_t m = code_.required_responses();  // a²
  const std::size_t a = code_.a();
  S2C2_CHECK(decodable(), "poly decode before coverage");
  const std::size_t block = rows_per_chunk_ * num_chunks_;  // d/a
  linalg::Matrix h(a * block, a * out_cols_);

  for (std::size_t chunk = 0; chunk < num_chunks_; ++chunk) {
    const auto& slot = results_[chunk];
    std::vector<std::size_t> key(m);
    for (std::size_t j = 0; j < m; ++j) key[j] = slot[j].first;
    std::sort(key.begin(), key.end());

    // RHS: row j = flattened chunk result of worker key[j]; the context
    // solves the Vandermonde system in the workers' evaluation points via
    // the O(m²)-per-column Björck–Pereyra pass.
    linalg::Matrix rhs(m, rows_per_chunk_ * out_cols_);
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t worker = key[j];
      const auto found =
          std::find_if(slot.begin(), slot.end(),
                       [worker](const auto& p) { return p.first == worker; });
      S2C2_CHECK(found != slot.end(), "responder disappeared");
      std::copy(found->second.data().begin(), found->second.data().end(),
                rhs.mutable_data().begin() +
                    static_cast<std::ptrdiff_t>(j * rhs.cols()));
    }
    context_->solve_inplace(key, rhs.mutable_data(), rhs.cols());

    // rhs row (j + a*l) = block C_{j+a·l} = A_jᵀ D A_l over chunk's rows.
    for (std::size_t coef = 0; coef < m; ++coef) {
      const std::size_t j = coef % a;  // row-block index of H
      const std::size_t l = coef / a;  // col-block index of H
      const std::size_t row0 = j * block + chunk * rows_per_chunk_;
      const std::size_t col0 = l * out_cols_;
      for (std::size_t r = 0; r < rows_per_chunk_; ++r) {
        for (std::size_t c = 0; c < out_cols_; ++c) {
          h(row0 + r, col0 + c) = rhs(coef, r * out_cols_ + c);
        }
      }
    }
  }
  return h;
}

linalg::Matrix PolyCode::hessian_direct(const linalg::Matrix& a_mat,
                                        std::span<const double> x) {
  S2C2_REQUIRE(x.size() == a_mat.rows(), "diag(x) size mismatch");
  linalg::Matrix scaled = a_mat;
  for (std::size_t r = 0; r < scaled.rows(); ++r) {
    auto row = scaled.row(r);
    for (double& v : row) v *= x[r];
  }
  return a_mat.transposed().matmul(scaled);
}

}  // namespace s2c2::coding
