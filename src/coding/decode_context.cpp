#include "src/coding/decode_context.h"

#include <algorithm>
#include <cmath>

#include "src/coding/lt_code.h"
#include "src/util/require.h"

namespace s2c2::coding {

/// One cached responder-set factorization. For the MDS backend the split
/// is: `sys_pos[i]` is the subset row whose worker is systematic for block
/// `sys_block[i]`; `par_worker` are the parity responders in subset order;
/// `missing` are the blocks no systematic responder covers (|missing| ==
/// |par_worker| == p). `lu` factors the p x p reduced matrix
/// M(r, c) = G(par_worker[r], missing[c]). For the Vandermonde backend
/// only `bp` is set.
struct DecodeContext::Entry {
  std::vector<std::size_t> sys_pos;
  std::vector<std::size_t> sys_block;
  std::vector<std::size_t> par_pos;
  std::vector<std::size_t> par_worker;
  std::vector<std::size_t> missing;
  std::unique_ptr<linalg::LuFactorization> lu;    // p x p; null when p == 0
  std::unique_ptr<linalg::VandermondeSolver> bp;  // Vandermonde backend
  std::unique_ptr<LtPeelPlan> lt;                 // rateless backend
};

DecodeContext::DecodeContext(DecodeContext&&) noexcept = default;
DecodeContext& DecodeContext::operator=(DecodeContext&&) noexcept = default;
DecodeContext::~DecodeContext() = default;

DecodeContext::DecodeContext(const GeneratorMatrix& generator)
    : generator_(&generator), k_(generator.k()) {}

DecodeContext::DecodeContext(std::vector<double> eval_points, std::size_t k)
    : eval_points_(std::move(eval_points)), k_(k) {
  S2C2_REQUIRE(k_ > 0, "DecodeContext needs k > 0");
  S2C2_REQUIRE(eval_points_.size() >= k_,
               "DecodeContext needs >= k evaluation points");
}

DecodeContext::DecodeContext(const LtCode& code)
    : lt_code_(&code), k_(code.sources()) {}

std::size_t DecodeContext::n() const noexcept {
  if (generator_ != nullptr) return generator_->n();
  if (lt_code_ != nullptr) return lt_code_->n();
  return eval_points_.size();
}

void DecodeContext::make_key(std::span<const std::size_t> subset) {
  key_scratch_.assign((n() + 63) / 64, 0);
  for (const std::size_t w : subset) {
    key_scratch_[w / 64] |= std::uint64_t{1} << (w % 64);
  }
}

DecodeContext::Entry& DecodeContext::acquire(
    std::span<const std::size_t> subset) {
  if (lt_code_ != nullptr) {
    // Rateless backend: the decode quorum is a symbol threshold, not a
    // worker count — any responder set whose symbols decode is a key.
    S2C2_REQUIRE(!subset.empty(), "LT responder subset must be non-empty");
  } else {
    S2C2_REQUIRE(subset.size() == k_, "responder subset must have exactly k");
  }
  S2C2_REQUIRE(std::is_sorted(subset.begin(), subset.end()) &&
                   std::adjacent_find(subset.begin(), subset.end()) ==
                       subset.end(),
               "responder subset must be sorted and distinct");
  S2C2_REQUIRE(subset.back() < n(), "responder worker out of range");

  make_key(subset);
  const auto it = cache_.find(key_scratch_);
  if (it != cache_.end()) {
    ++stats_.hits;
    return *it->second;
  }
  ++stats_.misses;

  auto entry = std::make_unique<Entry>();
  if (lt_code_ != nullptr) {
    entry->lt = std::make_unique<LtPeelPlan>(lt_code_->plan_for(subset));
    S2C2_REQUIRE(entry->lt->decodable,
                 "LT responder set does not decode (collection must extend "
                 "past the threshold until the peel plan closes)");
  } else if (generator_) {
    // Split into systematic rows (identity: worker < k pins block worker)
    // and parity rows, then factor the Schur-reduced parity block.
    std::vector<bool> covered(k_, false);
    for (std::size_t j = 0; j < subset.size(); ++j) {
      const std::size_t w = subset[j];
      if (generator_->is_systematic_row(w)) {
        entry->sys_pos.push_back(j);
        entry->sys_block.push_back(w);
        covered[w] = true;
      } else {
        entry->par_pos.push_back(j);
        entry->par_worker.push_back(w);
      }
    }
    for (std::size_t b = 0; b < k_; ++b) {
      if (!covered[b]) entry->missing.push_back(b);
    }
    S2C2_CHECK(entry->missing.size() == entry->par_worker.size(),
               "systematic split lost a block");
    const std::size_t p = entry->par_worker.size();
    if (p > 0) {
      linalg::Matrix reduced(p, p);
      for (std::size_t r = 0; r < p; ++r) {
        for (std::size_t c = 0; c < p; ++c) {
          reduced(r, c) =
              generator_->coeff(entry->par_worker[r], entry->missing[c]);
        }
      }
      entry->lu =
          std::make_unique<linalg::LuFactorization>(std::move(reduced));
    }
  } else {
    std::vector<double> pts(k_);
    for (std::size_t j = 0; j < k_; ++j) pts[j] = eval_points_[subset[j]];
    entry->bp = std::make_unique<linalg::VandermondeSolver>(std::move(pts));
  }

  Entry& ref = *entry;
  cache_.emplace(key_scratch_, std::move(entry));  // copies the key: miss path
  stats_.entries = cache_.size();
  return ref;
}

double DecodeContext::factor_cost(const Entry& e) const {
  if (e.bp) return 0.0;  // Björck–Pereyra works straight off the nodes
  if (e.lt) {
    // Peel scheduling walks every edge once; the stalled tail pays one
    // dense s x s factorization.
    const double s = static_cast<double>(e.lt->tail_size());
    return 2.0 * static_cast<double>(e.lt->edges) + 2.0 / 3.0 * s * s * s;
  }
  const double p = static_cast<double>(e.par_worker.size());
  return 2.0 / 3.0 * p * p * p;
}

double DecodeContext::solve_cost(const Entry& e, std::size_t columns) const {
  const double m = static_cast<double>(columns);
  const double kd = static_cast<double>(k_);
  if (e.bp) return (2.0 * kd * kd + kd) * m;
  if (e.lt) {
    // `columns` arrives in the executor's per-chunk units (chunks x
    // values-per-chunk x width); one decode actually solves every chunk
    // at once, with v = columns / chunks_per_worker RHS columns per
    // source: an edge-sweep subtraction pass, the tail's triangular
    // solves, and the k-row assembly copy.
    const double v = m / static_cast<double>(lt_code_->chunks_per_worker());
    const double s = static_cast<double>(e.lt->tail_size());
    return (2.0 * static_cast<double>(e.lt->edges) + 2.0 * s * s + kd) * v;
  }
  const double p = static_cast<double>(e.par_worker.size());
  const double s = static_cast<double>(e.sys_pos.size());
  // RHS reduction over systematic blocks + p x p triangular solves +
  // block-order assembly of the k output rows.
  return (2.0 * p * s + 2.0 * p * p + kd) * m;
}

DecodeCharge DecodeContext::charge(std::span<const std::size_t> subset,
                                   std::size_t columns) {
  const std::size_t misses_before = stats_.misses;
  const Entry& e = acquire(subset);
  DecodeCharge out;
  out.cache_hit = stats_.misses == misses_before;
  out.flops = solve_cost(e, columns);
  if (!out.cache_hit) {
    out.flops += factor_cost(e);
    stats_.factor_flops += factor_cost(e);
  }
  stats_.solve_flops += solve_cost(e, columns);
  return out;
}

void DecodeContext::lt_decode(std::span<const std::size_t> subset,
                              std::span<const double> symbols,
                              std::size_t values_per_symbol,
                              std::span<double> out) {
  S2C2_REQUIRE(lt_code_ != nullptr,
               "lt_decode is the rateless backend's entry point");
  Entry& e = acquire(subset);
  lt_code_->decode(*e.lt, symbols, values_per_symbol, out);
}

void DecodeContext::solve_inplace(std::span<const std::size_t> subset,
                                  std::span<double> rhs_rowmajor,
                                  std::size_t width) {
  S2C2_REQUIRE(lt_code_ == nullptr,
               "the rateless backend decodes through lt_decode");
  S2C2_REQUIRE(width > 0 && rhs_rowmajor.size() == k_ * width,
               "decode solve: rhs layout mismatch");
  Entry& e = acquire(subset);

  if (e.bp) {
    e.bp->solve_inplace(rhs_rowmajor, width);
    return;
  }
  solve_entry(e, rhs_rowmajor, width, solve_scratch_);
}

DecodeContext::Prepared DecodeContext::prepare(
    std::span<const std::size_t> subset) {
  S2C2_REQUIRE(supports_parallel_solve(),
               "prepare/solve_prepared: systematic-MDS backend only");
  return Prepared(&acquire(subset));
}

void DecodeContext::solve_prepared(const Prepared& prepared,
                                   std::span<double> rhs_rowmajor,
                                   std::size_t width,
                                   SolveScratch& scratch) const {
  S2C2_REQUIRE(prepared.entry_ != nullptr,
               "solve_prepared on an empty handle");
  S2C2_REQUIRE(width > 0 && rhs_rowmajor.size() == k_ * width,
               "decode solve: rhs layout mismatch");
  solve_entry(*prepared.entry_, rhs_rowmajor, width, scratch);
}

void DecodeContext::solve_entry(const Entry& e,
                                std::span<double> rhs_rowmajor,
                                std::size_t width,
                                SolveScratch& scratch) const {
  // In-place scatter. The subset is sorted and systematic ids are < k <=
  // parity ids, so systematic rows occupy positions 0..s-1 with
  // sys_block[i] = subset[i] >= i: (1) reduce the parity rows first (pure
  // reads), (2) move systematic rows to their block rows descending —
  // every write lands at >= the current read position, so no unread row
  // is clobbered, (3) scatter the solved missing blocks. The common
  // nearly-identity permutation then moves almost nothing, which is what
  // keeps the amortized per-round decode at memory speed.
  const std::size_t p = e.par_worker.size();
  const std::size_t s = e.sys_pos.size();
  if (p > 0) {
    // Reduced RHS: parity row minus its systematic contributions.
    scratch.reduced.resize(p * width);
    for (std::size_t r = 0; r < p; ++r) {
      const double* src = rhs_rowmajor.data() + e.par_pos[r] * width;
      double* dst = scratch.reduced.data() + r * width;
      std::copy(src, src + width, dst);
      for (std::size_t i = 0; i < s; ++i) {
        const double g =
            generator_->coeff(e.par_worker[r], e.sys_block[i]);
        if (g == 0.0) continue;
        const double* sys = rhs_rowmajor.data() + e.sys_pos[i] * width;
        for (std::size_t c = 0; c < width; ++c) dst[c] -= g * sys[c];
      }
    }
    e.lu->solve_inplace(
        std::span<double>(scratch.reduced.data(), p * width), width,
        scratch.perm);
  }
  for (std::size_t i = s; i-- > 0;) {
    if (e.sys_block[i] == e.sys_pos[i]) continue;
    const double* src = rhs_rowmajor.data() + e.sys_pos[i] * width;
    std::copy(src, src + width,
              rhs_rowmajor.data() + e.sys_block[i] * width);
  }
  for (std::size_t r = 0; r < p; ++r) {
    const double* src = scratch.reduced.data() + r * width;
    std::copy(src, src + width,
              rhs_rowmajor.data() + e.missing[r] * width);
  }
}

double DecodeContext::redundant_residual(std::span<const std::size_t> subset,
                                         std::span<const double> rhs,
                                         std::size_t width) {
  S2C2_REQUIRE(lt_code_ == nullptr,
               "the rateless backend has no redundant-response check");
  S2C2_REQUIRE(subset.size() >= k_ && subset.size() <= n(),
               "redundant_residual: subset size must be in [k, n]");
  S2C2_REQUIRE(width > 0 && rhs.size() == subset.size() * width,
               "redundant_residual: rhs layout mismatch");
  S2C2_REQUIRE(std::is_sorted(subset.begin(), subset.end()) &&
                   std::adjacent_find(subset.begin(), subset.end()) ==
                       subset.end(),
               "redundant_residual: subset must be sorted and distinct");
  if (subset.size() == k_) return 0.0;  // no redundancy to check

  double scale = 1.0;
  for (const double v : rhs) scale = std::max(scale, std::abs(v));

  // Decode from the first k responders on a scratch copy (solve_inplace
  // leaves the unknown blocks in block order, which is exactly what the
  // code-row evaluation below consumes).
  scratch_verify_.assign(rhs.begin(), rhs.begin() + k_ * width);
  solve_inplace(subset.first(k_),
                std::span<double>(scratch_verify_.data(), k_ * width), width);

  double max_residual = 0.0;
  for (std::size_t i = k_; i < subset.size(); ++i) {
    const std::size_t w = subset[i];
    const double* sent = rhs.data() + i * width;
    for (std::size_t c = 0; c < width; ++c) {
      double predicted;
      if (generator_) {
        predicted = 0.0;
        for (std::size_t b = 0; b < k_; ++b) {
          predicted += generator_->coeff(w, b) * scratch_verify_[b * width + c];
        }
      } else {
        // Vandermonde row [1, x, x², ...]: Horner over the solved
        // coefficient blocks.
        const double x = eval_points_[w];
        predicted = scratch_verify_[(k_ - 1) * width + c];
        for (std::size_t b = k_ - 1; b-- > 0;) {
          predicted = predicted * x + scratch_verify_[b * width + c];
        }
      }
      max_residual = std::max(max_residual, std::abs(predicted - sent[c]));
    }
  }
  return max_residual / scale;
}

void DecodeContext::clear() {
  cache_.clear();
  stats_ = DecodeContextStats{};
}

}  // namespace s2c2::coding
