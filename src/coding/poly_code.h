// Polynomial codes (Yu, Maddah-Ali, Avestimehr, NeurIPS'17) for the
// bilinear Hessian computation  H = Aᵀ · diag(x) · A  used in the paper's
// §5/§7.2.3 extension of S2C2 beyond matrix-vector products.
//
// A (N x d) is split column-wise into `a` blocks A_0..A_{a-1}. Worker i
// stores two encoded operands evaluated at its point α_i:
//     Ã_i = Σ_j α_i^j     · A_j        (N x d/a)
//     B̃_i = Σ_j α_i^(j·a) · A_j        (N x d/a)
// and computes  P_i = Ã_iᵀ · diag(x) · B̃_i  (d/a x d/a), which equals the
// degree-(a²-1) polynomial  Σ_m α_i^m · C_m  with C_{j+a·l} = A_jᵀ D A_l.
// Any a² distinct evaluations recover every block of H.
//
// S2C2 applies on top exactly as in the MDS case: chunks are row ranges of
// the P_i output, and each chunk needs >= a² responders (paper Fig 5).
//
// Evaluation points: Chebyshev nodes on [-1,1] by default (the paper's
// integer points are kept as an option; they condition badly as a² grows).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "src/coding/decode_context.h"
#include "src/linalg/matrix.h"

namespace s2c2::coding {

enum class EvalPoints { kChebyshev, kIntegers };

class PolyCode {
 public:
  /// n workers, A split into `a` column blocks; decode needs a² responses,
  /// so n >= a² is required.
  PolyCode(std::size_t n, std::size_t a,
           EvalPoints points = EvalPoints::kChebyshev);

  [[nodiscard]] std::size_t n() const noexcept { return points_.size(); }
  [[nodiscard]] std::size_t a() const noexcept { return a_; }
  /// Minimum responders per output row (the "k" of this code) = a².
  [[nodiscard]] std::size_t required_responses() const noexcept {
    return a_ * a_;
  }
  [[nodiscard]] double eval_point(std::size_t worker) const {
    return points_.at(worker);
  }

  struct WorkerOperands {
    linalg::Matrix a_tilde;  // N x d/a
    linalg::Matrix b_tilde;  // N x d/a
  };

  /// Encodes A (N x d, d divisible by a) into per-worker operand pairs.
  [[nodiscard]] std::vector<WorkerOperands> encode(
      const linalg::Matrix& a_mat) const;

  /// Worker-side kernel: rows [r0,r1) of P_i = Ã_iᵀ diag(x) B̃_i.
  /// Cost model note: the diag(x)·B̃_i scaling is proportional to the full
  /// operand and is NOT reduced by computing fewer rows — the engine's cost
  /// model mirrors that (paper §7.2.3 observes S2C2 cannot squeeze it).
  [[nodiscard]] static linalg::Matrix compute_rows(
      const WorkerOperands& ops, std::span<const double> x, std::size_t r0,
      std::size_t r1);

  /// Chunk-granular decoder; mirrors coding/chunked_decoder.h but solves
  /// pure Vandermonde systems in the evaluation points — the DecodeContext
  /// routes these through the Björck–Pereyra structured solver
  /// (linalg/vandermonde.h): O(a⁴) per RHS column (k = a² here) with no
  /// O(k³) factorization at all. Pass the engine's context to share cache
  /// telemetry across rounds; by default the decoder owns a private one.
  /// Cost model: docs/PERFORMANCE.md.
  class Decoder {
   public:
    Decoder(const PolyCode& code, std::size_t out_rows,
            std::size_t num_chunks, std::size_t out_cols,
            DecodeContext* context = nullptr);

    void add_chunk_result(std::size_t worker, std::size_t chunk,
                          linalg::Matrix rows);
    [[nodiscard]] bool decodable() const;
    [[nodiscard]] std::vector<std::size_t> deficient_chunks() const;
    [[nodiscard]] std::vector<std::size_t> responders(std::size_t chunk) const;

    /// Reassembles the full d x d Hessian. Amortized O(k²) per responder
    /// set and RHS column via the decode context.
    [[nodiscard]] linalg::Matrix decode();

   private:
    const PolyCode& code_;
    std::size_t rows_per_chunk_;
    std::size_t num_chunks_;
    std::size_t out_cols_;
    std::vector<std::vector<std::pair<std::size_t, linalg::Matrix>>> results_;
    std::unique_ptr<DecodeContext> owned_context_;
    DecodeContext* context_;
  };

  /// A decode context wired to this code's evaluation points (Vandermonde
  /// backend, recovery dimension a²) — engines own one per job so cached
  /// responder sets survive across rounds.
  [[nodiscard]] DecodeContext make_decode_context() const {
    return DecodeContext(points_, required_responses());
  }

  /// Uncoded reference for tests: Aᵀ · diag(x) · A.
  [[nodiscard]] static linalg::Matrix hessian_direct(
      const linalg::Matrix& a_mat, std::span<const double> x);

 private:
  std::size_t a_;
  std::vector<double> points_;
};

}  // namespace s2c2::coding
