#include "src/coding/generator_matrix.h"

#include "src/linalg/vandermonde.h"
#include "src/util/require.h"
#include "src/util/rng.h"

namespace s2c2::coding {

GeneratorMatrix::GeneratorMatrix(std::size_t n, std::size_t k, ParityKind kind,
                                 std::uint64_t seed)
    : matrix_(n, k), kind_(kind) {
  S2C2_REQUIRE(k >= 1, "k must be >= 1");
  S2C2_REQUIRE(n >= k, "n must be >= k");
  for (std::size_t i = 0; i < k; ++i) matrix_(i, i) = 1.0;
  if (kind == ParityKind::kVandermonde) {
    for (std::size_t j = k; j < n; ++j) {
      const double alpha = static_cast<double>(j - k + 1);
      const linalg::Vector row = linalg::vandermonde_row(alpha, k);
      for (std::size_t c = 0; c < k; ++c) matrix_(j, c) = row[c];
    }
  } else {
    util::Rng rng(seed);
    for (std::size_t j = k; j < n; ++j) {
      for (std::size_t c = 0; c < k; ++c) matrix_(j, c) = rng.normal();
    }
  }
}

linalg::Matrix GeneratorMatrix::submatrix(
    std::span<const std::size_t> workers) const {
  linalg::Matrix sub(workers.size(), k());
  for (std::size_t r = 0; r < workers.size(); ++r) {
    S2C2_REQUIRE(workers[r] < n(), "worker index out of range");
    for (std::size_t c = 0; c < k(); ++c) {
      sub(r, c) = matrix_(workers[r], c);
    }
  }
  return sub;
}

}  // namespace s2c2::coding
