#include "src/coding/mds_code.h"

#include <algorithm>

#include "src/linalg/kernels.h"
#include "src/util/require.h"

namespace s2c2::coding {

EncodedPartition::EncodedPartition(linalg::Matrix dense)
    : dense_(std::move(dense)) {}

EncodedPartition::EncodedPartition(linalg::CsrMatrix sparse)
    : sparse_(std::move(sparse)) {}

std::size_t EncodedPartition::rows() const noexcept {
  return sparse_ ? sparse_->rows() : dense_->rows();
}

std::size_t EncodedPartition::cols() const noexcept {
  return sparse_ ? sparse_->cols() : dense_->cols();
}

std::size_t EncodedPartition::storage_bytes() const noexcept {
  if (sparse_) {
    // values + column indices + row pointers.
    return sparse_->nnz() * (sizeof(double) + sizeof(std::size_t)) +
           (sparse_->rows() + 1) * sizeof(std::size_t);
  }
  return dense_->size() * sizeof(double);
}

void EncodedPartition::matvec_rows(std::size_t r0, std::size_t r1,
                                   std::span<const double> x,
                                   std::span<double> y) const {
  S2C2_REQUIRE(r0 <= r1 && r1 <= rows(), "matvec_rows range out of bounds");
  S2C2_REQUIRE(y.size() == r1 - r0, "matvec_rows output size mismatch");
  if (sparse_) {
    S2C2_REQUIRE(x.size() == sparse_->cols(), "matvec_rows x size mismatch");
    linalg::kernels::csr_matvec(sparse_->row_ptr().data() + r0, r1 - r0,
                                sparse_->col_idx().data(),
                                sparse_->values().data(), x.data(), y.data());
    return;
  }
  S2C2_REQUIRE(x.size() == dense_->cols(), "matvec_rows x size mismatch");
  const std::size_t cols = dense_->cols();
  linalg::kernels::dense_matvec(dense_->data().data() + r0 * cols, r1 - r0,
                                cols, x.data(), y.data());
}

void EncodedPartition::matmat_rows(std::size_t r0, std::size_t r1,
                                   std::span<const double> x,
                                   std::size_t width,
                                   std::span<double> y) const {
  S2C2_REQUIRE(width > 0, "matmat_rows: width must be >= 1");
  S2C2_REQUIRE(r0 <= r1 && r1 <= rows(), "matmat_rows range out of bounds");
  S2C2_REQUIRE(y.size() == (r1 - r0) * width,
               "matmat_rows output size mismatch");
  if (sparse_) {
    S2C2_REQUIRE(x.size() == sparse_->cols() * width,
                 "matmat_rows x panel size mismatch");
    linalg::kernels::csr_matmat(sparse_->row_ptr().data() + r0, r1 - r0,
                                sparse_->col_idx().data(),
                                sparse_->values().data(), x.data(), width,
                                y.data());
    return;
  }
  S2C2_REQUIRE(x.size() == dense_->cols() * width,
               "matmat_rows x panel size mismatch");
  const std::size_t cols = dense_->cols();
  linalg::kernels::dense_matmat(dense_->data().data() + r0 * cols, r1 - r0,
                                cols, x.data(), width, y.data());
}

linalg::Vector EncodedPartition::matvec(std::span<const double> x) const {
  linalg::Vector y(rows());
  matvec_rows(0, rows(), x, y);
  return y;
}

MdsCode::MdsCode(std::size_t n, std::size_t k, ParityKind kind,
                 std::uint64_t seed)
    : generator_(n, k, kind, seed) {}

std::size_t MdsCode::partition_rows(std::size_t data_rows) const {
  S2C2_REQUIRE(data_rows > 0, "operator must have rows");
  return (data_rows + k() - 1) / k();
}

std::vector<EncodedPartition> MdsCode::encode(const linalg::Matrix& a) const {
  const std::size_t pr = partition_rows(a.rows());
  std::vector<EncodedPartition> parts;
  parts.reserve(n());
  for (std::size_t j = 0; j < n(); ++j) {
    linalg::Matrix part(pr, a.cols());
    for (std::size_t i = 0; i < k(); ++i) {
      const double g = generator_.coeff(j, i);
      if (g == 0.0) continue;
      const std::size_t src0 = i * pr;
      const std::size_t src1 = std::min(src0 + pr, a.rows());
      for (std::size_t r = src0; r < src1; ++r) {
        const auto src = a.row(r);
        const auto dst = part.row(r - src0);
        for (std::size_t c = 0; c < a.cols(); ++c) dst[c] += g * src[c];
      }
    }
    parts.emplace_back(std::move(part));
  }
  return parts;
}

std::vector<EncodedPartition> MdsCode::encode(
    const linalg::CsrMatrix& a) const {
  const std::size_t pr = partition_rows(a.rows());
  std::vector<EncodedPartition> parts;
  parts.reserve(n());
  for (std::size_t j = 0; j < n(); ++j) {
    if (generator_.is_systematic_row(j)) {
      const std::size_t src0 = j * pr;
      const std::size_t src1 = std::min(src0 + pr, a.rows());
      linalg::CsrMatrix block =
          src0 < a.rows() ? a.row_block(src0, src1)
                          : linalg::CsrMatrix(0, a.cols(), {});
      if (block.rows() < pr) {
        // Pad with explicit zero rows so every partition has pr rows.
        std::vector<linalg::Triplet> trips;
        trips.reserve(block.nnz());
        const auto rp = block.row_ptr();
        const auto ci = block.col_idx();
        const auto vals = block.values();
        for (std::size_t r = 0; r < block.rows(); ++r) {
          for (std::size_t p = rp[r]; p < rp[r + 1]; ++p) {
            trips.push_back({r, ci[p], vals[p]});
          }
        }
        block = linalg::CsrMatrix(pr, a.cols(), std::move(trips));
      }
      parts.emplace_back(std::move(block));
      continue;
    }
    // Parity partitions densify: sum of sparse row blocks.
    linalg::Matrix part(pr, a.cols());
    const auto row_ptr = a.row_ptr();
    const auto col_idx = a.col_idx();
    const auto values = a.values();
    for (std::size_t i = 0; i < k(); ++i) {
      const double g = generator_.coeff(j, i);
      if (g == 0.0) continue;
      const std::size_t src0 = i * pr;
      const std::size_t src1 = std::min(src0 + pr, a.rows());
      for (std::size_t r = src0; r < src1; ++r) {
        for (std::size_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
          part(r - src0, col_idx[p]) += g * values[p];
        }
      }
    }
    parts.emplace_back(std::move(part));
  }
  return parts;
}

}  // namespace s2c2::coding
