#include "src/coding/lt_code.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/linalg/matrix.h"
#include "src/util/hash.h"
#include "src/util/require.h"
#include "src/util/rng.h"

namespace s2c2::coding {

namespace {

/// Robust-soliton CDF over degrees 1..m: mu = (rho + tau) / beta with
/// rho(1) = 1/m, rho(d) = 1/(d(d-1)), spike R = c * ln(m/delta) * sqrt(m)
/// at degree m/R. Returned as cdf[d-1] = P(degree <= d).
std::vector<double> robust_soliton_cdf(std::size_t m,
                                       const RobustSolitonConfig& cfg) {
  const double md = static_cast<double>(m);
  const double r_spike =
      std::max(1.0, cfg.c * std::log(md / cfg.delta) * std::sqrt(md));
  const std::size_t kink = std::clamp<std::size_t>(
      static_cast<std::size_t>(md / r_spike), 1, m);
  std::vector<double> weight(m, 0.0);
  weight[0] = 1.0 / md;
  for (std::size_t d = 2; d <= m; ++d) {
    weight[d - 1] = 1.0 / (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  for (std::size_t d = 1; d < kink; ++d) {
    weight[d - 1] += r_spike / (static_cast<double>(d) * md);
  }
  weight[kink - 1] += r_spike * std::max(0.0, std::log(r_spike / cfg.delta)) / md;
  double total = 0.0;
  for (double w : weight) total += w;
  std::vector<double> cdf(m);
  double acc = 0.0;
  for (std::size_t d = 0; d < m; ++d) {
    acc += weight[d] / total;
    cdf[d] = acc;
  }
  cdf[m - 1] = 1.0;  // guard against rounding at the top
  return cdf;
}

/// `count` distinct sources in [0, m), ascending. Rejection-samples the
/// smaller of the set and its complement so even the rare near-full
/// degrees stay cheap.
std::vector<std::uint32_t> draw_distinct(util::Rng& rng, std::size_t count,
                                         std::size_t m) {
  const bool complement = count > m / 2;
  const std::size_t want = complement ? m - count : count;
  std::vector<bool> mark(m, false);
  std::size_t have = 0;
  while (have < want) {
    const auto s = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(m) - 1));
    if (!mark[s]) {
      mark[s] = true;
      ++have;
    }
  }
  std::vector<std::uint32_t> out;
  out.reserve(count);
  for (std::size_t s = 0; s < m; ++s) {
    if (mark[s] != complement) out.push_back(static_cast<std::uint32_t>(s));
  }
  return out;
}

}  // namespace

LtCode::LtCode(std::size_t n, std::size_t chunks_per_worker,
               std::size_t sources, std::uint64_t seed,
               RobustSolitonConfig soliton)
    : n_(n), chunks_per_worker_(chunks_per_worker), sources_(sources),
      seed_(seed) {
  S2C2_REQUIRE(n_ >= 1 && chunks_per_worker_ >= 1 && sources_ >= 1,
               "LtCode needs n, chunks_per_worker, sources >= 1");
  S2C2_REQUIRE(soliton.c > 0.0 && soliton.delta > 0.0 && soliton.delta < 1.0,
               "robust-soliton parameters out of range");
  S2C2_REQUIRE(soliton.overhead >= 0.0, "LT overhead must be >= 0");
  threshold_ = static_cast<std::size_t>(std::ceil(
      (1.0 + soliton.overhead) * static_cast<double>(sources_)));
  threshold_ = std::max(threshold_, sources_);
  S2C2_REQUIRE(threshold_ <= total_symbols(),
               "LT decode threshold exceeds the fleet's symbol budget");

  const std::vector<double> cdf = robust_soliton_cdf(sources_, soliton);
  const std::size_t total = total_symbols();
  neighbor_offsets_.assign(total + 1, 0);
  neighbor_ids_.clear();
  for (std::size_t s = 0; s < total; ++s) {
    // Per-symbol stream: the graph is a function of (seed, symbol id)
    // alone, so every consumer — cost-only cells, functional cells, any
    // shard order — sees the identical code.
    util::Rng rng(util::mix64(seed_ ^ (static_cast<std::uint64_t>(s) + 1) *
                                          0x9e3779b97f4a7c15ULL));
    const double u = rng.uniform();
    const std::size_t degree =
        static_cast<std::size_t>(
            std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin()) +
        1;
    std::vector<std::uint32_t> picks =
        draw_distinct(rng, std::min(degree, sources_), sources_);
    // Coverage anchor: symbol s always touches source s mod m, so any
    // run of >= m consecutive symbol ids — in particular the full
    // fleet's symbol set, which the stopping rule falls back to —
    // structurally covers every source. Pure soliton draws leave
    // coverage to chance, and at small geometries (a few hundred
    // symbols) an uncovered source is likely enough to strand whole
    // cells; the anchor is the Raptor-style structural fix. Replacing a
    // drawn pick (rather than appending) keeps the degree exactly as
    // sampled.
    const auto anchor = static_cast<std::uint32_t>(s % sources_);
    if (std::find(picks.begin(), picks.end(), anchor) == picks.end()) {
      picks[0] = anchor;
      std::sort(picks.begin(), picks.end());
    }
    neighbor_ids_.insert(neighbor_ids_.end(), picks.begin(), picks.end());
    neighbor_offsets_[s + 1] = static_cast<std::uint32_t>(neighbor_ids_.size());
  }
}

std::span<const std::uint32_t> LtCode::neighbors(std::size_t symbol) const {
  S2C2_REQUIRE(symbol < total_symbols(), "symbol id out of range");
  return {neighbor_ids_.data() + neighbor_offsets_[symbol],
          neighbor_offsets_[symbol + 1] - neighbor_offsets_[symbol]};
}

std::size_t LtCode::degree(std::size_t symbol) const {
  return neighbors(symbol).size();
}

LtPeelPlan LtCode::plan_for(std::span<const std::size_t> workers) const {
  S2C2_REQUIRE(std::is_sorted(workers.begin(), workers.end()) &&
                   std::adjacent_find(workers.begin(), workers.end()) ==
                       workers.end(),
               "LT responder set must be sorted and distinct");
  S2C2_REQUIRE(workers.empty() || workers.back() < n_,
               "LT responder out of range");
  const std::size_t m = sources_;
  LtPeelPlan plan;
  plan.rows = workers.size() * chunks_per_worker_;
  plan.row_symbol.reserve(plan.rows);
  for (const std::size_t w : workers) {
    for (std::size_t j = 0; j < chunks_per_worker_; ++j) {
      plan.row_symbol.push_back(
          static_cast<std::uint32_t>(symbol_id(w, j)));
    }
  }

  // Source -> incident rows (counting-sort CSR) + per-row degrees.
  std::vector<std::uint32_t> row_deg(plan.rows, 0);
  plan.src_offsets.assign(m + 1, 0);
  for (std::size_t r = 0; r < plan.rows; ++r) {
    const auto nb = neighbors(plan.row_symbol[r]);
    row_deg[r] = static_cast<std::uint32_t>(nb.size());
    plan.edges += nb.size();
    for (const std::uint32_t b : nb) ++plan.src_offsets[b + 1];
  }
  for (std::size_t b = 0; b < m; ++b) {
    plan.src_offsets[b + 1] += plan.src_offsets[b];
  }
  plan.src_rows.resize(plan.edges);
  {
    std::vector<std::uint32_t> cursor(plan.src_offsets.begin(),
                                      plan.src_offsets.end() - 1);
    for (std::size_t r = 0; r < plan.rows; ++r) {
      for (const std::uint32_t b : neighbors(plan.row_symbol[r])) {
        plan.src_rows[cursor[b]++] = static_cast<std::uint32_t>(r);
      }
    }
  }

  // Structural peeling: pop degree-1 rows, resolve their one unsolved
  // source, decrement every incident row.
  std::vector<bool> solved(m, false);
  std::vector<std::uint32_t> stack;
  for (std::size_t r = 0; r < plan.rows; ++r) {
    if (row_deg[r] == 1) stack.push_back(static_cast<std::uint32_t>(r));
  }
  std::size_t solved_count = 0;
  while (!stack.empty()) {
    const std::uint32_t r = stack.back();
    stack.pop_back();
    if (row_deg[r] != 1) continue;  // lost its last source to another step
    std::uint32_t src = 0;
    bool found = false;
    for (const std::uint32_t b : neighbors(plan.row_symbol[r])) {
      if (!solved[b]) {
        src = b;
        found = true;
        break;
      }
    }
    S2C2_CHECK(found, "degree-1 row lost its unsolved source");
    solved[src] = true;
    ++solved_count;
    plan.steps.emplace_back(r, src);
    for (std::size_t i = plan.src_offsets[src]; i < plan.src_offsets[src + 1];
         ++i) {
      const std::uint32_t r2 = plan.src_rows[i];
      if (--row_deg[r2] == 1) stack.push_back(r2);
    }
  }
  if (solved_count == m) {
    plan.decodable = true;
    return plan;
  }

  // Stalled tail: pick |tail| independent residual rows by Gaussian
  // elimination over the unsolved sources and factor that square system
  // once (inactivation-style dense fallback).
  std::vector<std::uint32_t> tail_col(m, 0);
  for (std::size_t b = 0; b < m; ++b) {
    if (!solved[b]) {
      tail_col[b] = static_cast<std::uint32_t>(plan.fallback_sources.size());
      plan.fallback_sources.push_back(static_cast<std::uint32_t>(b));
    }
  }
  const std::size_t tail = plan.fallback_sources.size();
  std::vector<std::uint32_t> candidates;
  for (std::size_t r = 0; r < plan.rows; ++r) {
    if (row_deg[r] >= 1) candidates.push_back(static_cast<std::uint32_t>(r));
  }
  if (candidates.size() < tail) return plan;  // not decodable

  linalg::Matrix work(candidates.size(), tail);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (const std::uint32_t b : neighbors(plan.row_symbol[candidates[i]])) {
      if (!solved[b]) work(i, tail_col[b]) = 1.0;
    }
  }
  std::vector<bool> taken(candidates.size(), false);
  for (std::size_t col = 0; col < tail; ++col) {
    std::size_t pivot = candidates.size();
    double best = 1e-9;  // structural rank: entries are 0/±small combos
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (!taken[i] && std::abs(work(i, col)) > best) {
        best = std::abs(work(i, col));
        pivot = i;
      }
    }
    if (pivot == candidates.size()) return plan;  // rank-deficient tail
    taken[pivot] = true;
    plan.fallback_rows.push_back(candidates[pivot]);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (taken[i] || work(i, col) == 0.0) continue;
      const double f = work(i, col) / work(pivot, col);
      for (std::size_t c2 = col; c2 < tail; ++c2) {
        work(i, c2) -= f * work(pivot, c2);
      }
    }
  }
  linalg::Matrix tail_mat(tail, tail);
  for (std::size_t i = 0; i < tail; ++i) {
    for (const std::uint32_t b :
         neighbors(plan.row_symbol[plan.fallback_rows[i]])) {
      if (!solved[b]) tail_mat(i, tail_col[b]) = 1.0;
    }
  }
  try {
    plan.tail_lu = std::make_unique<linalg::LuFactorization>(
        std::move(tail_mat));
  } catch (const std::domain_error&) {
    plan.fallback_rows.clear();
    return plan;  // numerically singular despite the structural pick
  }
  plan.decodable = true;
  return plan;
}

void LtCode::decode(const LtPeelPlan& plan, std::span<const double> symbols,
                    std::size_t values_per_symbol,
                    std::span<double> out) const {
  S2C2_REQUIRE(plan.decodable, "LT plan is not decodable");
  const std::size_t v = values_per_symbol;
  S2C2_REQUIRE(v >= 1 && symbols.size() == plan.rows * v,
               "LT decode: symbol buffer layout mismatch");
  S2C2_REQUIRE(out.size() == sources_ * v,
               "LT decode: output buffer layout mismatch");

  std::vector<double> residual(symbols.begin(), symbols.end());
  const auto subtract_from_rows = [&](std::uint32_t src) {
    const double* val = out.data() + static_cast<std::size_t>(src) * v;
    for (std::size_t i = plan.src_offsets[src]; i < plan.src_offsets[src + 1];
         ++i) {
      double* row = residual.data() + static_cast<std::size_t>(
                                          plan.src_rows[i]) * v;
      for (std::size_t c = 0; c < v; ++c) row[c] -= val[c];
    }
  };
  for (const auto& [row, src] : plan.steps) {
    const double* r = residual.data() + static_cast<std::size_t>(row) * v;
    std::copy(r, r + v, out.data() + static_cast<std::size_t>(src) * v);
    subtract_from_rows(src);
  }
  const std::size_t tail = plan.tail_size();
  if (tail > 0) {
    // Tail residuals only involve unsolved sources now; one cached LU
    // solve recovers them all.
    std::vector<double> rhs(tail * v);
    for (std::size_t i = 0; i < tail; ++i) {
      const double* r = residual.data() +
                        static_cast<std::size_t>(plan.fallback_rows[i]) * v;
      std::copy(r, r + v, rhs.data() + i * v);
    }
    plan.tail_lu->solve_inplace(std::span<double>(rhs.data(), rhs.size()), v);
    for (std::size_t i = 0; i < tail; ++i) {
      std::copy(rhs.data() + i * v, rhs.data() + (i + 1) * v,
                out.data() +
                    static_cast<std::size_t>(plan.fallback_sources[i]) * v);
    }
  }
}

}  // namespace s2c2::coding
