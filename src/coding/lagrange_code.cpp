#include "src/coding/lagrange_code.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/util/require.h"

namespace s2c2::coding {

namespace {

/// Chebyshev nodes of the first kind on [-1, 1] — `count` of them, taken
/// from a grid of `total` so α's and β's interleave without colliding.
std::vector<double> chebyshev_slice(std::size_t count, std::size_t total,
                                    std::size_t offset) {
  std::vector<double> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double idx = static_cast<double>(offset + 2 * i);
    out[i] = std::cos(std::numbers::pi * (idx + 1.0) /
                      (2.0 * static_cast<double>(total)));
  }
  return out;
}

/// ℓ_i(z) over the given points, evaluated in long double.
long double lagrange_basis(const std::vector<double>& points, std::size_t i,
                           long double z) {
  long double acc = 1.0L;
  for (std::size_t t = 0; t < points.size(); ++t) {
    if (t == i) continue;
    acc *= (z - static_cast<long double>(points[t])) /
           (static_cast<long double>(points[i]) -
            static_cast<long double>(points[t]));
  }
  return acc;
}

}  // namespace

LagrangeCode::LagrangeCode(std::size_t n, std::size_t m, std::size_t degree)
    : degree_(degree) {
  S2C2_REQUIRE(m >= 1, "need at least one data block");
  S2C2_REQUIRE(degree >= 1, "polynomial degree must be >= 1");
  S2C2_REQUIRE(n >= degree * (m - 1) + 1,
               "need n >= recovery threshold d(m-1)+1");
  // Interleave on a grid of 2*(n+m) Chebyshev nodes: β's on even slots,
  // α's on odd — all distinct, all well-spread in [-1,1].
  betas_ = chebyshev_slice(m, n + m, 0);
  alphas_ = chebyshev_slice(n, n + m, 1);
}

std::vector<linalg::Matrix> LagrangeCode::encode(
    const std::vector<linalg::Matrix>& blocks) const {
  S2C2_REQUIRE(blocks.size() == m(), "block count must equal m");
  const std::size_t rows = blocks.front().rows();
  const std::size_t cols = blocks.front().cols();
  for (const auto& b : blocks) {
    S2C2_REQUIRE(b.rows() == rows && b.cols() == cols,
                 "all blocks must share one shape");
  }
  std::vector<linalg::Matrix> encoded;
  encoded.reserve(n());
  for (std::size_t i = 0; i < n(); ++i) {
    linalg::Matrix u(rows, cols);
    for (std::size_t j = 0; j < m(); ++j) {
      const double w = static_cast<double>(
          lagrange_basis(betas_, j, static_cast<long double>(alphas_[i])));
      if (w == 0.0) continue;
      u.add_scaled(blocks[j], w);
    }
    encoded.push_back(std::move(u));
  }
  return encoded;
}

LagrangeCode::Decoder::Decoder(const LagrangeCode& code, std::size_t out_rows,
                               std::size_t num_chunks, std::size_t out_cols)
    : code_(code), num_chunks_(num_chunks), out_cols_(out_cols) {
  S2C2_REQUIRE(num_chunks >= 1, "decoder needs at least one chunk");
  S2C2_REQUIRE(out_rows % num_chunks == 0,
               "output rows must divide into chunks");
  rows_per_chunk_ = out_rows / num_chunks;
  results_.resize(num_chunks_);
}

void LagrangeCode::Decoder::add_chunk_result(std::size_t worker,
                                             std::size_t chunk,
                                             linalg::Matrix rows) {
  S2C2_REQUIRE(worker < code_.n(), "worker out of range");
  S2C2_REQUIRE(chunk < num_chunks_, "chunk out of range");
  S2C2_REQUIRE(rows.rows() == rows_per_chunk_ && rows.cols() == out_cols_,
               "chunk result shape mismatch");
  auto& slot = results_[chunk];
  for (const auto& [w, _] : slot) {
    if (w == worker) return;  // idempotent
  }
  slot.emplace_back(worker, std::move(rows));
}

bool LagrangeCode::Decoder::decodable() const {
  const std::size_t r = code_.recovery_threshold();
  return std::all_of(results_.begin(), results_.end(),
                     [r](const auto& s) { return s.size() >= r; });
}

std::vector<std::size_t> LagrangeCode::Decoder::deficient_chunks() const {
  const std::size_t r = code_.recovery_threshold();
  std::vector<std::size_t> out;
  for (std::size_t c = 0; c < num_chunks_; ++c) {
    if (results_[c].size() < r) out.push_back(c);
  }
  return out;
}

std::vector<std::size_t> LagrangeCode::Decoder::responders(
    std::size_t chunk) const {
  S2C2_REQUIRE(chunk < num_chunks_, "chunk out of range");
  std::vector<std::size_t> out;
  for (const auto& [w, _] : results_[chunk]) out.push_back(w);
  return out;
}

std::vector<linalg::Matrix> LagrangeCode::Decoder::decode() const {
  const std::size_t r = code_.recovery_threshold();
  S2C2_CHECK(decodable(), "lagrange decode before coverage");
  std::vector<linalg::Matrix> out(
      code_.m(),
      linalg::Matrix(rows_per_chunk_ * num_chunks_, out_cols_));

  for (std::size_t chunk = 0; chunk < num_chunks_; ++chunk) {
    const auto& slot = results_[chunk];
    std::vector<std::size_t> key(r);
    for (std::size_t i = 0; i < r; ++i) key[i] = slot[i].first;
    std::sort(key.begin(), key.end());

    auto it = weight_cache_.find(key);
    if (it == weight_cache_.end()) {
      // weights[j][i]: reconstruction of (f∘u)(β_j) from evaluations at
      // the responders' α's — Lagrange basis over the responder subset.
      std::vector<double> pts(r);
      for (std::size_t i = 0; i < r; ++i) pts[i] = code_.alpha(key[i]);
      std::vector<std::vector<double>> weights(code_.m(),
                                               std::vector<double>(r));
      for (std::size_t j = 0; j < code_.m(); ++j) {
        for (std::size_t i = 0; i < r; ++i) {
          weights[j][i] = static_cast<double>(lagrange_basis(
              pts, i, static_cast<long double>(code_.beta(j))));
        }
      }
      it = weight_cache_.emplace(key, std::move(weights)).first;
    }
    const auto& weights = it->second;

    for (std::size_t j = 0; j < code_.m(); ++j) {
      for (std::size_t i = 0; i < r; ++i) {
        const std::size_t worker = key[i];
        const auto found = std::find_if(
            slot.begin(), slot.end(),
            [worker](const auto& p) { return p.first == worker; });
        S2C2_CHECK(found != slot.end(), "responder disappeared");
        const linalg::Matrix& eval = found->second;
        const double w = weights[j][i];
        if (w == 0.0) continue;
        for (std::size_t rr = 0; rr < rows_per_chunk_; ++rr) {
          const auto src = eval.row(rr);
          const auto dst = out[j].row(chunk * rows_per_chunk_ + rr);
          for (std::size_t cc = 0; cc < out_cols_; ++cc) {
            dst[cc] += w * src[cc];
          }
        }
      }
    }
  }
  return out;
}

}  // namespace s2c2::coding
