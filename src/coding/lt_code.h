// Rateless LT code over row blocks — the coding layer of the `lt`
// strategy (Mallick et al., "Rateless Codes for Near-Perfect Load
// Balancing in Distributed Matrix-Vector Multiplication", PAPERS.md).
//
// The operator's rows are split into `sources` equal blocks; every worker
// stores `chunks_per_worker` *coded symbols*, each a sum of a random
// subset of source blocks drawn from the robust-soliton degree
// distribution. Unlike the MDS/polynomial codes there is no fixed k-of-n
// quorum: the master decodes as soon as the *accumulated symbol count*
// crosses the decode threshold ~ (1 + overhead) * sources and the symbols'
// bipartite graph peels, so any mix of responders contributes — the
// near-perfect load-balancing property the paper trades a small reception
// overhead for.
//
// Determinism contract: the symbol graph is a pure function of
// (seed, symbol id) via per-symbol mix64-derived RNG streams — independent
// of construction order, identical in cost-only and functional runs, and
// reproducible at any --jobs (the same contract as the harness cell
// seeds). plan_for() is RNG-free: the peel schedule and the stalled-tail
// fallback are functions of the responder set alone, so the cost model's
// cached plans and the numeric decode replay the exact same steps.
//
// Decoding: classic peeling — repeatedly find a symbol with exactly one
// unresolved source, copy its residual out, subtract from its other
// symbols. When peeling stalls before all sources resolve (no degree-1
// symbol left), the remaining *tail* is solved densely: plan_for()
// greedily selects |tail| independent residual symbols by Gaussian
// elimination and factors the tail system once (an inactivation-style
// fallback), so stalls degrade to a small LU instead of a decode failure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/linalg/lu.h"

namespace s2c2::coding {

/// Robust-soliton degree distribution mu = (rho + tau) / beta with the
/// standard (c, delta) parameterization, plus the reception overhead the
/// decode threshold budgets for. Defaults follow the LT-code literature's
/// small-block practice (c ~ 0.1, delta ~ 0.5) and Mallick et al.'s ~10%
/// overhead regime.
struct RobustSolitonConfig {
  double c = 0.1;
  double delta = 0.5;
  /// Decode threshold = ceil((1 + overhead) * sources) symbols.
  double overhead = 0.08;
};

/// A structural decode schedule for one responder set: the peel steps in
/// execution order plus the dense fallback for the stalled tail. Built
/// once per responder set by LtCode::plan_for (the DecodeContext caches
/// it); LtCode::decode replays it numerically. Rows are local indices
/// into the collected symbol buffer (responder-major, chunk-minor).
struct LtPeelPlan {
  bool decodable = false;
  std::size_t rows = 0;   // collected symbols
  std::size_t edges = 0;  // sum of collected symbol degrees
  /// Global symbol id of each collected row.
  std::vector<std::uint32_t> row_symbol;
  /// (row, source) per peel step: at that point the row's residual equals
  /// the source block.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> steps;
  /// Source -> incident local rows (CSR layout), shared by peeling and
  /// the numeric replay's subtraction sweep.
  std::vector<std::uint32_t> src_offsets;
  std::vector<std::uint32_t> src_rows;
  /// Stalled-tail fallback: tail_lu solves the |fallback_sources|-square
  /// residual system over the selected independent rows. Empty vectors
  /// and a null tail_lu when peeling completes on its own.
  std::vector<std::uint32_t> fallback_rows;
  std::vector<std::uint32_t> fallback_sources;
  std::unique_ptr<linalg::LuFactorization> tail_lu;

  [[nodiscard]] std::size_t tail_size() const noexcept {
    return fallback_sources.size();
  }
};

class LtCode {
 public:
  /// `n` workers each holding `chunks_per_worker` coded symbols over
  /// `sources` source blocks. Requires decode_threshold() <= total
  /// symbols (otherwise no responder set could ever decode).
  LtCode(std::size_t n, std::size_t chunks_per_worker, std::size_t sources,
         std::uint64_t seed, RobustSolitonConfig soliton = {});

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t chunks_per_worker() const noexcept {
    return chunks_per_worker_;
  }
  [[nodiscard]] std::size_t sources() const noexcept { return sources_; }
  [[nodiscard]] std::size_t total_symbols() const noexcept {
    return n_ * chunks_per_worker_;
  }
  /// Accumulated symbols needed before a decode is attempted.
  [[nodiscard]] std::size_t decode_threshold() const noexcept {
    return threshold_;
  }
  /// Smallest responder count whose symbols can reach the threshold.
  [[nodiscard]] std::size_t min_workers() const noexcept {
    return (threshold_ + chunks_per_worker_ - 1) / chunks_per_worker_;
  }

  /// Worker w's j-th symbol (j < chunks_per_worker).
  [[nodiscard]] std::size_t symbol_id(std::size_t worker,
                                      std::size_t chunk) const noexcept {
    return worker * chunks_per_worker_ + chunk;
  }
  /// Source blocks summed into `symbol`, ascending.
  [[nodiscard]] std::span<const std::uint32_t> neighbors(
      std::size_t symbol) const;
  [[nodiscard]] std::size_t degree(std::size_t symbol) const;

  /// Structural peel schedule over the full symbol batches of `workers`
  /// (sorted, distinct). plan.decodable is false when the accumulated
  /// symbols cannot determine every source even with the dense fallback.
  [[nodiscard]] LtPeelPlan plan_for(std::span<const std::size_t> workers) const;

  /// Numeric replay of `plan`: `symbols` holds plan.rows coded symbols of
  /// `values_per_symbol` values each (row-major, same row order the plan
  /// was built over); writes the sources() decoded blocks into `out`
  /// (sources() * values_per_symbol, row-major). Requires plan.decodable.
  void decode(const LtPeelPlan& plan, std::span<const double> symbols,
              std::size_t values_per_symbol, std::span<double> out) const;

 private:
  std::size_t n_ = 0;
  std::size_t chunks_per_worker_ = 0;
  std::size_t sources_ = 0;
  std::size_t threshold_ = 0;
  std::uint64_t seed_ = 0;
  /// Symbol graph, CSR over symbols: neighbors of symbol s are
  /// neighbor_ids_[neighbor_offsets_[s] .. neighbor_offsets_[s + 1]).
  std::vector<std::uint32_t> neighbor_offsets_;
  std::vector<std::uint32_t> neighbor_ids_;
};

}  // namespace s2c2::coding
