// A coded matrix-vector job: the encoded operator plus its chunk geometry.
//
// Construction encodes once (the paper's one-time setup cost, excluded from
// per-iteration latencies) and the job is then reused across iterations —
// the whole point of S2C2 is that re-balancing work needs **no data
// movement** because every worker already stores an encoded partition.
//
// Two modes:
//  * functional — real operator encoded; compute_chunk() runs the actual
//    kernels so decode correctness is verifiable end to end;
//  * cost-only  — dimensions only; engines simulate latency shapes at
//    scales where running the real kernels would be pointless.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "src/coding/chunked_decoder.h"
#include "src/coding/mds_code.h"
#include "src/core/strategy_config.h"

namespace s2c2::core {

class CodedMatVecJob {
 public:
  /// Functional job over a dense operator.
  CodedMatVecJob(const linalg::Matrix& a, std::size_t n, std::size_t k,
                 std::size_t chunks_per_partition,
                 coding::ParityKind parity = coding::ParityKind::kGaussian);

  /// Functional job over a sparse operator.
  CodedMatVecJob(const linalg::CsrMatrix& a, std::size_t n, std::size_t k,
                 std::size_t chunks_per_partition,
                 coding::ParityKind parity = coding::ParityKind::kGaussian);

  /// Cost-only job: no data, latency simulation only.
  static CodedMatVecJob cost_only(std::size_t data_rows, std::size_t data_cols,
                                  std::size_t n, std::size_t k,
                                  std::size_t chunks_per_partition);

  [[nodiscard]] std::size_t n() const { return code_.n(); }
  [[nodiscard]] std::size_t k() const { return code_.k(); }
  [[nodiscard]] std::size_t data_rows() const { return data_rows_; }
  [[nodiscard]] std::size_t data_cols() const { return data_cols_; }
  [[nodiscard]] std::size_t partition_rows() const { return partition_rows_; }
  [[nodiscard]] std::size_t chunks_per_partition() const { return chunks_; }
  [[nodiscard]] std::size_t rows_per_chunk() const {
    return partition_rows_ / chunks_;
  }
  [[nodiscard]] bool functional() const { return !partitions_.empty(); }
  [[nodiscard]] const coding::GeneratorMatrix& generator() const {
    return code_.generator();
  }

  /// Worker-side kernel: values of partition `worker`, chunk `chunk`, times x.
  [[nodiscard]] std::vector<double> compute_chunk(
      std::size_t worker, std::size_t chunk, std::span<const double> x) const;

  /// Block worker-side kernel: chunk rows of partition `worker` times a
  /// data_cols x b panel X (row-major). Returns rows_per_chunk x b values
  /// row-major; column j is bitwise compute_chunk on column j of X.
  [[nodiscard]] std::vector<double> compute_chunk_block(
      std::size_t worker, std::size_t chunk, const linalg::Matrix& x) const;

  /// Unified fill-style kernel: writes the chunk's rows_per_chunk x width
  /// row-major values for the data_cols x width panel `x_panel` straight
  /// into `out` (e.g. a decoder's stage_chunk span) — the hot path's
  /// zero-copy, zero-allocation form. width == 1 is bitwise compute_chunk;
  /// width > 1 bitwise compute_chunk_block.
  void compute_chunk_into(std::size_t worker, std::size_t chunk,
                          std::span<const double> x_panel, std::size_t width,
                          std::span<double> out) const;

  /// Fresh decoder wired to this job's geometry, carrying `width` RHS
  /// values per computed row (width = b of the round's panel). Pass a
  /// DecodeContext built over generator() to reuse cached responder-set
  /// factorizations across rounds (engines do); null gives the decoder a
  /// private context.
  [[nodiscard]] coding::ChunkedDecoder make_decoder(
      coding::DecodeContext* context = nullptr, std::size_t width = 1) const;

  /// Trims a decoded (k * partition_rows) x 1 result to the original rows.
  [[nodiscard]] linalg::Vector trim(const linalg::Matrix& decoded) const;

  /// Trims a decoded (k * partition_rows) x b block to data_rows x b.
  [[nodiscard]] linalg::Matrix trim_block(const linalg::Matrix& decoded) const;

  /// Fill-style trims: identical results into caller-owned storage whose
  /// capacity survives across rounds (zero-allocation steady state).
  void trim_into(const linalg::Matrix& decoded, linalg::Vector& y) const;
  void trim_block_into(const linalg::Matrix& decoded,
                       linalg::Matrix& y_block) const;

  // ---- cost model ----
  // All per-round charges scale linearly in the RHS block width b: the
  // master ships b columns down, every chunk response carries b values per
  // row, and each worker runs b dot products per row. width = 1 is the
  // classic single-RHS round.
  [[nodiscard]] std::size_t x_bytes(std::size_t width = 1) const {
    return data_cols_ * width * 8;
  }
  [[nodiscard]] std::size_t chunk_result_bytes(std::size_t width = 1) const {
    return rows_per_chunk() * width * 8;
  }
  [[nodiscard]] double chunk_flops(std::size_t width = 1) const;
  /// Storage a worker needs for its partition, in bytes (Fig 3).
  [[nodiscard]] std::size_t partition_bytes(std::size_t worker) const;

 private:
  CodedMatVecJob(std::size_t data_rows, std::size_t data_cols, std::size_t n,
                 std::size_t k, std::size_t chunks);

  coding::MdsCode code_;
  std::size_t data_rows_ = 0;
  std::size_t data_cols_ = 0;
  std::size_t partition_rows_ = 0;  // padded to a multiple of chunks_
  std::size_t chunks_ = 0;
  std::vector<coding::EncodedPartition> partitions_;  // empty in cost-only
};

}  // namespace s2c2::core
