// Registry-driven strategy-engine construction — the one way every
// consumer (harness cells, job driver, report, examples, benches, CLIs)
// builds an engine from a StrategyKind.
//
//   EngineParams p;
//   p.cluster = spec; p.k = k; p.dense = &a; ...
//   std::unique_ptr<StrategyEngine> e = make_engine(StrategyKind::kS2C2,
//                                                   std::move(p));
//
// EngineParams is the superset of what the built-in strategies need; each
// factory reads its slice and ignores the rest (the generated strategy
// table in docs/REPRODUCTION.md documents capabilities per kind). The
// registry seeds itself with the built-in families on first use — a
// function-local registry rather than static-initializer
// self-registration, which a static library's linker would silently drop
// — and register_engine_factory lets downstream strategies plug in
// without touching a single switch ladder. The rateless LT and adaptive
// gradient coding engines (lt_engine.h, agc_engine.h) entered exactly
// that way: a class + a registration, proven against the cross-engine
// invariants in tests/engine_conformance_test.cpp.
#pragma once

#include <functional>
#include <memory>

#include "src/core/agc_engine.h"
#include "src/core/engine.h"
#include "src/core/lt_engine.h"
#include "src/core/overdecomp_engine.h"
#include "src/core/poly_engine.h"
#include "src/core/replication_engine.h"
#include "src/core/strategy_engine.h"
#include "src/linalg/sparse.h"

namespace s2c2::core {

/// Construction inputs for any strategy. Operator pointers are borrowed:
/// the matrix must outlive the engine (the coded engines copy what they
/// encode; the uncoded baselines keep a direct-multiply closure over it).
struct EngineParams {
  ClusterSpec cluster;

  /// Functional operator — at most one of dense/sparse. When both are
  /// null the engine runs cost-only from `rows` x `cols`.
  const linalg::Matrix* dense = nullptr;
  const linalg::CsrMatrix* sparse = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;

  /// Coded-strategy knobs (MDS parameter k, chunk granularity, §4.3
  /// timeout, basic-S2C2 straggler threshold, poly block split).
  std::size_t k = 0;
  std::size_t chunks_per_partition = 24;
  double timeout_factor = 1.15;
  double straggler_threshold = 0.5;
  std::size_t a_blocks = 3;

  /// Speed source for prediction-capable strategies: a trained predictor,
  /// or oracle_speeds to read the true trace speed at round start.
  bool oracle_speeds = false;
  std::unique_ptr<predict::SpeedPredictor> predictor;

  /// Scale predictions by health-monitor degradation factors (coded
  /// engines only; see EngineConfig::health_informed).
  bool health_informed = false;

  /// Baseline-specific knobs.
  ReplicationConfig replication;
  OverDecompConfig overdecomp;

  /// Rateless-LT knobs (kLt): deterministic symbol-graph seed plus the
  /// robust-soliton / decode-overhead parameters. The harness derives
  /// code_seed from the cell/job salt the same way it salts replication
  /// placement.
  std::uint64_t code_seed = 0x5eedc0deULL;
  coding::RobustSolitonConfig soliton;

  /// Intra-round parallelism width, applied to every constructed engine
  /// via StrategyEngine::set_inner_jobs (bitwise-identical results at any
  /// setting; see that method). 1 = serial rounds (default, preserves the
  /// allocation-free steady state); 0 = hardware threads.
  std::size_t inner_jobs = 1;

  [[nodiscard]] std::size_t op_rows() const {
    return dense != nullptr ? dense->rows()
                            : (sparse != nullptr ? sparse->rows() : rows);
  }
  [[nodiscard]] std::size_t op_cols() const {
    return dense != nullptr ? dense->cols()
                            : (sparse != nullptr ? sparse->cols() : cols);
  }
};

using EngineFactory =
    std::function<std::unique_ptr<StrategyEngine>(EngineParams)>;

/// Builds an engine for `kind`. Throws std::invalid_argument when no
/// factory is registered for the kind.
[[nodiscard]] std::unique_ptr<StrategyEngine> make_engine(StrategyKind kind,
                                                          EngineParams params);

/// Registers (or replaces) the factory for a kind. The built-in kinds are
/// pre-registered; use this to plug in new strategies.
void register_engine_factory(StrategyKind kind, EngineFactory factory);

/// The currently registered factory for a kind (empty when none) —
/// lets callers that temporarily override a binding restore it.
[[nodiscard]] EngineFactory engine_factory(StrategyKind kind);

/// Kinds currently constructible through make_engine, in enum order.
[[nodiscard]] std::vector<StrategyKind> registered_strategies();

}  // namespace s2c2::core
