#include "src/core/strategy_config.h"

#include <stdexcept>

namespace s2c2::core {

ClusterSpec ClusterSpec::uniform(std::size_t n, double speed) {
  ClusterSpec spec;
  spec.traces.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    spec.traces.push_back(sim::SpeedTrace::constant(speed));
  }
  return spec;
}

const char* strategy_name(StrategyKind s) {
  switch (s) {
    case StrategyKind::kS2C2:
      return "s2c2";
    case StrategyKind::kS2C2Basic:
      return "s2c2-basic";
    case StrategyKind::kMds:
      return "mds";
    case StrategyKind::kPoly:
      return "poly";
    case StrategyKind::kPolyConventional:
      return "poly-conventional";
    case StrategyKind::kReplication:
      return "replication";
    case StrategyKind::kOverDecomp:
      return "overdecomp";
    case StrategyKind::kLt:
      return "lt";
    case StrategyKind::kAgc:
      return "agc";
  }
  return "unknown";
}

StrategyKind parse_strategy(const std::string& name) {
  for (const StrategyKind s : all_strategy_kinds()) {
    if (name == strategy_name(s)) return s;
  }
  throw std::invalid_argument("unknown strategy: " + name);
}

std::vector<StrategyKind> all_strategy_kinds() {
  return {StrategyKind::kS2C2,        StrategyKind::kS2C2Basic,
          StrategyKind::kMds,         StrategyKind::kPoly,
          StrategyKind::kPolyConventional, StrategyKind::kReplication,
          StrategyKind::kOverDecomp,  StrategyKind::kLt,
          StrategyKind::kAgc};
}

bool strategy_uses_predictions(StrategyKind s) {
  switch (s) {
    case StrategyKind::kS2C2:
    case StrategyKind::kS2C2Basic:
    case StrategyKind::kPoly:
    case StrategyKind::kOverDecomp:
    case StrategyKind::kAgc:
      return true;
    case StrategyKind::kMds:
    case StrategyKind::kPolyConventional:
    case StrategyKind::kReplication:
    case StrategyKind::kLt:
      return false;
  }
  return false;
}

bool strategy_is_coded(StrategyKind s) {
  switch (s) {
    case StrategyKind::kS2C2:
    case StrategyKind::kS2C2Basic:
    case StrategyKind::kMds:
    case StrategyKind::kPoly:
    case StrategyKind::kPolyConventional:
    case StrategyKind::kLt:
    case StrategyKind::kAgc:
      return true;
    case StrategyKind::kReplication:
    case StrategyKind::kOverDecomp:
      return false;
  }
  return false;
}

bool strategy_uses_recovery(StrategyKind s) {
  switch (s) {
    case StrategyKind::kS2C2:
    case StrategyKind::kS2C2Basic:
    case StrategyKind::kPoly:
    case StrategyKind::kAgc:
      return true;
    case StrategyKind::kMds:
    case StrategyKind::kPolyConventional:
    case StrategyKind::kReplication:
    case StrategyKind::kOverDecomp:
    case StrategyKind::kLt:
      return false;
  }
  return false;
}

bool strategy_tolerates_byzantine(StrategyKind s) {
  // Redundant coded responses are what the residual check verifies
  // against — but the rateless code stops at a bare symbol threshold
  // with no over-provisioned verification margin, so it opts out.
  return strategy_is_coded(s) && s != StrategyKind::kLt;
}

bool strategy_supports_block_rounds(StrategyKind s) {
  switch (s) {
    case StrategyKind::kS2C2:
    case StrategyKind::kS2C2Basic:
    case StrategyKind::kMds:
    case StrategyKind::kReplication:
    case StrategyKind::kOverDecomp:
    case StrategyKind::kLt:
    case StrategyKind::kAgc:
      return true;
    case StrategyKind::kPoly:
    case StrategyKind::kPolyConventional:
      return false;
  }
  return false;
}

double decode_flops(std::size_t k, std::size_t values, std::size_t groups) {
  const double kd = static_cast<double>(k);
  const double lu = 2.0 / 3.0 * kd * kd * kd * static_cast<double>(groups);
  const double solves = 2.0 * kd * kd * static_cast<double>(values) / kd;
  return lu + solves;
}

}  // namespace s2c2::core
