#include "src/core/strategy_config.h"

namespace s2c2::core {

ClusterSpec ClusterSpec::uniform(std::size_t n, double speed) {
  ClusterSpec spec;
  spec.traces.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    spec.traces.push_back(sim::SpeedTrace::constant(speed));
  }
  return spec;
}

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kMdsConventional:
      return "mds-conventional";
    case Strategy::kS2C2Basic:
      return "s2c2-basic";
    case Strategy::kS2C2General:
      return "s2c2-general";
  }
  return "unknown";
}

double decode_flops(std::size_t k, std::size_t values, std::size_t groups) {
  const double kd = static_cast<double>(k);
  const double lu = 2.0 / 3.0 * kd * kd * kd * static_cast<double>(groups);
  const double solves = 2.0 * kd * kd * static_cast<double>(values) / kd;
  return lu + solves;
}

}  // namespace s2c2::core
