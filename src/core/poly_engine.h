// Polynomial-coded Hessian execution with and without S2C2 (paper §5 and
// §7.2.3): H = Aᵀ diag(x) A over n workers, a x a block decomposition,
// decode from any a² = required_responses() workers per output row.
//
// The kPoly strategy allocates output-row chunks proportionally to
// predicted speeds with coverage exactly a² (the same allocator as the
// MDS case — the whole point of §5 is that S2C2 is code-agnostic), plus
// the same timeout/reassignment recovery. kPolyConventional assigns every
// worker its full output and waits for the fastest a².
//
// The round lifecycle lives in core::RoundExecutor; this class is reduced
// to the polynomial-coding ingredients: the a² quorum, the fixed
// diag(x)·B̃ pre-scaling in the cost model (a per-round cost S2C2 cannot
// squeeze), the Vandermonde decode subsets/context, and the numeric
// Hessian decode. The master's decode is a dense a²-system solve over
// every Hessian entry — both reasons measured poly gains trail the ideal
// (n - a²)/a². Construct directly, or through make_engine in
// engine_factory.h.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/coding/poly_code.h"
#include "src/core/round_executor.h"
#include "src/core/strategy_config.h"

namespace s2c2::core {

struct PolyEngineConfig {
  /// kPoly (S2C2 allocation + §4.3 recovery) or kPolyConventional.
  StrategyKind strategy = StrategyKind::kPoly;
  std::size_t chunks_per_partition = 24;
  double timeout_factor = 1.15;
  bool oracle_speeds = false;
  /// Scale predictions by the health monitor's degradation factor
  /// (telemetry/health_monitor.h). Changes allocations, so the pinned
  /// honest-cluster fingerprints keep it off.
  bool health_informed = false;
};

class PolyCodedEngine final : public RoundExecutor {
 public:
  /// Functional: encodes `a_mat` (N x d). Cost-only: pass std::nullopt with
  /// explicit dims.
  PolyCodedEngine(std::optional<linalg::Matrix> a_mat, std::size_t n_rows,
                  std::size_t d_cols, std::size_t a_blocks, ClusterSpec spec,
                  PolyEngineConfig config,
                  std::unique_ptr<predict::SpeedPredictor> predictor =
                      nullptr);

  [[nodiscard]] const coding::PolyCode& code() const noexcept { return code_; }

  /// Decode telemetry across rounds (structured Vandermonde solves via
  /// coding/decode_context.h; cost model in docs/PERFORMANCE.md).
  [[nodiscard]] coding::DecodeContextStats decode_stats() const override {
    return decode_ctx_.stats();
  }

 protected:
  // RoundExecutor hooks (see round_executor.h for the lifecycle).
  [[nodiscard]] std::size_t quorum() const override {
    return code_.required_responses();  // a²
  }
  [[nodiscard]] std::size_t x_bytes() const override { return n_rows_ * 8; }
  [[nodiscard]] std::size_t chunk_result_bytes() const override {
    return rows_per_chunk_ * out_cols_ * 8;
  }
  [[nodiscard]] double dispatch_work(std::size_t chunks) const override {
    return pre_work_ + static_cast<double>(chunks) * chunk_work_;
  }
  [[nodiscard]] double accounted_work(std::size_t chunks) const override {
    return pre_work_ + static_cast<double>(chunks) * chunk_work_;
  }
  [[nodiscard]] double recovery_chunk_work() const override {
    return chunk_work_;
  }
  [[nodiscard]] bool recovery_survives_death() const override { return false; }
  [[nodiscard]] const char* quorum_failure_error() const override {
    return "cluster failure: fewer than a^2 responders";
  }
  [[nodiscard]] std::string recovery_infeasible_error(
      const char* what) const override {
    // An infeasible recovery is a cluster failure (data for the scenario
    // matrix), not a caller error.
    return std::string("cluster failure: poly recovery infeasible: ") + what;
  }
  [[nodiscard]] const char* recovery_death_error() const override {
    return "cluster failure during poly recovery";
  }
  [[nodiscard]] coding::DecodeContext& decode_context() override {
    return decode_ctx_;
  }
  void decode_subsets(const RoundLedger& ledger,
                      std::vector<std::vector<std::size_t>>& out)
      const override;
  [[nodiscard]] std::size_t decode_values_per_chunk() const override {
    return rows_per_chunk_ * out_cols_;
  }
  [[nodiscard]] bool functional_round(
      std::span<const double> x) const override {
    return !operands_.empty() && !x.empty();
  }
  void decode_product(RoundResult& result, const RoundLedger& ledger,
                      std::span<const double> x) override;
  [[nodiscard]] AccountingStyle accounting_style() const override {
    return AccountingStyle::kComputeOnly;
  }

 private:
  coding::PolyCode code_;
  /// Persists across rounds; Vandermonde backend over code_'s points.
  coding::DecodeContext decode_ctx_;
  std::size_t n_rows_;          // N
  std::size_t d_cols_;          // d
  std::size_t out_rows_;        // d / a (padded to chunk multiple)
  std::size_t out_cols_;        // d / a
  std::size_t rows_per_chunk_;  // out_rows_ / chunks_per_partition
  double pre_work_ = 0.0;   // fixed diag(x)·B̃ scaling per round
  double chunk_work_ = 0.0;  // per-chunk block-product work
  std::vector<coding::PolyCode::WorkerOperands> operands_;  // functional
};

}  // namespace s2c2::core
