// Polynomial-coded Hessian execution with and without S2C2 (paper §5 and
// §7.2.3): H = Aᵀ diag(x) A over n workers, a x a block decomposition,
// decode from any a² = required_responses() workers per output row.
//
// The S2C2 variant allocates output-row chunks proportionally to predicted
// speeds with coverage exactly a² (the same allocator as the MDS case —
// the whole point of §5 is that S2C2 is code-agnostic), plus the same
// timeout/reassignment recovery. The conventional variant assigns every
// worker its full output and waits for the fastest a².
//
// Cost model notes mirrored from the paper: the diag(x)·B̃ scaling is a
// fixed per-round cost S2C2 cannot squeeze, and the master's decode is a
// dense a²-system solve over every Hessian entry — both reasons measured
// poly gains trail the ideal (n - a²)/a².
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "src/coding/poly_code.h"
#include "src/core/engine.h"
#include "src/core/strategy_config.h"
#include "src/predict/predictors.h"

namespace s2c2::core {

struct PolyEngineConfig {
  bool use_s2c2 = true;  // false = conventional polynomial coding
  std::size_t chunks_per_partition = 24;
  double timeout_factor = 1.15;
  bool oracle_speeds = false;
};

struct PolyRoundResult {
  sim::RoundStats stats;
  std::optional<linalg::Matrix> hessian;  // functional mode
};

class PolyCodedEngine {
 public:
  /// Functional: encodes `a_mat` (N x d). Cost-only: pass std::nullopt with
  /// explicit dims.
  PolyCodedEngine(std::optional<linalg::Matrix> a_mat, std::size_t n_rows,
                  std::size_t d_cols, std::size_t a_blocks, ClusterSpec spec,
                  PolyEngineConfig config,
                  std::unique_ptr<predict::SpeedPredictor> predictor =
                      nullptr);

  /// One Hessian evaluation round; pass x (size N) for a functional decode.
  PolyRoundResult run_round(std::span<const double> x = {});
  std::vector<PolyRoundResult> run_rounds(std::size_t rounds);

  [[nodiscard]] sim::Time now() const noexcept { return now_; }
  [[nodiscard]] const sim::Accounting& accounting() const noexcept {
    return accounting_;
  }
  [[nodiscard]] const coding::PolyCode& code() const noexcept { return code_; }
  [[nodiscard]] double timeout_rate() const;

  /// Decode telemetry across rounds (structured Vandermonde solves via
  /// coding/decode_context.h; cost model in docs/PERFORMANCE.md).
  [[nodiscard]] const coding::DecodeContextStats& decode_stats()
      const noexcept {
    return decode_ctx_.stats();
  }

 private:
  coding::PolyCode code_;
  /// Persists across rounds; Vandermonde backend over code_'s points.
  coding::DecodeContext decode_ctx_;
  std::size_t n_rows_;   // N
  std::size_t d_cols_;   // d
  std::size_t out_rows_; // d / a (padded to chunk multiple)
  std::size_t out_cols_; // d / a
  ClusterSpec spec_;
  PolyEngineConfig config_;
  std::unique_ptr<predict::SpeedPredictor> predictor_;
  std::vector<coding::PolyCode::WorkerOperands> operands_;  // functional
  sim::Accounting accounting_;
  sim::Time now_ = 0.0;
  std::size_t rounds_run_ = 0;
  std::size_t timeouts_ = 0;
};

}  // namespace s2c2::core
