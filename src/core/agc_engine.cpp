#include "src/core/agc_engine.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/util/require.h"
#include "src/util/stats.h"

namespace s2c2::core {

AdaptiveGradientEngine::AdaptiveGradientEngine(
    CodedMatVecJob job, ClusterSpec spec, EngineConfig config,
    std::unique_ptr<predict::SpeedPredictor> predictor)
    : CodedComputeEngine(std::move(job), std::move(spec), config,
                         std::move(predictor)) {
  S2C2_REQUIRE(config.strategy == StrategyKind::kAgc,
               "AdaptiveGradientEngine runs the agc strategy only");
}

sched::Allocation AdaptiveGradientEngine::allocate(
    std::span<const double> speeds) const {
  const std::size_t n = spec_.num_workers();
  const std::size_t q = collection_quorum();
  const std::size_t c = chunks_per_partition();

  // Per-round redundancy: one extra full partition per predicted
  // straggler (Cao et al.'s rule with B = e), capped at the fleet.
  const double med = util::median(speeds);
  std::size_t predicted_stragglers = 0;
  for (const double s : speeds) {
    if (s < straggler_threshold() * med) ++predicted_stragglers;
  }
  const std::size_t active = std::min(n, q + predicted_stragglers);

  // Fastest `active` workers by predicted speed. stable_sort keeps the
  // index tie-break deterministic, which is also what makes the oracle /
  // straggler-free case collapse to MDS's fastest-quorum exactly.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return speeds[a] > speeds[b];
                   });
  std::vector<bool> excluded(n, true);
  for (std::size_t i = 0; i < active; ++i) excluded[order[i]] = false;
  // Equal shares over `active` live workers at quorum `active` hand every
  // chosen worker one full partition (count == c).
  return sched::basic_s2c2_allocation(excluded, active, c);
}

}  // namespace s2c2::core
