#include "src/core/agc_engine.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/util/require.h"
#include "src/util/stats.h"

namespace s2c2::core {

AdaptiveGradientEngine::AdaptiveGradientEngine(
    CodedMatVecJob job, ClusterSpec spec, EngineConfig config,
    std::unique_ptr<predict::SpeedPredictor> predictor)
    : CodedComputeEngine(std::move(job), std::move(spec), config,
                         std::move(predictor)) {
  S2C2_REQUIRE(config.strategy == StrategyKind::kAgc,
               "AdaptiveGradientEngine runs the agc strategy only");
}

void AdaptiveGradientEngine::allocate_into(std::span<const double> speeds,
                                           sched::Allocation& out) {
  const std::size_t n = spec_.num_workers();
  const std::size_t q = collection_quorum();
  const std::size_t c = chunks_per_partition();

  // Per-round redundancy: one extra full partition per predicted
  // straggler (Cao et al.'s rule with B = e), capped at the fleet.
  const double med = util::median_scratch(speeds, median_scratch_);
  std::size_t predicted_stragglers = 0;
  for (const double s : speeds) {
    if (s < straggler_threshold() * med) ++predicted_stragglers;
  }
  const std::size_t active = std::min(n, q + predicted_stragglers);

  // Fastest `active` workers by predicted speed. The explicit index
  // tie-break makes the comparator a strict total order, so the result is
  // unique — identical to a stable sort on descending speed — while
  // std::sort (unlike libstdc++'s stable_sort) never heap-allocates a
  // merge buffer. Determinism is also what makes the oracle /
  // straggler-free case collapse to MDS's fastest-quorum exactly.
  order_scratch_.resize(n);
  std::iota(order_scratch_.begin(), order_scratch_.end(), std::size_t{0});
  std::sort(order_scratch_.begin(), order_scratch_.end(),
            [&](std::size_t a, std::size_t b) {
              if (speeds[a] != speeds[b]) return speeds[a] > speeds[b];
              return a < b;
            });
  excluded_scratch_.assign(n, true);
  for (std::size_t i = 0; i < active; ++i) {
    excluded_scratch_[order_scratch_[i]] = false;
  }
  // Equal shares over `active` live workers at quorum `active` hand every
  // chosen worker one full partition (count == c).
  sched::basic_s2c2_allocation_into(excluded_scratch_, active, c,
                                    alloc_scratch_, out);
}

}  // namespace s2c2::core
