#include "src/core/round_executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "src/sched/coverage.h"
#include "src/sched/reassignment.h"
#include "src/util/require.h"
#include "src/util/stats.h"

namespace s2c2::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Finite stand-in for "until forever" when integrating a trace that ends at
// zero speed (a dead worker's progress before its death).
constexpr double kFarHorizon = 1e300;

// Reshapes a nested scratch vector to `n` cleared inner vectors. Surviving
// inner vectors keep their capacity — the point of round-scoped scratch.
void resize_cleared(std::vector<std::vector<std::size_t>>& v, std::size_t n) {
  v.resize(n);
  for (auto& inner : v) inner.clear();
}

// Runs body(i) for every i in [0, n): serially when `pool` is null (the
// default inner_jobs = 1 data path, which must stay allocation-free),
// otherwise fanned out over the engine's intra-round pool. body(i) must
// only write slot-i state, so the results are bitwise identical either
// way.
template <typename Body>
void for_each_slot(util::ThreadPool* pool, std::size_t n, const Body& body) {
  if (pool == nullptr || n < 2) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  pool->parallel_for(n, body);
}
}  // namespace

RoundExecutor::RoundExecutor(StrategyKind kind, ClusterSpec spec,
                             std::unique_ptr<predict::SpeedPredictor>
                                 predictor,
                             bool oracle_speeds, double timeout_factor,
                             double straggler_threshold,
                             std::size_t chunks_per_partition,
                             bool health_informed)
    : StrategyEngine(kind, std::move(spec), std::move(predictor)),
      oracle_speeds_(oracle_speeds),
      timeout_factor_(timeout_factor),
      straggler_threshold_(straggler_threshold),
      chunks_per_partition_(chunks_per_partition),
      health_informed_(health_informed),
      health_(spec_.num_workers()) {
  ensure_predictor(oracle_speeds_);
  if (health_informed_ && !oracle_speeds_ && predictor_) {
    // Health-informed prediction: scale the inner predictor's estimate by
    // the monitor's degradation factor. Opt-in (harness robustness
    // profiles) — the wrap changes predicted speeds and therefore
    // allocations, so the pinned honest-cluster fingerprints never see it.
    predictor_ = std::make_unique<predict::HealthInformedPredictor>(
        std::move(predictor_),
        [this](std::size_t w) { return health_.prediction_scale(w); });
  }
}

std::size_t RoundExecutor::collection_quorum() const {
  const std::size_t q = quorum();
  if (!spec_.byzantine.active()) return q;
  const std::size_t n = spec_.num_workers();
  const std::size_t e = spec_.byzantine.corrupt_workers.size();
  const std::size_t margin = std::min(n - q, std::max(e + 1, 2 * e));
  return q + margin;
}

void RoundExecutor::predict_speeds(sim::Time t0, std::vector<double>& out) {
  const std::size_t n = spec_.num_workers();
  out.assign(n, 1.0);
  if (oracle_speeds_) {
    for (std::size_t w = 0; w < n; ++w) {
      out[w] = spec_.traces[w].speed_at(t0);
    }
  } else {
    for (std::size_t w = 0; w < n; ++w) {
      out[w] = predictor_->predict(w);
    }
  }
}

void RoundExecutor::allocate_into(std::span<const double> speeds,
                                  sched::Allocation& out) {
  const std::size_t n = spec_.num_workers();
  const std::size_t q = collection_quorum();
  const std::size_t c = chunks_per_partition_;
  switch (kind()) {
    case StrategyKind::kMds:
    case StrategyKind::kPolyConventional:
      sched::full_allocation_into(n, c, out);
      return;
    case StrategyKind::kS2C2Basic: {
      // Flag stragglers below threshold x median predicted speed; keep at
      // least quorum live workers by un-flagging the fastest flagged ones.
      const double med = util::median_scratch(speeds, median_scratch_);
      straggler_scratch_.assign(n, false);
      std::vector<bool>& straggler = straggler_scratch_;
      std::size_t live = 0;
      for (std::size_t w = 0; w < n; ++w) {
        straggler[w] = speeds[w] < straggler_threshold_ * med;
        if (!straggler[w]) ++live;
      }
      if (live < q) {
        flagged_scratch_.clear();
        std::vector<std::size_t>& flagged = flagged_scratch_;
        for (std::size_t w = 0; w < n; ++w) {
          if (straggler[w]) flagged.push_back(w);
        }
        std::sort(flagged.begin(), flagged.end(),
                  [&](std::size_t a, std::size_t b) {
                    return speeds[a] > speeds[b];
                  });
        for (std::size_t i = 0; live < q && i < flagged.size(); ++i) {
          straggler[flagged[i]] = false;
          ++live;
        }
      }
      sched::basic_s2c2_allocation_into(straggler, q, c, alloc_scratch_, out);
      return;
    }
    case StrategyKind::kS2C2:
    case StrategyKind::kPoly: {
      speed_scratch_.assign(speeds.begin(), speeds.end());
      std::vector<double>& s = speed_scratch_;
      std::size_t positive = 0;
      for (double v : s) {
        if (v > 0.0) ++positive;
      }
      if (positive < q) {
        // Predictor wrote off too many workers: fall back to treating all
        // of them as slow-but-alive so the allocation stays feasible; the
        // timeout path recovers if they really are dead.
        for (double& v : s) v = std::max(v, 0.05);
      }
      sched::proportional_allocation_into(s, q, c, alloc_scratch_, out);
      return;
    }
    case StrategyKind::kReplication:
    case StrategyKind::kOverDecomp:
      break;  // uncoded strategies never reach the coded executor
    case StrategyKind::kLt:
    case StrategyKind::kAgc:
      break;  // their engines override allocate_into(); no kind() default
  }
  throw std::logic_error("unreachable strategy");
}

std::size_t RoundExecutor::collection_count(
    std::span<const std::size_t> by_response, std::size_t finite) const {
  (void)by_response;
  (void)finite;
  return collection_quorum();
}

RoundExecutor::WorkerTiming RoundExecutor::simulate_worker(
    std::size_t w, sim::Time t0, std::size_t chunks,
    std::size_t width) const {
  WorkerTiming t;
  t.assigned_chunks = chunks;
  if (chunks == 0) return t;
  t.x_arrival = t0 + spec_.net.transfer_time(width * x_bytes());
  t.compute_done = spec_.traces[w].time_to_complete(
      t.x_arrival, dispatch_work(chunks) * static_cast<double>(width));
  t.response =
      t.compute_done == kInf
          ? kInf
          : t.compute_done + spec_.net.transfer_time(
                                 chunks * width * chunk_result_bytes());
  return t;
}

bool RoundExecutor::functional_block_round(const linalg::Matrix&) const {
  return false;
}

void RoundExecutor::decode_product_block(RoundResult&, const RoundLedger&,
                                         const linalg::Matrix&) {
  throw std::logic_error(std::string(strategy_name(kind())) +
                         " has no block decode");
}

RoundResult RoundExecutor::run_round(std::span<const double> x) {
  return run_round_impl(x, nullptr, 1);
}

RoundResult RoundExecutor::run_round_block(const linalg::Matrix& x_block,
                                           std::size_t width) {
  S2C2_REQUIRE(width >= 1, "block round width must be >= 1");
  S2C2_REQUIRE(x_block.empty() || x_block.cols() == width,
               "x_block must have exactly `width` columns");
  if (width == 1) {
    // cols x 1 row-major is contiguous: reuse the classic entry so b=1
    // block rounds are bitwise the single-RHS path.
    return run_round(x_block.empty() ? std::span<const double>{}
                                     : x_block.data());
  }
  S2C2_REQUIRE(supports_block_rounds(),
               "strategy does not support block rounds (width > 1)");
  return run_round_impl({}, &x_block, width);
}

RoundResult RoundExecutor::run_round_impl(std::span<const double> x,
                                          const linalg::Matrix* x_block,
                                          std::size_t width) {
  const std::size_t n = spec_.num_workers();
  const double bw = static_cast<double>(width);
  // Every coverage target below — allocation, deadline reference, wave
  // deficiency — uses the (possibly over-provisioned) collection quorum,
  // so Byzantine rounds gather the redundancy the verification pass needs
  // through the existing §4.3 machinery. Honest clusters see quorum().
  const std::size_t q = collection_quorum();
  const sim::Time t0 = now_;
  const bool functional =
      x_block ? functional_block_round(*x_block) : functional_round(x);
  const bool timeout_collection = strategy_uses_recovery(kind());
  const bool full_telemetry =
      accounting_style() == AccountingStyle::kFullTelemetry;

  // A recycled result keeps its payloads' capacity; stats are re-written
  // wholesale and every payload is either filled or reset below.
  RoundResult result = acquire_result();
  result.stats = sim::RoundStats{};
  result.stats.start = t0;
  predict_speeds(t0, result.predicted_speeds);
  allocate_into(result.predicted_speeds, round_alloc_);
  const sched::Allocation& alloc = round_alloc_;

  timing_.resize(n);
  std::vector<WorkerTiming>& timing = timing_;
  // Per-worker dispatch/compute/response simulation is embarrassingly
  // parallel: simulate_worker is const over the spec and writes only
  // slot w.
  for_each_slot(inner_pool(), n, [&](std::size_t w) {
    timing[w] = simulate_worker(w, t0, alloc.per_worker[w].count, width);
  });

  // Workers with assigned work, ordered by response time.
  assigned_.clear();
  std::vector<std::size_t>& assigned = assigned_;
  for (std::size_t w = 0; w < n; ++w) {
    if (timing[w].assigned_chunks > 0) assigned.push_back(w);
  }
  by_response_.assign(assigned.begin(), assigned.end());
  std::vector<std::size_t>& by_response = by_response_;
  std::sort(by_response.begin(), by_response.end(),
            [&](std::size_t a, std::size_t b) {
              return timing[a].response < timing[b].response;
            });
  std::size_t finite = 0;
  for (std::size_t w : by_response) {
    if (timing[w].response < kInf) ++finite;
  }
  if (finite < q) {
    throw std::runtime_error(quorum_failure_error());
  }

  // Final per-chunk responder sets (for decode-cost and functional decode),
  // per-worker reassigned chunks, and the round-completion bookkeeping.
  resize_cleared(final_chunk_workers_, alloc.chunks_per_partition);
  std::vector<std::vector<std::size_t>>& final_chunk_workers =
      final_chunk_workers_;
  resize_cleared(extra_chunks_, n);  // reassigned work
  std::vector<std::vector<std::size_t>>& extra_chunks = extra_chunks_;
  recovery_busy_.assign(n, 0.0);  // compute spent on extras
  std::vector<sim::Time>& recovery_busy = recovery_busy_;
  recovery_waste_.assign(n, 0.0);  // died mid-reassignment
  std::vector<double>& recovery_waste = recovery_waste_;
  used_.assign(n, false);
  std::vector<bool>& used = used_;
  sim::Time coverage_time = 0.0;
  sim::Time cancel_time = 0.0;  // when cancelled workers stop computing

  if (!timeout_collection) {
    // Conventional collection: the fastest responders win; everyone else
    // is cancelled when the last collected response arrives. The count is
    // the fixed collection quorum for the classic strategies; threshold
    // strategies (LT) grow it through the collection_count hook until
    // their decode closes — with the default hook this is bitwise the
    // historical fastest-quorum path.
    const std::size_t collect = collection_count(by_response, finite);
    S2C2_CHECK(collect >= 1 && collect <= finite,
               "collection_count outside the responder range");
    const std::size_t qth = by_response[collect - 1];
    coverage_time = timing[qth].response;
    cancel_time = coverage_time;
    for (std::size_t i = 0; i < collect; ++i) used[by_response[i]] = true;
    // Chunk-disjoint fill + sort: each chunk owns its responder vector.
    for_each_slot(inner_pool(), alloc.chunks_per_partition,
                  [&](std::size_t c) {
                    for (std::size_t i = 0; i < collect; ++i) {
                      final_chunk_workers[c].push_back(by_response[i]);
                    }
                    std::sort(final_chunk_workers[c].begin(),
                              final_chunk_workers[c].end());
                  });
    result.stats.timeout_fired = false;
  } else {
    // S2C2 collection with the §4.3 timeout. The reference point is the
    // quorum-th fastest response — the last one a minimal decode needs.
    // (The paper words this as the *average* of the first k; when
    // responses are balanced, as in its experiments, the two coincide.
    // Under strong speed spread the fastest workers hit the partition cap
    // and finish early, which drags the average below the balanced finish
    // time of the uncapped workers and would fire the timeout every round
    // — see docs/DESIGN.md §5 and bench_abl_timeout.)
    const double avg_q = timing[by_response[q - 1]].response - t0;
    sim::Time deadline = t0 + timeout_factor_ * avg_q;

    // Responders within the deadline; grow the set until it can cover
    // every chunk (needs at least quorum distinct workers).
    std::size_t r_count = 0;
    while (r_count < by_response.size() &&
           timing[by_response[r_count]].response <= deadline) {
      ++r_count;
    }
    if (r_count < q) {
      // Fewer than quorum beat the deadline (reachable when
      // timeout_factor < 1): the master must wait for the quorum-th
      // fastest response anyway, so the effective deadline moves there —
      // and the responder set has to be re-scanned against it, or workers
      // tied at the extended deadline stay spuriously cancelled with
      // their finished work booked as waste.
      deadline = timing[by_response[q - 1]].response;
      r_count = q;
      while (r_count < by_response.size() &&
             timing[by_response[r_count]].response <= deadline) {
        ++r_count;
      }
    }
    responded_.assign(n, false);
    std::vector<bool>& responded = responded_;
    for (std::size_t i = 0; i < r_count; ++i) {
      responded[by_response[i]] = true;
    }

    const bool all_responded = r_count == assigned.size();
    result.stats.timeout_fired = !all_responded;

    // Base coverage from responders.
    sched::chunk_workers_into(alloc, alloc_chunk_workers_);
    const std::vector<std::vector<std::size_t>>& alloc_chunk_workers =
        alloc_chunk_workers_;
    for (std::size_t c = 0; c < alloc.chunks_per_partition; ++c) {
      for (std::size_t w : alloc_chunk_workers[c]) {
        if (responded[w]) final_chunk_workers[c].push_back(w);
      }
    }
    for (std::size_t w : assigned) {
      if (responded[w]) used[w] = true;
    }
    coverage_time = timing[by_response[r_count - 1]].response;
    cancel_time = deadline;

    if (!all_responded) {
      // §4.3 recovery, generalized to cascading failures: deficient chunks
      // are planned among live responders; a recovery worker that itself
      // dies mid-reassignment is detected when the wave's timeout deadline
      // passes, its partial progress is booked as waste, and its
      // unfinished chunks are re-planned among the workers still alive
      // (strategies with recovery_survives_death() == false instead treat
      // that death as an unrecoverable cluster failure). At most n waves
      // run (every extra wave removes at least one dead worker).
      std::vector<bool> recovery_live = responded;
      // A worker is free for (more) recovery work once it sent its latest
      // response — original or a previous wave's extras.
      std::vector<sim::Time> free_at(n, 0.0);
      for (std::size_t w : assigned) free_at[w] = timing[w].response;
      sim::Time wave_issue = deadline;
      for (std::size_t wave = 0; wave < n; ++wave) {
        std::vector<std::size_t> deficient;
        std::vector<std::vector<std::size_t>> have;
        std::vector<std::size_t> needed;
        for (std::size_t c = 0; c < alloc.chunks_per_partition; ++c) {
          if (final_chunk_workers[c].size() < q) {
            deficient.push_back(c);
            have.push_back(final_chunk_workers[c]);
            needed.push_back(q - final_chunk_workers[c].size());
          }
        }
        if (deficient.empty()) break;
        std::vector<double> rspeeds(n, 0.0);
        for (std::size_t w = 0; w < n; ++w) {
          if (recovery_live[w]) {
            rspeeds[w] = std::max(result.predicted_speeds[w], 1e-3);
          }
        }
        sched::ReassignmentPlan plan;
        try {
          plan = sched::plan_reassignment(deficient, have, needed, rspeeds);
        } catch (const std::invalid_argument& e) {
          throw std::runtime_error(recovery_infeasible_error(e.what()));
        }
        result.stats.reassigned_chunks += plan.total_chunks();
        sim::Time wave_deadline = wave_issue;
        bool any_death = false;
        for (std::size_t w = 0; w < n; ++w) {
          const auto& extras = plan.chunks_per_worker[w];
          if (extras.empty()) continue;
          // The master's reassignment message costs one network latency.
          const sim::Time start =
              std::max(wave_issue, free_at[w]) + spec_.net.latency_s;
          const double work =
              static_cast<double>(extras.size()) * recovery_chunk_work() * bw;
          const sim::Time done = spec_.traces[w].time_to_complete(start, work);
          const sim::Time send = spec_.net.transfer_time(
              extras.size() * width * chunk_result_bytes());
          if (done == kInf) {
            if (!recovery_survives_death()) {
              throw std::runtime_error(recovery_death_error());
            }
            any_death = true;
            recovery_live[w] = false;
            recovery_waste[w] +=
                spec_.traces[w].work_between(start, kFarHorizon);
            // The master discovers the death when the worker's expected
            // response (at its predicted speed) times out.
            const sim::Time expected = start + work / rspeeds[w] + send;
            wave_deadline =
                std::max(wave_deadline,
                         start + timeout_factor_ * (expected - start));
            continue;
          }
          recovery_busy[w] += done - start;
          free_at[w] = done + send;
          for (std::size_t c : extras) final_chunk_workers[c].push_back(w);
          extra_chunks[w].insert(extra_chunks[w].end(), extras.begin(),
                                 extras.end());
          coverage_time = std::max(coverage_time, done + send);
        }
        if (!any_death) break;
        // No earlier wave can be issued: the master only learns about the
        // death once the wave deadline passes.
        coverage_time = std::max(coverage_time, wave_deadline);
        wave_issue = wave_deadline;
      }
      for (auto& ws : final_chunk_workers) std::sort(ws.begin(), ws.end());
    }
  }

  // ---- Byzantine verification ----
  // Corrupted responders fail the master's decode-residual check
  // (coding/chunked_decoder.h verify_chunks; docs/DESIGN.md §7). The
  // executor books the *outcome* deterministically: every response from a
  // declared-corrupt worker is stripped from chunk coverage, the worker's
  // whole assignment is re-booked as waste through the standard cancelled-
  // worker branch below, and the over-provisioned collection quorum
  // guarantees >= quorum() clean responders per chunk survive. Functional
  // rounds additionally run the numeric identification on the corrupted
  // values via ledger.byzantine_chunk_workers.
  resize_cleared(byzantine_chunk_workers_, alloc.chunks_per_partition);
  std::vector<std::vector<std::size_t>>& byzantine_chunk_workers =
      byzantine_chunk_workers_;
  if (spec_.byzantine.active()) {
    std::vector<bool> corrupt(n, false);
    for (std::size_t w : spec_.byzantine.corrupt_workers) {
      if (w < n) corrupt[w] = true;
    }
    for (std::size_t ch = 0; ch < alloc.chunks_per_partition; ++ch) {
      auto& ws = final_chunk_workers[ch];
      auto& stripped = byzantine_chunk_workers[ch];
      for (std::size_t w : ws) {
        if (corrupt[w]) stripped.push_back(w);
      }
      if (stripped.empty()) continue;
      ws.erase(
          std::remove_if(ws.begin(), ws.end(),
                         [&corrupt](std::size_t w) { return corrupt[w]; }),
          ws.end());
      ++result.stats.corrupted_chunks;
      if (ws.size() < quorum()) {
        throw std::runtime_error(
            "cluster failure: byzantine stripping left a chunk below the "
            "decode quorum");
      }
    }
    for (std::size_t w = 0; w < n; ++w) {
      if (corrupt[w] && used[w]) {
        used[w] = false;  // whole assignment lands in the waste branch below
        ++result.stats.byzantine_detected;
      }
    }
  }

  // ---- decode cost ----
  // One recovery system per maximal run of consecutive chunks sharing a
  // decode subset. The strategy's context charges the structured
  // factorization only on cache misses; repeated responder sets across
  // rounds pay solve cost alone (docs/PERFORMANCE.md).
  const RoundLedger ledger{alloc,         timing,       used,
                           final_chunk_workers, extra_chunks,
                           byzantine_chunk_workers};
  decode_subsets(ledger, subsets_);
  const std::vector<std::vector<std::size_t>>& subsets = subsets_;
  double dec_flops = 0.0;
  for (std::size_t c = 0; c < alloc.chunks_per_partition;) {
    std::size_t e = c + 1;
    while (e < alloc.chunks_per_partition && subsets[e] == subsets[c]) {
      ++e;
    }
    dec_flops += decode_context()
                     .charge(subsets[c],
                             (e - c) * decode_values_per_chunk() * width)
                     .flops;
    c = e;
  }
  const sim::Time decode_time = dec_flops / spec_.master_flops;
  result.stats.coverage = coverage_time;
  result.stats.end = coverage_time + decode_time;

  // ---- accounting ----
  for (std::size_t w : assigned) {
    const double base_work = accounted_work(timing[w].assigned_chunks) * bw;
    const double extra_work =
        static_cast<double>(extra_chunks[w].size()) * recovery_chunk_work() *
        bw;
    if (used[w]) {
      if (full_telemetry) {
        accounting_.add_useful(w, base_work);
        accounting_.add_useful(w, extra_work);
        // Busy time covers both the original window and the recovery
        // window spent on reassigned extras; otherwise utilization is
        // under-reported exactly in the rounds where the timeout fires.
        accounting_.add_busy(w, timing[w].compute_done - timing[w].x_arrival +
                                    recovery_busy[w]);
        if (recovery_waste[w] > 0.0) {
          accounting_.add_wasted(w, recovery_waste[w]);
        }
      } else {
        accounting_.add_useful(w, base_work + extra_work);
      }
    } else if (full_telemetry) {
      const double done = std::min(
          base_work,
          spec_.traces[w].work_between(timing[w].x_arrival,
                                       std::max(cancel_time,
                                                timing[w].x_arrival)));
      accounting_.add_wasted(w, done);
    } else {
      const sim::Time until = std::max(cancel_time, timing[w].x_arrival + 1e-9);
      const double done = std::min(
          base_work,
          spec_.traces[w].work_between(timing[w].x_arrival, until));
      accounting_.add_wasted(w, done);
    }
    if (full_telemetry) {
      accounting_.add_traffic(
          w,
          static_cast<double>((timing[w].assigned_chunks +
                               extra_chunks[w].size()) *
                              width * chunk_result_bytes()),
          static_cast<double>(width * x_bytes()));
    }
  }

  // ---- observed speeds -> predictor ----
  result.observed_speeds.assign(n, 0.0);
  for (std::size_t w = 0; w < n; ++w) {
    double obs;
    if (timing[w].assigned_chunks == 0) {
      // Idle worker: the master probes its current speed (basic S2C2 needs
      // fresh straggler flags even for excluded workers). Probe at coverage
      // time — every busy worker's observation reflects the pre-decode
      // round window, and training the predictor on post-decode timestamps
      // for idle workers only would skew its inputs.
      obs = spec_.traces[w].speed_at(coverage_time);
    } else if (used[w]) {
      // Realized *execution* speed over the compute window. Transfers and
      // queueing must stay out of the denominator: predictions are trace
      // speeds, and folding the network share of the round into the
      // observation would bias every sample low — inflating the §6.1
      // misprediction rate (to 100% under an exact oracle once network
      // time is a sizable round fraction) and mis-training the predictor.
      obs = accounted_work(timing[w].assigned_chunks) * bw /
            (timing[w].compute_done - timing[w].x_arrival);
    } else if (full_telemetry) {
      const sim::Time until = std::max(cancel_time, timing[w].x_arrival + 1e-9);
      obs = spec_.traces[w].work_between(timing[w].x_arrival, until) /
            (until - timing[w].x_arrival);
    } else {
      // kComputeOnly clamps the cancelled worker's progress to its
      // assigned work (a worker that finished computing but was cancelled
      // mid-transfer observes at most its assignment's speed).
      const sim::Time until = std::max(cancel_time, timing[w].x_arrival + 1e-9);
      const double done = std::min(
          accounted_work(timing[w].assigned_chunks) * bw,
          spec_.traces[w].work_between(timing[w].x_arrival, until));
      obs = done / (until - timing[w].x_arrival);
    }
    result.observed_speeds[w] = obs;
    if (obs > 0.0) {
      const double rel = std::abs(result.predicted_speeds[w] - obs) / obs;
      if (rel > 0.15) ++mispredictions_;
      ++prediction_samples_;
    }
    if (predictor_) predictor_->observe(w, obs);
  }

  // ---- health telemetry ----
  // Liveness pulses for the worker-health monitor. Unlike the predictor
  // observation above — whose window is bitwise-pinned behavior — a used
  // worker's pulse spans the *whole* window it was computing in: base plus
  // recovery work over the dispatch window plus the recovery busy time.
  // Without the recovery term the rounds where the §4.3 timeout fires
  // would inflate a recovering worker's baseline by extra/base and mask
  // real degradation (tests/health_monitor_test.cpp pins this).
  for (std::size_t w = 0; w < n; ++w) {
    if (timing[w].assigned_chunks == 0) {
      health_.record_pulse(w, result.observed_speeds[w]);
    } else if (used[w]) {
      const double extra_work =
          static_cast<double>(extra_chunks[w].size()) * recovery_chunk_work() *
          bw;
      const sim::Time window = timing[w].compute_done - timing[w].x_arrival +
                               recovery_busy[w];
      health_.record_pulse(
          w, (accounted_work(timing[w].assigned_chunks) * bw + extra_work) /
                 window);
    } else if (result.observed_speeds[w] > 0.0) {
      health_.record_pulse(w, result.observed_speeds[w]);
    } else {
      health_.record_missed(w);
    }
  }
  result.stats.degrading_workers = health_.degrading_count();

  // ---- functional decode ----
  // Payloads a recycled result carried from an earlier round are either
  // overwritten by the decode hooks (which keep their capacity) or reset
  // here so a latency-only round never returns stale data.
  if (functional) {
    if (x_block) {
      decode_product_block(result, ledger, *x_block);
    } else {
      decode_product(result, ledger, x);
    }
  } else {
    result.y.reset();
    result.y_block.reset();
    result.hessian.reset();
  }

  now_ = result.stats.end;
  ++rounds_run_;
  if (result.stats.timeout_fired) ++timeouts_;
  return result;
}

}  // namespace s2c2::core
