#include "src/core/poly_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/sched/allocation.h"
#include "src/sched/coverage.h"
#include "src/sched/reassignment.h"
#include "src/util/require.h"

namespace s2c2::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

PolyCodedEngine::PolyCodedEngine(
    std::optional<linalg::Matrix> a_mat, std::size_t n_rows,
    std::size_t d_cols, std::size_t a_blocks, ClusterSpec spec,
    PolyEngineConfig config,
    std::unique_ptr<predict::SpeedPredictor> predictor)
    : code_(spec.num_workers(), a_blocks),
      decode_ctx_(code_.make_decode_context()),
      n_rows_(n_rows),
      d_cols_(d_cols),
      spec_(std::move(spec)),
      config_(config),
      predictor_(std::move(predictor)),
      accounting_(spec_.num_workers()) {
  S2C2_REQUIRE(d_cols_ % a_blocks == 0, "d must be divisible by a");
  out_cols_ = d_cols_ / a_blocks;
  const std::size_t c = config_.chunks_per_partition;
  out_rows_ = (out_cols_ + c - 1) / c * c;  // output rows padded to chunks
  S2C2_REQUIRE(out_rows_ == out_cols_ || !a_mat.has_value(),
               "functional mode requires d/a divisible by chunk count");
  if (a_mat.has_value()) {
    S2C2_REQUIRE(a_mat->rows() == n_rows_ && a_mat->cols() == d_cols_,
                 "operand shape mismatch");
    operands_ = code_.encode(*a_mat);
  }
  if (!predictor_ && !config_.oracle_speeds) {
    predictor_ =
        std::make_unique<predict::LastValuePredictor>(spec_.num_workers());
  }
}

PolyRoundResult PolyCodedEngine::run_round(std::span<const double> x) {
  const std::size_t n = code_.n();
  const std::size_t m = code_.required_responses();  // a²
  const std::size_t c = config_.chunks_per_partition;
  const std::size_t rpc = out_rows_ / c;
  const sim::Time t0 = now_;
  const bool functional = !operands_.empty() && !x.empty();

  // Cost model: fixed diag(x)·B̃ scaling + per-chunk block-product work.
  const double pre_work = static_cast<double>(n_rows_) *
                          static_cast<double>(out_cols_) / spec_.worker_flops;
  const double chunk_work = 2.0 * static_cast<double>(rpc) *
                            static_cast<double>(n_rows_) *
                            static_cast<double>(out_cols_) /
                            spec_.worker_flops;
  const std::size_t x_bytes = n_rows_ * 8;
  const std::size_t chunk_bytes = rpc * out_cols_ * 8;

  // Allocation.
  std::vector<double> speeds(n, 1.0);
  if (config_.oracle_speeds) {
    for (std::size_t w = 0; w < n; ++w) speeds[w] = spec_.traces[w].speed_at(t0);
  } else {
    for (std::size_t w = 0; w < n; ++w) speeds[w] = predictor_->predict(w);
  }
  sched::Allocation alloc;
  if (config_.use_s2c2) {
    std::vector<double> s = speeds;
    std::size_t positive = 0;
    for (double v : s) {
      if (v > 0.0) ++positive;
    }
    if (positive < m) {
      for (double& v : s) v = std::max(v, 0.05);
    }
    alloc = sched::proportional_allocation(s, m, c);
  } else {
    alloc = sched::full_allocation(n, c);
  }

  // Worker timings.
  struct Timing {
    std::size_t chunks = 0;
    sim::Time x_arrival = 0.0;
    sim::Time compute_done = kInf;
    sim::Time response = kInf;
  };
  std::vector<Timing> timing(n);
  std::vector<std::size_t> assigned;
  for (std::size_t w = 0; w < n; ++w) {
    timing[w].chunks = alloc.per_worker[w].count;
    if (timing[w].chunks == 0) continue;
    assigned.push_back(w);
    timing[w].x_arrival = t0 + spec_.net.transfer_time(x_bytes);
    const double work =
        pre_work + static_cast<double>(timing[w].chunks) * chunk_work;
    const sim::Time done =
        spec_.traces[w].time_to_complete(timing[w].x_arrival, work);
    timing[w].compute_done = done;
    timing[w].response =
        done == kInf ? kInf
                     : done + spec_.net.transfer_time(timing[w].chunks *
                                                      chunk_bytes);
  }
  std::vector<std::size_t> by_response = assigned;
  std::sort(by_response.begin(), by_response.end(),
            [&](std::size_t a, std::size_t b) {
              return timing[a].response < timing[b].response;
            });
  std::size_t finite = 0;
  for (std::size_t w : by_response) {
    if (timing[w].response < kInf) ++finite;
  }
  if (finite < m) {
    throw std::runtime_error("cluster failure: fewer than a^2 responders");
  }

  PolyRoundResult result;
  result.stats.start = t0;
  std::vector<bool> used(n, false);
  std::vector<std::vector<std::size_t>> extra_chunks(n);
  sim::Time coverage_time = 0.0;
  sim::Time cancel_time = 0.0;

  if (!config_.use_s2c2) {
    // Conventional: fastest a² full outputs.
    const std::size_t mth = by_response[m - 1];
    coverage_time = timing[mth].response;
    cancel_time = coverage_time;
    for (std::size_t i = 0; i < m; ++i) used[by_response[i]] = true;
  } else {
    // Reference = the a²-th fastest response (see the MDS engine for why
    // this beats the first-a² average under strong speed spread).
    const double avg = timing[by_response[m - 1]].response - t0;
    sim::Time deadline = t0 + config_.timeout_factor * avg;
    std::size_t r_count = 0;
    while (r_count < by_response.size() &&
           timing[by_response[r_count]].response <= deadline) {
      ++r_count;
    }
    if (r_count < m) {
      // Extend to the a²-th fastest response and re-scan so workers tied
      // at the extended deadline are collected (same §4.3 semantics as the
      // MDS engine).
      deadline = timing[by_response[m - 1]].response;
      r_count = m;
      while (r_count < by_response.size() &&
             timing[by_response[r_count]].response <= deadline) {
        ++r_count;
      }
    }
    for (std::size_t i = 0; i < r_count; ++i) used[by_response[i]] = true;
    result.stats.timeout_fired = r_count != assigned.size();
    coverage_time = timing[by_response[r_count - 1]].response;
    cancel_time = deadline;

    if (result.stats.timeout_fired) {
      const auto alloc_chunk_workers = sched::chunk_workers(alloc);
      std::vector<std::size_t> deficient;
      std::vector<std::vector<std::size_t>> have;
      std::vector<std::size_t> needed;
      for (std::size_t ch = 0; ch < c; ++ch) {
        std::vector<std::size_t> responders;
        for (std::size_t w : alloc_chunk_workers[ch]) {
          if (used[w]) responders.push_back(w);
        }
        if (responders.size() < m) {
          deficient.push_back(ch);
          needed.push_back(m - responders.size());
          have.push_back(std::move(responders));
        }
      }
      if (!deficient.empty()) {
        std::vector<double> rspeeds(n, 0.0);
        for (std::size_t w = 0; w < n; ++w) {
          if (used[w]) rspeeds[w] = std::max(speeds[w], 1e-3);
        }
        sched::ReassignmentPlan plan;
        try {
          plan = sched::plan_reassignment(deficient, have, needed, rspeeds);
        } catch (const std::invalid_argument& e) {
          // An infeasible recovery is a cluster failure (data for the
          // scenario matrix), not a caller error.
          throw std::runtime_error(
              std::string("cluster failure: poly recovery infeasible: ") +
              e.what());
        }
        result.stats.reassigned_chunks = plan.total_chunks();
        for (std::size_t w = 0; w < n; ++w) {
          const auto& extras = plan.chunks_per_worker[w];
          if (extras.empty()) continue;
          extra_chunks[w] = extras;
          const sim::Time start =
              std::max(deadline, timing[w].response) + spec_.net.latency_s;
          const sim::Time done = spec_.traces[w].time_to_complete(
              start, static_cast<double>(extras.size()) * chunk_work);
          if (done == kInf) {
            throw std::runtime_error("cluster failure during poly recovery");
          }
          coverage_time = std::max(
              coverage_time,
              done + spec_.net.transfer_time(extras.size() * chunk_bytes));
        }
      }
    }
  }

  // Decode cost: one a²-dim Vandermonde system per maximal run of chunks
  // sharing a decode subset, charged through the persistent context — the
  // Björck–Pereyra solve is O(m²) per RHS column with no factorization at
  // all (the seed's dense model is decode_flops() in strategy_config.h).
  // Subsets mirror the functional decoder's keys: the m smallest
  // responding worker ids per chunk.
  const auto alloc_chunk_workers_final = sched::chunk_workers(alloc);
  // Invert the (rare) reassigned extras into per-chunk lists once, instead
  // of scanning every worker's extras per chunk.
  std::vector<std::vector<std::size_t>> extra_workers(c);
  for (std::size_t w = 0; w < n; ++w) {
    for (std::size_t ch : extra_chunks[w]) extra_workers[ch].push_back(w);
  }
  std::vector<std::vector<std::size_t>> decode_subsets(c);
  for (std::size_t ch = 0; ch < c; ++ch) {
    std::vector<std::size_t>& responders = decode_subsets[ch];
    for (std::size_t w : alloc_chunk_workers_final[ch]) {
      if (used[w]) responders.push_back(w);
    }
    responders.insert(responders.end(), extra_workers[ch].begin(),
                      extra_workers[ch].end());
    std::sort(responders.begin(), responders.end());
    responders.erase(std::unique(responders.begin(), responders.end()),
                     responders.end());
    responders.resize(m);  // m smallest ids = the decoder's arrival subset
  }
  double dec_flops = 0.0;
  for (std::size_t ch = 0; ch < c;) {
    std::size_t e = ch + 1;
    while (e < c && decode_subsets[e] == decode_subsets[ch]) ++e;
    dec_flops += decode_ctx_
                     .charge(decode_subsets[ch],
                             (e - ch) * rpc * out_cols_)
                     .flops;
    ch = e;
  }
  const sim::Time decode_time = dec_flops / spec_.master_flops;
  result.stats.coverage = coverage_time;
  result.stats.end = coverage_time + decode_time;

  // Accounting + predictor updates.
  for (std::size_t w : assigned) {
    const double work =
        pre_work + static_cast<double>(timing[w].chunks) * chunk_work;
    double obs;
    if (used[w]) {
      accounting_.add_useful(
          w, work + static_cast<double>(extra_chunks[w].size()) * chunk_work);
      // Execution speed over the compute window only — transfers stay out
      // of the denominator (see the matching note in engine.cpp).
      obs = work / (timing[w].compute_done - timing[w].x_arrival);
    } else {
      const sim::Time until = std::max(cancel_time, timing[w].x_arrival + 1e-9);
      const double done = std::min(
          work, spec_.traces[w].work_between(timing[w].x_arrival, until));
      accounting_.add_wasted(w, done);
      obs = done / (until - timing[w].x_arrival);
    }
    if (predictor_) predictor_->observe(w, obs);
  }
  for (std::size_t w = 0; w < n; ++w) {
    if (timing[w].chunks == 0 && predictor_) {
      // Probe idle workers at coverage time so the observation reflects the
      // same pre-decode window as every busy worker's (see the MDS engine).
      predictor_->observe(w, spec_.traces[w].speed_at(coverage_time));
    }
  }

  // Functional decode.
  if (functional) {
    S2C2_REQUIRE(x.size() == n_rows_, "x size mismatch");
    coding::PolyCode::Decoder decoder(code_, out_rows_, c, out_cols_,
                                      &decode_ctx_);
    for (std::size_t w = 0; w < n; ++w) {
      if (!used[w]) continue;
      for (std::size_t ch : alloc.chunks_of(w)) {
        decoder.add_chunk_result(
            w, ch,
            coding::PolyCode::compute_rows(operands_[w], x, ch * rpc,
                                           (ch + 1) * rpc));
      }
      for (std::size_t ch : extra_chunks[w]) {
        decoder.add_chunk_result(
            w, ch,
            coding::PolyCode::compute_rows(operands_[w], x, ch * rpc,
                                           (ch + 1) * rpc));
      }
    }
    result.hessian = decoder.decode();
  }

  now_ = result.stats.end;
  ++rounds_run_;
  if (result.stats.timeout_fired) ++timeouts_;
  return result;
}

std::vector<PolyRoundResult> PolyCodedEngine::run_rounds(std::size_t rounds) {
  std::vector<PolyRoundResult> out;
  out.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) out.push_back(run_round());
  return out;
}

double PolyCodedEngine::timeout_rate() const {
  return rounds_run_ > 0
             ? static_cast<double>(timeouts_) /
                   static_cast<double>(rounds_run_)
             : 0.0;
}

}  // namespace s2c2::core
