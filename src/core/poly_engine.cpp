#include "src/core/poly_engine.h"

#include <algorithm>
#include <utility>

#include "src/sched/coverage.h"
#include "src/util/require.h"

namespace s2c2::core {

namespace {

StrategyKind validated_kind(const PolyEngineConfig& config) {
  S2C2_REQUIRE(config.strategy == StrategyKind::kPoly ||
                   config.strategy == StrategyKind::kPolyConventional,
               "PolyCodedEngine runs the polynomial-coded strategies only "
               "(poly, poly-conventional)");
  return config.strategy;
}

}  // namespace

PolyCodedEngine::PolyCodedEngine(
    std::optional<linalg::Matrix> a_mat, std::size_t n_rows,
    std::size_t d_cols, std::size_t a_blocks, ClusterSpec spec,
    PolyEngineConfig config,
    std::unique_ptr<predict::SpeedPredictor> predictor)
    : RoundExecutor(validated_kind(config), std::move(spec),
                    std::move(predictor), config.oracle_speeds,
                    config.timeout_factor, /*straggler_threshold=*/0.5,
                    config.chunks_per_partition, config.health_informed),
      code_(spec_.num_workers(), a_blocks),
      decode_ctx_(code_.make_decode_context()),
      n_rows_(n_rows),
      d_cols_(d_cols) {
  S2C2_REQUIRE(d_cols_ % a_blocks == 0, "d must be divisible by a");
  out_cols_ = d_cols_ / a_blocks;
  const std::size_t c = config.chunks_per_partition;
  out_rows_ = (out_cols_ + c - 1) / c * c;  // output rows padded to chunks
  rows_per_chunk_ = out_rows_ / c;
  S2C2_REQUIRE(out_rows_ == out_cols_ || !a_mat.has_value(),
               "functional mode requires d/a divisible by chunk count");
  // Cost model: fixed diag(x)·B̃ scaling + per-chunk block-product work.
  pre_work_ = static_cast<double>(n_rows_) * static_cast<double>(out_cols_) /
              spec_.worker_flops;
  chunk_work_ = 2.0 * static_cast<double>(rows_per_chunk_) *
                static_cast<double>(n_rows_) *
                static_cast<double>(out_cols_) / spec_.worker_flops;
  if (a_mat.has_value()) {
    S2C2_REQUIRE(a_mat->rows() == n_rows_ && a_mat->cols() == d_cols_,
                 "operand shape mismatch");
    operands_ = code_.encode(*a_mat);
  }
}

void PolyCodedEngine::decode_subsets(
    const RoundLedger& ledger,
    std::vector<std::vector<std::size_t>>& out) const {
  // Subsets mirror the functional decoder's keys: the a² smallest
  // responding worker ids per chunk. Invert the (rare) reassigned extras
  // into per-chunk lists once, instead of scanning every worker's extras
  // per chunk.
  const std::size_t n = spec_.num_workers();
  const std::size_t m = code_.required_responses();
  const std::size_t c = ledger.alloc.chunks_per_partition;
  const auto alloc_chunk_workers = sched::chunk_workers(ledger.alloc);
  std::vector<std::vector<std::size_t>> extra_workers(c);
  for (std::size_t w = 0; w < n; ++w) {
    for (std::size_t ch : ledger.extra_chunks[w]) {
      extra_workers[ch].push_back(w);
    }
  }
  out.assign(c, {});
  for (std::size_t ch = 0; ch < c; ++ch) {
    std::vector<std::size_t>& responders = out[ch];
    for (std::size_t w : alloc_chunk_workers[ch]) {
      if (ledger.used[w]) responders.push_back(w);
    }
    responders.insert(responders.end(), extra_workers[ch].begin(),
                      extra_workers[ch].end());
    std::sort(responders.begin(), responders.end());
    responders.erase(std::unique(responders.begin(), responders.end()),
                     responders.end());
    responders.resize(m);  // m smallest ids = the decoder's arrival subset
  }
}

void PolyCodedEngine::decode_product(RoundResult& result,
                                     const RoundLedger& ledger,
                                     std::span<const double> x) {
  S2C2_REQUIRE(x.size() == n_rows_, "x size mismatch");
  coding::PolyCode::Decoder decoder(code_, out_rows_,
                                    ledger.alloc.chunks_per_partition,
                                    out_cols_, &decode_ctx_);
  const std::size_t rpc = rows_per_chunk_;
  for (std::size_t w = 0; w < spec_.num_workers(); ++w) {
    if (!ledger.used[w]) continue;
    for (std::size_t ch : ledger.alloc.chunks_of(w)) {
      decoder.add_chunk_result(
          w, ch,
          coding::PolyCode::compute_rows(operands_[w], x, ch * rpc,
                                         (ch + 1) * rpc));
    }
    for (std::size_t ch : ledger.extra_chunks[w]) {
      decoder.add_chunk_result(
          w, ch,
          coding::PolyCode::compute_rows(operands_[w], x, ch * rpc,
                                         (ch + 1) * rpc));
    }
  }
  result.y.reset();
  result.y_block.reset();
  result.hessian = decoder.decode();
}

}  // namespace s2c2::core
