// Polymorphic strategy-engine interface — the one contract every
// straggler-mitigation strategy implements, coded or not.
//
// The paper's argument is comparative: S2C2 vs conventional MDS vs
// replication vs over-decomposition under identical traces. This layer
// makes the comparison structural. Every strategy is a StrategyEngine:
// `run_round(x)` advances one simulated iteration on the engine's private
// clock and returns a RoundResult; the harness, job driver, benches, and
// CLIs drive any strategy through this interface and construct them
// through the registry in engine_factory.h. Coded strategies additionally
// share the §4.3 round lifecycle in round_executor.h; the uncoded
// baselines implement run_round with their own dynamics (LATE
// speculation, partition rebalancing) but still forward the exact product
// in functional mode, so convergence loops are strategy-agnostic.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/coding/decode_context.h"
#include "src/core/strategy_config.h"
#include "src/linalg/matrix.h"
#include "src/predict/predictors.h"
#include "src/sim/accounting.h"
#include "src/util/thread_pool.h"

namespace s2c2::telemetry {
class HealthMonitor;
}

namespace s2c2::core {

/// One simulated round from any strategy (the pre-PR-5 RoundResult and
/// PolyRoundResult collapsed into one type). Which functional payload is
/// set depends on the strategy's product shape: matrix-vector strategies
/// (MDS/S2C2, uncoded baselines) fill `y`; the bilinear polynomial
/// strategies fill `hessian`. Cost-only rounds leave both empty.
struct RoundResult {
  sim::RoundStats stats;
  std::optional<linalg::Vector> y;        // decoded/exact product A·x
  std::optional<linalg::Matrix> y_block;  // decoded/exact A·X, b > 1 rounds
  std::optional<linalg::Matrix> hessian;  // decoded Aᵀ·diag(x)·A
  std::vector<double> predicted_speeds;
  std::vector<double> observed_speeds;
};

/// Exact-multiply closure the uncoded baselines use to forward the true
/// product in functional mode (uncoded execution computes the exact
/// result by construction — only its *time* needs simulating). Takes the
/// cols x b input panel (b = 1 for a plain matvec round) and returns the
/// rows x b product; column j of the result must be bitwise the matvec of
/// column j, which the matmat kernels guarantee. The closure typically
/// borrows the operator; the operator must outlive the engine.
using DirectMultiply = std::function<linalg::Matrix(const linalg::Matrix&)>;

class StrategyEngine {
 public:
  virtual ~StrategyEngine() = default;

  StrategyEngine(const StrategyEngine&) = delete;
  StrategyEngine& operator=(const StrategyEngine&) = delete;
  StrategyEngine(StrategyEngine&&) = delete;
  StrategyEngine& operator=(StrategyEngine&&) = delete;

  /// Runs one round. In functional mode pass the input vector x to obtain
  /// the product (decoded for coded strategies, exact for the uncoded
  /// baselines); with an empty span the round is latency-only. Throws
  /// std::runtime_error on unrecoverable cluster failure.
  virtual RoundResult run_round(std::span<const double> x = {}) = 0;

  /// Multi-RHS block round: one coded round whose data path carries a
  /// cols x b panel X (b = width), amortizing the per-round fixed costs —
  /// one dispatch, one collection, one cached decode factorization per
  /// responder set — across all b columns. width == 1 forwards to
  /// run_round on X's only column (bit-for-bit the single-RHS path);
  /// width > 1 requires supports_block_rounds(). An empty X runs a
  /// latency-only block round at the given width; otherwise the result's
  /// y_block (y at width 1) carries the product.
  virtual RoundResult run_round_block(const linalg::Matrix& x_block,
                                      std::size_t width);

  /// Whether this strategy can run width > 1 block rounds. The bilinear
  /// polynomial strategies cannot (their round computes Aᵀ·diag(x)·A, not
  /// a panel product) and keep the default.
  [[nodiscard]] virtual bool supports_block_rounds() const { return false; }

  /// Whether a warmed engine's steady-state run_round / run_round_block
  /// performs zero heap allocations, *provided the caller recycles* each
  /// RoundResult back via recycle() so its payload capacity is reused.
  /// True for the shared §4.3 lifecycle engines (mds / s2c2 / s2c2-basic /
  /// agc); the rateless, polynomial, and uncoded baselines keep the
  /// default. tests/arena_test.cpp enforces the claim with a counting
  /// operator new for every registered strategy that returns true.
  [[nodiscard]] virtual bool supports_allocation_free_rounds() const {
    return false;
  }

  /// Returns a spent RoundResult to the engine's pool. The next round
  /// served from the pool keeps the vectors' and matrices' capacity, which
  /// is what makes the steady state allocation-free. Optional: results
  /// that are never recycled are simply destroyed, at the cost of fresh
  /// payload allocations next round.
  void recycle(RoundResult&& result) {
    result_pool_.push_back(std::move(result));
  }

  /// Convenience loop. With an input vector every returned RoundResult
  /// carries its product — same-x products are recomputed per round
  /// because the cluster state (clock, predictor) advances. With the
  /// default empty span the rounds are latency-only; callers running
  /// convergence checks must pass x or they are silently measuring
  /// latency shapes, not results.
  std::vector<RoundResult> run_rounds(std::size_t rounds,
                                      std::span<const double> x = {});

  [[nodiscard]] StrategyKind kind() const noexcept { return kind_; }
  [[nodiscard]] sim::Time now() const noexcept { return now_; }
  [[nodiscard]] const sim::Accounting& accounting() const noexcept {
    return accounting_;
  }
  [[nodiscard]] const ClusterSpec& cluster() const noexcept { return spec_; }

  /// Fraction of completed rounds in which the §4.3 timeout fired
  /// (always 0 for strategies without a timeout window).
  [[nodiscard]] double timeout_rate() const;

  /// Fraction of (worker, round) observations where the prediction missed
  /// the realized speed by more than 15% (the paper's mis-prediction
  /// criterion); 0 for strategies that never sample predictions.
  [[nodiscard]] double misprediction_rate() const;

  /// Decode-cache telemetry (coding/decode_context.h); the uncoded
  /// baselines have no decode stage and report empty stats.
  [[nodiscard]] virtual coding::DecodeContextStats decode_stats() const {
    return {};
  }

  /// Worker-health telemetry fed from the round lifecycle
  /// (telemetry/health_monitor.h). Engines without the shared lifecycle
  /// (the uncoded baselines) report none.
  [[nodiscard]] virtual const telemetry::HealthMonitor* health_monitor()
      const {
    return nullptr;
  }

  /// Intra-round parallelism width (the `inner_jobs` knob in
  /// EngineParams / the harness configs). 1 (the default) keeps every
  /// round single-threaded and preserves the allocation-free steady
  /// state; jobs >= 2 spins up a private help-first pool of jobs - 1
  /// workers (the round-running thread participates, so total
  /// parallelism is `jobs`); 0 means ThreadPool::hardware_threads().
  /// Results are bitwise identical at any setting — every parallel
  /// stage partitions work into disjoint slots computed in the exact
  /// serial accumulation order (docs/PERFORMANCE.md "Intra-round
  /// parallelism").
  void set_inner_jobs(std::size_t jobs);
  [[nodiscard]] std::size_t inner_jobs() const noexcept {
    return inner_jobs_;
  }

 protected:
  StrategyEngine(StrategyKind kind, ClusterSpec spec,
                 std::unique_ptr<predict::SpeedPredictor> predictor);

  /// Installs the last-value default used by every predicting engine when
  /// the caller supplied no predictor and no oracle flag.
  void ensure_predictor(bool oracle_speeds);

  /// The engine's intra-round pool: null when inner_jobs() <= 1 (the
  /// serial data path), otherwise a pool of inner_jobs() - 1 workers that
  /// round stages fan out over via the help-first member parallel_for.
  /// Round code treats a null pool as "run the serial loop".
  [[nodiscard]] util::ThreadPool* inner_pool() const noexcept {
    return inner_pool_.get();
  }

  /// Pops a recycled RoundResult (or a fresh one if the pool is empty).
  /// The recycled result keeps its payload capacity but carries stale
  /// contents — run_round implementations must overwrite stats and either
  /// fill or reset() every optional payload before returning it.
  [[nodiscard]] RoundResult acquire_result() {
    if (result_pool_.empty()) return {};
    RoundResult r = std::move(result_pool_.back());
    result_pool_.pop_back();
    return r;
  }

  ClusterSpec spec_;
  std::unique_ptr<predict::SpeedPredictor> predictor_;
  sim::Accounting accounting_;
  sim::Time now_ = 0.0;
  std::size_t rounds_run_ = 0;
  std::size_t timeouts_ = 0;
  std::size_t mispredictions_ = 0;
  std::size_t prediction_samples_ = 0;

 private:
  StrategyKind kind_;
  std::vector<RoundResult> result_pool_;
  std::size_t inner_jobs_ = 1;
  std::unique_ptr<util::ThreadPool> inner_pool_;
};

/// Sum of round latencies.
[[nodiscard]] double total_latency(std::span<const RoundResult> results);

}  // namespace s2c2::core
