#include "src/core/coded_job.h"

#include <algorithm>

#include "src/util/require.h"

namespace s2c2::core {

namespace {

/// Partition rows padded so they divide evenly into chunks.
std::size_t padded_partition_rows(std::size_t data_rows, std::size_t k,
                                  std::size_t chunks) {
  S2C2_REQUIRE(chunks >= 1, "chunks_per_partition must be >= 1");
  const std::size_t pr = (data_rows + k - 1) / k;
  return (pr + chunks - 1) / chunks * chunks;
}

/// Zero-pads a dense operator to exactly k * partition_rows rows.
linalg::Matrix pad_dense(const linalg::Matrix& a, std::size_t total_rows) {
  if (a.rows() == total_rows) return a;
  linalg::Matrix out(total_rows, a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    std::copy(a.row(r).begin(), a.row(r).end(), out.row(r).begin());
  }
  return out;
}

linalg::CsrMatrix pad_sparse(const linalg::CsrMatrix& a,
                             std::size_t total_rows) {
  if (a.rows() == total_rows) return a;
  std::vector<linalg::Triplet> trips;
  trips.reserve(a.nnz());
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto vals = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t p = rp[r]; p < rp[r + 1]; ++p) {
      trips.push_back({r, ci[p], vals[p]});
    }
  }
  return {total_rows, a.cols(), std::move(trips)};
}

}  // namespace

CodedMatVecJob::CodedMatVecJob(std::size_t data_rows, std::size_t data_cols,
                               std::size_t n, std::size_t k,
                               std::size_t chunks)
    : code_(n, k),
      data_rows_(data_rows),
      data_cols_(data_cols),
      partition_rows_(padded_partition_rows(data_rows, k, chunks)),
      chunks_(chunks) {}

CodedMatVecJob::CodedMatVecJob(const linalg::Matrix& a, std::size_t n,
                               std::size_t k, std::size_t chunks_per_partition,
                               coding::ParityKind parity)
    : code_(n, k, parity),
      data_rows_(a.rows()),
      data_cols_(a.cols()),
      partition_rows_(padded_partition_rows(a.rows(), k, chunks_per_partition)),
      chunks_(chunks_per_partition) {
  partitions_ = code_.encode(pad_dense(a, k * partition_rows_));
}

CodedMatVecJob::CodedMatVecJob(const linalg::CsrMatrix& a, std::size_t n,
                               std::size_t k, std::size_t chunks_per_partition,
                               coding::ParityKind parity)
    : code_(n, k, parity),
      data_rows_(a.rows()),
      data_cols_(a.cols()),
      partition_rows_(padded_partition_rows(a.rows(), k, chunks_per_partition)),
      chunks_(chunks_per_partition) {
  partitions_ = code_.encode(pad_sparse(a, k * partition_rows_));
}

CodedMatVecJob CodedMatVecJob::cost_only(std::size_t data_rows,
                                         std::size_t data_cols, std::size_t n,
                                         std::size_t k,
                                         std::size_t chunks_per_partition) {
  return CodedMatVecJob(data_rows, data_cols, n, k, chunks_per_partition);
}

void CodedMatVecJob::compute_chunk_into(std::size_t worker, std::size_t chunk,
                                        std::span<const double> x_panel,
                                        std::size_t width,
                                        std::span<double> out) const {
  S2C2_REQUIRE(functional(), "compute_chunk on a cost-only job");
  S2C2_REQUIRE(worker < n(), "worker out of range");
  S2C2_REQUIRE(chunk < chunks_, "chunk out of range");
  S2C2_REQUIRE(width >= 1 && x_panel.size() == data_cols_ * width,
               "x panel shape mismatch");
  const std::size_t rpc = rows_per_chunk();
  S2C2_REQUIRE(out.size() == rpc * width, "chunk output span size mismatch");
  if (width == 1) {
    partitions_[worker].matvec_rows(chunk * rpc, (chunk + 1) * rpc, x_panel,
                                    out);
  } else {
    partitions_[worker].matmat_rows(chunk * rpc, (chunk + 1) * rpc, x_panel,
                                    width, out);
  }
}

std::vector<double> CodedMatVecJob::compute_chunk(
    std::size_t worker, std::size_t chunk, std::span<const double> x) const {
  std::vector<double> out(rows_per_chunk());
  compute_chunk_into(worker, chunk, x, 1, out);
  return out;
}

std::vector<double> CodedMatVecJob::compute_chunk_block(
    std::size_t worker, std::size_t chunk, const linalg::Matrix& x) const {
  S2C2_REQUIRE(x.rows() == data_cols_ && x.cols() >= 1,
               "x panel shape mismatch");
  std::vector<double> out(rows_per_chunk() * x.cols());
  compute_chunk_into(worker, chunk, x.data(), x.cols(), out);
  return out;
}

coding::ChunkedDecoder CodedMatVecJob::make_decoder(
    coding::DecodeContext* context, std::size_t width) const {
  return coding::ChunkedDecoder(code_.generator(), partition_rows_, chunks_,
                                width, context);
}

void CodedMatVecJob::trim_into(const linalg::Matrix& decoded,
                               linalg::Vector& y) const {
  S2C2_REQUIRE(decoded.rows() >= data_rows_ && decoded.cols() == 1,
               "decoded result shape mismatch");
  y.resize(data_rows_);
  for (std::size_t r = 0; r < data_rows_; ++r) y[r] = decoded(r, 0);
}

void CodedMatVecJob::trim_block_into(const linalg::Matrix& decoded,
                                     linalg::Matrix& y_block) const {
  S2C2_REQUIRE(decoded.rows() >= data_rows_ && decoded.cols() >= 1,
               "decoded block shape mismatch");
  y_block.resize(data_rows_, decoded.cols());
  const std::size_t cols = decoded.cols();
  std::copy(decoded.data().begin(),
            decoded.data().begin() +
                static_cast<std::ptrdiff_t>(data_rows_ * cols),
            y_block.mutable_data().begin());
}

linalg::Vector CodedMatVecJob::trim(const linalg::Matrix& decoded) const {
  linalg::Vector y;
  trim_into(decoded, y);
  return y;
}

linalg::Matrix CodedMatVecJob::trim_block(const linalg::Matrix& decoded) const {
  linalg::Matrix out;
  trim_block_into(decoded, out);
  return out;
}

double CodedMatVecJob::chunk_flops(std::size_t width) const {
  return matvec_flops(rows_per_chunk(), data_cols_) *
         static_cast<double>(width);
}

std::size_t CodedMatVecJob::partition_bytes(std::size_t worker) const {
  if (functional()) return partitions_.at(worker).storage_bytes();
  return partition_rows_ * data_cols_ * 8;
}

}  // namespace s2c2::core
