// Uncoded r-replication with LATE-style speculative execution — the
// paper's first controlled-cluster baseline (§7.1: "enhanced Hadoop-like
// uncoded approach similar to LATE", 3 replicas, up to 6 speculative
// tasks, data moved only when no idle replica holder exists).
//
// The data matrix splits into n uncoded partitions; worker w is the
// primary for partition w, and each partition is additionally replicated
// on r-1 random other workers. Once a `speculation_quantile` fraction of
// tasks complete, the master speculatively relaunches the slowest
// outstanding tasks on idle workers — preferring replica holders; a
// non-holder pays the partition transfer on its critical path, which is
// what makes this baseline degrade super-linearly once the straggler
// count approaches the replication factor (Figs 1, 6, 7).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/engine.h"
#include "src/core/strategy_config.h"

namespace s2c2::core {

enum class Placement {
  kRoundRobin,  // partition p on workers {p, p+1, ..} — HDFS-like striping
  kRandom,      // r-1 random distinct backups per partition
};

struct ReplicationConfig {
  std::size_t replication = 3;
  std::size_t max_speculative = 6;
  double speculation_quantile = 0.25;
  Placement placement = Placement::kRoundRobin;
  std::uint64_t placement_seed = 99;
  /// false = traditional Hadoop strict locality (Fig 1's baseline): a
  /// speculative copy may only run on a replica holder, so a task whose
  /// holders are all stragglers simply waits on its primary.
  bool allow_data_movement = true;
};

class ReplicationEngine {
 public:
  ReplicationEngine(std::size_t data_rows, std::size_t data_cols,
                    ClusterSpec spec, ReplicationConfig config);

  /// One iteration (latency shape only; the uncoded result needs no decode).
  RoundResult run_round();

  std::vector<RoundResult> run_rounds(std::size_t rounds);

  [[nodiscard]] sim::Time now() const noexcept { return now_; }
  [[nodiscard]] const sim::Accounting& accounting() const noexcept {
    return accounting_;
  }
  /// Replica holders of each partition (first entry = primary).
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& placement()
      const noexcept {
    return placement_;
  }

 private:
  std::size_t data_rows_;
  std::size_t data_cols_;
  ClusterSpec spec_;
  ReplicationConfig config_;
  std::vector<std::vector<std::size_t>> placement_;
  sim::Accounting accounting_;
  sim::Time now_ = 0.0;
};

}  // namespace s2c2::core
