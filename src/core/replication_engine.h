// Uncoded r-replication with LATE-style speculative execution — the
// paper's first controlled-cluster baseline (§7.1: "enhanced Hadoop-like
// uncoded approach similar to LATE", 3 replicas, up to 6 speculative
// tasks, data moved only when no idle replica holder exists).
//
// The data matrix splits into n uncoded partitions; worker w is the
// primary for partition w, and each partition is additionally replicated
// on r-1 random other workers. Once a `speculation_quantile` fraction of
// tasks complete, the master speculatively relaunches the slowest
// outstanding tasks on idle workers — preferring replica holders; a
// non-holder pays the partition transfer on its critical path, which is
// what makes this baseline degrade super-linearly once the straggler
// count approaches the replication factor (Figs 1, 6, 7).
//
// A StrategyEngine with bespoke dynamics: no coding, no predictions, no
// §4.3 recovery window — the speculation race IS the collection policy,
// so this engine implements run_round directly instead of deriving from
// RoundExecutor. In functional mode it forwards the exact product through
// the DirectMultiply closure (uncoded execution computes the true result
// by construction), so convergence loops drive it exactly like the coded
// engines. Construct directly, or through make_engine in engine_factory.h.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/strategy_engine.h"

namespace s2c2::core {

enum class Placement {
  kRoundRobin,  // partition p on workers {p, p+1, ..} — HDFS-like striping
  kRandom,      // r-1 random distinct backups per partition
};

struct ReplicationConfig {
  std::size_t replication = 3;
  std::size_t max_speculative = 6;
  double speculation_quantile = 0.25;
  Placement placement = Placement::kRoundRobin;
  std::uint64_t placement_seed = 99;
  /// false = traditional Hadoop strict locality (Fig 1's baseline): a
  /// speculative copy may only run on a replica holder, so a task whose
  /// holders are all stragglers simply waits on its primary.
  bool allow_data_movement = true;
};

class ReplicationEngine final : public StrategyEngine {
 public:
  /// `direct` (optional) enables functional mode: run_round(x) returns
  /// the exact product direct(x). The closure's operator must outlive the
  /// engine.
  ReplicationEngine(std::size_t data_rows, std::size_t data_cols,
                    ClusterSpec spec, ReplicationConfig config,
                    DirectMultiply direct = {});

  /// One iteration. Latency comes from the simulated speculation race;
  /// with a functional operator and a non-empty x the exact product is
  /// forwarded in RoundResult::y (no decode — the result is uncoded).
  RoundResult run_round(std::span<const double> x = {}) override;

  /// Block round: task work, input broadcast, and result transfers scale
  /// by b; in functional mode the exact block product direct_(X) lands in
  /// RoundResult::y_block in one matmat — not a column-at-a-time loop.
  RoundResult run_round_block(const linalg::Matrix& x_block,
                              std::size_t width) override;
  [[nodiscard]] bool supports_block_rounds() const override { return true; }

  /// Replica holders of each partition (first entry = primary).
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& placement()
      const noexcept {
    return placement_;
  }

 private:
  [[nodiscard]] RoundResult run_round_impl(std::span<const double> x,
                                           const linalg::Matrix* x_block,
                                           std::size_t width);

  std::size_t data_rows_;
  std::size_t data_cols_;
  ReplicationConfig config_;
  DirectMultiply direct_;
  std::vector<std::vector<std::size_t>> placement_;
};

}  // namespace s2c2::core
