#include "src/core/engine_factory.h"

#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace s2c2::core {

namespace {

/// Borrowing multiply closure over the params' operator (empty when the
/// engine is cost-only). The closure takes a cols x b panel and returns
/// the exact block product in one matmat — baselines forward batched
/// rounds without degrading to column-at-a-time loops.
DirectMultiply direct_multiply(const EngineParams& p) {
  if (p.dense != nullptr) {
    return [a = p.dense](const linalg::Matrix& x) { return a->matmat(x); };
  }
  if (p.sparse != nullptr) {
    return [a = p.sparse](const linalg::Matrix& x) { return a->matmat(x); };
  }
  return {};
}

EngineConfig mds_config(StrategyKind kind, const EngineParams& p) {
  EngineConfig cfg;
  cfg.strategy = kind;
  cfg.chunks_per_partition = p.chunks_per_partition;
  cfg.timeout_factor = p.timeout_factor;
  cfg.straggler_threshold = p.straggler_threshold;
  cfg.oracle_speeds = p.oracle_speeds;
  cfg.health_informed = p.health_informed;
  return cfg;
}

CodedMatVecJob mds_job(const EngineParams& p) {
  const std::size_t n = p.cluster.num_workers();
  return p.dense != nullptr
             ? CodedMatVecJob(*p.dense, n, p.k, p.chunks_per_partition)
             : (p.sparse != nullptr
                    ? CodedMatVecJob(*p.sparse, n, p.k,
                                     p.chunks_per_partition)
                    : CodedMatVecJob::cost_only(p.rows, p.cols, n, p.k,
                                                p.chunks_per_partition));
}

std::unique_ptr<StrategyEngine> make_mds_coded(StrategyKind kind,
                                               EngineParams p) {
  return std::make_unique<CodedComputeEngine>(mds_job(p), std::move(p.cluster),
                                              mds_config(kind, p),
                                              std::move(p.predictor));
}

std::unique_ptr<StrategyEngine> make_agc(EngineParams p) {
  // Identical job geometry and lifecycle to the MDS family; only the
  // allocation rule differs (agc_engine.h).
  return std::make_unique<AdaptiveGradientEngine>(
      mds_job(p), std::move(p.cluster), mds_config(StrategyKind::kAgc, p),
      std::move(p.predictor));
}

std::unique_ptr<StrategyEngine> make_lt_coded(EngineParams p) {
  LtEngineConfig cfg;
  cfg.k = p.k;
  cfg.chunks_per_partition = p.chunks_per_partition;
  cfg.oracle_speeds = p.oracle_speeds;
  cfg.health_informed = p.health_informed;
  cfg.code_seed = p.code_seed;
  cfg.soliton = p.soliton;
  const std::size_t rows = p.op_rows();
  const std::size_t cols = p.op_cols();
  return std::make_unique<LtCodedEngine>(p.dense, p.sparse, rows, cols,
                                         std::move(p.cluster), cfg,
                                         std::move(p.predictor));
}

std::unique_ptr<StrategyEngine> make_poly_coded(StrategyKind kind,
                                                EngineParams p) {
  PolyEngineConfig cfg;
  cfg.strategy = kind;
  cfg.chunks_per_partition = p.chunks_per_partition;
  cfg.timeout_factor = p.timeout_factor;
  cfg.oracle_speeds = p.oracle_speeds;
  cfg.health_informed = p.health_informed;
  std::optional<linalg::Matrix> operand;
  if (p.dense != nullptr) operand = *p.dense;  // the engine encodes a copy
  const std::size_t rows = p.op_rows();
  const std::size_t cols = p.op_cols();
  return std::make_unique<PolyCodedEngine>(std::move(operand), rows, cols,
                                           p.a_blocks, std::move(p.cluster),
                                           cfg, std::move(p.predictor));
}

std::unique_ptr<StrategyEngine> make_replication(EngineParams p) {
  return std::make_unique<ReplicationEngine>(p.op_rows(), p.op_cols(),
                                             std::move(p.cluster),
                                             p.replication,
                                             direct_multiply(p));
}

std::unique_ptr<StrategyEngine> make_overdecomp(EngineParams p) {
  OverDecompConfig cfg = p.overdecomp;
  cfg.oracle_speeds = p.oracle_speeds;
  return std::make_unique<OverDecompositionEngine>(
      p.op_rows(), p.op_cols(), std::move(p.cluster), cfg,
      std::move(p.predictor), direct_multiply(p));
}

struct Registry {
  std::mutex mu;
  std::map<StrategyKind, EngineFactory> factories;
};

Registry& registry() {
  // Seeded on first use instead of static-initializer self-registration:
  // a static library's linker drops unreferenced registration objects,
  // and the four built-ins must always be constructible.
  static Registry* r = [] {
    auto* reg = new Registry();
    for (const StrategyKind k :
         {StrategyKind::kS2C2, StrategyKind::kS2C2Basic, StrategyKind::kMds}) {
      reg->factories[k] = [k](EngineParams p) {
        return make_mds_coded(k, std::move(p));
      };
    }
    for (const StrategyKind k :
         {StrategyKind::kPoly, StrategyKind::kPolyConventional}) {
      reg->factories[k] = [k](EngineParams p) {
        return make_poly_coded(k, std::move(p));
      };
    }
    reg->factories[StrategyKind::kReplication] = make_replication;
    reg->factories[StrategyKind::kOverDecomp] = make_overdecomp;
    reg->factories[StrategyKind::kLt] = make_lt_coded;
    reg->factories[StrategyKind::kAgc] = make_agc;
    return reg;
  }();
  return *r;
}

}  // namespace

std::unique_ptr<StrategyEngine> make_engine(StrategyKind kind,
                                            EngineParams params) {
  EngineFactory factory;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    const auto it = reg.factories.find(kind);
    if (it == reg.factories.end()) {
      throw std::invalid_argument(
          std::string("no engine factory registered for strategy: ") +
          strategy_name(kind));
    }
    factory = it->second;
  }
  // Applied after construction so every factory — including downstream
  // registrations that predate the knob — gets the intra-round pool
  // without each one threading the field through its config.
  const std::size_t inner_jobs = params.inner_jobs;
  std::unique_ptr<StrategyEngine> engine = factory(std::move(params));
  if (engine != nullptr && inner_jobs != 1) engine->set_inner_jobs(inner_jobs);
  return engine;
}

EngineFactory engine_factory(StrategyKind kind) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.factories.find(kind);
  return it != reg.factories.end() ? it->second : EngineFactory{};
}

void register_engine_factory(StrategyKind kind, EngineFactory factory) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.factories[kind] = std::move(factory);
}

std::vector<StrategyKind> registered_strategies() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<StrategyKind> out;
  out.reserve(reg.factories.size());
  for (const auto& [kind, factory] : reg.factories) out.push_back(kind);
  return out;
}

}  // namespace s2c2::core
