#include "src/core/lt_engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/util/require.h"

namespace s2c2::core {

namespace {

/// Source-block count: a quorum-worth of symbols (k * c) deflated by the
/// decode overhead so min_workers() stays ~ k, capped at the row count
/// (more blocks than rows would be pure padding), then refitted so the
/// padding tail is smaller than one block.
std::size_t lt_sources(std::size_t rows, std::size_t k, std::size_t c,
                       double overhead) {
  const auto budget = static_cast<std::size_t>(
      static_cast<double>(k * c) / (1.0 + overhead));
  const std::size_t m0 = std::max<std::size_t>(1, std::min(budget, rows));
  const std::size_t r = (rows + m0 - 1) / m0;
  return (rows + r - 1) / r;
}

}  // namespace

LtCodedEngine::LtCodedEngine(const linalg::Matrix* dense,
                             const linalg::CsrMatrix* sparse,
                             std::size_t rows, std::size_t cols,
                             ClusterSpec spec, LtEngineConfig config,
                             std::unique_ptr<predict::SpeedPredictor> predictor)
    : RoundExecutor(StrategyKind::kLt, std::move(spec), std::move(predictor),
                    config.oracle_speeds, /*timeout_factor=*/1.15,
                    /*straggler_threshold=*/0.5, config.chunks_per_partition,
                    config.health_informed),
      data_rows_(rows),
      data_cols_(cols),
      rows_per_chunk_((rows + lt_sources(rows, config.k,
                                         config.chunks_per_partition,
                                         config.soliton.overhead) -
                       1) /
                      lt_sources(rows, config.k, config.chunks_per_partition,
                                 config.soliton.overhead)),
      chunk_flops_(matvec_flops(rows_per_chunk_, cols)),
      code_(spec_.num_workers(), config.chunks_per_partition,
            lt_sources(rows, config.k, config.chunks_per_partition,
                       config.soliton.overhead),
            config.code_seed, config.soliton),
      decode_ctx_(code_) {
  S2C2_REQUIRE(data_rows_ >= 1 && data_cols_ >= 1,
               "LT engine needs a non-empty operator");
  S2C2_REQUIRE(config.k >= 1 && config.k <= spec_.num_workers(),
               "LT storage parameter k must be in [1, n]");
  S2C2_REQUIRE(dense == nullptr || sparse == nullptr,
               "at most one functional operator");
  if (spec_.byzantine.active()) {
    // Deterministic refusal, not a programming error: the harness records
    // it as a failed cell, mirroring the uncoded baselines' behavior.
    throw std::runtime_error(
        "cluster failure: the lt strategy has no redundant-response "
        "verification for byzantine clusters");
  }

  if (dense != nullptr || sparse != nullptr) {
    // One-time precoding (setup cost is off the round clock, like the MDS
    // engine's partition encode): symbol = sum of its neighbor row blocks,
    // tail block zero-padded to rows_per_chunk rows.
    const std::size_t r = rows_per_chunk_;
    blocks_.reserve(code_.total_symbols());
    for (std::size_t s = 0; s < code_.total_symbols(); ++s) {
      linalg::Matrix block(r, data_cols_);
      for (const std::uint32_t b : code_.neighbors(s)) {
        const std::size_t begin = static_cast<std::size_t>(b) * r;
        const std::size_t end = std::min(begin + r, data_rows_);
        if (begin >= end) continue;
        if (dense != nullptr) {
          for (std::size_t i = begin; i < end; ++i) {
            const auto src = dense->row(i);
            double* dst = block.mutable_data().data() + (i - begin) * data_cols_;
            for (std::size_t c2 = 0; c2 < data_cols_; ++c2) dst[c2] += src[c2];
          }
        } else {
          const auto rp = sparse->row_ptr();
          const auto ci = sparse->col_idx();
          const auto vals = sparse->values();
          for (std::size_t i = begin; i < end; ++i) {
            double* dst = block.mutable_data().data() + (i - begin) * data_cols_;
            for (std::size_t p = rp[i]; p < rp[i + 1]; ++p) {
              dst[ci[p]] += vals[p];
            }
          }
        }
      }
      blocks_.push_back(std::move(block));
    }
  }
}

void LtCodedEngine::allocate_into(std::span<const double> speeds,
                                  sched::Allocation& out) {
  // Prediction-blind: every worker computes its whole symbol batch and the
  // code's redundancy absorbs the stragglers.
  (void)speeds;
  sched::full_allocation_into(spec_.num_workers(), chunks_per_partition(), out);
}

std::size_t LtCodedEngine::collection_count(
    std::span<const std::size_t> by_response, std::size_t finite) const {
  // Per-symbol stopping rule in whole-responder steps: the smallest
  // responder prefix whose accumulated symbols cross the threshold and
  // whose peel plan closes. A stalled plan extends by one responder (2c
  // fresh symbols usually un-stall immediately); running out of finite
  // responders is the strategy's quorum failure.
  std::vector<std::size_t> prefix;
  for (std::size_t count = quorum(); count <= finite; ++count) {
    prefix.assign(by_response.begin(),
                  by_response.begin() + static_cast<std::ptrdiff_t>(count));
    std::sort(prefix.begin(), prefix.end());
    if (code_.plan_for(prefix).decodable) return count;
  }
  throw std::runtime_error(quorum_failure_error());
}

void LtCodedEngine::decode_subsets(
    const RoundLedger& ledger,
    std::vector<std::vector<std::size_t>>& out) const {
  // Every chunk decodes from the same accumulated-symbol system: the full
  // sorted responder set, so the round charges exactly one grouped system.
  out = ledger.final_chunk_workers;
}

void LtCodedEngine::decode_into(RoundResult& result, const RoundLedger& ledger,
                                std::span<const double> x,
                                const linalg::Matrix* x_block,
                                std::size_t width) {
  const std::size_t c = chunks_per_partition();
  const std::size_t r = rows_per_chunk_;
  const std::size_t v = r * width;  // values per symbol
  const std::vector<std::size_t>& subset = ledger.final_chunk_workers[0];

  std::vector<double> symbols;
  symbols.reserve(subset.size() * c * v);
  for (const std::size_t w : subset) {
    for (std::size_t j = 0; j < c; ++j) {
      const linalg::Matrix& block = blocks_[code_.symbol_id(w, j)];
      if (x_block != nullptr) {
        const linalg::Matrix y = block.matmat(*x_block);
        symbols.insert(symbols.end(), y.data().begin(), y.data().end());
      } else {
        const std::vector<double> y = block.matvec(x);
        symbols.insert(symbols.end(), y.begin(), y.end());
      }
    }
  }

  // Sources come out in block order, so the padded product is contiguous
  // (data_rows x width is its prefix — padding lives past the last row).
  std::vector<double> padded(code_.sources() * v);
  decode_ctx_.lt_decode(subset, symbols, v,
                        std::span<double>(padded.data(), padded.size()));
  result.hessian.reset();
  if (x_block != nullptr) {
    result.y.reset();
    result.y_block = linalg::Matrix(
        data_rows_, width,
        std::vector<double>(padded.begin(),
                            padded.begin() + static_cast<std::ptrdiff_t>(
                                                 data_rows_ * width)));
  } else {
    result.y_block.reset();
    result.y = std::vector<double>(
        padded.begin(),
        padded.begin() + static_cast<std::ptrdiff_t>(data_rows_));
  }
}

void LtCodedEngine::decode_product(RoundResult& result,
                                   const RoundLedger& ledger,
                                   std::span<const double> x) {
  S2C2_REQUIRE(x.size() == data_cols_, "input vector size mismatch");
  decode_into(result, ledger, x, nullptr, 1);
}

void LtCodedEngine::decode_product_block(RoundResult& result,
                                         const RoundLedger& ledger,
                                         const linalg::Matrix& x_block) {
  S2C2_REQUIRE(x_block.rows() == data_cols_,
               "input panel row count mismatch");
  decode_into(result, ledger, {}, &x_block, x_block.cols());
}

}  // namespace s2c2::core
