// CodedComputeEngine — iterative coded matrix-vector execution under the
// MDS-conventional, basic-S2C2, and general-S2C2 strategies (paper §4, §6).
//
// Per round (= one iteration of the distributed algorithm):
//   1. speeds are predicted (LSTM/ARIMA predictor, or the oracle variant);
//   2. the strategy allocates chunks (sched/allocation.h);
//   3. the simulator computes when every worker's response reaches the
//      master (input broadcast + chunk compute over the speed trace +
//      result transfer);
//   4. the master collects:
//        - MDS: the fastest k full partitions; slower workers are
//          cancelled and their progress counted as waste;
//        - S2C2: all assigned responses, with the §4.3 timeout — if a
//          worker misses 1.15x the mean response time of the fastest k,
//          its pending chunks are reassigned among the workers that did
//          respond (sched/reassignment.h) and its progress is waste;
//   5. the master decodes (cost model; plus the *real* numeric decode when
//      the job is functional and an input vector was supplied). Decode
//      goes through a per-engine coding::DecodeContext that persists
//      across rounds: responder sets repeat heavily in iterative jobs, so
//      repeated sets decode at amortized solve-only cost and the latency
//      model charges factorization only on cache misses (the thousand-
//      worker unlock — docs/PERFORMANCE.md).
//
// The engine advances its private simulated clock across rounds, so speed
// traces play out over the whole run exactly as the paper's clusters do.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/core/coded_job.h"
#include "src/core/strategy_config.h"
#include "src/predict/predictors.h"
#include "src/sched/allocation.h"
#include "src/sim/accounting.h"

namespace s2c2::core {

struct RoundResult {
  sim::RoundStats stats;
  std::optional<linalg::Vector> y;     // decoded product (functional mode)
  std::vector<double> predicted_speeds;
  std::vector<double> observed_speeds;
};

class CodedComputeEngine {
 public:
  /// `predictor` may be null: the engine then uses last-value prediction.
  /// The spec must provide exactly job.n() traces.
  CodedComputeEngine(CodedMatVecJob job, ClusterSpec spec, EngineConfig config,
                     std::unique_ptr<predict::SpeedPredictor> predictor =
                         nullptr);

  // Not movable: decode_ctx_ borrows job_.generator(), and a move would
  // leave the context pointing into the moved-from engine. Construct in
  // place (every current consumer does).
  CodedComputeEngine(const CodedComputeEngine&) = delete;
  CodedComputeEngine& operator=(const CodedComputeEngine&) = delete;
  CodedComputeEngine(CodedComputeEngine&&) = delete;
  CodedComputeEngine& operator=(CodedComputeEngine&&) = delete;

  /// Runs one round. In functional mode pass the input vector x (size =
  /// job.data_cols()) to obtain the decoded product; with an empty span
  /// the round is latency-only. Throws std::runtime_error if the cluster
  /// cannot produce k responses (unrecoverable failure).
  RoundResult run_round(std::span<const double> x = {});

  /// Convenience loop. With an input vector (functional mode) every
  /// returned RoundResult carries its decoded product in `y` — same-x
  /// products are recomputed per round because the cluster state (clock,
  /// predictor) advances, so each round's latency and decode differ. With
  /// the default empty span the rounds are latency-only and `y` stays
  /// empty; callers running convergence checks must pass x or they are
  /// silently measuring latency shapes, not results.
  std::vector<RoundResult> run_rounds(std::size_t rounds,
                                      std::span<const double> x = {});

  [[nodiscard]] sim::Time now() const noexcept { return now_; }
  [[nodiscard]] const sim::Accounting& accounting() const noexcept {
    return accounting_;
  }
  [[nodiscard]] const CodedMatVecJob& job() const noexcept { return job_; }

  /// Fraction of completed rounds in which the timeout fired.
  [[nodiscard]] double timeout_rate() const;

  /// Fraction of (worker, round) observations where the prediction missed
  /// the realized speed by more than 15% (the paper's mis-prediction
  /// criterion).
  [[nodiscard]] double misprediction_rate() const;

  /// Decode-cache telemetry across every round so far (responder sets
  /// resident, hits/misses, charged flops) — see coding/decode_context.h.
  [[nodiscard]] const coding::DecodeContextStats& decode_stats()
      const noexcept {
    return decode_ctx_.stats();
  }

 private:
  struct WorkerTiming {
    std::size_t assigned_chunks = 0;
    sim::Time x_arrival = 0.0;
    sim::Time compute_done = 0.0;
    sim::Time response = 0.0;  // +inf if the worker never responds
  };

  [[nodiscard]] std::vector<double> predicted_speeds(sim::Time t0);
  [[nodiscard]] sched::Allocation make_allocation(
      std::span<const double> speeds) const;
  [[nodiscard]] WorkerTiming simulate_worker(std::size_t w, sim::Time t0,
                                             std::size_t chunks) const;

  CodedMatVecJob job_;
  ClusterSpec spec_;
  EngineConfig config_;
  std::unique_ptr<predict::SpeedPredictor> predictor_;
  /// Persists across rounds so repeated responder sets decode from cache;
  /// borrows job_.generator() (declared after job_, never rebound).
  coding::DecodeContext decode_ctx_;
  sim::Accounting accounting_;
  sim::Time now_ = 0.0;
  std::size_t rounds_run_ = 0;
  std::size_t timeouts_ = 0;
  std::size_t mispredictions_ = 0;
  std::size_t prediction_samples_ = 0;
};

/// Sum of round latencies.
[[nodiscard]] double total_latency(std::span<const RoundResult> results);

}  // namespace s2c2::core
