// CodedComputeEngine — iterative coded matrix-vector execution under the
// MDS-conventional, basic-S2C2, and general-S2C2 strategies (paper §4, §6).
//
// The round lifecycle (predict → allocate → dispatch → §4.3 timeout/
// collection → wave recovery → decode-cost charge → accounting →
// functional decode) lives in core::RoundExecutor and is shared with the
// polynomial-coded engine; this class supplies only the MDS-specific
// ingredients: the coded job's cost geometry, the k-response quorum, the
// ChunkedDecoder numeric decode through a per-engine coding::DecodeContext
// that persists across rounds (responder sets repeat heavily in iterative
// jobs, so repeated sets decode at amortized solve-only cost and the
// latency model charges factorization only on cache misses — the
// thousand-worker unlock, docs/PERFORMANCE.md).
//
// The engine advances its private simulated clock across rounds, so speed
// traces play out over the whole run exactly as the paper's clusters do.
// Construct directly, or through make_engine in engine_factory.h.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/coded_job.h"
#include "src/core/round_executor.h"
#include "src/core/strategy_config.h"

namespace s2c2::core {

class CodedComputeEngine : public RoundExecutor {
 public:
  /// `predictor` may be null: the engine then uses last-value prediction.
  /// The spec must provide exactly job.n() traces. config.strategy must
  /// be one of kS2C2, kS2C2Basic, kMds — or kAgc through the
  /// AdaptiveGradientEngine subclass, which reuses this whole lifecycle
  /// and swaps only the allocation rule.
  CodedComputeEngine(CodedMatVecJob job, ClusterSpec spec, EngineConfig config,
                     std::unique_ptr<predict::SpeedPredictor> predictor =
                         nullptr);

  [[nodiscard]] const CodedMatVecJob& job() const noexcept { return job_; }

  /// Decode-cache telemetry across every round so far (responder sets
  /// resident, hits/misses, charged flops) — see coding/decode_context.h.
  [[nodiscard]] coding::DecodeContextStats decode_stats() const override {
    return decode_ctx_.stats();
  }

  /// Multi-RHS rounds: the block data path (panel dispatch, width-b
  /// decoder, one cached factorization per responder set) is fully wired.
  [[nodiscard]] bool supports_block_rounds() const override { return true; }

  /// Warmed steady-state rounds are heap-free when the caller recycles
  /// results (see StrategyEngine::recycle): allocation, collection, decode
  /// staging, and the functional decode all run from retained scratch and
  /// the round arena.
  [[nodiscard]] bool supports_allocation_free_rounds() const override {
    return true;
  }

 protected:
  // RoundExecutor hooks (see round_executor.h for the lifecycle).
  [[nodiscard]] std::size_t quorum() const override { return job_.k(); }
  [[nodiscard]] std::size_t x_bytes() const override { return job_.x_bytes(); }
  [[nodiscard]] std::size_t chunk_result_bytes() const override {
    return job_.chunk_result_bytes();
  }
  [[nodiscard]] double dispatch_work(std::size_t chunks) const override {
    return static_cast<double>(chunks) * job_.chunk_flops() /
           spec_.worker_flops;
  }
  [[nodiscard]] double accounted_work(std::size_t chunks) const override {
    return static_cast<double>(chunks) *
           (job_.chunk_flops() / spec_.worker_flops);
  }
  [[nodiscard]] double recovery_chunk_work() const override {
    return job_.chunk_flops() / spec_.worker_flops;
  }
  [[nodiscard]] bool recovery_survives_death() const override { return true; }
  [[nodiscard]] const char* quorum_failure_error() const override {
    return "cluster failure: fewer than k workers can respond";
  }
  [[nodiscard]] std::string recovery_infeasible_error(
      const char* what) const override {
    return std::string("cluster failure: recovery infeasible: ") + what;
  }
  [[nodiscard]] const char* recovery_death_error() const override {
    return "cluster failure during recovery";  // unreachable: cascades
  }
  [[nodiscard]] coding::DecodeContext& decode_context() override {
    return decode_ctx_;
  }
  void decode_subsets(const RoundLedger& ledger,
                      std::vector<std::vector<std::size_t>>& out)
      const override;
  [[nodiscard]] std::size_t decode_values_per_chunk() const override {
    return job_.rows_per_chunk();
  }
  [[nodiscard]] bool functional_round(
      std::span<const double> x) const override {
    return job_.functional() && !x.empty();
  }
  [[nodiscard]] bool functional_block_round(
      const linalg::Matrix& x_block) const override {
    return job_.functional() && !x_block.empty();
  }
  void decode_product(RoundResult& result, const RoundLedger& ledger,
                      std::span<const double> x) override;
  void decode_product_block(RoundResult& result, const RoundLedger& ledger,
                            const linalg::Matrix& x_block) override;
  [[nodiscard]] AccountingStyle accounting_style() const override {
    return AccountingStyle::kFullTelemetry;
  }

 private:
  /// Shared verified-decode body of decode_product / decode_product_block:
  /// re-shapes the persistent decoder to width b, computes every used
  /// responder's chunk values straight into arena-staged decoder slots
  /// (re-adding corrupted values when the cluster is Byzantine so the
  /// residual pass convicts them numerically), and decodes into
  /// decoded_scratch_. The returned reference is valid until the next
  /// round's decode.
  [[nodiscard]] const linalg::Matrix& run_verified_decode(
      const RoundLedger& ledger, std::size_t width,
      std::span<const double> x_panel);

  /// One staged chunk product awaiting compute: the (worker, chunk) pair
  /// and its arena-backed decoder slot. Staging (which mutates decoder
  /// state and fixes the fingerprinted arrival order) runs serially;
  /// the pure compute into these non-overlapping spans then fans out
  /// over the engine's inner pool.
  struct ChunkTask {
    std::size_t worker;
    std::size_t chunk;
    std::span<double> out;
  };

  CodedMatVecJob job_;
  /// Persists across rounds so repeated responder sets decode from cache;
  /// borrows job_.generator() (declared after job_, never rebound).
  coding::DecodeContext decode_ctx_;
  /// Persists across rounds (reset(width) each functional round) so its
  /// arena and slot capacity make steady-state decodes allocation-free.
  coding::ChunkedDecoder decoder_;
  linalg::Matrix decoded_scratch_;  // run_verified_decode's output
  std::vector<ChunkTask> chunk_tasks_;  // capacity retained across rounds
};

}  // namespace s2c2::core
