// Over-decomposition + speed-predicted load balancing — the paper's cloud
// baseline (§7.2, "Charm++ based over-decomposition baseline"): the data is
// split into decomposition_factor x n uncoded partitions, replicated by
// ~replication_factor, and every round the master re-balances partition
// assignments using predicted speeds. A partition may only execute on a
// worker holding a copy; otherwise it migrates first (transfer on that
// worker's critical path) and the destination keeps the copy, growing its
// storage footprint.
//
// With accurate predictions and stable speeds this baseline matches
// S2C2's latency (Fig 8); under volatile speeds its migrations put data
// movement back on the critical path and it loses (Fig 10).
//
// A StrategyEngine with bespoke dynamics: predictions drive the
// rebalancing but there is no coding and no §4.3 recovery window, so this
// engine implements run_round directly instead of deriving from
// RoundExecutor. In functional mode it forwards the exact product through
// the DirectMultiply closure. Construct directly, or through make_engine
// in engine_factory.h.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "src/core/strategy_engine.h"

namespace s2c2::core {

struct OverDecompConfig {
  std::size_t decomposition_factor = 4;  // partitions per worker
  double replication_factor = 1.42;      // ~ n/k of the matched MDS code
  bool oracle_speeds = false;
};

class OverDecompositionEngine final : public StrategyEngine {
 public:
  /// `direct` (optional) enables functional mode: run_round(x) returns
  /// the exact product direct(x). The closure's operator must outlive the
  /// engine.
  OverDecompositionEngine(std::size_t data_rows, std::size_t data_cols,
                          ClusterSpec spec, OverDecompConfig config,
                          std::unique_ptr<predict::SpeedPredictor> predictor =
                              nullptr,
                          DirectMultiply direct = {});

  /// One rebalanced iteration; with a functional operator and a non-empty
  /// x the exact product is forwarded in RoundResult::y.
  RoundResult run_round(std::span<const double> x = {}) override;

  /// Block round: task work, input broadcast, and result transfers scale
  /// by b (partition migrations do not — stored data); functional mode
  /// forwards the exact block product direct_(X) into RoundResult::y_block
  /// in one matmat call.
  RoundResult run_round_block(const linalg::Matrix& x_block,
                              std::size_t width) override;
  [[nodiscard]] bool supports_block_rounds() const override { return true; }

  /// Bytes of partition data currently stored at `worker` (grows with
  /// migrations — the storage-cost axis of the comparison).
  [[nodiscard]] std::size_t storage_bytes(std::size_t worker) const;
  [[nodiscard]] std::size_t total_migrations() const noexcept {
    return migrations_;
  }

 private:
  [[nodiscard]] RoundResult run_round_impl(std::span<const double> x,
                                           const linalg::Matrix* x_block,
                                           std::size_t width);

  std::size_t data_rows_;
  std::size_t data_cols_;
  OverDecompConfig config_;
  DirectMultiply direct_;
  std::vector<std::set<std::size_t>> holders_;  // per partition
  std::size_t migrations_ = 0;
  std::size_t num_partitions_ = 0;
  std::size_t partition_rows_ = 0;
};

}  // namespace s2c2::core
