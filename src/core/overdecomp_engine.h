// Over-decomposition + speed-predicted load balancing — the paper's cloud
// baseline (§7.2, "Charm++ based over-decomposition baseline"): the data is
// split into decomposition_factor x n uncoded partitions, replicated by
// ~replication_factor, and every round the master re-balances partition
// assignments using predicted speeds. A partition may only execute on a
// worker holding a copy; otherwise it migrates first (transfer on that
// worker's critical path) and the destination keeps the copy, growing its
// storage footprint.
//
// With accurate predictions and stable speeds this baseline matches
// S2C2's latency (Fig 8); under volatile speeds its migrations put data
// movement back on the critical path and it loses (Fig 10).
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "src/core/engine.h"
#include "src/core/strategy_config.h"
#include "src/predict/predictors.h"

namespace s2c2::core {

struct OverDecompConfig {
  std::size_t decomposition_factor = 4;  // partitions per worker
  double replication_factor = 1.42;      // ~ n/k of the matched MDS code
  bool oracle_speeds = false;
};

class OverDecompositionEngine {
 public:
  OverDecompositionEngine(std::size_t data_rows, std::size_t data_cols,
                          ClusterSpec spec, OverDecompConfig config,
                          std::unique_ptr<predict::SpeedPredictor> predictor =
                              nullptr);

  RoundResult run_round();
  std::vector<RoundResult> run_rounds(std::size_t rounds);

  [[nodiscard]] sim::Time now() const noexcept { return now_; }
  [[nodiscard]] const sim::Accounting& accounting() const noexcept {
    return accounting_;
  }
  /// Bytes of partition data currently stored at `worker` (grows with
  /// migrations — the storage-cost axis of the comparison).
  [[nodiscard]] std::size_t storage_bytes(std::size_t worker) const;
  [[nodiscard]] std::size_t total_migrations() const noexcept {
    return migrations_;
  }

 private:
  std::size_t data_rows_;
  std::size_t data_cols_;
  ClusterSpec spec_;
  OverDecompConfig config_;
  std::unique_ptr<predict::SpeedPredictor> predictor_;
  std::vector<std::set<std::size_t>> holders_;  // per partition
  sim::Accounting accounting_;
  sim::Time now_ = 0.0;
  std::size_t migrations_ = 0;
  std::size_t num_partitions_ = 0;
  std::size_t partition_rows_ = 0;
};

}  // namespace s2c2::core
