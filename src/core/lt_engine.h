// LtCodedEngine — rateless LT-coded matrix-vector execution behind
// StrategyKind::kLt (Mallick et al., PAPERS.md; coding/lt_code.h).
//
// Where every MDS-family engine waits for a fixed quorum of k responders,
// the LT engine's quorum is a decoding *threshold over accumulated coded
// symbols*: each worker holds chunks_per_partition coded symbols (random
// source-block sums from the robust-soliton distribution), every
// responder's symbols count regardless of identity, and the master stops
// as soon as the accumulated symbol count crosses (1 + overhead) x sources
// AND the symbols' peel plan closes — extending by whole responders past
// the minimum when peeling would stall unrecoverably. The stopping rule
// plugs into RoundExecutor's conventional-collection path through the
// collection_count hook; allocation is prediction-blind full partitions
// (the code's redundancy, not the allocator, absorbs stragglers — the
// paper's near-perfect load-balancing claim, and the natural adversary for
// S2C2's adaptive allocation in the scenario matrix).
//
// Geometry: sources m ~ k * chunks / (1 + overhead) row blocks of
// rows_per_chunk rows (zero-padded at the tail), so a quorum-worth of
// symbols decodes and per-worker storage stays within ~overhead of the
// MDS partition. Decode charges flow through coding::DecodeContext's LT
// backend: cached peel plans, edge-sweep solve cost, dense-LU stalled
// tail. The simulator delivers a worker's response atomically, so the
// per-symbol rule advances in whole-responder steps of chunks_per_partition
// symbols (docs/DESIGN.md §9).
//
// Not Byzantine-tolerant: the threshold collection has no over-provisioned
// verification margin, so construction on a Byzantine cluster throws the
// deterministic cluster-failure error the harness records as a failed cell.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/coding/decode_context.h"
#include "src/coding/lt_code.h"
#include "src/core/round_executor.h"
#include "src/core/strategy_config.h"
#include "src/linalg/matrix.h"
#include "src/linalg/sparse.h"

namespace s2c2::core {

struct LtEngineConfig {
  /// MDS-equivalent storage parameter: the source budget is
  /// ~ k * chunks_per_partition / (1 + soliton.overhead) blocks.
  std::size_t k = 0;
  std::size_t chunks_per_partition = 24;
  bool oracle_speeds = false;
  bool health_informed = false;
  /// Symbol-graph seed — the harness derives it from the cell/job salt so
  /// every shard sees the identical code.
  std::uint64_t code_seed = 0x5eedc0deULL;
  coding::RobustSolitonConfig soliton;
};

class LtCodedEngine final : public RoundExecutor {
 public:
  /// Operator pointers are borrowed (at most one non-null) and must
  /// outlive the engine; both null runs cost-only over rows x cols.
  /// `predictor` feeds misprediction telemetry only — the allocation is
  /// prediction-blind.
  LtCodedEngine(const linalg::Matrix* dense, const linalg::CsrMatrix* sparse,
                std::size_t rows, std::size_t cols, ClusterSpec spec,
                LtEngineConfig config,
                std::unique_ptr<predict::SpeedPredictor> predictor = nullptr);

  [[nodiscard]] const coding::LtCode& code() const noexcept { return code_; }
  [[nodiscard]] std::size_t rows_per_chunk() const noexcept {
    return rows_per_chunk_;
  }

  [[nodiscard]] coding::DecodeContextStats decode_stats() const override {
    return decode_ctx_.stats();
  }

  /// Symbols are rows_per_chunk x width blocks; the block data path is
  /// the same peel replay with wider rows.
  [[nodiscard]] bool supports_block_rounds() const override { return true; }

 protected:
  // RoundExecutor hooks (lifecycle in round_executor.h).
  [[nodiscard]] std::size_t quorum() const override {
    return code_.min_workers();
  }
  [[nodiscard]] std::size_t x_bytes() const override {
    return data_cols_ * sizeof(double);
  }
  [[nodiscard]] std::size_t chunk_result_bytes() const override {
    return rows_per_chunk_ * sizeof(double);
  }
  [[nodiscard]] double dispatch_work(std::size_t chunks) const override {
    return static_cast<double>(chunks) * chunk_flops_ / spec_.worker_flops;
  }
  [[nodiscard]] double accounted_work(std::size_t chunks) const override {
    return static_cast<double>(chunks) * (chunk_flops_ / spec_.worker_flops);
  }
  [[nodiscard]] double recovery_chunk_work() const override {
    return chunk_flops_ / spec_.worker_flops;
  }
  void allocate_into(std::span<const double> speeds,
                     sched::Allocation& out) override;
  [[nodiscard]] std::size_t collection_count(
      std::span<const std::size_t> by_response,
      std::size_t finite) const override;
  [[nodiscard]] bool recovery_survives_death() const override { return true; }
  [[nodiscard]] const char* quorum_failure_error() const override {
    return "cluster failure: too few responders to reach the LT decode "
           "threshold";
  }
  [[nodiscard]] std::string recovery_infeasible_error(
      const char* what) const override {
    return std::string("cluster failure: LT recovery infeasible: ") + what;
  }
  [[nodiscard]] const char* recovery_death_error() const override {
    return "cluster failure during LT recovery";  // unreachable: no recovery
  }
  [[nodiscard]] coding::DecodeContext& decode_context() override {
    return decode_ctx_;
  }
  void decode_subsets(const RoundLedger& ledger,
                      std::vector<std::vector<std::size_t>>& out)
      const override;
  [[nodiscard]] std::size_t decode_values_per_chunk() const override {
    return rows_per_chunk_;
  }
  [[nodiscard]] bool functional_round(
      std::span<const double> x) const override {
    return !blocks_.empty() && !x.empty();
  }
  [[nodiscard]] bool functional_block_round(
      const linalg::Matrix& x_block) const override {
    return !blocks_.empty() && !x_block.empty();
  }
  void decode_product(RoundResult& result, const RoundLedger& ledger,
                      std::span<const double> x) override;
  void decode_product_block(RoundResult& result, const RoundLedger& ledger,
                            const linalg::Matrix& x_block) override;
  [[nodiscard]] AccountingStyle accounting_style() const override {
    return AccountingStyle::kFullTelemetry;
  }

 private:
  /// Decodes the used responders' symbols into result (vector or block).
  void decode_into(RoundResult& result, const RoundLedger& ledger,
                   std::span<const double> x, const linalg::Matrix* x_block,
                   std::size_t width);

  std::size_t data_rows_ = 0;
  std::size_t data_cols_ = 0;
  std::size_t rows_per_chunk_ = 0;
  double chunk_flops_ = 0.0;
  coding::LtCode code_;
  /// Borrows code_ (declared after it, never rebound); persists across
  /// rounds so repeated responder sets replay a cached peel plan.
  coding::DecodeContext decode_ctx_;
  /// Encoded symbol blocks (rows_per_chunk x data_cols each), materialized
  /// once at setup like the MDS engine's encoded partitions; empty in
  /// cost-only mode.
  std::vector<linalg::Matrix> blocks_;
};

}  // namespace s2c2::core
