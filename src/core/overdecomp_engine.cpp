#include "src/core/overdecomp_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "src/util/require.h"

namespace s2c2::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

OverDecompositionEngine::OverDecompositionEngine(
    std::size_t data_rows, std::size_t data_cols, ClusterSpec spec,
    OverDecompConfig config,
    std::unique_ptr<predict::SpeedPredictor> predictor, DirectMultiply direct)
    : StrategyEngine(StrategyKind::kOverDecomp, std::move(spec),
                     std::move(predictor)),
      data_rows_(data_rows),
      data_cols_(data_cols),
      config_(config),
      direct_(std::move(direct)) {
  const std::size_t n = spec_.num_workers();
  S2C2_REQUIRE(n >= 2, "need at least two workers");
  S2C2_REQUIRE(config_.decomposition_factor >= 1, "decomposition factor >= 1");
  S2C2_REQUIRE(config_.replication_factor >= 1.0, "replication factor >= 1");
  ensure_predictor(config_.oracle_speeds);
  num_partitions_ = n * config_.decomposition_factor;
  partition_rows_ = (data_rows_ + num_partitions_ - 1) / num_partitions_;
  // Primary copies: worker w holds partitions [w*F, (w+1)*F). Extra copies
  // to reach the replication factor go round-robin to the next worker.
  holders_.resize(num_partitions_);
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    holders_[p].insert(p / config_.decomposition_factor);
  }
  const auto extra = static_cast<std::size_t>(std::llround(
      (config_.replication_factor - 1.0) *
      static_cast<double>(num_partitions_)));
  for (std::size_t i = 0; i < extra; ++i) {
    const std::size_t p = i % num_partitions_;
    const std::size_t w =
        (p / config_.decomposition_factor + 1 + i / num_partitions_) % n;
    holders_[p].insert(w);
  }
}

RoundResult OverDecompositionEngine::run_round(std::span<const double> x) {
  return run_round_impl(x, nullptr, 1);
}

RoundResult OverDecompositionEngine::run_round_block(
    const linalg::Matrix& x_block, std::size_t width) {
  S2C2_REQUIRE(width >= 1, "block round width must be >= 1");
  S2C2_REQUIRE(x_block.empty() || x_block.cols() == width,
               "x_block must have exactly `width` columns");
  if (width == 1) {
    return run_round(x_block.empty() ? std::span<const double>{}
                                     : x_block.data());
  }
  return run_round_impl({}, &x_block, width);
}

RoundResult OverDecompositionEngine::run_round_impl(
    std::span<const double> x, const linalg::Matrix* x_block,
    std::size_t width) {
  if (spec_.byzantine.active()) {
    // Uncoded micro-tasks have no redundant responses to vote with; a
    // corrupted task result flows straight into the assembled product, so
    // the strategy fails deterministically (a `failed` scenario-matrix
    // cell — docs/DESIGN.md §7).
    throw std::runtime_error(
        "cluster failure: over-decomposition cannot verify byzantine "
        "responses");
  }
  const std::size_t n = spec_.num_workers();
  const sim::Time t0 = now_;
  // Per-round charges scale by the RHS block width; partition_bytes does
  // not (it is stored data, moved only on migration).
  const double task_work = matvec_flops(partition_rows_, data_cols_) *
                           static_cast<double>(width) / spec_.worker_flops;
  const std::size_t x_bytes = data_cols_ * width * 8;
  const std::size_t result_bytes = partition_rows_ * width * 8;
  const std::size_t partition_bytes = partition_rows_ * data_cols_ * 8;

  RoundResult result;
  result.stats.start = t0;
  result.predicted_speeds.resize(n);
  for (std::size_t w = 0; w < n; ++w) {
    result.predicted_speeds[w] = config_.oracle_speeds
                                     ? spec_.traces[w].speed_at(t0)
                                     : predictor_->predict(w);
  }

  // Quotas proportional to predicted speed (largest remainder).
  std::vector<double> s = result.predicted_speeds;
  double ssum = 0.0;
  for (double& v : s) {
    v = std::max(v, 1e-3);
    ssum += v;
  }
  std::vector<std::size_t> quota(n, 0);
  std::vector<std::pair<double, std::size_t>> fracs(n);
  std::size_t assigned_total = 0;
  for (std::size_t w = 0; w < n; ++w) {
    const double q =
        static_cast<double>(num_partitions_) * s[w] / ssum;
    quota[w] = static_cast<std::size_t>(q);
    fracs[w] = {q - static_cast<double>(quota[w]), w};
    assigned_total += quota[w];
  }
  std::sort(fracs.begin(), fracs.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned_total < num_partitions_ && i < n; ++i) {
    ++quota[fracs[i].second];
    ++assigned_total;
  }

  // First pass: place each partition on its least-filled holder (relative
  // to quota). Balanced quotas then keep primaries home; a greedy
  // fastest-holder rule would displace primaries in a cascade and force
  // spurious migrations.
  std::vector<std::size_t> load(n, 0);       // local tasks
  std::vector<std::size_t> migrated(n, 0);   // tasks needing a transfer
  std::vector<std::size_t> unplaced;
  for (std::size_t p = 0; p < num_partitions_; ++p) {
    std::size_t best = n;
    double best_fill = kInf;
    for (std::size_t w : holders_[p]) {
      if (load[w] + migrated[w] >= quota[w]) continue;
      const double fill = static_cast<double>(load[w] + migrated[w]) /
                          static_cast<double>(quota[w]);
      if (fill < best_fill || (fill == best_fill && best < n && s[w] > s[best])) {
        best_fill = fill;
        best = w;
      }
    }
    if (best < n) {
      ++load[best];
    } else {
      unplaced.push_back(p);
    }
  }
  // Second pass: migrate the leftovers to under-quota workers. Workers
  // with zero quota (dead or written off by the predictor) never receive
  // migrated tasks.
  for (std::size_t p : unplaced) {
    std::size_t best = n;
    double best_fill = kInf;
    for (std::size_t w = 0; w < n; ++w) {
      if (quota[w] == 0) continue;
      const double fill =
          static_cast<double>(load[w] + migrated[w] + 1) /
          static_cast<double>(quota[w]);
      if (fill < best_fill) {
        best_fill = fill;
        best = w;
      }
    }
    S2C2_CHECK(best < n, "migration target must exist");
    ++migrated[best];
    holders_[p].insert(best);  // destination keeps the copy
    ++migrations_;
    ++result.stats.data_moves;
    accounting_.add_traffic(best, 0.0, static_cast<double>(partition_bytes));
  }

  // Worker timelines: local tasks first, then migrated ones (each migrated
  // partition must arrive before it can run; transfers overlap compute).
  sim::Time end = 0.0;
  result.observed_speeds.assign(n, 0.0);
  for (std::size_t w = 0; w < n; ++w) {
    const std::size_t tasks = load[w] + migrated[w];
    if (tasks == 0) {
      result.observed_speeds[w] = spec_.traces[w].speed_at(t0);
      if (predictor_) predictor_->observe(w, result.observed_speeds[w]);
      continue;
    }
    const sim::Time x_arrival = t0 + spec_.net.transfer_time(x_bytes);
    sim::Time done = spec_.traces[w].time_to_complete(
        x_arrival, static_cast<double>(load[w]) * task_work);
    for (std::size_t m = 0; m < migrated[w]; ++m) {
      const sim::Time arrival =
          t0 + spec_.net.partition_move_time(partition_bytes) *
                   static_cast<double>(m + 1);
      done = spec_.traces[w].time_to_complete(std::max(done, arrival),
                                              task_work);
    }
    if (done == kInf) {
      throw std::runtime_error("cluster failure: over-decomp worker died");
    }
    const sim::Time resp =
        done + spec_.net.transfer_time(tasks * result_bytes);
    end = std::max(end, resp);
    accounting_.add_useful(w, static_cast<double>(tasks) * task_work);
    accounting_.add_busy(w, done - x_arrival);
    accounting_.add_traffic(w, static_cast<double>(tasks * result_bytes),
                            static_cast<double>(x_bytes));
    // Execution speed over the compute window (migration waits included —
    // that slot genuinely was not computing); result transfer and the
    // initial broadcast stay out (see the matching note in
    // round_executor.cpp).
    const double obs =
        static_cast<double>(tasks) * task_work / (done - x_arrival);
    result.observed_speeds[w] = obs;
    if (predictor_) predictor_->observe(w, obs);
  }
  result.stats.coverage = end;  // uncoded: no master decode after collection
  result.stats.end = end;

  // Uncoded execution computes the exact product by construction: forward
  // it so functional loops go through the same code path as the coded
  // engines (mirrors the PR 3 run_rounds fix). Block rounds forward the
  // whole panel product in one matmat call.
  if (direct_) {
    if (x_block != nullptr && !x_block->empty()) {
      result.y_block = direct_(*x_block);
    } else if (!x.empty()) {
      const linalg::Matrix panel(x.size(), 1, {x.begin(), x.end()});
      const linalg::Matrix y = direct_(panel);
      result.y = linalg::Vector(y.data().begin(), y.data().end());
    }
  }

  now_ = end;
  ++rounds_run_;
  return result;
}

std::size_t OverDecompositionEngine::storage_bytes(std::size_t worker) const {
  S2C2_REQUIRE(worker < spec_.num_workers(), "worker out of range");
  const std::size_t partition_bytes = partition_rows_ * data_cols_ * 8;
  std::size_t count = 0;
  for (const auto& hs : holders_) count += hs.count(worker);
  return count * partition_bytes;
}

}  // namespace s2c2::core
