// The shared round lifecycle of every *coded* strategy (paper §4, §6):
//
//   predict speeds → allocate chunks → dispatch (broadcast + compute +
//   response transfer over the speed traces) → collect (fastest-quorum
//   for the conventional strategies, the §4.3 timeout window for the S2C2
//   family) → wave-based chunk-reassignment recovery → decode-cost charge
//   through the strategy's coding::DecodeContext → accounting + predictor
//   observations → functional decode.
//
// Before PR 5 this loop existed twice — engine.cpp and poly_engine.cpp —
// and every timeout/collection fix had to be mirrored by hand (PR 2). Now
// RoundExecutor::run_round is the only copy; concrete coded engines
// (CodedComputeEngine, PolyCodedEngine, and future rateless/gradient-
// coding engines) supply only the strategy-specific ingredients through
// the protected hooks: cost geometry, allocation (defaulted by
// StrategyKind), decode subsets/charging, and the functional decode.
//
// Collection semantics are derived from kind(): strategy_uses_recovery
// kinds run the §4.3 timeout + recovery window; the rest wait for the
// fastest quorum() responders and cancel the stragglers. The timeout
// reference point is the quorum-th fastest response — see docs/DESIGN.md
// §5 for why this beats the paper's "average of the first k" wording
// under strong speed spread.
//
// Bitwise-behavior contract: the executor reproduces the pre-unification
// engines' floating-point arithmetic exactly (tests/fingerprint_guard_test
// pins it). The two AccountingStyle values below preserve the engines'
// historically different accounting arithmetic — see the enum comment.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/strategy_engine.h"
#include "src/sched/allocation.h"
#include "src/telemetry/health_monitor.h"

namespace s2c2::core {

class RoundExecutor : public StrategyEngine {
 public:
  /// One coded round through the shared lifecycle. Hooks are called in
  /// lifecycle order; the engine's private clock advances to stats.end.
  RoundResult run_round(std::span<const double> x = {}) final;

  /// The same lifecycle over a cols x b RHS panel: dispatch ships b
  /// columns, every chunk response carries b values per row, compute and
  /// decode charges scale by b, and one cached decode factorization per
  /// responder set serves all b columns. width == 1 routes through
  /// run_round bit-for-bit; width > 1 requires supports_block_rounds().
  RoundResult run_round_block(const linalg::Matrix& x_block,
                              std::size_t width) override;

  [[nodiscard]] const telemetry::HealthMonitor* health_monitor()
      const override {
    return &health_;
  }

 protected:
  RoundExecutor(StrategyKind kind, ClusterSpec spec,
                std::unique_ptr<predict::SpeedPredictor> predictor,
                bool oracle_speeds, double timeout_factor,
                double straggler_threshold,
                std::size_t chunks_per_partition,
                bool health_informed = false);

  struct WorkerTiming {
    std::size_t assigned_chunks = 0;
    sim::Time x_arrival = 0.0;
    sim::Time compute_done = 0.0;
    sim::Time response = 0.0;  // +inf if the worker never responds
  };

  /// Read-only view of a finished collection/recovery phase, handed to
  /// the decode hooks. `final_chunk_workers[c]` holds the responders that
  /// delivered chunk c in ascending worker-id order; `extra_chunks[w]`
  /// the chunks worker w picked up during recovery.
  /// `byzantine_chunk_workers[c]` lists the corrupted responders stripped
  /// from chunk c after collection (empty on honest clusters) — functional
  /// decodes re-add their corrupted values so the decoder's residual check
  /// performs the identification numerically (docs/DESIGN.md §7).
  struct RoundLedger {
    const sched::Allocation& alloc;
    std::span<const WorkerTiming> timing;
    const std::vector<bool>& used;
    const std::vector<std::vector<std::size_t>>& final_chunk_workers;
    const std::vector<std::vector<std::size_t>>& extra_chunks;
    const std::vector<std::vector<std::size_t>>& byzantine_chunk_workers;
  };

  /// How a strategy historically booked work into sim::Accounting. The
  /// two styles are bitwise-preserved from the pre-unification engines:
  /// fingerprints hash accounting totals, and double addition is not
  /// associative, so the *order* of add_useful calls is behavior.
  enum class AccountingStyle {
    /// MDS/S2C2 engine legacy: useful work booked as base + recovery in
    /// two adds, busy time and traffic tracked, recovery waste booked,
    /// cancelled workers' observed speed left unclamped.
    kFullTelemetry,
    /// Poly engine legacy: one combined useful add, compute accounting
    /// only (no busy/traffic), cancelled workers' observation clamped to
    /// their assigned work.
    kComputeOnly,
  };

  // ---- geometry / cost hooks -------------------------------------------
  /// Responses a decode needs: k for MDS codes, a² for polynomial codes.
  [[nodiscard]] virtual std::size_t quorum() const = 0;
  /// Input-broadcast and per-chunk response sizes on the wire.
  [[nodiscard]] virtual std::size_t x_bytes() const = 0;
  [[nodiscard]] virtual std::size_t chunk_result_bytes() const = 0;
  /// Unit-speed seconds of a worker's original assignment (may include a
  /// fixed per-round term, e.g. poly's diag(x)·B̃ scaling).
  [[nodiscard]] virtual double dispatch_work(std::size_t chunks) const = 0;
  /// Unit-speed seconds booked into accounting for the same assignment.
  /// Kept separate from dispatch_work: the MDS engine historically used
  /// (chunks · flops) / worker_flops when dispatching but
  /// chunks · (flops / worker_flops) when accounting, and the last-bit
  /// difference is fingerprinted behavior.
  [[nodiscard]] virtual double accounted_work(std::size_t chunks) const = 0;
  /// Unit-speed seconds per chunk reassigned during recovery.
  [[nodiscard]] virtual double recovery_chunk_work() const = 0;

  // ---- allocation hook --------------------------------------------------
  /// Chunk allocation from predicted speeds, filled into `out` (which
  /// retains its capacity across rounds — the steady state allocates
  /// nothing). The default dispatches on kind(): full allocation (kMds,
  /// kPolyConventional), equal shares over non-stragglers (kS2C2Basic),
  /// speed-proportional shares with the quorum-feasibility guard (kS2C2,
  /// kPoly). Override for novel allocation policies; non-const so
  /// overriders can keep member scratch warm.
  virtual void allocate_into(std::span<const double> speeds,
                             sched::Allocation& out);

  // ---- collection hook --------------------------------------------------
  /// Conventional-collection stopping rule: how many of the fastest
  /// responders the master waits for before cancelling the rest. The
  /// default is the fixed collection_quorum(); strategies whose decode
  /// quorum is not a worker count override it (the LT engine stops on
  /// accumulated coded *symbols*, extending past its minimum responder
  /// count until the peel plan closes). Must return a count in
  /// [1, finite] or throw the strategy's quorum-failure error.
  /// `by_response` holds the workers with assigned work ordered by
  /// response time; only the first `finite` ever respond. Not consulted
  /// on the §4.3 timeout path (recovery strategies collect by deadline).
  [[nodiscard]] virtual std::size_t collection_count(
      std::span<const std::size_t> by_response, std::size_t finite) const;

  // ---- recovery policy --------------------------------------------------
  /// True: a recovery worker dying mid-reassignment books its partial
  /// progress as waste and its chunks re-plan among survivors in the next
  /// wave (the §4.3 generalization). False: the death is an unrecoverable
  /// cluster failure (the poly engine's historical behavior).
  [[nodiscard]] virtual bool recovery_survives_death() const = 0;
  [[nodiscard]] virtual const char* quorum_failure_error() const = 0;
  [[nodiscard]] virtual std::string recovery_infeasible_error(
      const char* what) const = 0;
  [[nodiscard]] virtual const char* recovery_death_error() const = 0;

  // ---- decode hooks -----------------------------------------------------
  /// The strategy's persistent decode context (cache lives across rounds).
  [[nodiscard]] virtual coding::DecodeContext& decode_context() = 0;
  /// Per-chunk decode subsets (the exact worker ids the decoder will
  /// solve from — cost-model cache keys must match the numeric decoder's),
  /// filled into `out` (outer and inner capacity retained across rounds).
  virtual void decode_subsets(const RoundLedger& ledger,
                              std::vector<std::vector<std::size_t>>& out)
      const = 0;
  /// Reconstructed values per chunk (multiplies the per-RHS solve cost).
  [[nodiscard]] virtual std::size_t decode_values_per_chunk() const = 0;
  /// True when this round should run the numeric decode for input x.
  [[nodiscard]] virtual bool functional_round(
      std::span<const double> x) const = 0;
  /// Block analog for width > 1 rounds. Default false; strategies that
  /// enable supports_block_rounds() override it.
  [[nodiscard]] virtual bool functional_block_round(
      const linalg::Matrix& x_block) const;
  /// Runs the numeric decode and stores the product into `result` (y for
  /// matrix-vector strategies, hessian for bilinear ones).
  virtual void decode_product(RoundResult& result, const RoundLedger& ledger,
                              std::span<const double> x) = 0;
  /// Block analog: decodes all columns of A·X into result.y_block through
  /// one width-b decoder. Default throws; never reached while
  /// supports_block_rounds() is false.
  virtual void decode_product_block(RoundResult& result,
                                    const RoundLedger& ledger,
                                    const linalg::Matrix& x_block);

  // ---- accounting -------------------------------------------------------
  [[nodiscard]] virtual AccountingStyle accounting_style() const = 0;

  [[nodiscard]] double timeout_factor() const noexcept {
    return timeout_factor_;
  }
  [[nodiscard]] double straggler_threshold() const noexcept {
    return straggler_threshold_;
  }
  [[nodiscard]] std::size_t chunks_per_partition() const noexcept {
    return chunks_per_partition_;
  }
  [[nodiscard]] bool oracle_speeds() const noexcept { return oracle_speeds_; }

  /// Responses the master collects per chunk. Exactly quorum() on honest
  /// clusters. When the cluster spec declares Byzantine workers the
  /// collection over-provisions by min(n - q, max(e + 1, 2e)) extra
  /// responders so each chunk keeps >= quorum() clean responders after the
  /// corrupted ones are stripped, and the functional decoder retains
  /// >= k + e + 1 rows — the identification bound of docs/DESIGN.md §7.
  [[nodiscard]] std::size_t collection_quorum() const;

  // Allocator scratch shared with subclass allocate_into overrides (AGC's
  // reuses it); warm capacity keeps the per-round allocation heap-free.
  sched::AllocationScratch alloc_scratch_;
  std::vector<double> median_scratch_;
  std::vector<double> speed_scratch_;
  std::vector<bool> straggler_scratch_;
  std::vector<std::size_t> flagged_scratch_;

 private:
  /// The one copy of the round lifecycle. `width` is the RHS block width b
  /// (1 for classic rounds); `x_block` is non-null only for width > 1
  /// functional panels. Every b-scaled term multiplies by width exactly,
  /// so width == 1 reproduces the pre-block arithmetic bit for bit.
  [[nodiscard]] RoundResult run_round_impl(std::span<const double> x,
                                           const linalg::Matrix* x_block,
                                           std::size_t width);
  void predict_speeds(sim::Time t0, std::vector<double>& out);
  [[nodiscard]] WorkerTiming simulate_worker(std::size_t w, sim::Time t0,
                                             std::size_t chunks,
                                             std::size_t width) const;

  bool oracle_speeds_;
  double timeout_factor_;
  double straggler_threshold_;
  std::size_t chunks_per_partition_;
  bool health_informed_;
  telemetry::HealthMonitor health_;

  // Per-round scratch: every vector below is cleared (never shrunk) at
  // round start, so a warmed steady-state round touches the heap zero
  // times — tests/arena_test.cpp's counting allocator enforces it. The
  // recovery-wave and Byzantine sub-paths keep local vectors: they only
  // run on timeout / corrupted rounds, which are not steady state.
  sched::Allocation round_alloc_;
  std::vector<WorkerTiming> timing_;
  std::vector<std::size_t> assigned_;
  std::vector<std::size_t> by_response_;
  std::vector<std::vector<std::size_t>> final_chunk_workers_;
  std::vector<std::vector<std::size_t>> extra_chunks_;
  std::vector<std::vector<std::size_t>> alloc_chunk_workers_;
  std::vector<std::vector<std::size_t>> byzantine_chunk_workers_;
  std::vector<std::vector<std::size_t>> subsets_;
  std::vector<sim::Time> recovery_busy_;
  std::vector<double> recovery_waste_;
  std::vector<bool> used_;
  std::vector<bool> responded_;
};

}  // namespace s2c2::core
