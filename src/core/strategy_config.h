// Cluster specification, cost model, and strategy configuration shared by
// every execution engine.
//
// Work is measured in "unit-speed seconds": a kernel of F flops takes
// F / worker_flops seconds on a worker running at relative speed 1.0, and
// the speed trace integral converts that to wall-clock time. All of the
// paper's results are relative latencies, so only the *ratios* between
// compute, communication, and decode costs matter; the defaults model a
// ~1 Gflop/s (1-vCPU) cloud node on a 10 Gb/s / 100 us network, and the
// harness layers rescale them per scenario (see make_cluster /
// job_cluster) to keep those ratios honest at test-sized operators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/network.h"
#include "src/sim/speed_trace.h"

namespace s2c2::core {

/// Byzantine adversary model: the listed workers compute honestly-timed
/// but *corrupted* products every round (deterministic corruption pattern
/// derived from `seed`). Coded engines over-provision coverage, identify
/// the corrupted responders through the decode-residual check
/// (docs/DESIGN.md §7), book their work as waste, and recover through the
/// §4.3 wave hooks; uncoded strategies have no redundancy to verify
/// against and fail deterministically. Soundness requires
/// |corrupt_workers| <= n - k - 1 (at least one redundant response beyond
/// the exclusion set must remain to confirm consistency).
struct ByzantineSpec {
  std::vector<std::size_t> corrupt_workers;  // empty = honest cluster
  double corruption_scale = 1e3;  // magnitude of the injected perturbation
  std::uint64_t seed = 0;         // deterministic corruption pattern

  [[nodiscard]] bool active() const { return !corrupt_workers.empty(); }
};

struct ClusterSpec {
  std::vector<sim::SpeedTrace> traces;  // one per worker
  sim::NetworkModel net{1e-4, 1.25e9};  // 10 Gb/s, 100us latency
  double worker_flops = 1e9;            // at relative speed 1.0
  double master_flops = 1e9;            // decode speed
  ByzantineSpec byzantine;              // default: honest cluster

  [[nodiscard]] std::size_t num_workers() const { return traces.size(); }

  /// Uniform cluster helper (tests / examples).
  static ClusterSpec uniform(std::size_t n, double speed = 1.0);
};

/// The one strategy taxonomy every layer shares — engines, harness axes,
/// job driver, report, CLIs. Replaces the pre-PR-5 trio of
/// core::Strategy / harness::EngineKind / harness::JobStrategy, which
/// drifted independently and were switch-dispatched at every consumer.
/// `strategy_name` / `parse_strategy` are the single naming authority;
/// capability predicates below drive the harness axes and the README
/// strategy table. Engines are constructed through the registry in
/// engine_factory.h.
enum class StrategyKind {
  kS2C2,              // speed-proportional MDS shares (paper §4.2, Alg. 1)
  kS2C2Basic,         // equal shares over non-stragglers (paper §4.1)
  kMds,               // fastest k full partitions (prior work [22])
  kPoly,              // polynomial code + S2C2 allocation (§5)
  kPolyConventional,  // polynomial code, fastest-a² collection
  kReplication,       // uncoded r-replication + LATE speculation (§7.1)
  kOverDecomp,        // over-decomposition + predicted balancing (§7.2)
  kLt,                // rateless LT code, symbol-threshold collection
                      // (Mallick et al., PAPERS.md)
  kAgc,               // adaptive gradient coding: per-round redundancy
                      // from predicted speeds (Cao et al., PAPERS.md)
};

/// Canonical short name ("s2c2", "mds", "poly", ... ) — the spelling CLIs
/// parse, tables print, and report CSVs embed.
[[nodiscard]] const char* strategy_name(StrategyKind s);

/// Inverse of strategy_name. Throws std::invalid_argument on unknown
/// names; callers restricting to an axis subset (e.g. the scenario
/// matrix's four engines) check membership on top.
[[nodiscard]] StrategyKind parse_strategy(const std::string& name);

/// All kinds, in enum order (the registry's seed list).
[[nodiscard]] std::vector<StrategyKind> all_strategy_kinds();

/// True when the strategy's *allocation* consumes speed predictions.
/// kMds reads oracle speeds for misprediction telemetry only, so it is
/// prediction-blind here (matching the harness axes' historical split).
[[nodiscard]] bool strategy_uses_predictions(StrategyKind s);

/// True for strategies whose master runs a decode (MDS / polynomial
/// codes); the uncoded baselines compute exact products directly.
[[nodiscard]] bool strategy_is_coded(StrategyKind s);

/// True when the strategy runs the §4.3 timeout + chunk-reassignment
/// recovery window (the S2C2 family); fastest-quorum and uncoded
/// strategies simply cancel or speculate.
[[nodiscard]] bool strategy_uses_recovery(StrategyKind s);

/// True when the strategy can detect and survive Byzantine (corrupted)
/// responses by spending redundancy on the decode-residual check
/// (docs/DESIGN.md §7). The uncoded baselines forward unverifiable
/// products and fail deterministically under a ByzantineSpec; the
/// rateless `lt` strategy is coded but collects a bare symbol threshold
/// with no over-provisioned verification pass, so it refuses Byzantine
/// clusters too.
[[nodiscard]] bool strategy_tolerates_byzantine(StrategyKind s);

/// True when the engine implements the width-generic block data path
/// (run_round_block with width > 1) — the serving layer's coalescing
/// gate. The polynomial engines decode a bilinear form per RHS column
/// and reject wider rounds.
[[nodiscard]] bool strategy_supports_block_rounds(StrategyKind s);

struct EngineConfig {
  /// Allocation/collection policy of the MDS-coded engine; one of
  /// kS2C2, kS2C2Basic, kMds.
  StrategyKind strategy = StrategyKind::kS2C2;

  /// Chunk granularity per partition (over-decomposition factor). The
  /// paper's Algorithm 1 uses Σu_i; a fixed power of two behaves the same
  /// and keeps decode group counts stable (ablated in bench_abl_granularity).
  std::size_t chunks_per_partition = 24;

  /// Timeout = factor x (mean response time of first k) — paper §4.3 picks
  /// 1.15 from the predictor's 16.7% MAPE.
  double timeout_factor = 1.15;

  /// Basic S2C2 flags worker w a straggler when its predicted speed falls
  /// below threshold x median predicted speed.
  double straggler_threshold = 0.5;

  /// Use the true trace speed at round start instead of the predictor
  /// (the paper's "knowing the exact speeds" variant in Figs 6/7).
  bool oracle_speeds = false;

  /// Wrap the predictor in predict::HealthInformedPredictor: predictions
  /// are scaled by the health monitor's degradation factor, so a fail-slow
  /// worker's allocation shrinks ahead of the EWMA the raw predictor
  /// tracks. Off by default — it changes allocations, and the pinned
  /// honest-cluster fingerprints must not see it.
  bool health_informed = false;
};

/// Flop-count helpers for the cost model.
[[nodiscard]] constexpr double matvec_flops(std::size_t rows,
                                            std::size_t cols) {
  return 2.0 * static_cast<double>(rows) * static_cast<double>(cols);
}

/// The *dense* decode cost: `groups` distinct k x k LU factorizations plus
/// triangular solves for every reconstructed value — the seed latency
/// model, O(k³) per fresh responder set. The engines now charge decode
/// through coding::DecodeContext (Schur-reduced / structured-Vandermonde,
/// factorizations cached across rounds; see docs/PERFORMANCE.md); this
/// function remains as the uncached dense reference that
/// bench_decode_scale and the decode-context tests compare against.
[[nodiscard]] double decode_flops(std::size_t k, std::size_t values,
                                  std::size_t groups);

}  // namespace s2c2::core
