// Cluster specification, cost model, and strategy configuration shared by
// every execution engine.
//
// Work is measured in "unit-speed seconds": a kernel of F flops takes
// F / worker_flops seconds on a worker running at relative speed 1.0, and
// the speed trace integral converts that to wall-clock time. All of the
// paper's results are relative latencies, so only the *ratios* between
// compute, communication, and decode costs matter; the defaults model a
// ~1 Gflop/s (1-vCPU) cloud node on a 10 Gb/s / 100 us network, and the
// harness layers rescale them per scenario (see make_cluster /
// job_cluster) to keep those ratios honest at test-sized operators.
#pragma once

#include <cstddef>
#include <vector>

#include "src/sim/network.h"
#include "src/sim/speed_trace.h"

namespace s2c2::core {

struct ClusterSpec {
  std::vector<sim::SpeedTrace> traces;  // one per worker
  sim::NetworkModel net{1e-4, 1.25e9};  // 10 Gb/s, 100us latency
  double worker_flops = 1e9;            // at relative speed 1.0
  double master_flops = 1e9;            // decode speed

  [[nodiscard]] std::size_t num_workers() const { return traces.size(); }

  /// Uniform cluster helper (tests / examples).
  static ClusterSpec uniform(std::size_t n, double speed = 1.0);
};

enum class Strategy {
  kMdsConventional,  // wait for fastest k full partitions (prior work [22])
  kS2C2Basic,        // equal shares over non-straggler workers (paper §4.1)
  kS2C2General,      // speed-proportional shares (paper §4.2, Algorithm 1)
};

[[nodiscard]] const char* strategy_name(Strategy s);

struct EngineConfig {
  Strategy strategy = Strategy::kS2C2General;

  /// Chunk granularity per partition (over-decomposition factor). The
  /// paper's Algorithm 1 uses Σu_i; a fixed power of two behaves the same
  /// and keeps decode group counts stable (ablated in bench_abl_granularity).
  std::size_t chunks_per_partition = 24;

  /// Timeout = factor x (mean response time of first k) — paper §4.3 picks
  /// 1.15 from the predictor's 16.7% MAPE.
  double timeout_factor = 1.15;

  /// Basic S2C2 flags worker w a straggler when its predicted speed falls
  /// below threshold x median predicted speed.
  double straggler_threshold = 0.5;

  /// Use the true trace speed at round start instead of the predictor
  /// (the paper's "knowing the exact speeds" variant in Figs 6/7).
  bool oracle_speeds = false;
};

/// Flop-count helpers for the cost model.
[[nodiscard]] constexpr double matvec_flops(std::size_t rows,
                                            std::size_t cols) {
  return 2.0 * static_cast<double>(rows) * static_cast<double>(cols);
}

/// The *dense* decode cost: `groups` distinct k x k LU factorizations plus
/// triangular solves for every reconstructed value — the seed latency
/// model, O(k³) per fresh responder set. The engines now charge decode
/// through coding::DecodeContext (Schur-reduced / structured-Vandermonde,
/// factorizations cached across rounds; see docs/PERFORMANCE.md); this
/// function remains as the uncached dense reference that
/// bench_decode_scale and the decode-context tests compare against.
[[nodiscard]] double decode_flops(std::size_t k, std::size_t values,
                                  std::size_t groups);

}  // namespace s2c2::core
