#include "src/core/strategy_engine.h"

#include <stdexcept>
#include <string>

#include "src/util/require.h"

namespace s2c2::core {

StrategyEngine::StrategyEngine(StrategyKind kind, ClusterSpec spec,
                               std::unique_ptr<predict::SpeedPredictor>
                                   predictor)
    : spec_(std::move(spec)),
      predictor_(std::move(predictor)),
      accounting_(spec_.num_workers()),
      kind_(kind) {}

void StrategyEngine::set_inner_jobs(std::size_t jobs) {
  inner_jobs_ = jobs == 0 ? util::ThreadPool::hardware_threads() : jobs;
  inner_pool_ = inner_jobs_ >= 2
                    ? std::make_unique<util::ThreadPool>(inner_jobs_ - 1)
                    : nullptr;
}

void StrategyEngine::ensure_predictor(bool oracle_speeds) {
  if (!predictor_ && !oracle_speeds) {
    predictor_ =
        std::make_unique<predict::LastValuePredictor>(spec_.num_workers());
  }
}

RoundResult StrategyEngine::run_round_block(const linalg::Matrix& x_block,
                                            std::size_t width) {
  S2C2_REQUIRE(width >= 1, "block round width must be >= 1");
  S2C2_REQUIRE(x_block.empty() || x_block.cols() == width,
               "x_block must have exactly `width` columns");
  if (width == 1) {
    // A cols x 1 row-major panel is a contiguous vector — route it through
    // the classic path so b=1 block rounds are bit-for-bit unchanged.
    return run_round(x_block.empty() ? std::span<const double>{}
                                     : x_block.data());
  }
  throw std::logic_error(std::string(strategy_name(kind())) +
                         " does not support block rounds (width > 1)");
}

std::vector<RoundResult> StrategyEngine::run_rounds(
    std::size_t rounds, std::span<const double> x) {
  std::vector<RoundResult> out;
  out.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) out.push_back(run_round(x));
  return out;
}

double StrategyEngine::timeout_rate() const {
  return rounds_run_ > 0
             ? static_cast<double>(timeouts_) / static_cast<double>(rounds_run_)
             : 0.0;
}

double StrategyEngine::misprediction_rate() const {
  return prediction_samples_ > 0
             ? static_cast<double>(mispredictions_) /
                   static_cast<double>(prediction_samples_)
             : 0.0;
}

double total_latency(std::span<const RoundResult> results) {
  double acc = 0.0;
  for (const RoundResult& r : results) acc += r.stats.latency();
  return acc;
}

}  // namespace s2c2::core
