#include "src/core/replication_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/util/require.h"
#include "src/util/rng.h"

namespace s2c2::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

ReplicationEngine::ReplicationEngine(std::size_t data_rows,
                                     std::size_t data_cols, ClusterSpec spec,
                                     ReplicationConfig config,
                                     DirectMultiply direct)
    : StrategyEngine(StrategyKind::kReplication, std::move(spec), nullptr),
      data_rows_(data_rows),
      data_cols_(data_cols),
      config_(config),
      direct_(std::move(direct)) {
  const std::size_t n = spec_.num_workers();
  S2C2_REQUIRE(n >= 2, "need at least two workers");
  S2C2_REQUIRE(config_.replication >= 1 && config_.replication <= n,
               "replication factor out of range");
  // Primary on worker p; r-1 backups per the placement policy.
  util::Rng rng(config_.placement_seed);
  placement_.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    placement_[p].push_back(p);
    if (config_.placement == Placement::kRoundRobin) {
      for (std::size_t i = 1; i < config_.replication; ++i) {
        placement_[p].push_back((p + i) % n);
      }
    } else {
      std::vector<std::size_t> others;
      for (std::size_t w = 0; w < n; ++w) {
        if (w != p) others.push_back(w);
      }
      rng.shuffle(others);
      for (std::size_t i = 0; i + 1 < config_.replication; ++i) {
        placement_[p].push_back(others[i]);
      }
    }
  }
}

RoundResult ReplicationEngine::run_round(std::span<const double> x) {
  return run_round_impl(x, nullptr, 1);
}

RoundResult ReplicationEngine::run_round_block(const linalg::Matrix& x_block,
                                               std::size_t width) {
  S2C2_REQUIRE(width >= 1, "block round width must be >= 1");
  S2C2_REQUIRE(x_block.empty() || x_block.cols() == width,
               "x_block must have exactly `width` columns");
  if (width == 1) {
    return run_round(x_block.empty() ? std::span<const double>{}
                                     : x_block.data());
  }
  return run_round_impl({}, &x_block, width);
}

RoundResult ReplicationEngine::run_round_impl(std::span<const double> x,
                                              const linalg::Matrix* x_block,
                                              std::size_t width) {
  if (spec_.byzantine.active()) {
    // Replicas carry no redundancy a residual check could verify against:
    // a corrupted copy is indistinguishable from an honest one, so the
    // strategy fails deterministically (a `failed` scenario-matrix cell —
    // docs/DESIGN.md §7).
    throw std::runtime_error(
        "cluster failure: replication cannot verify byzantine responses");
  }
  const std::size_t n = spec_.num_workers();
  const sim::Time t0 = now_;
  const std::size_t task_rows = (data_rows_ + n - 1) / n;
  // Per-round charges scale by the RHS block width; partition_bytes does
  // not (it is stored data, moved only on non-holder speculation).
  const double task_work = matvec_flops(task_rows, data_cols_) *
                           static_cast<double>(width) / spec_.worker_flops;
  const std::size_t x_bytes = data_cols_ * width * 8;
  const std::size_t result_bytes = task_rows * width * 8;
  const std::size_t partition_bytes = task_rows * data_cols_ * 8;

  // Primary executions.
  std::vector<sim::Time> primary_resp(n);
  std::vector<sim::Time> x_arrival(n);
  for (std::size_t w = 0; w < n; ++w) {
    x_arrival[w] = t0 + spec_.net.transfer_time(x_bytes);
    const sim::Time done =
        spec_.traces[w].time_to_complete(x_arrival[w], task_work);
    primary_resp[w] =
        done == kInf ? kInf : done + spec_.net.transfer_time(result_bytes);
  }

  // Speculation decision point: when `quantile` of tasks have responded.
  std::vector<sim::Time> sorted = primary_resp;
  std::sort(sorted.begin(), sorted.end());
  const auto q_idx = static_cast<std::size_t>(std::ceil(
      config_.speculation_quantile * static_cast<double>(n)));
  const sim::Time t_spec = sorted[std::min(q_idx, n - 1)];
  if (t_spec == kInf) {
    throw std::runtime_error("cluster failure: too few live workers");
  }

  // Outstanding tasks at t_spec, slowest first.
  std::vector<std::size_t> candidates;
  for (std::size_t p = 0; p < n; ++p) {
    if (primary_resp[p] > t_spec) candidates.push_back(p);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](std::size_t a, std::size_t b) {
              return primary_resp[a] > primary_resp[b];
            });
  if (candidates.size() > config_.max_speculative) {
    candidates.resize(config_.max_speculative);
  }

  // Idle pool: workers whose primary already responded; each becomes
  // available again after finishing a speculative task.
  std::vector<sim::Time> available(n, kInf);
  for (std::size_t w = 0; w < n; ++w) {
    if (primary_resp[w] <= t_spec) available[w] = t_spec;
  }

  RoundResult result;
  result.stats.start = t0;
  std::vector<sim::Time> completion = primary_resp;

  for (std::size_t task : candidates) {
    // Best speculative placement: replica holders strictly first; data
    // movement only when no idle holder exists ("absolutely needed").
    std::size_t best_w = n;
    sim::Time best_finish = kInf;
    bool best_moved = false;
    for (const bool holders_pass : {true, false}) {
      if (!holders_pass && !config_.allow_data_movement) break;
      for (std::size_t w = 0; w < n; ++w) {
        if (available[w] == kInf || w == task) continue;
        const bool holder =
            std::find(placement_[task].begin(), placement_[task].end(), w) !=
            placement_[task].end();
        if (holder != holders_pass) continue;
        sim::Time start = available[w] + spec_.net.latency_s;
        if (!holder) start += spec_.net.partition_move_time(partition_bytes);
        const sim::Time done =
            spec_.traces[w].time_to_complete(start, task_work);
        if (done == kInf) continue;
        const sim::Time finish = done + spec_.net.transfer_time(result_bytes);
        if (finish < best_finish) {
          best_w = w;
          best_finish = finish;
          best_moved = !holder;
        }
      }
      if (best_w != n) break;  // found an idle holder; never move data
    }
    if (best_w == n) continue;  // nobody available — task rides on primary
    if (best_finish < completion[task]) {
      // Speculative copy wins: primary's progress becomes waste.
      const double primary_progress = std::min(
          task_work, spec_.traces[task].work_between(
                         x_arrival[task], std::min(best_finish, kInf)));
      accounting_.add_wasted(task, primary_progress);
      accounting_.add_useful(best_w, task_work);
      completion[task] = best_finish;
      if (best_moved) {
        ++result.stats.data_moves;
        accounting_.add_traffic(best_w, 0.0,
                                static_cast<double>(partition_bytes));
      }
    } else {
      // Primary wins: whatever the speculative copy managed is waste (zero
      // when the primary finished before the copy even started).
      const sim::Time spec_start = available[best_w];
      const sim::Time until = std::max(spec_start, completion[task]);
      const double spec_progress = std::min(
          task_work, spec_.traces[best_w].work_between(spec_start, until));
      accounting_.add_wasted(best_w, spec_progress);
      accounting_.add_useful(task, task_work);
    }
    available[best_w] = best_finish;
  }
  // Tasks that were never speculated: primary work was useful.
  for (std::size_t p = 0; p < n; ++p) {
    if (std::find(candidates.begin(), candidates.end(), p) ==
        candidates.end()) {
      accounting_.add_useful(p, task_work);
    }
  }

  sim::Time end = 0.0;
  for (sim::Time t : completion) end = std::max(end, t);
  if (end == kInf) {
    throw std::runtime_error("cluster failure: task cannot complete");
  }
  result.stats.coverage = end;  // uncoded: no master decode after collection
  result.stats.end = end;

  // Uncoded execution computes the exact product by construction: forward
  // it so functional loops go through the same code path as the coded
  // engines (mirrors the PR 3 run_rounds fix). Block rounds forward the
  // whole panel product in one matmat call.
  if (direct_) {
    if (x_block != nullptr && !x_block->empty()) {
      result.y_block = direct_(*x_block);
    } else if (!x.empty()) {
      const linalg::Matrix panel(x.size(), 1, {x.begin(), x.end()});
      const linalg::Matrix y = direct_(panel);
      result.y = linalg::Vector(y.data().begin(), y.data().end());
    }
  }

  now_ = end;
  ++rounds_run_;
  return result;
}

}  // namespace s2c2::core
