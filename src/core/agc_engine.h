// AdaptiveGradientEngine — adaptive gradient coding (Cao et al., PAPERS.md)
// behind StrategyKind::kAgc.
//
// The whole MDS-coded lifecycle is inherited from CodedComputeEngine: job
// geometry, the §4.3 timeout + wave recovery, the cached Schur decode, and
// the Byzantine verification pass. The one adaptive ingredient is the
// allocation: instead of S2C2's speed-proportional chunk shares, AGC
// decides how MANY workers receive a full partition each round. It counts
// predicted stragglers e (predicted speed below straggler_threshold x
// median — the basic-S2C2 flag rule), sizes the active set to
// min(n, collection_quorum() + e), and fills it with the predicted-fastest
// workers (stable index tie-break). Each predicted straggler buys one
// extra full partition of redundancy — Cao et al.'s per-round redundancy
// rule with B = e — while the excluded workers do no work at all, so a
// well-predicted round wastes nothing.
//
// Degradation property (pinned in tests/engine_conformance_test.cpp):
// under an oracle predictor on a straggler-free cluster e == 0, the active
// set is exactly the quorum of fastest workers, and every round matches
// conventional MDS latency and decoded product bit for bit — with none of
// MDS's n - k cancelled-worker waste.
#pragma once

#include "src/core/engine.h"

namespace s2c2::core {

class AdaptiveGradientEngine final : public CodedComputeEngine {
 public:
  /// Same inputs as CodedComputeEngine; config.strategy must be kAgc.
  /// The straggler_threshold and quorum knobs drive the redundancy rule.
  AdaptiveGradientEngine(CodedMatVecJob job, ClusterSpec spec,
                         EngineConfig config,
                         std::unique_ptr<predict::SpeedPredictor> predictor =
                             nullptr);

 protected:
  void allocate_into(std::span<const double> speeds,
                     sched::Allocation& out) override;

 private:
  std::vector<std::size_t> order_scratch_;
  std::vector<bool> excluded_scratch_;
};

}  // namespace s2c2::core
