#include "src/core/engine.h"

#include <utility>

#include "src/coding/chunked_decoder.h"
#include "src/util/require.h"

namespace s2c2::core {

namespace {

StrategyKind validated_kind(const EngineConfig& config) {
  S2C2_REQUIRE(config.strategy == StrategyKind::kS2C2 ||
                   config.strategy == StrategyKind::kS2C2Basic ||
                   config.strategy == StrategyKind::kMds,
               "CodedComputeEngine runs the MDS-coded strategies only "
               "(s2c2, s2c2-basic, mds)");
  return config.strategy;
}

}  // namespace

CodedComputeEngine::CodedComputeEngine(
    CodedMatVecJob job, ClusterSpec spec, EngineConfig config,
    std::unique_ptr<predict::SpeedPredictor> predictor)
    : RoundExecutor(validated_kind(config), std::move(spec),
                    std::move(predictor), config.oracle_speeds,
                    config.timeout_factor, config.straggler_threshold,
                    config.chunks_per_partition),
      job_(std::move(job)),
      decode_ctx_(job_.generator()) {
  S2C2_REQUIRE(spec_.num_workers() == job_.n(),
               "cluster must provide one trace per code partition");
  S2C2_REQUIRE(config.chunks_per_partition == job_.chunks_per_partition(),
               "engine and job chunk granularity must agree");
}

std::vector<std::vector<std::size_t>> CodedComputeEngine::decode_subsets(
    const RoundLedger& ledger) const {
  // The k smallest responding worker ids per chunk — final_chunk_workers
  // is sorted, matching the functional decoder's arrival order, so
  // cost-model cache keys and numeric cache keys are the same.
  const std::size_t k = job_.k();
  std::vector<std::vector<std::size_t>> subsets(
      ledger.final_chunk_workers.size());
  for (std::size_t c = 0; c < subsets.size(); ++c) {
    subsets[c].assign(ledger.final_chunk_workers[c].begin(),
                      ledger.final_chunk_workers[c].begin() +
                          static_cast<std::ptrdiff_t>(k));
  }
  return subsets;
}

void CodedComputeEngine::decode_product(RoundResult& result,
                                        const RoundLedger& ledger,
                                        std::span<const double> x) {
  S2C2_REQUIRE(x.size() == job_.data_cols(), "input vector size mismatch");
  coding::ChunkedDecoder decoder = job_.make_decoder(&decode_ctx_);
  for (std::size_t w = 0; w < spec_.num_workers(); ++w) {
    if (ledger.used[w]) {
      for (std::size_t c : ledger.alloc.chunks_of(w)) {
        decoder.add_chunk_result(w, c, job_.compute_chunk(w, c, x));
      }
      for (std::size_t c : ledger.extra_chunks[w]) {
        decoder.add_chunk_result(w, c, job_.compute_chunk(w, c, x));
      }
    }
  }
  result.y = job_.trim(decoder.decode());
}

}  // namespace s2c2::core
