#include "src/core/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "src/sched/coverage.h"
#include "src/sched/reassignment.h"
#include "src/util/require.h"
#include "src/util/stats.h"

namespace s2c2::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Finite stand-in for "until forever" when integrating a trace that ends at
// zero speed (a dead worker's progress before its death).
constexpr double kFarHorizon = 1e300;
}  // namespace

CodedComputeEngine::CodedComputeEngine(
    CodedMatVecJob job, ClusterSpec spec, EngineConfig config,
    std::unique_ptr<predict::SpeedPredictor> predictor)
    : job_(std::move(job)),
      spec_(std::move(spec)),
      config_(config),
      predictor_(std::move(predictor)),
      decode_ctx_(job_.generator()),
      accounting_(spec_.num_workers()) {
  S2C2_REQUIRE(spec_.num_workers() == job_.n(),
               "cluster must provide one trace per code partition");
  S2C2_REQUIRE(config_.chunks_per_partition == job_.chunks_per_partition(),
               "engine and job chunk granularity must agree");
  if (!predictor_ && !config_.oracle_speeds) {
    predictor_ = std::make_unique<predict::LastValuePredictor>(job_.n());
  }
}

std::vector<double> CodedComputeEngine::predicted_speeds(sim::Time t0) {
  const std::size_t n = job_.n();
  std::vector<double> speeds(n, 1.0);
  if (config_.oracle_speeds) {
    for (std::size_t w = 0; w < n; ++w) {
      speeds[w] = spec_.traces[w].speed_at(t0);
    }
  } else {
    for (std::size_t w = 0; w < n; ++w) {
      speeds[w] = predictor_->predict(w);
    }
  }
  return speeds;
}

sched::Allocation CodedComputeEngine::make_allocation(
    std::span<const double> speeds) const {
  const std::size_t n = job_.n();
  const std::size_t k = job_.k();
  const std::size_t c = config_.chunks_per_partition;
  switch (config_.strategy) {
    case Strategy::kMdsConventional:
      return sched::full_allocation(n, c);
    case Strategy::kS2C2Basic: {
      // Flag stragglers below threshold x median predicted speed; keep at
      // least k live workers by un-flagging the fastest flagged ones.
      std::vector<double> sorted(speeds.begin(), speeds.end());
      const double med = util::median(sorted);
      std::vector<bool> straggler(n, false);
      std::size_t live = 0;
      for (std::size_t w = 0; w < n; ++w) {
        straggler[w] = speeds[w] < config_.straggler_threshold * med;
        if (!straggler[w]) ++live;
      }
      if (live < k) {
        std::vector<std::size_t> flagged;
        for (std::size_t w = 0; w < n; ++w) {
          if (straggler[w]) flagged.push_back(w);
        }
        std::sort(flagged.begin(), flagged.end(),
                  [&](std::size_t a, std::size_t b) {
                    return speeds[a] > speeds[b];
                  });
        for (std::size_t i = 0; live < k && i < flagged.size(); ++i) {
          straggler[flagged[i]] = false;
          ++live;
        }
      }
      return sched::basic_s2c2_allocation(straggler, k, c);
    }
    case Strategy::kS2C2General: {
      std::vector<double> s(speeds.begin(), speeds.end());
      std::size_t positive = 0;
      for (double v : s) {
        if (v > 0.0) ++positive;
      }
      if (positive < k) {
        // Predictor wrote off too many workers: fall back to treating all
        // of them as slow-but-alive so the allocation stays feasible; the
        // timeout path recovers if they really are dead.
        for (double& v : s) v = std::max(v, 0.05);
      }
      return sched::proportional_allocation(s, k, c);
    }
  }
  throw std::logic_error("unreachable strategy");
}

CodedComputeEngine::WorkerTiming CodedComputeEngine::simulate_worker(
    std::size_t w, sim::Time t0, std::size_t chunks) const {
  WorkerTiming t;
  t.assigned_chunks = chunks;
  if (chunks == 0) return t;
  t.x_arrival = t0 + spec_.net.transfer_time(job_.x_bytes());
  const double work =
      static_cast<double>(chunks) * job_.chunk_flops() / spec_.worker_flops;
  t.compute_done = spec_.traces[w].time_to_complete(t.x_arrival, work);
  t.response =
      t.compute_done == kInf
          ? kInf
          : t.compute_done + spec_.net.transfer_time(
                                 chunks * job_.chunk_result_bytes());
  return t;
}

RoundResult CodedComputeEngine::run_round(std::span<const double> x) {
  const std::size_t n = job_.n();
  const std::size_t k = job_.k();
  const sim::Time t0 = now_;
  const bool functional = job_.functional() && !x.empty();
  const double chunk_work = job_.chunk_flops() / spec_.worker_flops;

  RoundResult result;
  result.stats.start = t0;
  result.predicted_speeds = predicted_speeds(t0);
  const sched::Allocation alloc = make_allocation(result.predicted_speeds);

  std::vector<WorkerTiming> timing(n);
  for (std::size_t w = 0; w < n; ++w) {
    timing[w] = simulate_worker(w, t0, alloc.per_worker[w].count);
  }

  // Workers with assigned work, ordered by response time.
  std::vector<std::size_t> assigned;
  for (std::size_t w = 0; w < n; ++w) {
    if (timing[w].assigned_chunks > 0) assigned.push_back(w);
  }
  std::vector<std::size_t> by_response = assigned;
  std::sort(by_response.begin(), by_response.end(),
            [&](std::size_t a, std::size_t b) {
              return timing[a].response < timing[b].response;
            });
  std::size_t finite = 0;
  for (std::size_t w : by_response) {
    if (timing[w].response < kInf) ++finite;
  }
  if (finite < k) {
    throw std::runtime_error(
        "cluster failure: fewer than k workers can respond");
  }

  // Final per-chunk responder sets (for decode-cost and functional decode),
  // per-worker used chunks, and the round-completion bookkeeping below.
  std::vector<std::vector<std::size_t>> final_chunk_workers(
      alloc.chunks_per_partition);
  std::vector<std::vector<std::size_t>> extra_chunks(n);  // reassigned work
  std::vector<sim::Time> recovery_busy(n, 0.0);  // compute spent on extras
  std::vector<double> recovery_waste(n, 0.0);    // died mid-reassignment
  std::vector<bool> used(n, false);
  std::vector<bool> cancelled(n, false);
  sim::Time coverage_time = 0.0;
  sim::Time cancel_time = 0.0;  // when cancelled workers stop computing

  if (config_.strategy == Strategy::kMdsConventional) {
    // Fastest k full partitions win; everyone else is cancelled when the
    // k-th response arrives.
    const std::size_t kth = by_response[k - 1];
    coverage_time = timing[kth].response;
    cancel_time = coverage_time;
    for (std::size_t i = 0; i < k; ++i) used[by_response[i]] = true;
    for (std::size_t w : assigned) {
      if (!used[w]) cancelled[w] = true;
    }
    for (std::size_t c = 0; c < alloc.chunks_per_partition; ++c) {
      for (std::size_t i = 0; i < k; ++i) {
        final_chunk_workers[c].push_back(by_response[i]);
      }
      std::sort(final_chunk_workers[c].begin(), final_chunk_workers[c].end());
    }
    result.stats.timeout_fired = false;
  } else {
    // S2C2 collection with the §4.3 timeout. The reference point is the
    // k-th fastest response — the last one a minimal decode needs. (The
    // paper words this as the *average* of the first k; when responses are
    // balanced, as in its experiments, the two coincide. Under strong speed
    // spread the fastest workers hit the partition cap and finish early,
    // which drags the average below the balanced finish time of the
    // uncapped workers and would fire the timeout every round — see
    // docs/DESIGN.md §5 and bench_abl_timeout.)
    const double avg_k = timing[by_response[k - 1]].response - t0;
    sim::Time deadline = t0 + config_.timeout_factor * avg_k;

    // Responders within the deadline; grow the set until it can cover
    // every chunk (needs at least k distinct workers).
    std::size_t r_count = 0;
    while (r_count < by_response.size() &&
           timing[by_response[r_count]].response <= deadline) {
      ++r_count;
    }
    if (r_count < k) {
      // Fewer than k beat the deadline (reachable when timeout_factor < 1):
      // the master must wait for the k-th fastest response anyway, so the
      // effective deadline moves there — and the responder set has to be
      // re-scanned against it, or workers tied at the extended deadline
      // stay spuriously cancelled with their finished work booked as waste.
      deadline = timing[by_response[k - 1]].response;
      r_count = k;
      while (r_count < by_response.size() &&
             timing[by_response[r_count]].response <= deadline) {
        ++r_count;
      }
    }
    std::vector<bool> responded(n, false);
    for (std::size_t i = 0; i < r_count; ++i) {
      responded[by_response[i]] = true;
    }

    const bool all_responded = r_count == assigned.size();
    result.stats.timeout_fired = !all_responded;

    // Base coverage from responders.
    const auto alloc_chunk_workers = sched::chunk_workers(alloc);
    for (std::size_t c = 0; c < alloc.chunks_per_partition; ++c) {
      for (std::size_t w : alloc_chunk_workers[c]) {
        if (responded[w]) final_chunk_workers[c].push_back(w);
      }
    }

    for (std::size_t w : assigned) {
      if (responded[w]) {
        used[w] = true;
      } else {
        cancelled[w] = true;
      }
    }
    coverage_time = timing[by_response[r_count - 1]].response;
    cancel_time = deadline;

    if (!all_responded) {
      // §4.3 recovery, generalized to cascading failures: deficient chunks
      // are planned among live responders; a recovery worker that itself
      // dies mid-reassignment is detected when the wave's timeout deadline
      // passes, its partial progress is booked as waste, and its unfinished
      // chunks are re-planned among the workers still alive. At most n
      // waves run (every extra wave removes at least one dead worker).
      std::vector<bool> recovery_live = responded;
      // A worker is free for (more) recovery work once it sent its latest
      // response — original or a previous wave's extras.
      std::vector<sim::Time> free_at(n, 0.0);
      for (std::size_t w : assigned) free_at[w] = timing[w].response;
      sim::Time wave_issue = deadline;
      for (std::size_t wave = 0; wave < n; ++wave) {
        std::vector<std::size_t> deficient;
        std::vector<std::vector<std::size_t>> have;
        std::vector<std::size_t> needed;
        for (std::size_t c = 0; c < alloc.chunks_per_partition; ++c) {
          if (final_chunk_workers[c].size() < k) {
            deficient.push_back(c);
            have.push_back(final_chunk_workers[c]);
            needed.push_back(k - final_chunk_workers[c].size());
          }
        }
        if (deficient.empty()) break;
        std::vector<double> rspeeds(n, 0.0);
        for (std::size_t w = 0; w < n; ++w) {
          if (recovery_live[w]) {
            rspeeds[w] = std::max(result.predicted_speeds[w], 1e-3);
          }
        }
        sched::ReassignmentPlan plan;
        try {
          plan = sched::plan_reassignment(deficient, have, needed, rspeeds);
        } catch (const std::invalid_argument& e) {
          throw std::runtime_error(
              std::string("cluster failure: recovery infeasible: ") +
              e.what());
        }
        result.stats.reassigned_chunks += plan.total_chunks();
        sim::Time wave_deadline = wave_issue;
        bool any_death = false;
        for (std::size_t w = 0; w < n; ++w) {
          const auto& extras = plan.chunks_per_worker[w];
          if (extras.empty()) continue;
          // The master's reassignment message costs one network latency.
          const sim::Time start =
              std::max(wave_issue, free_at[w]) + spec_.net.latency_s;
          const double work = static_cast<double>(extras.size()) * chunk_work;
          const sim::Time done = spec_.traces[w].time_to_complete(start, work);
          const sim::Time send =
              spec_.net.transfer_time(extras.size() *
                                      job_.chunk_result_bytes());
          if (done == kInf) {
            any_death = true;
            recovery_live[w] = false;
            recovery_waste[w] +=
                spec_.traces[w].work_between(start, kFarHorizon);
            // The master discovers the death when the worker's expected
            // response (at its predicted speed) times out.
            const sim::Time expected = start + work / rspeeds[w] + send;
            wave_deadline =
                std::max(wave_deadline,
                         start + config_.timeout_factor * (expected - start));
            continue;
          }
          recovery_busy[w] += done - start;
          free_at[w] = done + send;
          for (std::size_t c : extras) final_chunk_workers[c].push_back(w);
          extra_chunks[w].insert(extra_chunks[w].end(), extras.begin(),
                                 extras.end());
          coverage_time = std::max(coverage_time, done + send);
        }
        if (!any_death) break;
        // No earlier wave can be issued: the master only learns about the
        // death once the wave deadline passes.
        coverage_time = std::max(coverage_time, wave_deadline);
        wave_issue = wave_deadline;
      }
      for (auto& ws : final_chunk_workers) std::sort(ws.begin(), ws.end());
    }
  }

  // ---- decode cost ----
  // One recovery system per maximal run of consecutive chunks sharing a
  // decode subset (the k smallest responding worker ids —
  // final_chunk_workers is sorted, matching the functional decoder's
  // arrival order, so cost-model cache keys and numeric cache keys are the
  // same). The context charges the Schur-reduced factorization only on
  // cache misses; repeated responder sets across rounds pay solve cost
  // alone. The seed's dense model is decode_flops() in strategy_config.h.
  std::vector<std::vector<std::size_t>> decode_subsets(
      alloc.chunks_per_partition);
  for (std::size_t c = 0; c < alloc.chunks_per_partition; ++c) {
    decode_subsets[c].assign(final_chunk_workers[c].begin(),
                             final_chunk_workers[c].begin() +
                                 static_cast<std::ptrdiff_t>(k));
  }
  double dec_flops = 0.0;
  for (std::size_t c = 0; c < alloc.chunks_per_partition;) {
    std::size_t e = c + 1;
    while (e < alloc.chunks_per_partition &&
           decode_subsets[e] == decode_subsets[c]) {
      ++e;
    }
    dec_flops +=
        decode_ctx_.charge(decode_subsets[c], (e - c) * job_.rows_per_chunk())
            .flops;
    c = e;
  }
  const sim::Time decode_time = dec_flops / spec_.master_flops;
  result.stats.coverage = coverage_time;
  result.stats.end = coverage_time + decode_time;

  // ---- accounting ----
  for (std::size_t w : assigned) {
    const double assigned_work =
        static_cast<double>(timing[w].assigned_chunks) * chunk_work;
    if (used[w]) {
      accounting_.add_useful(w, assigned_work);
      accounting_.add_useful(
          w, static_cast<double>(extra_chunks[w].size()) * chunk_work);
      // Busy time covers both the original window and the recovery window
      // spent on reassigned extras; otherwise utilization is under-reported
      // exactly in the rounds where the timeout fires.
      accounting_.add_busy(w, timing[w].compute_done - timing[w].x_arrival +
                                  recovery_busy[w]);
      if (recovery_waste[w] > 0.0) {
        accounting_.add_wasted(w, recovery_waste[w]);
      }
    } else {
      const double done = std::min(
          assigned_work,
          spec_.traces[w].work_between(timing[w].x_arrival,
                                       std::max(cancel_time,
                                                timing[w].x_arrival)));
      accounting_.add_wasted(w, done);
    }
    accounting_.add_traffic(
        w,
        static_cast<double>((timing[w].assigned_chunks +
                             extra_chunks[w].size()) *
                            job_.chunk_result_bytes()),
        static_cast<double>(job_.x_bytes()));
  }

  // ---- observed speeds -> predictor ----
  result.observed_speeds.assign(n, 0.0);
  for (std::size_t w = 0; w < n; ++w) {
    double obs;
    if (timing[w].assigned_chunks == 0) {
      // Idle worker: the master probes its current speed (basic S2C2 needs
      // fresh straggler flags even for excluded workers). Probe at coverage
      // time — every busy worker's observation reflects the pre-decode
      // round window, and training the predictor on post-decode timestamps
      // for idle workers only would skew its inputs.
      obs = spec_.traces[w].speed_at(coverage_time);
    } else if (used[w]) {
      // Realized *execution* speed over the compute window. Transfers and
      // queueing must stay out of the denominator: predictions are trace
      // speeds, and folding the network share of the round into the
      // observation would bias every sample low — inflating the §6.1
      // misprediction rate (to 100% under an exact oracle once network
      // time is a sizable round fraction) and mis-training the predictor.
      const double work =
          static_cast<double>(timing[w].assigned_chunks) * chunk_work;
      obs = work / (timing[w].compute_done - timing[w].x_arrival);
    } else {
      const sim::Time until = std::max(cancel_time, timing[w].x_arrival + 1e-9);
      obs = spec_.traces[w].work_between(timing[w].x_arrival, until) /
            (until - timing[w].x_arrival);
    }
    result.observed_speeds[w] = obs;
    if (obs > 0.0) {
      const double rel =
          std::abs(result.predicted_speeds[w] - obs) / obs;
      if (rel > 0.15) ++mispredictions_;
      ++prediction_samples_;
    }
    if (predictor_) predictor_->observe(w, obs);
  }

  // ---- functional decode ----
  if (functional) {
    S2C2_REQUIRE(x.size() == job_.data_cols(), "input vector size mismatch");
    coding::ChunkedDecoder decoder = job_.make_decoder(&decode_ctx_);
    for (std::size_t w = 0; w < n; ++w) {
      if (used[w]) {
        for (std::size_t c : alloc.chunks_of(w)) {
          decoder.add_chunk_result(w, c, job_.compute_chunk(w, c, x));
        }
        for (std::size_t c : extra_chunks[w]) {
          decoder.add_chunk_result(w, c, job_.compute_chunk(w, c, x));
        }
      }
    }
    result.y = job_.trim(decoder.decode());
  }

  now_ = result.stats.end;
  ++rounds_run_;
  if (result.stats.timeout_fired) ++timeouts_;
  return result;
}

std::vector<RoundResult> CodedComputeEngine::run_rounds(
    std::size_t rounds, std::span<const double> x) {
  std::vector<RoundResult> out;
  out.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) out.push_back(run_round(x));
  return out;
}

double CodedComputeEngine::timeout_rate() const {
  return rounds_run_ > 0
             ? static_cast<double>(timeouts_) / static_cast<double>(rounds_run_)
             : 0.0;
}

double CodedComputeEngine::misprediction_rate() const {
  return prediction_samples_ > 0
             ? static_cast<double>(mispredictions_) /
                   static_cast<double>(prediction_samples_)
             : 0.0;
}

double total_latency(std::span<const RoundResult> results) {
  double acc = 0.0;
  for (const RoundResult& r : results) acc += r.stats.latency();
  return acc;
}

}  // namespace s2c2::core
