#include "src/core/engine.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "src/coding/chunked_decoder.h"
#include "src/util/hash.h"
#include "src/util/require.h"

namespace s2c2::core {

namespace {

StrategyKind validated_kind(const EngineConfig& config) {
  S2C2_REQUIRE(config.strategy == StrategyKind::kS2C2 ||
                   config.strategy == StrategyKind::kS2C2Basic ||
                   config.strategy == StrategyKind::kMds ||
                   config.strategy == StrategyKind::kAgc,
               "CodedComputeEngine runs the MDS-coded strategies only "
               "(s2c2, s2c2-basic, mds, agc via AdaptiveGradientEngine)");
  return config.strategy;
}

// Decode-residual acceptance threshold for the Byzantine verification
// pass. Clean chunks sit at the solver's rounding floor (< 1e-9 relative,
// tests/byzantine_test.cpp); corrupted chunks land corruption_scale/|v|
// above it — the gap spans many orders of magnitude, so the constant is
// uncritical (docs/DESIGN.md §7).
constexpr double kVerifyTolerance = 1e-7;

// Deterministic corruption a declared-Byzantine worker applies to its
// chunk values: an additive offset of 1-2x corruption_scale whose exact
// size is a mix64 hash of (seed, worker, chunk, index) — reproducible at
// any --jobs, unlike anything drawn from a shared RNG stream.
void corrupt_values(std::span<double> values, const ByzantineSpec& byz,
                    std::size_t worker, std::size_t chunk) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::uint64_t h =
        util::mix64(byz.seed ^ (static_cast<std::uint64_t>(worker) << 40) ^
                    (static_cast<std::uint64_t>(chunk) << 20) ^
                    static_cast<std::uint64_t>(i));
    values[i] += byz.corruption_scale *
                 (1.0 + static_cast<double>(h & 0x3ff) / 1024.0);
  }
}

}  // namespace

CodedComputeEngine::CodedComputeEngine(
    CodedMatVecJob job, ClusterSpec spec, EngineConfig config,
    std::unique_ptr<predict::SpeedPredictor> predictor)
    : RoundExecutor(validated_kind(config), std::move(spec),
                    std::move(predictor), config.oracle_speeds,
                    config.timeout_factor, config.straggler_threshold,
                    config.chunks_per_partition, config.health_informed),
      job_(std::move(job)),
      decode_ctx_(job_.generator()),
      decoder_(job_.make_decoder(&decode_ctx_, 1)) {
  S2C2_REQUIRE(spec_.num_workers() == job_.n(),
               "cluster must provide one trace per code partition");
  S2C2_REQUIRE(config.chunks_per_partition == job_.chunks_per_partition(),
               "engine and job chunk granularity must agree");
}

void CodedComputeEngine::decode_subsets(
    const RoundLedger& ledger,
    std::vector<std::vector<std::size_t>>& out) const {
  // The k smallest responding worker ids per chunk — final_chunk_workers
  // is sorted, matching the functional decoder's arrival order, so
  // cost-model cache keys and numeric cache keys are the same.
  const std::size_t k = job_.k();
  out.resize(ledger.final_chunk_workers.size());
  for (std::size_t c = 0; c < out.size(); ++c) {
    out[c].assign(ledger.final_chunk_workers[c].begin(),
                  ledger.final_chunk_workers[c].begin() +
                      static_cast<std::ptrdiff_t>(k));
  }
}

const linalg::Matrix& CodedComputeEngine::run_verified_decode(
    const RoundLedger& ledger, std::size_t width,
    std::span<const double> x_panel) {
  // Worker compute lands directly in arena-staged decoder slots: no
  // per-chunk vector, no copy into the decoder. Insertion order matches
  // the historical path — per worker ascending, assigned range before
  // recovery extras, Byzantine re-adds appended last — so decode subsets
  // and cache keys are unchanged.
  //
  // Two phases: staging mutates the decoder (and the arrival order it
  // records is fingerprinted behavior), so it runs serially first; the
  // chunk products themselves are pure writes into the staged spans —
  // arena-backed and stable until the next reset() — and fan out over
  // the inner pool. Each task owns its span exclusively, and every
  // product is computed by the serial kernel, so the decoded bits are
  // identical at any inner_jobs.
  decoder_.reset(width);
  const std::size_t chunks = ledger.alloc.chunks_per_partition;
  chunk_tasks_.clear();
  for (std::size_t w = 0; w < spec_.num_workers(); ++w) {
    if (ledger.used[w]) {
      const sched::ChunkRange& r = ledger.alloc.per_worker[w];
      for (std::size_t i = 0; i < r.count; ++i) {
        const std::size_t c = (r.begin + i) % chunks;
        chunk_tasks_.push_back({w, c, decoder_.stage_chunk(w, c)});
      }
      for (std::size_t c : ledger.extra_chunks[w]) {
        const std::span<double> slot = decoder_.stage_chunk(w, c);
        if (!slot.empty()) {  // reassigned work can duplicate the original
          chunk_tasks_.push_back({w, c, slot});
        }
      }
    }
  }
  util::ThreadPool* const pool = inner_pool();
  if (pool == nullptr || chunk_tasks_.size() < 2) {
    for (const ChunkTask& t : chunk_tasks_) {
      job_.compute_chunk_into(t.worker, t.chunk, x_panel, width, t.out);
    }
  } else {
    pool->parallel_for(chunk_tasks_.size(), [&](std::size_t i) {
      const ChunkTask& t = chunk_tasks_[i];
      job_.compute_chunk_into(t.worker, t.chunk, x_panel, width, t.out);
    });
  }
  if (spec_.byzantine.active()) {
    // Re-add the corrupted responses the executor stripped, appended
    // *after* the clean ones: the verification pass prunes them again, so
    // the surviving arrival order — and with it the decode subsets and
    // cache keys — matches the honest decode exactly.
    std::vector<std::size_t> expected;
    for (std::size_t c = 0; c < ledger.byzantine_chunk_workers.size(); ++c) {
      for (std::size_t w : ledger.byzantine_chunk_workers[c]) {
        const std::span<double> slot = decoder_.stage_chunk(w, c);
        job_.compute_chunk_into(w, c, x_panel, width, slot);
        corrupt_values(slot, spec_.byzantine, w, c);
        expected.push_back(w);
      }
    }
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    const coding::ChunkVerification verification =
        decoder_.verify_chunks(kVerifyTolerance);
    // The residual check must convict exactly the responders whose values
    // were perturbed — no misses, no honest casualties.
    S2C2_CHECK(verification.corrupt_workers == expected,
               "byzantine verification convicted the wrong responder set");
  }
  decoder_.decode_into(decoded_scratch_, inner_pool());
  return decoded_scratch_;
}

void CodedComputeEngine::decode_product(RoundResult& result,
                                        const RoundLedger& ledger,
                                        std::span<const double> x) {
  S2C2_REQUIRE(x.size() == job_.data_cols(), "input vector size mismatch");
  result.y_block.reset();
  result.hessian.reset();
  if (!result.y) result.y.emplace();
  job_.trim_into(run_verified_decode(ledger, 1, x), *result.y);
}

void CodedComputeEngine::decode_product_block(RoundResult& result,
                                              const RoundLedger& ledger,
                                              const linalg::Matrix& x_block) {
  S2C2_REQUIRE(x_block.rows() == job_.data_cols(),
               "input panel row count mismatch");
  result.y.reset();
  result.hessian.reset();
  if (!result.y_block) result.y_block.emplace();
  const linalg::Matrix& decoded =
      run_verified_decode(ledger, x_block.cols(), x_block.data());
  job_.trim_block_into(decoded, *result.y_block);
}

}  // namespace s2c2::core
