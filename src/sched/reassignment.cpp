#include "src/sched/reassignment.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/require.h"

namespace s2c2::sched {

bool ReassignmentPlan::empty() const {
  return std::all_of(chunks_per_worker.begin(), chunks_per_worker.end(),
                     [](const auto& v) { return v.empty(); });
}

std::size_t ReassignmentPlan::total_chunks() const {
  std::size_t total = 0;
  for (const auto& v : chunks_per_worker) total += v.size();
  return total;
}

ReassignmentPlan plan_reassignment(
    std::span<const std::size_t> deficient,
    std::span<const std::vector<std::size_t>> have_workers,
    std::span<const std::size_t> needed, std::span<const double> speeds) {
  S2C2_REQUIRE(deficient.size() == have_workers.size() &&
                   deficient.size() == needed.size(),
               "reassignment inputs must be parallel arrays");
  ReassignmentPlan plan;
  plan.chunks_per_worker.resize(speeds.size());

  const std::size_t total_needed =
      std::accumulate(needed.begin(), needed.end(), std::size_t{0});
  if (total_needed == 0) return plan;

  // Candidate workers ordered fastest-first; speed-proportional quotas by
  // largest remainder. Depleting quotas in candidate order yields
  // *contiguous* chunk runs per worker, which keeps the number of distinct
  // decode responder-sets (LU factorizations) small.
  std::vector<std::size_t> order;
  double speed_sum = 0.0;
  for (std::size_t w = 0; w < speeds.size(); ++w) {
    if (speeds[w] > 0.0) {
      order.push_back(w);
      speed_sum += speeds[w];
    }
  }
  S2C2_REQUIRE(!order.empty(), "no live workers for reassignment");
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return speeds[a] > speeds[b]; });

  std::vector<std::size_t> quota(speeds.size(), 0);
  {
    std::vector<std::pair<double, std::size_t>> fracs;
    std::size_t assigned = 0;
    for (std::size_t w : order) {
      const double share =
          static_cast<double>(total_needed) * speeds[w] / speed_sum;
      quota[w] = static_cast<std::size_t>(share);
      assigned += quota[w];
      fracs.emplace_back(share - static_cast<double>(quota[w]), w);
    }
    std::sort(fracs.begin(), fracs.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t i = 0; assigned < total_needed && i < fracs.size(); ++i) {
      ++quota[fracs[i].second];
      ++assigned;
    }
  }

  auto already_has = [&](std::size_t w, std::size_t i, std::size_t chunk) {
    return std::find(have_workers[i].begin(), have_workers[i].end(), w) !=
               have_workers[i].end() ||
           std::find(plan.chunks_per_worker[w].begin(),
                     plan.chunks_per_worker[w].end(),
                     chunk) != plan.chunks_per_worker[w].end();
  };

  for (std::size_t i = 0; i < deficient.size(); ++i) {
    const std::size_t chunk = deficient[i];
    for (std::size_t need = 0; need < needed[i]; ++need) {
      std::size_t best = speeds.size();
      // Preferred: the first candidate (fastest-first) with quota left —
      // consecutive chunks land on the same worker until it fills.
      for (std::size_t w : order) {
        if (quota[w] > 0 && !already_has(w, i, chunk)) {
          best = w;
          break;
        }
      }
      if (best == speeds.size()) {
        // Quotas exhausted by exclusion constraints: overflow to any
        // eligible worker, least loaded first.
        std::size_t best_load = 0;
        for (std::size_t w : order) {
          if (already_has(w, i, chunk)) continue;
          if (best == speeds.size() ||
              plan.chunks_per_worker[w].size() < best_load) {
            best = w;
            best_load = plan.chunks_per_worker[w].size();
          }
        }
      }
      S2C2_REQUIRE(best < speeds.size(),
                   "reassignment infeasible: not enough distinct workers");
      plan.chunks_per_worker[best].push_back(chunk);
      if (quota[best] > 0) --quota[best];
    }
  }
  return plan;
}

}  // namespace s2c2::sched
