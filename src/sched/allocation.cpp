#include "src/sched/allocation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/require.h"

namespace s2c2::sched {

std::vector<std::size_t> ChunkRange::indices(std::size_t c) const {
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back((begin + i) % c);
  return out;
}

bool ChunkRange::contains(std::size_t chunk, std::size_t c) const {
  if (count == 0) return false;
  const std::size_t offset = (chunk + c - begin % c) % c;
  return offset < count;
}

std::vector<std::size_t> Allocation::chunks_of(std::size_t worker) const {
  S2C2_REQUIRE(worker < per_worker.size(), "worker index out of range");
  return per_worker[worker].indices(chunks_per_partition);
}

std::size_t Allocation::total_chunks() const {
  std::size_t total = 0;
  for (const ChunkRange& r : per_worker) total += r.count;
  return total;
}

namespace {

/// Lays out counts as consecutive wrap-around ranges and validates the
/// exact-k coverage invariant's preconditions. Fill-style: `out` keeps its
/// capacity across rounds.
void lay_out_into(const std::vector<std::size_t>& counts, std::size_t k,
                  std::size_t c, Allocation& out) {
  const std::size_t total =
      std::accumulate(counts.begin(), counts.end(), std::size_t{0});
  S2C2_CHECK(total == k * c, "allocation must hand out exactly k*C chunks");
  for (std::size_t cnt : counts) {
    S2C2_CHECK(cnt <= c, "a worker cannot exceed its partition");
  }
  out.chunks_per_partition = c;
  out.per_worker.resize(counts.size());
  std::size_t begin = 0;
  for (std::size_t w = 0; w < counts.size(); ++w) {
    out.per_worker[w] = ChunkRange{begin % c, counts[w]};
    begin = (begin + counts[w]) % c;
  }
}

Allocation lay_out(const std::vector<std::size_t>& counts, std::size_t k,
                   std::size_t c) {
  Allocation alloc;
  lay_out_into(counts, k, c, alloc);
  return alloc;
}

/// Proportional split of k*C among workers with caps at C: largest-remainder
/// rounding, then overflow redistribution among workers still under cap.
/// Result lands in scratch.counts; every intermediate reuses scratch
/// capacity, so warm calls never allocate.
void capped_proportional_counts(std::span<const double> speeds, std::size_t k,
                                std::size_t c, AllocationScratch& s) {
  const std::size_t n = speeds.size();
  std::size_t live = 0;
  for (double v : speeds) {
    S2C2_REQUIRE(v >= 0.0 && std::isfinite(v), "speeds must be finite >= 0");
    if (v > 0.0) ++live;
  }
  S2C2_REQUIRE(live >= k, "need at least k workers with positive speed");

  const double target = static_cast<double>(k * c);
  std::vector<std::size_t>& counts = s.counts;
  counts.assign(n, 0);
  s.capped.assign(n, false);
  double remaining = target;

  // Iterate: assign proportional shares; cap overflowing workers at C and
  // re-share the excess among the rest. Terminates because each pass caps
  // at least one more worker or converges.
  std::vector<std::size_t>& open = s.open;
  open.clear();
  for (std::size_t w = 0; w < n; ++w) {
    if (speeds[w] > 0.0) open.push_back(w);
  }
  while (remaining > 0.5 && !open.empty()) {
    double speed_sum = 0.0;
    for (std::size_t w : open) speed_sum += speeds[w];
    S2C2_CHECK(speed_sum > 0.0, "no capacity left to allocate");

    // Real-valued quotas for this pass.
    s.quota.assign(open.size(), 0.0);
    bool any_capped = false;
    for (std::size_t i = 0; i < open.size(); ++i) {
      const std::size_t w = open[i];
      s.quota[i] = remaining * speeds[w] / speed_sum;
      const double headroom = static_cast<double>(c - counts[w]);
      if (s.quota[i] >= headroom) {
        s.quota[i] = headroom;
        s.capped[w] = true;
        any_capped = true;
      }
    }
    if (any_capped) {
      // Commit the capped workers at their cap, keep the rest open.
      s.next_open.clear();
      for (std::size_t i = 0; i < open.size(); ++i) {
        const std::size_t w = open[i];
        if (s.capped[w]) {
          remaining -= static_cast<double>(c - counts[w]);
          counts[w] = c;
        } else {
          s.next_open.push_back(w);
        }
      }
      std::swap(open, s.next_open);
      continue;
    }
    // No caps hit: integerize with largest remainder and finish.
    s.floors.assign(open.size(), 0);
    s.fracs.assign(open.size(), {0.0, 0});
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < open.size(); ++i) {
      s.floors[i] = static_cast<std::size_t>(s.quota[i]);
      s.fracs[i] = {s.quota[i] - static_cast<double>(s.floors[i]), i};
      assigned += s.floors[i];
    }
    auto leftover =
        static_cast<std::size_t>(std::llround(remaining)) - assigned;
    std::sort(s.fracs.begin(), s.fracs.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t i = 0; i < open.size(); ++i) {
      std::size_t cnt = s.floors[s.fracs[i].second];
      if (leftover > 0 &&
          counts[open[s.fracs[i].second]] + cnt < static_cast<std::size_t>(c)) {
        ++cnt;
        --leftover;
      }
      counts[open[s.fracs[i].second]] += cnt;
    }
    // Any leftover that could not be placed due to caps: sweep once more.
    remaining = static_cast<double>(leftover);
    if (leftover > 0) {
      s.next_open.clear();
      for (std::size_t w : open) {
        if (counts[w] < c) s.next_open.push_back(w);
      }
      std::swap(open, s.next_open);
    } else {
      remaining = 0.0;
    }
  }
  S2C2_CHECK(std::accumulate(counts.begin(), counts.end(), std::size_t{0}) ==
                 k * c,
             "proportional allocation did not place exactly k*C chunks");
}

}  // namespace

Allocation algorithm1(std::span<const int> speeds, std::size_t k) {
  S2C2_REQUIRE(k >= 1, "k must be >= 1");
  long sum = 0;
  for (int u : speeds) {
    S2C2_REQUIRE(u >= 0, "algorithm1 speeds must be non-negative integers");
    sum += u;
  }
  S2C2_REQUIRE(sum > 0, "algorithm1 needs positive total speed");

  // maxChunksPerNode = Σ u_i ; totalChunks = k · maxChunksPerNode.
  const auto c = static_cast<std::size_t>(sum);
  double total_chunks = static_cast<double>(k) * static_cast<double>(c);

  // Sort workers by speed, descending (stable: ties keep worker order).
  std::vector<std::size_t> order(speeds.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return speeds[a] > speeds[b];
  });

  // Remaining-share division exactly as in the paper's pseudo-code, with
  // the "extra chunks to next worker" cap rule.
  std::vector<std::size_t> counts(speeds.size(), 0);
  double remaining_speed = static_cast<double>(sum);
  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    const std::size_t w = order[idx];
    if (speeds[w] <= 0 || total_chunks <= 0.0) break;
    double share = static_cast<double>(speeds[w]) / remaining_speed *
                   total_chunks;
    share = std::min(share, static_cast<double>(c));  // cap at partition
    const auto cnt = static_cast<std::size_t>(std::llround(share));
    counts[w] = std::min(cnt, c);
    total_chunks -= static_cast<double>(counts[w]);
    remaining_speed -= static_cast<double>(speeds[w]);
  }
  // Rounding may leave a few chunks unplaced (or over-placed by one); fix
  // by topping up / trimming the fastest workers with headroom.
  long deficit = static_cast<long>(k) * static_cast<long>(c);
  for (std::size_t cnt : counts) deficit -= static_cast<long>(cnt);
  for (std::size_t idx = 0; deficit != 0 && idx < order.size(); ++idx) {
    const std::size_t w = order[idx];
    if (speeds[w] <= 0) continue;
    if (deficit > 0) {
      const auto room = static_cast<long>(c - counts[w]);
      const long add = std::min(deficit, room);
      counts[w] += static_cast<std::size_t>(add);
      deficit -= add;
    } else {
      const auto take = std::min(-deficit, static_cast<long>(counts[w]));
      counts[w] -= static_cast<std::size_t>(take);
      deficit += take;
    }
  }
  S2C2_REQUIRE(deficit == 0,
               "algorithm1 infeasible: fewer than k workers with capacity");
  return lay_out(counts, k, c);
}

void proportional_allocation_into(std::span<const double> speeds,
                                  std::size_t k, std::size_t c,
                                  AllocationScratch& scratch,
                                  Allocation& out) {
  S2C2_REQUIRE(k >= 1, "k must be >= 1");
  S2C2_REQUIRE(c >= 1, "granularity must be >= 1");
  capped_proportional_counts(speeds, k, c, scratch);
  lay_out_into(scratch.counts, k, c, out);
}

void basic_s2c2_allocation_into(const std::vector<bool>& straggler,
                                std::size_t k, std::size_t c,
                                AllocationScratch& scratch, Allocation& out) {
  scratch.speeds.resize(straggler.size());
  for (std::size_t i = 0; i < straggler.size(); ++i) {
    scratch.speeds[i] = straggler[i] ? 0.0 : 1.0;
  }
  proportional_allocation_into(scratch.speeds, k, c, scratch, out);
}

void full_allocation_into(std::size_t n, std::size_t c, Allocation& out) {
  out.chunks_per_partition = c;
  out.per_worker.assign(n, ChunkRange{0, c});
}

Allocation proportional_allocation(std::span<const double> speeds,
                                   std::size_t k, std::size_t c) {
  AllocationScratch scratch;
  Allocation alloc;
  proportional_allocation_into(speeds, k, c, scratch, alloc);
  return alloc;
}

Allocation basic_s2c2_allocation(const std::vector<bool>& straggler,
                                 std::size_t k, std::size_t c) {
  AllocationScratch scratch;
  Allocation alloc;
  basic_s2c2_allocation_into(straggler, k, c, scratch, alloc);
  return alloc;
}

Allocation full_allocation(std::size_t n, std::size_t c) {
  Allocation alloc;
  full_allocation_into(n, c, alloc);
  return alloc;
}

}  // namespace s2c2::sched
