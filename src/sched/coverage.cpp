#include "src/sched/coverage.h"

#include <algorithm>

namespace s2c2::sched {

std::vector<std::size_t> chunk_coverage(const Allocation& a) {
  std::vector<std::size_t> cov(a.chunks_per_partition, 0);
  for (const ChunkRange& r : a.per_worker) {
    for (std::size_t i = 0; i < r.count; ++i) {
      cov[(r.begin + i) % a.chunks_per_partition]++;
    }
  }
  return cov;
}

bool has_coverage(const Allocation& a, std::size_t k) {
  const auto cov = chunk_coverage(a);
  return std::all_of(cov.begin(), cov.end(),
                     [k](std::size_t c) { return c >= k; });
}

bool has_exact_coverage(const Allocation& a, std::size_t k) {
  const auto cov = chunk_coverage(a);
  return std::all_of(cov.begin(), cov.end(),
                     [k](std::size_t c) { return c == k; });
}

void chunk_workers_into(const Allocation& a,
                        std::vector<std::vector<std::size_t>>& out) {
  // Shrinking keeps the trimmed inner vectors' capacity alive inside
  // `out` only up to the new size; growing reuses whatever inner
  // capacity survived from earlier calls.
  out.resize(a.chunks_per_partition);
  for (auto& ws : out) ws.clear();
  for (std::size_t w = 0; w < a.per_worker.size(); ++w) {
    const ChunkRange& r = a.per_worker[w];
    for (std::size_t i = 0; i < r.count; ++i) {
      out[(r.begin + i) % a.chunks_per_partition].push_back(w);
    }
  }
  for (auto& ws : out) std::sort(ws.begin(), ws.end());
}

std::vector<std::vector<std::size_t>> chunk_workers(const Allocation& a) {
  std::vector<std::vector<std::size_t>> out;
  chunk_workers_into(a, out);
  return out;
}

std::vector<CoverageGroup> coverage_groups(const Allocation& a) {
  const auto per_chunk = chunk_workers(a);
  std::vector<CoverageGroup> groups;
  for (std::size_t c = 0; c < per_chunk.size(); ++c) {
    if (!groups.empty() && groups.back().workers == per_chunk[c]) {
      groups.back().num_chunks++;
    } else {
      groups.push_back({c, 1, per_chunk[c]});
    }
  }
  return groups;
}

}  // namespace s2c2::sched
