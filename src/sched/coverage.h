// Coverage analysis of chunk allocations.
//
// The decodability invariant is: every chunk index in [0, C) is assigned to
// at least k distinct workers. These helpers compute per-chunk coverage,
// verify the invariant (property-tested heavily), and group consecutive
// chunks that share the same responder set so the decoder can reuse LU
// factorizations.
#pragma once

#include <cstddef>
#include <vector>

#include "src/sched/allocation.h"

namespace s2c2::sched {

/// coverage[c] = number of workers assigned chunk c.
[[nodiscard]] std::vector<std::size_t> chunk_coverage(const Allocation& a);

/// True iff every chunk is covered by at least k workers.
[[nodiscard]] bool has_coverage(const Allocation& a, std::size_t k);

/// True iff every chunk is covered by *exactly* k workers (S2C2 allocations
/// guarantee this; conventional full allocations do not).
[[nodiscard]] bool has_exact_coverage(const Allocation& a, std::size_t k);

/// workers_per_chunk[c] = sorted list of workers assigned chunk c.
[[nodiscard]] std::vector<std::vector<std::size_t>> chunk_workers(
    const Allocation& a);

/// Fill-style chunk_workers: identical results, but `out` and its inner
/// vectors keep their capacity across calls, so the per-round timeout
/// bookkeeping never allocates once warm.
void chunk_workers_into(const Allocation& a,
                        std::vector<std::vector<std::size_t>>& out);

/// Maximal runs of consecutive chunk indices with identical worker sets.
struct CoverageGroup {
  std::size_t first_chunk = 0;
  std::size_t num_chunks = 0;
  std::vector<std::size_t> workers;  // sorted
};

[[nodiscard]] std::vector<CoverageGroup> coverage_groups(const Allocation& a);

}  // namespace s2c2::sched
