// Work allocation — the heart of S2C2 (paper §4, Algorithm 1).
//
// Every worker stores one encoded partition, viewed as C equal row chunks.
// An allocation assigns each worker a *contiguous wrap-around* range of
// chunk indices on the circle [0, C). If the per-worker counts sum to k·C
// and no single count exceeds C, walking the circle k full turns covers
// every chunk index exactly k times — precisely what the chunked decoder
// needs. Both allocators below construct such ranges.
//
//  * algorithm1()            — the paper's Algorithm 1, verbatim: integer
//                              speeds, C = Σu_i, remaining-share division.
//  * proportional_allocation() — production path: real-valued speeds, an
//                              explicit granularity C, largest-remainder
//                              rounding, and cap-overflow redistribution.
//
// Basic S2C2 (paper §4.1) is proportional_allocation() with speed 1 for
// every live worker and 0 for flagged stragglers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace s2c2::sched {

/// Contiguous wrap-around chunk range: indices begin, begin+1, ... (mod C),
/// `count` of them in total.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t count = 0;

  [[nodiscard]] std::vector<std::size_t> indices(std::size_t c) const;
  [[nodiscard]] bool contains(std::size_t chunk, std::size_t c) const;
};

struct Allocation {
  std::size_t chunks_per_partition = 0;          // C
  std::vector<ChunkRange> per_worker;            // one range per worker

  /// Chunk indices assigned to `worker`, materialized.
  [[nodiscard]] std::vector<std::size_t> chunks_of(std::size_t worker) const;

  /// Total chunks assigned across all workers.
  [[nodiscard]] std::size_t total_chunks() const;
};

/// Reusable buffers for the *_into allocator variants below. One scratch
/// per engine: the round hot path re-allocates every round, and with warm
/// scratch capacity those calls never touch the heap
/// (tests/arena_test.cpp's counting allocator pins this).
struct AllocationScratch {
  std::vector<std::size_t> counts;
  std::vector<std::size_t> open;
  std::vector<std::size_t> next_open;
  std::vector<std::size_t> floors;
  std::vector<double> quota;
  std::vector<double> speeds;  // basic_s2c2's straggler -> speed expansion
  std::vector<bool> capped;
  std::vector<std::pair<double, std::size_t>> fracs;
};

/// Paper Algorithm 1. `speeds` are positive integers (the paper uses the
/// sum of speeds as the over-decomposition factor: C = Σ u_i). Workers with
/// zero speed receive no work. Requires at least k workers with u_i > 0.
[[nodiscard]] Allocation algorithm1(std::span<const int> speeds,
                                    std::size_t k);

/// Production allocator. Distributes k·C chunks proportionally to
/// real-valued `speeds` with largest-remainder rounding; per-worker counts
/// are capped at C with the overflow redistributed to the remaining
/// workers (the paper's "re-assign these extra chunks to next worker").
/// Requires at least k workers with speed > 0.
[[nodiscard]] Allocation proportional_allocation(
    std::span<const double> speeds, std::size_t k, std::size_t c);

/// Basic S2C2: equal allocation over non-straggler workers.
/// `straggler[i]` marks worker i as excluded this round.
[[nodiscard]] Allocation basic_s2c2_allocation(
    const std::vector<bool>& straggler, std::size_t k, std::size_t c);

/// Conventional coded computation: every worker is assigned its entire
/// partition (the decoder then simply uses the fastest k responses).
[[nodiscard]] Allocation full_allocation(std::size_t n, std::size_t c);

// ---- allocation-free variants ---------------------------------------------
// Identical arithmetic and results to the by-value allocators above (the
// by-value forms are thin wrappers), but every intermediate lives in the
// caller's scratch and the result in the caller's Allocation, so a warmed
// steady-state call performs zero heap allocations.

void proportional_allocation_into(std::span<const double> speeds,
                                  std::size_t k, std::size_t c,
                                  AllocationScratch& scratch, Allocation& out);

void basic_s2c2_allocation_into(const std::vector<bool>& straggler,
                                std::size_t k, std::size_t c,
                                AllocationScratch& scratch, Allocation& out);

void full_allocation_into(std::size_t n, std::size_t c, Allocation& out);

}  // namespace s2c2::sched
