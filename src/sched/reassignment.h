// Recovery planning for mis-predictions and failures (paper §4.3).
//
// When the timeout fires, some chunks have fewer than k results. The master
// reassigns each missing (chunk, deficit) pair to workers that (a) already
// responded this round, and (b) have not already computed that chunk —
// a worker's second result for the same chunk adds no new equation.
// Assignment is load-balanced by predicted speed: each candidate worker
// accumulates chunks so as to minimize its projected finish time
// (load+1)/speed.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace s2c2::sched {

struct ReassignmentPlan {
  /// chunks_per_worker[w] = extra chunk indices worker w must compute.
  std::vector<std::vector<std::size_t>> chunks_per_worker;

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t total_chunks() const;
};

/// `have_workers[i]` = workers that already produced chunk `deficient[i]`;
/// `needed[i]` = how many additional distinct results that chunk requires;
/// `speeds[w]` = predicted speed of candidate worker w (0 ⇒ unavailable).
/// Throws std::invalid_argument when some chunk cannot reach its quota
/// (fewer available distinct workers than needed) — callers treat that as
/// an unrecoverable cluster failure.
[[nodiscard]] ReassignmentPlan plan_reassignment(
    std::span<const std::size_t> deficient,
    std::span<const std::vector<std::size_t>> have_workers,
    std::span<const std::size_t> needed, std::span<const double> speeds);

}  // namespace s2c2::sched
