#include "src/runtime/channel.h"

// Channel is a header-only template; this TU anchors the module.
namespace s2c2::runtime {}
