// Blocking multi-producer channel for the thread runtime.
//
// Mirrors the paper's worker design (§6): each worker runs a communication
// endpoint receiving assignments and a compute loop posting results; the
// master consumes a single shared response channel. close() releases all
// blocked receivers with std::nullopt.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace s2c2::runtime {

template <typename T>
class Channel {
 public:
  Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues; wakes one receiver. Sending on a closed channel is a no-op
  /// (shutdown race tolerance).
  void send(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return;
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  /// Blocks until a value or close(); nullopt means closed-and-drained.
  std::optional<T> recv() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace s2c2::runtime
