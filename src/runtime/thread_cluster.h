// Thread-backed coded cluster — the real-concurrency counterpart of the
// simulator (paper §6: one compute and one communication role per worker,
// master decodes as soon as any k responses cover every chunk).
//
// Workers are std::threads with per-worker request channels and one shared
// response channel; results stream back per chunk, so the master can
// decode the moment coverage is reached and simply drop late results from
// slow workers — the any-k-of-n property exercised with real threads.
// A per-worker delay hook injects stragglers (sleep per chunk) in tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/coded_job.h"
#include "src/runtime/channel.h"
#include "src/sched/allocation.h"

namespace s2c2::runtime {

/// Called before each chunk: (worker, chunk). Tests inject sleeps here.
using DelayHook = std::function<void(std::size_t, std::size_t)>;

class ThreadCluster {
 public:
  /// The job must be functional. The cluster owns n = job.n() threads.
  ThreadCluster(const core::CodedMatVecJob& job, DelayHook delay = nullptr);

  ThreadCluster(const ThreadCluster&) = delete;
  ThreadCluster& operator=(const ThreadCluster&) = delete;
  ~ThreadCluster();

  /// Distributes `allocation` and x, blocks until every chunk has k
  /// responses, decodes, and returns the (trimmed) product A·x. Responses
  /// from slower workers may still be in flight when this returns; they
  /// are discarded by round id.
  [[nodiscard]] linalg::Vector run_round(const sched::Allocation& allocation,
                                         const linalg::Vector& x);

  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }

 private:
  struct Request {
    std::uint64_t round = 0;
    bool stop = false;
    std::vector<std::size_t> chunks;
    std::shared_ptr<const linalg::Vector> x;
  };
  struct Response {
    std::uint64_t round = 0;
    std::size_t worker = 0;
    std::size_t chunk = 0;
    std::vector<double> values;
  };

  void worker_loop(std::size_t id);

  const core::CodedMatVecJob& job_;
  DelayHook delay_;
  std::vector<std::unique_ptr<Channel<Request>>> requests_;
  Channel<Response> responses_;
  std::vector<std::thread> workers_;
  std::uint64_t round_ = 0;
};

}  // namespace s2c2::runtime
