#include "src/runtime/thread_cluster.h"

#include "src/sched/coverage.h"
#include "src/util/require.h"

namespace s2c2::runtime {

ThreadCluster::ThreadCluster(const core::CodedMatVecJob& job, DelayHook delay)
    : job_(job), delay_(std::move(delay)) {
  S2C2_REQUIRE(job_.functional(), "thread cluster needs a functional job");
  const std::size_t n = job_.n();
  requests_.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    requests_.push_back(std::make_unique<Channel<Request>>());
  }
  workers_.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadCluster::~ThreadCluster() {
  for (auto& ch : requests_) {
    ch->send(Request{0, true, {}, nullptr});
    ch->close();
  }
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  responses_.close();
}

void ThreadCluster::worker_loop(std::size_t id) {
  while (true) {
    auto req = requests_[id]->recv();
    if (!req.has_value() || req->stop) return;
    for (std::size_t chunk : req->chunks) {
      if (delay_) delay_(id, chunk);
      responses_.send(Response{req->round, id, chunk,
                               job_.compute_chunk(id, chunk, *req->x)});
    }
  }
}

linalg::Vector ThreadCluster::run_round(const sched::Allocation& allocation,
                                        const linalg::Vector& x) {
  S2C2_REQUIRE(allocation.per_worker.size() == job_.n(),
               "allocation shape mismatch");
  S2C2_REQUIRE(allocation.chunks_per_partition == job_.chunks_per_partition(),
               "allocation granularity mismatch");
  S2C2_REQUIRE(x.size() == job_.data_cols(), "x size mismatch");
  // Decodability up front: the round loop below blocks until every chunk
  // has k responses, so an allocation that cannot reach coverage would spin
  // on recv() forever. Fail fast with a diagnosable error instead.
  S2C2_REQUIRE(sched::has_coverage(allocation, job_.k()),
               "allocation cannot decode: some chunk is assigned to fewer "
               "than k workers");
  ++round_;
  auto shared_x = std::make_shared<const linalg::Vector>(x);
  for (std::size_t w = 0; w < job_.n(); ++w) {
    const auto chunks = allocation.chunks_of(w);
    if (chunks.empty()) continue;
    requests_[w]->send(Request{round_, false, chunks, shared_x});
  }
  coding::ChunkedDecoder decoder = job_.make_decoder();
  while (!decoder.decodable()) {
    auto resp = responses_.recv();
    S2C2_CHECK(resp.has_value(), "response channel closed mid-round");
    if (resp->round != round_) continue;  // stale result from a slow worker
    decoder.add_chunk_result(resp->worker, resp->chunk,
                             std::move(resp->values));
  }
  return job_.trim(decoder.decode());
}

}  // namespace s2c2::runtime
