#include "src/harness/scenario_matrix.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <map>
#include <mutex>
#include <stdexcept>

#include "src/coding/poly_code.h"
#include "src/core/engine_factory.h"
#include "src/linalg/sparse.h"
#include "src/predict/arima.h"
#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/workload/graphs.h"
#include "src/workload/trace_gen.h"

namespace s2c2::harness {

namespace {

using util::fnv1a;
using util::hex64;
using util::mix64;

/// Rounds `d` down to a multiple of `a` (polynomial codes need d % a == 0),
/// clamping up to `a` when d < a so degenerate shapes still yield one block.
std::size_t round_to_blocks(std::size_t d, std::size_t a) {
  return std::max<std::size_t>(a, d - d % a);
}

double worker_flops_for(const ScenarioConfig& config) {
  // Functional cells run real (tiny) operators; a proportionally slower
  // fleet keeps compute on the critical path, matching the cost-only shape.
  return config.functional ? 1e7 : 1e9;
}

/// Nominal per-worker round time of the logistic-regression cell — the
/// sample period for cloud traces, so regimes drift on the same timescale
/// as rounds (mirrors the paper's one-sample-per-iteration measurement).
double trace_sample_dt(const ScenarioConfig& config) {
  const WorkloadShape s = workload_shape(WorkloadKind::kLogisticRegression,
                                         config);
  const double flops = core::matvec_flops(s.rows, s.cols);
  return flops / (static_cast<double>(config.effective_k()) *
                  worker_flops_for(config));
}

struct RoundSummary {
  std::vector<double> latencies;
  std::size_t timeouts = 0;
  std::size_t byzantine_detected = 0;
  std::size_t corrupted_chunks = 0;
  std::size_t degrading_workers = 0;  // final round's flag count
};

/// Shared per-round bookkeeping: `run_round` executes one engine round and
/// returns its RoundStats (doing any cell-specific work, e.g. decode
/// verification, before returning). Keeping this in one place keeps every
/// engine's event log shaped identically.
template <typename RunRound>
RoundSummary run_rounds_loop(std::size_t rounds, RunRound&& run_round) {
  RoundSummary rs;
  for (std::size_t r = 0; r < rounds; ++r) {
    const sim::RoundStats stats = run_round();
    rs.latencies.push_back(stats.latency());
    rs.timeouts += stats.timeout_fired ? 1 : 0;
    rs.byzantine_detected += stats.byzantine_detected;
    rs.corrupted_chunks += stats.corrupted_chunks;
    rs.degrading_workers = stats.degrading_workers;
  }
  return rs;
}

void finish_cell(CellResult& cell, const RoundSummary& rs,
                 const sim::Accounting& acct) {
  cell.rounds = rs.latencies.size();
  cell.round_latencies = rs.latencies;
  for (const double l : rs.latencies) cell.total_latency += l;
  cell.mean_latency =
      cell.rounds > 0 ? cell.total_latency / static_cast<double>(cell.rounds)
                      : 0.0;
  cell.timeout_rate =
      cell.rounds > 0
          ? static_cast<double>(rs.timeouts) / static_cast<double>(cell.rounds)
          : 0.0;
  cell.total_useful = acct.total_useful();
  cell.total_wasted = acct.total_wasted();
  cell.mean_wasted_fraction = acct.mean_wasted_fraction();
  cell.byzantine_detected = rs.byzantine_detected;
  cell.corrupted_chunks = rs.corrupted_chunks;
  cell.degrading_workers = rs.degrading_workers;
}

/// Training seed for the learned predictors — per (seed, workload, profile)
/// column and independent of the engine, so every engine in a column
/// forecasts from an identically-trained model.
std::uint64_t predictor_train_salt(const ScenarioConfig& config,
                                   WorkloadKind w, TraceProfile t) {
  return mix64(trace_salt(config.seed, w, t) ^ 0x9ced1c70ull);
}

workload::CloudTraceConfig training_trace_config(TraceProfile t) {
  // Cloud columns train on their own regime; the controlled/failure
  // profiles have no generative model of their own, so their predictors
  // train on the volatile regime (the paper's hardest forecasting setting).
  return t == TraceProfile::kStableCloud ? workload::stable_cloud_config()
                                         : workload::volatile_cloud_config();
}

// Every engine and cluster size in a column trains from the same salt, so
// fitting is memoized on it. Training is a pure function of the salt and
// profile, which keeps cached and freshly-trained cells byte-identical —
// the cache only removes duplicate work under the parallel runner, never
// changes a fingerprint. The mutex guards only the lookup/insert of a
// per-salt future; training runs outside the lock, so independent columns
// train concurrently while same-column cells share one run. (Bounded: one
// entry per (seed, workload, profile) column touched by the process.)
template <typename Model, typename Train>
Model memoized_model(std::map<std::uint64_t, std::shared_future<Model>>& cache,
                     std::mutex& mu, std::uint64_t salt, Train&& train) {
  std::promise<Model> promise;
  std::shared_future<Model> future;
  bool trainer = false;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(salt);
    if (it == cache.end()) {
      trainer = true;
      future = promise.get_future().share();
      cache.emplace(salt, future);
    } else {
      future = it->second;
    }
  }
  if (trainer) {
    try {
      promise.set_value(train());
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

predict::ArimaModel trained_arima(std::uint64_t salt, TraceProfile t) {
  static std::mutex mu;
  static std::map<std::uint64_t, std::shared_future<predict::ArimaModel>>
      cache;
  return memoized_model(cache, mu, salt, [&] {
    util::Rng rng(salt);
    const auto corpus =
        workload::cloud_speed_corpus(8, 96, training_trace_config(t), rng);
    return predict::fit_arima11(corpus, 0);
  });
}

std::shared_ptr<const predict::Lstm> trained_lstm(std::uint64_t salt,
                                                  TraceProfile t) {
  static std::mutex mu;
  static std::map<std::uint64_t,
                  std::shared_future<std::shared_ptr<const predict::Lstm>>>
      cache;
  return memoized_model(cache, mu, salt,
                        [&]() -> std::shared_ptr<const predict::Lstm> {
    // Deliberately small (4 hidden units, short corpus, 12 epochs): the
    // model must fit a per-cell time budget under the parallel runner.
    util::Rng rng(salt);
    const auto corpus =
        workload::cloud_speed_corpus(6, 64, training_trace_config(t), rng);
    auto lstm = std::make_shared<predict::Lstm>(1, 4, salt ^ 0x15ull);
    predict::Lstm::TrainConfig tc;
    tc.epochs = 12;
    tc.bptt_window = 24;
    lstm->train(corpus, tc);
    return lstm;
  });
}

}  // namespace

std::uint64_t engine_axis_id(StrategyKind e) {
  // Wire format: cell seeds and cell fingerprints hash this id, so the
  // mapping is append-only. 0..3 are the legacy PR 5 engine axis (it
  // predates the unified StrategyKind, whose enum values must stay free
  // to grow) and are pinned by tests/fingerprint_guard_test.cpp; the
  // registry additions took the next free ids. Never renumber.
  switch (e) {
    case StrategyKind::kS2C2: return 0;
    case StrategyKind::kReplication: return 1;
    case StrategyKind::kPoly: return 2;
    case StrategyKind::kOverDecomp: return 3;
    case StrategyKind::kLt: return 4;
    case StrategyKind::kAgc: return 5;
    case StrategyKind::kS2C2Basic: return 6;
    case StrategyKind::kMds: return 7;
    case StrategyKind::kPolyConventional: return 8;
  }
  throw std::invalid_argument(
      std::string("strategy is not a scenario-matrix engine axis: ") +
      core::strategy_name(e));
}

ColumnPredictor make_column_predictor(const ScenarioConfig& config,
                                      WorkloadKind w, TraceProfile t) {
  ColumnPredictor b;
  const std::size_t n = config.workers;
  switch (config.predictor) {
    case PredictorKind::kOracle:
      return b;
    case PredictorKind::kLastValue:
      b.predictor = std::make_unique<predict::LastValuePredictor>(n);
      break;
    case PredictorKind::kArima:
      b.predictor = std::make_unique<predict::ArimaPredictor>(
          n, trained_arima(predictor_train_salt(config, w, t), t));
      break;
    case PredictorKind::kLstm: {
      b.lstm = trained_lstm(predictor_train_salt(config, w, t), t);
      b.predictor = std::make_unique<predict::LstmPredictor>(n, *b.lstm);
      break;
    }
  }
  return b;
}

const char* workload_name(WorkloadKind w) {
  switch (w) {
    case WorkloadKind::kLogisticRegression: return "logreg";
    case WorkloadKind::kPageRank: return "pagerank";
    case WorkloadKind::kSvm: return "svm";
    case WorkloadKind::kHessian: return "hessian";
  }
  return "?";
}

const char* trace_profile_name(TraceProfile t) {
  switch (t) {
    case TraceProfile::kControlledStragglers: return "controlled";
    case TraceProfile::kStableCloud: return "stable";
    case TraceProfile::kVolatileCloud: return "volatile";
    case TraceProfile::kFailureInjection: return "failure";
    case TraceProfile::kFailSlow: return "fail-slow";
    case TraceProfile::kBurstyColocation: return "bursty";
    case TraceProfile::kDiurnal: return "diurnal";
    case TraceProfile::kByzantine: return "byzantine";
  }
  return "?";
}

const char* predictor_name(PredictorKind p) {
  switch (p) {
    case PredictorKind::kOracle: return "oracle";
    case PredictorKind::kLastValue: return "last-value";
    case PredictorKind::kArima: return "arima";
    case PredictorKind::kLstm: return "lstm";
  }
  return "?";
}

std::vector<StrategyKind> all_engines() {
  return {StrategyKind::kS2C2, StrategyKind::kReplication, StrategyKind::kPoly,
          StrategyKind::kOverDecomp};
}

std::vector<StrategyKind> extended_engines() {
  // Legacy four in their wire order, then the registry additions in enum
  // order. Every kind here must be runnable through run_cell.
  std::vector<StrategyKind> out = all_engines();
  out.insert(out.end(),
             {StrategyKind::kS2C2Basic, StrategyKind::kMds,
              StrategyKind::kPolyConventional, StrategyKind::kLt,
              StrategyKind::kAgc});
  return out;
}

std::vector<WorkloadKind> all_workloads() {
  return {WorkloadKind::kLogisticRegression, WorkloadKind::kPageRank,
          WorkloadKind::kSvm, WorkloadKind::kHessian};
}

std::vector<TraceProfile> all_trace_profiles() {
  return {TraceProfile::kControlledStragglers, TraceProfile::kStableCloud,
          TraceProfile::kVolatileCloud, TraceProfile::kFailureInjection};
}

std::vector<TraceProfile> robustness_trace_profiles() {
  return {TraceProfile::kFailSlow, TraceProfile::kBurstyColocation,
          TraceProfile::kDiurnal, TraceProfile::kByzantine};
}

std::vector<TraceProfile> extended_trace_profiles() {
  std::vector<TraceProfile> out = all_trace_profiles();
  const std::vector<TraceProfile> extra = robustness_trace_profiles();
  out.insert(out.end(), extra.begin(), extra.end());
  return out;
}

bool trace_profile_is_robustness(TraceProfile t) {
  return static_cast<int>(t) > static_cast<int>(TraceProfile::kFailureInjection);
}

std::vector<PredictorKind> all_predictors() {
  return {PredictorKind::kOracle, PredictorKind::kLastValue,
          PredictorKind::kArima, PredictorKind::kLstm};
}

WorkloadShape workload_shape(WorkloadKind w, const ScenarioConfig& config) {
  WorkloadShape s;
  // Largest block split with a² decode quorum the fleet can field.
  s.a_blocks = config.workers >= 10 ? 3 : (config.workers >= 5 ? 2 : 1);
  if (config.functional) {
    switch (w) {
      case WorkloadKind::kLogisticRegression: s.rows = 240; s.cols = 36; break;
      case WorkloadKind::kPageRank:
        s.rows = 216; s.cols = 216; s.sparse = true; break;
      case WorkloadKind::kSvm: s.rows = 180; s.cols = 48; break;
      case WorkloadKind::kHessian: s.rows = 72; s.cols = 24; break;
    }
    return s;
  }
  const double scale = std::max(config.scale, 1e-3);
  auto scaled = [&](std::size_t rows) {
    return std::max<std::size_t>(
        config.workers, static_cast<std::size_t>(
                            std::llround(static_cast<double>(rows) * scale)));
  };
  switch (w) {
    // The paper's duplicated-gisette LR/SVM shape (§6.5/§7.2).
    case WorkloadKind::kLogisticRegression:
      s.rows = scaled(21000); s.cols = 2000; break;
    // Square link matrix (Toronto web-graph stand-in, §6.3) — scaling must
    // keep rows == cols or the cell stops modelling power iteration.
    case WorkloadKind::kPageRank:
      s.rows = scaled(12000); s.cols = s.rows; s.sparse = true; break;
    case WorkloadKind::kSvm: s.rows = scaled(21000); s.cols = 2000; break;
    // A is N x d; the poly engine computes the d x d Hessian from it.
    case WorkloadKind::kHessian: s.rows = scaled(9000); s.cols = 900; break;
  }
  return s;
}

std::uint64_t cell_seed(std::uint64_t seed, StrategyKind e, WorkloadKind w,
                        TraceProfile t) {
  std::uint64_t h = mix64(seed);
  h = mix64(h ^ (engine_axis_id(e) + 1));
  h = mix64(h ^ ((static_cast<std::uint64_t>(w) + 1) << 8));
  h = mix64(h ^ ((static_cast<std::uint64_t>(t) + 1) << 16));
  return h;
}

std::uint64_t trace_salt(std::uint64_t seed, WorkloadKind w, TraceProfile t) {
  std::uint64_t h = mix64(seed ^ 0x7ace0c01u);
  h = mix64(h ^ ((static_cast<std::uint64_t>(w) + 1) << 8));
  h = mix64(h ^ ((static_cast<std::uint64_t>(t) + 1) << 16));
  return h;
}

std::vector<sim::SpeedTrace> make_traces(TraceProfile profile,
                                         const ScenarioConfig& config,
                                         std::uint64_t salt) {
  util::Rng rng(mix64(salt ^ 0x7ace5eedull));
  switch (profile) {
    case TraceProfile::kControlledStragglers:
      return workload::controlled_cluster_traces(config.workers,
                                                 config.stragglers, 0.1, rng);
    case TraceProfile::kStableCloud:
    case TraceProfile::kVolatileCloud: {
      const auto cfg = profile == TraceProfile::kStableCloud
                           ? workload::stable_cloud_config()
                           : workload::volatile_cloud_config();
      const std::size_t samples = std::max<std::size_t>(64, 4 * config.rounds);
      return workload::traces_from_series(
          workload::cloud_speed_corpus(config.workers, samples, cfg, rng),
          trace_sample_dt(config));
    }
    case TraceProfile::kFailureInjection: {
      // Workers dying mid-round: the last `dead` workers drop to speed 0 at
      // staggered times inside the first few rounds, so the engines' §4.3
      // timeout/reassignment (and the baselines' failure handling) runs
      // against responses that never arrive (SpeedTrace::kNever completion).
      // Deaths are capped at n - k: the decode quorum must survive.
      const std::size_t n = config.workers;
      const std::size_t k = config.effective_k();
      const std::size_t dead =
          std::min(n - std::min(k, n),
                   std::max<std::size_t>(1, config.stragglers));
      const double dt = trace_sample_dt(config);
      std::vector<sim::SpeedTrace> traces;
      traces.reserve(n);
      for (std::size_t w = 0; w + dead < n; ++w) {
        traces.push_back(
            sim::SpeedTrace::constant(rng.uniform(0.85, 1.0)));
      }
      for (std::size_t i = 0; i < dead; ++i) {
        const double speed = rng.uniform(0.85, 1.0);
        const sim::Time t_death =
            dt * (0.4 + 1.3 * static_cast<double>(i) + rng.uniform(0.0, 0.3));
        traces.push_back(sim::SpeedTrace::step(t_death, speed, 0.0));
      }
      return traces;
    }
    case TraceProfile::kFailSlow: {
      // Monotone degradation toward a floor past a random onset — the
      // signature the health monitor's drift baselines exist to catch.
      const std::size_t samples = std::max<std::size_t>(64, 4 * config.rounds);
      return workload::traces_from_series(
          workload::fail_slow_corpus(config.workers, samples,
                                     workload::FailSlowConfig{}, rng),
          trace_sample_dt(config));
    }
    case TraceProfile::kBurstyColocation:
    case TraceProfile::kDiurnal: {
      const auto cfg = profile == TraceProfile::kBurstyColocation
                           ? workload::bursty_colocation_config()
                           : workload::diurnal_config();
      const std::size_t samples = std::max<std::size_t>(64, 4 * config.rounds);
      return workload::traces_from_series(
          workload::cloud_speed_corpus(config.workers, samples, cfg, rng),
          trace_sample_dt(config));
    }
    case TraceProfile::kByzantine: {
      // Corruption is the story, so speeds stay tame: the stable-cloud
      // generator on the byzantine column's own salt stream.
      const std::size_t samples = std::max<std::size_t>(64, 4 * config.rounds);
      return workload::traces_from_series(
          workload::cloud_speed_corpus(config.workers, samples,
                                       workload::stable_cloud_config(), rng),
          trace_sample_dt(config));
    }
  }
  throw std::invalid_argument("unknown trace profile");
}

core::ClusterSpec make_cluster(TraceProfile profile,
                               const ScenarioConfig& config,
                               std::uint64_t salt) {
  core::ClusterSpec spec;
  spec.traces = make_traces(profile, config, salt);
  spec.worker_flops = worker_flops_for(config);
  spec.master_flops = spec.worker_flops;
  if (profile == TraceProfile::kControlledStragglers) {
    spec.net.bytes_per_s = 7e9;  // the paper's FDR InfiniBand cluster
  }
  if (profile == TraceProfile::kByzantine) {
    // The last e workers corrupt their products every round, with e capped
    // at the n - k - 1 identification budget (docs/DESIGN.md §7) so a
    // coded cell always completes with the correct decoded product.
    const std::size_t n = config.workers;
    const std::size_t k = config.effective_k();
    const std::size_t budget = n > k + 1 ? n - k - 1 : 0;
    const std::size_t e =
        std::min(budget, std::max<std::size_t>(1, n / 8));
    for (std::size_t i = 0; i < e; ++i) {
      spec.byzantine.corrupt_workers.push_back(n - 1 - i);
    }
    spec.byzantine.seed = mix64(salt ^ 0xb72a27ull);
  }
  return spec;
}

std::string CellResult::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, engine_axis_id(engine));
  h = fnv1a(h, static_cast<std::uint64_t>(workload));
  h = fnv1a(h, static_cast<std::uint64_t>(trace));
  h = fnv1a(h, static_cast<std::uint64_t>(workers));
  h = fnv1a(h, static_cast<std::uint64_t>(predictor));
  h = fnv1a(h, static_cast<std::uint64_t>(failed ? 1 : 0));
  for (const char c : error) h = fnv1a(h, static_cast<std::uint64_t>(c));
  h = fnv1a(h, static_cast<std::uint64_t>(rounds));
  for (const double l : round_latencies) h = fnv1a(h, l);
  h = fnv1a(h, total_useful);
  h = fnv1a(h, total_wasted);
  h = fnv1a(h, max_decode_error);
  if (trace_profile_is_robustness(trace)) {
    // Only the robustness profiles hash their telemetry — adding fields to
    // the original profiles' digests would invalidate the PR 5 goldens.
    h = fnv1a(h, static_cast<std::uint64_t>(byzantine_detected));
    h = fnv1a(h, static_cast<std::uint64_t>(corrupted_chunks));
    h = fnv1a(h, static_cast<std::uint64_t>(degrading_workers));
  }
  return hex64(h);
}

const CellResult* MatrixResult::find(StrategyKind e, WorkloadKind w,
                                     TraceProfile t) const {
  for (const auto& cell : cells) {
    if (cell.engine == e && cell.workload == w && cell.trace == t) {
      return &cell;
    }
  }
  return nullptr;
}

const CellResult* MatrixResult::find(StrategyKind e, WorkloadKind w,
                                     TraceProfile t, std::size_t workers,
                                     PredictorKind p) const {
  for (const auto& cell : cells) {
    if (cell.engine == e && cell.workload == w && cell.trace == t &&
        cell.workers == workers && cell.predictor == p) {
      return &cell;
    }
  }
  return nullptr;
}

std::string MatrixResult::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& cell : cells) {
    for (const char c : cell.fingerprint()) {
      h = fnv1a(h, static_cast<std::uint64_t>(c));
    }
  }
  return hex64(h);
}

namespace {

/// Runs the cell's rounds with optional decode verification against a
/// vector or Hessian truth (functional coded cells), then books the
/// summary. Verification is generic over the unified RoundResult: a cell
/// whose engine should decode but returns no product records kNever.
void run_cell_rounds(const ScenarioConfig& config,
                     core::StrategyEngine& engine, CellResult& cell,
                     std::span<const double> x, const linalg::Vector* truth_y,
                     const linalg::Matrix* truth_h) {
  RoundSummary rs;
  if (truth_y != nullptr || truth_h != nullptr) {
    cell.decode_checked = true;
    rs = run_rounds_loop(config.rounds, [&] {
      const core::RoundResult res = engine.run_round(x);
      if (truth_y != nullptr && res.y.has_value()) {
        cell.max_decode_error = std::max(
            cell.max_decode_error, linalg::max_abs_diff(*res.y, *truth_y));
      } else if (truth_h != nullptr && res.hessian.has_value()) {
        cell.max_decode_error = std::max(cell.max_decode_error,
                                         res.hessian->max_abs_diff(*truth_h));
      } else {
        cell.max_decode_error = sim::SpeedTrace::kNever;
      }
      return res.stats;
    });
  } else {
    rs = run_rounds_loop(config.rounds,
                         [&] { return engine.run_round().stats; });
  }
  finish_cell(cell, rs, engine.accounting());
}

CellResult run_cell_impl(const ScenarioConfig& config, const WorkloadShape& s,
                         const core::ClusterSpec& spec, std::uint64_t salt,
                         CellResult cell) {
  const StrategyKind e = cell.engine;

  core::EngineParams params;
  params.cluster = spec;
  params.k = config.effective_k();
  params.chunks_per_partition = config.chunks_per_partition;
  params.a_blocks = s.a_blocks;
  params.inner_jobs = config.inner_jobs;
  // The robustness profiles run health-informed prediction (the monitor's
  // degradation scale shrinks a fail-slow worker's allocation ahead of
  // the raw predictor); the original profiles must not — the wrap changes
  // allocations, and their fingerprints are golden-pinned.
  params.health_informed = trace_profile_is_robustness(cell.trace);
  // The bundle outlives the engine: the LSTM adapter references it.
  ColumnPredictor bundle;
  if (core::strategy_uses_predictions(e)) {
    bundle = make_column_predictor(config, cell.workload, cell.trace);
    params.oracle_speeds = bundle.oracle();
    params.predictor = std::move(bundle.predictor);
  } else if (core::strategy_is_coded(e)) {
    // Prediction-blind coded strategies (mds, poly-conventional, lt)
    // allocate without forecasts; speeds only feed their misprediction
    // telemetry, so they read the oracle (the job driver's rule).
    params.oracle_speeds = true;
  }

  // Cell-local operators and truths; params borrow pointers, so these
  // must outlive the engine below. Only coded cells with a decode verify
  // (the MDS-family/lt engines everywhere, poly on the Hessian workload);
  // the uncoded baselines have nothing to decode and stay
  // latency-shape-only.
  linalg::Matrix dense;
  linalg::CsrMatrix link;
  linalg::Vector x;
  linalg::Vector truth_y;
  linalg::Matrix truth_h;
  bool verify_y = false;
  bool verify_h = false;

  switch (e) {
    case StrategyKind::kS2C2:
    case StrategyKind::kS2C2Basic:
    case StrategyKind::kMds:
    case StrategyKind::kAgc:
    case StrategyKind::kLt:
      // The MDS family and the LT engine share one operator setup; LT
      // additionally salts its symbol graph per cell, mirroring how
      // replication salts its placement.
      if (e == StrategyKind::kLt) {
        params.code_seed = mix64(salt ^ 0x17c0deull);
      }
      if (config.functional) {
        util::Rng op_rng(mix64(salt ^ 0x0be7a70ull));
        x.resize(s.cols);
        for (auto& v : x) v = op_rng.normal();
        if (s.sparse) {
          const auto adj = workload::power_law_digraph(s.rows, 6, op_rng);
          link = workload::link_matrix(adj);
          truth_y = link.matvec(x);
          params.sparse = &link;
        } else {
          dense = linalg::Matrix::random_uniform(s.rows, s.cols, op_rng);
          truth_y = dense.matvec(x);
          params.dense = &dense;
        }
        verify_y = true;
      } else {
        params.rows = s.rows;
        params.cols = s.cols;
      }
      break;
    case StrategyKind::kPoly:
    case StrategyKind::kPolyConventional: {
      const std::size_t d = round_to_blocks(s.cols, s.a_blocks);
      const std::size_t out_rows = d / s.a_blocks;
      params.chunks_per_partition = std::min(
          config.chunks_per_partition, std::max<std::size_t>(out_rows, 1));
      if (config.functional && cell.workload == WorkloadKind::kHessian) {
        util::Rng op_rng(mix64(salt ^ 0x0be7a70ull));
        dense = linalg::Matrix::random_uniform(s.rows, d, op_rng);
        x.resize(s.rows);
        for (auto& v : x) v = op_rng.uniform(0.1, 1.0);
        truth_h = coding::PolyCode::hessian_direct(dense, x);
        params.dense = &dense;
        verify_h = true;
      } else {
        params.rows = s.rows;
        params.cols = d;
      }
      break;
    }
    case StrategyKind::kReplication:
      params.replication.placement_seed = mix64(salt ^ 0x91ace3e9ull);
      params.rows = s.rows;
      params.cols = s.cols;
      break;
    case StrategyKind::kOverDecomp:
      params.rows = s.rows;
      params.cols = s.cols;
      break;
  }

  const std::unique_ptr<core::StrategyEngine> engine =
      core::make_engine(e, std::move(params));
  run_cell_rounds(config, *engine, cell,
                  (verify_y || verify_h) ? std::span<const double>(x)
                                         : std::span<const double>{},
                  verify_y ? &truth_y : nullptr,
                  verify_h ? &truth_h : nullptr);
  return cell;
}

}  // namespace

CellResult run_cell(const ScenarioConfig& config, StrategyKind e,
                    WorkloadKind w, TraceProfile t) {
  if (config.workers < 2) {
    throw std::invalid_argument("scenario matrix needs >= 2 workers");
  }
  const std::uint64_t salt = cell_seed(config.seed, e, w, t);
  const WorkloadShape shape = workload_shape(w, config);
  // Traces are salted per (workload, profile) column, NOT per engine —
  // engines being compared must face the same realized cluster.
  const core::ClusterSpec spec =
      make_cluster(t, config, trace_salt(config.seed, w, t));

  CellResult cell;
  cell.engine = e;
  cell.workload = w;
  cell.trace = t;
  cell.workers = config.workers;
  cell.predictor = config.predictor;
  try {
    return run_cell_impl(config, shape, spec, salt, cell);
  } catch (const std::runtime_error& ex) {
    // Unrecoverable cluster failures (the failure-injection profile can
    // push a baseline past its redundancy) are data, not crashes: the cell
    // records the deterministic failure and the sweep continues.
    cell.failed = true;
    cell.error = ex.what();
    return cell;
  }
}

MatrixResult run_scenario_matrix(const ScenarioConfig& config,
                                 std::span<const StrategyKind> engines,
                                 std::span<const WorkloadKind> workloads,
                                 std::span<const TraceProfile> traces) {
  MatrixResult out;
  out.config = config;
  out.cells.reserve(engines.size() * workloads.size() * traces.size());
  for (const StrategyKind e : engines) {
    for (const WorkloadKind w : workloads) {
      for (const TraceProfile t : traces) {
        out.cells.push_back(run_cell(config, e, w, t));
      }
    }
  }
  return out;
}

MatrixResult run_scenario_matrix(const ScenarioConfig& config) {
  const auto engines = all_engines();
  const auto workloads = all_workloads();
  const auto traces = all_trace_profiles();
  return run_scenario_matrix(config, engines, workloads, traces);
}

}  // namespace s2c2::harness
