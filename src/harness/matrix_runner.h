// Parallel, sharded scenario-matrix executor (the scalable evaluation
// backbone on top of src/harness/scenario_matrix.h).
//
// The matrix runner widens the cell grid with two extra axes — cluster
// scale and predictor choice — and executes cells concurrently on a
// util::ThreadPool. Cells are embarrassingly parallel by construction:
// every stochastic choice inside run_cell derives from the cell's own
// coordinates (seeded RNGs, per-column trained predictors), no cell touches
// global state, and each task writes only its preassigned output slot. The
// determinism contract is therefore byte-level:
//
//   run_matrix(cfg, axes, {.jobs = 1}) and run_matrix(cfg, axes, {.jobs = N})
//   produce identical MatrixResults — identical per-cell fingerprints,
//   identical whole-matrix fingerprint — for every N.
//
// Cell order in the output is the axis nesting order — cluster size, then
// the prediction-blind engines once, then predictor x prediction-capable
// engine, workload, trace — independent of completion order. Sharding
// semantics: jobs = 0 uses every hardware thread, jobs = 1 runs inline on
// the caller's thread, jobs = N runs cells on an N-thread util::ThreadPool
// with each cell writing only its preassigned output slot (no ordering or
// atomicity requirements between cells). src/report consumes this runner
// for the predictor-sensitivity slice of REPRODUCTION.md.
#pragma once

#include <cstddef>
#include <vector>

#include "src/harness/scenario_matrix.h"

namespace s2c2::harness {

/// Axis selection for one sweep. Empty `cluster_sizes` means "the base
/// config's cluster"; `predictors` always applies to prediction-capable
/// engines only (replication runs once per column, with kOracle recorded).
struct MatrixAxes {
  std::vector<StrategyKind> engines = all_engines();
  std::vector<WorkloadKind> workloads = all_workloads();
  std::vector<TraceProfile> traces = all_trace_profiles();
  std::vector<std::size_t> cluster_sizes;  // empty => {config.workers}
  std::vector<PredictorKind> predictors = {PredictorKind::kOracle};

  /// The widened full grid: every engine/workload/trace, cluster scale
  /// n in {12, 24, 48}, and all four predictors.
  [[nodiscard]] static MatrixAxes full();

  /// The thousand-worker sweep: every engine at n in {100, 250, 1000}
  /// (k/stragglers rescaled by cell_config), cost-only-sized workloads
  /// on the oracle predictor. Tractable because decode is charged through
  /// the cached Schur-reduced context (docs/PERFORMANCE.md) instead of a
  /// dense O(k³) LU per round — the seed model made n = 1000 cells decode-
  /// bound by hours. Deterministic at any --jobs like every other sweep.
  [[nodiscard]] static MatrixAxes large_scale();

  /// The robustness sweep: every engine x workload over the PR 6 trace
  /// zoo (fail-slow, bursty colocation, diurnal, byzantine) on the
  /// last-value predictor — coded cells detect and survive the byzantine
  /// column, the uncoded baselines record deterministic failed cells, and
  /// health-informed prediction is active throughout.
  [[nodiscard]] static MatrixAxes robustness();
};

/// One cell coordinate in the widened grid.
struct CellCoord {
  StrategyKind engine{};
  WorkloadKind workload{};
  TraceProfile trace{};
  std::size_t workers = 0;
  PredictorKind predictor = PredictorKind::kOracle;
};

struct RunnerOptions {
  /// Worker threads for the sweep; 0 = hardware concurrency, 1 = serial.
  std::size_t jobs = 1;
  /// Intra-round parallelism *within* each cell's engine
  /// (ScenarioConfig::inner_jobs / core::EngineParams::inner_jobs):
  /// 1 = serial round loop (default), N >= 2 = N-way engine-owned pool,
  /// 0 = hardware threads. Composes safely with `jobs`: a cell running on
  /// a pool worker detects the nesting and its inner fan-outs use the
  /// engine pool's help-first parallel_for, never spawning per-cell
  /// thread storms. Results are byte-identical at every (jobs x
  /// inner_jobs) combination.
  std::size_t inner_jobs = 1;
};

/// The base config rescaled to a cell's cluster size: k and the straggler
/// count scale proportionally with n (k = 0 keeps the n - 2 default rule).
[[nodiscard]] ScenarioConfig cell_config(const ScenarioConfig& base,
                                         std::size_t workers,
                                         PredictorKind predictor);

/// Materializes the axis cross product in deterministic output order,
/// dropping predictor variants for engines that ignore predictions.
[[nodiscard]] std::vector<CellCoord> expand_axes(const ScenarioConfig& base,
                                                 const MatrixAxes& axes);

/// Runs every cell of the widened grid, `options.jobs` cells at a time.
[[nodiscard]] MatrixResult run_matrix(const ScenarioConfig& base,
                                      const MatrixAxes& axes,
                                      const RunnerOptions& options = {});

}  // namespace s2c2::harness
